#!/usr/bin/env python3
"""Gated test: bench_diff.attribute() must root-cause a synthetic
slowdown to the right category.

Scenario: a run whose RPC cost was inflated — makespan grows by 500
ticks and the entire delta lands in rpc.wait. The attribution must name
rpc.wait first, with the exact delta and a 100% share, and must flag
the straggler change and the slowed span.
"""

import sys
import os

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_diff  # noqa: E402


def make_report(makespan, categories, top_spans, node=1):
    cats = {c: 0 for c in bench_diff.CATEGORIES}
    cats.update(categories)
    assert sum(cats.values()) == makespan, "test fixture must conserve"
    return {
        "name": "synthetic",
        "critical_path": {
            "critical_node": node,
            "critical_role": "executor",
            "makespan_ticks": makespan,
            "categories": cats,
            "top_spans": top_spans,
        },
    }


def run():
    baseline = make_report(
        1000, {"compute": 800, "rpc.wait": 200},
        [{"name": "agent.pull", "critical_node_ticks": 150},
         {"name": "agent.push", "critical_node_ticks": 50}])
    # Inflated RPC cost: +500 ticks of rpc.wait, nothing else moved,
    # and the straggler shifted to another executor.
    current = make_report(
        1500, {"compute": 800, "rpc.wait": 700},
        [{"name": "agent.pull", "critical_node_ticks": 650},
         {"name": "agent.push", "critical_node_ticks": 50}],
        node=3)

    lines = bench_diff.attribute(baseline, current)
    text = "\n".join(lines)
    print(text)

    assert "makespan_ticks 1000 -> 1500 (+500, +50.0%)" in lines[0], lines[0]
    cat_lines = [l for l in lines if l.strip().startswith(
        tuple(bench_diff.CATEGORIES))]
    assert cat_lines, "no category attribution lines:\n" + text
    first = cat_lines[0].split()
    assert first[0] == "rpc.wait", \
        "slowdown must be attributed to rpc.wait first, got: " + cat_lines[0]
    assert "(+500, 100% of delta)" in cat_lines[0], cat_lines[0]
    assert len(cat_lines) == 1, \
        "only rpc.wait moved, but got:\n" + "\n".join(cat_lines)
    assert any("critical node moved" in l for l in lines), text
    span_lines = [l for l in lines if "span agent.pull" in l]
    assert span_lines and "(+500)" in span_lines[0], text

    # No-change diff stays quiet about categories and spans.
    lines = bench_diff.attribute(baseline, baseline)
    assert any("categories: no change" in l for l in lines), lines

    # Pre-v6 reports degrade to an explanatory note, not a crash.
    lines = bench_diff.attribute({"name": "old"}, current)
    assert len(lines) == 1 and "no critical_path" in lines[0], lines

    # Tracing-off runs (empty top_spans) say so instead of silence.
    b2 = make_report(100, {"compute": 100}, [])
    lines = bench_diff.attribute(b2, b2)
    assert any("tracing off" in l for l in lines), lines

    print("OK: bench_diff attributes the synthetic slowdown to rpc.wait")
    return 0


if __name__ == "__main__":
    sys.exit(run())
