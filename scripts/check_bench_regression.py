#!/usr/bin/env python3
"""Validates bench run reports and gates on simulated-time regressions.

Usage:
    scripts/check_bench_regression.py [--report-dir DIR] \
        [--baseline-dir bench/baselines] [--tolerance 0.05]

For every baseline ``BENCH_<name>.json`` committed under the baseline
directory, the freshly produced report of the same name (in the report
directory, default cwd) is

  1. schema-validated (mirrors ``sim::ValidateRunReportJson``), and
  2. diffed against the baseline on *simulated* quantities only.

Gated quantities — all derived from the deterministic simulated clock,
so at parallelism 1 they are bit-identical run-to-run and any drift is a
real behaviour change:

  * cluster.makespan_ticks and each per-node busy_ticks
  * p50/p95/p99/count of the pull/push latency histograms
    (agent.pull.latency_ticks, agent.push.latency_ticks,
    ps.pull.service_ticks, ps.push.service_ticks)
  * bench.workloads.*[*].sim_ticks and sim_ticks_identical
    (BENCH_parallel.json: the determinism contract itself)

Deliberately NOT gated: wall-clock fields (machine-dependent),
rpc.queue_ticks (queueing order is nondeterministic at parallelism > 1;
see DESIGN.md "Observability"), and span summaries (trace-gated).

A tolerance band (default 5%) allows intentional cost-model tuning to
pass while catching order-of-magnitude regressions; exact-match fields
(counts, sim_ticks_identical) ignore the band. Exits non-zero on any
schema violation or out-of-band drift.
"""

import argparse
import json
import os
import sys

GATED_HISTOGRAMS = [
    "agent.pull.latency_ticks",
    "agent.push.latency_ticks",
    "ps.pull.service_ticks",
    "ps.push.service_ticks",
]
GATED_QUANTILES = ["p50", "p95", "p99"]

HIST_NUMERIC_FIELDS = [
    "count", "sum", "min", "max", "mean", "p50", "p95", "p99",
]


def fail(errors, fmt, *args):
    errors.append(fmt % args if args else fmt)


def validate_schema(report, path, errors):
    """Mirrors sim::ValidateRunReportJson — a report CI would gate on
    must be readable by tooling that only knows the schema."""
    def err(fmt, *args):
        fail(errors, "%s: %s" % (path, fmt % args if args else fmt))

    if not isinstance(report, dict):
        err("top level is not an object")
        return
    if report.get("schema") != "psgraph.run_report":
        err("bad schema marker %r", report.get("schema"))
    if report.get("schema_version") != 1:
        err("unsupported schema_version %r", report.get("schema_version"))
    if not isinstance(report.get("name"), str) or not report.get("name"):
        err("missing name")
    for section in ("counters", "gauges", "histograms", "spans"):
        if not isinstance(report.get(section), dict):
            err("missing section %r", section)
    if "bench" not in report:
        err("missing bench payload")
    for name, hist in report.get("histograms", {}).items():
        if not isinstance(hist, dict):
            err("histogram %r is not an object", name)
            continue
        for field in HIST_NUMERIC_FIELDS:
            if not isinstance(hist.get(field), (int, float)):
                err("histogram %r missing numeric %r", name, field)
        if not isinstance(hist.get("buckets"), list):
            err("histogram %r missing buckets array", name)
    cluster = report.get("cluster")
    if cluster is not None:
        if not isinstance(cluster, dict):
            err("cluster is neither null nor an object")
        else:
            nodes = cluster.get("nodes")
            if not isinstance(nodes, list) or not nodes:
                err("cluster.nodes missing or empty")
            if not isinstance(cluster.get("makespan_ticks"), int):
                err("cluster.makespan_ticks missing")


def within(baseline, current, tolerance):
    if baseline == current:
        return True
    if baseline == 0:
        return abs(current) <= tolerance
    return abs(current - baseline) <= tolerance * abs(baseline)


def diff_value(label, baseline, current, tolerance, errors, exact=False):
    if current is None:
        fail(errors, "%s: missing in current report (baseline %s)",
             label, baseline)
        return
    if exact:
        if baseline != current:
            fail(errors, "%s: %s -> %s (exact-match field)", label,
                 baseline, current)
    elif not within(baseline, current, tolerance):
        drift = ((current - baseline) / baseline * 100.0
                 if baseline else float("inf"))
        fail(errors, "%s: %s -> %s (%+.1f%%, tolerance %.0f%%)", label,
             baseline, current, drift, tolerance * 100)


def diff_reports(name, baseline, current, tolerance, errors):
    # Simulated makespan: the headline number.
    b_cluster = baseline.get("cluster")
    c_cluster = current.get("cluster")
    if b_cluster is not None:
        if c_cluster is None:
            fail(errors, "%s: cluster section disappeared", name)
        else:
            diff_value("%s: cluster.makespan_ticks" % name,
                       b_cluster.get("makespan_ticks"),
                       c_cluster.get("makespan_ticks"), tolerance, errors)
            b_nodes = {n["node"]: n for n in b_cluster.get("nodes", [])}
            c_nodes = {n["node"]: n for n in c_cluster.get("nodes", [])}
            for node_id, b_node in sorted(b_nodes.items()):
                c_node = c_nodes.get(node_id)
                diff_value(
                    "%s: node %s busy_ticks" % (name, node_id),
                    b_node.get("busy_ticks"),
                    c_node.get("busy_ticks") if c_node else None,
                    tolerance, errors)

    # Pull/push latency distributions.
    for hist_name in GATED_HISTOGRAMS:
        b_hist = baseline.get("histograms", {}).get(hist_name)
        if b_hist is None:
            continue  # this bench does not exercise that path
        c_hist = current.get("histograms", {}).get(hist_name)
        if c_hist is None:
            fail(errors, "%s: histogram %r disappeared", name, hist_name)
            continue
        diff_value("%s: %s.count" % (name, hist_name), b_hist["count"],
                   c_hist.get("count"), tolerance, errors, exact=True)
        for q in GATED_QUANTILES:
            diff_value("%s: %s.%s" % (name, hist_name, q), b_hist[q],
                       c_hist.get(q), tolerance, errors)

    # Parallel-sweep payload: the determinism contract.
    b_workloads = baseline.get("bench", {}).get("workloads")
    if isinstance(b_workloads, dict):
        c_workloads = current.get("bench", {}).get("workloads", {})
        for workload, b_sweep in sorted(b_workloads.items()):
            c_sweep = c_workloads.get(workload, [])
            for i, b_sample in enumerate(b_sweep):
                c_sample = c_sweep[i] if i < len(c_sweep) else {}
                label = "%s: %s[parallelism=%s]" % (
                    name, workload, b_sample.get("parallelism"))
                diff_value(label + ".sim_ticks_identical",
                           b_sample.get("sim_ticks_identical"),
                           c_sample.get("sim_ticks_identical"),
                           tolerance, errors, exact=True)
                diff_value(label + ".sim_ticks", b_sample.get("sim_ticks"),
                           c_sample.get("sim_ticks"), tolerance, errors)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--report-dir", default=".",
                        help="directory holding fresh BENCH_*.json")
    parser.add_argument("--baseline-dir", default="bench/baselines",
                        help="directory holding committed baselines")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="relative tolerance band (default 0.05)")
    args = parser.parse_args()

    baselines = sorted(
        f for f in os.listdir(args.baseline_dir)
        if f.startswith("BENCH_") and f.endswith(".json"))
    if not baselines:
        print("error: no baselines in %s" % args.baseline_dir)
        return 1

    errors = []
    checked = 0
    for fname in baselines:
        baseline_path = os.path.join(args.baseline_dir, fname)
        current_path = os.path.join(args.report_dir, fname)
        with open(baseline_path) as f:
            baseline = json.load(f)
        if not os.path.exists(current_path):
            fail(errors, "%s: report not produced (expected at %s)", fname,
                 current_path)
            continue
        with open(current_path) as f:
            current = json.load(f)
        validate_schema(baseline, baseline_path, errors)
        validate_schema(current, current_path, errors)
        diff_reports(fname, baseline, current, args.tolerance, errors)
        checked += 1
        print("checked %s against %s" % (current_path, baseline_path))

    if errors:
        print("\n%d regression check failure(s):" % len(errors))
        for e in errors:
            print("  FAIL %s" % e)
        return 1
    print("OK: %d report(s) within %.0f%% of baseline" %
          (checked, args.tolerance * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main())
