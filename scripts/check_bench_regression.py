#!/usr/bin/env python3
"""Validates bench run reports and gates on simulated-time regressions.

Usage:
    scripts/check_bench_regression.py [--report-dir DIR] \
        [--baseline-dir bench/baselines] [--tolerance 0.05]

For every baseline ``BENCH_<name>.json`` committed under the baseline
directory, the freshly produced report of the same name (in the report
directory, default cwd) is

  1. schema-validated (mirrors ``sim::ValidateRunReportJson``), and
  2. diffed against the baseline on *simulated* quantities only.

Gated quantities — all derived from the deterministic simulated clock,
so at parallelism 1 they are bit-identical run-to-run and any drift is a
real behaviour change:

  * cluster.makespan_ticks and each per-node busy_ticks
  * p50/p95/p99/p999/count of the pull/push/serving latency histograms
    (agent.pull.latency_ticks, agent.push.latency_ticks,
    ps.pull.service_ticks, ps.push.service_ticks,
    serving.request.latency_ticks)
  * every numeric bench-payload leaf whose key ends in ``sim_ticks``
    or ``sim_seconds`` (tolerance band) or equals ``oom`` /
    ``sim_ticks_identical`` (exact) — this covers the fig6 table rows,
    the ablation cells, the scaling sweep, BENCH_parallel's
    determinism contract, and BENCH_table2_failure's
    ``time_to_recovery_sim_ticks`` uniformly.
  * every numeric bench-payload leaf whose key ends in ``_bytes``
    (tolerance band): wire payload and snapshot blob sizes are pure
    functions of the format and the deterministic workload, so a drift
    is a wire-format or workload change.
  * kernel-table entries — any bench-payload object of the form
    ``{"value": N, "unit": "ticks"|"bytes"}`` (BENCH_micro's
    ``kernels`` section). Entries without a valid ``unit`` label fail
    schema validation; ``bytes`` entries diff exactly, ``ticks``
    entries within the band.

Deliberately NOT gated: wall-clock fields (machine-dependent),
rpc.queue_ticks (queueing order is nondeterministic at parallelism > 1;
see DESIGN.md "Observability"), span summaries (trace-gated), the
schema_version-2 ``skew``/``convergence`` flight-recorder sections
(hot-key sketch contents are accumulation-order-dependent at
parallelism > 1), and the schema_version-3 ``rpc``/``events`` sections
(their deterministic aggregates surface per-cell in the bench payload
where the suffix rules gate them) — those are schema-validated only.
The schema_version-4 ``serving`` section's latency histogram gates via
GATED_HISTOGRAMS; its counters gate through the bench payload's
suffix rules like every other sim-derived quantity. The
schema_version-5 ``timeseries``/``alerts`` sections are
schema-validated only (every series array must be exactly ``points``
long, every firing must index a declared rule) — the series *values*
mirror counters/gauges that already gate elsewhere, and the alert
fire/clear contracts are asserted by the benches themselves.
The schema_version-6 ``critical_path`` section gates its per-category
makespan attribution (tolerance band; the conservation invariant —
categories summing exactly to cluster.makespan_ticks — is re-checked
here so a hand-edited baseline cannot lie about where time went).
Schema version 7 adds the ``stream.apply``/``stream.retrain`` cost
categories (the arrays grow to 9 entries, gated like the rest) and the
optional ``freshness`` bench-payload section: every freshness cell
must carry numeric staleness_p50/p99 sim-tick leaves (gated by the
suffix rules) and a zero ``torn_requests`` count.

When the makespan itself (cluster.makespan_ticks or a per-node
busy_ticks) trips the gate, the raw "leaf moved" lines are replaced by
a single failure that root-causes the delta with bench_diff.py: which
cost category absorbed the ticks, whether the straggler moved, and
which span names slowed on the critical node.

A tolerance band (default 5%) allows intentional cost-model tuning to
pass while catching order-of-magnitude regressions; exact-match fields
(counts, sim_ticks_identical) ignore the band. Exits non-zero on any
schema violation or out-of-band drift.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_diff  # noqa: E402

GATED_HISTOGRAMS = [
    "agent.pull.latency_ticks",
    "agent.push.latency_ticks",
    "ps.pull.service_ticks",
    "ps.push.service_ticks",
    "serving.request.latency_ticks",
]
GATED_QUANTILES = ["p50", "p95", "p99", "p999"]

HIST_NUMERIC_FIELDS = [
    "count", "sum", "min", "max", "mean", "p50", "p95", "p99", "p999",
]

SERVING_NUMERIC_FIELDS = [
    "requests_completed", "requests_failed", "torn_reads", "lookup_keys",
    "infer_nodes", "cache_hits", "cache_misses", "cache_hit_rate",
    "batches", "mean_batch_occupancy", "swaps", "snapshots_published",
]


def fail(errors, fmt, *args):
    errors.append(fmt % args if args else fmt)


def validate_schema(report, path, errors):
    """Mirrors sim::ValidateRunReportJson — a report CI would gate on
    must be readable by tooling that only knows the schema."""
    def err(fmt, *args):
        fail(errors, "%s: %s" % (path, fmt % args if args else fmt))

    if not isinstance(report, dict):
        err("top level is not an object")
        return
    if report.get("schema") != "psgraph.run_report":
        err("bad schema marker %r", report.get("schema"))
    if report.get("schema_version") != 7:
        err("unsupported schema_version %r", report.get("schema_version"))
    if not isinstance(report.get("name"), str) or not report.get("name"):
        err("missing name")
    for section in ("counters", "gauges", "histograms", "spans"):
        if not isinstance(report.get(section), dict):
            err("missing section %r", section)
    if "bench" not in report:
        err("missing bench payload")
    for name, hist in report.get("histograms", {}).items():
        if not isinstance(hist, dict):
            err("histogram %r is not an object", name)
            continue
        for field in HIST_NUMERIC_FIELDS:
            if not isinstance(hist.get(field), (int, float)):
                err("histogram %r missing numeric %r", name, field)
        if not isinstance(hist.get("buckets"), list):
            err("histogram %r missing buckets array", name)
    cluster = report.get("cluster")
    if cluster is not None:
        if not isinstance(cluster, dict):
            err("cluster is neither null nor an object")
        else:
            nodes = cluster.get("nodes")
            if not isinstance(nodes, list) or not nodes:
                err("cluster.nodes missing or empty")
            else:
                for node in nodes:
                    if not isinstance(node, dict):
                        err("cluster node is not an object")
                        continue
                    for field in ("mem_usage_bytes", "mem_peak_bytes",
                                  "mem_budget_bytes"):
                        if not isinstance(node.get(field), int):
                            err("cluster node missing integer %r", field)
            if not isinstance(cluster.get("makespan_ticks"), int):
                err("cluster.makespan_ticks missing")

    skew = report.get("skew")
    if not isinstance(skew, dict):
        err("missing 'skew' section")
    else:
        shards = skew.get("shards")
        if not isinstance(shards, list):
            err("skew.shards must be an array")
        else:
            for shard in shards:
                if not isinstance(shard, dict):
                    err("skew shard is not an object")
                    continue
                for field in ("server", "pull_keys", "push_keys",
                              "load_share", "topk_share"):
                    if not isinstance(shard.get(field), (int, float)):
                        err("skew shard missing numeric %r", field)
                if not isinstance(shard.get("hot_keys"), list):
                    err("skew shard missing hot_keys array")
        if not isinstance(skew.get("partitions"), list):
            err("skew.partitions must be an array")
        if not isinstance(skew.get("partition_imbalance"), (int, float)):
            err("skew.partition_imbalance must be numeric")

    convergence = report.get("convergence")
    if not isinstance(convergence, dict):
        err("missing 'convergence' section")
    else:
        series = convergence.get("series")
        if not isinstance(series, dict):
            err("convergence.series must be an object")
        else:
            for sname, points in series.items():
                if not isinstance(points, list):
                    err("convergence series %r must be an array", sname)
                    continue
                last_iter = None
                for p in points:
                    if (not isinstance(p, list) or len(p) != 2
                            or not isinstance(p[0], int)
                            or not isinstance(p[1], (int, float))):
                        err("convergence series %r points must be "
                            "[iteration, value] pairs", sname)
                        break
                    if last_iter is not None and p[0] <= last_iter:
                        err("convergence series %r iterations must "
                            "increase", sname)
                        break
                    last_iter = p[0]
        if not isinstance(convergence.get("rejected_points"), int):
            err("convergence.rejected_points must be an integer")

    rpc = report.get("rpc")
    if not isinstance(rpc, dict):
        err("missing 'rpc' section")
    else:
        methods = rpc.get("methods")
        if not isinstance(methods, list):
            err("rpc.methods must be an array")
        else:
            for entry in methods:
                if not isinstance(entry, dict):
                    err("rpc method entry is not an object")
                    continue
                if (not isinstance(entry.get("method"), str)
                        or not entry.get("method")):
                    err("rpc entry missing 'method' string")
                for field in ("node", "calls", "request_bytes",
                              "response_bytes", "callee_busy_ticks",
                              "caller_wait_ticks", "errors_unavailable",
                              "errors_handler"):
                    if not isinstance(entry.get(field), int):
                        err("rpc entry missing integer %r", field)

    events = report.get("events")
    if not isinstance(events, dict):
        err("missing 'events' section")
    else:
        counts = events.get("counts")
        if not isinstance(counts, dict):
            err("events.counts must be an object")
        else:
            for etype, count in counts.items():
                if not isinstance(count, int):
                    err("events.counts[%r] must be an integer", etype)
        failures = events.get("failures")
        if not isinstance(failures, list):
            err("events.failures must be an array")
        else:
            for ev in failures:
                if not isinstance(ev, dict):
                    err("failure event is not an object")
                    continue
                if (not isinstance(ev.get("type"), str)
                        or not ev.get("type")):
                    err("failure event missing 'type' string")
                for field in ("node", "iteration", "ticks", "value"):
                    if not isinstance(ev.get(field), int):
                        err("failure event missing integer %r", field)
        recovery = events.get("recovery")
        if not isinstance(recovery, dict):
            err("events.recovery must be an object")
        else:
            for field in ("episodes", "total_ticks", "max_ticks"):
                if not isinstance(recovery.get(field), int):
                    err("events.recovery.%s must be an integer" % field)
        if not isinstance(events.get("dropped"), int):
            err("events.dropped must be an integer")

    # Kernel tables: every entry in a bench-payload "kernels" object
    # must be {"value": <number>, "unit": "ticks"|"bytes"} — an
    # unlabeled measurement cannot be gated and is rejected outright.
    bench = report.get("bench")
    if isinstance(bench, dict) and "kernels" in bench:
        kernels = bench["kernels"]
        if not isinstance(kernels, dict):
            err("bench.kernels must be an object")
        else:
            for kname, entry in kernels.items():
                if not isinstance(entry, dict):
                    err("bench.kernels[%r] is not an object", kname)
                    continue
                if not isinstance(entry.get("value"), (int, float)):
                    err("bench.kernels[%r] missing numeric 'value'", kname)
                if entry.get("unit") not in ("ticks", "bytes"):
                    err("bench.kernels[%r] has no 'ticks'/'bytes' unit "
                        "label (got %r)", kname, entry.get("unit"))

    # Freshness tables: a bench payload carrying a "freshness" section
    # (bench_freshness) must report gateable staleness percentiles and a
    # zero torn-read count in every rate cell — a freshness report that
    # cannot be gated, or one that tore a read, is rejected outright.
    if isinstance(bench, dict) and "freshness" in bench:
        if not isinstance(bench["freshness"], dict):
            err("bench.freshness must be an object")
        cells = [(k, v) for k, v in bench.items()
                 if isinstance(v, dict) and "staleness_p50_sim_ticks" in v]
        if not cells:
            err("bench.freshness present but no rate cell carries "
                "staleness_p50_sim_ticks")
        for cname, cell in cells:
            for field in ("staleness_p50_sim_ticks",
                          "staleness_p99_sim_ticks",
                          "touched_fraction_max", "rank_rel_l1_err"):
                if not isinstance(cell.get(field), (int, float)):
                    err("bench[%r] missing numeric %r", cname, field)
            if cell.get("torn_requests") != 0:
                err("bench[%r].torn_requests must be 0 (got %r)", cname,
                    cell.get("torn_requests"))

    serving = report.get("serving")
    if not isinstance(serving, dict):
        err("missing 'serving' section")
    else:
        for field in SERVING_NUMERIC_FIELDS:
            if not isinstance(serving.get(field), (int, float)):
                err("serving.%s must be numeric" % field)
        latency = serving.get("latency_ticks")
        if not isinstance(latency, dict):
            err("serving.latency_ticks must be an object")
        else:
            for field in ("count", "p50", "p99", "p999"):
                if not isinstance(latency.get(field), (int, float)):
                    err("serving.latency_ticks.%s must be numeric" % field)

    timeseries = report.get("timeseries")
    if not isinstance(timeseries, dict):
        err("missing 'timeseries' section")
    else:
        for field in ("base_interval_ticks", "interval_ticks",
                      "compactions", "points"):
            if not isinstance(timeseries.get(field), int):
                err("timeseries.%s must be an integer" % field)
        series = timeseries.get("series")
        if not isinstance(series, dict):
            err("timeseries.series must be an object")
        else:
            points = timeseries.get("points")
            for sname, values in series.items():
                if not isinstance(values, list):
                    err("timeseries series %r must be an array", sname)
                    continue
                if isinstance(points, int) and len(values) != points:
                    err("timeseries series %r has %d values, expected "
                        "%d points", sname, len(values), points)
                if not all(isinstance(v, (int, float)) for v in values):
                    err("timeseries series %r has non-numeric values",
                        sname)

    # critical_path (schema v6): null exactly when the run had no
    # cluster; otherwise the categories must conserve — sum exactly to
    # the cluster makespan — and the path must tile [0, makespan].
    if "critical_path" not in report:
        err("missing 'critical_path' section")
    cp = report.get("critical_path")
    if cp is None:
        if cluster is not None:
            err("critical_path is null but the report has a cluster")
    elif not isinstance(cp, dict):
        err("critical_path is neither null nor an object")
    elif cluster is None:
        err("critical_path present but the report has no cluster")
    else:
        for field in ("critical_node", "makespan_ticks"):
            if not isinstance(cp.get(field), int):
                err("critical_path.%s must be an integer" % field)
        if not isinstance(cp.get("critical_role"), str) \
                or not cp.get("critical_role"):
            err("critical_path.critical_role missing")
        makespan = cp.get("makespan_ticks")
        if (isinstance(cluster, dict)
                and makespan != cluster.get("makespan_ticks")):
            err("critical_path.makespan_ticks %r != cluster.makespan_"
                "ticks %r", makespan, cluster.get("makespan_ticks"))
        cats = cp.get("categories")
        if not isinstance(cats, dict):
            err("critical_path.categories must be an object")
        else:
            if sorted(cats) != sorted(bench_diff.CATEGORIES):
                err("critical_path.categories keys %r != the fixed "
                    "taxonomy %r", sorted(cats),
                    sorted(bench_diff.CATEGORIES))
            bad = False
            for cat, ticks in cats.items():
                if not isinstance(ticks, int) or ticks < 0:
                    err("critical_path.categories[%r] must be a "
                        "non-negative integer", cat)
                    bad = True
            if (not bad and isinstance(makespan, int)
                    and sum(cats.values()) != makespan):
                err("critical-path conservation violated: categories "
                    "sum to %d but makespan_ticks is %d",
                    sum(cats.values()), makespan)
        cp_path = cp.get("path")
        if not isinstance(cp_path, list):
            err("critical_path.path must be an array")
        else:
            if isinstance(makespan, int) and makespan > 0 \
                    and not cp_path:
                err("critical_path.path empty despite makespan %d",
                    makespan)
            prev_end = 0
            for i, seg in enumerate(cp_path):
                if not isinstance(seg, dict):
                    err("critical_path.path[%d] is not an object", i)
                    break
                for field in ("node", "begin_ticks", "end_ticks",
                              "ticks"):
                    if not isinstance(seg.get(field), int):
                        err("critical_path.path[%d].%s must be an "
                            "integer", i, field)
                if seg.get("begin_ticks") != prev_end:
                    err("critical_path.path[%d] begins at %r, expected "
                        "%d (path must tile the makespan)", i,
                        seg.get("begin_ticks"), prev_end)
                    break
                if not isinstance(seg.get("end_ticks"), int) \
                        or seg["end_ticks"] <= prev_end:
                    err("critical_path.path[%d] does not advance", i)
                    break
                if seg.get("ticks") != seg["end_ticks"] - prev_end:
                    err("critical_path.path[%d].ticks inconsistent", i)
                prev_end = seg["end_ticks"]
            else:
                if cp_path and isinstance(makespan, int) \
                        and prev_end != makespan:
                    err("critical_path.path ends at %d, expected the "
                        "makespan %d", prev_end, makespan)
        for span in cp.get("top_spans", []) \
                if isinstance(cp.get("top_spans"), list) else []:
            if not isinstance(span, dict) \
                    or not isinstance(span.get("name"), str):
                err("critical_path.top_spans entry malformed")
                continue
            for field in ("critical_node_ticks", "total_ticks", "count"):
                if not isinstance(span.get(field), int):
                    err("critical_path.top_spans[%r].%s must be an "
                        "integer", span.get("name"), field)
        if not isinstance(cp.get("top_spans"), list):
            err("critical_path.top_spans must be an array")
        what_if = cp.get("what_if")
        if not isinstance(what_if, list):
            err("critical_path.what_if must be an array")
        else:
            for entry in what_if:
                if not isinstance(entry, dict) \
                        or not isinstance(entry.get("name"), str):
                    err("critical_path.what_if entry malformed")
                    continue
                for field in ("factor", "speedup"):
                    if not isinstance(entry.get(field), (int, float)):
                        err("critical_path.what_if[%r].%s must be "
                            "numeric", entry.get("name"), field)
                projected = entry.get("projected_makespan_ticks")
                if not isinstance(projected, int):
                    err("critical_path.what_if[%r].projected_makespan_"
                        "ticks must be an integer", entry.get("name"))
                elif isinstance(makespan, int) and projected > makespan:
                    err("critical_path.what_if[%r] projects %d > the "
                        "makespan %d (shrinking work cannot slow the "
                        "run)", entry.get("name"), projected, makespan)

    alerts = report.get("alerts")
    if not isinstance(alerts, dict):
        err("missing 'alerts' section")
    else:
        rules = alerts.get("rules")
        if not isinstance(rules, list):
            err("alerts.rules must be an array")
            rules = []
        for rule in rules:
            if not isinstance(rule, dict):
                err("alert rule is not an object")
                continue
            for field in ("name", "form"):
                if (not isinstance(rule.get(field), str)
                        or not rule.get(field)):
                    err("alert rule missing %r string", field)
            for field in ("threshold", "window", "error_budget",
                          "burn_threshold"):
                if not isinstance(rule.get(field), (int, float)):
                    err("alert rule missing numeric %r", field)
        firings = alerts.get("firings")
        if not isinstance(firings, list):
            err("alerts.firings must be an array")
        else:
            for firing in firings:
                if not isinstance(firing, dict):
                    err("alert firing is not an object")
                    continue
                for field in ("rule", "fire_ticks", "clear_ticks"):
                    if not isinstance(firing.get(field), int):
                        err("alert firing missing integer %r", field)
                if not isinstance(firing.get("value"), (int, float)):
                    err("alert firing missing numeric 'value'")
                if not isinstance(firing.get("rule_name"), str):
                    err("alert firing missing 'rule_name' string")
                rule_idx = firing.get("rule")
                if (isinstance(rule_idx, int)
                        and not 0 <= rule_idx < len(rules)):
                    err("alert firing rule index %r out of range "
                        "(%d rules declared)", rule_idx, len(rules))


def within(baseline, current, tolerance):
    if baseline == current:
        return True
    if baseline == 0:
        return abs(current) <= tolerance
    return abs(current - baseline) <= tolerance * abs(baseline)


def diff_value(label, baseline, current, tolerance, errors, exact=False):
    if current is None:
        fail(errors, "%s: missing in current report (baseline %s)",
             label, baseline)
        return
    if exact:
        if baseline != current:
            fail(errors, "%s: %s -> %s (exact-match field)", label,
                 baseline, current)
    elif not within(baseline, current, tolerance):
        drift = ((current - baseline) / baseline * 100.0
                 if baseline else float("inf"))
        fail(errors, "%s: %s -> %s (%+.1f%%, tolerance %.0f%%)", label,
             baseline, current, drift, tolerance * 100)


def diff_reports(name, baseline, current, tolerance, errors):
    # Simulated makespan: the headline number. Its failures (and the
    # per-node busy_ticks ones) are collected separately: a raw "leaf
    # moved" line cannot be acted on, so when any of them trips we emit
    # one failure root-caused by bench_diff's category attribution.
    makespan_errors = []
    b_cluster = baseline.get("cluster")
    c_cluster = current.get("cluster")
    if b_cluster is not None:
        if c_cluster is None:
            fail(errors, "%s: cluster section disappeared", name)
        else:
            diff_value("%s: cluster.makespan_ticks" % name,
                       b_cluster.get("makespan_ticks"),
                       c_cluster.get("makespan_ticks"), tolerance,
                       makespan_errors)
            # .get, not [..]: a node entry without a "node" id must be a
            # named failure, not a bare KeyError traceback.
            b_nodes = {n.get("node"): n for n in b_cluster.get("nodes", [])}
            c_nodes = {n.get("node"): n for n in c_cluster.get("nodes", [])}
            if None in b_nodes:
                fail(errors, "%s: baseline cluster node without a "
                     "'node' id", name)
                del b_nodes[None]
            for node_id, b_node in sorted(b_nodes.items()):
                c_node = c_nodes.get(node_id)
                diff_value(
                    "%s: node %s busy_ticks" % (name, node_id),
                    b_node.get("busy_ticks"),
                    c_node.get("busy_ticks") if c_node else None,
                    tolerance, makespan_errors)
            # Per-category makespan attribution drifting past the band
            # is a behaviour change even when the total happens to
            # compensate (e.g. compute shrank but rpc.wait grew).
            b_cp = baseline.get("critical_path")
            c_cp = current.get("critical_path")
            if isinstance(b_cp, dict):
                c_cats = (c_cp.get("categories", {})
                          if isinstance(c_cp, dict) else {})
                for cat in bench_diff.CATEGORIES:
                    b_ticks = b_cp.get("categories", {}).get(cat)
                    if b_ticks is None:
                        continue
                    diff_value("%s: critical_path.%s" % (name, cat),
                               b_ticks, c_cats.get(cat), tolerance,
                               makespan_errors)
    if makespan_errors:
        lines = makespan_errors + ["root cause (scripts/bench_diff.py):"]
        lines += ["  " + l for l in
                  bench_diff.attribute(baseline, current)]
        fail(errors, "%s", "\n       ".join(lines))

    # Pull/push latency distributions.
    for hist_name in GATED_HISTOGRAMS:
        b_hist = baseline.get("histograms", {}).get(hist_name)
        if b_hist is None:
            continue  # this bench does not exercise that path
        c_hist = current.get("histograms", {}).get(hist_name)
        if c_hist is None:
            fail(errors, "%s: histogram %r disappeared", name, hist_name)
            continue
        # A baseline histogram missing a gated leaf is itself a finding
        # (stale or hand-edited baseline) — report the bench and the
        # leaf path instead of dying with a bare KeyError.
        for q, exact in [("count", True)] + [(q, False)
                                             for q in GATED_QUANTILES]:
            if q not in b_hist:
                fail(errors,
                     "%s: baseline histogram %s lacks leaf %r that the "
                     "candidate report gates on", name, hist_name, q)
                continue
            diff_value("%s: %s.%s" % (name, hist_name, q), b_hist[q],
                       c_hist.get(q), tolerance, errors, exact=exact)

    # Bench payload: walk the baseline recursively and gate every
    # simulated leaf (sim_ticks/sim_seconds with tolerance; oom and
    # sim_ticks_identical exactly). Wall-clock leaves never gate.
    diff_bench_payload("%s: bench" % name, baseline.get("bench"),
                       current.get("bench"), tolerance, errors)


EXACT_KEYS = ("oom", "sim_ticks_identical")
TOLERANT_SUFFIXES = ("sim_ticks", "sim_seconds", "_bytes")


def gate_kind(key):
    """'exact', 'tolerant' or None for one bench-payload key."""
    if key in EXACT_KEYS:
        return "exact"
    if key.endswith(TOLERANT_SUFFIXES):
        return "tolerant"
    return None


def diff_bench_payload(label, baseline, current, tolerance, errors,
                       kind=None):
    if (isinstance(baseline, dict) and "unit" in baseline
            and "value" in baseline):
        # Kernel entry: the unit decides the gate — byte counts are
        # exact functions of the wire format, tick counts get the band.
        sub = current if isinstance(current, dict) else {}
        if sub.get("unit") != baseline["unit"]:
            fail(errors, "%s: unit %r -> %r", label, baseline["unit"],
                 sub.get("unit"))
        diff_value("%s.value" % label, baseline["value"],
                   sub.get("value"), tolerance, errors,
                   exact=(baseline["unit"] == "bytes"))
        return
    if isinstance(baseline, dict):
        sub = current if isinstance(current, dict) else {}
        for key, b_val in sorted(baseline.items()):
            diff_bench_payload("%s.%s" % (label, key), b_val,
                               sub.get(key), tolerance, errors,
                               kind or gate_kind(key))
    elif isinstance(baseline, list):
        sub = current if isinstance(current, list) else []
        if kind is not None and len(sub) != len(baseline):
            fail(errors, "%s: length %d -> %d", label, len(baseline),
                 len(sub))
            return
        for i, b_val in enumerate(baseline):
            diff_bench_payload("%s[%d]" % (label, i), b_val,
                               sub[i] if i < len(sub) else None,
                               tolerance, errors, kind)
    elif kind is not None and isinstance(baseline, (int, float, bool)):
        diff_value(label, baseline, current, tolerance, errors,
                   exact=(kind == "exact" or isinstance(baseline, bool)))


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--report-dir", default=".",
                        help="directory holding fresh BENCH_*.json")
    parser.add_argument("--baseline-dir", default="bench/baselines",
                        help="directory holding committed baselines")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="relative tolerance band (default 0.05)")
    parser.add_argument("--validate-only", action="store_true",
                        help="schema-validate every baseline file and "
                             "exit — no fresh reports needed (the CI "
                             "baseline-hygiene step)")
    args = parser.parse_args()

    baselines = sorted(
        f for f in os.listdir(args.baseline_dir)
        if f.startswith("BENCH_") and f.endswith(".json"))
    if not baselines:
        print("error: no baselines in %s" % args.baseline_dir)
        return 1

    errors = []
    if args.validate_only:
        # Baseline hygiene: a hand-edited or stale-schema baseline must
        # fail the build here instead of silently passing the gate.
        stray = sorted(
            f for f in os.listdir(args.baseline_dir)
            if not (f.startswith("BENCH_") and f.endswith(".json")))
        for fname in stray:
            fail(errors, "%s: stray file in baseline dir (only "
                 "BENCH_*.json belongs there)",
                 os.path.join(args.baseline_dir, fname))
        for fname in baselines:
            path = os.path.join(args.baseline_dir, fname)
            try:
                with open(path) as f:
                    validate_schema(json.load(f), path, errors)
            except ValueError as exc:
                fail(errors, "%s: not valid JSON (%s)", path, exc)
            print("validated %s" % path)
        if errors:
            print("\n%d baseline-hygiene failure(s):" % len(errors))
            for e in errors:
                print("  FAIL %s" % e)
            return 1
        print("OK: %d baseline(s) schema-valid" % len(baselines))
        return 0
    checked = 0
    for fname in baselines:
        baseline_path = os.path.join(args.baseline_dir, fname)
        current_path = os.path.join(args.report_dir, fname)
        with open(baseline_path) as f:
            baseline = json.load(f)
        if not os.path.exists(current_path):
            fail(errors, "%s: report not produced (expected at %s)", fname,
                 current_path)
            continue
        with open(current_path) as f:
            current = json.load(f)
        validate_schema(baseline, baseline_path, errors)
        validate_schema(current, current_path, errors)
        diff_reports(fname, baseline, current, args.tolerance, errors)
        checked += 1
        print("checked %s against %s" % (current_path, baseline_path))

    # Reports without a committed baseline (e.g. the long-running scaling
    # bench) still get schema-validated so a malformed skew/convergence
    # section cannot ship silently.
    if os.path.isdir(args.report_dir):
        extras = sorted(
            f for f in os.listdir(args.report_dir)
            if f.startswith("BENCH_") and f.endswith(".json")
            and f not in baselines)
        for fname in extras:
            path = os.path.join(args.report_dir, fname)
            with open(path) as f:
                validate_schema(json.load(f), path, errors)
            print("validated %s (no baseline)" % path)

    if errors:
        print("\n%d regression check failure(s):" % len(errors))
        for e in errors:
            print("  FAIL %s" % e)
        return 1
    print("OK: %d report(s) within %.0f%% of baseline" %
          (checked, args.tolerance * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main())
