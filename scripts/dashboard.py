#!/usr/bin/env python3
"""Renders the BENCH_*.json run reports into a static HTML dashboard.

Reads every schema-v6 run report in --report-dir and writes a single
self-contained HTML file (--out): one card per bench with the
critical-path makespan attribution (a horizontal stacked bar over the
fixed cost-category taxonomy, plus the ticks/percent table), inline-SVG
sparklines for each telemetry time series (sim/timeseries: the
MetricsSampler ring buffers dumped by sim/report.cc) and the SLO
watchdog's alert timeline (fire/clear markers drawn on the sparklines
at their simulated ticks, plus a firings table). Uses only the Python
standard library and emits no external references — the artifact can be
opened from a CI artifact zip without a network.

Usage:
  python3 scripts/dashboard.py --report-dir build/bench --out dashboard.html
"""

import argparse
import glob
import html
import json
import os
import sys

SPARK_W = 360
SPARK_H = 56
SPARK_PAD = 4


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def fmt_value(v):
    """Compact human form of a series value (int-valued floats stay int)."""
    if isinstance(v, bool):
        return str(int(v))
    if isinstance(v, int):
        return f"{v:,}"
    if v == int(v) and abs(v) < 1e15:
        return f"{int(v):,}"
    return f"{v:.4g}"


def fmt_ticks(ticks):
    """Simulated picosecond ticks as a human duration."""
    if ticks < 0:
        return "-"
    us = ticks / 1e6
    if us < 1000:
        return f"{us:.0f} us"
    ms = us / 1000
    if ms < 1000:
        return f"{ms:.2f} ms"
    return f"{ms / 1000:.3f} s"


def spark_points(values, span_ticks, interval_ticks):
    """Maps series values to SVG polyline coordinates.

    Point k (0-based) was sampled at tick (k + 1) * interval_ticks; the
    x axis spans [0, span_ticks] so alert markers (raw ticks) land on
    the same scale.
    """
    lo = min(values)
    hi = max(values)
    vspan = (hi - lo) or 1.0
    pts = []
    for k, v in enumerate(values):
        x = SPARK_PAD + ((k + 1) * interval_ticks / span_ticks) * (
            SPARK_W - 2 * SPARK_PAD
        )
        y = SPARK_H - SPARK_PAD - ((v - lo) / vspan) * (
            SPARK_H - 2 * SPARK_PAD
        )
        pts.append(f"{x:.1f},{y:.1f}")
    return pts, lo, hi


def marker_x(ticks, span_ticks):
    frac = min(max(ticks / span_ticks, 0.0), 1.0)
    return SPARK_PAD + frac * (SPARK_W - 2 * SPARK_PAD)


def render_sparkline(name, values, span_ticks, interval_ticks, firings):
    """One labelled sparkline row; alert transitions drawn as vertical
    rules (red = fire, green = clear)."""
    pts, lo, hi = spark_points(values, span_ticks, interval_ticks)
    markers = []
    for f in firings:
        x = marker_x(f["fire_ticks"], span_ticks)
        markers.append(
            f'<line x1="{x:.1f}" y1="0" x2="{x:.1f}" y2="{SPARK_H}" '
            f'class="fire"><title>fire {html.escape(f["rule_name"])} @ '
            f'{fmt_ticks(f["fire_ticks"])}</title></line>'
        )
        if f["clear_ticks"] >= 0:
            x = marker_x(f["clear_ticks"], span_ticks)
            markers.append(
                f'<line x1="{x:.1f}" y1="0" x2="{x:.1f}" '
                f'y2="{SPARK_H}" class="clear"><title>clear '
                f'{html.escape(f["rule_name"])} @ '
                f'{fmt_ticks(f["clear_ticks"])}</title></line>'
            )
    line = ""
    if len(pts) > 1:
        line = f'<polyline points="{" ".join(pts)}" class="series"/>'
    else:
        line = f'<circle cx="{pts[0].split(",")[0]}" cy="{pts[0].split(",")[1]}" r="2" class="dot"/>'
    return (
        '<div class="row">'
        f'<div class="name" title="{html.escape(name)}">'
        f"{html.escape(name)}</div>"
        f'<svg width="{SPARK_W}" height="{SPARK_H}" '
        f'viewBox="0 0 {SPARK_W} {SPARK_H}">{line}{"".join(markers)}'
        "</svg>"
        f'<div class="range">{fmt_value(lo)} .. {fmt_value(hi)} '
        f"(last {fmt_value(values[-1])})</div>"
        "</div>"
    )


# Fixed color per cost category (sim/cost_ledger.h taxonomy) so the
# same category reads the same across every bench's bar.
CATEGORY_COLORS = [
    ("compute", "#2266cc"),
    ("rpc.serialize", "#66aadd"),
    ("rpc.wait", "#ee9933"),
    ("barrier.skew", "#cc2222"),
    ("recovery", "#882299"),
    ("replication.merge", "#22aa55"),
    ("serving.queue", "#aa8844"),
]

BAR_W = 720
BAR_H = 22


def render_critical_path(cp):
    """One stacked bar: where the simulated makespan went, by category.
    The categories conserve (sum exactly to the makespan), so the bar
    has no gaps and no overflow by construction."""
    if not isinstance(cp, dict):
        return ("<p class='muted'>no critical_path section (clusterless "
                "run or pre-v6 report)</p>")
    makespan = cp.get("makespan_ticks", 0)
    cats = cp.get("categories", {})
    if makespan <= 0:
        return "<p class='muted'>zero makespan — nothing to attribute</p>"
    rects = []
    x = 0.0
    rows = []
    for cat, color in CATEGORY_COLORS:
        ticks = cats.get(cat, 0)
        if ticks <= 0:
            continue
        w = BAR_W * ticks / makespan
        pct = 100.0 * ticks / makespan
        rects.append(
            f'<rect x="{x:.1f}" y="0" width="{w:.1f}" height="{BAR_H}" '
            f'fill="{color}"><title>{html.escape(cat)}: {ticks:,} ticks '
            f"({pct:.1f}%)</title></rect>"
        )
        rows.append(
            f"<tr><td><span class='swatch' style='background:{color}'>"
            f"</span> {html.escape(cat)}</td>"
            f"<td class='num'>{ticks:,}</td>"
            f"<td class='num'>{pct:.1f}%</td></tr>"
        )
        x += w
    what_if = cp.get("what_if", [])
    best = ""
    if what_if:
        top = max(what_if, key=lambda w: w.get("speedup", 0))
        if top.get("speedup", 1.0) > 1.0:
            best = (
                f"<p class='muted'>best what-if: shrink "
                f"<code>{html.escape(top.get('name', '?'))}</code> to "
                f"{top.get('factor', 0):g}x &rarr; "
                f"{top.get('speedup', 1):.2f}x speedup</p>"
            )
    return (
        f"<p class='muted'>critical {html.escape(str(cp.get('critical_role')))} "
        f"{cp.get('critical_node')} &middot; makespan "
        f"{fmt_ticks(makespan)} &middot; {len(cp.get('path', []))} "
        "path segment(s)</p>"
        f'<svg width="{BAR_W}" height="{BAR_H}" '
        f'viewBox="0 0 {BAR_W} {BAR_H}">{"".join(rects)}</svg>'
        f"<table><tr><th>category</th><th>ticks</th><th>share</th></tr>"
        f"{''.join(rows)}</table>{best}"
    )


def render_freshness(bench):
    """Staleness sparklines for a freshness report: one row per
    percentile, one point per mutation-rate cell (bench_freshness), so
    the arrival-to-visibility latency trend across rates is readable at
    a glance next to the telemetry series."""
    cells = sorted(
        (k, v)
        for k, v in bench.items()
        if isinstance(v, dict) and "staleness_p50_sim_ticks" in v
    )
    if not cells:
        return "<p class='muted'>no staleness cells in bench payload</p>"
    rows = []
    for field in ("staleness_p50_sim_ticks", "staleness_p99_sim_ticks"):
        values = [c.get(field, 0) for _, c in cells]
        label = "%s across %s" % (
            field, ", ".join(k for k, _ in cells))
        rows.append(
            render_sparkline(label, values, max(len(values), 1), 1, [])
        )
    return "".join(rows)


def render_alerts(alerts):
    rules = alerts.get("rules", [])
    firings = alerts.get("firings", [])
    if not rules:
        return "<p class='muted'>no watchdog rules declared</p>"
    out = ["<table><tr><th>rule</th><th>form</th><th>fired</th>"
           "<th>cleared</th><th>value at fire</th></tr>"]
    if not firings:
        out.append(
            f"<tr><td colspan='5' class='muted'>no firings "
            f"({len(rules)} rule(s) stayed green)</td></tr>"
        )
    for f in firings:
        cleared = (
            fmt_ticks(f["clear_ticks"])
            if f["clear_ticks"] >= 0
            else "<b class='active'>still active</b>"
        )
        out.append(
            f"<tr><td>{html.escape(f['rule_name'])}</td>"
            f"<td>{html.escape(rules[f['rule']]['form'])}</td>"
            f"<td>{fmt_ticks(f['fire_ticks'])}</td>"
            f"<td>{cleared}</td>"
            f"<td>{fmt_value(f['value'])}</td></tr>"
        )
    out.append("</table>")
    return "".join(out)


def render_report(path):
    with open(path) as fh:
        doc = json.load(fh)
    name = doc.get("name", os.path.basename(path))
    version = doc.get("schema_version")
    ts = doc.get("timeseries", {})
    alerts = doc.get("alerts", {})
    series = ts.get("series", {})
    points = ts.get("points", 0)
    interval = ts.get("interval_ticks", 1) or 1
    compactions = ts.get("compactions", 0)
    span_ticks = max(points * interval, 1)
    firings = alerts.get("firings", [])

    body = [
        f"<section><h2 id='{html.escape(name)}'>{html.escape(name)}</h2>",
        f"<p class='muted'>schema v{version} &middot; {points} points "
        f"&middot; interval {fmt_ticks(interval)} &middot; "
        f"{compactions} compaction(s) &middot; span "
        f"{fmt_ticks(span_ticks)}</p>",
        "<h3>critical path</h3>",
        render_critical_path(doc.get("critical_path")),
    ]
    bench = doc.get("bench")
    if isinstance(bench, dict) and "freshness" in bench:
        body += ["<h3>staleness</h3>", render_freshness(bench)]
    body += [
        "<h3>alerts</h3>",
        render_alerts(alerts),
        "<h3>time series</h3>",
    ]
    if not series:
        body.append(
            "<p class='muted'>no telemetry series (bench has no "
            "simulated cluster or sampling was disabled)</p>"
        )
    for sname in sorted(series):
        values = series[sname]
        if not values:
            continue
        body.append(
            render_sparkline(sname, values, span_ticks, interval, firings)
        )
    body.append("</section>")
    return name, "".join(body)


STYLE = """
body { font: 13px/1.5 system-ui, sans-serif; margin: 2em auto;
       max-width: 72em; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.15em; margin-top: 2em;
       border-bottom: 1px solid #ddd; }
h3 { font-size: 0.95em; color: #555; }
.muted { color: #888; }
.row { display: flex; align-items: center; gap: 1em;
       border-bottom: 1px solid #f2f2f2; padding: 2px 0; }
.name { width: 22em; overflow: hidden; text-overflow: ellipsis;
        white-space: nowrap; font-family: ui-monospace, monospace;
        font-size: 12px; }
.range { color: #666; font-size: 12px; }
svg { background: #fafafa; border: 1px solid #eee; flex: none; }
.series { fill: none; stroke: #2266cc; stroke-width: 1.2; }
.dot { fill: #2266cc; }
.fire { stroke: #cc2222; stroke-width: 1; }
.clear { stroke: #22aa55; stroke-width: 1; }
.active { color: #cc2222; }
table { border-collapse: collapse; font-size: 12px; }
td, th { border: 1px solid #e5e5e5; padding: 2px 8px; text-align: left; }
td.num { text-align: right; font-family: ui-monospace, monospace; }
.swatch { display: inline-block; width: 10px; height: 10px;
          margin-right: 4px; border: 1px solid #0002; }
nav a { margin-right: 1em; }
"""


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--report-dir",
        default=".",
        help="directory holding BENCH_*.json run reports",
    )
    ap.add_argument(
        "--out",
        default="dashboard.html",
        help="output HTML path",
    )
    args = ap.parse_args()

    paths = sorted(glob.glob(os.path.join(args.report_dir, "BENCH_*.json")))
    if not paths:
        fail(f"no BENCH_*.json reports under {args.report_dir!r}")
    sections = []
    names = []
    for path in paths:
        try:
            name, section = render_report(path)
        except (OSError, ValueError, KeyError, IndexError, TypeError) as e:
            fail(f"{path}: {e!r}")
        names.append(name)
        sections.append(section)

    nav = "".join(
        f"<a href='#{html.escape(n)}'>{html.escape(n)}</a>" for n in names
    )
    doc = (
        "<!doctype html><html><head><meta charset='utf-8'>"
        "<title>psgraph bench dashboard</title>"
        f"<style>{STYLE}</style></head><body>"
        "<h1>psgraph bench dashboard</h1>"
        "<p class='muted'>simulated-time telemetry from the "
        "MetricsSampler ring buffers; red/green rules are watchdog "
        "fire/clear transitions at their simulated ticks.</p>"
        f"<nav>{nav}</nav>"
        f"{''.join(sections)}"
        "</body></html>"
    )
    with open(args.out, "w") as fh:
        fh.write(doc)
    print(f"wrote {args.out} ({len(paths)} report(s))")


if __name__ == "__main__":
    main()
