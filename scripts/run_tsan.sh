#!/usr/bin/env bash
# ThreadSanitizer gate for the parallel execution engine.
#
# Configures a separate build tree with -DPSGRAPH_SANITIZE=thread and runs
# the concurrency-labeled tests at PSGRAPH_THREADS=8 so the RPC fan-out,
# the partition-task engine and the PS hot paths all run with real thread
# interleavings under TSan. Usage: scripts/run_tsan.sh [build-dir]

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-tsan}"

cmake -B "$build" -S "$repo" -DPSGRAPH_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build" -j "$(nproc)"
cd "$build"
PSGRAPH_THREADS=8 ctest -L concurrency --output-on-failure
