#!/usr/bin/env python3
"""Root-causes the makespan delta between two bench run reports.

Usage:
    scripts/bench_diff.py BASELINE.json CURRENT.json

Both files are ``BENCH_<name>.json`` run reports (schema v6+). The tool
reads each report's ``critical_path`` section — the deterministic
makespan attribution whose categories sum exactly to the simulated
makespan — and prints *where* the delta went:

  * headline: makespan baseline -> current (delta, percent),
  * per-category deltas (compute, rpc.wait, barrier.skew, ...) sorted
    by magnitude, each with its share of the total makespan delta,
  * a note when the critical node moved (the straggler changed),
  * per-span-name deltas of critical-node ticks from ``top_spans``
    (only present when the run traced; a note is printed otherwise).

Because the categories conserve exactly on both sides, the category
deltas also sum exactly to the makespan delta — attribution here is
arithmetic, not heuristics. ``check_bench_regression.py`` imports
``attribute()`` to append these lines to makespan-gate failures, and CI
uploads the full output as an artifact when the bench gate trips.

Exit status is always 0: this is a diagnostic lens, not a gate.
"""

import json
import sys

CATEGORIES = [
    "compute",
    "rpc.serialize",
    "rpc.wait",
    "barrier.skew",
    "recovery",
    "replication.merge",
    "serving.queue",
    "stream.apply",
    "stream.retrain",
]


def _pct(part, whole):
    if whole == 0:
        return "n/a"
    return "%+.1f%%" % (100.0 * part / whole)


def attribute(baseline, current):
    """Returns human-readable attribution lines for the makespan delta
    between two parsed run-report dicts. Empty list when neither report
    carries a critical_path section (pre-v6 reports, or no cluster)."""
    b_cp = baseline.get("critical_path")
    c_cp = current.get("critical_path")
    if not isinstance(b_cp, dict) or not isinstance(c_cp, dict):
        return ["no critical_path section on one side "
                "(pre-v6 report or clusterless run) — "
                "no attribution possible"]

    lines = []
    b_make = b_cp.get("makespan_ticks", 0)
    c_make = c_cp.get("makespan_ticks", 0)
    delta = c_make - b_make
    lines.append("makespan_ticks %d -> %d (%+d, %s)" %
                 (b_make, c_make, delta, _pct(delta, b_make)))

    # Category attribution. Conservation on both sides means these
    # deltas sum exactly to the makespan delta.
    cat_deltas = []
    for cat in CATEGORIES:
        b = b_cp.get("categories", {}).get(cat, 0)
        c = c_cp.get("categories", {}).get(cat, 0)
        if b != c:
            cat_deltas.append((cat, c - b, b, c))
    cat_deltas.sort(key=lambda e: (-abs(e[1]), e[0]))
    if not cat_deltas:
        lines.append("categories: no change")
    for cat, d, b, c in cat_deltas:
        share = ("%.0f%% of delta" % (100.0 * d / delta)
                 if delta else "makespan unchanged")
        lines.append("  %-17s %d -> %d (%+d, %s)" % (cat, b, c, d, share))

    b_node = (b_cp.get("critical_node"), b_cp.get("critical_role"))
    c_node = (c_cp.get("critical_node"), c_cp.get("critical_role"))
    if b_node != c_node:
        lines.append("critical node moved: %s %s -> %s %s "
                     "(the straggler changed)" %
                     (b_node[1], b_node[0], c_node[1], c_node[0]))

    # Span-level drill-down, where tracing was on for both runs.
    b_spans = {s.get("name"): s for s in b_cp.get("top_spans", [])}
    c_spans = {s.get("name"): s for s in c_cp.get("top_spans", [])}
    if not b_spans and not c_spans:
        lines.append("top_spans empty on both sides (tracing off) — "
                     "no span-level drill-down")
        return lines
    span_deltas = []
    for name in sorted(set(b_spans) | set(c_spans)):
        b = b_spans.get(name, {}).get("critical_node_ticks", 0)
        c = c_spans.get(name, {}).get("critical_node_ticks", 0)
        if b != c:
            span_deltas.append((name, c - b, b, c))
    span_deltas.sort(key=lambda e: (-abs(e[1]), e[0]))
    for name, d, b, c in span_deltas:
        lines.append("  span %-22s critical-node ticks %d -> %d (%+d)" %
                     (name, b, c, d))
    return lines


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip().splitlines()[0])
        print("usage: %s BASELINE.json CURRENT.json" % argv[0])
        return 2
    with open(argv[1]) as f:
        baseline = json.load(f)
    with open(argv[2]) as f:
        current = json.load(f)
    name = current.get("name", argv[2])
    print("bench_diff: %s (%s -> %s)" % (name, argv[1], argv[2]))
    for line in attribute(baseline, current):
        print("  " + line)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
