#!/usr/bin/env python3
"""Summarize / validate a PSGraph Chrome-trace export.

The flight recorder (PSGRAPH_TRACE=1 PSGRAPH_TRACE_OUT=trace.json) emits
a Chrome Trace Event Format document whose timestamps are simulated
clock ticks (1 tick = 1 ps). This tool

  * validates the schema (--validate; exits non-zero on violations) —
    including every "s"/"f" flow pair (each must connect an existing
    client-side span to an existing server-side span on a different
    process) and every "i" instant marker,
  * prints the top spans by total and by self sim-ticks per node,
  * prints the control-plane event timeline (--events): the journal's
    instant markers (node kills/restarts, checkpoint saves/restores,
    recovery windows) in tick order, and
  * prints the SLO alert timeline (--alerts): every
    "alert_fire:<rule>" / "alert_clear:<rule>" marker in tick order,
    checking that each references a rule declared in
    otherData.alert_rules (exits non-zero on an undeclared rule).

  * cross-validates a run report's exported critical path against the
    trace (--critical-path BENCH_x.json): the path must tile
    [0, makespan] in time order, and every segment attributed to a node
    that traced at all must overlap at least one real span on that node
    — then prints the top-10 segments and the category table.

Usage:
  python3 scripts/trace_summary.py trace.json
  python3 scripts/trace_summary.py --validate trace.json
  python3 scripts/trace_summary.py --events trace.json
  python3 scripts/trace_summary.py --alerts trace.json
  python3 scripts/trace_summary.py --critical-path BENCH_micro.json trace.json
  python3 scripts/trace_summary.py --top 20 trace.json
"""

import argparse
import collections
import json
import sys


def fail(msg):
    print(f"trace_summary: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate(doc):
    """Checks the Chrome-trace schema the exporter promises. Returns
    (X events, instant events, flow pair count)."""
    errors = []

    def err(msg):
        errors.append(msg)

    if not isinstance(doc, dict):
        fail("top level must be a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("'traceEvents' must be an array")
    other = doc.get("otherData")
    if not isinstance(other, dict):
        err("'otherData' missing")
    else:
        if other.get("schema") != "psgraph.trace":
            err("otherData.schema != 'psgraph.trace'")
        if other.get("tick_unit") != "ps":
            err("otherData.tick_unit != 'ps'")
        dropped = other.get("spans_dropped")
        if not isinstance(dropped, int) or dropped < 0:
            err("otherData.spans_dropped must be a non-negative integer")
        elif dropped > 0:
            print(
                f"trace_summary: warning: {dropped} spans were dropped at "
                "the tracer cap (set PSGRAPH_TRACE_MAX_SPANS higher for a "
                "complete timeline)",
                file=sys.stderr,
            )

    xs = []
    instants = []
    flow_starts = {}
    flow_finishes = {}
    named_pids = set()
    span_ids = set()
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            err(f"{where} is not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "M", "s", "f", "i"):
            err(f"{where}: unexpected ph {ph!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                err(f"{where}: {key} must be an integer")
        if not isinstance(ev.get("name"), str) or not ev.get("name"):
            err(f"{where}: name must be a non-empty string")
        if ph == "M":
            if ev.get("name") != "process_name":
                err(f"{where}: metadata event must be process_name")
            args = ev.get("args")
            if not isinstance(args, dict) or not isinstance(
                args.get("name"), str
            ):
                err(f"{where}: process_name args.name missing")
            named_pids.add(ev.get("pid"))
            continue
        if ph == "i":
            # An instant marker (control-plane journal entry).
            if not isinstance(ev.get("ts"), int):
                err(f"{where}: ts must be an integer tick count")
            if ev.get("s") != "p":
                err(f"{where}: instant must be process-scoped (s == 'p')")
            instants.append(ev)
            continue
        if ph in ("s", "f"):
            # One side of a cross-node flow arrow.
            if not isinstance(ev.get("ts"), int):
                err(f"{where}: ts must be an integer tick count")
            if not isinstance(ev.get("id"), int):
                err(f"{where}: flow event needs an integer id")
                continue
            if ph == "f" and ev.get("bp") != "e":
                err(f"{where}: flow finish must carry bp == 'e'")
            args = ev.get("args")
            if not isinstance(args, dict) or not isinstance(
                args.get("span_id"), int
            ) or not isinstance(args.get("parent"), int):
                err(f"{where}: flow args need span_id and parent")
                continue
            side = flow_starts if ph == "s" else flow_finishes
            if ev["id"] in side:
                err(f"{where}: duplicate flow {ph!r} id {ev['id']}")
                continue
            side[ev["id"]] = ev
            continue
        # ph == "X": a complete event stamped in integer ticks.
        for key in ("ts", "dur"):
            v = ev.get(key)
            if not isinstance(v, int):
                err(f"{where}: {key} must be an integer tick count")
            elif key == "dur" and v < 0:
                err(f"{where}: negative dur")
        args = ev.get("args")
        if not isinstance(args, dict):
            err(f"{where}: args missing")
        else:
            sid = args.get("span_id")
            if not isinstance(sid, int) or sid <= 0:
                err(f"{where}: args.span_id must be a positive integer")
            elif sid in span_ids:
                err(f"{where}: duplicate span_id {sid}")
            else:
                span_ids.add(sid)
            if not isinstance(args.get("parent"), int):
                err(f"{where}: args.parent must be an integer")
            if not isinstance(args.get("node"), int):
                err(f"{where}: args.node must be an integer")
        xs.append(ev)

    for ev in xs:
        if ev.get("pid") not in named_pids:
            err(f"X event pid {ev.get('pid')} has no process_name metadata")
            break
    for ev in instants:
        if ev.get("pid") not in named_pids:
            err(
                f"instant pid {ev.get('pid')} has no process_name metadata"
            )
            break

    # Every flow must be a complete s/f pair connecting two existing X
    # spans (the client-side parent and the server-side child) that live
    # on different processes.
    by_span = {
        ev["args"]["span_id"]: ev
        for ev in xs
        if isinstance(ev.get("args"), dict)
        and isinstance(ev["args"].get("span_id"), int)
    }
    for fid in sorted(set(flow_starts) | set(flow_finishes)):
        start = flow_starts.get(fid)
        finish = flow_finishes.get(fid)
        if start is None or finish is None:
            err(f"flow id {fid}: missing {'start' if start is None else 'finish'} half")
            continue
        child = by_span.get(start["args"]["span_id"])
        parent = by_span.get(start["args"]["parent"])
        if start["args"] != finish["args"]:
            err(f"flow id {fid}: start/finish args disagree")
            continue
        if child is None or parent is None:
            err(f"flow id {fid}: references a span missing from the trace")
            continue
        if start["pid"] != parent["pid"] or finish["pid"] != child["pid"]:
            err(f"flow id {fid}: pid does not match the linked span's pid")
        if parent["pid"] == child["pid"]:
            err(f"flow id {fid}: connects spans on the same process")
        if finish["ts"] != child["ts"]:
            err(f"flow id {fid}: finish ts must equal the child span's ts")
        if not (parent["ts"] <= start["ts"]
                <= parent["ts"] + parent["dur"]):
            err(f"flow id {fid}: start ts outside the parent span")

    if errors:
        for e in errors[:20]:
            print(f"trace_summary: FAIL: {e}", file=sys.stderr)
        if len(errors) > 20:
            print(
                f"trace_summary: ... and {len(errors) - 20} more",
                file=sys.stderr,
            )
        sys.exit(1)
    return xs, instants, len(flow_starts)


def summarize(doc, xs, top):
    # Process (node) display names from the metadata events.
    pname = {}
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") == "M" and ev.get("name") == "process_name":
            pname[ev["pid"]] = ev.get("args", {}).get("name", "?")

    # Self ticks = own duration minus time covered by direct children
    # (same pid/tid, parent == span_id).
    by_id = {ev["args"]["span_id"]: ev for ev in xs}
    child_ticks = collections.Counter()
    for ev in xs:
        parent = by_id.get(ev["args"]["parent"])
        if parent is not None:
            child_ticks[parent["args"]["span_id"]] += ev["dur"]

    per_node = collections.defaultdict(
        lambda: collections.defaultdict(lambda: [0, 0, 0])
    )  # node -> name -> [count, total, self]
    for ev in xs:
        row = per_node[ev["pid"]][ev["name"]]
        row[0] += 1
        row[1] += ev["dur"]
        row[2] += max(0, ev["dur"] - child_ticks[ev["args"]["span_id"]])

    total_events = len(xs)
    print(f"{total_events} spans across {len(per_node)} processes")
    for pid in sorted(per_node):
        rows = per_node[pid]
        print(f"\n== {pname.get(pid, f'pid {pid}')} (pid {pid}) ==")
        print(f"{'span':<40} {'count':>7} {'total ticks':>16} {'self ticks':>16}")
        ranked = sorted(rows.items(), key=lambda kv: (-kv[1][1], kv[0]))
        for name, (count, tot, self_t) in ranked[:top]:
            print(f"{name:<40} {count:>7} {tot:>16} {self_t:>16}")
        if len(ranked) > top:
            print(f"... {len(ranked) - top} more span names")


def print_events(doc, instants):
    """Renders the control-plane journal timeline: every instant marker
    in tick order, prefixed with the process it fired on."""
    pname = {}
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") == "M" and ev.get("name") == "process_name":
            pname[ev["pid"]] = ev.get("args", {}).get("name", "?")
    if not instants:
        print("no control-plane events in this trace")
        return
    print(f"{len(instants)} control-plane event(s):")
    print(f"{'ticks':>16}  {'process':<14} event")
    for ev in sorted(
        instants, key=lambda e: (e["ts"], e["pid"], e["name"])
    ):
        where = pname.get(ev["pid"], f"pid {ev['pid']}")
        print(f"{ev['ts']:>16}  {where:<14} {ev['name']}")

    # Freshness-pipeline epoch markers: each epoch journals one
    # epoch_ingest when the mutation batch lands and one epoch_publish
    # when the snapshot swap commits, in that order. An unpaired or
    # out-of-order marker means the pipeline lost an epoch mid-flight.
    ingests = [e["ts"] for e in instants if e["name"] == "epoch_ingest"]
    publishes = [e["ts"] for e in instants if e["name"] == "epoch_publish"]
    if ingests or publishes:
        if len(ingests) != len(publishes):
            fail(
                f"unpaired epoch markers: {len(ingests)} epoch_ingest vs "
                f"{len(publishes)} epoch_publish"
            )
        for i, (a, p) in enumerate(zip(sorted(ingests), sorted(publishes))):
            if p < a:
                fail(
                    f"epoch {i + 1} published at tick {p} before its "
                    f"ingest at tick {a}"
                )
        print(
            f"freshness pipeline: {len(ingests)} epoch(s) ingested and "
            f"published in order"
        )


def print_alerts(doc, instants):
    """Renders the SLO watchdog timeline: every alert_fire/alert_clear
    instant in tick order, validated against the declared rule list in
    otherData.alert_rules."""
    declared = doc.get("otherData", {}).get("alert_rules", [])
    if not isinstance(declared, list) or not all(
        isinstance(r, str) for r in declared
    ):
        fail("otherData.alert_rules must be an array of rule names")
    markers = []
    for ev in instants:
        name = ev.get("name", "")
        for prefix in ("alert_fire:", "alert_clear:"):
            if name.startswith(prefix):
                markers.append((ev, prefix[:-1], name[len(prefix):]))
                break
    for ev, _, rule in markers:
        if rule not in declared:
            fail(
                f"alert marker at tick {ev['ts']} references rule "
                f"{rule!r}, which is not declared in "
                f"otherData.alert_rules {declared!r}"
            )
    print(f"{len(declared)} rule(s) declared: {', '.join(declared) or '-'}")
    if not markers:
        print("no alert transitions in this trace")
        return
    open_since = {}
    print(f"{len(markers)} alert transition(s):")
    print(f"{'ticks':>16}  {'transition':<12} rule")
    for ev, kind, rule in sorted(
        markers, key=lambda m: (m[0]["ts"], m[1], m[2])
    ):
        extra = ""
        if kind == "alert_fire":
            open_since[rule] = ev["ts"]
        elif rule in open_since:
            extra = f"  (active {ev['ts'] - open_since.pop(rule)} ticks)"
        print(f"{ev['ts']:>16}  {kind:<12} {rule}{extra}")
    for rule, since in sorted(open_since.items()):
        print(f"still active at end of trace: {rule} (since {since})")


def check_critical_path(doc, xs, report_path):
    """Cross-validates BENCH_<name>.json's critical_path section against
    the trace: the analyzer derives the path from deterministic clock
    aggregates, the trace holds the raw spans — a path segment that no
    span can account for means the two observability layers disagree."""
    try:
        with open(report_path) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(str(e))
    cp = report.get("critical_path")
    if not isinstance(cp, dict):
        fail(f"{report_path} has no critical_path object (clusterless "
             "run or pre-v6 schema) — nothing to cross-validate")
    makespan = cp.get("makespan_ticks")
    path = cp.get("path", [])
    if not isinstance(makespan, int) or not isinstance(path, list):
        fail(f"{report_path}: malformed critical_path section")

    # Edges must be time-ordered and tile [0, makespan] exactly.
    prev_end = 0
    for i, seg in enumerate(path):
        if seg.get("begin_ticks") != prev_end:
            fail(f"path[{i}] begins at {seg.get('begin_ticks')}, "
                 f"expected {prev_end} (segments must be contiguous "
                 "and time-ordered)")
        if not isinstance(seg.get("end_ticks"), int) \
                or seg["end_ticks"] <= prev_end:
            fail(f"path[{i}] does not advance in time")
        prev_end = seg["end_ticks"]
    if path and prev_end != makespan:
        fail(f"path ends at {prev_end}, expected the makespan {makespan}")

    # Every segment owned by a node that traced at all must overlap at
    # least one real span on that node. (A node with zero spans — e.g.
    # the driver with tracing narrowed, or a capped trace — cannot be
    # checked and is skipped.)
    spans_by_node = collections.defaultdict(list)
    for ev in xs:
        node = ev["args"]["node"]
        spans_by_node[node].append((ev["ts"], ev["ts"] + ev["dur"]))
    unverifiable = 0
    for i, seg in enumerate(path):
        node = seg.get("node")
        spans = spans_by_node.get(node)
        if node is None or node < 0 or not spans:
            unverifiable += 1
            continue
        if not any(b < seg["end_ticks"] and e > seg["begin_ticks"]
                   for b, e in spans):
            fail(f"path[{i}] [{seg['begin_ticks']}, {seg['end_ticks']}) "
                 f"is attributed to node {node}, but no span on that "
                 "node overlaps it — report and trace disagree")

    print(f"critical path cross-check PASS: {len(path)} segment(s) "
          f"against {len(xs)} spans"
          + (f" ({unverifiable} on span-less nodes, skipped)"
             if unverifiable else ""))

    ranked = sorted(
        path, key=lambda s: (-(s["end_ticks"] - s["begin_ticks"]),
                             s["begin_ticks"]))
    print(f"\ntop {min(10, len(ranked))} segment(s) by ticks:")
    print(f"{'begin':>16} {'end':>16} {'ticks':>16}  {'role':<10} node")
    for seg in ranked[:10]:
        print(f"{seg['begin_ticks']:>16} {seg['end_ticks']:>16} "
              f"{seg['end_ticks'] - seg['begin_ticks']:>16}  "
              f"{seg.get('role', '?'):<10} {seg['node']}")

    cats = cp.get("categories", {})
    print(f"\nmakespan attribution ({makespan} ticks, "
          f"critical {cp.get('critical_role')} {cp.get('critical_node')}):")
    for cat, ticks in sorted(cats.items(), key=lambda kv: -kv[1]):
        if ticks == 0:
            continue
        print(f"  {cat:<18} {ticks:>16} "
              f"({100.0 * ticks / makespan:5.1f}%)" if makespan
              else f"  {cat:<18} {ticks:>16}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="exported trace JSON path")
    ap.add_argument(
        "--validate",
        action="store_true",
        help="only validate the schema; print PASS/FAIL",
    )
    ap.add_argument(
        "--events",
        action="store_true",
        help="print the control-plane event timeline",
    )
    ap.add_argument(
        "--alerts",
        action="store_true",
        help="print the SLO alert timeline (validates every marker "
        "against otherData.alert_rules)",
    )
    ap.add_argument(
        "--critical-path",
        metavar="REPORT",
        help="cross-validate REPORT's (BENCH_<name>.json) critical_path "
        "section against this trace and print its top segments",
    )
    ap.add_argument(
        "--top", type=int, default=10, help="span names per node to print"
    )
    args = ap.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(str(e))

    xs, instants, flows = validate(doc)
    if args.validate:
        print(
            f"trace_summary: PASS ({len(xs)} spans, {flows} flows, "
            f"{len(instants)} instants)"
        )
        return
    if args.events:
        print_events(doc, instants)
        return
    if args.alerts:
        print_alerts(doc, instants)
        return
    if args.critical_path:
        check_critical_path(doc, xs, args.critical_path)
        return
    summarize(doc, xs, args.top)


if __name__ == "__main__":
    main()
