#!/usr/bin/env python3
"""Summarize / validate a PSGraph Chrome-trace export.

The flight recorder (PSGRAPH_TRACE=1 PSGRAPH_TRACE_OUT=trace.json) emits
a Chrome Trace Event Format document whose timestamps are simulated
clock ticks (1 tick = 1 ps). This tool

  * validates the schema (--validate; exits non-zero on violations), and
  * prints the top spans by total and by self sim-ticks per node.

Usage:
  python3 scripts/trace_summary.py trace.json
  python3 scripts/trace_summary.py --validate trace.json
  python3 scripts/trace_summary.py --top 20 trace.json
"""

import argparse
import collections
import json
import sys


def fail(msg):
    print(f"trace_summary: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate(doc):
    """Checks the Chrome-trace schema the exporter promises. Returns the
    list of X events."""
    errors = []

    def err(msg):
        errors.append(msg)

    if not isinstance(doc, dict):
        fail("top level must be a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("'traceEvents' must be an array")
    other = doc.get("otherData")
    if not isinstance(other, dict):
        err("'otherData' missing")
    else:
        if other.get("schema") != "psgraph.trace":
            err("otherData.schema != 'psgraph.trace'")
        if other.get("tick_unit") != "ps":
            err("otherData.tick_unit != 'ps'")
        dropped = other.get("spans_dropped")
        if not isinstance(dropped, int) or dropped < 0:
            err("otherData.spans_dropped must be a non-negative integer")
        elif dropped > 0:
            print(
                f"trace_summary: warning: {dropped} spans were dropped at "
                "the tracer cap (set PSGRAPH_TRACE_MAX_SPANS higher for a "
                "complete timeline)",
                file=sys.stderr,
            )

    xs = []
    named_pids = set()
    span_ids = set()
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            err(f"{where} is not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "M"):
            err(f"{where}: unexpected ph {ph!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                err(f"{where}: {key} must be an integer")
        if not isinstance(ev.get("name"), str) or not ev.get("name"):
            err(f"{where}: name must be a non-empty string")
        if ph == "M":
            if ev.get("name") != "process_name":
                err(f"{where}: metadata event must be process_name")
            args = ev.get("args")
            if not isinstance(args, dict) or not isinstance(
                args.get("name"), str
            ):
                err(f"{where}: process_name args.name missing")
            named_pids.add(ev.get("pid"))
            continue
        # ph == "X": a complete event stamped in integer ticks.
        for key in ("ts", "dur"):
            v = ev.get(key)
            if not isinstance(v, int):
                err(f"{where}: {key} must be an integer tick count")
            elif key == "dur" and v < 0:
                err(f"{where}: negative dur")
        args = ev.get("args")
        if not isinstance(args, dict):
            err(f"{where}: args missing")
        else:
            sid = args.get("span_id")
            if not isinstance(sid, int) or sid <= 0:
                err(f"{where}: args.span_id must be a positive integer")
            elif sid in span_ids:
                err(f"{where}: duplicate span_id {sid}")
            else:
                span_ids.add(sid)
            if not isinstance(args.get("parent"), int):
                err(f"{where}: args.parent must be an integer")
            if not isinstance(args.get("node"), int):
                err(f"{where}: args.node must be an integer")
        xs.append(ev)

    for ev in xs:
        if ev.get("pid") not in named_pids:
            err(f"X event pid {ev.get('pid')} has no process_name metadata")
            break

    if errors:
        for e in errors[:20]:
            print(f"trace_summary: FAIL: {e}", file=sys.stderr)
        if len(errors) > 20:
            print(
                f"trace_summary: ... and {len(errors) - 20} more",
                file=sys.stderr,
            )
        sys.exit(1)
    return xs


def summarize(doc, xs, top):
    # Process (node) display names from the metadata events.
    pname = {}
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") == "M" and ev.get("name") == "process_name":
            pname[ev["pid"]] = ev.get("args", {}).get("name", "?")

    # Self ticks = own duration minus time covered by direct children
    # (same pid/tid, parent == span_id).
    by_id = {ev["args"]["span_id"]: ev for ev in xs}
    child_ticks = collections.Counter()
    for ev in xs:
        parent = by_id.get(ev["args"]["parent"])
        if parent is not None:
            child_ticks[parent["args"]["span_id"]] += ev["dur"]

    per_node = collections.defaultdict(
        lambda: collections.defaultdict(lambda: [0, 0, 0])
    )  # node -> name -> [count, total, self]
    for ev in xs:
        row = per_node[ev["pid"]][ev["name"]]
        row[0] += 1
        row[1] += ev["dur"]
        row[2] += max(0, ev["dur"] - child_ticks[ev["args"]["span_id"]])

    total_events = len(xs)
    print(f"{total_events} spans across {len(per_node)} processes")
    for pid in sorted(per_node):
        rows = per_node[pid]
        print(f"\n== {pname.get(pid, f'pid {pid}')} (pid {pid}) ==")
        print(f"{'span':<40} {'count':>7} {'total ticks':>16} {'self ticks':>16}")
        ranked = sorted(rows.items(), key=lambda kv: (-kv[1][1], kv[0]))
        for name, (count, tot, self_t) in ranked[:top]:
            print(f"{name:<40} {count:>7} {tot:>16} {self_t:>16}")
        if len(ranked) > top:
            print(f"... {len(ranked) - top} more span names")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="exported trace JSON path")
    ap.add_argument(
        "--validate",
        action="store_true",
        help="only validate the schema; print PASS/FAIL",
    )
    ap.add_argument(
        "--top", type=int, default=10, help="span names per node to print"
    )
    args = ap.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(str(e))

    xs = validate(doc)
    if args.validate:
        print(f"trace_summary: PASS ({len(xs)} spans)")
        return
    summarize(doc, xs, args.top)


if __name__ == "__main__":
    main()
