// Deterministic, seed-driven stream of INSERT/DELETE edge events — the
// dynamic-graph front door (GraphStreamingCC's update shape, PAPERS.md).
//
// The log owns a shadow copy of the live edge set, so every generated
// event is *valid* by construction: INSERT picks a (src, dst) pair that
// does not exist yet, DELETE picks one that does. Within one epoch the
// same (src, dst) edge is touched at most once, which is what lets the
// PS apply an epoch batch as a set (inserts before deletes, sorted by
// edge) — see net::MutateRequest. Everything is derived from Rng(seed),
// so two logs built from the same (initial edges, options) emit
// byte-identical epochs: the replay path after a kill/restart
// regenerates the exact stream instead of persisting it.
//
// Arrival stamps are simulated time: event i of an epoch arrives at
// epoch_start + i * epoch_ticks / count. The freshness pipeline measures
// staleness against these stamps (arrival -> visibility in a served
// embedding), so they are part of the deterministic contract too.

#ifndef PSGRAPH_STREAM_MUTATION_LOG_H_
#define PSGRAPH_STREAM_MUTATION_LOG_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "graph/types.h"
#include "ps/agent.h"

namespace psgraph::stream {

/// One edge delta plus its simulated arrival time.
struct MutationEvent {
  ps::EdgeMutation mutation;
  int64_t arrival_ticks = 0;
};

/// One ingest batch. Epoch numbering starts at 1 so the pipeline's
/// applied-epoch watermark can use 0 for "nothing applied yet".
struct MutationEpoch {
  int64_t epoch = 0;
  int64_t start_ticks = 0;
  int64_t end_ticks = 0;  ///< window close; ingest happens at/after this
  std::vector<MutationEvent> events;
};

struct MutationLogOptions {
  uint64_t seed = 7;
  /// Vertex-id space; sampled endpoints are uniform over [0, n). Must be
  /// non-zero and (for the packed edge key) below 2^32.
  uint64_t num_vertices = 0;
  double mutations_per_second = 100.0;
  double epoch_seconds = 1.0;
  /// Probability an event is a DELETE of a live edge (falls back to
  /// INSERT while the live set is empty).
  double delete_fraction = 0.3;
  int64_t start_ticks = 0;  ///< arrival clock origin of epoch 1
};

class MutationLog {
 public:
  /// Seeds the shadow edge set from the frozen graph the stream mutates
  /// (self-loops and duplicate edges in the input are dropped — they can
  /// never be the target of a valid generated event).
  MutationLog(const graph::EdgeList& initial_edges,
              const MutationLogOptions& options);

  /// Generates the next epoch (1, 2, ...). Deterministic: the k-th call
  /// returns the same batch for any two logs with equal construction
  /// arguments.
  MutationEpoch Next();

  int64_t epochs_generated() const { return next_epoch_ - 1; }
  uint64_t live_edges() const { return edges_.size(); }

 private:
  uint64_t PackedKey(uint64_t src, uint64_t dst) const {
    return src * options_.num_vertices + dst;
  }

  MutationLogOptions options_;
  Rng rng_;
  int64_t next_epoch_ = 1;
  /// Live edge set: list for uniform DELETE draws (swap-remove), set for
  /// O(1) INSERT membership checks.
  std::vector<std::pair<uint64_t, uint64_t>> edges_;
  std::unordered_set<uint64_t> edge_set_;
};

}  // namespace psgraph::stream

#endif  // PSGRAPH_STREAM_MUTATION_LOG_H_
