// Incremental recompute over a mutable PS adjacency.
//
// DeltaPageRankEngine is the affected-frontier delta-PageRank the paper's
// increment-sparsity optimization (§IV-A) grows into once the graph
// mutates: ranks and residual deltas live on the PS, adjacency is read
// per-iteration from the mutable neighbor tables (never frozen to CSR),
// and each sweep only pulls the *frontier* — the vertices whose residual
// delta is nonzero. A full recompute and an incremental one are the SAME
// loop with different seeds:
//
//   full:        zero ranks, delta_v = reset mass for every v
//                (frontier = the whole id space);
//   incremental: after applying edge mutations, for every mutated
//                source u with rank R_u,
//                  delta_v += damp * R_u / deg_new(u)   for v in A_new(u)
//                  delta_v -= damp * R_u / deg_old(u)   for v in A_old(u)
//                (frontier = the seeded destinations).
//
// The incremental seed is the residual of the OLD fixpoint under the NEW
// transition matrix: R satisfies R = r0 + damp*M_old*R, so the residual
// r0 + damp*M_new*R - R collapses to damp*(M_new - M_old)*R, which is
// exactly the per-mutated-source correction above. Continuing the delta
// iteration from that seed converges to the new graph's fixpoint — same
// answer as a full recompute, touching only the vertices mutations can
// reach.
//
// IncrementalEmbedder is the dirty-vertex re-embedding counterpart: a
// deterministic hash-seeded embedding plus neighbor-averaging smoothing
// steps, re-run only for the vertices an epoch dirtied.
//
// Both record ConvergenceLog rows ("stream.pagerank.delta_l1" /
// "stream.reembed.rows") at a monotone step counter, with a parallel
// "<series>.epoch" row carrying the epoch tag. While either engine runs,
// a CostLedger wait alias re-labels generic RPC waits to
// CostCategory::kStreamRetrain so bench_diff.py can attribute freshness
// regressions to the retrain phase (mutation applies keep their own
// first-class "stream.apply" category via ps.mutate).

#ifndef PSGRAPH_STREAM_INCREMENTAL_H_
#define PSGRAPH_STREAM_INCREMENTAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/psgraph_context.h"
#include "graph/types.h"
#include "ps/agent.h"

namespace psgraph::stream {

/// Loads `edges` into a mutable (never-frozen) neighbor-table matrix,
/// pushed by the executors in contiguous source chunks.
Result<ps::MatrixMeta> LoadMutableAdjacency(
    core::PsGraphContext& ctx, const graph::EdgeList& edges,
    uint64_t num_vertices, const std::string& name);

struct DeltaPageRankOptions {
  double reset_prob = 0.15;
  /// Stop when the folded |delta| L1 drops below tolerance * |V|
  /// (0 disables; runs max_iterations sweeps).
  double tolerance = 1e-7;
  /// Residuals with |d| at or below this are not propagated.
  double prune_epsilon = 0.0;
  int max_iterations = 50;
};

/// What one recompute (full or incremental) cost. vertices_touched is
/// the gateable "strictly fewer vertices" quantity: the number of
/// distinct vertices whose residual was ever pulled.
struct DeltaStats {
  int iterations = 0;
  double final_delta_l1 = 0.0;
  uint64_t vertices_touched = 0;
  uint64_t frontier_total = 0;  ///< sum of per-sweep frontier sizes
  uint64_t edges_processed = 0;
  /// Sorted distinct vertices dirtied by the triggering mutations (the
  /// seed frontier plus the mutated sources); empty for a full run.
  std::vector<uint64_t> affected;
};

class DeltaPageRankEngine {
 public:
  /// Creates `<name>.ranks` / `<name>.deltas` PS vectors next to the
  /// mutable `adjacency` matrix.
  static Result<DeltaPageRankEngine> Create(core::PsGraphContext* ctx,
                                            const ps::MatrixMeta& adjacency,
                                            uint64_t num_vertices,
                                            const DeltaPageRankOptions& opts,
                                            const std::string& name);

  /// Full recompute: zero ranks, reset-mass deltas everywhere, iterate.
  Result<DeltaStats> RecomputeFull();

  /// Applies `mutations` to the adjacency via ps.mutate, seeds the
  /// residual correction and iterates only the affected frontier. The
  /// batch must follow the MutateNeighbors epoch contract (each edge at
  /// most once, inserts valid, deletes of live edges).
  Result<DeltaStats> ApplyMutationsAndRecompute(
      const std::vector<ps::EdgeMutation>& mutations);

  /// Reads the dense rank vector back (batched driver pulls).
  Result<std::vector<double>> ReadRanks();

  const ps::MatrixMeta& adjacency() const { return adjacency_; }
  const ps::MatrixMeta& ranks() const { return ranks_; }
  uint64_t num_vertices() const { return num_vertices_; }

  /// Epoch tag stamped onto convergence rows (0 = bootstrap).
  void set_epoch(int64_t epoch) { epoch_ = epoch; }

 private:
  DeltaPageRankEngine() = default;

  /// The shared sweep loop; `frontier` must be sorted and unique.
  Result<DeltaStats> RunFrontier(std::vector<uint64_t> frontier);

  core::PsGraphContext* ctx_ = nullptr;
  ps::MatrixMeta adjacency_;
  ps::MatrixMeta ranks_;
  ps::MatrixMeta deltas_;
  uint64_t num_vertices_ = 0;
  DeltaPageRankOptions opts_;
  int64_t epoch_ = 0;
  int64_t step_ = 0;  ///< monotone convergence-row index across epochs
};

struct ReembedOptions {
  int dim = 8;
  float alpha = 0.5f;  ///< neighbor-smoothing mix per step
  int steps = 2;
  uint64_t seed = 42;
};

class IncrementalEmbedder {
 public:
  /// Creates the `<name>.emb` PS matrix next to `adjacency`.
  static Result<IncrementalEmbedder> Create(core::PsGraphContext* ctx,
                                            const ps::MatrixMeta& adjacency,
                                            uint64_t num_vertices,
                                            const ReembedOptions& opts,
                                            const std::string& name);

  /// Bootstrap: hash-seeded rows for every vertex (server-side
  /// init.randn), then the smoothing steps over the whole id space.
  Status InitFull();

  /// Re-embeds only `dirty` (sorted, unique): pulls their adjacency and
  /// the needed neighbor rows, re-runs the smoothing steps, pushes the
  /// dirty rows back. Returns rows rewritten (dirty.size() * steps).
  Result<uint64_t> ReembedDirty(const std::vector<uint64_t>& dirty);

  const ps::MatrixMeta& matrix() const { return emb_; }

  void set_epoch(int64_t epoch) { epoch_ = epoch; }

 private:
  IncrementalEmbedder() = default;

  core::PsGraphContext* ctx_ = nullptr;
  ps::MatrixMeta adjacency_;
  ps::MatrixMeta emb_;
  uint64_t num_vertices_ = 0;
  ReembedOptions opts_;
  int64_t epoch_ = 0;
  int64_t step_ = 0;
};

}  // namespace psgraph::stream

#endif  // PSGRAPH_STREAM_INCREMENTAL_H_
