#include "stream/incremental.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/byte_buffer.h"
#include "dataflow/dataset.h"
#include "sim/cost_ledger.h"

namespace psgraph::stream {

namespace {

/// Contiguous slice [begin, end) of an n-element work list for executor
/// e of E — the deterministic chunking every loop here shares.
std::pair<size_t, size_t> ChunkOf(size_t n, int32_t e, int32_t E) {
  return {n * static_cast<size_t>(e) / static_cast<size_t>(E),
          n * (static_cast<size_t>(e) + 1) / static_cast<size_t>(E)};
}

}  // namespace

Result<ps::MatrixMeta> LoadMutableAdjacency(core::PsGraphContext& ctx,
                                            const graph::EdgeList& edges,
                                            uint64_t num_vertices,
                                            const std::string& name) {
  PSG_ASSIGN_OR_RETURN(
      ps::MatrixMeta adj,
      ctx.ps().CreateMatrix(name, num_vertices, 0,
                            ps::StorageKind::kNeighbors,
                            ps::Layout::kRowPartitioned,
                            ps::PartitionScheme::kHash));
  // Group by source on the driver, then executors push contiguous
  // source chunks (each source lives in exactly one chunk, so the
  // server-side merge never interleaves one vertex's list).
  std::map<graph::VertexId, std::vector<graph::VertexId>> by_src;
  for (const graph::Edge& e : edges) by_src[e.src].push_back(e.dst);
  std::vector<graph::NeighborList> lists;
  lists.reserve(by_src.size());
  for (auto& [src, dsts] : by_src) {
    graph::NeighborList nl;
    nl.vertex = src;
    nl.neighbors = std::move(dsts);
    lists.push_back(std::move(nl));
  }
  const int32_t E = ctx.num_executors();
  PSG_RETURN_NOT_OK(dataflow::RunPartitioned(
      &ctx.dataflow(), E, [&](int32_t e) -> Status {
        auto [begin, end] = ChunkOf(lists.size(), e, E);
        if (begin == end) return Status::OK();
        std::vector<graph::NeighborList> chunk(
            lists.begin() + static_cast<ptrdiff_t>(begin),
            lists.begin() + static_cast<ptrdiff_t>(end));
        return ctx.agent(e).PushNeighbors(adj, chunk);
      }));
  return adj;
}

Result<DeltaPageRankEngine> DeltaPageRankEngine::Create(
    core::PsGraphContext* ctx, const ps::MatrixMeta& adjacency,
    uint64_t num_vertices, const DeltaPageRankOptions& opts,
    const std::string& name) {
  DeltaPageRankEngine engine;
  engine.ctx_ = ctx;
  engine.adjacency_ = adjacency;
  engine.num_vertices_ = num_vertices;
  engine.opts_ = opts;
  PSG_ASSIGN_OR_RETURN(
      engine.ranks_,
      ctx->ps().CreateMatrix(name + ".ranks", num_vertices, 1));
  PSG_ASSIGN_OR_RETURN(
      engine.deltas_,
      ctx->ps().CreateMatrix(name + ".deltas", num_vertices, 1));
  return engine;
}

Result<DeltaStats> DeltaPageRankEngine::RecomputeFull() {
  sim::ScopedWaitAlias alias(ctx_->cluster().cost_ledger(),
                             sim::CostCategory::kStreamRetrain);
  ps::PsAgent driver_agent(&ctx_->ps(), ctx_->cluster().config().driver());
  {
    ByteBuffer args;
    args.Write<ps::MatrixId>(ranks_.id);
    args.Write<float>(0.0f);
    PSG_ASSIGN_OR_RETURN(auto r, driver_agent.CallFuncAll("init.fill", args));
    (void)r;
  }
  {
    ByteBuffer args;
    args.Write<ps::MatrixId>(deltas_.id);
    args.Write<float>(static_cast<float>(opts_.reset_prob));
    PSG_ASSIGN_OR_RETURN(auto r, driver_agent.CallFuncAll("init.fill", args));
    (void)r;
  }
  std::vector<uint64_t> frontier(num_vertices_);
  for (uint64_t v = 0; v < num_vertices_; ++v) frontier[v] = v;
  return RunFrontier(std::move(frontier));
}

Result<DeltaStats> DeltaPageRankEngine::ApplyMutationsAndRecompute(
    const std::vector<ps::EdgeMutation>& mutations) {
  ps::PsAgent driver_agent(&ctx_->ps(), ctx_->cluster().config().driver());

  // Distinct mutated sources, sorted — the vertices whose out-transition
  // column changes.
  std::vector<uint64_t> srcs;
  srcs.reserve(mutations.size());
  for (const ps::EdgeMutation& m : mutations) srcs.push_back(m.src);
  std::sort(srcs.begin(), srcs.end());
  srcs.erase(std::unique(srcs.begin(), srcs.end()), srcs.end());

  PSG_ASSIGN_OR_RETURN(std::vector<ps::NeighborEntry> old_adj,
                       driver_agent.PullNeighbors(adjacency_, srcs));
  PSG_ASSIGN_OR_RETURN(std::vector<float> src_ranks,
                       driver_agent.PullRows(ranks_, srcs));

  // The apply itself: caller waits land in "stream.apply", the handler's
  // compute too (see WaitCategoryForMethod and the rpc.cc callee branch).
  PSG_RETURN_NOT_OK(driver_agent.MutateNeighbors(adjacency_, mutations));

  sim::ScopedWaitAlias alias(ctx_->cluster().cost_ledger(),
                             sim::CostCategory::kStreamRetrain);
  PSG_ASSIGN_OR_RETURN(std::vector<ps::NeighborEntry> new_adj,
                       driver_agent.PullNeighbors(adjacency_, srcs));

  // Residual seed: delta_v gets damp * R_u * (M_new - M_old)[v, u] for
  // every mutated source u (see the header derivation). std::map keeps
  // the seed keys sorted for free.
  const double damp = 1.0 - opts_.reset_prob;
  std::map<uint64_t, double> seeds;
  uint64_t scanned = 0;
  for (size_t i = 0; i < srcs.size(); ++i) {
    const double r = src_ranks[i];
    scanned += old_adj[i].neighbors.size() + new_adj[i].neighbors.size();
    if (r == 0.0) continue;
    if (!new_adj[i].neighbors.empty()) {
      const double c = damp * r / new_adj[i].neighbors.size();
      for (uint64_t v : new_adj[i].neighbors) seeds[v] += c;
    }
    if (!old_adj[i].neighbors.empty()) {
      const double c = damp * r / old_adj[i].neighbors.size();
      for (uint64_t v : old_adj[i].neighbors) seeds[v] -= c;
    }
  }
  ctx_->cluster().clock().Advance(
      ctx_->cluster().config().driver(),
      ctx_->cluster().cost().ComputeTime(scanned + mutations.size()));

  std::vector<uint64_t> frontier;
  std::vector<uint64_t> seed_keys;
  std::vector<float> seed_vals;
  frontier.reserve(seeds.size());
  for (const auto& [v, d] : seeds) {
    const float f = static_cast<float>(d);
    if (f == 0.0f) continue;  // exact cancellation: nothing to propagate
    frontier.push_back(v);
    seed_keys.push_back(v);
    seed_vals.push_back(f);
  }
  if (!seed_keys.empty()) {
    PSG_RETURN_NOT_OK(driver_agent.PushAdd(deltas_, seed_keys, seed_vals));
  }

  // affected = dirtied destinations + the mutated sources themselves.
  std::vector<uint64_t> affected = frontier;
  affected.insert(affected.end(), srcs.begin(), srcs.end());
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());

  PSG_ASSIGN_OR_RETURN(DeltaStats stats, RunFrontier(std::move(frontier)));
  stats.affected = std::move(affected);
  return stats;
}

Result<DeltaStats> DeltaPageRankEngine::RunFrontier(
    std::vector<uint64_t> frontier) {
  DeltaStats stats;
  const int32_t E = ctx_->num_executors();
  const double damp = 1.0 - opts_.reset_prob;
  ps::PsAgent driver_agent(&ctx_->ps(), ctx_->cluster().config().driver());
  std::unordered_set<uint64_t> touched;

  ByteBuffer advance_args;
  advance_args.Write<ps::MatrixId>(deltas_.id);
  advance_args.Write<ps::MatrixId>(ranks_.id);

  int iter = 0;
  while (!frontier.empty() && iter < opts_.max_iterations) {
    touched.insert(frontier.begin(), frontier.end());
    stats.frontier_total += frontier.size();

    // Sweep phase: each executor pulls its frontier chunk's residuals
    // and (mutable) adjacency and accumulates contributions locally.
    std::vector<std::unordered_map<uint64_t, float>> updates(E);
    std::vector<uint64_t> edges_done(E, 0);
    PSG_RETURN_NOT_OK(dataflow::RunPartitioned(
        &ctx_->dataflow(), E, [&](int32_t e) -> Status {
          auto [begin, end] = ChunkOf(frontier.size(), e, E);
          if (begin == end) return Status::OK();
          std::vector<uint64_t> keys(
              frontier.begin() + static_cast<ptrdiff_t>(begin),
              frontier.begin() + static_cast<ptrdiff_t>(end));
          PSG_ASSIGN_OR_RETURN(std::vector<float> ds,
                               ctx_->agent(e).PullRows(deltas_, keys));
          PSG_ASSIGN_OR_RETURN(
              std::vector<ps::NeighborEntry> adj,
              ctx_->agent(e).PullNeighbors(adjacency_, keys));
          auto& local = updates[e];
          uint64_t edges_processed = 0;
          for (size_t i = 0; i < keys.size(); ++i) {
            const double d = ds[i];
            if (std::fabs(d) <= opts_.prune_epsilon) continue;
            const auto& dsts = adj[i].neighbors;
            if (dsts.empty()) continue;
            const float contrib = static_cast<float>(
                damp * d / static_cast<double>(dsts.size()));
            for (uint64_t dst : dsts) local[dst] += contrib;
            edges_processed += dsts.size();
          }
          edges_done[static_cast<size_t>(e)] = edges_processed;
          ctx_->cluster().clock().Advance(
              ctx_->cluster().config().executor(e),
              ctx_->cluster().cost().ComputeTime(edges_processed));
          return Status::OK();
        }));

    // Fold phase: ranks += deltas, deltas reset; l1 is the residual mass
    // consumed by this sweep.
    PSG_ASSIGN_OR_RETURN(
        double l1, driver_agent.CallFuncSum("pagerank.advance",
                                            advance_args));
    ctx_->convergence().Record("stream.pagerank.delta_l1", step_, l1);
    ctx_->convergence().Record("stream.pagerank.epoch", step_,
                               static_cast<double>(epoch_));
    ++step_;

    // Push phase: the new residuals, sorted per executor for a stable
    // wire image and apply order.
    PSG_RETURN_NOT_OK(dataflow::RunPartitioned(
        &ctx_->dataflow(), E, [&](int32_t e) -> Status {
          auto& local = updates[e];
          if (local.empty()) return Status::OK();
          std::vector<uint64_t> keys;
          keys.reserve(local.size());
          for (const auto& [dst, _] : local) keys.push_back(dst);
          std::sort(keys.begin(), keys.end());
          std::vector<float> values;
          values.reserve(keys.size());
          for (uint64_t k : keys) values.push_back(local[k]);
          return ctx_->agent(e).PushAdd(deltas_, keys, values);
        }));

    // Next frontier: destinations whose RECEIVED residual is itself
    // worth propagating. Folding already banked every pushed update into
    // the ranks, so dropping a below-threshold destination loses only
    // its onward |contribution| <= prune_epsilon — the same mass the
    // in-sweep prune discards. Without this filter the frontier would
    // include the whole one-hop halo of the wave and `touched` would
    // saturate on small-world graphs. The merge iterates executors in
    // index order, so the sums are thread-count independent.
    std::vector<uint64_t> next;
    {
      std::unordered_map<uint64_t, double> merged;
      for (const auto& local : updates) {
        for (const auto& [dst, v] : local) {
          merged[dst] += static_cast<double>(v);
        }
      }
      next.reserve(merged.size());
      for (const auto& [dst, v] : merged) {
        if (std::fabs(v) > opts_.prune_epsilon) next.push_back(dst);
      }
    }
    std::sort(next.begin(), next.end());
    for (uint64_t e : edges_done) stats.edges_processed += e;

    ctx_->sync().IterationBarrier();
    stats.iterations = ++iter;
    stats.final_delta_l1 = l1;
    if (opts_.tolerance > 0.0 &&
        l1 < opts_.tolerance * static_cast<double>(num_vertices_)) {
      break;
    }
    frontier = std::move(next);
  }

  // Fold whatever the last sweep pushed (the loop folds before pushing).
  PSG_ASSIGN_OR_RETURN(
      double tail, driver_agent.CallFuncSum("pagerank.advance",
                                            advance_args));
  stats.final_delta_l1 = tail;
  stats.vertices_touched = touched.size();
  return stats;
}

Result<std::vector<double>> DeltaPageRankEngine::ReadRanks() {
  ps::PsAgent driver_agent(&ctx_->ps(), ctx_->cluster().config().driver());
  std::vector<double> out(num_vertices_, 0.0);
  const uint64_t kBatch = 1 << 16;
  for (uint64_t begin = 0; begin < num_vertices_; begin += kBatch) {
    const uint64_t end = std::min<uint64_t>(num_vertices_, begin + kBatch);
    std::vector<uint64_t> keys(end - begin);
    for (uint64_t k = begin; k < end; ++k) keys[k - begin] = k;
    PSG_ASSIGN_OR_RETURN(std::vector<float> vals,
                         driver_agent.PullRows(ranks_, keys));
    for (uint64_t k = begin; k < end; ++k) out[k] = vals[k - begin];
  }
  return out;
}

Result<IncrementalEmbedder> IncrementalEmbedder::Create(
    core::PsGraphContext* ctx, const ps::MatrixMeta& adjacency,
    uint64_t num_vertices, const ReembedOptions& opts,
    const std::string& name) {
  IncrementalEmbedder emb;
  emb.ctx_ = ctx;
  emb.adjacency_ = adjacency;
  emb.num_vertices_ = num_vertices;
  emb.opts_ = opts;
  PSG_ASSIGN_OR_RETURN(
      emb.emb_,
      ctx->ps().CreateMatrix(name + ".emb", num_vertices,
                             static_cast<uint32_t>(opts.dim)));
  return emb;
}

Status IncrementalEmbedder::InitFull() {
  ps::PsAgent driver_agent(&ctx_->ps(), ctx_->cluster().config().driver());
  ByteBuffer args;
  args.Write<ps::MatrixId>(emb_.id);
  args.Write<float>(1.0f);
  args.Write<uint64_t>(opts_.seed);
  PSG_ASSIGN_OR_RETURN(auto r,
                       driver_agent.CallFuncAll("init.randn", args));
  (void)r;
  std::vector<uint64_t> all(num_vertices_);
  for (uint64_t v = 0; v < num_vertices_; ++v) all[v] = v;
  return ReembedDirty(all).status();
}

Result<uint64_t> IncrementalEmbedder::ReembedDirty(
    const std::vector<uint64_t>& dirty) {
  if (dirty.empty()) return uint64_t{0};
  sim::ScopedWaitAlias alias(ctx_->cluster().cost_ledger(),
                             sim::CostCategory::kStreamRetrain);
  const int32_t E = ctx_->num_executors();
  const uint32_t d = emb_.num_cols;
  for (int step = 0; step < opts_.steps; ++step) {
    // Phase 1: pull everything and stage the smoothed rows; no pushes
    // until every executor joined, so reads never race writes.
    std::vector<std::vector<float>> staged(E);
    PSG_RETURN_NOT_OK(dataflow::RunPartitioned(
        &ctx_->dataflow(), E, [&](int32_t e) -> Status {
          auto [begin, end] = ChunkOf(dirty.size(), e, E);
          if (begin == end) return Status::OK();
          std::vector<uint64_t> chunk(
              dirty.begin() + static_cast<ptrdiff_t>(begin),
              dirty.begin() + static_cast<ptrdiff_t>(end));
          PSG_ASSIGN_OR_RETURN(
              std::vector<ps::NeighborEntry> adj,
              ctx_->agent(e).PullNeighbors(adjacency_, chunk));
          // Rows needed: the chunk plus every neighbor it averages over.
          std::vector<uint64_t> needed = chunk;
          for (const ps::NeighborEntry& a : adj) {
            needed.insert(needed.end(), a.neighbors.begin(),
                          a.neighbors.end());
          }
          std::sort(needed.begin(), needed.end());
          needed.erase(std::unique(needed.begin(), needed.end()),
                       needed.end());
          PSG_ASSIGN_OR_RETURN(std::vector<float> rows,
                               ctx_->agent(e).PullRows(emb_, needed));
          auto row_of = [&](uint64_t v) -> const float* {
            const size_t i = static_cast<size_t>(
                std::lower_bound(needed.begin(), needed.end(), v) -
                needed.begin());
            return rows.data() + i * d;
          };
          std::vector<float>& out = staged[e];
          out.resize(chunk.size() * d);
          uint64_t averaged = 0;
          for (size_t i = 0; i < chunk.size(); ++i) {
            const float* self = row_of(chunk[i]);
            float* dst = out.data() + i * d;
            const auto& nbrs = adj[i].neighbors;
            if (nbrs.empty()) {
              std::copy(self, self + d, dst);
              continue;
            }
            for (uint32_t c = 0; c < d; ++c) {
              double mean = 0.0;
              for (uint64_t u : nbrs) mean += row_of(u)[c];
              mean /= static_cast<double>(nbrs.size());
              dst[c] = (1.0f - opts_.alpha) * self[c] +
                       opts_.alpha * static_cast<float>(mean);
            }
            averaged += nbrs.size();
          }
          ctx_->cluster().clock().Advance(
              ctx_->cluster().config().executor(e),
              ctx_->cluster().cost().ComputeTime(averaged * d));
          return Status::OK();
        }));
    // Phase 2: write the staged rows back.
    PSG_RETURN_NOT_OK(dataflow::RunPartitioned(
        &ctx_->dataflow(), E, [&](int32_t e) -> Status {
          auto [begin, end] = ChunkOf(dirty.size(), e, E);
          if (begin == end) return Status::OK();
          std::vector<uint64_t> chunk(
              dirty.begin() + static_cast<ptrdiff_t>(begin),
              dirty.begin() + static_cast<ptrdiff_t>(end));
          return ctx_->agent(e).PushAssign(emb_, chunk, staged[e]);
        }));
    ctx_->sync().IterationBarrier();
    ctx_->convergence().Record("stream.reembed.rows", step_,
                               static_cast<double>(dirty.size()));
    ctx_->convergence().Record("stream.reembed.epoch", step_,
                               static_cast<double>(epoch_));
    ++step_;
  }
  return static_cast<uint64_t>(dirty.size()) *
         static_cast<uint64_t>(opts_.steps);
}

}  // namespace psgraph::stream
