#include "stream/mutation_log.h"

#include <algorithm>
#include <cmath>

#include <cstdio>
#include <cstdlib>

#include "sim/sim_clock.h"

namespace psgraph::stream {

MutationLog::MutationLog(const graph::EdgeList& initial_edges,
                         const MutationLogOptions& options)
    : options_(options), rng_(options.seed) {
  if (options_.num_vertices == 0 ||
      options_.num_vertices >= (uint64_t{1} << 32)) {
    std::fprintf(stderr,
                 "mutation log: num_vertices must be in [1, 2^32) for "
                 "packed edge keys (got %llu)\n",
                 static_cast<unsigned long long>(options_.num_vertices));
    std::abort();
  }
  edges_.reserve(initial_edges.size());
  for (const graph::Edge& e : initial_edges) {
    if (e.src >= options_.num_vertices || e.dst >= options_.num_vertices) {
      std::fprintf(stderr,
                   "mutation log: edge %llu -> %llu outside the "
                   "num_vertices=%llu id space (packed keys would "
                   "collide)\n",
                   static_cast<unsigned long long>(e.src),
                   static_cast<unsigned long long>(e.dst),
                   static_cast<unsigned long long>(options_.num_vertices));
      std::abort();
    }
    if (e.src == e.dst) continue;
    if (edge_set_.insert(PackedKey(e.src, e.dst)).second) {
      edges_.push_back({e.src, e.dst});
    }
  }
}

MutationEpoch MutationLog::Next() {
  MutationEpoch epoch;
  epoch.epoch = next_epoch_++;
  const int64_t epoch_ticks =
      sim::SimClock::TicksOf(options_.epoch_seconds);
  epoch.start_ticks =
      options_.start_ticks + (epoch.epoch - 1) * epoch_ticks;
  epoch.end_ticks = epoch.start_ticks + epoch_ticks;

  const uint64_t count = static_cast<uint64_t>(std::llround(
      options_.mutations_per_second * options_.epoch_seconds));
  epoch.events.reserve(count);
  // Edges already touched this epoch — at most one event per edge per
  // batch, so inserts and deletes commute server-side.
  std::unordered_set<uint64_t> touched;

  for (uint64_t i = 0; i < count; ++i) {
    const int64_t arrival =
        epoch.start_ticks +
        static_cast<int64_t>((static_cast<uint64_t>(epoch_ticks) * i) /
                             count);
    const bool want_delete =
        !edges_.empty() && rng_.NextBool(options_.delete_fraction);
    MutationEvent ev;
    ev.arrival_ticks = arrival;
    bool produced = false;
    if (want_delete) {
      // Uniform draw over the live set; bounded retries dodge edges
      // already touched this epoch.
      for (int attempt = 0; attempt < 64 && !edges_.empty(); ++attempt) {
        const size_t idx =
            static_cast<size_t>(rng_.NextBounded(edges_.size()));
        const auto [src, dst] = edges_[idx];
        const uint64_t key = PackedKey(src, dst);
        if (touched.count(key) != 0) continue;
        touched.insert(key);
        edge_set_.erase(key);
        edges_[idx] = edges_.back();
        edges_.pop_back();
        ev.mutation = {src, dst, 1.0f, /*insert=*/false};
        produced = true;
        break;
      }
    }
    if (!produced) {
      for (int attempt = 0; attempt < 64; ++attempt) {
        const uint64_t src = rng_.NextBounded(options_.num_vertices);
        const uint64_t dst = rng_.NextBounded(options_.num_vertices);
        if (src == dst) continue;
        const uint64_t key = PackedKey(src, dst);
        if (edge_set_.count(key) != 0 || touched.count(key) != 0) continue;
        touched.insert(key);
        edge_set_.insert(key);
        edges_.push_back({src, dst});
        ev.mutation = {src, dst, 1.0f, /*insert=*/true};
        produced = true;
        break;
      }
    }
    // Both samplers exhausted their retries (degenerate tiny graphs):
    // drop the slot rather than emit an invalid event. Still
    // deterministic — the rng draws above are part of the stream.
    if (produced) epoch.events.push_back(ev);
  }
  return epoch;
}

}  // namespace psgraph::stream
