#include "stream/pipeline.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/event_journal.h"

namespace psgraph::stream {

FreshnessPipeline::FreshnessPipeline(core::PsGraphContext* ctx,
                                     DeltaPageRankEngine* engine,
                                     IncrementalEmbedder* embedder,
                                     PipelineOptions options)
    : ctx_(ctx),
      engine_(engine),
      embedder_(embedder),
      options_(std::move(options)) {}

Status FreshnessPipeline::Init() {
  PSG_ASSIGN_OR_RETURN(
      watermark_,
      ctx_->ps().CreateMatrix(options_.watermark_matrix, 1, 1));
  PSG_RETURN_NOT_OK(SetWatermark(0));
  return ctx_->master().CheckpointAll();
}

Result<int64_t> FreshnessPipeline::Watermark() {
  ps::PsAgent driver_agent(&ctx_->ps(), ctx_->cluster().config().driver());
  PSG_ASSIGN_OR_RETURN(std::vector<float> row,
                       driver_agent.PullRows(watermark_, {0}));
  return static_cast<int64_t>(row[0]);
}

Status FreshnessPipeline::SetWatermark(int64_t epoch) {
  ps::PsAgent driver_agent(&ctx_->ps(), ctx_->cluster().config().driver());
  // Float storage is exact for any realistic epoch count (< 2^24).
  return driver_agent.PushAssign(watermark_, {0},
                                 {static_cast<float>(epoch)});
}

Result<EpochResult> FreshnessPipeline::RunEpoch(
    const MutationEpoch& epoch) {
  EpochResult result;
  result.epoch = epoch.epoch;

  // Fire scheduled failures and repair before touching state; on a
  // consistent recovery everything (adjacency, ranks, embeddings AND
  // the watermark) rolled back to the last epoch boundary together.
  PSG_ASSIGN_OR_RETURN(auto recovery,
                       ctx_->HandleFailures(epoch.epoch, options_.recovery));
  if (recovery.servers_restarted > 0) {
    PSG_LOG(Info) << "stream: recovered " << recovery.servers_restarted
                  << " server(s) before epoch " << epoch.epoch;
  }

  // Exactly-once: an epoch at or below the watermark was already applied
  // by a previous (possibly pre-kill) pass over the log.
  PSG_ASSIGN_OR_RETURN(int64_t watermark, Watermark());
  if (epoch.epoch <= watermark) {
    result.skipped = true;
    return result;
  }
  if (epoch.epoch != watermark + 1) {
    return Status::FailedPrecondition(
        "stream: epoch " + std::to_string(epoch.epoch) +
        " offered with watermark " + std::to_string(watermark) +
        " (epochs must be replayed in order)");
  }

  // Ingest happens once the epoch window closes; the driver cannot act
  // on an event before it arrives.
  ctx_->cluster().clock().AdvanceToTicks(ctx_->cluster().config().driver(),
                                         epoch.end_ticks);

  std::vector<ps::EdgeMutation> mutations;
  mutations.reserve(epoch.events.size());
  for (const MutationEvent& ev : epoch.events) {
    mutations.push_back(ev.mutation);
  }
  result.mutations = mutations.size();

  ctx_->events().set_iteration(epoch.epoch);
  ctx_->events().Record(sim::JournalEventType::kEpochIngest, /*node=*/-1,
                        ctx_->cluster().clock().MakespanTicks(),
                        static_cast<int64_t>(mutations.size()));

  if (engine_ != nullptr) {
    engine_->set_epoch(epoch.epoch);
    PSG_ASSIGN_OR_RETURN(result.recompute,
                         engine_->ApplyMutationsAndRecompute(mutations));
    if (embedder_ != nullptr) {
      embedder_->set_epoch(epoch.epoch);
      PSG_ASSIGN_OR_RETURN(result.reembed_rows,
                           embedder_->ReembedDirty(result.recompute.affected));
    }
  }

  PSG_RETURN_NOT_OK(SetWatermark(epoch.epoch));
  if (options_.checkpoint_each_epoch) {
    PSG_RETURN_NOT_OK(ctx_->master().CheckpointAll());
  }

  if (publisher_ != nullptr) {
    PSG_ASSIGN_OR_RETURN(auto manifest, publisher_->Publish());
    result.version = manifest.version;
    if (router_ != nullptr) {
      PSG_RETURN_NOT_OK(router_->SwapTo(manifest.version));
    }
  }
  result.publish_ticks =
      ctx_->cluster().clock().NowTicks(ctx_->cluster().config().driver());
  ctx_->events().Record(sim::JournalEventType::kEpochPublish, /*node=*/-1,
                        ctx_->cluster().clock().MakespanTicks(),
                        result.version);

  result.staleness_ticks.reserve(epoch.events.size());
  for (const MutationEvent& ev : epoch.events) {
    result.staleness_ticks.push_back(
        std::max<int64_t>(0, result.publish_ticks - ev.arrival_ticks));
  }
  return result;
}

}  // namespace psgraph::stream
