// The continuous freshness pipeline: ingest epoch -> incremental retrain
// -> snapshot republish -> zero-torn-read hot swap on the serving tier.
//
// Exactly-once across kill/restart: the applied-epoch watermark is a
// one-row PS matrix that checkpoints and rolls back WITH the adjacency,
// ranks, deltas and embeddings (PsServer::Checkpoint serializes rows and
// neighbor tables together), so after a consistent recovery the driver
// reads the watermark and skips every epoch at or below it — replaying
// the deterministic MutationLog then re-applies exactly the lost
// epochs, never a duplicate. Epoch boundaries are journaled through the
// EventJournal (epoch_ingest with the mutation count, epoch_publish with
// the committed snapshot version) so trace tooling can chart the
// pipeline next to recovery timelines.
//
// Staleness: an edge event arriving at tick `a` becomes visible in a
// served embedding when the post-retrain snapshot swap completes at tick
// `p` on the serving tier; its staleness is `p - a`. RunEpoch returns
// the per-event samples; bench_freshness reduces them to the SLO-gated
// p50/p99.

#ifndef PSGRAPH_STREAM_PIPELINE_H_
#define PSGRAPH_STREAM_PIPELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/psgraph_context.h"
#include "serving/router.h"
#include "serving/snapshot.h"
#include "stream/incremental.h"
#include "stream/mutation_log.h"

namespace psgraph::stream {

struct PipelineOptions {
  std::string watermark_matrix = "stream.watermark";
  /// Checkpoint every server after each applied epoch, making the epoch
  /// the recovery granularity (consistent restores land on an epoch
  /// boundary and the watermark replay is exact).
  bool checkpoint_each_epoch = true;
  ps::RecoveryMode recovery = ps::RecoveryMode::kConsistent;
};

/// What one RunEpoch call did.
struct EpochResult {
  int64_t epoch = 0;
  /// True when the watermark said this epoch was already applied (a
  /// replay after recovery); nothing else in the struct is meaningful.
  bool skipped = false;
  uint64_t mutations = 0;
  DeltaStats recompute;
  uint64_t reembed_rows = 0;
  int64_t version = 0;        ///< committed snapshot version (0 = none)
  int64_t publish_ticks = 0;  ///< driver tick after the serving swap
  /// Per-event staleness (publish_ticks - arrival), event order.
  std::vector<int64_t> staleness_ticks;
};

class FreshnessPipeline {
 public:
  /// `engine` and `embedder` must outlive the pipeline; either may be
  /// null to skip that retrain stage (tests). Serving is attached
  /// separately — without it, epochs apply and retrain but "publish" is
  /// just the watermark commit.
  FreshnessPipeline(core::PsGraphContext* ctx, DeltaPageRankEngine* engine,
                    IncrementalEmbedder* embedder, PipelineOptions options);

  /// Creates the watermark matrix and checkpoints the bootstrap state.
  /// Call after the initial full recompute, before the first epoch.
  Status Init();

  /// Hooks up the serving tier: each applied epoch publishes a snapshot
  /// version and hot-swaps the router to it.
  void AttachServing(serving::SnapshotPublisher* publisher,
                     serving::ServingRouter* router) {
    publisher_ = publisher;
    router_ = router;
  }

  /// Applies one epoch end-to-end (failure handling first, then the
  /// exactly-once watermark check, mutate, incremental recompute,
  /// re-embed, watermark commit, checkpoint, publish + swap).
  Result<EpochResult> RunEpoch(const MutationEpoch& epoch);

  /// The applied-epoch watermark as the PS currently holds it.
  Result<int64_t> Watermark();

 private:
  Status SetWatermark(int64_t epoch);

  core::PsGraphContext* ctx_;
  DeltaPageRankEngine* engine_;
  IncrementalEmbedder* embedder_;
  PipelineOptions options_;
  ps::MatrixMeta watermark_;
  serving::SnapshotPublisher* publisher_ = nullptr;
  serving::ServingRouter* router_ = nullptr;
};

}  // namespace psgraph::stream

#endif  // PSGRAPH_STREAM_PIPELINE_H_
