// Dataset<T>: the RDD abstraction of the mini-Spark engine.
//
// A Dataset is a lazy, partitioned, immutable collection with lineage:
// computing a partition re-derives it from its parents, so losing a cached
// partition (executor failure) is recovered by recomputation — Spark's
// fault-tolerance model. Narrow transforms (map/filter/flatMap) stay on
// the owning executor; wide transforms (groupByKey/reduceByKey/coGroup)
// run a real hash shuffle: map-side serialization to per-reducer blocks
// (charged as disk writes), reduce-side fetches (disk read + network) and
// hash-table builds (charged against the executor memory budget — the
// source of GraphX's OOM behaviour).

#ifndef PSGRAPH_DATAFLOW_DATASET_H_
#define PSGRAPH_DATAFLOW_DATASET_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/result.h"
#include "common/status.h"
#include "dataflow/context.h"
#include "dataflow/element_traits.h"

namespace psgraph::dataflow {

/// Hash used to route keys to reduce partitions. All shuffle participants
/// must agree on it.
template <typename K>
uint64_t KeyHash(const K& k) {
  if constexpr (std::is_integral_v<K>) {
    return Hash64(static_cast<uint64_t>(k));
  } else if constexpr (std::is_same_v<K, std::string>) {
    return HashBytes(k);
  } else if constexpr (detail::IsPair<K>::value) {
    return HashCombine(KeyHash(k.first), KeyHash(k.second));
  } else {
    static_assert(std::is_integral_v<K>, "unsupported key type");
    return 0;
  }
}

/// Hash functor for internal shuffle hash tables (std::hash has no
/// specialization for pairs).
template <typename K>
struct KeyHasher {
  size_t operator()(const K& k) const {
    return static_cast<size_t>(KeyHash(k));
  }
};

namespace detail {

/// Base of the lineage DAG. Compute(p) derives partition p from scratch
/// (or from caches further up the chain).
template <typename T>
class Node {
 public:
  Node(DataflowContext* ctx, int32_t num_partitions)
      : ctx_(ctx), num_partitions_(num_partitions) {}
  virtual ~Node() = default;

  virtual Result<std::vector<T>> Compute(int32_t partition) = 0;

  DataflowContext* ctx() const { return ctx_; }
  int32_t num_partitions() const { return num_partitions_; }

 protected:
  DataflowContext* ctx_;
  int32_t num_partitions_;
};

template <typename T>
class SourceNode final : public Node<T> {
 public:
  SourceNode(DataflowContext* ctx, std::vector<std::vector<T>> parts)
      : Node<T>(ctx, static_cast<int32_t>(parts.size())),
        parts_(std::move(parts)) {}

  Result<std::vector<T>> Compute(int32_t p) override {
    this->ctx_->ChargeCompute(p, parts_[p].size());
    return parts_[p];
  }

 private:
  std::vector<std::vector<T>> parts_;
};

template <typename T, typename U, typename F>
class MapNode final : public Node<U> {
 public:
  MapNode(std::shared_ptr<Node<T>> parent, F fn)
      : Node<U>(parent->ctx(), parent->num_partitions()),
        parent_(std::move(parent)),
        fn_(std::move(fn)) {}

  Result<std::vector<U>> Compute(int32_t p) override {
    PSG_ASSIGN_OR_RETURN(std::vector<T> in, parent_->Compute(p));
    this->ctx_->ChargeCompute(p, in.size());
    std::vector<U> out;
    out.reserve(in.size());
    for (auto& v : in) out.push_back(fn_(v));
    return out;
  }

 private:
  std::shared_ptr<Node<T>> parent_;
  F fn_;
};

template <typename T, typename F>
class FilterNode final : public Node<T> {
 public:
  FilterNode(std::shared_ptr<Node<T>> parent, F fn)
      : Node<T>(parent->ctx(), parent->num_partitions()),
        parent_(std::move(parent)),
        fn_(std::move(fn)) {}

  Result<std::vector<T>> Compute(int32_t p) override {
    PSG_ASSIGN_OR_RETURN(std::vector<T> in, parent_->Compute(p));
    this->ctx_->ChargeCompute(p, in.size());
    std::vector<T> out;
    for (auto& v : in) {
      if (fn_(v)) out.push_back(std::move(v));
    }
    return out;
  }

 private:
  std::shared_ptr<Node<T>> parent_;
  F fn_;
};

template <typename T, typename U, typename F>
class FlatMapNode final : public Node<U> {
 public:
  FlatMapNode(std::shared_ptr<Node<T>> parent, F fn)
      : Node<U>(parent->ctx(), parent->num_partitions()),
        parent_(std::move(parent)),
        fn_(std::move(fn)) {}

  Result<std::vector<U>> Compute(int32_t p) override {
    PSG_ASSIGN_OR_RETURN(std::vector<T> in, parent_->Compute(p));
    std::vector<U> out;
    for (auto& v : in) {
      std::vector<U> sub = fn_(v);
      for (auto& s : sub) out.push_back(std::move(s));
    }
    this->ctx_->ChargeCompute(p, in.size() + out.size());
    return out;
  }

 private:
  std::shared_ptr<Node<T>> parent_;
  F fn_;
};

template <typename T, typename U, typename F>
class MapPartitionsNode final : public Node<U> {
 public:
  MapPartitionsNode(std::shared_ptr<Node<T>> parent, F fn)
      : Node<U>(parent->ctx(), parent->num_partitions()),
        parent_(std::move(parent)),
        fn_(std::move(fn)) {}

  Result<std::vector<U>> Compute(int32_t p) override {
    PSG_ASSIGN_OR_RETURN(std::vector<T> in, parent_->Compute(p));
    this->ctx_->ChargeCompute(p, in.size());
    return fn_(p, std::move(in));  // F -> Result<std::vector<U>>
  }

 private:
  std::shared_ptr<Node<T>> parent_;
  F fn_;
};

template <typename T>
class UnionNode final : public Node<T> {
 public:
  UnionNode(std::shared_ptr<Node<T>> a, std::shared_ptr<Node<T>> b)
      : Node<T>(a->ctx(), a->num_partitions() + b->num_partitions()),
        a_(std::move(a)),
        b_(std::move(b)) {}

  Result<std::vector<T>> Compute(int32_t p) override {
    if (p < a_->num_partitions()) return a_->Compute(p);
    return b_->Compute(p - a_->num_partitions());
  }

 private:
  std::shared_ptr<Node<T>> a_;
  std::shared_ptr<Node<T>> b_;
};

/// Materializes parent partitions once per executor epoch; a killed
/// executor's cache entries become stale and are recomputed via lineage.
template <typename T>
class CacheNode final : public Node<T> {
 public:
  explicit CacheNode(std::shared_ptr<Node<T>> parent)
      : Node<T>(parent->ctx(), parent->num_partitions()),
        parent_(std::move(parent)),
        slots_(this->num_partitions_) {}

  Result<std::vector<T>> Compute(int32_t p) override {
    std::lock_guard<std::mutex> lock(mu_);
    Slot& slot = slots_[p];
    uint64_t epoch = this->ctx_->ExecutorEpoch(this->ctx_->ExecutorOf(p));
    if (slot.data.has_value() && slot.epoch == epoch) {
      return *slot.data;
    }
    if (slot.data.has_value()) {
      // Stale cache from before the executor died. The simulated ledger
      // was wiped with the container, so just drop the bytes.
      slot.data.reset();
    }
    PSG_ASSIGN_OR_RETURN(std::vector<T> data, parent_->Compute(p));
    uint64_t bytes = JvmBytesOf(data);
    PSG_RETURN_NOT_OK(
        this->ctx_->AllocatePartitionMemory(p, bytes, "rdd cache"));
    slot.data = std::move(data);
    slot.epoch = epoch;
    slot.charged = bytes;
    return *slot.data;
  }

  /// Drops all cached partitions (Spark unpersist), releasing memory.
  void Unpersist() {
    std::lock_guard<std::mutex> lock(mu_);
    for (int32_t p = 0; p < this->num_partitions_; ++p) {
      Slot& slot = slots_[p];
      if (slot.data.has_value()) {
        uint64_t epoch =
            this->ctx_->ExecutorEpoch(this->ctx_->ExecutorOf(p));
        if (slot.epoch == epoch) {
          this->ctx_->ReleasePartitionMemory(p, slot.charged);
        }
        slot.data.reset();
      }
    }
  }

 private:
  struct Slot {
    std::optional<std::vector<T>> data;
    uint64_t epoch = 0;
    uint64_t charged = 0;
  };
  std::shared_ptr<Node<T>> parent_;
  std::mutex mu_;
  std::vector<Slot> slots_;
};

/// Runs the map side of a shuffle once: partitions parent records by key
/// hash into per-reducer blocks. `Combine` is an optional map-side
/// combiner (nullptr -> none).
template <typename K, typename V>
class ShuffleWriter {
 public:
  using Combiner = std::function<V(const V&, const V&)>;

  ShuffleWriter(DataflowContext* ctx,
                std::shared_ptr<Node<std::pair<K, V>>> parent,
                int32_t num_reducers, Combiner combiner)
      : ctx_(ctx),
        parent_(std::move(parent)),
        num_reducers_(num_reducers),
        combiner_(std::move(combiner)),
        shuffle_id_(ctx_->NextShuffleId()) {}

  uint64_t shuffle_id() const { return shuffle_id_; }
  int32_t num_map_partitions() const { return parent_->num_partitions(); }

  /// Idempotent; thread-compatible (driver-thread execution model).
  Status EnsureWritten() {
    if (done_) return map_status_;
    done_ = true;
    for (int32_t m = 0; m < parent_->num_partitions(); ++m) {
      map_status_ = WriteMapPartition(m);
      if (!map_status_.ok()) return map_status_;
    }
    ctx_->StageBarrier();  // shuffle map side ends a stage
    return map_status_;
  }

 private:
  Status WriteMapPartition(int32_t m) {
    auto in = parent_->Compute(m);
    if (!in.ok()) return in.status();
    ctx_->ChargeCompute(m, in->size());

    std::vector<ByteBuffer> buckets(num_reducers_);
    uint64_t transient = 0;
    if (combiner_) {
      // Map-side combine: build a per-partition hash map first (this is
      // what Spark's reduceByKey does; it costs memory but shrinks IO).
      std::unordered_map<K, V, KeyHasher<K>> combined;
      combined.reserve(in->size());
      for (auto& [k, v] : *in) {
        auto [it, inserted] = combined.emplace(k, v);
        if (!inserted) it->second = combiner_(it->second, v);
      }
      transient = combined.size() *
                  (kJvmHashEntryOverhead + sizeof(K) + sizeof(V));
      PSG_RETURN_NOT_OK(ctx_->AllocatePartitionMemory(
          m, transient, "shuffle map-side combine"));
      for (auto& [k, v] : combined) {
        ByteBuffer& buf = buckets[KeyHash(k) % num_reducers_];
        SerializeElem(buf, k);
        SerializeElem(buf, v);
      }
    } else {
      for (auto& [k, v] : *in) {
        ByteBuffer& buf = buckets[KeyHash(k) % num_reducers_];
        SerializeElem(buf, k);
        SerializeElem(buf, v);
      }
    }
    // Spark consolidates a map task's output into one file (plus an
    // index), so the write pays a single seek for all buckets.
    uint64_t total_bytes = 0;
    for (int32_t r = 0; r < num_reducers_; ++r) {
      total_bytes += buckets[r].size();
    }
    ctx_->ChargeDiskWrite(m, total_bytes);
    for (int32_t r = 0; r < num_reducers_; ++r) {
      ctx_->shuffle().PutBlock(shuffle_id_, m, r,
                               std::move(buckets[r]).TakeData());
    }
    if (transient > 0) ctx_->ReleasePartitionMemory(m, transient);
    return Status::OK();
  }

  DataflowContext* ctx_;
  std::shared_ptr<Node<std::pair<K, V>>> parent_;
  int32_t num_reducers_;
  Combiner combiner_;
  uint64_t shuffle_id_;
  bool done_ = false;
  Status map_status_;
};

/// Fetches and deserializes all blocks for reduce partition `r`, invoking
/// `sink(key, value)` per record. Charges disk read on the map executor
/// and network transfer map->reduce.
template <typename K, typename V, typename Sink>
Status FetchShuffleBlocks(DataflowContext* ctx, uint64_t shuffle_id,
                          int32_t num_map_partitions, int32_t r,
                          Sink&& sink) {
  for (int32_t m = 0; m < num_map_partitions; ++m) {
    auto block = ctx->shuffle().GetBlock(shuffle_id, m, r);
    if (!block.ok()) return block.status();
    ctx->ChargeDiskRead(m, block->size());
    ctx->ChargeTransfer(m, r, block->size());
    ByteReader reader(*block);
    while (reader.remaining() > 0) {
      K k{};
      V v{};
      PSG_RETURN_NOT_OK(DeserializeElem(reader, &k));
      PSG_RETURN_NOT_OK(DeserializeElem(reader, &v));
      sink(std::move(k), std::move(v));
    }
  }
  return Status::OK();
}

template <typename K, typename V>
class GroupByKeyNode final : public Node<std::pair<K, std::vector<V>>> {
 public:
  GroupByKeyNode(std::shared_ptr<Node<std::pair<K, V>>> parent,
                 int32_t num_reducers)
      : Node<std::pair<K, std::vector<V>>>(parent->ctx(), num_reducers),
        writer_(parent->ctx(), parent, num_reducers, nullptr) {}

  Result<std::vector<std::pair<K, std::vector<V>>>> Compute(
      int32_t r) override {
    PSG_RETURN_NOT_OK(writer_.EnsureWritten());
    auto* ctx = this->ctx_;
    std::unordered_map<K, std::vector<V>, KeyHasher<K>> groups;
    uint64_t charged = 0;
    Status mem_ok;
    Status fetch = FetchShuffleBlocks<K, V>(
        ctx, writer_.shuffle_id(), writer_.num_map_partitions(), r,
        [&](K k, V v) {
          if (!mem_ok.ok()) return;
          auto [it, inserted] = groups.try_emplace(std::move(k));
          uint64_t delta = JvmBytesOf(v) +
                           (inserted ? kJvmHashEntryOverhead : 0);
          Status s = ctx->AllocatePartitionMemory(r, delta,
                                                  "groupByKey hash table");
          if (!s.ok()) {
            mem_ok = s;
            return;
          }
          charged += delta;
          it->second.push_back(std::move(v));
        });
    if (fetch.ok() && !mem_ok.ok()) fetch = mem_ok;
    if (!fetch.ok()) {
      ctx->ReleasePartitionMemory(r, charged);
      return fetch;
    }
    ctx->ChargeCompute(r, groups.size());
    std::vector<std::pair<K, std::vector<V>>> out;
    out.reserve(groups.size());
    for (auto& [k, vs] : groups) out.emplace_back(k, std::move(vs));
    ctx->ReleasePartitionMemory(r, charged);
    return out;
  }

 private:
  ShuffleWriter<K, V> writer_;
};

template <typename K, typename V>
class ReduceByKeyNode final : public Node<std::pair<K, V>> {
 public:
  using Combiner = std::function<V(const V&, const V&)>;

  ReduceByKeyNode(std::shared_ptr<Node<std::pair<K, V>>> parent,
                  int32_t num_reducers, Combiner combiner)
      : Node<std::pair<K, V>>(parent->ctx(), num_reducers),
        combiner_(combiner),
        writer_(parent->ctx(), parent, num_reducers, combiner) {}

  Result<std::vector<std::pair<K, V>>> Compute(int32_t r) override {
    PSG_RETURN_NOT_OK(writer_.EnsureWritten());
    auto* ctx = this->ctx_;
    std::unordered_map<K, V, KeyHasher<K>> agg;
    uint64_t charged = 0;
    Status mem_ok;
    Status fetch = FetchShuffleBlocks<K, V>(
        ctx, writer_.shuffle_id(), writer_.num_map_partitions(), r,
        [&](K k, V v) {
          if (!mem_ok.ok()) return;
          auto it = agg.find(k);
          if (it != agg.end()) {
            it->second = combiner_(it->second, v);
            return;
          }
          uint64_t delta = kJvmHashEntryOverhead + JvmBytesOf(v);
          Status s = ctx->AllocatePartitionMemory(r, delta,
                                                  "reduceByKey hash table");
          if (!s.ok()) {
            mem_ok = s;
            return;
          }
          charged += delta;
          agg.emplace(std::move(k), std::move(v));
        });
    if (fetch.ok() && !mem_ok.ok()) fetch = mem_ok;
    if (!fetch.ok()) {
      ctx->ReleasePartitionMemory(r, charged);
      return fetch;
    }
    ctx->ChargeCompute(r, agg.size());
    std::vector<std::pair<K, V>> out(agg.begin(), agg.end());
    ctx->ReleasePartitionMemory(r, charged);
    return out;
  }

 private:
  Combiner combiner_;
  ShuffleWriter<K, V> writer_;
};

template <typename K, typename V, typename W>
class CoGroupNode final
    : public Node<std::pair<K, std::pair<std::vector<V>, std::vector<W>>>> {
 public:
  using Out = std::pair<K, std::pair<std::vector<V>, std::vector<W>>>;

  CoGroupNode(std::shared_ptr<Node<std::pair<K, V>>> left,
              std::shared_ptr<Node<std::pair<K, W>>> right,
              int32_t num_reducers)
      : Node<Out>(left->ctx(), num_reducers),
        left_writer_(left->ctx(), left, num_reducers, nullptr),
        right_writer_(left->ctx(), right, num_reducers, nullptr) {}

  Result<std::vector<Out>> Compute(int32_t r) override {
    PSG_RETURN_NOT_OK(left_writer_.EnsureWritten());
    PSG_RETURN_NOT_OK(right_writer_.EnsureWritten());
    auto* ctx = this->ctx_;
    std::unordered_map<K, std::pair<std::vector<V>, std::vector<W>>,
                       KeyHasher<K>>
        groups;
    uint64_t charged = 0;
    Status mem_ok;
    auto charge = [&](uint64_t delta) {
      Status s =
          ctx->AllocatePartitionMemory(r, delta, "coGroup hash table");
      if (!s.ok()) mem_ok = s;
      else charged += delta;
    };
    Status fetch = FetchShuffleBlocks<K, V>(
        ctx, left_writer_.shuffle_id(), left_writer_.num_map_partitions(),
        r, [&](K k, V v) {
          if (!mem_ok.ok()) return;
          auto [it, inserted] = groups.try_emplace(std::move(k));
          charge(JvmBytesOf(v) + (inserted ? kJvmHashEntryOverhead : 0));
          if (mem_ok.ok()) it->second.first.push_back(std::move(v));
        });
    if (fetch.ok()) {
      fetch = FetchShuffleBlocks<K, W>(
          ctx, right_writer_.shuffle_id(),
          right_writer_.num_map_partitions(), r, [&](K k, W w) {
            if (!mem_ok.ok()) return;
            auto [it, inserted] = groups.try_emplace(std::move(k));
            charge(JvmBytesOf(w) + (inserted ? kJvmHashEntryOverhead : 0));
            if (mem_ok.ok()) it->second.second.push_back(std::move(w));
          });
    }
    if (fetch.ok() && !mem_ok.ok()) fetch = mem_ok;
    if (!fetch.ok()) {
      ctx->ReleasePartitionMemory(r, charged);
      return fetch;
    }
    ctx->ChargeCompute(r, groups.size());
    std::vector<Out> out;
    out.reserve(groups.size());
    for (auto& [k, vw] : groups) out.emplace_back(k, std::move(vw));
    ctx->ReleasePartitionMemory(r, charged);
    return out;
  }

 private:
  ShuffleWriter<K, V> left_writer_;
  ShuffleWriter<K, W> right_writer_;
};

}  // namespace detail

template <typename T>
struct PairTraits {
  static constexpr bool is_pair = false;
};
template <typename K, typename V>
struct PairTraits<std::pair<K, V>> {
  static constexpr bool is_pair = true;
  using Key = K;
  using Value = V;
};

/// User-facing handle (cheap to copy; shares the lineage node).
template <typename T>
class Dataset {
 public:
  Dataset(DataflowContext* ctx, std::shared_ptr<detail::Node<T>> node)
      : ctx_(ctx), node_(std::move(node)) {}

  /// Distributes `data` across `num_partitions` partitions round-robin —
  /// the "load from HDFS into an RDD" step.
  static Dataset FromVector(DataflowContext* ctx, std::vector<T> data,
                            int32_t num_partitions) {
    if (num_partitions <= 0) num_partitions = ctx->num_executors();
    std::vector<std::vector<T>> parts(num_partitions);
    for (auto& p : parts) p.reserve(data.size() / num_partitions + 1);
    for (size_t i = 0; i < data.size(); ++i) {
      parts[i % num_partitions].push_back(std::move(data[i]));
    }
    return Dataset(
        ctx, std::make_shared<detail::SourceNode<T>>(ctx, std::move(parts)));
  }

  /// Builds from explicit pre-split partitions (custom partitioners).
  static Dataset FromPartitions(DataflowContext* ctx,
                                std::vector<std::vector<T>> parts) {
    return Dataset(
        ctx, std::make_shared<detail::SourceNode<T>>(ctx, std::move(parts)));
  }

  DataflowContext* context() const { return ctx_; }
  int32_t num_partitions() const { return node_->num_partitions(); }
  std::shared_ptr<detail::Node<T>> node() const { return node_; }

  template <typename F, typename U = std::invoke_result_t<F, T&>>
  Dataset<U> Map(F fn) const {
    return Dataset<U>(
        ctx_, std::make_shared<detail::MapNode<T, U, F>>(node_, std::move(fn)));
  }

  template <typename F>
  Dataset<T> Filter(F fn) const {
    return Dataset<T>(
        ctx_, std::make_shared<detail::FilterNode<T, F>>(node_, std::move(fn)));
  }

  template <typename F,
            typename U = typename std::invoke_result_t<F, T&>::value_type>
  Dataset<U> FlatMap(F fn) const {
    return Dataset<U>(
        ctx_,
        std::make_shared<detail::FlatMapNode<T, U, F>>(node_, std::move(fn)));
  }

  /// F: (int32_t partition, std::vector<T>&&) -> Result<std::vector<U>>.
  template <typename F,
            typename U = typename std::invoke_result_t<
                F, int32_t, std::vector<T>&&>::value_type::value_type>
  Dataset<U> MapPartitionsWithIndex(F fn) const {
    return Dataset<U>(ctx_,
                      std::make_shared<detail::MapPartitionsNode<T, U, F>>(
                          node_, std::move(fn)));
  }

  Dataset<T> Union(const Dataset<T>& other) const {
    return Dataset<T>(
        ctx_, std::make_shared<detail::UnionNode<T>>(node_, other.node_));
  }

  /// Marks this dataset persisted in executor memory. Returns the cached
  /// handle; keep it and reuse it to benefit from the cache.
  Dataset<T> Cache() const {
    return Dataset<T>(ctx_, std::make_shared<detail::CacheNode<T>>(node_));
  }

  /// Drops materialized partitions if this dataset is a Cache() handle
  /// (Spark unpersist). Returns false when there is nothing to drop.
  bool Unpersist() const {
    auto cache = std::dynamic_pointer_cast<detail::CacheNode<T>>(node_);
    if (!cache) return false;
    cache->Unpersist();
    return true;
  }

  // ----- wide (shuffle) transformations; require T == pair<K, V> -----

  template <typename P = PairTraits<T>>
  Dataset<std::pair<typename P::Key, std::vector<typename P::Value>>>
  GroupByKey(int32_t num_reducers = 0) const {
    static_assert(P::is_pair, "GroupByKey requires Dataset<pair<K,V>>");
    if (num_reducers <= 0) num_reducers = node_->num_partitions();
    using K = typename P::Key;
    using V = typename P::Value;
    return {ctx_,
            std::make_shared<detail::GroupByKeyNode<K, V>>(node_,
                                                           num_reducers)};
  }

  template <typename F, typename P = PairTraits<T>>
  Dataset<T> ReduceByKey(F combiner, int32_t num_reducers = 0) const {
    static_assert(P::is_pair, "ReduceByKey requires Dataset<pair<K,V>>");
    if (num_reducers <= 0) num_reducers = node_->num_partitions();
    using K = typename P::Key;
    using V = typename P::Value;
    return {ctx_, std::make_shared<detail::ReduceByKeyNode<K, V>>(
                      node_, num_reducers,
                      typename detail::ReduceByKeyNode<K, V>::Combiner(
                          std::move(combiner)))};
  }

  template <typename W, typename P = PairTraits<T>>
  Dataset<std::pair<typename P::Key,
                    std::pair<std::vector<typename P::Value>,
                              std::vector<W>>>>
  CoGroup(const Dataset<std::pair<typename P::Key, W>>& other,
          int32_t num_reducers = 0) const {
    static_assert(P::is_pair, "CoGroup requires Dataset<pair<K,V>>");
    if (num_reducers <= 0) num_reducers = node_->num_partitions();
    using K = typename P::Key;
    using V = typename P::Value;
    return {ctx_, std::make_shared<detail::CoGroupNode<K, V, W>>(
                      node_, other.node(), num_reducers)};
  }

  /// Inner join via coGroup + flatMap (CoGroupedRDD, like Spark).
  template <typename W, typename P = PairTraits<T>>
  Dataset<std::pair<typename P::Key, std::pair<typename P::Value, W>>>
  Join(const Dataset<std::pair<typename P::Key, W>>& other,
       int32_t num_reducers = 0) const {
    using K = typename P::Key;
    using V = typename P::Value;
    using Grouped = std::pair<K, std::pair<std::vector<V>, std::vector<W>>>;
    using Out = std::pair<K, std::pair<V, W>>;
    return CoGroup<W>(other, num_reducers)
        .FlatMap([](Grouped& g) {
          std::vector<Out> out;
          out.reserve(g.second.first.size() * g.second.second.size());
          for (const V& v : g.second.first) {
            for (const W& w : g.second.second) {
              out.push_back({g.first, {v, w}});
            }
          }
          return out;
        });
  }

  /// Distinct keys of a pair dataset (helper for vertex-id extraction).
  template <typename P = PairTraits<T>>
  Dataset<typename P::Key> DistinctKeys(int32_t num_reducers = 0) const {
    static_assert(P::is_pair, "DistinctKeys requires Dataset<pair<K,V>>");
    using K = typename P::Key;
    using V = typename P::Value;
    return ReduceByKey([](const V& a, const V&) { return a; }, num_reducers)
        .Map([](std::pair<K, V>& kv) { return kv.first; });
  }

  // ----- actions -----

  /// Computes one partition (engines that pin work per executor use this).
  Result<std::vector<T>> ComputePartition(int32_t p) const {
    return node_->Compute(p);
  }

  /// Materializes every partition on the driver.
  Result<std::vector<T>> Collect() const {
    std::vector<T> all;
    for (int32_t p = 0; p < node_->num_partitions(); ++p) {
      auto part = node_->Compute(p);
      if (!part.ok()) return part.status();
      for (auto& v : *part) all.push_back(std::move(v));
    }
    ctx_->StageBarrier();
    return all;
  }

  Result<uint64_t> Count() const {
    uint64_t n = 0;
    for (int32_t p = 0; p < node_->num_partitions(); ++p) {
      auto part = node_->Compute(p);
      if (!part.ok()) return part.status();
      n += part->size();
    }
    ctx_->StageBarrier();
    return n;
  }

  /// Evaluates all partitions for side effects / materialization.
  Status Evaluate() const {
    for (int32_t p = 0; p < node_->num_partitions(); ++p) {
      auto part = node_->Compute(p);
      if (!part.ok()) return part.status();
    }
    ctx_->StageBarrier();
    return Status::OK();
  }

 private:
  DataflowContext* ctx_;
  std::shared_ptr<detail::Node<T>> node_;
};

}  // namespace psgraph::dataflow

#endif  // PSGRAPH_DATAFLOW_DATASET_H_
