// Dataset<T>: the RDD abstraction of the mini-Spark engine.
//
// A Dataset is a lazy, partitioned, immutable collection with lineage:
// computing a partition re-derives it from its parents, so losing a cached
// partition (executor failure) is recovered by recomputation — Spark's
// fault-tolerance model. Narrow transforms (map/filter/flatMap) stay on
// the owning executor; wide transforms (groupByKey/reduceByKey/coGroup)
// run a real hash shuffle: map-side serialization to per-reducer blocks
// (charged as disk writes), reduce-side fetches (disk read + network) and
// hash-table builds (charged against the executor memory budget — the
// source of GraphX's OOM behaviour).
//
// Actions evaluate partitions concurrently: one pool task per executor,
// each walking its own partitions (p % num_executors == e) in ascending
// order, so every executor clock sees a single ordered charge stream and
// simulated makespans are identical at any parallelism. Results are
// assembled in partition order regardless of completion order.

#ifndef PSGRAPH_DATAFLOW_DATASET_H_
#define PSGRAPH_DATAFLOW_DATASET_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "dataflow/context.h"
#include "dataflow/element_traits.h"

namespace psgraph::dataflow {

/// Hash used to route keys to reduce partitions. All shuffle participants
/// must agree on it.
template <typename K>
uint64_t KeyHash(const K& k) {
  if constexpr (std::is_integral_v<K>) {
    return Hash64(static_cast<uint64_t>(k));
  } else if constexpr (std::is_same_v<K, std::string>) {
    return HashBytes(k);
  } else if constexpr (detail::IsPair<K>::value) {
    return HashCombine(KeyHash(k.first), KeyHash(k.second));
  } else {
    static_assert(std::is_integral_v<K>, "unsupported key type");
    return 0;
  }
}

/// Hash functor for internal shuffle hash tables (std::hash has no
/// specialization for pairs).
template <typename K>
struct KeyHasher {
  size_t operator()(const K& k) const {
    return static_cast<size_t>(KeyHash(k));
  }
};

/// Engine core shared by all actions and the shuffle map stage: runs
/// fn(p) for every partition in [0, n). At global parallelism 1 this is
/// the strictly sequential reference path (ascending p, abort on the
/// first error). Otherwise one pool task per executor walks that
/// executor's partitions in ascending order — all simulated-clock and
/// memory charges for one executor come from one thread in a fixed
/// order, which is what makes N-thread makespans bit-identical to the
/// sequential run. A failing partition aborts only its own executor's
/// stream; the error with the lowest partition index is returned, so the
/// reported error matches the sequential path.
inline Status RunPartitioned(DataflowContext* ctx, int32_t n,
                             const std::function<Status(int32_t)>& fn) {
  // Per-partition-task instrumentation: bracket each task with the owning
  // executor's simulated clock. One executor's charges always come from
  // one thread in ascending partition order, but a bracket can absorb
  // work for a shared lineage block attributed to whichever concurrent
  // task materializes it first — so individual "dataflow.partition_ticks"
  // samples are scheduling-dependent at parallelism > 1 (the histogram
  // is denylisted from the telemetry sampler for that reason; totals at
  // barriers stay deterministic).
  sim::SimCluster* cluster = ctx->cluster();
  auto run_one = [&](int32_t p) -> Status {
    if (cluster == nullptr) return fn(p);
    const sim::NodeId exec = ctx->ExecutorOf(p);
    const int64_t t0 = cluster->clock().NowTicks(exec);
    ScopedSpan span(&cluster->tracer(), "dataflow.partition", exec, t0,
                    [&] { return cluster->clock().NowTicks(exec); });
    Status st = fn(p);
    cluster->metrics().Observe(
        "dataflow.partition_ticks",
        static_cast<uint64_t>(cluster->clock().NowTicks(exec) - t0));
    return st;
  };
  const size_t parallelism = GlobalParallelism();
  if (parallelism <= 1) {
    for (int32_t p = 0; p < n; ++p) {
      PSG_RETURN_NOT_OK(run_one(p));
    }
    return Status::OK();
  }
  const int32_t num_tasks = ctx->num_executors();
  std::vector<Status> errors(num_tasks, Status::OK());
  std::vector<int32_t> error_at(num_tasks, INT32_MAX);
  GlobalThreadPool().ParallelForBounded(
      static_cast<size_t>(num_tasks), parallelism - 1, [&](size_t e) {
        for (int32_t p = static_cast<int32_t>(e); p < n; p += num_tasks) {
          Status st = run_one(p);
          if (!st.ok()) {
            errors[e] = std::move(st);
            error_at[e] = p;
            return;
          }
        }
      });
  int32_t first = -1;
  for (int32_t e = 0; e < num_tasks; ++e) {
    if (error_at[e] != INT32_MAX &&
        (first < 0 || error_at[e] < error_at[first])) {
      first = e;
    }
  }
  return first < 0 ? Status::OK() : errors[first];
}

namespace detail {

/// Base of the lineage DAG. Compute(p) derives partition p from scratch
/// (or from caches further up the chain).
template <typename T>
class Node {
 public:
  Node(DataflowContext* ctx, int32_t num_partitions)
      : ctx_(ctx), num_partitions_(num_partitions) {}
  virtual ~Node() = default;

  virtual Result<std::vector<T>> Compute(int32_t partition) = 0;

  DataflowContext* ctx() const { return ctx_; }
  int32_t num_partitions() const { return num_partitions_; }

 protected:
  DataflowContext* ctx_;
  int32_t num_partitions_;
};

template <typename T>
class SourceNode final : public Node<T> {
 public:
  SourceNode(DataflowContext* ctx, std::vector<std::vector<T>> parts)
      : Node<T>(ctx, static_cast<int32_t>(parts.size())),
        parts_(std::move(parts)) {}

  Result<std::vector<T>> Compute(int32_t p) override {
    this->ctx_->ChargeCompute(p, parts_[p].size());
    return parts_[p];
  }

 private:
  std::vector<std::vector<T>> parts_;
};

template <typename T, typename U, typename F>
class MapNode final : public Node<U> {
 public:
  MapNode(std::shared_ptr<Node<T>> parent, F fn)
      : Node<U>(parent->ctx(), parent->num_partitions()),
        parent_(std::move(parent)),
        fn_(std::move(fn)) {}

  Result<std::vector<U>> Compute(int32_t p) override {
    PSG_ASSIGN_OR_RETURN(std::vector<T> in, parent_->Compute(p));
    this->ctx_->ChargeCompute(p, in.size());
    std::vector<U> out;
    out.reserve(in.size());
    for (auto& v : in) out.push_back(fn_(v));
    return out;
  }

 private:
  std::shared_ptr<Node<T>> parent_;
  F fn_;
};

template <typename T, typename F>
class FilterNode final : public Node<T> {
 public:
  FilterNode(std::shared_ptr<Node<T>> parent, F fn)
      : Node<T>(parent->ctx(), parent->num_partitions()),
        parent_(std::move(parent)),
        fn_(std::move(fn)) {}

  Result<std::vector<T>> Compute(int32_t p) override {
    PSG_ASSIGN_OR_RETURN(std::vector<T> in, parent_->Compute(p));
    this->ctx_->ChargeCompute(p, in.size());
    std::vector<T> out;
    for (auto& v : in) {
      if (fn_(v)) out.push_back(std::move(v));
    }
    return out;
  }

 private:
  std::shared_ptr<Node<T>> parent_;
  F fn_;
};

template <typename T, typename U, typename F>
class FlatMapNode final : public Node<U> {
 public:
  FlatMapNode(std::shared_ptr<Node<T>> parent, F fn)
      : Node<U>(parent->ctx(), parent->num_partitions()),
        parent_(std::move(parent)),
        fn_(std::move(fn)) {}

  Result<std::vector<U>> Compute(int32_t p) override {
    PSG_ASSIGN_OR_RETURN(std::vector<T> in, parent_->Compute(p));
    std::vector<U> out;
    for (auto& v : in) {
      std::vector<U> sub = fn_(v);
      for (auto& s : sub) out.push_back(std::move(s));
    }
    this->ctx_->ChargeCompute(p, in.size() + out.size());
    return out;
  }

 private:
  std::shared_ptr<Node<T>> parent_;
  F fn_;
};

template <typename T, typename U, typename F>
class MapPartitionsNode final : public Node<U> {
 public:
  MapPartitionsNode(std::shared_ptr<Node<T>> parent, F fn)
      : Node<U>(parent->ctx(), parent->num_partitions()),
        parent_(std::move(parent)),
        fn_(std::move(fn)) {}

  Result<std::vector<U>> Compute(int32_t p) override {
    PSG_ASSIGN_OR_RETURN(std::vector<T> in, parent_->Compute(p));
    this->ctx_->ChargeCompute(p, in.size());
    return fn_(p, std::move(in));  // F -> Result<std::vector<U>>
  }

 private:
  std::shared_ptr<Node<T>> parent_;
  F fn_;
};

template <typename T>
class UnionNode final : public Node<T> {
 public:
  UnionNode(std::shared_ptr<Node<T>> a, std::shared_ptr<Node<T>> b)
      : Node<T>(a->ctx(), a->num_partitions() + b->num_partitions()),
        a_(std::move(a)),
        b_(std::move(b)) {}

  Result<std::vector<T>> Compute(int32_t p) override {
    if (p < a_->num_partitions()) return a_->Compute(p);
    return b_->Compute(p - a_->num_partitions());
  }

 private:
  std::shared_ptr<Node<T>> a_;
  std::shared_ptr<Node<T>> b_;
};

/// Materializes parent partitions once per executor epoch; a killed
/// executor's cache entries become stale and are recomputed via lineage.
template <typename T>
class CacheNode final : public Node<T> {
 public:
  explicit CacheNode(std::shared_ptr<Node<T>> parent)
      : Node<T>(parent->ctx(), parent->num_partitions()),
        parent_(std::move(parent)),
        slots_(this->num_partitions_) {}

  Result<std::vector<T>> Compute(int32_t p) override {
    // Per-slot lock: partitions on different executors materialize
    // concurrently; two computations of the same partition serialize so
    // the memory budget is charged once. Lock order follows the lineage
    // DAG (slot p, then parent caches' slot p), so no cycles.
    Slot& slot = slots_[p];
    std::lock_guard<std::mutex> lock(slot.mu);
    uint64_t epoch = this->ctx_->ExecutorEpoch(this->ctx_->ExecutorOf(p));
    if (slot.data.has_value() && slot.epoch == epoch) {
      return *slot.data;
    }
    if (slot.data.has_value()) {
      // Stale cache from before the executor died. The simulated ledger
      // was wiped with the container, so just drop the bytes.
      slot.data.reset();
    }
    PSG_ASSIGN_OR_RETURN(std::vector<T> data, parent_->Compute(p));
    uint64_t bytes = JvmBytesOf(data);
    PSG_RETURN_NOT_OK(
        this->ctx_->AllocatePartitionMemory(p, bytes, "rdd cache"));
    slot.data = std::move(data);
    slot.epoch = epoch;
    slot.charged = bytes;
    return *slot.data;
  }

  /// Drops all cached partitions (Spark unpersist), releasing memory.
  void Unpersist() {
    for (int32_t p = 0; p < this->num_partitions_; ++p) {
      Slot& slot = slots_[p];
      std::lock_guard<std::mutex> lock(slot.mu);
      if (slot.data.has_value()) {
        uint64_t epoch =
            this->ctx_->ExecutorEpoch(this->ctx_->ExecutorOf(p));
        if (slot.epoch == epoch) {
          this->ctx_->ReleasePartitionMemory(p, slot.charged);
        }
        slot.data.reset();
      }
    }
  }

 private:
  struct Slot {
    std::mutex mu;
    std::optional<std::vector<T>> data;
    uint64_t epoch = 0;
    uint64_t charged = 0;
  };
  std::shared_ptr<Node<T>> parent_;
  // Sized once at construction; never resized (Slot holds a mutex).
  std::vector<Slot> slots_;
};

/// Runs the map side of a shuffle once: partitions parent records by key
/// hash into per-reducer blocks. `Combine` is an optional map-side
/// combiner (nullptr -> none).
template <typename K, typename V>
class ShuffleWriter {
 public:
  using Combiner = std::function<V(const V&, const V&)>;

  ShuffleWriter(DataflowContext* ctx,
                std::shared_ptr<Node<std::pair<K, V>>> parent,
                int32_t num_reducers, Combiner combiner)
      : ctx_(ctx),
        parent_(std::move(parent)),
        num_reducers_(num_reducers),
        combiner_(std::move(combiner)),
        shuffle_id_(ctx_->NextShuffleId()) {}

  uint64_t shuffle_id() const { return shuffle_id_; }
  int32_t num_map_partitions() const { return parent_->num_partitions(); }

  /// Idempotent and thread-safe: the first caller runs the whole map
  /// stage (concurrent reducers block on the once-guard until it
  /// finishes); every caller shares the resulting status.
  Status EnsureWritten() {
    std::call_once(once_, [&] { map_status_ = WriteAll(); });
    return map_status_;
  }

 private:
  Status WriteAll() {
    const int32_t num_maps = parent_->num_partitions();
    PSG_RETURN_NOT_OK(RunPartitioned(
        ctx_, num_maps, [&](int32_t m) { return WriteMapPartition(m); }));
    ctx_->StageBarrier();  // shuffle map side ends a stage
    // Fetch accounting, hoisted out of the reduce tasks: charging a
    // fetch couples the reduce executor's clock to the map executor's
    // ("data cannot arrive before it was sent"), which would be racy and
    // order-dependent when reducers run concurrently. One deterministic
    // pass charges every block's disk read and map->reduce transfer
    // here; reducers then deserialize without touching foreign clocks.
    // Consequence: a reduce partition recomputed through lineage does
    // not pay the fetch again — the ledger treats the shuffle files as
    // already delivered.
    for (int32_t r = 0; r < num_reducers_; ++r) {
      for (int32_t m = 0; m < num_maps; ++m) {
        PSG_ASSIGN_OR_RETURN(uint64_t bytes,
                             ctx_->shuffle().BlockSize(shuffle_id_, m, r));
        ctx_->ChargeDiskRead(m, bytes);
        ctx_->ChargeTransfer(m, r, bytes);
      }
    }
    return Status::OK();
  }

  Status WriteMapPartition(int32_t m) {
    auto in = parent_->Compute(m);
    if (!in.ok()) return in.status();
    ctx_->ChargeCompute(m, in->size());

    std::vector<ByteBuffer> buckets(num_reducers_);
    uint64_t transient = 0;
    if (combiner_) {
      // Map-side combine: build a per-partition hash map first (this is
      // what Spark's reduceByKey does; it costs memory but shrinks IO).
      std::unordered_map<K, V, KeyHasher<K>> combined;
      combined.reserve(in->size());
      for (auto& [k, v] : *in) {
        auto [it, inserted] = combined.emplace(k, v);
        if (!inserted) it->second = combiner_(it->second, v);
      }
      transient = combined.size() *
                  (kJvmHashEntryOverhead + sizeof(K) + sizeof(V));
      PSG_RETURN_NOT_OK(ctx_->AllocatePartitionMemory(
          m, transient, "shuffle map-side combine"));
      for (auto& [k, v] : combined) {
        ByteBuffer& buf = buckets[KeyHash(k) % num_reducers_];
        SerializeElem(buf, k);
        SerializeElem(buf, v);
      }
    } else {
      for (auto& [k, v] : *in) {
        ByteBuffer& buf = buckets[KeyHash(k) % num_reducers_];
        SerializeElem(buf, k);
        SerializeElem(buf, v);
      }
    }
    // Spark consolidates a map task's output into one file (plus an
    // index), so the write pays a single seek for all buckets.
    uint64_t total_bytes = 0;
    for (int32_t r = 0; r < num_reducers_; ++r) {
      total_bytes += buckets[r].size();
    }
    ctx_->ChargeDiskWrite(m, total_bytes);
    for (int32_t r = 0; r < num_reducers_; ++r) {
      ctx_->shuffle().PutBlock(shuffle_id_, m, r,
                               std::move(buckets[r]).TakeData());
    }
    if (transient > 0) ctx_->ReleasePartitionMemory(m, transient);
    return Status::OK();
  }

  DataflowContext* ctx_;
  std::shared_ptr<Node<std::pair<K, V>>> parent_;
  int32_t num_reducers_;
  Combiner combiner_;
  uint64_t shuffle_id_;
  std::once_flag once_;
  Status map_status_;  // written inside the once-guard, read after it
};

/// Fetches and deserializes all blocks for reduce partition `r`, invoking
/// `sink(key, value)` per record. Pure data movement: disk-read and
/// transfer time were already charged by the writer's deterministic
/// fetch-accounting pass (see ShuffleWriter::WriteAll).
template <typename K, typename V, typename Sink>
Status FetchShuffleBlocks(DataflowContext* ctx, uint64_t shuffle_id,
                          int32_t num_map_partitions, int32_t r,
                          Sink&& sink) {
  for (int32_t m = 0; m < num_map_partitions; ++m) {
    auto block = ctx->shuffle().GetBlock(shuffle_id, m, r);
    if (!block.ok()) return block.status();
    ByteReader reader(*block);
    while (reader.remaining() > 0) {
      K k{};
      V v{};
      PSG_RETURN_NOT_OK(DeserializeElem(reader, &k));
      PSG_RETURN_NOT_OK(DeserializeElem(reader, &v));
      sink(std::move(k), std::move(v));
    }
  }
  return Status::OK();
}

template <typename K, typename V>
class GroupByKeyNode final : public Node<std::pair<K, std::vector<V>>> {
 public:
  GroupByKeyNode(std::shared_ptr<Node<std::pair<K, V>>> parent,
                 int32_t num_reducers)
      : Node<std::pair<K, std::vector<V>>>(parent->ctx(), num_reducers),
        writer_(parent->ctx(), parent, num_reducers, nullptr) {}

  Result<std::vector<std::pair<K, std::vector<V>>>> Compute(
      int32_t r) override {
    PSG_RETURN_NOT_OK(writer_.EnsureWritten());
    auto* ctx = this->ctx_;
    std::unordered_map<K, std::vector<V>, KeyHasher<K>> groups;
    uint64_t charged = 0;
    Status mem_ok;
    Status fetch = FetchShuffleBlocks<K, V>(
        ctx, writer_.shuffle_id(), writer_.num_map_partitions(), r,
        [&](K k, V v) {
          if (!mem_ok.ok()) return;
          auto [it, inserted] = groups.try_emplace(std::move(k));
          uint64_t delta = JvmBytesOf(v) +
                           (inserted ? kJvmHashEntryOverhead : 0);
          Status s = ctx->AllocatePartitionMemory(r, delta,
                                                  "groupByKey hash table");
          if (!s.ok()) {
            mem_ok = s;
            return;
          }
          charged += delta;
          it->second.push_back(std::move(v));
        });
    if (fetch.ok() && !mem_ok.ok()) fetch = mem_ok;
    if (!fetch.ok()) {
      ctx->ReleasePartitionMemory(r, charged);
      return fetch;
    }
    ctx->ChargeCompute(r, groups.size());
    std::vector<std::pair<K, std::vector<V>>> out;
    out.reserve(groups.size());
    for (auto& [k, vs] : groups) out.emplace_back(k, std::move(vs));
    ctx->ReleasePartitionMemory(r, charged);
    return out;
  }

 private:
  ShuffleWriter<K, V> writer_;
};

template <typename K, typename V>
class ReduceByKeyNode final : public Node<std::pair<K, V>> {
 public:
  using Combiner = std::function<V(const V&, const V&)>;

  ReduceByKeyNode(std::shared_ptr<Node<std::pair<K, V>>> parent,
                  int32_t num_reducers, Combiner combiner)
      : Node<std::pair<K, V>>(parent->ctx(), num_reducers),
        combiner_(combiner),
        writer_(parent->ctx(), parent, num_reducers, combiner) {}

  Result<std::vector<std::pair<K, V>>> Compute(int32_t r) override {
    PSG_RETURN_NOT_OK(writer_.EnsureWritten());
    auto* ctx = this->ctx_;
    std::unordered_map<K, V, KeyHasher<K>> agg;
    uint64_t charged = 0;
    Status mem_ok;
    Status fetch = FetchShuffleBlocks<K, V>(
        ctx, writer_.shuffle_id(), writer_.num_map_partitions(), r,
        [&](K k, V v) {
          if (!mem_ok.ok()) return;
          auto it = agg.find(k);
          if (it != agg.end()) {
            it->second = combiner_(it->second, v);
            return;
          }
          uint64_t delta = kJvmHashEntryOverhead + JvmBytesOf(v);
          Status s = ctx->AllocatePartitionMemory(r, delta,
                                                  "reduceByKey hash table");
          if (!s.ok()) {
            mem_ok = s;
            return;
          }
          charged += delta;
          agg.emplace(std::move(k), std::move(v));
        });
    if (fetch.ok() && !mem_ok.ok()) fetch = mem_ok;
    if (!fetch.ok()) {
      ctx->ReleasePartitionMemory(r, charged);
      return fetch;
    }
    ctx->ChargeCompute(r, agg.size());
    std::vector<std::pair<K, V>> out(agg.begin(), agg.end());
    ctx->ReleasePartitionMemory(r, charged);
    return out;
  }

 private:
  Combiner combiner_;
  ShuffleWriter<K, V> writer_;
};

template <typename K, typename V, typename W>
class CoGroupNode final
    : public Node<std::pair<K, std::pair<std::vector<V>, std::vector<W>>>> {
 public:
  using Out = std::pair<K, std::pair<std::vector<V>, std::vector<W>>>;

  CoGroupNode(std::shared_ptr<Node<std::pair<K, V>>> left,
              std::shared_ptr<Node<std::pair<K, W>>> right,
              int32_t num_reducers)
      : Node<Out>(left->ctx(), num_reducers),
        left_writer_(left->ctx(), left, num_reducers, nullptr),
        right_writer_(left->ctx(), right, num_reducers, nullptr) {}

  Result<std::vector<Out>> Compute(int32_t r) override {
    PSG_RETURN_NOT_OK(left_writer_.EnsureWritten());
    PSG_RETURN_NOT_OK(right_writer_.EnsureWritten());
    auto* ctx = this->ctx_;
    std::unordered_map<K, std::pair<std::vector<V>, std::vector<W>>,
                       KeyHasher<K>>
        groups;
    uint64_t charged = 0;
    Status mem_ok;
    auto charge = [&](uint64_t delta) {
      Status s =
          ctx->AllocatePartitionMemory(r, delta, "coGroup hash table");
      if (!s.ok()) mem_ok = s;
      else charged += delta;
    };
    Status fetch = FetchShuffleBlocks<K, V>(
        ctx, left_writer_.shuffle_id(), left_writer_.num_map_partitions(),
        r, [&](K k, V v) {
          if (!mem_ok.ok()) return;
          auto [it, inserted] = groups.try_emplace(std::move(k));
          charge(JvmBytesOf(v) + (inserted ? kJvmHashEntryOverhead : 0));
          if (mem_ok.ok()) it->second.first.push_back(std::move(v));
        });
    if (fetch.ok()) {
      fetch = FetchShuffleBlocks<K, W>(
          ctx, right_writer_.shuffle_id(),
          right_writer_.num_map_partitions(), r, [&](K k, W w) {
            if (!mem_ok.ok()) return;
            auto [it, inserted] = groups.try_emplace(std::move(k));
            charge(JvmBytesOf(w) + (inserted ? kJvmHashEntryOverhead : 0));
            if (mem_ok.ok()) it->second.second.push_back(std::move(w));
          });
    }
    if (fetch.ok() && !mem_ok.ok()) fetch = mem_ok;
    if (!fetch.ok()) {
      ctx->ReleasePartitionMemory(r, charged);
      return fetch;
    }
    ctx->ChargeCompute(r, groups.size());
    std::vector<Out> out;
    out.reserve(groups.size());
    for (auto& [k, vw] : groups) out.emplace_back(k, std::move(vw));
    ctx->ReleasePartitionMemory(r, charged);
    return out;
  }

 private:
  ShuffleWriter<K, V> left_writer_;
  ShuffleWriter<K, W> right_writer_;
};

}  // namespace detail

template <typename T>
struct PairTraits {
  static constexpr bool is_pair = false;
};
template <typename K, typename V>
struct PairTraits<std::pair<K, V>> {
  static constexpr bool is_pair = true;
  using Key = K;
  using Value = V;
};

/// User-facing handle (cheap to copy; shares the lineage node).
template <typename T>
class Dataset {
 public:
  Dataset(DataflowContext* ctx, std::shared_ptr<detail::Node<T>> node)
      : ctx_(ctx), node_(std::move(node)) {}

  /// Distributes `data` across `num_partitions` partitions round-robin —
  /// the "load from HDFS into an RDD" step.
  static Dataset FromVector(DataflowContext* ctx, std::vector<T> data,
                            int32_t num_partitions) {
    if (num_partitions <= 0) num_partitions = ctx->num_executors();
    std::vector<std::vector<T>> parts(num_partitions);
    for (auto& p : parts) p.reserve(data.size() / num_partitions + 1);
    for (size_t i = 0; i < data.size(); ++i) {
      parts[i % num_partitions].push_back(std::move(data[i]));
    }
    return Dataset(
        ctx, std::make_shared<detail::SourceNode<T>>(ctx, std::move(parts)));
  }

  /// Builds from explicit pre-split partitions (custom partitioners).
  static Dataset FromPartitions(DataflowContext* ctx,
                                std::vector<std::vector<T>> parts) {
    return Dataset(
        ctx, std::make_shared<detail::SourceNode<T>>(ctx, std::move(parts)));
  }

  DataflowContext* context() const { return ctx_; }
  int32_t num_partitions() const { return node_->num_partitions(); }
  std::shared_ptr<detail::Node<T>> node() const { return node_; }

  template <typename F, typename U = std::invoke_result_t<F, T&>>
  Dataset<U> Map(F fn) const {
    return Dataset<U>(
        ctx_, std::make_shared<detail::MapNode<T, U, F>>(node_, std::move(fn)));
  }

  template <typename F>
  Dataset<T> Filter(F fn) const {
    return Dataset<T>(
        ctx_, std::make_shared<detail::FilterNode<T, F>>(node_, std::move(fn)));
  }

  template <typename F,
            typename U = typename std::invoke_result_t<F, T&>::value_type>
  Dataset<U> FlatMap(F fn) const {
    return Dataset<U>(
        ctx_,
        std::make_shared<detail::FlatMapNode<T, U, F>>(node_, std::move(fn)));
  }

  /// F: (int32_t partition, std::vector<T>&&) -> Result<std::vector<U>>.
  template <typename F,
            typename U = typename std::invoke_result_t<
                F, int32_t, std::vector<T>&&>::value_type::value_type>
  Dataset<U> MapPartitionsWithIndex(F fn) const {
    return Dataset<U>(ctx_,
                      std::make_shared<detail::MapPartitionsNode<T, U, F>>(
                          node_, std::move(fn)));
  }

  Dataset<T> Union(const Dataset<T>& other) const {
    return Dataset<T>(
        ctx_, std::make_shared<detail::UnionNode<T>>(node_, other.node_));
  }

  /// Marks this dataset persisted in executor memory. Returns the cached
  /// handle; keep it and reuse it to benefit from the cache.
  Dataset<T> Cache() const {
    return Dataset<T>(ctx_, std::make_shared<detail::CacheNode<T>>(node_));
  }

  /// Drops materialized partitions if this dataset is a Cache() handle
  /// (Spark unpersist). Returns false when there is nothing to drop.
  bool Unpersist() const {
    auto cache = std::dynamic_pointer_cast<detail::CacheNode<T>>(node_);
    if (!cache) return false;
    cache->Unpersist();
    return true;
  }

  // ----- wide (shuffle) transformations; require T == pair<K, V> -----

  template <typename P = PairTraits<T>>
  Dataset<std::pair<typename P::Key, std::vector<typename P::Value>>>
  GroupByKey(int32_t num_reducers = 0) const {
    static_assert(P::is_pair, "GroupByKey requires Dataset<pair<K,V>>");
    if (num_reducers <= 0) num_reducers = node_->num_partitions();
    using K = typename P::Key;
    using V = typename P::Value;
    return {ctx_,
            std::make_shared<detail::GroupByKeyNode<K, V>>(node_,
                                                           num_reducers)};
  }

  template <typename F, typename P = PairTraits<T>>
  Dataset<T> ReduceByKey(F combiner, int32_t num_reducers = 0) const {
    static_assert(P::is_pair, "ReduceByKey requires Dataset<pair<K,V>>");
    if (num_reducers <= 0) num_reducers = node_->num_partitions();
    using K = typename P::Key;
    using V = typename P::Value;
    return {ctx_, std::make_shared<detail::ReduceByKeyNode<K, V>>(
                      node_, num_reducers,
                      typename detail::ReduceByKeyNode<K, V>::Combiner(
                          std::move(combiner)))};
  }

  template <typename W, typename P = PairTraits<T>>
  Dataset<std::pair<typename P::Key,
                    std::pair<std::vector<typename P::Value>,
                              std::vector<W>>>>
  CoGroup(const Dataset<std::pair<typename P::Key, W>>& other,
          int32_t num_reducers = 0) const {
    static_assert(P::is_pair, "CoGroup requires Dataset<pair<K,V>>");
    if (num_reducers <= 0) num_reducers = node_->num_partitions();
    using K = typename P::Key;
    using V = typename P::Value;
    return {ctx_, std::make_shared<detail::CoGroupNode<K, V, W>>(
                      node_, other.node(), num_reducers)};
  }

  /// Inner join via coGroup + flatMap (CoGroupedRDD, like Spark).
  template <typename W, typename P = PairTraits<T>>
  Dataset<std::pair<typename P::Key, std::pair<typename P::Value, W>>>
  Join(const Dataset<std::pair<typename P::Key, W>>& other,
       int32_t num_reducers = 0) const {
    using K = typename P::Key;
    using V = typename P::Value;
    using Grouped = std::pair<K, std::pair<std::vector<V>, std::vector<W>>>;
    using Out = std::pair<K, std::pair<V, W>>;
    return CoGroup<W>(other, num_reducers)
        .FlatMap([](Grouped& g) {
          std::vector<Out> out;
          out.reserve(g.second.first.size() * g.second.second.size());
          for (const V& v : g.second.first) {
            for (const W& w : g.second.second) {
              out.push_back({g.first, {v, w}});
            }
          }
          return out;
        });
  }

  /// Distinct keys of a pair dataset (helper for vertex-id extraction).
  template <typename P = PairTraits<T>>
  Dataset<typename P::Key> DistinctKeys(int32_t num_reducers = 0) const {
    static_assert(P::is_pair, "DistinctKeys requires Dataset<pair<K,V>>");
    using K = typename P::Key;
    using V = typename P::Value;
    return ReduceByKey([](const V& a, const V&) { return a; }, num_reducers)
        .Map([](std::pair<K, V>& kv) { return kv.first; });
  }

  // ----- actions -----

  /// Computes one partition (engines that pin work per executor use this).
  Result<std::vector<T>> ComputePartition(int32_t p) const {
    return node_->Compute(p);
  }

  /// Materializes every partition on the driver, in partition order.
  Result<std::vector<T>> Collect() const {
    const int32_t num_parts = node_->num_partitions();
    std::vector<std::vector<T>> parts(num_parts);
    PSG_RETURN_NOT_OK(
        RunPartitioned(ctx_, num_parts, [&](int32_t p) -> Status {
          auto part = node_->Compute(p);
          if (!part.ok()) return part.status();
          parts[p] = std::move(*part);
          return Status::OK();
        }));
    ctx_->StageBarrier();
    size_t total = 0;
    for (const auto& part : parts) total += part.size();
    std::vector<T> all;
    all.reserve(total);
    for (auto& part : parts) {
      for (auto& v : part) all.push_back(std::move(v));
    }
    return all;
  }

  Result<uint64_t> Count() const {
    const int32_t num_parts = node_->num_partitions();
    std::vector<uint64_t> sizes(num_parts, 0);
    PSG_RETURN_NOT_OK(
        RunPartitioned(ctx_, num_parts, [&](int32_t p) -> Status {
          auto part = node_->Compute(p);
          if (!part.ok()) return part.status();
          sizes[p] = part->size();
          return Status::OK();
        }));
    ctx_->StageBarrier();
    uint64_t n = 0;
    for (uint64_t s : sizes) n += s;
    return n;
  }

  /// Evaluates all partitions for side effects / materialization.
  Status Evaluate() const {
    PSG_RETURN_NOT_OK(RunPartitioned(
        ctx_, node_->num_partitions(),
        [&](int32_t p) { return node_->Compute(p).status(); }));
    ctx_->StageBarrier();
    return Status::OK();
  }

  /// Streams each partition into `fn(p, std::move(rows))` on the
  /// evaluating task. At parallelism > 1 invocations for partitions on
  /// *different* executors run concurrently (fn must tolerate that); one
  /// executor's partitions arrive in ascending order on one thread.
  /// F: (int32_t partition, std::vector<T>&&) -> Status.
  template <typename F>
  Status ForeachPartition(F fn) const {
    PSG_RETURN_NOT_OK(RunPartitioned(
        ctx_, node_->num_partitions(), [&](int32_t p) -> Status {
          auto part = node_->Compute(p);
          if (!part.ok()) return part.status();
          return fn(p, std::move(*part));
        }));
    ctx_->StageBarrier();
    return Status::OK();
  }

 private:
  DataflowContext* ctx_;
  std::shared_ptr<detail::Node<T>> node_;
};

}  // namespace psgraph::dataflow

#endif  // PSGRAPH_DATAFLOW_DATASET_H_
