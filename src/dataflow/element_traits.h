// Element serialization and JVM-equivalent sizing for dataflow records.
//
// Two concerns live here because they must agree:
//  * SerializeElem/DeserializeElem define the wire format of shuffle
//    blocks (what crosses executor boundaries).
//  * JvmBytesOf estimates what the element would occupy on a Spark
//    executor's JVM heap (object headers, boxed records). The memory
//    accountant charges these estimates, which is how the simulation
//    reproduces GraphX's OOM behaviour at scaled-down budgets.
//
// Supported element types: trivially copyable structs, std::string,
// std::pair and std::vector of supported types (recursively). Graph
// pipelines model neighbor tables as pair<VertexId, vector<VertexId>>,
// matching the paper's (src, Array[dst]) items.

#ifndef PSGRAPH_DATAFLOW_ELEMENT_TRAITS_H_
#define PSGRAPH_DATAFLOW_ELEMENT_TRAITS_H_

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/byte_buffer.h"
#include "common/status.h"

namespace psgraph::dataflow {

/// JVM object header + reference overhead used for heap estimates.
inline constexpr uint64_t kJvmObjectHeader = 16;
/// Array header (length + header) in the JVM model.
inline constexpr uint64_t kJvmArrayHeader = 16;
/// Hash-map entry overhead (entry object + table slot amortized).
inline constexpr uint64_t kJvmHashEntryOverhead = 40;

namespace detail {
template <typename T>
struct IsPair : std::false_type {};
template <typename A, typename B>
struct IsPair<std::pair<A, B>> : std::true_type {};

template <typename T>
struct IsVector : std::false_type {};
template <typename T>
struct IsVector<std::vector<T>> : std::true_type {};
}  // namespace detail

template <typename T>
uint64_t JvmBytesOf(const T& v);

template <typename T>
void SerializeElem(ByteBuffer& buf, const T& v);

template <typename T>
Status DeserializeElem(ByteReader& reader, T* out);

template <typename T>
uint64_t JvmBytesOf(const T& v) {
  if constexpr (std::is_same_v<T, std::string>) {
    return kJvmArrayHeader + v.size();
  } else if constexpr (detail::IsPair<T>::value) {
    return kJvmObjectHeader + JvmBytesOf(v.first) + JvmBytesOf(v.second);
  } else if constexpr (detail::IsVector<T>::value) {
    using E = typename T::value_type;
    if constexpr (std::is_trivially_copyable_v<E>) {
      return kJvmArrayHeader + v.size() * sizeof(E);
    } else {
      uint64_t total = kJvmArrayHeader + v.size() * 8;  // reference slots
      for (const auto& e : v) total += JvmBytesOf(e);
      return total;
    }
  } else {
    static_assert(std::is_trivially_copyable_v<T>,
                  "unsupported dataflow element type");
    return kJvmObjectHeader + sizeof(T);
  }
}

template <typename T>
void SerializeElem(ByteBuffer& buf, const T& v) {
  if constexpr (std::is_same_v<T, std::string>) {
    buf.WriteString(v);
  } else if constexpr (detail::IsPair<T>::value) {
    SerializeElem(buf, v.first);
    SerializeElem(buf, v.second);
  } else if constexpr (detail::IsVector<T>::value) {
    using E = typename T::value_type;
    if constexpr (std::is_trivially_copyable_v<E>) {
      buf.WriteVector(v);
    } else {
      buf.Write<uint64_t>(v.size());
      for (const auto& e : v) SerializeElem(buf, e);
    }
  } else {
    static_assert(std::is_trivially_copyable_v<T>,
                  "unsupported dataflow element type");
    buf.Write(v);
  }
}

template <typename T>
Status DeserializeElem(ByteReader& reader, T* out) {
  if constexpr (std::is_same_v<T, std::string>) {
    return reader.ReadString(out);
  } else if constexpr (detail::IsPair<T>::value) {
    PSG_RETURN_NOT_OK(DeserializeElem(reader, &out->first));
    return DeserializeElem(reader, &out->second);
  } else if constexpr (detail::IsVector<T>::value) {
    using E = typename T::value_type;
    if constexpr (std::is_trivially_copyable_v<E>) {
      return reader.ReadVector(out);
    } else {
      uint64_t n = 0;
      PSG_RETURN_NOT_OK(reader.Read(&n));
      out->clear();
      out->reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        E e;
        PSG_RETURN_NOT_OK(DeserializeElem(reader, &e));
        out->push_back(std::move(e));
      }
      return Status::OK();
    }
  } else {
    static_assert(std::is_trivially_copyable_v<T>,
                  "unsupported dataflow element type");
    return reader.Read(out);
  }
}

/// JVM-equivalent size of a whole partition vector.
template <typename T>
uint64_t JvmBytesOfVector(const std::vector<T>& v) {
  return JvmBytesOf(v);
}

}  // namespace psgraph::dataflow

#endif  // PSGRAPH_DATAFLOW_ELEMENT_TRAITS_H_
