#include "dataflow/context.h"

#include "common/metrics.h"

namespace psgraph::dataflow {

void ShuffleService::PutBlock(uint64_t shuffle_id, int32_t map_part,
                              int32_t reduce_part,
                              std::vector<uint8_t> bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  blocks_[{shuffle_id, map_part, reduce_part}] = std::move(bytes);
}

Result<std::vector<uint8_t>> ShuffleService::GetBlock(
    uint64_t shuffle_id, int32_t map_part, int32_t reduce_part) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blocks_.find({shuffle_id, map_part, reduce_part});
  if (it == blocks_.end()) {
    return Status::NotFound("shuffle block (" + std::to_string(shuffle_id) +
                            "," + std::to_string(map_part) + "," +
                            std::to_string(reduce_part) + ") missing");
  }
  return it->second;
}

void ShuffleService::DropShuffle(uint64_t shuffle_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blocks_.lower_bound({shuffle_id, 0, 0});
  while (it != blocks_.end() && std::get<0>(it->first) == shuffle_id) {
    it = blocks_.erase(it);
  }
}

Result<uint64_t> ShuffleService::BlockSize(uint64_t shuffle_id,
                                           int32_t map_part,
                                           int32_t reduce_part) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blocks_.find({shuffle_id, map_part, reduce_part});
  if (it == blocks_.end()) {
    return Status::NotFound("shuffle block (" + std::to_string(shuffle_id) +
                            "," + std::to_string(map_part) + "," +
                            std::to_string(reduce_part) + ") missing");
  }
  return static_cast<uint64_t>(it->second.size());
}

uint64_t ShuffleService::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [_, bytes] : blocks_) total += bytes.size();
  return total;
}

void DataflowContext::ChargeCompute(int32_t partition, uint64_t ops) {
  if (!cluster_) return;
  const double t = cluster_->cost().ComputeTime(ops);
  cluster_->clock().Advance(ExecutorOf(partition), t);
  cluster_->skew().RecordPartitionTicks(partition, sim::SimClock::TicksOf(t));
}

void DataflowContext::ChargeDiskWrite(int32_t partition, uint64_t bytes) {
  if (!cluster_) return;
  metrics().Add("dataflow.shuffle_bytes_written", bytes);
  const double t = cluster_->cost().DiskWriteTime(bytes);
  cluster_->clock().Advance(ExecutorOf(partition), t);
  cluster_->skew().RecordPartitionTicks(partition, sim::SimClock::TicksOf(t));
}

void DataflowContext::ChargeDiskRead(int32_t partition, uint64_t bytes) {
  if (!cluster_) return;
  metrics().Add("dataflow.shuffle_bytes_read", bytes);
  const double t = cluster_->cost().DiskReadTime(bytes);
  cluster_->clock().Advance(ExecutorOf(partition), t);
  cluster_->skew().RecordPartitionTicks(partition, sim::SimClock::TicksOf(t));
}

void DataflowContext::ChargeTransfer(int32_t from_part, int32_t to_part,
                                     uint64_t bytes) {
  if (!cluster_) return;
  int32_t from = ExecutorOf(from_part);
  int32_t to = ExecutorOf(to_part);
  if (from == to) return;  // local fetch
  metrics().Add("dataflow.network_bytes", bytes);
  double t = cluster_->cost().NetworkTime(bytes);
  const int64_t wire = sim::SimClock::TicksOf(t);
  cluster_->clock().Advance(from, t);
  cluster_->cost_ledger().Record(from, sim::CostCategory::kRpcSerialize,
                                 wire);
  const int64_t jump = cluster_->clock().AdvanceToTicksJump(
      to, cluster_->clock().NowTicks(from));
  cluster_->cost_ledger().Record(to, sim::CostCategory::kRpcWait, jump);
  cluster_->skew().RecordPartitionTicks(from_part, wire);
}

Status DataflowContext::AllocatePartitionMemory(int32_t partition,
                                                uint64_t bytes,
                                                const char* what) {
  if (!cluster_) return Status::OK();
  return cluster_->memory().Allocate(ExecutorOf(partition), bytes, what);
}

void DataflowContext::ReleasePartitionMemory(int32_t partition,
                                             uint64_t bytes) {
  if (!cluster_) return;
  cluster_->memory().Release(ExecutorOf(partition), bytes);
}

void DataflowContext::StageBarrier() {
  if (!cluster_) return;
  std::vector<int32_t> executors;
  executors.reserve(cluster_->config().num_executors);
  for (int32_t e = 0; e < cluster_->config().num_executors; ++e) {
    executors.push_back(e);
  }
  if (executors.empty()) return;
  cluster_->clock().Barrier(executors);
  // Stage fences are serial driver points: scrape the telemetry series
  // up to the barrier (all executor clocks are equal now).
  cluster_->sampler().Poll(cluster_->clock().NowTicks(executors[0]));
}

}  // namespace psgraph::dataflow
