// DataflowContext: the mini-Spark runtime shared by all Datasets.
//
// Partitions are assigned to executors round-robin (partition p lives on
// executor p % num_executors). Actions evaluate partitions concurrently on
// the global thread pool — one task per executor, partitions in ascending
// order within a task — so each executor's simulated clock receives its
// charges from a single thread in a fixed order and the makespan math
// stays exact and deterministic at any parallelism (see DESIGN.md,
// "Execution model"). PSGRAPH_THREADS=1 forces the sequential reference
// path.

#ifndef PSGRAPH_DATAFLOW_CONTEXT_H_
#define PSGRAPH_DATAFLOW_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "common/trace.h"
#include "sim/cluster.h"

namespace psgraph::dataflow {

/// Storage for shuffle blocks: (shuffle id, map partition, reduce
/// partition) -> serialized bytes. Blocks live on the *map* executor's
/// local disk in Spark; block size is tracked so fetches can be charged.
class ShuffleService {
 public:
  void PutBlock(uint64_t shuffle_id, int32_t map_part, int32_t reduce_part,
                std::vector<uint8_t> bytes);
  /// NotFound if the block was never written (or was dropped).
  Result<std::vector<uint8_t>> GetBlock(uint64_t shuffle_id,
                                        int32_t map_part,
                                        int32_t reduce_part) const;
  /// Size in bytes of one block; NotFound if missing. Lets the shuffle
  /// fetch-accounting pass charge transfers without copying payloads.
  Result<uint64_t> BlockSize(uint64_t shuffle_id, int32_t map_part,
                             int32_t reduce_part) const;
  /// Frees all blocks of one shuffle.
  void DropShuffle(uint64_t shuffle_id);
  uint64_t TotalBytes() const;

 private:
  using Key = std::tuple<uint64_t, int32_t, int32_t>;
  mutable std::mutex mu_;
  std::map<Key, std::vector<uint8_t>> blocks_;
};

class DataflowContext {
 public:
  explicit DataflowContext(sim::SimCluster* cluster)
      : cluster_(cluster),
        executor_epochs_(cluster ? cluster->config().num_executors : 1) {}

  sim::SimCluster* cluster() { return cluster_; }

  /// Observability sinks: the cluster's per-context registries, or the
  /// process-wide globals for clusterless unit-test contexts.
  Metrics& metrics() const {
    return cluster_ != nullptr ? cluster_->metrics() : Metrics::Global();
  }
  Tracer& tracer() const {
    return cluster_ != nullptr ? cluster_->tracer() : Tracer::Global();
  }

  int32_t num_executors() const {
    return cluster_ ? cluster_->config().num_executors : 1;
  }
  int32_t ExecutorOf(int32_t partition) const {
    return partition % num_executors();
  }

  ShuffleService& shuffle() { return shuffle_; }
  uint64_t NextShuffleId() { return next_shuffle_id_.fetch_add(1); }

  /// CPU accounting: charges `ops` record-operations to the executor that
  /// owns `partition`.
  void ChargeCompute(int32_t partition, uint64_t ops);
  /// Disk accounting on the partition's executor.
  void ChargeDiskWrite(int32_t partition, uint64_t bytes);
  void ChargeDiskRead(int32_t partition, uint64_t bytes);
  /// Transfer of `bytes` from the executor of `from_part` to the executor
  /// of `to_part`; local if both map to the same executor.
  void ChargeTransfer(int32_t from_part, int32_t to_part, uint64_t bytes);

  /// Memory accounting on the owning executor; OOM surfaces as
  /// MemoryLimitExceeded, which aborts the job like a Spark executor OOM.
  Status AllocatePartitionMemory(int32_t partition, uint64_t bytes,
                                 const char* what);
  void ReleasePartitionMemory(int32_t partition, uint64_t bytes);

  /// BSP barrier across all executors at a stage boundary.
  void StageBarrier();

  /// Failure-recovery epochs: bumping an executor's epoch invalidates all
  /// cached partitions living on it (Spark lineage then recomputes them).
  /// Atomic because cache slots read epochs from evaluation tasks.
  uint64_t ExecutorEpoch(int32_t executor) const {
    return executor_epochs_[executor].load(std::memory_order_acquire);
  }
  void BumpExecutorEpoch(int32_t executor) {
    executor_epochs_[executor].fetch_add(1, std::memory_order_acq_rel);
  }

 private:
  sim::SimCluster* cluster_;
  ShuffleService shuffle_;
  std::atomic<uint64_t> next_shuffle_id_{1};
  // Sized once in the constructor, never resized (atomics cannot move).
  std::vector<std::atomic<uint64_t>> executor_epochs_;
};

}  // namespace psgraph::dataflow

#endif  // PSGRAPH_DATAFLOW_CONTEXT_H_
