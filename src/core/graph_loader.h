// GraphIO/GraphOps of the paper's programming interface (§III-D): load an
// edge dataset from HDFS into an RDD and transform it to neighbor tables
// with the groupBy operator.

#ifndef PSGRAPH_CORE_GRAPH_LOADER_H_
#define PSGRAPH_CORE_GRAPH_LOADER_H_

#include <string>
#include <utility>
#include <vector>

#include "core/psgraph_context.h"
#include "dataflow/dataset.h"
#include "graph/partition.h"
#include "graph/types.h"

namespace psgraph::core {

/// (src, Array[dst]) — the paper's neighbor-table RDD item.
using NeighborPair =
    std::pair<graph::VertexId, std::vector<graph::VertexId>>;
/// (src, (Array[dst], Array[weight])) for weighted graphs (§IV-C).
using WeightedNeighborPair =
    std::pair<graph::VertexId,
              std::pair<std::vector<graph::VertexId>, std::vector<float>>>;

/// Loads a binary edge file from HDFS into an edge RDD with one partition
/// per executor (`parts_per_executor` to oversplit). Each executor is
/// charged the IO for its split.
Result<dataflow::Dataset<graph::Edge>> LoadEdges(
    PsGraphContext& ctx, const std::string& hdfs_path,
    graph::PartitionStrategy strategy =
        graph::PartitionStrategy::kEdgePartition,
    int parts_per_executor = 1);

/// Convenience for benches/tests: stage an in-memory edge list "on HDFS"
/// and load it back through the normal path.
Result<dataflow::Dataset<graph::Edge>> StageAndLoadEdges(
    PsGraphContext& ctx, const graph::EdgeList& edges,
    const std::string& hdfs_path,
    graph::PartitionStrategy strategy =
        graph::PartitionStrategy::kEdgePartition,
    int parts_per_executor = 1);

/// The groupBy transformation: edge partitioning -> vertex partitioning
/// (one real shuffle, like the paper's step 1).
dataflow::Dataset<NeighborPair> ToNeighborTables(
    const dataflow::Dataset<graph::Edge>& edges);

dataflow::Dataset<WeightedNeighborPair> ToWeightedNeighborTables(
    const dataflow::Dataset<graph::Edge>& edges);

}  // namespace psgraph::core

#endif  // PSGRAPH_CORE_GRAPH_LOADER_H_
