#include "core/sage_model.h"

namespace psgraph::core {

namespace {

/// Aggregates neighbor rows: plain mean, or max over a learned
/// transformation (the pooling aggregator).
minitorch::Tensor Aggregate(const SageParams& params,
                            const minitorch::Tensor& rows,
                            const std::vector<std::vector<int64_t>>& segs,
                            const minitorch::Tensor& w_pool) {
  using namespace minitorch;  // NOLINT(build/namespaces)
  if (params.aggregator == SageAggregator::kMean) {
    return SegmentMean(rows, segs);
  }
  return SegmentMax(Relu(Matmul(rows, w_pool)), segs);
}

}  // namespace

minitorch::Tensor SageForward(const SageParams& params,
                              const SageBatch& batch) {
  using namespace minitorch;  // NOLINT(build/namespaces)
  // Layer 1 over batch + sampled 1-hop nodes.
  Tensor self1 = GatherRows(batch.features, batch.nodes1);
  Tensor agg1 =
      Aggregate(params, batch.features, batch.seg1, params.w_pool1);
  Tensor h1 = Relu(Matmul(ConcatCols(self1, agg1), params.w1));

  // Layer 2 over the batch prefix.
  std::vector<int64_t> batch_rows(batch.batch_size);
  for (int64_t i = 0; i < batch.batch_size; ++i) batch_rows[i] = i;
  Tensor self2 = GatherRows(h1, batch_rows);
  Tensor agg2 = Aggregate(params, h1, batch.seg2, params.w_pool2);
  return Matmul(ConcatCols(self2, agg2), params.w2);
}

uint64_t SageForwardOps(const SageParams& params, const SageBatch& batch) {
  uint64_t n1 = batch.nodes1.size();
  uint64_t gathered = 0;
  for (const auto& s : batch.seg1) gathered += s.size();
  uint64_t ops = gathered * batch.features.cols();  // aggregation
  ops += n1 * params.w1.rows() * params.w1.cols();  // layer-1 matmul
  ops += static_cast<uint64_t>(batch.batch_size) * params.w2.rows() *
         params.w2.cols();
  if (params.aggregator == SageAggregator::kMaxPool) {
    // Pool transformations over every gathered/hidden row.
    ops += static_cast<uint64_t>(batch.features.rows()) *
           params.w_pool1.rows() * params.w_pool1.cols();
    ops += n1 * params.w_pool2.rows() * params.w_pool2.cols();
  }
  return ops;
}

}  // namespace psgraph::core
