#include "core/fast_unfolding.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "graph/algo_math.h"
#include "ps/agent.h"

namespace psgraph::core {

namespace {

int g_fu_job = 0;

using ComEdge = std::pair<std::pair<uint64_t, uint64_t>, float>;

}  // namespace

Result<FastUnfoldingResult> FastUnfolding(
    PsGraphContext& ctx, const dataflow::Dataset<graph::Edge>& input_edges,
    const FastUnfoldingOptions& opts) {
  FastUnfoldingResult result;
  auto edges = input_edges;
  double prev_q = -1.0;

  for (int pass = 0; pass < opts.max_passes; ++pass) {
    const std::string job =
        "fu" + std::to_string(g_fu_job++) + ".p" + std::to_string(pass);

    // Not cached: partitions recompute from the persisted shuffle blocks
    // on every access (Spark MEMORY_AND_DISK behaviour) so the resident
    // footprint stays within the executor budget.
    auto wnbr = ToWeightedNeighborTables(edges);

    // Total weight and vertex-id space for this pass.
    double total_w = 0.0;
    graph::VertexId num_vertices = 0;
    for (int32_t p = 0; p < wnbr.num_partitions(); ++p) {
      PSG_ASSIGN_OR_RETURN(auto tables, wnbr.ComputePartition(p));
      for (const WeightedNeighborPair& t : tables) {
        num_vertices = std::max<graph::VertexId>(num_vertices,
                                                 t.first + 1);
        for (size_t i = 0; i < t.second.first.size(); ++i) {
          num_vertices = std::max<graph::VertexId>(
              num_vertices, t.second.first[i] + 1);
          total_w += t.second.second[i];
        }
      }
    }
    const double m = total_w / 2.0;
    if (m <= 0.0) break;
    if (num_vertices >= (1ull << 24)) {
      return Status::InvalidArgument(
          "fast unfolding: community ids beyond float32 exactness");
    }

    // PS models (paper §IV-C): vertex2com and com2weight.
    PSG_ASSIGN_OR_RETURN(
        ps::MatrixMeta v2c,
        ctx.ps().CreateMatrix(job + ".vertex2com", num_vertices, 1));
    PSG_ASSIGN_OR_RETURN(
        ps::MatrixMeta c2w,
        ctx.ps().CreateMatrix(job + ".com2weight", num_vertices, 1));

    // Init: community = own vertex id; Sigma_tot = weighted degree.
    for (int32_t p = 0; p < wnbr.num_partitions(); ++p) {
      int32_t e = ctx.dataflow().ExecutorOf(p);
      PSG_ASSIGN_OR_RETURN(auto tables, wnbr.ComputePartition(p));
      std::vector<uint64_t> keys;
      std::vector<float> coms, ks;
      for (const WeightedNeighborPair& t : tables) {
        keys.push_back(t.first);
        coms.push_back(static_cast<float>(t.first));
        float k = 0.0f;
        for (float w : t.second.second) k += w;
        ks.push_back(k);
      }
      PSG_RETURN_NOT_OK(ctx.agent(e).PushAssign(v2c, keys, coms));
      PSG_RETURN_NOT_OK(ctx.agent(e).PushAdd(c2w, keys, ks));
    }
    ctx.sync().IterationBarrier();

    // Modularity-optimization rounds.
    for (int round = 0; round < opts.opt_iterations; ++round) {
      PSG_ASSIGN_OR_RETURN(auto recovery,
                           ctx.HandleFailures(round, opts.recovery));
      (void)recovery;
      uint64_t moves = 0;
      for (int32_t p = 0; p < wnbr.num_partitions(); ++p) {
        int32_t e = ctx.dataflow().ExecutorOf(p);
        PSG_ASSIGN_OR_RETURN(auto tables, wnbr.ComputePartition(p));

        // Pull communities for every vertex this partition touches.
        std::vector<uint64_t> vkeys;
        {
          std::unordered_set<uint64_t> uniq;
          for (const WeightedNeighborPair& t : tables) {
            uniq.insert(t.first);
            for (uint64_t u : t.second.first) uniq.insert(u);
          }
          vkeys.assign(uniq.begin(), uniq.end());
        }
        PSG_ASSIGN_OR_RETURN(std::vector<float> com_vals,
                             ctx.agent(e).PullRows(v2c, vkeys));
        std::unordered_map<uint64_t, uint64_t> com_of;
        com_of.reserve(vkeys.size());
        for (size_t i = 0; i < vkeys.size(); ++i) {
          com_of[vkeys[i]] = static_cast<uint64_t>(com_vals[i]);
        }

        // Pull Sigma_tot for every candidate community.
        std::vector<uint64_t> ckeys;
        {
          std::unordered_set<uint64_t> uniq;
          for (const auto& [v, c] : com_of) uniq.insert(c);
          ckeys.assign(uniq.begin(), uniq.end());
        }
        PSG_ASSIGN_OR_RETURN(std::vector<float> tot_vals,
                             ctx.agent(e).PullRows(c2w, ckeys));
        std::unordered_map<uint64_t, float> tot_of;
        tot_of.reserve(ckeys.size());
        for (size_t i = 0; i < ckeys.size(); ++i) {
          tot_of[ckeys[i]] = tot_vals[i];
        }

        std::vector<uint64_t> assign_keys;
        std::vector<float> assign_vals;
        std::vector<uint64_t> add_keys;
        std::vector<float> add_vals;
        uint64_t ops = 0;
        std::unordered_map<uint64_t, float> wsum;
        for (const WeightedNeighborPair& t : tables) {
          uint64_t own = com_of[t.first];
          float k_v = 0.0f;
          wsum.clear();
          for (size_t i = 0; i < t.second.first.size(); ++i) {
            k_v += t.second.second[i];
            wsum[com_of[t.second.first[i]]] += t.second.second[i];
          }
          std::vector<graph::LouvainCandidate> candidates;
          candidates.reserve(wsum.size());
          for (const auto& [c, w] : wsum) {
            candidates.push_back({c, {w, tot_of[c]}});
          }
          uint64_t best = graph::LouvainChooseCommunity(
              own, k_v, tot_of[own], m, candidates);
          if (best != own) {
            ++moves;
            assign_keys.push_back(t.first);
            assign_vals.push_back(static_cast<float>(best));
            add_keys.push_back(own);
            add_vals.push_back(-k_v);
            add_keys.push_back(best);
            add_vals.push_back(k_v);
            // Keep the local view coherent for later vertices in this
            // partition (semi-asynchronous updates, PS style).
            com_of[t.first] = best;
            tot_of[own] -= k_v;
            tot_of[best] += k_v;
          }
          ops += t.second.first.size();
        }
        ctx.cluster().clock().Advance(
            ctx.cluster().config().executor(e),
            ctx.cluster().cost().ComputeTime(ops));
        if (!assign_keys.empty()) {
          PSG_RETURN_NOT_OK(
              ctx.agent(e).PushAssign(v2c, assign_keys, assign_vals));
          PSG_RETURN_NOT_OK(ctx.agent(e).PushAdd(c2w, add_keys, add_vals));
        }
      }
      ctx.sync().IterationBarrier();
      PSG_RETURN_NOT_OK(ctx.MaybeCheckpoint(round));
      if (moves == 0) break;
    }

    // Community aggregation: contract the graph with a dataflow reduce.
    std::vector<std::vector<ComEdge>> contracted_parts(
        wnbr.num_partitions());
    for (int32_t p = 0; p < wnbr.num_partitions(); ++p) {
      int32_t e = ctx.dataflow().ExecutorOf(p);
      PSG_ASSIGN_OR_RETURN(auto tables, wnbr.ComputePartition(p));
      std::vector<uint64_t> vkeys;
      {
        std::unordered_set<uint64_t> uniq;
        for (const WeightedNeighborPair& t : tables) {
          uniq.insert(t.first);
          for (uint64_t u : t.second.first) uniq.insert(u);
        }
        vkeys.assign(uniq.begin(), uniq.end());
      }
      PSG_ASSIGN_OR_RETURN(std::vector<float> com_vals,
                           ctx.agent(e).PullRows(v2c, vkeys));
      std::unordered_map<uint64_t, uint64_t> com_of;
      for (size_t i = 0; i < vkeys.size(); ++i) {
        com_of[vkeys[i]] = static_cast<uint64_t>(com_vals[i]);
      }
      auto& out = contracted_parts[p];
      for (const WeightedNeighborPair& t : tables) {
        uint64_t cs = com_of[t.first];
        for (size_t i = 0; i < t.second.first.size(); ++i) {
          out.push_back(
              {{cs, com_of[t.second.first[i]]}, t.second.second[i]});
        }
      }
    }
    auto contracted =
        dataflow::Dataset<ComEdge>::FromPartitions(
            &ctx.dataflow(), std::move(contracted_parts))
            .ReduceByKey([](const float& a, const float& b) {
              return a + b;
            });
    PSG_ASSIGN_OR_RETURN(auto contracted_rows, contracted.Collect());

    // Modularity: Q = inside/(2m) - sum_C (tot_C/(2m))^2.
    double inside = 0.0;
    for (const ComEdge& ce : contracted_rows) {
      if (ce.first.first == ce.first.second) inside += ce.second;
    }
    ps::PsAgent driver_agent(&ctx.ps(), ctx.cluster().config().driver());
    ByteBuffer args;
    args.Write<ps::MatrixId>(c2w.id);
    PSG_ASSIGN_OR_RETURN(double sumsq,
                         driver_agent.CallFuncSum("sumsq", args));
    double q = inside / (2.0 * m) - sumsq / (4.0 * m * m);

    std::unordered_set<uint64_t> coms;
    for (const ComEdge& ce : contracted_rows) {
      coms.insert(ce.first.first);
      coms.insert(ce.first.second);
    }
    result.modularity = q;
    result.num_communities = coms.size();
    result.passes = pass + 1;
    ctx.convergence().Record("fast_unfolding.modularity", pass, q);

    PSG_RETURN_NOT_OK(ctx.ps().DropMatrix(job + ".vertex2com"));
    PSG_RETURN_NOT_OK(ctx.ps().DropMatrix(job + ".com2weight"));

    bool converged = pass > 0 && (q - prev_q) < opts.min_gain;
    prev_q = q;
    if (converged) break;

    // Next pass input: the contracted multigraph.
    graph::EdgeList new_edges;
    new_edges.reserve(contracted_rows.size());
    for (const ComEdge& ce : contracted_rows) {
      new_edges.push_back({ce.first.first, ce.first.second, ce.second});
    }
    edges = dataflow::Dataset<graph::Edge>::FromVector(
        &ctx.dataflow(), std::move(new_edges),
        ctx.num_executors());
  }

  return result;
}

}  // namespace psgraph::core
