// Skip-gram-with-negative-sampling training on the parameter server,
// shared by LINE (§IV-D) and DeepWalk (vertex embeddings, §II-B [11]).
//
// The embedding and context matrices are column-partitioned with
// identical range splits; a training step computes the pair dot products
// server-side ("dot.partial"), derives per-pair scalar coefficients on
// the executor, and applies rank-1 SGD updates server-side
// ("line.adjust"). Only scalars cross the network.

#ifndef PSGRAPH_CORE_SKIPGRAM_H_
#define PSGRAPH_CORE_SKIPGRAM_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/psgraph_context.h"
#include "ps/matrix_meta.h"

namespace psgraph::core {

/// One embedding model on the PS: target matrix + context matrix (the
/// same matrix for first-order proximity).
struct SkipGramModel {
  ps::MatrixMeta emb;
  ps::MatrixMeta ctx;
  int dim = 0;
};

/// Creates the column-partitioned matrices and random-initializes the
/// embeddings server-side. `order1` reuses emb as ctx.
Result<SkipGramModel> CreateSkipGramModel(PsGraphContext& ctx,
                                          const std::string& name,
                                          uint64_t num_vertices, int dim,
                                          bool order1, uint64_t seed);

/// Trains one batch of (target, context, label) samples from executor
/// `e`. Returns the summed negative log-likelihood of the batch.
/// `use_psfunc_dot=false` pulls whole vectors instead (ablation path).
Result<double> TrainSkipGramBatch(
    PsGraphContext& ctx, int32_t e, const SkipGramModel& model,
    const std::vector<std::pair<uint64_t, uint64_t>>& pairs,
    const std::vector<float>& labels, float learning_rate,
    bool use_psfunc_dot = true);

/// Trains one batch of POSITIVE (target, context) pairs with shared
/// sampled negatives: instead of the caller drawing `num_negatives`
/// noise vertices per pair and paying full-pull cost for each, one pool
/// of `num_negatives` context rows is fetched per batch over the
/// constant-size "ps.sample" access (seeded by `negative_seed`) and
/// shared by every target — the scheme Tencent's Spark embedding system
/// uses for LINE/DeepWalk negatives. Negatives are uniform over the
/// vertex space (not degree^0.75-biased like NoiseTable); see DESIGN.md
/// for the tradeoff. Returns the batch NLL.
Result<double> TrainSkipGramBatchSampled(
    PsGraphContext& ctx, int32_t e, const SkipGramModel& model,
    const std::vector<std::pair<uint64_t, uint64_t>>& positives,
    float learning_rate, int num_negatives, uint64_t negative_seed);

/// Pulls the full embedding table (row-major num_vertices x dim).
Result<std::vector<float>> PullEmbeddings(PsGraphContext& ctx,
                                          const SkipGramModel& model,
                                          uint64_t num_vertices);

/// Drops the model's matrices.
Status DropSkipGramModel(PsGraphContext& ctx, const std::string& name,
                         bool order1);

}  // namespace psgraph::core

#endif  // PSGRAPH_CORE_SKIPGRAM_H_
