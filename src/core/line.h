// LINE graph embedding on the parameter server (paper §IV-D).
//
// Each vertex has an embedding vector and (for second-order proximity) a
// context vector. Both matrices are COLUMN-partitioned with identical
// range splits, so dimension k of every vector lives on the same server
// and the sigmoid dot products can be computed as server-side partials
// ("dot.partial" psFunc) merged by the agent — only scalars cross the
// network. SGD updates are likewise applied on the servers ("line.adjust"
// psFunc) from per-pair scalar coefficients. An ablation flag disables
// the psFunc path and pulls/pushes whole vectors instead.

#ifndef PSGRAPH_CORE_LINE_H_
#define PSGRAPH_CORE_LINE_H_

#include <cstdint>
#include <vector>

#include "core/graph_loader.h"
#include "core/psgraph_context.h"
#include "graph/types.h"
#include "ps/master.h"

namespace psgraph::core {

struct LineOptions {
  int embedding_dim = 32;
  /// 1 = first-order proximity (embedding . embedding), 2 = second-order
  /// (context . embedding).
  int order = 2;
  int epochs = 5;
  uint64_t batch_size = 1024;
  int negative_samples = 5;
  float learning_rate = 0.025f;
  uint64_t seed = 42;
  /// Paper's optimization: compute dot products on the PS via psFunc and
  /// push scalar coefficients. false = pull whole vectors and push whole
  /// updates (the ablation baseline).
  bool use_psfunc_dot = true;
  /// Skew-aware negatives: draw each batch's K negatives as one shared
  /// pool over the constant-size "ps.sample" access instead of K
  /// degree^0.75 alias draws per edge pulled at full cost (see
  /// core/skipgram.h TrainSkipGramBatchSampled). Implies the pull/push
  /// training path (ignores use_psfunc_dot).
  bool sampled_negatives = false;
  ps::RecoveryMode recovery = ps::RecoveryMode::kPartial;
};

struct LineResult {
  /// Row-major [num_vertices x dim] final embeddings.
  std::vector<float> embeddings;
  graph::VertexId num_vertices = 0;
  int dim = 0;
  int epochs = 0;
  /// Mean negative log-likelihood of the last epoch's batches.
  double final_avg_loss = 0.0;
};

Result<LineResult> Line(PsGraphContext& ctx,
                        const dataflow::Dataset<graph::Edge>& edges,
                        graph::VertexId num_vertices,
                        const LineOptions& opts = {});

}  // namespace psgraph::core

#endif  // PSGRAPH_CORE_LINE_H_
