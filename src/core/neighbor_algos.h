// Common neighbor and triangle count on the parameter server (paper
// §IV-B). Both store the neighbor tables on the PS and stream batches of
// edges on the executors, pulling the two endpoints' adjacency and
// intersecting — no joins, no shuffle, memory bounded by the batch size.

#ifndef PSGRAPH_CORE_NEIGHBOR_ALGOS_H_
#define PSGRAPH_CORE_NEIGHBOR_ALGOS_H_

#include <cstdint>
#include <string>

#include "core/graph_loader.h"
#include "core/psgraph_context.h"
#include "graph/types.h"
#include "ps/master.h"

namespace psgraph::core {

struct CommonNeighborOptions {
  /// Fraction of edges scored as candidate pairs (deterministic hash
  /// selection, identical to the GraphX baseline's).
  double pair_fraction = 1.0;
  /// Edges scored per executor per round.
  uint64_t batch_size = 4096;
  /// Neighbor tables tolerate partition-level inconsistency (§III-B).
  ps::RecoveryMode recovery = ps::RecoveryMode::kPartial;
  /// Checkpoint the neighbor tables right after the load phase so a PS
  /// failure recovers without a rebuild.
  bool checkpoint_after_load = true;
};

struct CommonNeighborStats {
  uint64_t pairs = 0;
  uint64_t total_common = 0;
  uint64_t max_common = 0;
  int rounds = 0;
};

/// Scores |N(u) ∩ N(v)| for every input edge (u, v) using out-neighbor
/// tables stored on the PS.
Result<CommonNeighborStats> CommonNeighbor(
    PsGraphContext& ctx, const dataflow::Dataset<graph::Edge>& edges,
    const CommonNeighborOptions& opts = {});

struct TriangleCountOptions {
  uint64_t batch_size = 4096;
  ps::RecoveryMode recovery = ps::RecoveryMode::kPartial;
};

/// Exact triangle count ("the implementation is similar to common
/// neighbor", paper footnote 2): canonicalizes to an undirected simple
/// graph, stores full sorted adjacency on the PS, and sums per-edge
/// common-neighbor counts / 3.
Result<uint64_t> TriangleCount(PsGraphContext& ctx,
                               const dataflow::Dataset<graph::Edge>& edges,
                               const TriangleCountOptions& opts = {});

}  // namespace psgraph::core

#endif  // PSGRAPH_CORE_NEIGHBOR_ALGOS_H_
