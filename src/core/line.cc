#include "core/line.h"

#include <algorithm>
#include <cmath>

#include "common/alias_table.h"
#include "common/hash.h"
#include "common/random.h"
#include "core/skipgram.h"
#include "graph/degree.h"
#include "ps/agent.h"

namespace psgraph::core {

namespace {
int g_line_job = 0;
}  // namespace

Result<LineResult> Line(PsGraphContext& ctx,
                        const dataflow::Dataset<graph::Edge>& edges,
                        graph::VertexId num_vertices,
                        const LineOptions& opts) {
  if (opts.order != 1 && opts.order != 2) {
    return Status::InvalidArgument("LINE order must be 1 or 2");
  }
  PSG_ASSIGN_OR_RETURN(auto all_edges, edges.Collect());
  if (num_vertices == 0) num_vertices = graph::NumVerticesOf(all_edges);
  if (all_edges.empty()) return Status::InvalidArgument("empty graph");

  // Noise distribution for negative sampling: degree^0.75 (as in the
  // LINE/word2vec papers). Built once on the driver.
  AliasTable noise;
  {
    std::vector<uint64_t> deg = graph::InDegrees(all_edges, num_vertices);
    std::vector<double> weights(num_vertices);
    for (graph::VertexId v = 0; v < num_vertices; ++v) {
      weights[v] = std::pow(static_cast<double>(deg[v]), 0.75);
    }
    noise = AliasTable(weights);
  }

  const int dim = opts.embedding_dim;
  const std::string job = "line" + std::to_string(g_line_job++);
  PSG_ASSIGN_OR_RETURN(
      SkipGramModel model,
      CreateSkipGramModel(ctx, job, num_vertices, dim,
                          /*order1=*/opts.order == 1, opts.seed));

  // Edge partitions stay on their executors; each executor trains on its
  // local batches.
  const int32_t E = ctx.num_executors();
  std::vector<graph::EdgeList> local(E);
  for (int32_t p = 0; p < edges.num_partitions(); ++p) {
    int32_t e = ctx.dataflow().ExecutorOf(p);
    PSG_ASSIGN_OR_RETURN(auto part, edges.ComputePartition(p));
    local[e].insert(local[e].end(), part.begin(), part.end());
  }

  LineResult result;
  result.num_vertices = num_vertices;
  result.dim = dim;
  const int K = opts.negative_samples;

  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    PSG_ASSIGN_OR_RETURN(auto recovery,
                         ctx.HandleFailures(epoch, opts.recovery));
    (void)recovery;
    // Executors train on their local batches concurrently (one task per
    // executor; the per-executor Rng keeps sampling independent of the
    // schedule). Per-executor losses are reduced in executor order after
    // the join so the reported loss is the same at any parallelism.
    std::vector<double> exec_loss(E, 0.0);
    std::vector<uint64_t> exec_count(E, 0);
    PSG_RETURN_NOT_OK(dataflow::RunPartitioned(
        &ctx.dataflow(), E, [&](int32_t e) -> Status {
          Rng rng(opts.seed ^ Hash64((uint64_t)epoch * 1315423911ull + e));
          const graph::EdgeList& mine = local[e];
          for (uint64_t begin = 0; begin < mine.size();
               begin += opts.batch_size) {
            uint64_t end =
                std::min<uint64_t>(mine.size(), begin + opts.batch_size);
            if (opts.sampled_negatives) {
              // Positives only; the batch's K negatives come as one
              // shared pool over "ps.sample" (seeded from this
              // executor's own stream — deterministic per schedule).
              std::vector<std::pair<uint64_t, uint64_t>> positives;
              positives.reserve(end - begin);
              for (uint64_t i = begin; i < end; ++i) {
                positives.push_back({mine[i].src, mine[i].dst});
              }
              PSG_ASSIGN_OR_RETURN(
                  double loss,
                  TrainSkipGramBatchSampled(ctx, e, model, positives,
                                            opts.learning_rate, K,
                                            rng.NextU64()));
              exec_loss[e] += loss;
              exec_count[e] += positives.size() * (K + 1);
              continue;
            }
            // One positive pair per edge plus K shared-source negatives.
            std::vector<std::pair<uint64_t, uint64_t>> pairs;
            std::vector<float> labels;
            pairs.reserve((end - begin) * (K + 1));
            for (uint64_t i = begin; i < end; ++i) {
              pairs.push_back({mine[i].src, mine[i].dst});
              labels.push_back(1.0f);
              for (int k = 0; k < K; ++k) {
                pairs.push_back({mine[i].src, noise.Sample(rng)});
                labels.push_back(0.0f);
              }
            }
            PSG_ASSIGN_OR_RETURN(
                double loss,
                TrainSkipGramBatch(ctx, e, model, pairs, labels,
                                   opts.learning_rate,
                                   opts.use_psfunc_dot));
            exec_loss[e] += loss;
            exec_count[e] += pairs.size();
          }
          return Status::OK();
        }));
    double loss_sum = 0.0;
    uint64_t loss_count = 0;
    for (int32_t e = 0; e < E; ++e) {
      loss_sum += exec_loss[e];
      loss_count += exec_count[e];
    }
    ctx.sync().IterationBarrier();
    PSG_RETURN_NOT_OK(ctx.MaybeCheckpoint(epoch));
    result.epochs = epoch + 1;
    result.final_avg_loss =
        loss_count == 0 ? 0.0 : loss_sum / static_cast<double>(loss_count);
    ctx.convergence().Record("line.loss", epoch, result.final_avg_loss);
  }

  PSG_ASSIGN_OR_RETURN(result.embeddings,
                       PullEmbeddings(ctx, model, num_vertices));
  PSG_RETURN_NOT_OK(
      DropSkipGramModel(ctx, job, /*order1=*/opts.order == 1));
  return result;
}

}  // namespace psgraph::core
