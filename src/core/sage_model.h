// The GraphSage model math (Hamilton et al. 2017), shared by the PSGraph
// implementation (src/core/graphsage.cc) and the Euler baseline
// (src/euler) so Table I compares systems, not model variants.
//
// Two layers with mean aggregation:
//   h1_u = relu(concat(x_u, mean_{w in S(u)} x_w) W1)
//   logits_v = concat(h1_v, mean_{u in S1(v)} h1_u) W2
// Both h1 inputs and the final logits use the sampled fixed-size
// neighborhoods; training is supervised softmax cross-entropy.

#ifndef PSGRAPH_CORE_SAGE_MODEL_H_
#define PSGRAPH_CORE_SAGE_MODEL_H_

#include <cstdint>
#include <vector>

#include "minitorch/ops.h"
#include "minitorch/tensor.h"

namespace psgraph::core {

/// Neighborhood aggregator architecture (paper §IV-E step 3 lists mean,
/// LSTM and pooling aggregators; mean and max-pooling are implemented).
enum class SageAggregator {
  kMean,
  kMaxPool,  ///< max over relu(x W_pool) of the sampled neighbors
};

struct SageParams {
  minitorch::Tensor w1;  ///< (2*in_dim) x hidden
  minitorch::Tensor w2;  ///< (2*hidden) x classes
  SageAggregator aggregator = SageAggregator::kMean;
  minitorch::Tensor w_pool1;  ///< in_dim x in_dim (max-pool only)
  minitorch::Tensor w_pool2;  ///< hidden x hidden (max-pool only)
};

/// One mini-batch, expressed as row indices into a feature tensor.
struct SageBatch {
  /// Features of every vertex involved (batch + sampled 1-hop + 2-hop),
  /// deduplicated; rows indexed by the fields below. No gradient.
  minitorch::Tensor features;
  /// Rows (into features) of the layer-1 nodes (batch vertices first,
  /// then sampled 1-hop neighbors).
  std::vector<int64_t> nodes1;
  /// Per layer-1 node: rows (into features) of its sampled neighbors.
  std::vector<std::vector<int64_t>> seg1;
  /// Per batch vertex: indices (into nodes1 order) of its sampled 1-hop
  /// neighbors.
  std::vector<std::vector<int64_t>> seg2;
  /// Number of batch vertices (a prefix of nodes1).
  int64_t batch_size = 0;
  /// Labels of the batch vertices (empty for inference).
  std::vector<int32_t> labels;
};

/// Forward pass producing batch logits.
minitorch::Tensor SageForward(const SageParams& params,
                              const SageBatch& batch);

/// Approximate flop count of one forward pass (3x for backward); used to
/// charge simulated compute time.
uint64_t SageForwardOps(const SageParams& params, const SageBatch& batch);

}  // namespace psgraph::core

#endif  // PSGRAPH_CORE_SAGE_MODEL_H_
