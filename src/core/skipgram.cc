#include "core/skipgram.h"

#include <algorithm>
#include <cmath>

#include "common/varint.h"
#include "ps/agent.h"

namespace psgraph::core {

namespace {
float SigmoidF(double x) {
  return static_cast<float>(1.0 / (1.0 + std::exp(-x)));
}
}  // namespace

Result<SkipGramModel> CreateSkipGramModel(PsGraphContext& ctx,
                                          const std::string& name,
                                          uint64_t num_vertices, int dim,
                                          bool order1, uint64_t seed) {
  SkipGramModel model;
  model.dim = dim;
  PSG_ASSIGN_OR_RETURN(
      model.emb,
      ctx.ps().CreateMatrix(name + ".emb", num_vertices, dim,
                            ps::StorageKind::kRows,
                            ps::Layout::kColumnPartitioned,
                            ps::PartitionScheme::kRange));
  if (order1) {
    model.ctx = model.emb;
  } else {
    PSG_ASSIGN_OR_RETURN(
        model.ctx,
        ctx.ps().CreateMatrix(name + ".ctx", num_vertices, dim,
                              ps::StorageKind::kRows,
                              ps::Layout::kColumnPartitioned,
                              ps::PartitionScheme::kRange));
  }
  // Random-init the target embeddings server-side; context vectors start
  // at zero (word2vec convention). 1/sqrt(dim) keeps dots O(1).
  ps::PsAgent driver_agent(&ctx.ps(), ctx.cluster().config().driver());
  ByteBuffer args;
  args.Write<ps::MatrixId>(model.emb.id);
  args.Write<float>(1.0f / std::sqrt(static_cast<float>(dim)));
  args.Write<uint64_t>(seed);
  PSG_ASSIGN_OR_RETURN(auto resp,
                       driver_agent.CallFuncAll("init.randn", args));
  (void)resp;
  return model;
}

Result<double> TrainSkipGramBatch(
    PsGraphContext& ctx, int32_t e, const SkipGramModel& model,
    const std::vector<std::pair<uint64_t, uint64_t>>& pairs,
    const std::vector<float>& labels, float learning_rate,
    bool use_psfunc_dot) {
  if (pairs.size() != labels.size()) {
    return Status::InvalidArgument("skipgram: pairs/labels mismatch");
  }
  if (pairs.empty()) return 0.0;
  const int dim = model.dim;

  std::vector<double> dots;
  std::vector<float> urows, vrows;  // only used by the pull path
  if (use_psfunc_dot) {
    PSG_ASSIGN_OR_RETURN(
        dots, ctx.agent(e).DotProducts(model.emb, model.ctx, pairs));
  } else {
    std::vector<uint64_t> ukeys(pairs.size()), vkeys(pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) {
      ukeys[i] = pairs[i].first;
      vkeys[i] = pairs[i].second;
    }
    PSG_ASSIGN_OR_RETURN(urows, ctx.agent(e).PullRows(model.emb, ukeys));
    PSG_ASSIGN_OR_RETURN(vrows, ctx.agent(e).PullRows(model.ctx, vkeys));
    dots.resize(pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) {
      double s = 0.0;
      for (int d = 0; d < dim; ++d) {
        s += static_cast<double>(urows[i * dim + d]) * vrows[i * dim + d];
      }
      dots[i] = s;
    }
  }

  // L = -log sigma(d) for positives, -log sigma(-d) for negatives; the
  // ascent coefficient is (label - sigma(d)).
  double loss_sum = 0.0;
  std::vector<uint64_t> flat;
  std::vector<float> coeffs;
  flat.reserve(pairs.size() * 2);
  coeffs.reserve(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    float s = SigmoidF(dots[i]);
    double p = labels[i] > 0.5f ? s : 1.0f - s;
    loss_sum += -std::log(std::max(1e-12, p));
    flat.push_back(pairs[i].first);
    flat.push_back(pairs[i].second);
    coeffs.push_back(labels[i] - s);
  }

  if (use_psfunc_dot) {
    ByteBuffer args;
    args.Write<ps::MatrixId>(model.emb.id);
    args.Write<ps::MatrixId>(model.ctx.id);
    args.Write<float>(learning_rate);
    PutDeltaList(&args, flat);
    args.WriteVector(coeffs);
    // line.adjust is LINE's gradient-push path; the broadcast goes to
    // every server, so the wire meter counts the payload once per
    // server against its v1 fixed-width-vector equivalent.
    const uint64_t servers =
        static_cast<uint64_t>(ctx.cluster().config().num_servers);
    const uint64_t delta_bytes = DeltaListSize(flat.data(), flat.size());
    ctx.metrics().Add("wire.func.req_bytes", args.size() * servers);
    ctx.metrics().Add(
        "wire.func.req_raw_bytes",
        (args.size() - delta_bytes + 8 + 8 * flat.size()) * servers);
    PSG_ASSIGN_OR_RETURN(auto resp,
                         ctx.agent(e).CallFuncAll("line.adjust", args));
    (void)resp;
  } else {
    std::vector<uint64_t> ukeys(pairs.size()), vkeys(pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) {
      ukeys[i] = pairs[i].first;
      vkeys[i] = pairs[i].second;
    }
    std::vector<float> du(pairs.size() * dim), dv(pairs.size() * dim);
    for (size_t i = 0; i < pairs.size(); ++i) {
      float g = learning_rate * coeffs[i];
      for (int d = 0; d < dim; ++d) {
        du[i * dim + d] = g * vrows[i * dim + d];
        dv[i * dim + d] = g * urows[i * dim + d];
      }
    }
    PSG_RETURN_NOT_OK(ctx.agent(e).PushAdd(model.emb, ukeys, du));
    PSG_RETURN_NOT_OK(ctx.agent(e).PushAdd(model.ctx, vkeys, dv));
  }
  ctx.cluster().clock().Advance(
      ctx.cluster().config().executor(e),
      ctx.cluster().cost().FlopsTime(pairs.size() * dim * 4) +
          ctx.cluster().cost().ComputeTime(pairs.size()));
  return loss_sum;
}

Result<double> TrainSkipGramBatchSampled(
    PsGraphContext& ctx, int32_t e, const SkipGramModel& model,
    const std::vector<std::pair<uint64_t, uint64_t>>& positives,
    float learning_rate, int num_negatives, uint64_t negative_seed) {
  if (positives.empty()) return 0.0;
  if (num_negatives < 0) {
    return Status::InvalidArgument("skipgram: negative num_negatives");
  }
  const int dim = model.dim;
  const size_t n = positives.size();
  const uint32_t k = static_cast<uint32_t>(num_negatives);

  std::vector<uint64_t> ukeys(n), vkeys(n);
  for (size_t i = 0; i < n; ++i) {
    ukeys[i] = positives[i].first;
    vkeys[i] = positives[i].second;
  }
  PSG_ASSIGN_OR_RETURN(auto urows, ctx.agent(e).PullRows(model.emb, ukeys));
  PSG_ASSIGN_OR_RETURN(auto vrows, ctx.agent(e).PullRows(model.ctx, vkeys));
  // One shared pool of k negative context rows for the whole batch,
  // fetched via the seed-derived sample access (constant request size).
  ps::SampledRows negatives;
  if (k > 0) {
    PSG_ASSIGN_OR_RETURN(
        negatives, ctx.agent(e).SampleRows(model.ctx, k, negative_seed));
  }

  double loss_sum = 0.0;
  std::vector<float> du(n * dim, 0.0f), dv(n * dim, 0.0f);
  std::vector<float> dn(uint64_t{k} * dim, 0.0f);
  for (size_t i = 0; i < n; ++i) {
    const float* u = urows.data() + i * dim;
    const float* v = vrows.data() + i * dim;
    // Positive pair: label 1.
    double s = 0.0;
    for (int d = 0; d < dim; ++d) {
      s += static_cast<double>(u[d]) * v[d];
    }
    float sig = SigmoidF(s);
    loss_sum += -std::log(std::max(1e-12, static_cast<double>(sig)));
    float g = learning_rate * (1.0f - sig);
    for (int d = 0; d < dim; ++d) {
      du[i * dim + d] += g * v[d];
      dv[i * dim + d] += g * u[d];
    }
    // Shared negatives: label 0 against every pool row.
    for (uint32_t j = 0; j < k; ++j) {
      const float* nv = negatives.values.data() + uint64_t{j} * dim;
      double sn = 0.0;
      for (int d = 0; d < dim; ++d) {
        sn += static_cast<double>(u[d]) * nv[d];
      }
      float sign = SigmoidF(sn);
      loss_sum +=
          -std::log(std::max(1e-12, static_cast<double>(1.0f - sign)));
      float gn = learning_rate * (0.0f - sign);
      for (int d = 0; d < dim; ++d) {
        du[i * dim + d] += gn * nv[d];
        dn[uint64_t{j} * dim + d] += gn * u[d];
      }
    }
  }

  PSG_RETURN_NOT_OK(ctx.agent(e).PushAdd(model.emb, ukeys, du));
  PSG_RETURN_NOT_OK(ctx.agent(e).PushAdd(model.ctx, vkeys, dv));
  if (k > 0) {
    PSG_RETURN_NOT_OK(ctx.agent(e).PushAdd(model.ctx, negatives.keys, dn));
  }
  ctx.cluster().clock().Advance(
      ctx.cluster().config().executor(e),
      ctx.cluster().cost().FlopsTime(n * (1 + k) * dim * 4) +
          ctx.cluster().cost().ComputeTime(n * (1 + k)));
  return loss_sum;
}

Result<std::vector<float>> PullEmbeddings(PsGraphContext& ctx,
                                          const SkipGramModel& model,
                                          uint64_t num_vertices) {
  ps::PsAgent driver_agent(&ctx.ps(), ctx.cluster().config().driver());
  std::vector<float> out(num_vertices * model.dim, 0.0f);
  const uint64_t kBatch = 1 << 14;
  for (uint64_t begin = 0; begin < num_vertices; begin += kBatch) {
    uint64_t end = std::min<uint64_t>(num_vertices, begin + kBatch);
    std::vector<uint64_t> keys(end - begin);
    for (uint64_t k = begin; k < end; ++k) keys[k - begin] = k;
    PSG_ASSIGN_OR_RETURN(std::vector<float> rows,
                         driver_agent.PullRows(model.emb, keys));
    std::copy(rows.begin(), rows.end(), out.begin() + begin * model.dim);
  }
  return out;
}

Status DropSkipGramModel(PsGraphContext& ctx, const std::string& name,
                         bool order1) {
  PSG_RETURN_NOT_OK(ctx.ps().DropMatrix(name + ".emb"));
  if (!order1) {
    PSG_RETURN_NOT_OK(ctx.ps().DropMatrix(name + ".ctx"));
  }
  return Status::OK();
}

}  // namespace psgraph::core
