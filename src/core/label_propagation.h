// Label propagation community detection (paper §II-B lists it among the
// traditional graph algorithms PSGraph runs). Labels live in a PS vector;
// every iteration each executor pulls its local vertices' neighbor labels
// and adopts the most frequent one.

#ifndef PSGRAPH_CORE_LABEL_PROPAGATION_H_
#define PSGRAPH_CORE_LABEL_PROPAGATION_H_

#include <cstdint>
#include <vector>

#include "core/graph_loader.h"
#include "core/psgraph_context.h"
#include "graph/types.h"
#include "ps/master.h"

namespace psgraph::core {

struct LabelPropagationOptions {
  int max_iterations = 20;
  ps::RecoveryMode recovery = ps::RecoveryMode::kPartial;
};

struct LabelPropagationResult {
  /// Final label per vertex id (own id for isolated/absent ids).
  std::vector<uint64_t> labels;
  uint64_t num_labels = 0;
  int iterations = 0;
};

/// Treats the input as undirected.
Result<LabelPropagationResult> LabelPropagation(
    PsGraphContext& ctx, const dataflow::Dataset<graph::Edge>& edges,
    graph::VertexId num_vertices,
    const LabelPropagationOptions& opts = {});

struct ConnectedComponentsResult {
  /// Component id (the minimum vertex id in the component) per vertex;
  /// own id for ids absent from the graph.
  std::vector<uint64_t> component;
  uint64_t num_components = 0;  ///< among vertices present in the graph
  int iterations = 0;
};

/// Connected components by min-label propagation to a fixpoint, with the
/// label vector on the PS. Treats the input as undirected.
Result<ConnectedComponentsResult> ConnectedComponents(
    PsGraphContext& ctx, const dataflow::Dataset<graph::Edge>& edges,
    graph::VertexId num_vertices, int max_iterations = 100);

}  // namespace psgraph::core

#endif  // PSGRAPH_CORE_LABEL_PROPAGATION_H_
