#include "core/neighbor_algos.h"

#include <algorithm>
#include <unordered_set>

#include "common/hash.h"

#include "common/logging.h"
#include "ps/agent.h"

namespace psgraph::core {

namespace {

int g_nbr_job = 0;

/// Sorted-vector intersection size.
uint64_t IntersectionSize(const std::vector<uint64_t>& a,
                          const std::vector<uint64_t>& b) {
  uint64_t n = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++n;
      ++i;
      ++j;
    }
  }
  return n;
}

/// groupBy + push: builds sorted neighbor tables on the PS from an edge
/// dataset (paper: "first transforming the original graph data to
/// neighbor tables by groupBy ... and then pushing the neighbor tables
/// to PS").
Result<ps::MatrixMeta> BuildNeighborTablesOnPs(
    PsGraphContext& ctx, const dataflow::Dataset<graph::Edge>& edges,
    const std::string& name) {
  PSG_ASSIGN_OR_RETURN(
      ps::MatrixMeta meta,
      ctx.ps().CreateMatrix(name, /*num_rows=*/0, /*num_cols=*/0,
                            ps::StorageKind::kNeighbors,
                            ps::Layout::kRowPartitioned,
                            ps::PartitionScheme::kHash));
  auto nbr = ToNeighborTables(edges);
  for (int32_t p = 0; p < nbr.num_partitions(); ++p) {
    int32_t e = ctx.dataflow().ExecutorOf(p);
    PSG_ASSIGN_OR_RETURN(auto tables, nbr.ComputePartition(p));
    std::vector<graph::NeighborList> lists;
    lists.reserve(tables.size());
    for (NeighborPair& t : tables) {
      graph::NeighborList nl;
      nl.vertex = t.first;
      nl.neighbors = std::move(t.second);
      std::sort(nl.neighbors.begin(), nl.neighbors.end());
      lists.push_back(std::move(nl));
    }
    PSG_RETURN_NOT_OK(ctx.agent(e).PushNeighbors(meta, lists));
  }
  ctx.sync().IterationBarrier();
  return meta;
}

/// Hash-range partitioners need a key space; neighbor tables use kHash,
/// so num_rows = 0 is fine (unused by the hash scheme).

struct EdgeScoringState {
  std::vector<graph::EdgeList> local_edges;  ///< per executor
  std::vector<uint64_t> cursor;              ///< next edge index
  std::vector<CommonNeighborStats> stats;    ///< per-executor partials
};

}  // namespace

Result<CommonNeighborStats> CommonNeighbor(
    PsGraphContext& ctx, const dataflow::Dataset<graph::Edge>& edges,
    const CommonNeighborOptions& opts) {
  const std::string job = "cn" + std::to_string(g_nbr_job++);
  PSG_ASSIGN_OR_RETURN(ps::MatrixMeta meta,
                       BuildNeighborTablesOnPs(ctx, edges, job + ".nbrs"));
  // Loading is done: freeze the adjacency into compact CSR shards (paper
  // §III-A lists CSR among the PS data structures).
  PSG_RETURN_NOT_OK(ctx.agent(0).FreezeNeighbors(meta));
  if (opts.checkpoint_after_load) {
    PSG_RETURN_NOT_OK(ctx.master().CheckpointAll());
  }

  // Each executor owns its edge partitions' scoring work.
  const int32_t E = ctx.num_executors();
  EdgeScoringState st;
  st.local_edges.resize(E);
  st.cursor.assign(E, 0);
  st.stats.resize(E);
  auto selected = [&](const graph::Edge& edge) {
    if (opts.pair_fraction >= 1.0) return true;
    return (HashCombine(Hash64(edge.src), edge.dst) % 10000) <
           static_cast<uint64_t>(opts.pair_fraction * 10000);
  };
  for (int32_t p = 0; p < edges.num_partitions(); ++p) {
    int32_t e = ctx.dataflow().ExecutorOf(p);
    PSG_ASSIGN_OR_RETURN(auto part, edges.ComputePartition(p));
    auto& dst = st.local_edges[e];
    for (const graph::Edge& edge : part) {
      if (selected(edge)) dst.push_back(edge);
    }
  }

  CommonNeighborStats total;
  int64_t round = 0;
  bool work_left = true;
  while (work_left) {
    PSG_ASSIGN_OR_RETURN(auto recovery,
                         ctx.HandleFailures(round, opts.recovery));
    for (int32_t e : recovery.executors_restarted) {
      // The restarted executor lost its partial statistics and its edge
      // partitions; it reloads them via lineage and redoes its batches
      // from the start (Table II: ~5 extra minutes on the paper scale).
      st.stats[e] = {};
      st.cursor[e] = 0;
      st.local_edges[e].clear();
      for (int32_t p = 0; p < edges.num_partitions(); ++p) {
        if (ctx.dataflow().ExecutorOf(p) != e) continue;
        PSG_ASSIGN_OR_RETURN(auto part, edges.ComputePartition(p));
        for (const graph::Edge& edge : part) {
          if (selected(edge)) st.local_edges[e].push_back(edge);
        }
      }
      work_left = true;
    }
    work_left = false;
    for (int32_t e = 0; e < E; ++e) {
      auto& local = st.local_edges[e];
      uint64_t begin = st.cursor[e];
      if (begin >= local.size()) continue;
      uint64_t end = std::min<uint64_t>(local.size(),
                                        begin + opts.batch_size);
      // Pull both endpoints' adjacency for the batch.
      std::vector<uint64_t> keys;
      keys.reserve((end - begin) * 2);
      for (uint64_t i = begin; i < end; ++i) {
        keys.push_back(local[i].src);
        keys.push_back(local[i].dst);
      }
      PSG_ASSIGN_OR_RETURN(auto entries,
                           ctx.agent(e).PullNeighbors(meta, keys));
      uint64_t ops = 0;
      for (uint64_t i = begin; i < end; ++i) {
        const auto& nu = entries[(i - begin) * 2].neighbors;
        const auto& nv = entries[(i - begin) * 2 + 1].neighbors;
        uint64_t c = IntersectionSize(nu, nv);
        st.stats[e].pairs++;
        st.stats[e].total_common += c;
        st.stats[e].max_common = std::max(st.stats[e].max_common, c);
        ops += nu.size() + nv.size();
      }
      ctx.cluster().clock().Advance(
          ctx.cluster().config().executor(e),
          ctx.cluster().cost().ComputeTime(ops));
      st.cursor[e] = end;
      if (end < local.size()) work_left = true;
    }
    ctx.sync().IterationBarrier();
    ++round;
  }

  for (int32_t e = 0; e < E; ++e) {
    total.pairs += st.stats[e].pairs;
    total.total_common += st.stats[e].total_common;
    total.max_common = std::max(total.max_common, st.stats[e].max_common);
  }
  total.rounds = static_cast<int>(round);
  PSG_RETURN_NOT_OK(ctx.ps().DropMatrix(job + ".nbrs"));
  return total;
}

Result<uint64_t> TriangleCount(PsGraphContext& ctx,
                               const dataflow::Dataset<graph::Edge>& edges,
                               const TriangleCountOptions& opts) {
  // Canonical undirected simple graph: one record per pair, u < v; the
  // adjacency pushed to PS covers both directions.
  auto canon = edges
                   .Filter([](const graph::Edge& e) {
                     return e.src != e.dst;
                   })
                   .Map([](const graph::Edge& e) {
                     graph::Edge c = e;
                     if (c.src > c.dst) std::swap(c.src, c.dst);
                     return std::pair<std::pair<graph::VertexId,
                                                graph::VertexId>,
                                      uint8_t>({c.src, c.dst}, 1);
                   })
                   .ReduceByKey([](const uint8_t& a, const uint8_t&) {
                     return a;
                   })
                   .Map([](std::pair<std::pair<graph::VertexId,
                                               graph::VertexId>,
                                     uint8_t>& kv) {
                     return graph::Edge{kv.first.first, kv.first.second,
                                        1.0f};
                   })
                   .Cache();
  PSG_RETURN_NOT_OK(canon.Evaluate());
  auto undirected = canon.FlatMap([](const graph::Edge& e) {
    return std::vector<graph::Edge>{e, {e.dst, e.src, 1.0f}};
  });

  CommonNeighborOptions cn_opts;
  cn_opts.batch_size = opts.batch_size;
  cn_opts.recovery = opts.recovery;
  const std::string job = "tc" + std::to_string(g_nbr_job++);
  PSG_ASSIGN_OR_RETURN(
      ps::MatrixMeta meta,
      BuildNeighborTablesOnPs(ctx, undirected, job + ".nbrs"));

  uint64_t sum = 0;
  for (int32_t p = 0; p < canon.num_partitions(); ++p) {
    int32_t e = ctx.dataflow().ExecutorOf(p);
    PSG_ASSIGN_OR_RETURN(auto part, canon.ComputePartition(p));
    for (uint64_t begin = 0; begin < part.size();
         begin += opts.batch_size) {
      uint64_t end =
          std::min<uint64_t>(part.size(), begin + opts.batch_size);
      std::vector<uint64_t> keys;
      keys.reserve((end - begin) * 2);
      for (uint64_t i = begin; i < end; ++i) {
        keys.push_back(part[i].src);
        keys.push_back(part[i].dst);
      }
      PSG_ASSIGN_OR_RETURN(auto entries,
                           ctx.agent(e).PullNeighbors(meta, keys));
      uint64_t ops = 0;
      for (uint64_t i = begin; i < end; ++i) {
        sum += IntersectionSize(entries[(i - begin) * 2].neighbors,
                                entries[(i - begin) * 2 + 1].neighbors);
        ops += entries[(i - begin) * 2].neighbors.size() +
               entries[(i - begin) * 2 + 1].neighbors.size();
      }
      ctx.cluster().clock().Advance(
          ctx.cluster().config().executor(e),
          ctx.cluster().cost().ComputeTime(ops));
    }
  }
  ctx.sync().IterationBarrier();
  canon.Unpersist();
  PSG_RETURN_NOT_OK(ctx.ps().DropMatrix(job + ".nbrs"));
  return sum / 3;
}

}  // namespace psgraph::core
