#include "core/label_propagation.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "ps/agent.h"

namespace psgraph::core {

namespace {
int g_lpa_job = 0;
}

Result<LabelPropagationResult> LabelPropagation(
    PsGraphContext& ctx, const dataflow::Dataset<graph::Edge>& edges,
    graph::VertexId num_vertices, const LabelPropagationOptions& opts) {
  if (num_vertices == 0) {
    PSG_ASSIGN_OR_RETURN(auto all, edges.Collect());
    num_vertices = graph::NumVerticesOf(all);
  }
  if (num_vertices >= (1ull << 24)) {
    return Status::InvalidArgument(
        "label propagation: ids beyond float32 exactness");
  }

  auto nbr = ToNeighborTables(edges.FlatMap([](const graph::Edge& e) {
               return std::vector<graph::Edge>{e, {e.dst, e.src, 1.0f}};
             }))
                 .Cache();
  PSG_RETURN_NOT_OK(nbr.Evaluate());

  const std::string job = "lpa" + std::to_string(g_lpa_job++);
  PSG_ASSIGN_OR_RETURN(
      ps::MatrixMeta labels,
      ctx.ps().CreateMatrix(job + ".labels", num_vertices, 1,
                            ps::StorageKind::kRows,
                            ps::Layout::kRowPartitioned,
                            ps::PartitionScheme::kRange,
                            /*init_value=*/-1.0f));

  // Init: every vertex labeled with itself.
  for (int32_t p = 0; p < nbr.num_partitions(); ++p) {
    int32_t e = ctx.dataflow().ExecutorOf(p);
    PSG_ASSIGN_OR_RETURN(auto tables, nbr.ComputePartition(p));
    std::vector<uint64_t> keys;
    std::vector<float> values;
    for (const NeighborPair& t : tables) {
      keys.push_back(t.first);
      values.push_back(static_cast<float>(t.first));
    }
    PSG_RETURN_NOT_OK(ctx.agent(e).PushAssign(labels, keys, values));
  }
  ctx.sync().IterationBarrier();

  LabelPropagationResult result;
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    PSG_ASSIGN_OR_RETURN(auto recovery,
                         ctx.HandleFailures(iter, opts.recovery));
    (void)recovery;
    uint64_t changed = 0;
    for (int32_t p = 0; p < nbr.num_partitions(); ++p) {
      int32_t e = ctx.dataflow().ExecutorOf(p);
      PSG_ASSIGN_OR_RETURN(auto tables, nbr.ComputePartition(p));
      std::vector<uint64_t> keys;
      for (const NeighborPair& t : tables) {
        keys.push_back(t.first);
        keys.insert(keys.end(), t.second.begin(), t.second.end());
      }
      PSG_ASSIGN_OR_RETURN(std::vector<float> vals,
                           ctx.agent(e).PullRows(labels, keys));
      std::vector<uint64_t> out_keys;
      std::vector<float> out_vals;
      size_t cursor = 0;
      uint64_t ops = 0;
      std::unordered_map<uint64_t, uint32_t> freq;
      for (const NeighborPair& t : tables) {
        uint64_t own = static_cast<uint64_t>(vals[cursor++]);
        freq.clear();
        for (size_t i = 0; i < t.second.size(); ++i) {
          freq[static_cast<uint64_t>(vals[cursor++])]++;
        }
        if (freq.empty()) continue;
        // Most frequent; ties break to the smallest label (deterministic).
        uint64_t best = own;
        uint32_t best_count = 0;
        for (const auto& [label, count] : freq) {
          if (count > best_count ||
              (count == best_count && label < best)) {
            best = label;
            best_count = count;
          }
        }
        if (best != own) {
          out_keys.push_back(t.first);
          out_vals.push_back(static_cast<float>(best));
          ++changed;
        }
        ops += t.second.size();
      }
      ctx.cluster().clock().Advance(
          ctx.cluster().config().executor(e),
          ctx.cluster().cost().ComputeTime(ops));
      if (!out_keys.empty()) {
        PSG_RETURN_NOT_OK(
            ctx.agent(e).PushAssign(labels, out_keys, out_vals));
      }
    }
    ctx.sync().IterationBarrier();
    result.iterations = iter + 1;
    if (changed == 0) break;
  }

  // Read back.
  ps::PsAgent driver_agent(&ctx.ps(), ctx.cluster().config().driver());
  result.labels.resize(num_vertices);
  const uint64_t kBatch = 1 << 16;
  std::unordered_set<uint64_t> distinct;
  for (uint64_t begin = 0; begin < num_vertices; begin += kBatch) {
    uint64_t end = std::min<uint64_t>(num_vertices, begin + kBatch);
    std::vector<uint64_t> keys(end - begin);
    for (uint64_t k = begin; k < end; ++k) keys[k - begin] = k;
    PSG_ASSIGN_OR_RETURN(std::vector<float> vals,
                         driver_agent.PullRows(labels, keys));
    for (uint64_t k = begin; k < end; ++k) {
      float label = vals[k - begin];
      // Rows never pushed (absent ids) read the -1 sentinel; label them
      // with their own id.
      result.labels[k] =
          label < 0.0f ? k : static_cast<uint64_t>(label);
      distinct.insert(result.labels[k]);
    }
  }
  result.num_labels = distinct.size();
  PSG_RETURN_NOT_OK(ctx.ps().DropMatrix(job + ".labels"));
  nbr.Unpersist();
  return result;
}


Result<ConnectedComponentsResult> ConnectedComponents(
    PsGraphContext& ctx, const dataflow::Dataset<graph::Edge>& edges,
    graph::VertexId num_vertices, int max_iterations) {
  if (num_vertices == 0) {
    PSG_ASSIGN_OR_RETURN(auto all, edges.Collect());
    num_vertices = graph::NumVerticesOf(all);
  }
  if (num_vertices >= (1ull << 24)) {
    return Status::InvalidArgument(
        "connected components: ids beyond float32 exactness");
  }

  auto nbr = ToNeighborTables(edges.FlatMap([](const graph::Edge& e) {
               return std::vector<graph::Edge>{e, {e.dst, e.src, 1.0f}};
             }))
                 .Cache();
  PSG_RETURN_NOT_OK(nbr.Evaluate());

  const std::string job = "cc" + std::to_string(g_lpa_job++);
  PSG_ASSIGN_OR_RETURN(
      ps::MatrixMeta labels,
      ctx.ps().CreateMatrix(job + ".labels", num_vertices, 1,
                            ps::StorageKind::kRows,
                            ps::Layout::kRowPartitioned,
                            ps::PartitionScheme::kRange,
                            /*init_value=*/-1.0f));
  for (int32_t p = 0; p < nbr.num_partitions(); ++p) {
    int32_t e = ctx.dataflow().ExecutorOf(p);
    PSG_ASSIGN_OR_RETURN(auto tables, nbr.ComputePartition(p));
    std::vector<uint64_t> keys;
    std::vector<float> values;
    for (const NeighborPair& t : tables) {
      keys.push_back(t.first);
      values.push_back(static_cast<float>(t.first));
    }
    PSG_RETURN_NOT_OK(ctx.agent(e).PushAssign(labels, keys, values));
  }
  ctx.sync().IterationBarrier();

  ConnectedComponentsResult result;
  for (int iter = 0; iter < max_iterations; ++iter) {
    PSG_ASSIGN_OR_RETURN(
        auto recovery,
        ctx.HandleFailures(iter, ps::RecoveryMode::kConsistent));
    (void)recovery;
    uint64_t changed = 0;
    for (int32_t p = 0; p < nbr.num_partitions(); ++p) {
      int32_t e = ctx.dataflow().ExecutorOf(p);
      PSG_ASSIGN_OR_RETURN(auto tables, nbr.ComputePartition(p));
      std::vector<uint64_t> keys;
      for (const NeighborPair& t : tables) {
        keys.push_back(t.first);
        keys.insert(keys.end(), t.second.begin(), t.second.end());
      }
      PSG_ASSIGN_OR_RETURN(std::vector<float> vals,
                           ctx.agent(e).PullRows(labels, keys));
      std::vector<uint64_t> out_keys;
      std::vector<float> out_vals;
      size_t cursor = 0;
      uint64_t ops = 0;
      for (const NeighborPair& t : tables) {
        float own = vals[cursor++];
        float best = own;
        for (size_t i = 0; i < t.second.size(); ++i) {
          best = std::min(best, vals[cursor++]);
        }
        if (best < own) {
          out_keys.push_back(t.first);
          out_vals.push_back(best);
          ++changed;
        }
        ops += t.second.size();
      }
      ctx.cluster().clock().Advance(
          ctx.cluster().config().executor(e),
          ctx.cluster().cost().ComputeTime(ops));
      if (!out_keys.empty()) {
        PSG_RETURN_NOT_OK(
            ctx.agent(e).PushAssign(labels, out_keys, out_vals));
      }
    }
    ctx.sync().IterationBarrier();
    result.iterations = iter + 1;
    if (changed == 0) break;
  }

  ps::PsAgent driver_agent(&ctx.ps(), ctx.cluster().config().driver());
  result.component.resize(num_vertices);
  std::unordered_set<uint64_t> roots;
  const uint64_t kBatch = 1 << 16;
  for (uint64_t begin = 0; begin < num_vertices; begin += kBatch) {
    uint64_t end = std::min<uint64_t>(num_vertices, begin + kBatch);
    std::vector<uint64_t> keys(end - begin);
    for (uint64_t k = begin; k < end; ++k) keys[k - begin] = k;
    PSG_ASSIGN_OR_RETURN(std::vector<float> vals,
                         driver_agent.PullRows(labels, keys));
    for (uint64_t k = begin; k < end; ++k) {
      float label = vals[k - begin];
      if (label < 0.0f) {
        result.component[k] = k;  // absent from the graph
      } else {
        result.component[k] = static_cast<uint64_t>(label);
        roots.insert(result.component[k]);
      }
    }
  }
  result.num_components = roots.size();
  PSG_RETURN_NOT_OK(ctx.ps().DropMatrix(job + ".labels"));
  nbr.Unpersist();
  return result;
}

}  // namespace psgraph::core
