#include "core/sgc.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/hash.h"
#include "common/random.h"
#include "core/graph_loader.h"
#include "graph/edge_io.h"
#include "minitorch/nn.h"
#include "ps/agent.h"

namespace psgraph::core {

namespace {
int g_sgc_job = 0;
}

Result<SgcResult> Sgc(PsGraphContext& ctx, const graph::LabeledGraph& g,
                      const SgcOptions& opts) {
  SgcResult result;
  const std::string job = "sgc" + std::to_string(g_sgc_job++);
  const int d = g.feature_dim;
  const int classes = g.num_classes;
  const graph::VertexId n = g.num_vertices;

  // Stage + load + groupBy, like every PSGraph job.
  PSG_ASSIGN_OR_RETURN(
      auto edges, StageAndLoadEdges(ctx, g.edges, job + "/edges.bin"));
  auto nbr = ToNeighborTables(edges.FlatMap([](const graph::Edge& e) {
               return std::vector<graph::Edge>{e, {e.dst, e.src, 1.0f}};
             }))
                 .Cache();
  PSG_RETURN_NOT_OK(nbr.Evaluate());

  // Two feature matrices on the PS: ping-pong between H and H'.
  PSG_ASSIGN_OR_RETURN(ps::MatrixMeta h0,
                       ctx.ps().CreateMatrix(job + ".h0", n, d));
  PSG_ASSIGN_OR_RETURN(ps::MatrixMeta h1,
                       ctx.ps().CreateMatrix(job + ".h1", n, d));
  PSG_ASSIGN_OR_RETURN(ps::MatrixMeta w,
                       ctx.ps().CreateMatrix(job + ".w", d, classes));
  PSG_ASSIGN_OR_RETURN(ps::MatrixMeta wm,
                       ctx.ps().CreateMatrix(job + ".w.m", d, classes));
  PSG_ASSIGN_OR_RETURN(ps::MatrixMeta wv,
                       ctx.ps().CreateMatrix(job + ".w.v", d, classes));

  // Push initial features and remember each executor's vertices and
  // (undirected) degrees.
  std::vector<std::vector<std::pair<graph::VertexId, uint32_t>>>
      local_vertices(ctx.num_executors());
  std::unordered_map<graph::VertexId, uint32_t> degree;
  for (int32_t p = 0; p < nbr.num_partitions(); ++p) {
    int32_t e = ctx.dataflow().ExecutorOf(p);
    PSG_ASSIGN_OR_RETURN(auto tables, nbr.ComputePartition(p));
    std::vector<uint64_t> keys;
    std::vector<float> rows;
    for (const NeighborPair& t : tables) {
      keys.push_back(t.first);
      const float* row =
          g.features.data() + static_cast<size_t>(t.first) * d;
      rows.insert(rows.end(), row, row + d);
      uint32_t deg = static_cast<uint32_t>(t.second.size());
      local_vertices[e].push_back({t.first, deg});
      degree[t.first] = deg;
    }
    PSG_RETURN_NOT_OK(ctx.agent(e).PushAssign(h0, keys, rows));
  }
  ctx.sync().IterationBarrier();

  // --- Phase 1: K propagation rounds (PageRank pattern over rows) ---
  double prop_start = ctx.cluster().clock().Makespan();
  ps::MatrixMeta src = h0, dst = h1;
  for (int step = 0; step < opts.propagation_steps; ++step) {
    PSG_ASSIGN_OR_RETURN(auto recovery,
                         ctx.HandleFailures(step, opts.recovery));
    (void)recovery;
    for (int32_t p = 0; p < nbr.num_partitions(); ++p) {
      int32_t e = ctx.dataflow().ExecutorOf(p);
      PSG_ASSIGN_OR_RETURN(auto tables, nbr.ComputePartition(p));
      // Pull own + neighbor rows in one batch.
      std::vector<uint64_t> keys;
      for (const NeighborPair& t : tables) {
        keys.push_back(t.first);
        keys.insert(keys.end(), t.second.begin(), t.second.end());
      }
      PSG_ASSIGN_OR_RETURN(std::vector<float> rows,
                           ctx.agent(e).PullRows(src, keys));
      std::vector<uint64_t> out_keys;
      std::vector<float> out_rows;
      size_t cursor = 0;
      uint64_t flops = 0;
      for (const NeighborPair& t : tables) {
        const float* own = rows.data() + (cursor++) * d;
        double norm_v =
            1.0 / std::sqrt(static_cast<double>(t.second.size()) + 1.0);
        std::vector<float> agg(own, own + d);
        for (float& x : agg) {
          x = static_cast<float>(x * norm_v * norm_v);  // self loop
        }
        for (graph::VertexId u : t.second) {
          const float* urow = rows.data() + (cursor++) * d;
          auto it = degree.find(u);
          double deg_u =
              it == degree.end() ? 0.0 : static_cast<double>(it->second);
          float scale =
              static_cast<float>(norm_v / std::sqrt(deg_u + 1.0));
          for (int c = 0; c < d; ++c) agg[c] += urow[c] * scale;
        }
        out_keys.push_back(t.first);
        out_rows.insert(out_rows.end(), agg.begin(), agg.end());
        flops += (t.second.size() + 2) * d;
      }
      ctx.cluster().clock().Advance(
          ctx.cluster().config().executor(e),
          ctx.cluster().cost().FlopsTime(flops));
      PSG_RETURN_NOT_OK(ctx.agent(e).PushAssign(dst, out_keys, out_rows));
    }
    ctx.sync().IterationBarrier();
    std::swap(src, dst);
  }
  result.propagation_sim_seconds =
      ctx.cluster().clock().Makespan() - prop_start;

  // --- Phase 2: linear softmax classifier on propagated features ---
  {
    Rng rng(opts.seed);
    minitorch::Tensor w0 = minitorch::Tensor::Randn(d, classes, rng);
    std::vector<uint64_t> wkeys(d);
    for (int r = 0; r < d; ++r) wkeys[r] = r;
    ps::PsAgent driver_agent(&ctx.ps(), ctx.cluster().config().driver());
    PSG_RETURN_NOT_OK(driver_agent.PushAssign(w, wkeys, w0.data()));
  }

  int32_t step_counter = 0;
  auto run_batch =
      [&](int32_t e,
          const std::vector<std::pair<graph::VertexId, int32_t>>& batch,
          bool train) -> Result<std::pair<double, double>> {
    std::vector<uint64_t> wkeys(d);
    for (int r = 0; r < d; ++r) wkeys[r] = r;
    PSG_ASSIGN_OR_RETURN(std::vector<float> wdata,
                         ctx.agent(e).PullRows(w, wkeys));
    minitorch::Tensor weights = minitorch::Tensor::FromData(
        d, classes, std::move(wdata), /*requires_grad=*/true);

    std::vector<uint64_t> keys;
    std::vector<int32_t> labels;
    for (const auto& [v, label] : batch) {
      keys.push_back(v);
      labels.push_back(label);
    }
    PSG_ASSIGN_OR_RETURN(std::vector<float> xdata,
                         ctx.agent(e).PullRows(src, keys));
    minitorch::Tensor x = minitorch::Tensor::FromData(
        static_cast<int64_t>(keys.size()), d, std::move(xdata));
    minitorch::Tensor logits = minitorch::Matmul(x, weights);
    minitorch::Tensor loss =
        minitorch::SoftmaxCrossEntropy(logits, labels);
    double acc = minitorch::Accuracy(logits, labels);
    uint64_t flops = keys.size() * d * classes;
    if (train) {
      loss.Backward();
      flops *= 3;
      ++step_counter;
      // Adam on the PS, per owning server.
      std::vector<std::vector<uint64_t>> by_server(
          ctx.ps().num_servers());
      for (uint64_t r = 0; r < static_cast<uint64_t>(d); ++r) {
        by_server[ctx.ps().ServerOfKey(w, r)].push_back(r);
      }
      for (int32_t s = 0; s < ctx.ps().num_servers(); ++s) {
        if (by_server[s].empty()) continue;
        std::vector<float> grads;
        for (uint64_t r : by_server[s]) {
          grads.insert(grads.end(),
                       weights.grad().begin() + r * classes,
                       weights.grad().begin() + (r + 1) * classes);
        }
        ByteBuffer args;
        args.Write<ps::MatrixId>(w.id);
        args.Write<ps::MatrixId>(wm.id);
        args.Write<ps::MatrixId>(wv.id);
        args.Write<float>(opts.learning_rate);
        args.Write<float>(0.9f);
        args.Write<float>(0.999f);
        args.Write<float>(1e-8f);
        args.Write<int32_t>(step_counter);
        args.WriteVector(by_server[s]);
        args.WriteVector(grads);
        PSG_ASSIGN_OR_RETURN(auto resp,
                             ctx.agent(e).CallFunc(s, "adam.apply", args));
        (void)resp;
      }
    }
    ctx.cluster().clock().Advance(ctx.cluster().config().executor(e),
                                  ctx.cluster().cost().FlopsTime(flops));
    return std::pair<double, double>(loss.data()[0], acc);
  };

  // Train/test split by salted hash, executor-local batches.
  std::vector<std::vector<std::pair<graph::VertexId, int32_t>>> train_set(
      ctx.num_executors()),
      test_set(ctx.num_executors());
  for (int32_t e = 0; e < ctx.num_executors(); ++e) {
    for (const auto& [v, deg] : local_vertices[e]) {
      bool train = (Hash64(v ^ opts.seed) % 1000) <
                   static_cast<uint64_t>(opts.train_fraction * 1000);
      (train ? train_set[e] : test_set[e]).push_back({v, g.labels[v]});
    }
  }

  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    double loss_sum = 0.0;
    uint64_t batches = 0;
    for (int32_t e = 0; e < ctx.num_executors(); ++e) {
      auto& mine = train_set[e];
      Rng rng(opts.seed ^ Hash64(epoch * 31337 + e));
      for (size_t i = mine.size(); i > 1; --i) {
        std::swap(mine[i - 1], mine[rng.NextBounded(i)]);
      }
      for (size_t begin = 0; begin < mine.size();
           begin += opts.batch_size) {
        size_t end = std::min(mine.size(), begin + opts.batch_size);
        std::vector<std::pair<graph::VertexId, int32_t>> batch(
            mine.begin() + begin, mine.begin() + end);
        PSG_ASSIGN_OR_RETURN(auto la, run_batch(e, batch, true));
        loss_sum += la.first;
        ++batches;
      }
    }
    ctx.sync().IterationBarrier();
    result.epochs = epoch + 1;
    result.final_train_loss =
        batches == 0 ? 0.0 : loss_sum / static_cast<double>(batches);
  }

  double correct = 0.0, total = 0.0;
  for (int32_t e = 0; e < ctx.num_executors(); ++e) {
    auto& mine = test_set[e];
    for (size_t begin = 0; begin < mine.size(); begin += opts.batch_size) {
      size_t end = std::min(mine.size(), begin + opts.batch_size);
      std::vector<std::pair<graph::VertexId, int32_t>> batch(
          mine.begin() + begin, mine.begin() + end);
      PSG_ASSIGN_OR_RETURN(auto la, run_batch(e, batch, false));
      correct += la.second * static_cast<double>(batch.size());
      total += static_cast<double>(batch.size());
    }
  }
  result.test_accuracy = total == 0.0 ? 0.0 : correct / total;

  for (const char* suffix : {".h0", ".h1", ".w", ".w.m", ".w.v"}) {
    PSG_RETURN_NOT_OK(ctx.ps().DropMatrix(job + suffix));
  }
  nbr.Unpersist();
  return result;
}

}  // namespace psgraph::core
