#include "core/graph_loader.h"

#include "graph/edge_io.h"

namespace psgraph::core {

Result<dataflow::Dataset<graph::Edge>> LoadEdges(
    PsGraphContext& ctx, const std::string& hdfs_path,
    graph::PartitionStrategy strategy, int parts_per_executor) {
  // Each executor reads its split of the file; we read once driver-side
  // (no charge) and charge every executor its proportional share, which
  // is what a real split read costs.
  PSG_ASSIGN_OR_RETURN(graph::EdgeList all,
                       graph::ReadEdgesBinary(ctx.hdfs(), hdfs_path, -1));
  PSG_ASSIGN_OR_RETURN(uint64_t file_bytes,
                       ctx.hdfs().FileSize(hdfs_path));
  const int32_t num_executors = ctx.num_executors();
  const int32_t num_parts = num_executors * parts_per_executor;
  uint64_t share = file_bytes / num_executors + 1;
  for (int32_t e = 0; e < num_executors; ++e) {
    double t = ctx.cluster().cost().DiskReadTime(share) +
               ctx.cluster().cost().NetworkTime(share);
    ctx.cluster().clock().Advance(ctx.cluster().config().executor(e), t);
  }

  std::vector<graph::EdgeList> parts =
      graph::PartitionEdges(all, num_parts, strategy);
  return dataflow::Dataset<graph::Edge>::FromPartitions(&ctx.dataflow(),
                                                        std::move(parts));
}

Result<dataflow::Dataset<graph::Edge>> StageAndLoadEdges(
    PsGraphContext& ctx, const graph::EdgeList& edges,
    const std::string& hdfs_path, graph::PartitionStrategy strategy,
    int parts_per_executor) {
  PSG_RETURN_NOT_OK(
      graph::WriteEdgesBinary(ctx.hdfs(), hdfs_path, edges, -1));
  return LoadEdges(ctx, hdfs_path, strategy, parts_per_executor);
}

dataflow::Dataset<NeighborPair> ToNeighborTables(
    const dataflow::Dataset<graph::Edge>& edges) {
  return edges
      .Map([](const graph::Edge& e) {
        return std::pair<graph::VertexId, graph::VertexId>(e.src, e.dst);
      })
      .GroupByKey();
}

dataflow::Dataset<WeightedNeighborPair> ToWeightedNeighborTables(
    const dataflow::Dataset<graph::Edge>& edges) {
  using DstW = std::pair<graph::VertexId, float>;
  return edges
      .Map([](const graph::Edge& e) {
        return std::pair<graph::VertexId, DstW>(e.src, {e.dst, e.weight});
      })
      .GroupByKey()
      .Map([](std::pair<graph::VertexId, std::vector<DstW>>& kv) {
        WeightedNeighborPair out;
        out.first = kv.first;
        out.second.first.reserve(kv.second.size());
        out.second.second.reserve(kv.second.size());
        for (const DstW& dw : kv.second) {
          out.second.first.push_back(dw.first);
          out.second.second.push_back(dw.second);
        }
        return out;
      });
}

}  // namespace psgraph::core
