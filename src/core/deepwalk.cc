#include "core/deepwalk.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/alias_table.h"
#include "common/hash.h"
#include "common/random.h"
#include "core/skipgram.h"
#include "graph/degree.h"
#include "ps/agent.h"

namespace psgraph::core {

namespace {

int g_dw_job = 0;

/// Builds the neighbor-table matrix on the PS (groupBy + push), exactly
/// like common neighbor's load phase.
Result<ps::MatrixMeta> PushAdjacency(
    PsGraphContext& ctx, const dataflow::Dataset<graph::Edge>& edges,
    const std::string& name,
    std::vector<std::vector<graph::VertexId>>* local_vertices) {
  PSG_ASSIGN_OR_RETURN(
      ps::MatrixMeta meta,
      ctx.ps().CreateMatrix(name, 0, 0, ps::StorageKind::kNeighbors,
                            ps::Layout::kRowPartitioned,
                            ps::PartitionScheme::kHash));
  auto nbr = ToNeighborTables(edges.FlatMap([](const graph::Edge& e) {
    return std::vector<graph::Edge>{e, {e.dst, e.src, 1.0f}};
  }));
  local_vertices->assign(ctx.num_executors(), {});
  for (int32_t p = 0; p < nbr.num_partitions(); ++p) {
    int32_t e = ctx.dataflow().ExecutorOf(p);
    PSG_ASSIGN_OR_RETURN(auto tables, nbr.ComputePartition(p));
    std::vector<graph::NeighborList> lists;
    lists.reserve(tables.size());
    for (NeighborPair& t : tables) {
      (*local_vertices)[e].push_back(t.first);
      graph::NeighborList nl;
      nl.vertex = t.first;
      nl.neighbors = std::move(t.second);
      lists.push_back(std::move(nl));
    }
    PSG_RETURN_NOT_OK(ctx.agent(e).PushNeighbors(meta, lists));
  }
  ctx.sync().IterationBarrier();
  return meta;
}

}  // namespace

Result<DeepWalkResult> DeepWalk(PsGraphContext& ctx,
                                const dataflow::Dataset<graph::Edge>& edges,
                                graph::VertexId num_vertices,
                                const DeepWalkOptions& opts) {
  if (num_vertices == 0) {
    PSG_ASSIGN_OR_RETURN(auto all, edges.Collect());
    num_vertices = graph::NumVerticesOf(all);
  }
  const std::string job = "dw" + std::to_string(g_dw_job++);

  // Adjacency on the PS; each executor owns the vertices of its
  // neighbor-table partitions (walk starting points).
  std::vector<std::vector<graph::VertexId>> local_vertices;
  PSG_ASSIGN_OR_RETURN(
      ps::MatrixMeta adj,
      PushAdjacency(ctx, edges, job + ".adj", &local_vertices));

  PSG_ASSIGN_OR_RETURN(
      SkipGramModel model,
      CreateSkipGramModel(ctx, job, num_vertices, opts.embedding_dim,
                          /*order1=*/false, opts.seed));

  // Noise distribution over vertex frequency in walks ~ degree.
  AliasTable noise;
  {
    PSG_ASSIGN_OR_RETURN(auto all, edges.Collect());
    std::vector<uint64_t> deg = graph::OutDegrees(all, num_vertices);
    std::vector<uint64_t> indeg = graph::InDegrees(all, num_vertices);
    std::vector<double> weights(num_vertices);
    for (graph::VertexId v = 0; v < num_vertices; ++v) {
      weights[v] =
          std::pow(static_cast<double>(deg[v] + indeg[v]), 0.75);
    }
    noise = AliasTable(weights);
  }

  DeepWalkResult result;
  result.num_vertices = num_vertices;
  result.dim = opts.embedding_dim;

  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    PSG_ASSIGN_OR_RETURN(auto recovery,
                         ctx.HandleFailures(epoch, opts.recovery));
    (void)recovery;
    double loss_sum = 0.0;
    uint64_t loss_count = 0;

    for (int32_t e = 0; e < ctx.num_executors(); ++e) {
      Rng rng(opts.seed ^ Hash64((uint64_t)epoch * 2654435761ull + e));
      const auto& starts = local_vertices[e];
      if (starts.empty()) continue;

      // --- Walk generation: advance all walks one hop per PS round ---
      const bool biased = opts.return_p != 1.0 || opts.inout_q != 1.0;
      std::vector<std::vector<graph::VertexId>> walks;
      walks.reserve(starts.size() * opts.walks_per_vertex);
      for (graph::VertexId v : starts) {
        for (int w = 0; w < opts.walks_per_vertex; ++w) {
          walks.push_back({v});
        }
      }
      // node2vec needs the previous vertex's (sorted) adjacency to bias
      // the next-hop distribution.
      std::vector<std::vector<graph::VertexId>> prev_adj(
          biased ? walks.size() : 0);
      std::vector<uint64_t> frontier;
      for (int step = 1; step < opts.walk_length; ++step) {
        frontier.clear();
        std::vector<size_t> active;
        for (size_t i = 0; i < walks.size(); ++i) {
          if (static_cast<int>(walks[i].size()) == step) {
            frontier.push_back(walks[i].back());
            active.push_back(i);
          }
        }
        if (frontier.empty()) break;
        PSG_ASSIGN_OR_RETURN(auto entries,
                             ctx.agent(e).PullNeighbors(adj, frontier));
        uint64_t ops = 0;
        for (size_t j = 0; j < active.size(); ++j) {
          const auto& nbrs = entries[j].neighbors;
          if (nbrs.empty()) continue;  // walk ends at a sink
          size_t wi = active[j];
          graph::VertexId next;
          if (!biased || walks[wi].size() < 2) {
            next = nbrs[rng.NextBounded(nbrs.size())];
          } else {
            graph::VertexId prev = walks[wi][walks[wi].size() - 2];
            const auto& padj = prev_adj[wi];
            // Cumulative sampling over the node2vec weights.
            double total = 0.0;
            std::vector<double> weights(nbrs.size());
            for (size_t c = 0; c < nbrs.size(); ++c) {
              double w;
              if (nbrs[c] == prev) {
                w = 1.0 / opts.return_p;
              } else if (std::binary_search(padj.begin(), padj.end(),
                                            nbrs[c])) {
                w = 1.0;
              } else {
                w = 1.0 / opts.inout_q;
              }
              weights[c] = w;
              total += w;
            }
            double r = rng.NextDouble() * total;
            size_t pick = 0;
            for (; pick + 1 < nbrs.size(); ++pick) {
              r -= weights[pick];
              if (r <= 0) break;
            }
            next = nbrs[pick];
            ops += nbrs.size();
          }
          if (biased) {
            prev_adj[wi].assign(nbrs.begin(), nbrs.end());
            std::sort(prev_adj[wi].begin(), prev_adj[wi].end());
          }
          walks[wi].push_back(next);
        }
        ctx.cluster().clock().Advance(
            ctx.cluster().config().executor(e),
            ctx.cluster().cost().ComputeTime(active.size() + ops));
      }
      result.total_walks += walks.size();

      // --- Skip-gram pairs within the window, trained in batches ---
      std::vector<std::pair<uint64_t, uint64_t>> pairs;
      std::vector<float> labels;
      auto flush = [&]() -> Status {
        if (pairs.empty()) return Status::OK();
        if (opts.sampled_negatives) {
          // `pairs` holds positives only on this path; the batch's
          // negatives come as one shared "ps.sample" pool.
          const int K = opts.negative_samples;
          PSG_ASSIGN_OR_RETURN(
              double loss,
              TrainSkipGramBatchSampled(ctx, e, model, pairs,
                                        opts.learning_rate, K,
                                        rng.NextU64()));
          loss_sum += loss;
          loss_count += pairs.size() * (K + 1);
          result.total_pairs += pairs.size() * (K + 1);
        } else {
          PSG_ASSIGN_OR_RETURN(
              double loss,
              TrainSkipGramBatch(ctx, e, model, pairs, labels,
                                 opts.learning_rate));
          loss_sum += loss;
          loss_count += pairs.size();
          result.total_pairs += pairs.size();
        }
        pairs.clear();
        labels.clear();
        return Status::OK();
      };
      for (const auto& walk : walks) {
        for (size_t i = 0; i < walk.size(); ++i) {
          size_t lo = i >= (size_t)opts.window ? i - opts.window : 0;
          size_t hi = std::min(walk.size(), i + opts.window + 1);
          for (size_t j = lo; j < hi; ++j) {
            if (j == i) continue;
            pairs.push_back({walk[i], walk[j]});
            labels.push_back(1.0f);
            if (!opts.sampled_negatives) {
              for (int k = 0; k < opts.negative_samples; ++k) {
                pairs.push_back({walk[i], noise.Sample(rng)});
                labels.push_back(0.0f);
              }
            }
            if (pairs.size() >= opts.batch_size) {
              PSG_RETURN_NOT_OK(flush());
            }
          }
        }
      }
      PSG_RETURN_NOT_OK(flush());
    }
    ctx.sync().IterationBarrier();
    PSG_RETURN_NOT_OK(ctx.MaybeCheckpoint(epoch));
    result.final_avg_loss =
        loss_count == 0 ? 0.0 : loss_sum / static_cast<double>(loss_count);
  }

  PSG_ASSIGN_OR_RETURN(result.embeddings,
                       PullEmbeddings(ctx, model, num_vertices));
  PSG_RETURN_NOT_OK(ctx.ps().DropMatrix(job + ".adj"));
  PSG_RETURN_NOT_OK(DropSkipGramModel(ctx, job, /*order1=*/false));
  return result;
}

}  // namespace psgraph::core
