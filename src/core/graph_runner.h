// GraphRunner (paper §III-D, Listing 1): the high-level entry point that
// loads a graph from HDFS, runs one named algorithm, and saves the model
// back to HDFS — the shape of every PSGraph job in a Spark pipeline.
//
//   GraphRunnerArgs args;
//   args.algorithm = "pagerank";
//   args.input_path = "data/edges.bin";
//   args.output_path = "out/ranks.txt";
//   auto report = RunGraphAlgorithm(ctx, args);

#ifndef PSGRAPH_CORE_GRAPH_RUNNER_H_
#define PSGRAPH_CORE_GRAPH_RUNNER_H_

#include <map>
#include <string>

#include "common/result.h"
#include "core/psgraph_context.h"

namespace psgraph::core {

struct GraphRunnerArgs {
  /// One of: pagerank, kcore, kcore_subgraph, common_neighbor,
  /// triangle_count, fast_unfolding, label_propagation, line, deepwalk.
  std::string algorithm;
  std::string input_path;   ///< HDFS path of a binary edge file
  std::string output_path;  ///< HDFS path for the result (may be empty)
  /// Free-form algorithm parameters, e.g. {"iterations","20"},
  /// {"dim","64"}, {"k","8"}, {"epochs","3"}. Unknown keys are ignored.
  std::map<std::string, std::string> params;
};

struct GraphRunnerReport {
  std::string algorithm;
  /// One-line human-readable result summary.
  std::string summary;
  double sim_seconds = 0.0;
};

/// Parses "key=value" tokens into GraphRunnerArgs (first two positional
/// tokens are algorithm and input path). For CLI front-ends.
Result<GraphRunnerArgs> ParseGraphRunnerArgs(int argc,
                                             const char* const* argv);

/// Loads, runs, saves. Fails with InvalidArgument for an unknown
/// algorithm name.
Result<GraphRunnerReport> RunGraphAlgorithm(PsGraphContext& ctx,
                                            const GraphRunnerArgs& args);

}  // namespace psgraph::core

#endif  // PSGRAPH_CORE_GRAPH_RUNNER_H_
