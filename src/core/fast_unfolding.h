// Fast unfolding (Louvain) on the parameter server (paper §IV-C).
//
// Two models live on the PS: vertex2com (the community of each vertex)
// and com2weight (Sigma_tot, the total weighted degree of each
// community). Executors hold the weighted neighbor tables, pull the two
// models for their local vertices, run the modularity-optimization step,
// and push community moves back. The community-aggregation phase
// contracts the graph with a dataflow reduce and the passes repeat until
// modularity stops improving.

#ifndef PSGRAPH_CORE_FAST_UNFOLDING_H_
#define PSGRAPH_CORE_FAST_UNFOLDING_H_

#include <cstdint>

#include "core/graph_loader.h"
#include "core/psgraph_context.h"
#include "graph/types.h"
#include "ps/master.h"

namespace psgraph::core {

struct FastUnfoldingOptions {
  int max_passes = 3;
  int opt_iterations = 5;
  double min_gain = 1e-4;
  ps::RecoveryMode recovery = ps::RecoveryMode::kPartial;
};

struct FastUnfoldingResult {
  double modularity = 0.0;
  uint64_t num_communities = 0;
  int passes = 0;
};

/// Input must be a symmetrized weighted edge list (both directions
/// present), matching the GraphX baseline's convention.
Result<FastUnfoldingResult> FastUnfolding(
    PsGraphContext& ctx, const dataflow::Dataset<graph::Edge>& edges,
    const FastUnfoldingOptions& opts = {});

}  // namespace psgraph::core

#endif  // PSGRAPH_CORE_FAST_UNFOLDING_H_
