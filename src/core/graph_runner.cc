#include "core/graph_runner.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "core/deepwalk.h"
#include "core/fast_unfolding.h"
#include "core/graph_io.h"
#include "core/graph_loader.h"
#include "core/kcore.h"
#include "core/label_propagation.h"
#include "core/line.h"
#include "core/neighbor_algos.h"
#include "core/pagerank.h"

namespace psgraph::core {

namespace {

int64_t ParamI64(const GraphRunnerArgs& args, const std::string& key,
                 int64_t def) {
  auto it = args.params.find(key);
  if (it == args.params.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double ParamF64(const GraphRunnerArgs& args, const std::string& key,
                double def) {
  auto it = args.params.find(key);
  if (it == args.params.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

std::string Fmt(const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  return buf;
}

}  // namespace

Result<GraphRunnerArgs> ParseGraphRunnerArgs(int argc,
                                             const char* const* argv) {
  GraphRunnerArgs args;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    auto eq = token.find('=');
    if (eq != std::string::npos) {
      std::string key = token.substr(0, eq);
      std::string value = token.substr(eq + 1);
      if (key == "output") {
        args.output_path = value;
      } else {
        args.params[key] = value;
      }
    } else if (positional == 0) {
      args.algorithm = token;
      ++positional;
    } else if (positional == 1) {
      args.input_path = token;
      ++positional;
    } else {
      return Status::InvalidArgument("unexpected argument: " + token);
    }
  }
  if (args.algorithm.empty() || args.input_path.empty()) {
    return Status::InvalidArgument(
        "usage: <algorithm> <input_path> [output=PATH] [key=value ...]");
  }
  return args;
}

Result<GraphRunnerReport> RunGraphAlgorithm(PsGraphContext& ctx,
                                            const GraphRunnerArgs& args) {
  GraphRunnerReport report;
  report.algorithm = args.algorithm;
  double t0 = ctx.cluster().clock().Makespan();

  PSG_ASSIGN_OR_RETURN(auto edges, LoadEdges(ctx, args.input_path));

  if (args.algorithm == "pagerank") {
    PageRankOptions opts;
    opts.max_iterations =
        static_cast<int>(ParamI64(args, "iterations", 20));
    opts.tolerance = ParamF64(args, "tolerance", 0.0);
    opts.prune_epsilon = ParamF64(args, "prune", 0.0);
    PSG_ASSIGN_OR_RETURN(auto result, PageRank(ctx, edges, 0, opts));
    if (!args.output_path.empty()) {
      PSG_RETURN_NOT_OK(SaveVertexDoubles(ctx.hdfs(), args.output_path,
                                          result.ranks));
    }
    report.summary = Fmt("pagerank: %d iterations, final delta L1 %.3e",
                         result.iterations, result.final_delta_l1);
  } else if (args.algorithm == "kcore") {
    PSG_ASSIGN_OR_RETURN(auto result, KCore(ctx, edges, 0));
    if (!args.output_path.empty()) {
      std::vector<uint64_t> coreness(result.coreness.begin(),
                                     result.coreness.end());
      PSG_RETURN_NOT_OK(
          SaveVertexLabels(ctx.hdfs(), args.output_path, coreness));
    }
    report.summary = Fmt("kcore: max coreness %u after %d iterations",
                         result.max_coreness, result.iterations);
  } else if (args.algorithm == "kcore_subgraph") {
    uint32_t k = static_cast<uint32_t>(ParamI64(args, "k", 8));
    PSG_ASSIGN_OR_RETURN(auto result, KCoreSubgraph(ctx, edges, 0, k));
    report.summary =
        Fmt("kcore_subgraph(k=%u): %llu vertices, %llu edges, %d rounds",
            k, (unsigned long long)result.core_vertices,
            (unsigned long long)result.core_edges, result.rounds);
  } else if (args.algorithm == "common_neighbor") {
    CommonNeighborOptions opts;
    opts.pair_fraction = ParamF64(args, "pair_fraction", 1.0);
    PSG_ASSIGN_OR_RETURN(auto result, CommonNeighbor(ctx, edges, opts));
    report.summary =
        Fmt("common_neighbor: %llu pairs, avg %.2f, max %llu",
            (unsigned long long)result.pairs,
            result.pairs ? (double)result.total_common / result.pairs
                         : 0.0,
            (unsigned long long)result.max_common);
  } else if (args.algorithm == "triangle_count") {
    PSG_ASSIGN_OR_RETURN(auto result, TriangleCount(ctx, edges));
    report.summary =
        Fmt("triangle_count: %llu triangles", (unsigned long long)result);
  } else if (args.algorithm == "fast_unfolding") {
    FastUnfoldingOptions opts;
    opts.max_passes = static_cast<int>(ParamI64(args, "passes", 3));
    PSG_ASSIGN_OR_RETURN(auto result, FastUnfolding(ctx, edges, opts));
    report.summary =
        Fmt("fast_unfolding: %llu communities, modularity %.4f",
            (unsigned long long)result.num_communities, result.modularity);
  } else if (args.algorithm == "label_propagation") {
    PSG_ASSIGN_OR_RETURN(auto result, LabelPropagation(ctx, edges, 0));
    if (!args.output_path.empty()) {
      PSG_RETURN_NOT_OK(
          SaveVertexLabels(ctx.hdfs(), args.output_path, result.labels));
    }
    report.summary = Fmt("label_propagation: %llu labels, %d iterations",
                         (unsigned long long)result.num_labels,
                         result.iterations);
  } else if (args.algorithm == "line") {
    LineOptions opts;
    opts.embedding_dim = static_cast<int>(ParamI64(args, "dim", 32));
    opts.epochs = static_cast<int>(ParamI64(args, "epochs", 5));
    opts.order = static_cast<int>(ParamI64(args, "order", 2));
    PSG_ASSIGN_OR_RETURN(auto result, Line(ctx, edges, 0, opts));
    if (!args.output_path.empty()) {
      PSG_RETURN_NOT_OK(SaveEmbeddings(ctx.hdfs(), args.output_path,
                                       result.embeddings,
                                       result.num_vertices, result.dim));
    }
    report.summary = Fmt("line(order=%d,dim=%d): final avg loss %.4f",
                         opts.order, result.dim, result.final_avg_loss);
  } else if (args.algorithm == "deepwalk") {
    DeepWalkOptions opts;
    opts.embedding_dim = static_cast<int>(ParamI64(args, "dim", 32));
    opts.epochs = static_cast<int>(ParamI64(args, "epochs", 1));
    opts.walk_length = static_cast<int>(ParamI64(args, "walk_length", 20));
    opts.return_p = ParamF64(args, "p", 1.0);
    opts.inout_q = ParamF64(args, "q", 1.0);
    PSG_ASSIGN_OR_RETURN(auto result, DeepWalk(ctx, edges, 0, opts));
    if (!args.output_path.empty()) {
      PSG_RETURN_NOT_OK(SaveEmbeddings(ctx.hdfs(), args.output_path,
                                       result.embeddings,
                                       result.num_vertices, result.dim));
    }
    report.summary =
        Fmt("deepwalk(dim=%d): %llu walks, %llu pairs, loss %.4f",
            result.dim, (unsigned long long)result.total_walks,
            (unsigned long long)result.total_pairs,
            result.final_avg_loss);
  } else {
    return Status::InvalidArgument("unknown algorithm: " + args.algorithm);
  }

  report.sim_seconds = ctx.cluster().clock().Makespan() - t0;
  return report;
}

}  // namespace psgraph::core
