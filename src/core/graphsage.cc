#include "core/graphsage.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"
#include "common/random.h"
#include "core/graph_loader.h"
#include "core/sage_model.h"
#include "graph/edge_io.h"
#include "minitorch/nn.h"
#include "ps/agent.h"

namespace psgraph::core {

namespace {

int g_sage_job = 0;

/// Pulls a full small matrix (all rows) into a minitorch tensor with
/// gradients enabled.
Result<minitorch::Tensor> PullWeights(ps::PsAgent& agent,
                                      const ps::MatrixMeta& meta) {
  std::vector<uint64_t> keys(meta.num_rows);
  for (uint64_t r = 0; r < meta.num_rows; ++r) keys[r] = r;
  PSG_ASSIGN_OR_RETURN(std::vector<float> rows, agent.PullRows(meta, keys));
  return minitorch::Tensor::FromData(meta.num_rows, meta.num_cols,
                                     std::move(rows),
                                     /*requires_grad=*/true);
}

/// Pushes gradients to the PS: either Adam-on-PS (psFunc, per owning
/// server) or a plain SGD delta push.
Status PushGradients(PsGraphContext& ctx, ps::PsAgent& agent,
                     const ps::MatrixMeta& w, const ps::MatrixMeta& m,
                     const ps::MatrixMeta& v, const minitorch::Tensor& t,
                     const GraphSageOptions& opts, int32_t step) {
  if (t.grad().empty()) return Status::OK();
  std::vector<uint64_t> keys(w.num_rows);
  for (uint64_t r = 0; r < w.num_rows; ++r) keys[r] = r;
  if (!opts.optimizer_on_ps) {
    std::vector<float> delta(t.grad().size());
    for (size_t i = 0; i < delta.size(); ++i) {
      delta[i] = -opts.learning_rate * t.grad()[i];
    }
    return agent.PushAdd(w, keys, delta);
  }
  // Group rows by owning server and invoke adam.apply per server.
  std::vector<std::vector<uint64_t>> by_server(ctx.ps().num_servers());
  for (uint64_t r = 0; r < w.num_rows; ++r) {
    by_server[ctx.ps().ServerOfKey(w, r)].push_back(r);
  }
  const uint32_t cols = w.num_cols;
  for (int32_t s = 0; s < ctx.ps().num_servers(); ++s) {
    if (by_server[s].empty()) continue;
    std::vector<float> grads;
    grads.reserve(by_server[s].size() * cols);
    for (uint64_t r : by_server[s]) {
      grads.insert(grads.end(), t.grad().begin() + r * cols,
                   t.grad().begin() + (r + 1) * cols);
    }
    ByteBuffer args;
    args.Write<ps::MatrixId>(w.id);
    args.Write<ps::MatrixId>(m.id);
    args.Write<ps::MatrixId>(v.id);
    args.Write<float>(opts.learning_rate);
    args.Write<float>(0.9f);
    args.Write<float>(0.999f);
    args.Write<float>(1e-8f);
    args.Write<int32_t>(step);
    args.WriteVector(by_server[s]);
    args.WriteVector(grads);
    PSG_ASSIGN_OR_RETURN(auto resp,
                         agent.CallFunc(s, "adam.apply", args));
    (void)resp;
  }
  return Status::OK();
}

struct BatchPlan {
  SageBatch batch;
  Status status;
};

}  // namespace

Result<GraphSageResult> GraphSage(PsGraphContext& ctx,
                                  const graph::LabeledGraph& g,
                                  const GraphSageOptions& opts) {
  GraphSageResult result;
  const std::string job = "sage" + std::to_string(g_sage_job++);
  const int d = g.feature_dim;
  const int h = opts.hidden_dim;
  const int classes = g.num_classes;
  const graph::VertexId n = g.num_vertices;

  double t0 = ctx.cluster().clock().Makespan();

  // ---- Preprocessing (the Table I "preprocessing" column) ----
  // Stage edges on HDFS, load, symmetrize, groupBy to neighbor tables.
  PSG_ASSIGN_OR_RETURN(
      auto edges, StageAndLoadEdges(ctx, g.edges, job + "/edges.bin"));
  auto nbr = ToNeighborTables(edges.FlatMap([](const graph::Edge& e) {
               return std::vector<graph::Edge>{e, {e.dst, e.src, 1.0f}};
             }))
                 .Cache();
  PSG_RETURN_NOT_OK(nbr.Evaluate());

  // PS models: adjacency A, features X, weights W1/W2 (+ Adam state).
  PSG_ASSIGN_OR_RETURN(
      ps::MatrixMeta adj,
      ctx.ps().CreateMatrix(job + ".adj", n, 0, ps::StorageKind::kNeighbors,
                            ps::Layout::kRowPartitioned,
                            ps::PartitionScheme::kHash));
  PSG_ASSIGN_OR_RETURN(ps::MatrixMeta feat,
                       ctx.ps().CreateMatrix(job + ".x", n, d));
  auto make_weight =
      [&](const std::string& name, uint64_t rows,
          uint32_t cols) -> Result<std::array<ps::MatrixMeta, 3>> {
    std::array<ps::MatrixMeta, 3> metas;
    PSG_ASSIGN_OR_RETURN(metas[0], ctx.ps().CreateMatrix(name, rows, cols));
    PSG_ASSIGN_OR_RETURN(metas[1],
                         ctx.ps().CreateMatrix(name + ".m", rows, cols));
    PSG_ASSIGN_OR_RETURN(metas[2],
                         ctx.ps().CreateMatrix(name + ".v", rows, cols));
    return metas;
  };
  PSG_ASSIGN_OR_RETURN(auto w1m, make_weight(job + ".w1", 2 * d, h));
  PSG_ASSIGN_OR_RETURN(auto w2m, make_weight(job + ".w2", 2 * h, classes));
  // Pool-aggregator transforms (tiny; created for both aggregators, used
  // only by max-pool).
  PSG_ASSIGN_OR_RETURN(auto wp1m, make_weight(job + ".wp1", d, d));
  PSG_ASSIGN_OR_RETURN(auto wp2m, make_weight(job + ".wp2", h, h));

  // Executors push adjacency and features for their vertices; the driver
  // pushes the initialized weights (paper Fig. 5 steps 2-3).
  std::vector<std::vector<std::pair<graph::VertexId, int32_t>>>
      local_train(ctx.num_executors()),
      local_test(ctx.num_executors());
  for (int32_t p = 0; p < nbr.num_partitions(); ++p) {
    int32_t e = ctx.dataflow().ExecutorOf(p);
    PSG_ASSIGN_OR_RETURN(auto tables, nbr.ComputePartition(p));
    std::vector<graph::NeighborList> lists;
    std::vector<uint64_t> keys;
    std::vector<float> xrows;
    lists.reserve(tables.size());
    for (NeighborPair& t : tables) {
      graph::NeighborList nl;
      nl.vertex = t.first;
      nl.neighbors = std::move(t.second);
      lists.push_back(std::move(nl));
      keys.push_back(t.first);
      const float* row = g.features.data() +
                         static_cast<size_t>(t.first) * d;
      xrows.insert(xrows.end(), row, row + d);
      // Train/test split by salted hash, so it is stable under any
      // partitioning.
      bool train =
          (Hash64(t.first ^ opts.seed) % 1000) <
          static_cast<uint64_t>(opts.train_fraction * 1000);
      auto& bucket = train ? local_train[e] : local_test[e];
      bucket.push_back({t.first, g.labels[t.first]});
    }
    PSG_RETURN_NOT_OK(ctx.agent(e).PushNeighbors(adj, lists));
    PSG_RETURN_NOT_OK(ctx.agent(e).PushAssign(feat, keys, xrows));
  }
  ps::PsAgent driver_agent(&ctx.ps(), ctx.cluster().config().driver());
  {
    Rng rng(opts.seed);
    minitorch::Tensor w1 = minitorch::Tensor::Randn(2 * d, h, rng);
    minitorch::Tensor w2 = minitorch::Tensor::Randn(2 * h, classes, rng);
    std::vector<uint64_t> k1(2 * d), k2(2 * h);
    for (size_t i = 0; i < k1.size(); ++i) k1[i] = i;
    for (size_t i = 0; i < k2.size(); ++i) k2[i] = i;
    PSG_RETURN_NOT_OK(driver_agent.PushAssign(w1m[0], k1, w1.data()));
    PSG_RETURN_NOT_OK(driver_agent.PushAssign(w2m[0], k2, w2.data()));
    if (opts.aggregator == SageAggregator::kMaxPool) {
      minitorch::Tensor wp1 = minitorch::Tensor::Randn(d, d, rng);
      minitorch::Tensor wp2 = minitorch::Tensor::Randn(h, h, rng);
      std::vector<uint64_t> kp1(d), kp2(h);
      for (size_t i = 0; i < kp1.size(); ++i) kp1[i] = i;
      for (size_t i = 0; i < kp2.size(); ++i) kp2[i] = i;
      PSG_RETURN_NOT_OK(driver_agent.PushAssign(wp1m[0], kp1, wp1.data()));
      PSG_RETURN_NOT_OK(driver_agent.PushAssign(wp2m[0], kp2, wp2.data()));
    }
  }
  ctx.sync().IterationBarrier();
  PSG_RETURN_NOT_OK(ctx.master().CheckpointAll());
  if (opts.replicate_hot_features) {
    // Classify + replicate from live access counts at every epoch
    // barrier below. Features are read-only during training, so the
    // merge protocol never carries deltas for X — replication affects
    // bytes-on-the-wire and shard load only.
    PSG_RETURN_NOT_OK(ctx.replication().Track(feat));
  }
  result.preprocess_sim_seconds = ctx.cluster().clock().Makespan() - t0;
  // Causality: training starts after the whole preprocessing pipeline.
  ctx.cluster().clock().BarrierAll();

  // ---- Training ----
  SageParams params;
  int32_t step = 0;

  // Builds a SageBatch by sampling the 2-hop neighborhood of `batch_v`
  // through the PS.
  auto build_batch = [&](int32_t e,
                         const std::vector<std::pair<graph::VertexId,
                                                     int32_t>>& batch_v,
                         Rng& rng) -> Result<SageBatch> {
    SageBatch b;
    b.batch_size = static_cast<int64_t>(batch_v.size());
    // 1-hop adjacency + samples for the batch vertices.
    std::vector<uint64_t> bkeys;
    for (const auto& [v, label] : batch_v) {
      bkeys.push_back(v);
      b.labels.push_back(label);
    }
    PSG_ASSIGN_OR_RETURN(auto badj,
                         ctx.agent(e).PullNeighbors(adj, bkeys));
    // nodes1 = batch first, then newly seen sampled neighbors.
    std::unordered_map<uint64_t, int64_t> nodes1_index;
    std::vector<uint64_t> nodes1_ids;
    for (uint64_t v : bkeys) {
      if (nodes1_index.emplace(v, (int64_t)nodes1_ids.size()).second) {
        nodes1_ids.push_back(v);
      }
    }
    std::vector<std::vector<uint64_t>> samples1(bkeys.size());
    for (size_t i = 0; i < bkeys.size(); ++i) {
      const auto& nbrs = badj[i].neighbors;
      if (nbrs.empty()) continue;
      for (int k = 0; k < opts.fanout1; ++k) {
        uint64_t u = nbrs[rng.NextBounded(nbrs.size())];
        samples1[i].push_back(u);
        if (nodes1_index.emplace(u, (int64_t)nodes1_ids.size()).second) {
          nodes1_ids.push_back(u);
        }
      }
    }
    // Adjacency for non-batch layer-1 nodes.
    std::vector<uint64_t> extra(nodes1_ids.begin() + bkeys.size(),
                                nodes1_ids.end());
    PSG_ASSIGN_OR_RETURN(auto eadj,
                         ctx.agent(e).PullNeighbors(adj, extra));
    // involved = nodes1 first, then 2-hop samples.
    std::unordered_map<uint64_t, int64_t> involved_index;
    std::vector<uint64_t> involved_ids;
    for (uint64_t v : nodes1_ids) {
      involved_index.emplace(v, (int64_t)involved_ids.size());
      involved_ids.push_back(v);
    }
    b.seg1.resize(nodes1_ids.size());
    auto sample2 = [&](size_t node1_pos,
                       const std::vector<uint64_t>& nbrs) {
      if (nbrs.empty()) return;
      for (int k = 0; k < opts.fanout2; ++k) {
        uint64_t u = nbrs[rng.NextBounded(nbrs.size())];
        auto [it, inserted] =
            involved_index.emplace(u, (int64_t)involved_ids.size());
        if (inserted) involved_ids.push_back(u);
        b.seg1[node1_pos].push_back(it->second);
      }
    };
    for (size_t i = 0; i < bkeys.size(); ++i) {
      sample2(i, badj[i].neighbors);
    }
    for (size_t i = 0; i < extra.size(); ++i) {
      sample2(bkeys.size() + i, eadj[i].neighbors);
    }
    // seg2: per batch vertex, its layer-1 samples as nodes1 positions.
    b.seg2.resize(bkeys.size());
    for (size_t i = 0; i < bkeys.size(); ++i) {
      for (uint64_t u : samples1[i]) {
        b.seg2[i].push_back(nodes1_index[u]);
      }
    }
    b.nodes1.resize(nodes1_ids.size());
    for (size_t i = 0; i < nodes1_ids.size(); ++i) {
      b.nodes1[i] = static_cast<int64_t>(i);  // prefix of involved
    }
    // Pull features for all involved vertices.
    PSG_ASSIGN_OR_RETURN(std::vector<float> xrows,
                         ctx.agent(e).PullRows(feat, involved_ids));
    b.features = minitorch::Tensor::FromData(
        static_cast<int64_t>(involved_ids.size()), d, std::move(xrows));
    return b;
  };

  auto run_batch = [&](int32_t e, const SageBatch& batch,
                       bool train) -> Result<std::pair<double, double>> {
    params.aggregator = opts.aggregator;
    PSG_ASSIGN_OR_RETURN(params.w1, PullWeights(ctx.agent(e), w1m[0]));
    PSG_ASSIGN_OR_RETURN(params.w2, PullWeights(ctx.agent(e), w2m[0]));
    if (opts.aggregator == SageAggregator::kMaxPool) {
      PSG_ASSIGN_OR_RETURN(params.w_pool1,
                           PullWeights(ctx.agent(e), wp1m[0]));
      PSG_ASSIGN_OR_RETURN(params.w_pool2,
                           PullWeights(ctx.agent(e), wp2m[0]));
    }
    minitorch::Tensor logits = SageForward(params, batch);
    minitorch::Tensor loss =
        minitorch::SoftmaxCrossEntropy(logits, batch.labels);
    double acc = minitorch::Accuracy(logits, batch.labels);
    uint64_t flops = SageForwardOps(params, batch);
    if (train) {
      loss.Backward();
      flops *= 3;
      ++step;
      PSG_RETURN_NOT_OK(PushGradients(ctx, ctx.agent(e), w1m[0], w1m[1],
                                      w1m[2], params.w1, opts, step));
      PSG_RETURN_NOT_OK(PushGradients(ctx, ctx.agent(e), w2m[0], w2m[1],
                                      w2m[2], params.w2, opts, step));
      if (opts.aggregator == SageAggregator::kMaxPool) {
        PSG_RETURN_NOT_OK(PushGradients(ctx, ctx.agent(e), wp1m[0],
                                        wp1m[1], wp1m[2], params.w_pool1,
                                        opts, step));
        PSG_RETURN_NOT_OK(PushGradients(ctx, ctx.agent(e), wp2m[0],
                                        wp2m[1], wp2m[2], params.w_pool2,
                                        opts, step));
      }
    }
    ctx.cluster().clock().Advance(ctx.cluster().config().executor(e),
                                  ctx.cluster().cost().FlopsTime(flops));
    return std::pair<double, double>(loss.data()[0], acc);
  };

  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    PSG_ASSIGN_OR_RETURN(auto recovery,
                         ctx.HandleFailures(epoch, opts.recovery));
    (void)recovery;
    double epoch_start = ctx.cluster().clock().Makespan();
    double loss_sum = 0.0;
    uint64_t batches = 0;
    for (int32_t e = 0; e < ctx.num_executors(); ++e) {
      auto& mine = local_train[e];
      Rng rng(opts.seed ^ Hash64(epoch * 7919 + e));
      // Shuffle the local training vertices each epoch.
      for (size_t i = mine.size(); i > 1; --i) {
        std::swap(mine[i - 1], mine[rng.NextBounded(i)]);
      }
      for (size_t begin = 0; begin < mine.size();
           begin += opts.batch_size) {
        size_t end = std::min(mine.size(), begin + opts.batch_size);
        std::vector<std::pair<graph::VertexId, int32_t>> bv(
            mine.begin() + begin, mine.begin() + end);
        PSG_ASSIGN_OR_RETURN(SageBatch batch, build_batch(e, bv, rng));
        PSG_ASSIGN_OR_RETURN(auto la, run_batch(e, batch, /*train=*/true));
        loss_sum += la.first;
        ++batches;
      }
    }
    ctx.sync().IterationBarrier();
    if (opts.replicate_hot_features) {
      PSG_RETURN_NOT_OK(ctx.replication().Refresh());
    }
    PSG_RETURN_NOT_OK(ctx.MaybeCheckpoint(epoch));
    result.epochs = epoch + 1;
    result.final_train_loss =
        batches == 0 ? 0.0 : loss_sum / static_cast<double>(batches);
    ctx.convergence().Record("graphsage.train_loss", epoch,
                             result.final_train_loss);
    result.epoch_sim_seconds.push_back(ctx.cluster().clock().Makespan() -
                                       epoch_start);
  }

  // ---- Evaluation on the held-out split ----
  double correct = 0.0, total = 0.0;
  for (int32_t e = 0; e < ctx.num_executors(); ++e) {
    Rng rng(opts.seed ^ 0xe4a1ull ^ e);
    auto& mine = local_test[e];
    for (size_t begin = 0; begin < mine.size(); begin += opts.batch_size) {
      size_t end = std::min(mine.size(), begin + opts.batch_size);
      std::vector<std::pair<graph::VertexId, int32_t>> bv(
          mine.begin() + begin, mine.begin() + end);
      PSG_ASSIGN_OR_RETURN(SageBatch batch, build_batch(e, bv, rng));
      PSG_ASSIGN_OR_RETURN(auto la, run_batch(e, batch, /*train=*/false));
      correct += la.second * static_cast<double>(bv.size());
      total += static_cast<double>(bv.size());
    }
  }
  result.test_accuracy = total == 0.0 ? 0.0 : correct / total;

  if (opts.replicate_hot_features) {
    PSG_RETURN_NOT_OK(ctx.replication().Untrack(feat.id));
  }
  for (const char* suffix :
       {".adj", ".x", ".w1", ".w1.m", ".w1.v", ".w2", ".w2.m", ".w2.v",
        ".wp1", ".wp1.m", ".wp1.v", ".wp2", ".wp2.m", ".wp2.v"}) {
    PSG_RETURN_NOT_OK(ctx.ps().DropMatrix(job + suffix));
  }
  nbr.Unpersist();
  return result;
}

}  // namespace psgraph::core
