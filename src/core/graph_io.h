// GraphIO (paper §III-D Listing 1): persisting algorithm outputs back to
// HDFS so the next pipeline stage can consume them — the paper's
// motivation for staying inside the Spark ecosystem is exactly this kind
// of chaining.

#ifndef PSGRAPH_CORE_GRAPH_IO_H_
#define PSGRAPH_CORE_GRAPH_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/hdfs.h"

namespace psgraph::core {

/// Writes one "vertex value" text line per vertex: "id value\n".
Status SaveVertexDoubles(storage::Hdfs& hdfs, const std::string& path,
                         const std::vector<double>& values,
                         sim::NodeId node = -1);
Status SaveVertexLabels(storage::Hdfs& hdfs, const std::string& path,
                        const std::vector<uint64_t>& labels,
                        sim::NodeId node = -1);

/// Reads back what SaveVertexDoubles wrote (dense by vertex id).
Result<std::vector<double>> LoadVertexDoubles(storage::Hdfs& hdfs,
                                              const std::string& path,
                                              sim::NodeId node = -1);

/// Row-major embedding matrix: header "num_vertices dim", then binary
/// float payload.
Status SaveEmbeddings(storage::Hdfs& hdfs, const std::string& path,
                      const std::vector<float>& embeddings,
                      uint64_t num_vertices, int dim,
                      sim::NodeId node = -1);

struct LoadedEmbeddings {
  std::vector<float> values;
  uint64_t num_vertices = 0;
  int dim = 0;
};
Result<LoadedEmbeddings> LoadEmbeddings(storage::Hdfs& hdfs,
                                        const std::string& path,
                                        sim::NodeId node = -1);

}  // namespace psgraph::core

#endif  // PSGRAPH_CORE_GRAPH_IO_H_
