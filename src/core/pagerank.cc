#include "core/pagerank.h"

#include <cmath>
#include <unordered_map>

#include "common/logging.h"
#include "graph/degree.h"
#include "ps/agent.h"

namespace psgraph::core {

namespace {

/// Unique matrix-name counter so one context can run several jobs.
int g_pagerank_job = 0;

}  // namespace

Result<PageRankResult> PageRank(PsGraphContext& ctx,
                                const dataflow::Dataset<graph::Edge>& edges,
                                graph::VertexId num_vertices,
                                const PageRankOptions& opts) {
  // The ungrouped (edge-partitioned) path needs global out-degrees,
  // broadcast to every executor, because a source's edges span
  // partitions.
  std::vector<uint64_t> outdeg;
  if (num_vertices == 0 || !opts.group_to_neighbor_tables) {
    PSG_ASSIGN_OR_RETURN(auto all, edges.Collect());
    if (num_vertices == 0) num_vertices = graph::NumVerticesOf(all);
    if (!opts.group_to_neighbor_tables) {
      outdeg = graph::OutDegrees(all, num_vertices);
      // Broadcast cost: |V| counters to every executor.
      for (int32_t e = 0; e < ctx.num_executors(); ++e) {
        ctx.cluster().clock().Advance(
            ctx.cluster().config().executor(e),
            ctx.cluster().cost().NetworkTime(num_vertices * 8));
      }
    }
  }
  if (num_vertices == 0) return Status::InvalidArgument("empty graph");

  // Step 1 (paper): groupBy transforms edge partitioning to vertex
  // partitioning; cache the neighbor-table RDD on the executors. The
  // ablation path skips the shuffle and groups *within* each raw edge
  // partition, so a source touched by many partitions is pulled by each
  // of them.
  auto nbr =
      (opts.group_to_neighbor_tables
           ? ToNeighborTables(edges)
           : edges.MapPartitionsWithIndex(
                 [](int32_t, std::vector<graph::Edge>&& part)
                     -> Result<std::vector<NeighborPair>> {
                   std::unordered_map<graph::VertexId,
                                      std::vector<graph::VertexId>>
                       local;
                   for (const graph::Edge& e : part) {
                     local[e.src].push_back(e.dst);
                   }
                   std::vector<NeighborPair> out;
                   out.reserve(local.size());
                   for (auto& [v, ds] : local) {
                     out.push_back({v, std::move(ds)});
                   }
                   return out;
                 }))
          .Cache();
  PSG_RETURN_NOT_OK(nbr.Evaluate());

  // PS state: ranks and rank increments.
  const std::string job = "pagerank" + std::to_string(g_pagerank_job++);
  PSG_ASSIGN_OR_RETURN(
      ps::MatrixMeta ranks,
      ctx.ps().CreateMatrix(job + ".ranks", num_vertices, 1));
  PSG_ASSIGN_OR_RETURN(
      ps::MatrixMeta deltas,
      ctx.ps().CreateMatrix(job + ".deltas", num_vertices, 1));

  // Seed: delta_i = reset mass for the whole id space, applied on the
  // servers (no network transfer of |V| floats).
  ps::PsAgent driver_agent(&ctx.ps(), ctx.cluster().config().driver());
  {
    ByteBuffer args;
    args.Write<ps::MatrixId>(deltas.id);
    args.Write<float>(static_cast<float>(opts.reset_prob));
    PSG_ASSIGN_OR_RETURN(auto resp,
                         driver_agent.CallFuncAll("init.fill", args));
    (void)resp;
  }
  // Checkpoint the seeded state so a consistent rollback before the first
  // periodic checkpoint lands on a well-defined model.
  PSG_RETURN_NOT_OK(ctx.master().CheckpointAll());

  PageRankResult result;
  const int32_t E = ctx.num_executors();
  const double damp = 1.0 - opts.reset_prob;

  // On a consistent PS recovery the model rolls back to the last
  // checkpoint, so the iteration counter must roll back with it and the
  // lost iterations are redone (paper SIII-B).
  int last_checkpoint_iter = -1;
  int iter = 0;
  while (iter < opts.max_iterations) {
    PSG_ASSIGN_OR_RETURN(auto recovery,
                         ctx.HandleFailures(iter, opts.recovery));
    if (recovery.servers_restarted > 0 &&
        opts.recovery == ps::RecoveryMode::kConsistent) {
      iter = last_checkpoint_iter + 1;
      // The model rolled back, so the telemetry rolls back with it: the
      // redone iterations re-record their points. The journal keeps the
      // rollback target (value = iter) so tooling can cross-check the
      // rewound convergence series against the recovery timeline.
      ctx.convergence().Rewind("pagerank.delta_l1", iter);
      ctx.convergence().Rewind("pagerank.active_updates", iter);
      ctx.events().Record(sim::JournalEventType::kRollback, /*node=*/-1,
                          ctx.cluster().clock().MakespanTicks(), iter);
      PSG_LOG(Info) << "pagerank: rolled back to iteration " << iter
                    << " after PS recovery";
    }

    // Phase 1: every executor pulls the deltas of its local sources and
    // computes contributions to destinations. Executors run concurrently
    // (RunPartitioned pins partition p to executor p % E, so updates[e]
    // and executor e's clock are only touched by e's task).
    std::vector<std::unordered_map<graph::VertexId, float>> updates(E);
    PSG_RETURN_NOT_OK(dataflow::RunPartitioned(
        &ctx.dataflow(), nbr.num_partitions(), [&](int32_t p) -> Status {
          int32_t e = ctx.dataflow().ExecutorOf(p);
          PSG_ASSIGN_OR_RETURN(auto tables, nbr.ComputePartition(p));
          std::vector<uint64_t> keys;
          keys.reserve(tables.size());
          for (const NeighborPair& t : tables) keys.push_back(t.first);
          PSG_ASSIGN_OR_RETURN(std::vector<float> ds,
                               ctx.agent(e).PullRows(deltas, keys));
          uint64_t edges_processed = 0;
          auto& local = updates[e];
          for (size_t i = 0; i < tables.size(); ++i) {
            double d = ds[i];
            if (std::fabs(d) <= opts.prune_epsilon) continue;
            const auto& dsts = tables[i].second;
            if (dsts.empty()) continue;
            double degree =
                opts.group_to_neighbor_tables
                    ? static_cast<double>(dsts.size())
                    : static_cast<double>(outdeg[tables[i].first]);
            float contrib = static_cast<float>(damp * d / degree);
            for (graph::VertexId dst : dsts) local[dst] += contrib;
            edges_processed += dsts.size();
          }
          ctx.cluster().clock().Advance(
              ctx.cluster().config().executor(e),
              ctx.cluster().cost().ComputeTime(edges_processed));
          return Status::OK();
        }));

    // Phase 2: PS adds deltas to ranks and resets deltas (psFunc); the
    // returned L1 norm doubles as the convergence metric.
    ByteBuffer args;
    args.Write<ps::MatrixId>(deltas.id);
    args.Write<ps::MatrixId>(ranks.id);
    PSG_ASSIGN_OR_RETURN(
        double l1, driver_agent.CallFuncSum("pagerank.advance", args));
    result.final_delta_l1 = l1;

    // Per-iteration telemetry: residual mass and how many destinations
    // received a contribution this sweep (the delta-active set).
    uint64_t active = 0;
    for (const auto& u : updates) active += u.size();
    ctx.convergence().Record("pagerank.delta_l1", iter, l1);
    ctx.convergence().Record("pagerank.active_updates", iter,
                             static_cast<double>(active));

    // Phase 3: push the new contributions into the delta vector; one
    // concurrent task per executor (index == executor id).
    PSG_RETURN_NOT_OK(dataflow::RunPartitioned(
        &ctx.dataflow(), E, [&](int32_t e) -> Status {
          if (updates[e].empty()) return Status::OK();
          std::vector<uint64_t> keys;
          std::vector<float> values;
          keys.reserve(updates[e].size());
          values.reserve(updates[e].size());
          for (const auto& [dst, u] : updates[e]) {
            keys.push_back(dst);
            values.push_back(u);
          }
          return ctx.agent(e).PushAdd(deltas, keys, values);
        }));

    ctx.sync().IterationBarrier();
    if (ctx.options().checkpoint_interval > 0 && iter > 0 &&
        iter % ctx.options().checkpoint_interval == 0) {
      PSG_RETURN_NOT_OK(ctx.master().CheckpointAll());
      last_checkpoint_iter = iter;
    }
    result.iterations = iter + 1;

    if (opts.tolerance > 0.0 && iter > 0 &&
        l1 < opts.tolerance * static_cast<double>(num_vertices)) {
      break;
    }
    ++iter;
  }

  // Fold the last pushed deltas into the ranks.
  {
    ByteBuffer args;
    args.Write<ps::MatrixId>(deltas.id);
    args.Write<ps::MatrixId>(ranks.id);
    PSG_ASSIGN_OR_RETURN(
        double l1, driver_agent.CallFuncSum("pagerank.advance", args));
    result.final_delta_l1 = l1;
  }

  // Read back the rank vector in batches.
  result.ranks.resize(num_vertices, 0.0);
  const uint64_t kBatch = 1 << 16;
  for (uint64_t begin = 0; begin < num_vertices; begin += kBatch) {
    uint64_t end = std::min<uint64_t>(num_vertices, begin + kBatch);
    std::vector<uint64_t> keys(end - begin);
    for (uint64_t k = begin; k < end; ++k) keys[k - begin] = k;
    PSG_ASSIGN_OR_RETURN(std::vector<float> vals,
                         driver_agent.PullRows(ranks, keys));
    for (uint64_t k = begin; k < end; ++k) {
      result.ranks[k] = vals[k - begin];
    }
  }

  PSG_RETURN_NOT_OK(ctx.ps().DropMatrix(job + ".ranks"));
  PSG_RETURN_NOT_OK(ctx.ps().DropMatrix(job + ".deltas"));
  nbr.Unpersist();
  return result;
}

}  // namespace psgraph::core
