// SGC — Simple Graph Convolution (Wu et al. 2019) on the parameter
// server, as a second GNN family beside GraphSage (the paper's §II-B
// taxonomy lists convolutional GNNs; SGC is the linearized GCN).
//
// Two phases, both PS-centric:
//  1. Feature propagation: the feature matrix H (|V| x d) lives on the
//     PS; K times, every executor pulls the rows of its local vertices'
//     neighbors, computes the degree-normalized average
//     H'_v = sum_u H_u / sqrt((deg_v+1)(deg_u+1)) (+ self loop), and
//     pushes the new rows. This is exactly the PageRank communication
//     pattern applied to d-dimensional rows.
//  2. A linear softmax classifier on the propagated features, trained
//     with mini-batch gradient descent; the weight matrix lives on the
//     PS with Adam applied server-side (psFunc), like GraphSage.

#ifndef PSGRAPH_CORE_SGC_H_
#define PSGRAPH_CORE_SGC_H_

#include <cstdint>

#include "core/psgraph_context.h"
#include "graph/generators.h"
#include "ps/master.h"

namespace psgraph::core {

struct SgcOptions {
  int propagation_steps = 2;  ///< K
  int epochs = 5;
  int batch_size = 128;
  float learning_rate = 0.05f;
  double train_fraction = 0.7;
  uint64_t seed = 7;
  ps::RecoveryMode recovery = ps::RecoveryMode::kPartial;
};

struct SgcResult {
  int epochs = 0;
  double final_train_loss = 0.0;
  double test_accuracy = 0.0;
  double propagation_sim_seconds = 0.0;
};

/// Trains supervised node classification on `g` (features + labels).
Result<SgcResult> Sgc(PsGraphContext& ctx, const graph::LabeledGraph& g,
                      const SgcOptions& opts = {});

}  // namespace psgraph::core

#endif  // PSGRAPH_CORE_SGC_H_
