// Delta-optimized PageRank on the parameter server (paper §IV-A).
//
// The PS stores two vectors sized to the maximal vertex index: ranks and
// rank increments (deltas). Per iteration every executor pulls the deltas
// of its local source vertices, computes the contributions to destination
// vertices, the PS folds deltas into ranks and resets them (one psFunc),
// and the executors push the new contributions. Transferring increments
// instead of full ranks exploits the sparsity of rank changes: entries
// below `prune_epsilon` are skipped.

#ifndef PSGRAPH_CORE_PAGERANK_H_
#define PSGRAPH_CORE_PAGERANK_H_

#include <cstdint>
#include <vector>

#include "core/graph_loader.h"
#include "core/psgraph_context.h"
#include "graph/types.h"
#include "ps/master.h"

namespace psgraph::core {

struct PageRankOptions {
  int max_iterations = 20;
  double reset_prob = 0.15;
  /// Stop when the L1 norm of applied deltas drops below
  /// tolerance * num_vertices (0 disables; fixed iteration count).
  double tolerance = 0.0;
  /// Deltas with |d| below this are not propagated (the paper's
  /// increment-sparsity optimization). 0 propagates everything.
  double prune_epsilon = 0.0;
  /// PageRank needs model consistency across partitions (§III-B).
  ps::RecoveryMode recovery = ps::RecoveryMode::kConsistent;
  /// true (paper §IV-A): run groupBy first so every source vertex lives
  /// on exactly one executor. false: operate on the raw edge partitions
  /// — sources replicate across executors and delta pulls multiply by
  /// the replication factor (the Fig. 2 edge-cut-vs-vertex-cut ablation).
  bool group_to_neighbor_tables = true;
};

struct PageRankResult {
  /// Dense rank vector indexed by vertex id (ids absent from the graph
  /// hold the bare reset mass).
  std::vector<double> ranks;
  int iterations = 0;
  double final_delta_l1 = 0.0;
};

/// Runs PageRank over `edges`. `num_vertices` is the vertex-id space
/// (max id + 1); pass 0 to infer it with one extra pass.
Result<PageRankResult> PageRank(PsGraphContext& ctx,
                                const dataflow::Dataset<graph::Edge>& edges,
                                graph::VertexId num_vertices,
                                const PageRankOptions& opts = {});

}  // namespace psgraph::core

#endif  // PSGRAPH_CORE_PAGERANK_H_
