// GraphSage on PSGraph (paper §IV-E, Fig. 5).
//
// The PS holds three models: the vertex features X and the neighbor
// table A (partitioned by vertex index) and the layer weights W
// (row-partitioned, with Adam state as companion matrices updated by the
// "adam.apply" psFunc). Every training step an executor pulls the current
// weights, samples 2-hop neighborhoods of a mini-batch, pulls the needed
// features, runs forward/backward in the embedded C++ tensor runtime
// (minitorch, standing in for PyTorch), and pushes the gradients to the
// PS where the optimizer applies them.

#ifndef PSGRAPH_CORE_GRAPHSAGE_H_
#define PSGRAPH_CORE_GRAPHSAGE_H_

#include <cstdint>
#include <vector>

#include "core/psgraph_context.h"
#include "core/sage_model.h"
#include "graph/generators.h"
#include "ps/master.h"

namespace psgraph::core {

struct GraphSageOptions {
  int hidden_dim = 64;
  /// Mean (default) or max-pooling neighborhood aggregation.
  SageAggregator aggregator = SageAggregator::kMean;
  int fanout1 = 10;  ///< sampled neighbors for the output layer
  int fanout2 = 5;   ///< sampled neighbors for the hidden layer
  int epochs = 5;
  int batch_size = 64;
  float learning_rate = 0.01f;
  double train_fraction = 0.7;
  uint64_t seed = 7;
  /// Apply Adam on the servers via psFunc (paper: "we implement more
  /// advanced gradient descent optimizers on PS, such as AdaGrad and
  /// Adam"). false = plain SGD pushed as deltas.
  bool optimizer_on_ps = true;
  /// Skew-aware feature serving: track the feature matrix X in the
  /// replication manager so frequently-sampled vertices' features are
  /// served from executor-local replicas (ps/replication.h). X is
  /// read-only during training, so replication only changes costs, never
  /// results.
  bool replicate_hot_features = false;
  ps::RecoveryMode recovery = ps::RecoveryMode::kPartial;
};

struct GraphSageResult {
  int epochs = 0;
  double final_train_loss = 0.0;
  double test_accuracy = 0.0;
  /// Simulated cluster seconds spent loading + pushing features,
  /// adjacency and initial weights (the Table I "preprocessing" column).
  double preprocess_sim_seconds = 0.0;
  /// Simulated seconds per training epoch.
  std::vector<double> epoch_sim_seconds;

  double AvgEpochSimSeconds() const {
    if (epoch_sim_seconds.empty()) return 0.0;
    double s = 0.0;
    for (double v : epoch_sim_seconds) s += v;
    return s / static_cast<double>(epoch_sim_seconds.size());
  }
};

/// Trains supervised node classification on `g` (features + labels).
Result<GraphSageResult> GraphSage(PsGraphContext& ctx,
                                  const graph::LabeledGraph& g,
                                  const GraphSageOptions& opts = {});

}  // namespace psgraph::core

#endif  // PSGRAPH_CORE_GRAPHSAGE_H_
