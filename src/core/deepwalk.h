// DeepWalk vertex embeddings (Perozzi et al., cited by the paper §II-B
// as the canonical vertex-embedding algorithm PSGraph-style systems
// train).
//
// Random walks are generated *through the parameter server*: the neighbor
// tables live on the PS (like common neighbor, §IV-B) and each executor
// advances a frontier of walks by pulling the adjacency of the current
// positions in batches. Skip-gram training then reuses LINE's
// column-partitioned embedding machinery (server-side dot products and
// rank-1 updates).

#ifndef PSGRAPH_CORE_DEEPWALK_H_
#define PSGRAPH_CORE_DEEPWALK_H_

#include <cstdint>
#include <vector>

#include "core/graph_loader.h"
#include "core/psgraph_context.h"
#include "graph/types.h"
#include "ps/master.h"

namespace psgraph::core {

struct DeepWalkOptions {
  int embedding_dim = 32;
  int walk_length = 20;
  int walks_per_vertex = 2;
  int window = 4;  ///< skip-gram context window
  int negative_samples = 5;
  float learning_rate = 0.025f;
  int epochs = 1;  ///< passes of (walk generation + training)
  uint64_t batch_size = 4096;  ///< skip-gram pairs per training step
  uint64_t seed = 99;
  /// node2vec bias parameters (Grover & Leskovec, cited in paper §II-B
  /// [12]): return parameter p and in-out parameter q. Candidates that
  /// return to the previous vertex weigh 1/p, candidates adjacent to it
  /// weigh 1, others 1/q. (1, 1) reduces to unbiased DeepWalk.
  double return_p = 1.0;
  double inout_q = 1.0;
  /// Skew-aware negatives: one shared pool of `negative_samples` context
  /// rows per training batch over "ps.sample" instead of per-pair alias
  /// draws pulled at full cost (see core/skipgram.h).
  bool sampled_negatives = false;
  ps::RecoveryMode recovery = ps::RecoveryMode::kPartial;
};

struct DeepWalkResult {
  std::vector<float> embeddings;  ///< row-major [num_vertices x dim]
  graph::VertexId num_vertices = 0;
  int dim = 0;
  uint64_t total_walks = 0;
  uint64_t total_pairs = 0;
  double final_avg_loss = 0.0;
};

/// Treats the input as undirected.
Result<DeepWalkResult> DeepWalk(PsGraphContext& ctx,
                                const dataflow::Dataset<graph::Edge>& edges,
                                graph::VertexId num_vertices,
                                const DeepWalkOptions& opts = {});

}  // namespace psgraph::core

#endif  // PSGRAPH_CORE_DEEPWALK_H_
