// K-core (coreness decomposition) on the parameter server ("the
// implementation of K-core is similar to PageRank", paper footnote 2):
// the per-vertex core estimates live in a PS vector; every iteration each
// executor pulls the estimates of its local vertices' neighbors, refines
// with the H-index operator, and pushes the new estimates back.

#ifndef PSGRAPH_CORE_KCORE_H_
#define PSGRAPH_CORE_KCORE_H_

#include <cstdint>
#include <vector>

#include "core/graph_loader.h"
#include "core/psgraph_context.h"
#include "graph/types.h"
#include "ps/master.h"

namespace psgraph::core {

struct KCoreOptions {
  int max_iterations = 50;
  ps::RecoveryMode recovery = ps::RecoveryMode::kConsistent;
};

struct KCoreResult {
  /// Core number per vertex id (0 for ids absent from the graph).
  std::vector<uint32_t> coreness;
  uint32_t max_coreness = 0;
  int iterations = 0;
};

/// Treats the input as undirected (both endpoints of every record are
/// adjacent).
Result<KCoreResult> KCore(PsGraphContext& ctx,
                          const dataflow::Dataset<graph::Edge>& edges,
                          graph::VertexId num_vertices,
                          const KCoreOptions& opts = {});

struct KCoreSubgraphResult {
  uint64_t core_vertices = 0;
  uint64_t core_edges = 0;
  int rounds = 0;
};

/// The k-core subgraph by iterative peeling with the degree vector on
/// the PS ("the implementation of K-core is similar to PageRank": each
/// round the executors pull their local vertices' degrees, remove those
/// below k, and push degree decrements for the removed vertices'
/// neighbors). Memory stays flat — no per-round RDD generations.
Result<KCoreSubgraphResult> KCoreSubgraph(
    PsGraphContext& ctx, const dataflow::Dataset<graph::Edge>& edges,
    graph::VertexId num_vertices, uint32_t k, int max_rounds = 50,
    ps::RecoveryMode recovery = ps::RecoveryMode::kConsistent);

}  // namespace psgraph::core

#endif  // PSGRAPH_CORE_KCORE_H_
