#include "core/psgraph_context.h"

#include <algorithm>

#include "common/logging.h"

namespace psgraph::core {

Result<std::unique_ptr<PsGraphContext>> PsGraphContext::Create(
    Options options) {
  std::unique_ptr<PsGraphContext> ctx(new PsGraphContext(options));
  ctx->cluster_ = std::make_unique<sim::SimCluster>(options.cluster);
  // Route every component's counters/spans into this context's own sinks
  // (see metrics()/tracer()); tracing stays opt-in via PSGRAPH_TRACE.
  ctx->tracer_.set_enabled(Tracer::EnabledByEnv());
  ctx->cluster_->set_metrics(&ctx->metrics_);
  ctx->cluster_->set_tracer(&ctx->tracer_);
  ctx->cluster_->set_skew(&ctx->skew_);
  ctx->cluster_->set_convergence(&ctx->convergence_);
  ctx->cluster_->set_rpc_telemetry(&ctx->rpc_telemetry_);
  ctx->cluster_->set_events(&ctx->events_);
  // Continuous telemetry: arm the sampler from the env knobs, register
  // the cluster-level sources that live outside the Metrics registry
  // (aggregated, not per-node — a 121-node cluster would bloat every
  // report), and evaluate the watchdog at every scrape boundary.
  {
    MetricsSampler::Options so;
    so.metrics = &ctx->metrics_;
    so.rpc = &ctx->rpc_telemetry_;
    so.interval_ticks = MetricsSampler::IntervalTicksFromEnv();
    so.capacity = MetricsSampler::CapacityFromEnv();
    ctx->sampler_.Configure(so);
  }
  sim::SimCluster* cl = ctx->cluster_.get();
  ctx->sampler_.AddSource("mem.total_usage_bytes", [cl] {
    double total = 0.0;
    for (sim::NodeId n = 0; n < cl->config().num_nodes(); ++n) {
      total += static_cast<double>(cl->memory().Usage(n));
    }
    return total;
  });
  ctx->sampler_.AddSource("mem.max_peak_bytes", [cl] {
    return static_cast<double>(cl->memory().MaxPeak());
  });
  ctx->sampler_.AddSource("mem.max_usage_frac", [cl] {
    double frac = 0.0;
    for (sim::NodeId n = 0; n < cl->config().num_nodes(); ++n) {
      const uint64_t budget = cl->memory().Budget(n);
      if (budget == 0) continue;
      frac = std::max(frac, static_cast<double>(cl->memory().Usage(n)) /
                                static_cast<double>(budget));
    }
    return frac;
  });
  ctx->watchdog_ = sim::Watchdog(&ctx->sampler_.store(), &ctx->events_);
  ctx->sampler_.set_scrape_callback(
      [wd = &ctx->watchdog_](int64_t ticks) { wd->Evaluate(ticks); });
  // Default SLO rules — one of each form. The recovery rule watches the
  // counter HandleFailures bumps (kill and repair complete within one
  // HandleFailures call, so an RPC-error rule would never see the
  // outage); the burn-rate rule trips on a cold or freshly-swapped
  // serving cache and clears once it warms past a 50% windowed miss
  // rate (10x a 5% miss budget).
  {
    sim::WatchdogRule r;
    r.name = "recovery_restarts";
    r.form = sim::WatchdogRuleForm::kDelta;
    r.series = "counter.recovery.nodes_restarted";
    r.threshold = 0.0;
    r.window = 4;
    ctx->watchdog_.AddRule(r);
  }
  {
    sim::WatchdogRule r;
    r.name = "serving_cache_miss_burn";
    r.form = sim::WatchdogRuleForm::kBurnRate;
    r.bad_series = "counter.serving.cache_misses";
    r.total_series = "counter.serving.cache_probes";
    r.window = 8;
    r.error_budget = 0.05;
    r.burn_threshold = 10.0;
    ctx->watchdog_.AddRule(r);
  }
  {
    sim::WatchdogRule r;
    r.name = "executor_mem_pressure";
    r.form = sim::WatchdogRuleForm::kThreshold;
    r.series = "mem.max_usage_frac";
    r.threshold = 0.9;
    ctx->watchdog_.AddRule(r);
  }
  ctx->cluster_->set_sampler(&ctx->sampler_);
  ctx->cluster_->set_watchdog(&ctx->watchdog_);
  ctx->hdfs_ = std::make_unique<storage::Hdfs>(ctx->cluster_.get());
  ctx->fabric_ = std::make_unique<net::RpcFabric>(ctx->cluster_.get());
  ctx->dataflow_ =
      std::make_unique<dataflow::DataflowContext>(ctx->cluster_.get());
  ctx->ps_ = std::make_unique<ps::PsContext>(
      ctx->cluster_.get(), ctx->fabric_.get(), ctx->hdfs_.get());
  PSG_RETURN_NOT_OK(ctx->ps_->Start());
  ctx->master_ = std::make_unique<ps::PsMaster>(
      ctx->ps_.get(), options.checkpoint_prefix);
  ctx->sync_ = std::make_unique<ps::SyncController>(
      ctx->cluster_.get(), options.sync, options.ssp_staleness);
  for (int32_t e = 0; e < options.cluster.num_executors; ++e) {
    ctx->agents_.push_back(std::make_unique<ps::PsAgent>(
        ctx->ps_.get(), options.cluster.executor(e)));
  }
  return ctx;
}

ps::ReplicationManager& PsGraphContext::replication(
    ps::ReplicationOptions options) {
  if (replication_ == nullptr) {
    std::vector<ps::PsAgent*> agents;
    agents.reserve(agents_.size());
    for (auto& agent : agents_) agents.push_back(agent.get());
    replication_ = std::make_unique<ps::ReplicationManager>(
        ps_.get(), std::move(agents), options);
  }
  return *replication_;
}

Result<PsGraphContext::RecoveryReport> PsGraphContext::HandleFailures(
    int64_t iteration, ps::RecoveryMode mode) {
  events_.set_iteration(iteration);
  failures_.Tick(*cluster_, iteration);
  // Bracket the whole repair (server restore + executor revival) as one
  // recovery episode in the journal; end - begin is the run's
  // time-to-recovery at this iteration.
  int64_t dead_nodes = 0;
  for (sim::NodeId n = 0; n < cluster_->config().num_nodes(); ++n) {
    if (!cluster_->IsAlive(n)) ++dead_nodes;
  }
  if (dead_nodes > 0) {
    events_.Record(sim::JournalEventType::kRecoveryBegin, /*node=*/-1,
                   cluster_->clock().MakespanTicks(), dead_nodes);
  }
  RecoveryReport report;
  // Server failures: master detects and repairs (checkpoint restore).
  PSG_ASSIGN_OR_RETURN(report.servers_restarted,
                       master_->CheckAndRecover(mode));
  // Executor failures: the resource manager restarts the container; its
  // cached RDD partitions become stale (lineage recomputes them when next
  // accessed). The synchronization controller blocks peers meanwhile —
  // modeled by the restart delay folded into the next BSP barrier.
  for (int32_t e = 0; e < num_executors(); ++e) {
    sim::NodeId node = cluster_->config().executor(e);
    if (!cluster_->IsAlive(node)) {
      cluster_->ReviveNode(node);
      dataflow_->BumpExecutorEpoch(e);
      report.executors_restarted.push_back(e);
      PSG_LOG(Info) << "executor " << e
                    << " restarted; lineage will reload its partitions";
    }
  }
  if (dead_nodes > 0) {
    events_.Record(sim::JournalEventType::kRecoveryEnd, /*node=*/-1,
                   cluster_->clock().MakespanTicks(), report.total());
  }
  // Feed the watchdog's recovery rule (delta over this counter) and
  // scrape up to the post-repair clock — failure handling is a serial
  // orchestration point, so this poll is deterministic.
  if (report.total() > 0) {
    metrics_.Add("recovery.nodes_restarted",
                 static_cast<uint64_t>(report.total()));
  }
  sampler_.Poll(cluster_->clock().MakespanTicks());
  return report;
}

Status PsGraphContext::MaybeCheckpoint(int64_t iteration) {
  if (options_.checkpoint_interval <= 0) return Status::OK();
  if (iteration == 0 ||
      iteration % options_.checkpoint_interval != 0) {
    return Status::OK();
  }
  events_.set_iteration(iteration);
  return master_->CheckpointAll();
}

}  // namespace psgraph::core
