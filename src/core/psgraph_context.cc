#include "core/psgraph_context.h"

#include "common/logging.h"

namespace psgraph::core {

Result<std::unique_ptr<PsGraphContext>> PsGraphContext::Create(
    Options options) {
  std::unique_ptr<PsGraphContext> ctx(new PsGraphContext(options));
  ctx->cluster_ = std::make_unique<sim::SimCluster>(options.cluster);
  // Route every component's counters/spans into this context's own sinks
  // (see metrics()/tracer()); tracing stays opt-in via PSGRAPH_TRACE.
  ctx->tracer_.set_enabled(Tracer::EnabledByEnv());
  ctx->cluster_->set_metrics(&ctx->metrics_);
  ctx->cluster_->set_tracer(&ctx->tracer_);
  ctx->cluster_->set_skew(&ctx->skew_);
  ctx->cluster_->set_convergence(&ctx->convergence_);
  ctx->cluster_->set_rpc_telemetry(&ctx->rpc_telemetry_);
  ctx->cluster_->set_events(&ctx->events_);
  ctx->hdfs_ = std::make_unique<storage::Hdfs>(ctx->cluster_.get());
  ctx->fabric_ = std::make_unique<net::RpcFabric>(ctx->cluster_.get());
  ctx->dataflow_ =
      std::make_unique<dataflow::DataflowContext>(ctx->cluster_.get());
  ctx->ps_ = std::make_unique<ps::PsContext>(
      ctx->cluster_.get(), ctx->fabric_.get(), ctx->hdfs_.get());
  PSG_RETURN_NOT_OK(ctx->ps_->Start());
  ctx->master_ = std::make_unique<ps::PsMaster>(
      ctx->ps_.get(), options.checkpoint_prefix);
  ctx->sync_ = std::make_unique<ps::SyncController>(
      ctx->cluster_.get(), options.sync, options.ssp_staleness);
  for (int32_t e = 0; e < options.cluster.num_executors; ++e) {
    ctx->agents_.push_back(std::make_unique<ps::PsAgent>(
        ctx->ps_.get(), options.cluster.executor(e)));
  }
  return ctx;
}

ps::ReplicationManager& PsGraphContext::replication(
    ps::ReplicationOptions options) {
  if (replication_ == nullptr) {
    std::vector<ps::PsAgent*> agents;
    agents.reserve(agents_.size());
    for (auto& agent : agents_) agents.push_back(agent.get());
    replication_ = std::make_unique<ps::ReplicationManager>(
        ps_.get(), std::move(agents), options);
  }
  return *replication_;
}

Result<PsGraphContext::RecoveryReport> PsGraphContext::HandleFailures(
    int64_t iteration, ps::RecoveryMode mode) {
  events_.set_iteration(iteration);
  failures_.Tick(*cluster_, iteration);
  // Bracket the whole repair (server restore + executor revival) as one
  // recovery episode in the journal; end - begin is the run's
  // time-to-recovery at this iteration.
  int64_t dead_nodes = 0;
  for (sim::NodeId n = 0; n < cluster_->config().num_nodes(); ++n) {
    if (!cluster_->IsAlive(n)) ++dead_nodes;
  }
  if (dead_nodes > 0) {
    events_.Record(sim::JournalEventType::kRecoveryBegin, /*node=*/-1,
                   cluster_->clock().MakespanTicks(), dead_nodes);
  }
  RecoveryReport report;
  // Server failures: master detects and repairs (checkpoint restore).
  PSG_ASSIGN_OR_RETURN(report.servers_restarted,
                       master_->CheckAndRecover(mode));
  // Executor failures: the resource manager restarts the container; its
  // cached RDD partitions become stale (lineage recomputes them when next
  // accessed). The synchronization controller blocks peers meanwhile —
  // modeled by the restart delay folded into the next BSP barrier.
  for (int32_t e = 0; e < num_executors(); ++e) {
    sim::NodeId node = cluster_->config().executor(e);
    if (!cluster_->IsAlive(node)) {
      cluster_->ReviveNode(node);
      dataflow_->BumpExecutorEpoch(e);
      report.executors_restarted.push_back(e);
      PSG_LOG(Info) << "executor " << e
                    << " restarted; lineage will reload its partitions";
    }
  }
  if (dead_nodes > 0) {
    events_.Record(sim::JournalEventType::kRecoveryEnd, /*node=*/-1,
                   cluster_->clock().MakespanTicks(), report.total());
  }
  return report;
}

Status PsGraphContext::MaybeCheckpoint(int64_t iteration) {
  if (options_.checkpoint_interval <= 0) return Status::OK();
  if (iteration == 0 ||
      iteration % options_.checkpoint_interval != 0) {
    return Status::OK();
  }
  events_.set_iteration(iteration);
  return master_->CheckpointAll();
}

}  // namespace psgraph::core
