#include "core/kcore.h"

#include <algorithm>
#include <unordered_map>

#include "graph/algo_math.h"
#include "ps/agent.h"

namespace psgraph::core {

namespace {
int g_kcore_job = 0;
}

Result<KCoreResult> KCore(PsGraphContext& ctx,
                          const dataflow::Dataset<graph::Edge>& edges,
                          graph::VertexId num_vertices,
                          const KCoreOptions& opts) {
  if (num_vertices == 0) {
    PSG_ASSIGN_OR_RETURN(auto all, edges.Collect());
    num_vertices = graph::NumVerticesOf(all);
  }

  // Undirected adjacency, vertex-partitioned on the executors.
  auto nbr = ToNeighborTables(edges.FlatMap([](const graph::Edge& e) {
               return std::vector<graph::Edge>{e, {e.dst, e.src, 1.0f}};
             }))
                 .Cache();
  PSG_RETURN_NOT_OK(nbr.Evaluate());

  const std::string job = "kcore" + std::to_string(g_kcore_job++);
  PSG_ASSIGN_OR_RETURN(ps::MatrixMeta est,
                       ctx.ps().CreateMatrix(job + ".est", num_vertices, 1));

  // Initialize estimates to the (undirected) degree.
  for (int32_t p = 0; p < nbr.num_partitions(); ++p) {
    int32_t e = ctx.dataflow().ExecutorOf(p);
    PSG_ASSIGN_OR_RETURN(auto tables, nbr.ComputePartition(p));
    std::vector<uint64_t> keys;
    std::vector<float> values;
    keys.reserve(tables.size());
    for (const NeighborPair& t : tables) {
      keys.push_back(t.first);
      values.push_back(static_cast<float>(t.second.size()));
    }
    PSG_RETURN_NOT_OK(ctx.agent(e).PushAssign(est, keys, values));
  }
  ctx.sync().IterationBarrier();

  KCoreResult result;
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    PSG_ASSIGN_OR_RETURN(auto recovery,
                         ctx.HandleFailures(iter, opts.recovery));
    (void)recovery;

    uint64_t changed = 0;
    for (int32_t p = 0; p < nbr.num_partitions(); ++p) {
      int32_t e = ctx.dataflow().ExecutorOf(p);
      PSG_ASSIGN_OR_RETURN(auto tables, nbr.ComputePartition(p));
      // Pull own + neighbor estimates in one batch per partition.
      std::vector<uint64_t> keys;
      for (const NeighborPair& t : tables) {
        keys.push_back(t.first);
        keys.insert(keys.end(), t.second.begin(), t.second.end());
      }
      PSG_ASSIGN_OR_RETURN(std::vector<float> vals,
                           ctx.agent(e).PullRows(est, keys));
      std::vector<uint64_t> out_keys;
      std::vector<float> out_vals;
      size_t cursor = 0;
      uint64_t ops = 0;
      std::vector<uint32_t> nb_est;
      for (const NeighborPair& t : tables) {
        uint32_t own = static_cast<uint32_t>(vals[cursor++]);
        nb_est.clear();
        nb_est.reserve(t.second.size());
        for (size_t i = 0; i < t.second.size(); ++i) {
          nb_est.push_back(static_cast<uint32_t>(vals[cursor++]));
        }
        uint32_t h = graph::HIndexCapped(nb_est, own);
        if (h != own) {
          out_keys.push_back(t.first);
          out_vals.push_back(static_cast<float>(h));
          ++changed;
        }
        ops += t.second.size();
      }
      ctx.cluster().clock().Advance(
          ctx.cluster().config().executor(e),
          ctx.cluster().cost().ComputeTime(ops));
      if (!out_keys.empty()) {
        PSG_RETURN_NOT_OK(ctx.agent(e).PushAssign(est, out_keys, out_vals));
      }
    }
    ctx.sync().IterationBarrier();
    PSG_RETURN_NOT_OK(ctx.MaybeCheckpoint(iter));
    // H-index frontier: how many estimates still moved this sweep.
    ctx.convergence().Record("kcore.changed", iter,
                             static_cast<double>(changed));
    result.iterations = iter + 1;
    if (changed == 0) break;
  }

  // Read back the coreness vector.
  ps::PsAgent driver_agent(&ctx.ps(), ctx.cluster().config().driver());
  result.coreness.assign(num_vertices, 0);
  const uint64_t kBatch = 1 << 16;
  for (uint64_t begin = 0; begin < num_vertices; begin += kBatch) {
    uint64_t end = std::min<uint64_t>(num_vertices, begin + kBatch);
    std::vector<uint64_t> keys(end - begin);
    for (uint64_t k = begin; k < end; ++k) keys[k - begin] = k;
    PSG_ASSIGN_OR_RETURN(std::vector<float> vals,
                         driver_agent.PullRows(est, keys));
    for (uint64_t k = begin; k < end; ++k) {
      result.coreness[k] = static_cast<uint32_t>(vals[k - begin]);
      result.max_coreness =
          std::max(result.max_coreness, result.coreness[k]);
    }
  }
  PSG_RETURN_NOT_OK(ctx.ps().DropMatrix(job + ".est"));
  nbr.Unpersist();
  return result;
}


Result<KCoreSubgraphResult> KCoreSubgraph(
    PsGraphContext& ctx, const dataflow::Dataset<graph::Edge>& edges,
    graph::VertexId num_vertices, uint32_t k, int max_rounds,
    ps::RecoveryMode recovery) {
  if (num_vertices == 0) {
    PSG_ASSIGN_OR_RETURN(auto all, edges.Collect());
    num_vertices = graph::NumVerticesOf(all);
  }
  auto nbr = ToNeighborTables(edges.FlatMap([](const graph::Edge& e) {
               return std::vector<graph::Edge>{e, {e.dst, e.src, 1.0f}};
             }))
                 .Cache();
  PSG_RETURN_NOT_OK(nbr.Evaluate());

  const std::string job = "kcs" + std::to_string(g_kcore_job++);
  PSG_ASSIGN_OR_RETURN(ps::MatrixMeta deg,
                       ctx.ps().CreateMatrix(job + ".deg", num_vertices, 1));

  // Initialize degrees and the per-partition alive bitmap.
  std::vector<std::vector<bool>> alive(nbr.num_partitions());
  for (int32_t p = 0; p < nbr.num_partitions(); ++p) {
    int32_t e = ctx.dataflow().ExecutorOf(p);
    PSG_ASSIGN_OR_RETURN(auto tables, nbr.ComputePartition(p));
    alive[p].assign(tables.size(), true);
    std::vector<uint64_t> keys;
    std::vector<float> values;
    for (const NeighborPair& t : tables) {
      keys.push_back(t.first);
      values.push_back(static_cast<float>(t.second.size()));
    }
    PSG_RETURN_NOT_OK(ctx.agent(e).PushAssign(deg, keys, values));
  }
  ctx.sync().IterationBarrier();

  KCoreSubgraphResult result;
  for (int round = 0; round < max_rounds; ++round) {
    PSG_ASSIGN_OR_RETURN(auto recovery_report,
                         ctx.HandleFailures(round, recovery));
    (void)recovery_report;
    uint64_t removed = 0;
    for (int32_t p = 0; p < nbr.num_partitions(); ++p) {
      int32_t e = ctx.dataflow().ExecutorOf(p);
      PSG_ASSIGN_OR_RETURN(auto tables, nbr.ComputePartition(p));
      std::vector<uint64_t> keys;
      keys.reserve(tables.size());
      for (const NeighborPair& t : tables) keys.push_back(t.first);
      PSG_ASSIGN_OR_RETURN(std::vector<float> degs,
                           ctx.agent(e).PullRows(deg, keys));
      // Remove local vertices below k; decrement their neighbors.
      std::unordered_map<graph::VertexId, float> decrements;
      uint64_t ops = 0;
      for (size_t i = 0; i < tables.size(); ++i) {
        if (!alive[p][i]) continue;
        if (degs[i] >= static_cast<float>(k)) continue;
        alive[p][i] = false;
        ++removed;
        for (graph::VertexId u : tables[i].second) {
          decrements[u] -= 1.0f;
        }
        ops += tables[i].second.size();
      }
      ctx.cluster().clock().Advance(
          ctx.cluster().config().executor(e),
          ctx.cluster().cost().ComputeTime(ops + tables.size()));
      if (!decrements.empty()) {
        std::vector<uint64_t> dkeys;
        std::vector<float> dvals;
        dkeys.reserve(decrements.size());
        for (const auto& [u, d] : decrements) {
          dkeys.push_back(u);
          dvals.push_back(d);
        }
        PSG_RETURN_NOT_OK(ctx.agent(e).PushAdd(deg, dkeys, dvals));
      }
    }
    ctx.sync().IterationBarrier();
    PSG_RETURN_NOT_OK(ctx.MaybeCheckpoint(round));
    // Peeling frontier: vertices removed this round.
    ctx.convergence().Record("kcore_subgraph.removed", round,
                             static_cast<double>(removed));
    result.rounds = round + 1;
    if (removed == 0) break;
  }

  // Survivors and their remaining degree sum (each undirected edge is
  // counted at both endpoints).
  uint64_t degree_sum = 0;
  for (int32_t p = 0; p < nbr.num_partitions(); ++p) {
    int32_t e = ctx.dataflow().ExecutorOf(p);
    PSG_ASSIGN_OR_RETURN(auto tables, nbr.ComputePartition(p));
    std::vector<uint64_t> keys;
    for (const NeighborPair& t : tables) keys.push_back(t.first);
    PSG_ASSIGN_OR_RETURN(std::vector<float> degs,
                         ctx.agent(e).PullRows(deg, keys));
    for (size_t i = 0; i < tables.size(); ++i) {
      if (!alive[p][i]) continue;
      result.core_vertices++;
      degree_sum += static_cast<uint64_t>(degs[i]);
    }
  }
  result.core_edges = degree_sum / 2;
  PSG_RETURN_NOT_OK(ctx.ps().DropMatrix(job + ".deg"));
  nbr.Unpersist();
  return result;
}

}  // namespace psgraph::core
