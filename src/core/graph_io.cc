#include "core/graph_io.h"

#include <charconv>
#include <cstdio>

#include "common/byte_buffer.h"

namespace psgraph::core {

namespace {
constexpr uint32_t kEmbeddingMagic = 0x50534542;  // "PSEB"
}

Status SaveVertexDoubles(storage::Hdfs& hdfs, const std::string& path,
                         const std::vector<double>& values,
                         sim::NodeId node) {
  std::string text;
  text.reserve(values.size() * 24);
  char line[64];
  for (size_t v = 0; v < values.size(); ++v) {
    int n = std::snprintf(line, sizeof(line), "%zu %.10g\n", v, values[v]);
    text.append(line, n);
  }
  return hdfs.WriteString(path, text, node);
}

Status SaveVertexLabels(storage::Hdfs& hdfs, const std::string& path,
                        const std::vector<uint64_t>& labels,
                        sim::NodeId node) {
  std::string text;
  text.reserve(labels.size() * 16);
  char line[64];
  for (size_t v = 0; v < labels.size(); ++v) {
    int n = std::snprintf(line, sizeof(line), "%zu %llu\n", v,
                          (unsigned long long)labels[v]);
    text.append(line, n);
  }
  return hdfs.WriteString(path, text, node);
}

Result<std::vector<double>> LoadVertexDoubles(storage::Hdfs& hdfs,
                                              const std::string& path,
                                              sim::NodeId node) {
  PSG_ASSIGN_OR_RETURN(std::string text, hdfs.ReadString(path, node));
  std::vector<double> values;
  const char* p = text.data();
  const char* end = p + text.size();
  while (p < end) {
    uint64_t id = 0;
    auto r1 = std::from_chars(p, end, id);
    if (r1.ec != std::errc()) {
      return Status::InvalidArgument("vertex-value file " + path +
                                     ": bad id");
    }
    p = r1.ptr;
    while (p < end && *p == ' ') ++p;
    double v = 0.0;
    auto r2 = std::from_chars(p, end, v);
    if (r2.ec != std::errc()) {
      return Status::InvalidArgument("vertex-value file " + path +
                                     ": bad value");
    }
    p = r2.ptr;
    while (p < end && (*p == '\n' || *p == '\r')) ++p;
    if (values.size() <= id) values.resize(id + 1, 0.0);
    values[id] = v;
  }
  return values;
}

Status SaveEmbeddings(storage::Hdfs& hdfs, const std::string& path,
                      const std::vector<float>& embeddings,
                      uint64_t num_vertices, int dim, sim::NodeId node) {
  if (embeddings.size() != num_vertices * static_cast<uint64_t>(dim)) {
    return Status::InvalidArgument("embedding size mismatch");
  }
  ByteBuffer buf;
  buf.Write<uint32_t>(kEmbeddingMagic);
  buf.Write<uint64_t>(num_vertices);
  buf.Write<int32_t>(dim);
  buf.WriteVector(embeddings);
  return hdfs.Write(path, buf, node);
}

Result<LoadedEmbeddings> LoadEmbeddings(storage::Hdfs& hdfs,
                                        const std::string& path,
                                        sim::NodeId node) {
  PSG_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, hdfs.Read(path, node));
  ByteReader reader(bytes);
  uint32_t magic = 0;
  PSG_RETURN_NOT_OK(reader.Read(&magic));
  if (magic != kEmbeddingMagic) {
    return Status::InvalidArgument("not an embedding file: " + path);
  }
  LoadedEmbeddings out;
  PSG_RETURN_NOT_OK(reader.Read(&out.num_vertices));
  int32_t dim = 0;
  PSG_RETURN_NOT_OK(reader.Read(&dim));
  out.dim = dim;
  PSG_RETURN_NOT_OK(reader.ReadVector(&out.values));
  if (out.values.size() != out.num_vertices * static_cast<uint64_t>(dim)) {
    return Status::IoError("embedding file " + path + " truncated");
  }
  return out;
}

}  // namespace psgraph::core
