// PsGraphContext: the top-level runtime of the PSGraph system (paper
// Fig. 3) — it owns the simulated cluster, the HDFS, the RPC fabric, the
// Spark-like dataflow context, the parameter servers with their master,
// the per-executor PS agents, and the synchronization controller.
//
// Algorithms (src/core/*.cc) take a PsGraphContext& plus input data and
// options; benches and examples create one context per run.

#ifndef PSGRAPH_CORE_PSGRAPH_CONTEXT_H_
#define PSGRAPH_CORE_PSGRAPH_CONTEXT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/rpc_telemetry.h"
#include "common/status.h"
#include "common/timeseries.h"
#include "common/trace.h"
#include "dataflow/context.h"
#include "net/rpc.h"
#include "ps/agent.h"
#include "ps/context.h"
#include "ps/master.h"
#include "ps/replication.h"
#include "ps/sync.h"
#include "sim/cluster.h"
#include "sim/event_journal.h"
#include "sim/failure_injector.h"
#include "sim/watchdog.h"
#include "storage/hdfs.h"

namespace psgraph::core {

class PsGraphContext {
 public:
  struct Options {
    sim::ClusterConfig cluster;
    ps::SyncProtocol sync = ps::SyncProtocol::kBsp;
    /// Barrier period when sync == kSsp (bounded staleness).
    int ssp_staleness = 3;
    /// HDFS prefix for PS checkpoints.
    std::string checkpoint_prefix = "ckpt/psgraph";
    /// Checkpoint every N iterations (<= 0 disables periodic
    /// checkpoints; algorithms may still checkpoint explicitly).
    int checkpoint_interval = 5;
  };

  /// Builds and starts the full stack (servers bound, psFuncs
  /// registered).
  static Result<std::unique_ptr<PsGraphContext>> Create(Options options);

  const Options& options() const { return options_; }
  sim::SimCluster& cluster() { return *cluster_; }

  /// Per-context observability sinks. Every component of this context
  /// (PS servers, RPC fabric, dataflow, HDFS) reports here instead of
  /// into the process-wide Metrics::Global()/Tracer::Global(), so
  /// concurrent contexts — or a context created after a bench reset the
  /// globals — cannot contaminate each other's counters or run reports.
  Metrics& metrics() { return metrics_; }
  Tracer& tracer() { return tracer_; }
  /// Flight-recorder sinks: PS key-access / partition-imbalance profile
  /// and per-iteration algorithm telemetry (same per-context isolation
  /// as metrics()/tracer()).
  sim::SkewProfiler& skew() { return skew_; }
  sim::ConvergenceLog& convergence() { return convergence_; }
  /// Wire-level RPC telemetry and the control-plane event journal (same
  /// per-context isolation as metrics()/tracer()).
  RpcTelemetry& rpc_telemetry() { return rpc_telemetry_; }
  sim::EventJournal& events() { return events_; }
  /// Continuous telemetry: the sim-interval metrics sampler (armed from
  /// PSGRAPH_TS_INTERVAL at Create) and the SLO watchdog evaluating its
  /// default rules at every scrape (see Create for the rule set).
  MetricsSampler& sampler() { return sampler_; }
  sim::Watchdog& watchdog() { return watchdog_; }
  storage::Hdfs& hdfs() { return *hdfs_; }
  net::RpcFabric& fabric() { return *fabric_; }
  dataflow::DataflowContext& dataflow() { return *dataflow_; }
  ps::PsContext& ps() { return *ps_; }
  ps::PsMaster& master() { return *master_; }
  ps::SyncController& sync() { return *sync_; }
  sim::FailureInjector& failures() { return failures_; }

  int32_t num_executors() const {
    return cluster_->config().num_executors;
  }
  ps::PsAgent& agent(int32_t executor) { return *agents_[executor]; }

  /// Lazily-created skew-aware replication manager (ps/replication.h).
  /// First call installs a ReplicaCache into every agent; until then the
  /// agents run the plain single-home paths with zero overhead.
  ps::ReplicationManager& replication(ps::ReplicationOptions options = {});
  bool has_replication() const { return replication_ != nullptr; }

  struct RecoveryReport {
    int32_t servers_restarted = 0;
    /// Executor indices that were restarted this call (their cached RDD
    /// partitions are stale and any executor-local algorithm state must
    /// be rebuilt by the caller).
    std::vector<int32_t> executors_restarted;
    int32_t total() const {
      return servers_restarted +
             static_cast<int32_t>(executors_restarted.size());
    }
  };

  /// Runs start-of-iteration failure handling: fires due injected
  /// failures, restarts+restores dead servers in the given mode, and
  /// revives dead executors (their cached RDD partitions recompute via
  /// lineage).
  Result<RecoveryReport> HandleFailures(int64_t iteration,
                                        ps::RecoveryMode mode);

  /// Periodic checkpoint hook; no-op unless `iteration` is a multiple of
  /// the configured interval.
  Status MaybeCheckpoint(int64_t iteration);

 private:
  explicit PsGraphContext(Options options)
      : options_(std::move(options)),
        skew_(options_.cluster.num_servers) {}

  Options options_;
  // Declared before cluster_ (and destroyed after it): the cluster holds
  // raw pointers to these sinks for its whole lifetime.
  Metrics metrics_;
  Tracer tracer_;
  sim::SkewProfiler skew_;
  sim::ConvergenceLog convergence_;
  RpcTelemetry rpc_telemetry_;
  sim::EventJournal events_;
  // Sampler after the registries it scrapes, watchdog after the store
  // it reads and the journal it appends to (construction/destruction
  // order matters: all are wired by raw pointer).
  MetricsSampler sampler_;
  sim::Watchdog watchdog_;
  std::unique_ptr<sim::SimCluster> cluster_;
  std::unique_ptr<storage::Hdfs> hdfs_;
  std::unique_ptr<net::RpcFabric> fabric_;
  std::unique_ptr<dataflow::DataflowContext> dataflow_;
  std::unique_ptr<ps::PsContext> ps_;
  std::unique_ptr<ps::PsMaster> master_;
  std::unique_ptr<ps::SyncController> sync_;
  std::vector<std::unique_ptr<ps::PsAgent>> agents_;
  std::unique_ptr<ps::ReplicationManager> replication_;
  sim::FailureInjector failures_;
};

}  // namespace psgraph::core

#endif  // PSGRAPH_CORE_PSGRAPH_CONTEXT_H_
