#include "ps/server.h"

#include <algorithm>
#include <cstring>

#include "common/hash.h"
#include "common/metrics.h"
#include "common/varint.h"
#include "common/wire.h"
#include "net/ps_wire.h"
#include "ps/partitioner.h"

namespace psgraph::ps {

namespace {
constexpr uint64_t kHashEntryOverhead = 48;
constexpr uint32_t kCheckpointMagic = 0x50534350;  // "PSCP"
}  // namespace

std::pair<uint32_t, uint32_t> ColumnSliceOf(uint32_t cols, int32_t s,
                                            int32_t n) {
  uint32_t width = (cols + n - 1) / n;
  uint32_t begin = std::min<uint32_t>(cols, width * s);
  uint32_t end = std::min<uint32_t>(cols, begin + width);
  return {begin, end};
}

void SerializeMeta(ByteBuffer& buf, const MatrixMeta& meta) {
  buf.Write<int32_t>(meta.id);
  buf.WriteString(meta.name);
  buf.Write<uint64_t>(meta.num_rows);
  buf.Write<uint32_t>(meta.num_cols);
  buf.Write<uint8_t>(static_cast<uint8_t>(meta.kind));
  buf.Write<uint8_t>(static_cast<uint8_t>(meta.layout));
  buf.Write<uint8_t>(static_cast<uint8_t>(meta.scheme));
  buf.Write<float>(meta.init_value);
}

Status DeserializeMeta(ByteReader& reader, MatrixMeta* meta) {
  PSG_RETURN_NOT_OK(reader.Read(&meta->id));
  PSG_RETURN_NOT_OK(reader.ReadString(&meta->name));
  PSG_RETURN_NOT_OK(reader.Read(&meta->num_rows));
  PSG_RETURN_NOT_OK(reader.Read(&meta->num_cols));
  uint8_t kind = 0, layout = 0, scheme = 0;
  PSG_RETURN_NOT_OK(reader.Read(&kind));
  PSG_RETURN_NOT_OK(reader.Read(&layout));
  PSG_RETURN_NOT_OK(reader.Read(&scheme));
  meta->kind = static_cast<StorageKind>(kind);
  meta->layout = static_cast<Layout>(layout);
  meta->scheme = static_cast<PartitionScheme>(scheme);
  return reader.Read(&meta->init_value);
}

PsFuncRegistry& PsFuncRegistry::Global() {
  static PsFuncRegistry instance;
  return instance;
}

void PsFuncRegistry::Register(const std::string& name, PsFunc fn) {
  std::lock_guard<std::mutex> lock(mu_);
  funcs_[name] = std::move(fn);
}

Result<PsFunc> PsFuncRegistry::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = funcs_.find(name);
  if (it == funcs_.end()) {
    return Status::NotFound("psFunc '" + name + "' is not registered");
  }
  return it->second;
}

PsServer::PsServer(int32_t server_index, int32_t num_servers,
                   sim::SimCluster* cluster, storage::Hdfs* hdfs)
    : server_index_(server_index),
      num_servers_(num_servers),
      cluster_(cluster),
      hdfs_(hdfs),
      pulled_counter_name_("ps.server" + std::to_string(server_index) +
                           ".rows_pulled"),
      pushed_counter_name_("ps.server" + std::to_string(server_index) +
                           ".rows_pushed") {
  if (cluster_ != nullptr) {
    node_ = cluster_->config().server(server_index);
  }
}

Status PsServer::ChargeMemory(uint64_t bytes, const char* what) {
  if (cluster_ == nullptr) return Status::OK();
  PSG_RETURN_NOT_OK(cluster_->memory().Allocate(node_, bytes, what));
  total_charged_ += bytes;
  return Status::OK();
}

void PsServer::ReleaseMemory(uint64_t bytes) {
  if (cluster_ == nullptr) return;
  cluster_->memory().Release(node_, bytes);
  total_charged_ -= std::min(total_charged_, bytes);
}

void PsServer::ChargeCompute(uint64_t ops) {
  if (cluster_ == nullptr) return;
  cluster_->clock().Advance(node_, cluster_->cost().ComputeTime(ops));
}

uint64_t PsServer::EntryBytes(const NeighborEntry& e) {
  return kHashEntryOverhead + e.neighbors.size() * sizeof(uint64_t) +
         e.weights.size() * sizeof(float);
}

uint64_t PsServer::charged_bytes() const { return total_charged_; }

Status PsServer::InitMatrix(const MatrixMeta& meta) {
  if (shards_.count(meta.id) > 0) {
    return Status::AlreadyExists("matrix " + std::to_string(meta.id) +
                                 " already on server " +
                                 std::to_string(server_index_));
  }
  MatrixShard shard;
  shard.meta = meta;
  if (meta.layout == Layout::kColumnPartitioned) {
    auto [begin, end] =
        ColumnSliceOf(meta.num_cols, server_index_, num_servers_);
    shard.col_begin = begin;
    shard.slice_cols = end - begin;
  } else {
    shard.col_begin = 0;
    shard.slice_cols = meta.num_cols;
  }
  shards_.emplace(meta.id, std::move(shard));
  return Status::OK();
}

Status PsServer::DropMatrix(MatrixId id) {
  auto it = shards_.find(id);
  if (it == shards_.end()) {
    return Status::NotFound("matrix " + std::to_string(id));
  }
  ReleaseMemory(it->second.charged_bytes);
  shards_.erase(it);
  return Status::OK();
}

Result<MatrixShard*> PsServer::GetShard(MatrixId id) {
  auto it = shards_.find(id);
  if (it == shards_.end()) {
    return Status::NotFound("matrix " + std::to_string(id) +
                            " not on server " +
                            std::to_string(server_index_));
  }
  return &it->second;
}

Status PsServer::PullRows(MatrixId id, std::span<const uint64_t> keys,
                          std::vector<float>* out) {
  // Service-time bracket: the shard's clock only moves for this
  // request while we hold its endpoint's serial lock (or run
  // single-threaded), so the delta is exactly this pull's busy time.
  const int64_t t0 = NowTicks();
  ScopedSpan span(&tracer(), "ps.pull", node_, t0,
                  [this] { return NowTicks(); });
  PSG_ASSIGN_OR_RETURN(MatrixShard * shard, GetShard(id));
  const uint32_t cols = shard->slice_cols;
  ChargeCompute(keys.size() * cols / 8 + keys.size());
  // Contiguous pre-sized response buffer: one resize, then a single pass
  // that memcpys each stored row (or fills init_value) into place —
  // no per-key reallocation/insert bookkeeping on the pull hot path.
  const size_t base = out->size();
  out->resize(base + keys.size() * cols);
  float* dst = out->data() + base;
  for (uint64_t key : keys) {
    const std::vector<float>* row = shard->FindRow(key);
    if (row != nullptr) {
      std::memcpy(dst, row->data(), size_t{cols} * sizeof(float));
    } else {
      std::fill_n(dst, cols, shard->meta.init_value);
    }
    dst += cols;
  }
  skew().RecordKeyAccess(server_index_, /*is_pull=*/true, keys);
  metrics().Add("ps.rows_pulled", keys.size());
  metrics().Add(pulled_counter_name_, keys.size());
  metrics().Observe("ps.pull.keys_per_request", keys.size());
  metrics().Observe("ps.pull.service_ticks",
                    static_cast<uint64_t>(NowTicks() - t0));
  return Status::OK();
}

Status PsServer::PushAdd(MatrixId id, std::span<const uint64_t> keys,
                         std::span<const float> values) {
  const int64_t t0 = NowTicks();
  ScopedSpan span(&tracer(), "ps.push_add", node_, t0,
                  [this] { return NowTicks(); });
  PSG_ASSIGN_OR_RETURN(MatrixShard * shard, GetShard(id));
  if (values.size() != keys.size() * shard->slice_cols) {
    return Status::InvalidArgument(
        "push_add: values size " + std::to_string(values.size()) +
        " != keys*cols " + std::to_string(keys.size() * shard->slice_cols));
  }
  PSG_RETURN_NOT_OK(ApplyAddRows(shard, keys, values));
  skew().RecordKeyAccess(server_index_, /*is_pull=*/false, keys);
  metrics().Add("ps.rows_pushed", keys.size());
  metrics().Add(pushed_counter_name_, keys.size());
  metrics().Observe("ps.push.keys_per_request", keys.size());
  metrics().Observe("ps.push.service_ticks",
                    static_cast<uint64_t>(NowTicks() - t0));
  return Status::OK();
}

Status PsServer::ApplyAddRows(MatrixShard* shard,
                              std::span<const uint64_t> keys,
                              std::span<const float> values) {
  const uint32_t cols = shard->slice_cols;
  ChargeCompute(values.size() / 4 + keys.size());
  const uint64_t row_bytes =
      kHashEntryOverhead + uint64_t{cols} * sizeof(float);
  // Single-pass batched add: one hash probe per key (try_emplace covers
  // both hit and miss) and a tight accumulate over the contiguous value
  // slab.
  const float* src = values.data();
  for (size_t i = 0; i < keys.size(); ++i, src += cols) {
    auto [it, inserted] = shard->rows.try_emplace(keys[i]);
    if (inserted) {
      Status st = ChargeMemory(row_bytes, "ps row");
      if (!st.ok()) {
        shard->rows.erase(it);
        return st;
      }
      shard->charged_bytes += row_bytes;
      it->second.assign(cols, shard->meta.init_value);
    }
    float* dst = it->second.data();
    for (uint32_t c = 0; c < cols; ++c) dst[c] += src[c];
  }
  return Status::OK();
}

Status PsServer::MergeRows(MatrixId id, std::span<const uint64_t> keys,
                           std::span<const float> deltas) {
  const int64_t t0 = NowTicks();
  ScopedSpan span(&tracer(), "ps.merge", node_, t0,
                  [this] { return NowTicks(); });
  PSG_ASSIGN_OR_RETURN(MatrixShard * shard, GetShard(id));
  if (deltas.size() != keys.size() * shard->slice_cols) {
    return Status::InvalidArgument(
        "merge: deltas size " + std::to_string(deltas.size()) +
        " != keys*cols " +
        std::to_string(keys.size() * shard->slice_cols));
  }
  PSG_RETURN_NOT_OK(ApplyAddRows(shard, keys, deltas));
  // Deliberately no skew().RecordKeyAccess: replica management traffic
  // must not feed the profiler that decides what to replicate.
  metrics().Add("ps.merge.rows", keys.size());
  metrics().Observe("ps.merge.keys_per_request", keys.size());
  metrics().Observe("ps.merge.service_ticks",
                    static_cast<uint64_t>(NowTicks() - t0));
  return Status::OK();
}

Status PsServer::SampleRows(MatrixId id, uint32_t k, uint64_t seed,
                            std::vector<float>* out) {
  PSG_ASSIGN_OR_RETURN(MatrixShard * shard, GetShard(id));
  std::vector<uint64_t> derived;
  net::DeriveSampleKeys(seed, k, shard->meta.num_rows, &derived);
  // The derivation itself is charged: the server does the same k draws
  // the caller did in exchange for a constant-size request.
  ChargeCompute(k);
  if (shard->meta.layout == Layout::kColumnPartitioned) {
    // Every slice holder serves its columns of all k positions.
    return PullRows(id, derived, out);
  }
  Partitioner part(shard->meta.scheme, shard->meta.num_rows, num_servers_);
  std::vector<uint64_t> owned;
  for (uint64_t key : derived) {
    if (part.PartitionOf(key) == server_index_) owned.push_back(key);
  }
  metrics().Observe("ps.sample.owned_per_request", owned.size());
  // Served through the normal pull path so sampling keeps the same
  // compute charging, metrics, and skew recording as explicit pulls.
  return PullRows(id, owned, out);
}

Status PsServer::PushAssign(MatrixId id, std::span<const uint64_t> keys,
                            std::span<const float> values) {
  const int64_t t0 = NowTicks();
  ScopedSpan span(&tracer(), "ps.push_assign", node_, t0,
                  [this] { return NowTicks(); });
  PSG_ASSIGN_OR_RETURN(MatrixShard * shard, GetShard(id));
  if (values.size() != keys.size() * shard->slice_cols) {
    return Status::InvalidArgument("push_assign: bad values size");
  }
  const uint32_t cols = shard->slice_cols;
  ChargeCompute(values.size() / 4 + keys.size());
  const uint64_t row_bytes =
      kHashEntryOverhead + uint64_t{cols} * sizeof(float);
  const float* src = values.data();
  for (size_t i = 0; i < keys.size(); ++i, src += cols) {
    auto [it, inserted] = shard->rows.try_emplace(keys[i]);
    if (inserted) {
      Status st = ChargeMemory(row_bytes, "ps row");
      if (!st.ok()) {
        shard->rows.erase(it);
        return st;
      }
      shard->charged_bytes += row_bytes;
      it->second.resize(cols);
    }
    // cols can be 0 for an empty column slice; values.data() is null
    // then, and memcpy's pointer args must be non-null even for n=0.
    if (cols != 0) {
      std::memcpy(it->second.data(), src, size_t{cols} * sizeof(float));
    }
  }
  skew().RecordKeyAccess(server_index_, /*is_pull=*/false, keys);
  metrics().Add("ps.rows_pushed", keys.size());
  metrics().Add(pushed_counter_name_, keys.size());
  metrics().Observe("ps.push.keys_per_request", keys.size());
  metrics().Observe("ps.push.service_ticks",
                    static_cast<uint64_t>(NowTicks() - t0));
  return Status::OK();
}

Status PsServer::PushNeighbors(MatrixId id,
                               std::span<const uint64_t> keys,
                               std::span<const NeighborEntry> entries) {
  PSG_ASSIGN_OR_RETURN(MatrixShard * shard, GetShard(id));
  if (shard->csr.has_value()) {
    return Status::FailedPrecondition(
        "push_neighbors: shard is frozen to CSR");
  }
  if (keys.size() != entries.size()) {
    return Status::InvalidArgument("push_neighbors: keys/entries mismatch");
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    uint64_t bytes = EntryBytes(entries[i]);
    auto it = shard->neighbors.find(keys[i]);
    if (it != shard->neighbors.end()) {
      // Merge (the same vertex can arrive from several executors when the
      // input is edge-partitioned).
      NeighborEntry& dst = it->second;
      uint64_t extra =
          entries[i].neighbors.size() * sizeof(uint64_t) +
          entries[i].weights.size() * sizeof(float);
      PSG_RETURN_NOT_OK(ChargeMemory(extra, "ps neighbor table"));
      shard->charged_bytes += extra;
      dst.neighbors.insert(dst.neighbors.end(),
                           entries[i].neighbors.begin(),
                           entries[i].neighbors.end());
      dst.weights.insert(dst.weights.end(), entries[i].weights.begin(),
                         entries[i].weights.end());
    } else {
      PSG_RETURN_NOT_OK(ChargeMemory(bytes, "ps neighbor table"));
      shard->charged_bytes += bytes;
      shard->neighbors.emplace(keys[i], entries[i]);
    }
  }
  ChargeCompute(keys.size());
  metrics().Add("ps.neighbor_entries_pushed", keys.size());
  return Status::OK();
}

Status PsServer::MutateNeighbors(MatrixId id,
                                 std::span<const uint64_t> insert_src,
                                 std::span<const uint64_t> insert_dst,
                                 std::span<const float> insert_weights,
                                 std::span<const uint64_t> delete_src,
                                 std::span<const uint64_t> delete_dst) {
  const int64_t t0 = NowTicks();
  ScopedSpan span(&tracer(), "ps.mutate", node_, t0,
                  [this] { return NowTicks(); });
  PSG_ASSIGN_OR_RETURN(MatrixShard * shard, GetShard(id));
  if (shard->csr.has_value()) {
    return Status::FailedPrecondition("mutate: shard is frozen to CSR");
  }
  if (insert_src.size() != insert_dst.size() ||
      delete_src.size() != delete_dst.size() ||
      (!insert_weights.empty() &&
       insert_weights.size() != insert_src.size())) {
    return Status::InvalidArgument("mutate: op list size mismatch");
  }
  const bool weighted = !insert_weights.empty();
  uint64_t ops = insert_src.size() + delete_src.size();

  // Inserts first, deletes second — legal because an epoch batch never
  // carries the same (src, dst) twice (see net::MutateRequest).
  for (size_t i = 0; i < insert_src.size(); ++i) {
    const uint64_t src = insert_src[i];
    const uint64_t dst = insert_dst[i];
    auto [it, inserted] = shard->neighbors.try_emplace(src);
    if (inserted) {
      Status st = ChargeMemory(kHashEntryOverhead, "ps neighbor table");
      if (!st.ok()) {
        shard->neighbors.erase(it);
        return st;
      }
      shard->charged_bytes += kHashEntryOverhead;
    }
    NeighborEntry& entry = it->second;
    ops += entry.neighbors.size();  // duplicate scan below
    if (std::find(entry.neighbors.begin(), entry.neighbors.end(), dst) !=
        entry.neighbors.end()) {
      return Status::InvalidArgument(
          "mutate: duplicate INSERT of edge " + std::to_string(src) +
          " -> " + std::to_string(dst));
    }
    const uint64_t extra =
        sizeof(uint64_t) + (weighted ? sizeof(float) : 0);
    PSG_RETURN_NOT_OK(ChargeMemory(extra, "ps neighbor table"));
    shard->charged_bytes += extra;
    entry.neighbors.push_back(dst);
    if (weighted) entry.weights.push_back(insert_weights[i]);
  }

  for (size_t i = 0; i < delete_src.size(); ++i) {
    const uint64_t src = delete_src[i];
    const uint64_t dst = delete_dst[i];
    auto it = shard->neighbors.find(src);
    if (it == shard->neighbors.end()) {
      return Status::NotFound(
          "mutate: DELETE of edge " + std::to_string(src) + " -> " +
          std::to_string(dst) + ": source vertex has no adjacency");
    }
    NeighborEntry& entry = it->second;
    auto pos =
        std::find(entry.neighbors.begin(), entry.neighbors.end(), dst);
    if (pos == entry.neighbors.end()) {
      return Status::NotFound("mutate: DELETE of nonexistent edge " +
                              std::to_string(src) + " -> " +
                              std::to_string(dst));
    }
    ops += entry.neighbors.size();  // the scan above
    const size_t idx =
        static_cast<size_t>(pos - entry.neighbors.begin());
    // Order-preserving erase: adjacency order is part of the
    // deterministic state (CSR freeze, samplers iterate it).
    entry.neighbors.erase(pos);
    uint64_t released = sizeof(uint64_t);
    if (!entry.weights.empty()) {
      entry.weights.erase(entry.weights.begin() +
                          static_cast<ptrdiff_t>(idx));
      released += sizeof(float);
    }
    ReleaseMemory(released);
    shard->charged_bytes -= std::min(shard->charged_bytes, released);
    // A vertex whose last edge is deleted keeps its (empty) entry:
    // degree 0 is a real state, and re-insertion stays cheap.
  }

  ChargeCompute(ops);
  skew().RecordKeyAccess(server_index_, /*is_pull=*/false, insert_src);
  skew().RecordKeyAccess(server_index_, /*is_pull=*/false, delete_src);
  metrics().Add("ps.edges_inserted", insert_src.size());
  metrics().Add("ps.edges_deleted", delete_src.size());
  metrics().Observe("ps.mutate.service_ticks",
                    static_cast<uint64_t>(NowTicks() - t0));
  return Status::OK();
}

Status PsServer::PullNeighbors(MatrixId id,
                               std::span<const uint64_t> keys,
                               std::vector<NeighborEntry>* out) {
  const int64_t t0 = NowTicks();
  ScopedSpan span(&tracer(), "ps.pull_nbrs", node_, t0,
                  [this] { return NowTicks(); });
  PSG_ASSIGN_OR_RETURN(MatrixShard * shard, GetShard(id));
  ChargeCompute(keys.size());
  out->reserve(out->size() + keys.size());
  if (shard->csr.has_value()) {
    const CsrStore& csr = *shard->csr;
    // The agent sends each server's keys sorted (GroupKeysByServer), so
    // the binary search sweeps forward from the previous hit instead of
    // restarting over the whole key array — near-linear for a sorted
    // batch. An out-of-order key (direct callers) just resets the sweep.
    auto hint = csr.keys.begin();
    uint64_t prev_key = 0;
    for (uint64_t key : keys) {
      if (key < prev_key) hint = csr.keys.begin();
      prev_key = key;
      auto it = std::lower_bound(hint, csr.keys.end(), key);
      hint = it;
      if (it == csr.keys.end() || *it != key) {
        out->push_back({});
        continue;
      }
      size_t i = static_cast<size_t>(it - csr.keys.begin());
      NeighborEntry entry;
      entry.neighbors.assign(csr.neighbors.begin() + csr.offsets[i],
                             csr.neighbors.begin() + csr.offsets[i + 1]);
      if (!csr.weights.empty()) {
        entry.weights.assign(csr.weights.begin() + csr.offsets[i],
                             csr.weights.begin() + csr.offsets[i + 1]);
      }
      out->push_back(std::move(entry));
    }
  } else {
    for (uint64_t key : keys) {
      auto it = shard->neighbors.find(key);
      if (it != shard->neighbors.end()) {
        out->push_back(it->second);
      } else {
        out->push_back({});
      }
    }
  }
  skew().RecordKeyAccess(server_index_, /*is_pull=*/true, keys);
  metrics().Add("ps.neighbor_entries_pulled", keys.size());
  metrics().Observe("ps.pull_nbrs.service_ticks",
                    static_cast<uint64_t>(NowTicks() - t0));
  return Status::OK();
}

Status PsServer::FreezeNeighbors(MatrixId id) {
  PSG_ASSIGN_OR_RETURN(MatrixShard * shard, GetShard(id));
  if (shard->csr.has_value()) return Status::OK();  // idempotent

  CsrStore csr;
  csr.keys.reserve(shard->neighbors.size());
  for (const auto& [key, entry] : shard->neighbors) {
    csr.keys.push_back(key);
  }
  std::sort(csr.keys.begin(), csr.keys.end());
  csr.offsets.reserve(csr.keys.size() + 1);
  csr.offsets.push_back(0);
  bool weighted = false;
  for (const auto& [_, entry] : shard->neighbors) {
    if (!entry.weights.empty()) weighted = true;
  }
  for (uint64_t key : csr.keys) {
    const NeighborEntry& entry = shard->neighbors.at(key);
    csr.neighbors.insert(csr.neighbors.end(), entry.neighbors.begin(),
                         entry.neighbors.end());
    if (weighted) {
      csr.weights.insert(csr.weights.end(), entry.weights.begin(),
                         entry.weights.end());
      csr.weights.resize(csr.neighbors.size(), 1.0f);  // pad unweighted
    }
    csr.offsets.push_back(csr.neighbors.size());
  }

  // Swap the accounting: charge the CSR image, release the hash map.
  uint64_t old_bytes = 0;
  for (const auto& [_, entry] : shard->neighbors) {
    old_bytes += EntryBytes(entry);
  }
  uint64_t new_bytes = csr.ByteSize();
  PSG_RETURN_NOT_OK(ChargeMemory(new_bytes, "ps csr freeze"));
  shard->charged_bytes += new_bytes;
  ReleaseMemory(old_bytes);
  shard->charged_bytes -= std::min(shard->charged_bytes, old_bytes);
  shard->neighbors.clear();
  shard->csr = std::move(csr);
  ChargeCompute(shard->csr->neighbors.size() / 8 +
                shard->csr->keys.size());
  return Status::OK();
}

Result<ByteBuffer> PsServer::CallFunc(const std::string& name,
                                      const std::vector<uint8_t>& args) {
  PSG_ASSIGN_OR_RETURN(PsFunc fn, PsFuncRegistry::Global().Find(name));
  const int64_t t0 = NowTicks();
  ScopedSpan span(&tracer(), "ps.func." + name, node_, t0,
                  [this] { return NowTicks(); });
  ByteReader reader(args.data(), args.size());
  auto result = fn(*this, reader);
  metrics().Observe("ps.func.service_ticks",
                    static_cast<uint64_t>(NowTicks() - t0));
  return result;
}

Status PsServer::Checkpoint(const std::string& prefix) {
  if (hdfs_ == nullptr) {
    return Status::FailedPrecondition("server has no HDFS attached");
  }
  ByteBuffer buf;
  buf.Write<uint32_t>(kCheckpointMagic);
  buf.Write<uint64_t>(shards_.size());
  for (const auto& [id, shard] : shards_) {
    SerializeMeta(buf, shard.meta);
    buf.Write<uint64_t>(shard.rows.size());
    for (const auto& [key, row] : shard.rows) {
      buf.Write<uint64_t>(key);
      buf.WriteVector(row);
    }
    buf.Write<uint64_t>(shard.neighbors.size());
    for (const auto& [key, entry] : shard.neighbors) {
      buf.Write<uint64_t>(key);
      buf.WriteVector(entry.neighbors);
      buf.WriteVector(entry.weights);
    }
    buf.Write<uint8_t>(shard.csr.has_value() ? 1 : 0);
    if (shard.csr.has_value()) {
      buf.WriteVector(shard.csr->keys);
      buf.WriteVector(shard.csr->offsets);
      buf.WriteVector(shard.csr->neighbors);
      buf.WriteVector(shard.csr->weights);
    }
  }
  metrics().Add("ps.checkpoint_bytes", buf.size());
  const uint64_t bytes = buf.size();
  const int64_t save_t0 = NowTicks();
  Status st = hdfs_->Write(
      prefix + "/server_" + std::to_string(server_index_), buf, node_);
  if (st.ok() && cluster_ != nullptr) {
    // Checkpoint I/O is fault-tolerance overhead, not training compute.
    cluster_->cost_ledger().Record(node_, sim::CostCategory::kRecovery,
                                   NowTicks() - save_t0);
    cluster_->events().Record(sim::JournalEventType::kCheckpointSave,
                              node_, NowTicks(),
                              static_cast<int64_t>(bytes));
  }
  return st;
}

Status PsServer::ExportMatrix(MatrixId id, ByteBuffer* out) {
  auto it = shards_.find(id);
  if (it == shards_.end()) {
    return Status::NotFound("export: no matrix " + std::to_string(id) +
                            " on server " + std::to_string(server_index_));
  }
  const MatrixShard& shard = it->second;
  const int64_t t0 = NowTicks();
  ScopedSpan span(&tracer(), "ps.export", node_, t0,
                  [this] { return NowTicks(); });

  // Wire format v2: sorted keys go out as one delta-encoded varint list,
  // rows as raw fp32 (width = slice_cols, implied), adjacency as
  // delta-encoded neighbor lists + a float block of weights. Sorting
  // both makes the bytes state-deterministic and makes the key deltas
  // small.
  out->Write<uint32_t>(shard.col_begin);
  out->Write<uint32_t>(shard.slice_cols);

  std::vector<uint64_t> keys;
  keys.reserve(shard.rows.size());
  for (const auto& [key, row] : shard.rows) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  PutDeltaList(out, keys);
  for (uint64_t key : keys) {
    const std::vector<float>& row = shard.rows.at(key);
    out->WriteRaw(row.data(), row.size() * sizeof(float));
  }

  if (shard.csr.has_value()) {
    const CsrStore& csr = *shard.csr;
    PutDeltaList(out, csr.keys);
    for (size_t i = 0; i < csr.keys.size(); ++i) {
      const uint64_t begin = csr.offsets[i];
      const uint64_t end = csr.offsets[i + 1];
      PutDeltaList(out, csr.neighbors.data() + begin, end - begin);
      const uint64_t nw = csr.weights.empty() ? 0 : end - begin;
      WriteFloatBlock(out, csr.weights.empty() ? nullptr
                                               : csr.weights.data() + begin,
                      nw);
    }
  } else {
    keys.clear();
    keys.reserve(shard.neighbors.size());
    for (const auto& [key, entry] : shard.neighbors) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    PutDeltaList(out, keys);
    for (uint64_t key : keys) {
      const NeighborEntry& entry = shard.neighbors.at(key);
      PutDeltaList(out, entry.neighbors);
      WriteFloatBlock(out, entry.weights);
    }
  }

  ChargeCompute(out->size());
  metrics().Add("ps.export_bytes", out->size());
  return Status::OK();
}

Status PsServer::Restore(const std::string& prefix) {
  if (hdfs_ == nullptr) {
    return Status::FailedPrecondition("server has no HDFS attached");
  }
  const int64_t restore_t0 = NowTicks();
  PSG_ASSIGN_OR_RETURN(
      std::vector<uint8_t> bytes,
      hdfs_->Read(prefix + "/server_" + std::to_string(server_index_),
                  node_));
  // Drop current state first.
  for (auto& [id, shard] : shards_) ReleaseMemory(shard.charged_bytes);
  shards_.clear();

  ByteReader reader(bytes);
  uint32_t magic = 0;
  PSG_RETURN_NOT_OK(reader.Read(&magic));
  if (magic != kCheckpointMagic) {
    return Status::IoError("corrupt checkpoint for server " +
                           std::to_string(server_index_));
  }
  uint64_t num_matrices = 0;
  PSG_RETURN_NOT_OK(reader.Read(&num_matrices));
  for (uint64_t m = 0; m < num_matrices; ++m) {
    MatrixMeta meta;
    PSG_RETURN_NOT_OK(DeserializeMeta(reader, &meta));
    PSG_RETURN_NOT_OK(InitMatrix(meta));
    MatrixShard& shard = shards_[meta.id];
    uint64_t num_rows = 0;
    PSG_RETURN_NOT_OK(reader.Read(&num_rows));
    const uint64_t row_bytes =
        kHashEntryOverhead + uint64_t{shard.slice_cols} * sizeof(float);
    for (uint64_t i = 0; i < num_rows; ++i) {
      uint64_t key = 0;
      std::vector<float> row;
      PSG_RETURN_NOT_OK(reader.Read(&key));
      PSG_RETURN_NOT_OK(reader.ReadVector(&row));
      PSG_RETURN_NOT_OK(ChargeMemory(row_bytes, "ps restore row"));
      shard.charged_bytes += row_bytes;
      shard.rows.emplace(key, std::move(row));
    }
    uint64_t num_entries = 0;
    PSG_RETURN_NOT_OK(reader.Read(&num_entries));
    for (uint64_t i = 0; i < num_entries; ++i) {
      uint64_t key = 0;
      NeighborEntry entry;
      PSG_RETURN_NOT_OK(reader.Read(&key));
      PSG_RETURN_NOT_OK(reader.ReadVector(&entry.neighbors));
      PSG_RETURN_NOT_OK(reader.ReadVector(&entry.weights));
      uint64_t bytes_e = EntryBytes(entry);
      PSG_RETURN_NOT_OK(ChargeMemory(bytes_e, "ps restore nbrs"));
      shard.charged_bytes += bytes_e;
      shard.neighbors.emplace(key, std::move(entry));
    }
    uint8_t has_csr = 0;
    PSG_RETURN_NOT_OK(reader.Read(&has_csr));
    if (has_csr != 0) {
      CsrStore csr;
      PSG_RETURN_NOT_OK(reader.ReadVector(&csr.keys));
      PSG_RETURN_NOT_OK(reader.ReadVector(&csr.offsets));
      PSG_RETURN_NOT_OK(reader.ReadVector(&csr.neighbors));
      PSG_RETURN_NOT_OK(reader.ReadVector(&csr.weights));
      uint64_t bytes_c = csr.ByteSize();
      PSG_RETURN_NOT_OK(ChargeMemory(bytes_c, "ps restore csr"));
      shard.charged_bytes += bytes_c;
      shard.csr = std::move(csr);
    }
  }
  if (cluster_ != nullptr) {
    // Everything since the HDFS read began (I/O + deserialization) is
    // recovery time, not training compute.
    cluster_->cost_ledger().Record(node_, sim::CostCategory::kRecovery,
                                   NowTicks() - restore_t0);
    cluster_->events().Record(sim::JournalEventType::kCheckpointRestore,
                              node_, NowTicks(),
                              static_cast<int64_t>(bytes.size()));
  }
  return Status::OK();
}

}  // namespace psgraph::ps
