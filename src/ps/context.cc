#include "ps/context.h"

namespace psgraph::ps {

PsContext::PsContext(sim::SimCluster* cluster, net::RpcFabric* fabric,
                     storage::Hdfs* hdfs)
    : cluster_(cluster),
      fabric_(fabric),
      hdfs_(hdfs),
      num_servers_(cluster->config().num_servers) {}

Status PsContext::Start() {
  RegisterBuiltinPsFuncs();
  servers_.clear();
  for (int32_t s = 0; s < num_servers_; ++s) {
    auto server = std::make_unique<PsServer>(s, num_servers_, cluster_,
                                             hdfs_);
    auto endpoint = std::make_shared<net::RpcEndpoint>();
    server->RegisterHandlers(endpoint.get());
    fabric_->Bind(cluster_->config().server(s), endpoint);
    servers_.push_back(std::move(server));
  }
  return Status::OK();
}

PsServer* PsContext::ReplaceServer(int32_t s) {
  auto server =
      std::make_unique<PsServer>(s, num_servers_, cluster_, hdfs_);
  auto endpoint = std::make_shared<net::RpcEndpoint>();
  server->RegisterHandlers(endpoint.get());
  fabric_->Bind(cluster_->config().server(s), endpoint);
  // Re-create all known matrices (empty shards; state comes from the
  // checkpoint restore the master performs next).
  for (const auto& [_, meta] : matrices_) {
    Status st = server->InitMatrix(meta);
    (void)st;  // AlreadyExists cannot happen on a fresh server
  }
  servers_[s] = std::move(server);
  return servers_[s].get();
}

Result<MatrixMeta> PsContext::CreateMatrix(const std::string& name,
                                           uint64_t num_rows,
                                           uint32_t num_cols,
                                           StorageKind kind, Layout layout,
                                           PartitionScheme scheme,
                                           float init_value) {
  if (matrices_.count(name) > 0) {
    return Status::AlreadyExists("matrix '" + name + "' exists");
  }
  if (servers_.empty()) {
    return Status::FailedPrecondition("PsContext::Start() not called");
  }
  MatrixMeta meta;
  meta.id = next_id_++;
  meta.name = name;
  meta.num_rows = num_rows;
  meta.num_cols = num_cols;
  meta.kind = kind;
  meta.layout = layout;
  meta.scheme = scheme;
  meta.init_value = init_value;
  for (auto& server : servers_) {
    PSG_RETURN_NOT_OK(server->InitMatrix(meta));
  }
  matrices_[name] = meta;
  return meta;
}

Result<MatrixMeta> PsContext::GetMatrix(const std::string& name) const {
  auto it = matrices_.find(name);
  if (it == matrices_.end()) {
    return Status::NotFound("matrix '" + name + "' does not exist");
  }
  return it->second;
}

Status PsContext::DropMatrix(const std::string& name) {
  auto it = matrices_.find(name);
  if (it == matrices_.end()) {
    return Status::NotFound("matrix '" + name + "' does not exist");
  }
  for (auto& server : servers_) {
    Status st = server->DropMatrix(it->second.id);
    if (!st.ok() && !st.IsNotFound()) return st;
  }
  matrices_.erase(it);
  return Status::OK();
}

}  // namespace psgraph::ps
