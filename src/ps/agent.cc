#include "ps/agent.h"

#include <algorithm>
#include <span>

#include "common/varint.h"
#include "common/wire.h"
#include "net/ps_wire.h"
#include "ps/partitioner.h"
#include "ps/replication.h"

namespace psgraph::ps {

namespace {
using ParallelCall = net::RpcFabric::ParallelCall;

/// Bytes the v1 fixed-width framing would have used for a key batch:
/// [i32 matrix id][u64 count][count * u64 keys].
uint64_t RawKeyFramingBytes(size_t num_keys) {
  return 4 + 8 + 8 * static_cast<uint64_t>(num_keys);
}

/// Bytes the v1 framing would have used for a float vector:
/// [u64 count][count * fp32].
uint64_t RawFloatFramingBytes(size_t num_floats) {
  return 8 + 4 * static_cast<uint64_t>(num_floats);
}
}

Result<std::vector<uint8_t>> PsAgent::Call(int32_t server,
                                           const std::string& method,
                                           const ByteBuffer& req) {
  return ctx_->fabric()->Call(node_, ctx_->ServerNode(server), method, req);
}

std::vector<std::vector<uint32_t>> PsAgent::GroupKeysByServer(
    const MatrixMeta& meta, const std::vector<uint64_t>& keys) const {
  // Sort-and-sweep grouping: one hoisted partitioner (not one per key), a
  // counting pass to pre-size each bucket exactly, then each server's
  // index list is stable-sorted by key. Sorted per-server requests let
  // the server walk its frozen CSR monotonically instead of restarting
  // the binary search per key; stability keeps duplicate keys in arrival
  // order, so the float-add order of push_add is unchanged.
  const int32_t num_servers = ctx_->num_servers();
  Partitioner part(meta.scheme, meta.num_rows, num_servers);
  std::vector<uint32_t> server_of(keys.size());
  std::vector<uint32_t> counts(num_servers, 0);
  for (uint32_t i = 0; i < keys.size(); ++i) {
    uint32_t s = static_cast<uint32_t>(part.PartitionOf(keys[i]));
    server_of[i] = s;
    ++counts[s];
  }
  std::vector<std::vector<uint32_t>> by_server(num_servers);
  for (int32_t s = 0; s < num_servers; ++s) by_server[s].reserve(counts[s]);
  for (uint32_t i = 0; i < keys.size(); ++i) {
    by_server[server_of[i]].push_back(i);
  }
  for (auto& idxs : by_server) {
    std::stable_sort(idxs.begin(), idxs.end(), [&](uint32_t a, uint32_t b) {
      return keys[a] < keys[b];
    });
  }
  return by_server;
}

Result<std::vector<float>> PsAgent::PullRows(
    const MatrixMeta& meta, const std::vector<uint64_t>& keys) {
  if (meta.layout == Layout::kColumnPartitioned) {
    return PullRowsColumnPartitioned(meta, keys);
  }
  if (replicas_ == nullptr || !replicas_->Serving(meta.id)) {
    return PullRowsRemote(meta, keys);
  }
  // Skew-aware path: hot keys served from the executor-local replica
  // (plus this executor's own pending deltas), only the cold tail
  // crosses the wire. Output slots are scattered back by original index
  // so the caller sees the exact key-order contract of the remote path.
  replicas_->RecordAccess(meta.id, keys);
  const uint32_t cols = meta.num_cols;
  std::vector<float> out(keys.size() * cols, 0.0f);
  std::vector<uint64_t> cold_keys;
  std::vector<uint32_t> cold_idx;
  uint64_t local = 0;
  for (uint32_t i = 0; i < keys.size(); ++i) {
    if (replicas_->ServePull(meta.id, keys[i],
                             out.data() + uint64_t{i} * cols)) {
      ++local;
    } else {
      cold_keys.push_back(keys[i]);
      cold_idx.push_back(i);
    }
  }
  if (local > 0) metrics().Add("ps.replica.local_pull_rows", local);
  if (cold_keys.empty()) return out;
  PSG_ASSIGN_OR_RETURN(auto cold, PullRowsRemote(meta, cold_keys));
  for (size_t j = 0; j < cold_idx.size(); ++j) {
    std::copy(cold.begin() + j * cols, cold.begin() + (j + 1) * cols,
              out.begin() + uint64_t{cold_idx[j]} * cols);
  }
  return out;
}

Result<std::vector<float>> PsAgent::PullRowsRemote(
    const MatrixMeta& meta, const std::vector<uint64_t>& keys) {
  const uint32_t cols = meta.num_cols;
  std::vector<float> out(keys.size() * cols, 0.0f);
  const int64_t t0 = NowTicks();
  ScopedSpan span(&tracer(), "agent.pull", node_, t0,
                  [this] { return NowTicks(); });
  auto by_server = GroupKeysByServer(meta, keys);

  std::vector<ParallelCall> calls;
  std::vector<int32_t> call_server;
  for (int32_t s = 0; s < ctx_->num_servers(); ++s) {
    if (by_server[s].empty()) continue;
    std::vector<uint64_t> server_keys;
    server_keys.reserve(by_server[s].size());
    for (uint32_t idx : by_server[s]) server_keys.push_back(keys[idx]);
    ByteBuffer req;
    req.Write<MatrixId>(meta.id);
    PutDeltaList(&req, server_keys);
    metrics().Add("wire.pull.req_bytes", req.size());
    metrics().Add("wire.pull.req_raw_bytes",
                  RawKeyFramingBytes(server_keys.size()));
    calls.push_back({ctx_->ServerNode(s), "ps.pull", std::move(req)});
    call_server.push_back(s);
  }
  metrics().Observe("agent.pull.fanout", calls.size());
  PSG_ASSIGN_OR_RETURN(auto responses,
                       ctx_->fabric()->CallParallel(node_, std::move(calls)));
  metrics().Observe("agent.pull.latency_ticks",
                    static_cast<uint64_t>(NowTicks() - t0));
  for (size_t c = 0; c < responses.size(); ++c) {
    int32_t s = call_server[c];
    ByteReader reader(responses[c]);
    std::vector<float> values;
    PSG_RETURN_NOT_OK(ReadFloatBlock(&reader, &values));
    metrics().Add("wire.pull.resp_bytes", responses[c].size());
    metrics().Add("wire.pull.resp_raw_bytes",
                  RawFloatFramingBytes(values.size()));
    if (values.size() != by_server[s].size() * cols) {
      return Status::Internal("pull: short response from server " +
                              std::to_string(s));
    }
    for (size_t j = 0; j < by_server[s].size(); ++j) {
      std::copy(values.begin() + j * cols, values.begin() + (j + 1) * cols,
                out.begin() + uint64_t{by_server[s][j]} * cols);
    }
  }
  return out;
}

Result<std::vector<float>> PsAgent::PullRowsColumnPartitioned(
    const MatrixMeta& meta, const std::vector<uint64_t>& keys) {
  const uint32_t cols = meta.num_cols;
  std::vector<float> out(keys.size() * cols, 0.0f);
  const int64_t t0 = NowTicks();
  ScopedSpan span(&tracer(), "agent.pull", node_, t0,
                  [this] { return NowTicks(); });
  ByteBuffer req;
  req.Write<MatrixId>(meta.id);
  PutDeltaList(&req, keys);

  std::vector<ParallelCall> calls;
  std::vector<int32_t> call_server;
  for (int32_t s = 0; s < ctx_->num_servers(); ++s) {
    auto [begin, end] = ColumnSliceOf(cols, s, ctx_->num_servers());
    if (begin == end) continue;
    // The full key list is replicated to every slice holder, so each
    // call pays (and each raw-equivalent counts) the whole list.
    metrics().Add("wire.pull.req_bytes", req.size());
    metrics().Add("wire.pull.req_raw_bytes", RawKeyFramingBytes(keys.size()));
    calls.push_back({ctx_->ServerNode(s), "ps.pull", req});
    call_server.push_back(s);
  }
  metrics().Observe("agent.pull.fanout", calls.size());
  PSG_ASSIGN_OR_RETURN(auto responses,
                       ctx_->fabric()->CallParallel(node_, std::move(calls)));
  metrics().Observe("agent.pull.latency_ticks",
                    static_cast<uint64_t>(NowTicks() - t0));
  for (size_t c = 0; c < responses.size(); ++c) {
    int32_t s = call_server[c];
    auto [begin, end] = ColumnSliceOf(cols, s, ctx_->num_servers());
    ByteReader reader(responses[c]);
    std::vector<float> values;
    PSG_RETURN_NOT_OK(ReadFloatBlock(&reader, &values));
    metrics().Add("wire.pull.resp_bytes", responses[c].size());
    metrics().Add("wire.pull.resp_raw_bytes",
                  RawFloatFramingBytes(values.size()));
    const uint32_t width = end - begin;
    if (values.size() != keys.size() * width) {
      return Status::Internal("column pull: short response");
    }
    for (size_t i = 0; i < keys.size(); ++i) {
      std::copy(values.begin() + i * width,
                values.begin() + (i + 1) * width,
                out.begin() + i * cols + begin);
    }
  }
  return out;
}

Status PsAgent::Push(const MatrixMeta& meta,
                     const std::vector<uint64_t>& keys,
                     const std::vector<float>& values, bool add) {
  const uint32_t cols = meta.num_cols;
  if (values.size() != keys.size() * cols) {
    return Status::InvalidArgument("push: values size mismatch");
  }
  if (replicas_ == nullptr || !replicas_->Serving(meta.id) ||
      meta.layout == Layout::kColumnPartitioned) {
    return PushRemote(meta, keys, values, add);
  }
  replicas_->RecordAccess(meta.id, keys);
  if (add) {
    // Hot adds accumulate into the local delta row (merged home at the
    // next barrier); only the cold tail crosses the wire.
    std::vector<uint64_t> cold_keys;
    std::vector<float> cold_values;
    uint64_t local = 0;
    for (uint32_t i = 0; i < keys.size(); ++i) {
      const float* row = values.data() + uint64_t{i} * cols;
      if (replicas_->AbsorbAdd(meta.id, keys[i], row)) {
        ++local;
      } else {
        cold_keys.push_back(keys[i]);
        cold_values.insert(cold_values.end(), row, row + cols);
      }
    }
    if (local > 0) metrics().Add("ps.replica.local_push_rows", local);
    if (cold_keys.empty()) return Status::OK();
    return PushRemote(meta, cold_keys, cold_values, /*add=*/true);
  }
  // Assign writes through: the home shard gets the row now (assign is
  // not commutative, so it cannot sit in a delta), and the replica is
  // overwritten so subsequent hot pulls see it.
  PSG_RETURN_NOT_OK(PushRemote(meta, keys, values, /*add=*/false));
  for (uint32_t i = 0; i < keys.size(); ++i) {
    replicas_->ApplyAssign(meta.id, keys[i],
                           values.data() + uint64_t{i} * cols);
  }
  return Status::OK();
}

Status PsAgent::PushRemote(const MatrixMeta& meta,
                           const std::vector<uint64_t>& keys,
                           const std::vector<float>& values, bool add) {
  const uint32_t cols = meta.num_cols;
  const char* method = add ? "ps.push_add" : "ps.push_assign";
  const int64_t t0 = NowTicks();
  ScopedSpan span(&tracer(), "agent.push", node_, t0,
                  [this] { return NowTicks(); });
  std::vector<ParallelCall> calls;
  if (meta.layout == Layout::kColumnPartitioned) {
    if (!add) {
      return Status::NotImplemented(
          "push_assign on column-partitioned matrices");
    }
    for (int32_t s = 0; s < ctx_->num_servers(); ++s) {
      auto [begin, end] = ColumnSliceOf(cols, s, ctx_->num_servers());
      if (begin == end) continue;
      const uint32_t width = end - begin;
      std::vector<float> slice(keys.size() * width);
      for (size_t i = 0; i < keys.size(); ++i) {
        std::copy(values.begin() + i * cols + begin,
                  values.begin() + i * cols + end,
                  slice.begin() + i * width);
      }
      ByteBuffer req;
      req.Write<MatrixId>(meta.id);
      PutDeltaList(&req, keys);
      WriteFloatBlock(&req, slice);
      metrics().Add("wire.push.req_bytes", req.size());
      metrics().Add("wire.push.req_raw_bytes",
                    RawKeyFramingBytes(keys.size()) +
                        RawFloatFramingBytes(slice.size()));
      calls.push_back({ctx_->ServerNode(s), method, std::move(req)});
    }
  } else {
    auto by_server = GroupKeysByServer(meta, keys);
    for (int32_t s = 0; s < ctx_->num_servers(); ++s) {
      if (by_server[s].empty()) continue;
      std::vector<uint64_t> server_keys;
      std::vector<float> server_values;
      server_keys.reserve(by_server[s].size());
      server_values.reserve(by_server[s].size() * cols);
      for (uint32_t idx : by_server[s]) {
        server_keys.push_back(keys[idx]);
        server_values.insert(server_values.end(),
                             values.begin() + uint64_t{idx} * cols,
                             values.begin() + uint64_t{idx + 1} * cols);
      }
      ByteBuffer req;
      req.Write<MatrixId>(meta.id);
      PutDeltaList(&req, server_keys);
      WriteFloatBlock(&req, server_values);
      metrics().Add("wire.push.req_bytes", req.size());
      metrics().Add("wire.push.req_raw_bytes",
                    RawKeyFramingBytes(server_keys.size()) +
                        RawFloatFramingBytes(server_values.size()));
      calls.push_back({ctx_->ServerNode(s), method, std::move(req)});
    }
  }
  metrics().Observe("agent.push.fanout", calls.size());
  PSG_ASSIGN_OR_RETURN(auto responses,
                       ctx_->fabric()->CallParallel(node_, std::move(calls)));
  metrics().Observe("agent.push.latency_ticks",
                    static_cast<uint64_t>(NowTicks() - t0));
  (void)responses;
  return Status::OK();
}

Status PsAgent::PushAdd(const MatrixMeta& meta,
                        const std::vector<uint64_t>& keys,
                        const std::vector<float>& values) {
  return Push(meta, keys, values, /*add=*/true);
}

Status PsAgent::PushAssign(const MatrixMeta& meta,
                           const std::vector<uint64_t>& keys,
                           const std::vector<float>& values) {
  return Push(meta, keys, values, /*add=*/false);
}

Status PsAgent::PushNeighbors(
    const MatrixMeta& meta,
    const std::vector<graph::NeighborList>& tables) {
  const int64_t t0 = NowTicks();
  ScopedSpan span(&tracer(), "agent.push_nbrs", node_, t0,
                  [this] { return NowTicks(); });
  std::vector<std::vector<uint32_t>> by_server(ctx_->num_servers());
  Partitioner part(meta.scheme, meta.num_rows, ctx_->num_servers());
  for (uint32_t i = 0; i < tables.size(); ++i) {
    by_server[part.PartitionOf(tables[i].vertex)].push_back(i);
  }
  std::vector<ParallelCall> calls;
  for (int32_t s = 0; s < ctx_->num_servers(); ++s) {
    if (by_server[s].empty()) continue;
    std::vector<uint64_t> keys;
    keys.reserve(by_server[s].size());
    for (uint32_t idx : by_server[s]) keys.push_back(tables[idx].vertex);
    ByteBuffer req;
    req.Write<MatrixId>(meta.id);
    PutDeltaList(&req, keys);
    for (uint32_t idx : by_server[s]) {
      PutDeltaList(&req, tables[idx].neighbors);
      WriteFloatBlock(&req, tables[idx].weights);
    }
    calls.push_back({ctx_->ServerNode(s), "ps.push_nbrs", std::move(req)});
  }
  metrics().Observe("agent.push_nbrs.fanout", calls.size());
  PSG_ASSIGN_OR_RETURN(auto responses,
                       ctx_->fabric()->CallParallel(node_, std::move(calls)));
  metrics().Observe("agent.push_nbrs.latency_ticks",
                    static_cast<uint64_t>(NowTicks() - t0));
  (void)responses;
  return Status::OK();
}

Status PsAgent::MutateNeighbors(const MatrixMeta& meta,
                                const std::vector<EdgeMutation>& mutations,
                                bool weighted) {
  if (mutations.empty()) return Status::OK();
  const int64_t t0 = NowTicks();
  ScopedSpan span(&tracer(), "agent.mutate", node_, t0,
                  [this] { return NowTicks(); });
  // Group by the server owning each mutation's SOURCE vertex (adjacency
  // is row-partitioned by src, like push_nbrs/pull_nbrs).
  Partitioner part(meta.scheme, meta.num_rows, ctx_->num_servers());
  std::vector<std::vector<uint32_t>> by_server(ctx_->num_servers());
  for (uint32_t i = 0; i < mutations.size(); ++i) {
    by_server[part.PartitionOf(mutations[i].src)].push_back(i);
  }
  std::vector<ParallelCall> calls;
  for (int32_t s = 0; s < ctx_->num_servers(); ++s) {
    if (by_server[s].empty()) continue;
    // Apply order must be a function of the batch *set*: split by op
    // kind and sort each side by (src, dst). Legal because an epoch
    // batch never carries the same edge twice.
    net::MutateRequest wire_req;
    wire_req.matrix = meta.id;
    std::vector<uint32_t> ins = by_server[s], del;
    ins.erase(std::remove_if(ins.begin(), ins.end(),
                             [&](uint32_t i) {
                               return !mutations[i].insert;
                             }),
              ins.end());
    for (uint32_t i : by_server[s]) {
      if (!mutations[i].insert) del.push_back(i);
    }
    auto by_edge = [&](uint32_t a, uint32_t b) {
      return mutations[a].src != mutations[b].src
                 ? mutations[a].src < mutations[b].src
                 : mutations[a].dst < mutations[b].dst;
    };
    std::sort(ins.begin(), ins.end(), by_edge);
    std::sort(del.begin(), del.end(), by_edge);
    for (uint32_t i : ins) {
      wire_req.insert_src.push_back(mutations[i].src);
      wire_req.insert_dst.push_back(mutations[i].dst);
      if (weighted) wire_req.insert_weights.push_back(mutations[i].weight);
    }
    for (uint32_t i : del) {
      wire_req.delete_src.push_back(mutations[i].src);
      wire_req.delete_dst.push_back(mutations[i].dst);
    }
    ByteBuffer req;
    net::EncodeMutateRequest(wire_req, &req);
    metrics().Add("wire.mutate.req_bytes", req.size());
    // Raw equivalent: v1 key framing for both src lists, bare u64 dst
    // per op, float block for weights.
    metrics().Add(
        "wire.mutate.req_raw_bytes",
        RawKeyFramingBytes(ins.size()) + RawKeyFramingBytes(del.size()) +
            8 * (static_cast<uint64_t>(ins.size()) + del.size()) +
            RawFloatFramingBytes(wire_req.insert_weights.size()));
    calls.push_back({ctx_->ServerNode(s), "ps.mutate", std::move(req)});
  }
  metrics().Observe("agent.mutate.fanout", calls.size());
  PSG_ASSIGN_OR_RETURN(auto responses,
                       ctx_->fabric()->CallParallel(node_, std::move(calls)));
  metrics().Observe("agent.mutate.latency_ticks",
                    static_cast<uint64_t>(NowTicks() - t0));
  (void)responses;
  metrics().Add("agent.mutations_sent", mutations.size());
  return Status::OK();
}

Status PsAgent::FreezeNeighbors(const MatrixMeta& meta) {
  std::vector<ParallelCall> calls;
  calls.reserve(ctx_->num_servers());
  for (int32_t s = 0; s < ctx_->num_servers(); ++s) {
    ByteBuffer req;
    req.Write<MatrixId>(meta.id);
    calls.push_back({ctx_->ServerNode(s), "ps.freeze_nbrs",
                     std::move(req)});
  }
  PSG_ASSIGN_OR_RETURN(auto responses,
                       ctx_->fabric()->CallParallel(node_, std::move(calls)));
  (void)responses;
  return Status::OK();
}

Result<std::vector<NeighborEntry>> PsAgent::PullNeighbors(
    const MatrixMeta& meta, const std::vector<uint64_t>& keys) {
  std::vector<NeighborEntry> out(keys.size());
  const int64_t t0 = NowTicks();
  ScopedSpan span(&tracer(), "agent.pull_nbrs", node_, t0,
                  [this] { return NowTicks(); });
  auto by_server = GroupKeysByServer(meta, keys);
  std::vector<ParallelCall> calls;
  std::vector<int32_t> call_server;
  for (int32_t s = 0; s < ctx_->num_servers(); ++s) {
    if (by_server[s].empty()) continue;
    std::vector<uint64_t> server_keys;
    server_keys.reserve(by_server[s].size());
    for (uint32_t idx : by_server[s]) server_keys.push_back(keys[idx]);
    ByteBuffer req;
    req.Write<MatrixId>(meta.id);
    PutDeltaList(&req, server_keys);
    calls.push_back({ctx_->ServerNode(s), "ps.pull_nbrs", std::move(req)});
    call_server.push_back(s);
  }
  metrics().Observe("agent.pull_nbrs.fanout", calls.size());
  PSG_ASSIGN_OR_RETURN(auto responses,
                       ctx_->fabric()->CallParallel(node_, std::move(calls)));
  metrics().Observe("agent.pull_nbrs.latency_ticks",
                    static_cast<uint64_t>(NowTicks() - t0));
  for (size_t c = 0; c < responses.size(); ++c) {
    int32_t s = call_server[c];
    ByteReader reader(responses[c]);
    for (uint32_t idx : by_server[s]) {
      PSG_RETURN_NOT_OK(GetDeltaList(&reader, &out[idx].neighbors));
      PSG_RETURN_NOT_OK(ReadFloatBlock(&reader, &out[idx].weights));
    }
  }
  return out;
}

Result<std::vector<uint8_t>> PsAgent::CallFunc(int32_t server,
                                               const std::string& name,
                                               const ByteBuffer& args) {
  ByteBuffer req;
  req.WriteString(name);
  req.WriteRaw(args.data().data(), args.size());
  return Call(server, "ps.func", req);
}

Result<std::vector<std::vector<uint8_t>>> PsAgent::CallFuncAll(
    const std::string& name, const ByteBuffer& args) {
  ByteBuffer req;
  req.WriteString(name);
  req.WriteRaw(args.data().data(), args.size());
  std::vector<ParallelCall> calls;
  calls.reserve(ctx_->num_servers());
  for (int32_t s = 0; s < ctx_->num_servers(); ++s) {
    calls.push_back({ctx_->ServerNode(s), "ps.func", req});
  }
  const int64_t t0 = NowTicks();
  ScopedSpan span(&tracer(), "agent.func", node_, t0,
                  [this] { return NowTicks(); });
  metrics().Observe("agent.func.fanout", calls.size());
  auto responses = ctx_->fabric()->CallParallel(node_, std::move(calls));
  metrics().Observe("agent.func.latency_ticks",
                    static_cast<uint64_t>(NowTicks() - t0));
  return responses;
}

Result<double> PsAgent::CallFuncSum(const std::string& name,
                                    const ByteBuffer& args) {
  PSG_ASSIGN_OR_RETURN(auto responses, CallFuncAll(name, args));
  double sum = 0.0;
  for (const auto& resp : responses) {
    ByteReader reader(resp.data(), resp.size());
    double v = 0.0;
    PSG_RETURN_NOT_OK(reader.Read(&v));
    sum += v;
  }
  return sum;
}

Result<std::vector<double>> PsAgent::DotProducts(
    const MatrixMeta& a, const MatrixMeta& b,
    const std::vector<std::pair<uint64_t, uint64_t>>& pairs) {
  std::vector<uint64_t> flat;
  flat.reserve(pairs.size() * 2);
  for (const auto& [i, j] : pairs) {
    flat.push_back(i);
    flat.push_back(j);
  }
  ByteBuffer args;
  args.Write<MatrixId>(a.id);
  args.Write<MatrixId>(b.id);
  PutDeltaList(&args, flat);
  ByteBuffer req;
  req.WriteString("dot.partial");
  req.WriteRaw(args.data().data(), args.size());
  // Raw-equivalent: the same request with the pair list in the v1
  // fixed-width vector framing instead of the delta list.
  const uint64_t req_raw = req.size() -
                           DeltaListSize(flat.data(), flat.size()) + 8 +
                           8 * static_cast<uint64_t>(flat.size());

  std::vector<ParallelCall> calls;
  for (int32_t s = 0; s < ctx_->num_servers(); ++s) {
    auto [begin, end] = ColumnSliceOf(a.num_cols, s, ctx_->num_servers());
    if (begin == end) continue;
    metrics().Add("wire.func.req_bytes", req.size());
    metrics().Add("wire.func.req_raw_bytes", req_raw);
    calls.push_back({ctx_->ServerNode(s), "ps.func", req});
  }
  PSG_ASSIGN_OR_RETURN(auto responses,
                       ctx_->fabric()->CallParallel(node_, std::move(calls)));
  std::vector<double> dots(pairs.size(), 0.0);
  for (const auto& resp : responses) {
    ByteReader reader(resp.data(), resp.size());
    std::vector<double> partial;
    PSG_RETURN_NOT_OK(reader.ReadVector(&partial));
    if (partial.size() != dots.size()) {
      return Status::Internal("dot.partial: size mismatch");
    }
    for (size_t p = 0; p < dots.size(); ++p) dots[p] += partial[p];
  }
  return dots;
}

Status PsAgent::MergeRows(const MatrixMeta& meta, int32_t server,
                          const std::vector<uint64_t>& keys,
                          const std::vector<float>& deltas) {
  if (deltas.size() != keys.size() * meta.num_cols) {
    return Status::InvalidArgument("merge: deltas size mismatch");
  }
  if (keys.empty()) return Status::OK();
  const int64_t t0 = NowTicks();
  ScopedSpan span(&tracer(), "agent.merge", node_, t0,
                  [this] { return NowTicks(); });
  net::MergeRequest merge;
  merge.matrix = meta.id;
  merge.keys = keys;
  merge.deltas = deltas;
  ByteBuffer req;
  net::EncodeMergeRequest(merge, &req);
  metrics().Add("wire.merge.req_bytes", req.size());
  metrics().Add("wire.merge.req_raw_bytes",
                RawKeyFramingBytes(keys.size()) +
                    RawFloatFramingBytes(deltas.size()));
  PSG_ASSIGN_OR_RETURN(auto resp, Call(server, "ps.merge", req));
  (void)resp;
  metrics().Observe("agent.merge.latency_ticks",
                    static_cast<uint64_t>(NowTicks() - t0));
  return Status::OK();
}

Result<SampledRows> PsAgent::SampleRows(const MatrixMeta& meta, uint32_t k,
                                        uint64_t seed) {
  const uint32_t cols = meta.num_cols;
  SampledRows out;
  net::DeriveSampleKeys(seed, k, meta.num_rows, &out.keys);
  out.values.assign(uint64_t{k} * cols, 0.0f);
  if (k == 0) return out;
  const int64_t t0 = NowTicks();
  ScopedSpan span(&tracer(), "agent.sample", node_, t0,
                  [this] { return NowTicks(); });
  net::SampleRequest sample{meta.id, k, seed};
  ByteBuffer req;
  net::EncodeSampleRequest(sample, &req);

  const int32_t num_servers = ctx_->num_servers();
  std::vector<ParallelCall> calls;
  std::vector<int32_t> call_server;
  if (meta.layout == Layout::kColumnPartitioned) {
    for (int32_t s = 0; s < num_servers; ++s) {
      auto [begin, end] = ColumnSliceOf(cols, s, num_servers);
      if (begin == end) continue;
      metrics().Add("wire.sample.req_bytes", req.size());
      metrics().Add("wire.sample.req_raw_bytes", RawKeyFramingBytes(k));
      calls.push_back({ctx_->ServerNode(s), "ps.sample", req});
      call_server.push_back(s);
    }
  } else {
    // Only servers that home at least one derived position are
    // contacted; the raw-equivalent is shipping that server's owned
    // keys under the v1 framing.
    Partitioner part(meta.scheme, meta.num_rows, num_servers);
    std::vector<uint32_t> owned(num_servers, 0);
    for (uint64_t key : out.keys) ++owned[part.PartitionOf(key)];
    for (int32_t s = 0; s < num_servers; ++s) {
      if (owned[s] == 0) continue;
      metrics().Add("wire.sample.req_bytes", req.size());
      metrics().Add("wire.sample.req_raw_bytes",
                    RawKeyFramingBytes(owned[s]));
      calls.push_back({ctx_->ServerNode(s), "ps.sample", req});
      call_server.push_back(s);
    }
  }
  metrics().Observe("agent.sample.fanout", calls.size());
  PSG_ASSIGN_OR_RETURN(auto responses,
                       ctx_->fabric()->CallParallel(node_, std::move(calls)));
  metrics().Observe("agent.sample.latency_ticks",
                    static_cast<uint64_t>(NowTicks() - t0));
  for (size_t c = 0; c < responses.size(); ++c) {
    int32_t s = call_server[c];
    ByteReader reader(responses[c]);
    std::vector<float> values;
    PSG_RETURN_NOT_OK(net::DecodeSampleResponse(&reader, &values));
    metrics().Add("wire.sample.resp_bytes", responses[c].size());
    metrics().Add("wire.sample.resp_raw_bytes",
                  RawFloatFramingBytes(values.size()));
    if (meta.layout == Layout::kColumnPartitioned) {
      auto [begin, end] = ColumnSliceOf(cols, s, num_servers);
      const uint32_t width = end - begin;
      if (values.size() != uint64_t{k} * width) {
        return Status::Internal("sample: short response from server " +
                                std::to_string(s));
      }
      for (uint32_t i = 0; i < k; ++i) {
        std::copy(values.begin() + uint64_t{i} * width,
                  values.begin() + uint64_t{i + 1} * width,
                  out.values.begin() + uint64_t{i} * cols + begin);
      }
    } else {
      // The server replied with its owned positions in derivation
      // order; re-derive that subsequence here to scatter rows back.
      Partitioner part(meta.scheme, meta.num_rows, num_servers);
      size_t j = 0;
      for (uint32_t i = 0; i < k; ++i) {
        if (part.PartitionOf(out.keys[i]) != s) continue;
        if ((j + 1) * cols > values.size()) {
          return Status::Internal("sample: short response from server " +
                                  std::to_string(s));
        }
        std::copy(values.begin() + j * cols,
                  values.begin() + (j + 1) * cols,
                  out.values.begin() + uint64_t{i} * cols);
        ++j;
      }
      if (j * cols != values.size()) {
        return Status::Internal("sample: excess rows from server " +
                                std::to_string(s));
      }
    }
  }
  return out;
}

}  // namespace psgraph::ps
