// PsAgent: the per-executor client of the parameter server (paper §III-C
// "PS agent"). Resolves which server owns each key via the PSContext
// partition layout, batches requests per server, issues RPCs, and
// reassembles responses in input order.

#ifndef PSGRAPH_PS_AGENT_H_
#define PSGRAPH_PS_AGENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "common/trace.h"
#include "graph/types.h"
#include "ps/context.h"

namespace psgraph::ps {

class ReplicaCache;

/// Result of a sample-K access: the derived key sequence (positions may
/// repeat — sampling is with replacement) and keys.size() * num_cols
/// floats in derivation order.
struct SampledRows {
  std::vector<uint64_t> keys;
  std::vector<float> values;
};

/// One streamed edge delta (the GraphStreamingCC INSERT/DELETE shape):
/// INSERT appends `dst` to `src`'s adjacency list, DELETE removes it.
struct EdgeMutation {
  uint64_t src = 0;
  uint64_t dst = 0;
  float weight = 1.0f;  ///< used only on weighted tables
  bool insert = true;
};

class PsAgent {
 public:
  /// `executor_node` is the sim node the agent runs on (RPC cost is
  /// charged between it and the servers).
  PsAgent(PsContext* context, sim::NodeId executor_node)
      : ctx_(context), node_(executor_node) {}

  sim::NodeId node() const { return node_; }

  /// Installs this executor's hot-key replica cache (owned by the
  /// ReplicationManager; nullptr detaches). When set, pulls/pushes of a
  /// tracked matrix consult it first and only cold keys cross the wire.
  void set_replica_cache(ReplicaCache* cache) { replicas_ = cache; }
  ReplicaCache* replica_cache() const { return replicas_; }

  /// Pulls rows of a row-partitioned matrix; the result holds
  /// keys.size() * num_cols floats in key order (init values for rows
  /// never pushed).
  Result<std::vector<float>> PullRows(const MatrixMeta& meta,
                                      const std::vector<uint64_t>& keys);

  /// values must hold keys.size() * num_cols floats (full rows).
  Status PushAdd(const MatrixMeta& meta, const std::vector<uint64_t>& keys,
                 const std::vector<float>& values);
  Status PushAssign(const MatrixMeta& meta,
                    const std::vector<uint64_t>& keys,
                    const std::vector<float>& values);

  /// Pushes neighbor tables (bulk load after the groupBy step).
  Status PushNeighbors(const MatrixMeta& meta,
                       const std::vector<graph::NeighborList>& tables);

  /// Applies one epoch batch of edge deltas to the neighbor shards via
  /// "ps.mutate". A batch must not carry the same (src, dst) edge twice
  /// (the stream MutationLog dedupes per epoch); the servers apply all
  /// inserts before all deletes in (src, dst) order, so the resulting
  /// adjacency is a function of the batch set, not its arrival order.
  /// Errors (duplicate INSERT, DELETE of a nonexistent edge, frozen
  /// shard) surface loudly from the owning server.
  Status MutateNeighbors(const MatrixMeta& meta,
                         const std::vector<EdgeMutation>& mutations,
                         bool weighted = false);
  /// Pulls adjacency for `keys`, in key order (empty for unknown).
  Result<std::vector<NeighborEntry>> PullNeighbors(
      const MatrixMeta& meta, const std::vector<uint64_t>& keys);

  /// Freezes the neighbor shards of `meta` into compact CSR images on
  /// every server (read-only afterwards).
  Status FreezeNeighbors(const MatrixMeta& meta);

  /// Calls a psFunc on one server.
  Result<std::vector<uint8_t>> CallFunc(int32_t server,
                                        const std::string& name,
                                        const ByteBuffer& args);
  /// Calls a psFunc on every server; responses in server order.
  Result<std::vector<std::vector<uint8_t>>> CallFuncAll(
      const std::string& name, const ByteBuffer& args);

  /// Sums the "[double]" responses of a psFunc across servers (e.g.
  /// l1_norm, pagerank.advance).
  Result<double> CallFuncSum(const std::string& name,
                             const ByteBuffer& args);

  /// Full dot products a.row(i) . b.row(j) for column-partitioned
  /// matrices: every server computes its partial over its column slice
  /// and the agent merges (paper §IV-D).
  Result<std::vector<double>> DotProducts(
      const MatrixMeta& a, const MatrixMeta& b,
      const std::vector<std::pair<uint64_t, uint64_t>>& pairs);

  /// Column-partitioned pull: fetches each server's slice and
  /// concatenates them into full rows in key order.
  Result<std::vector<float>> PullRowsColumnPartitioned(
      const MatrixMeta& meta, const std::vector<uint64_t>& keys);

  /// Sends accumulated replica deltas for keys homed on `server` over
  /// "ps.merge". `keys` must be ascending and owned by that server;
  /// `deltas` holds keys.size() * num_cols floats.
  Status MergeRows(const MatrixMeta& meta, int32_t server,
                   const std::vector<uint64_t>& keys,
                   const std::vector<float>& deltas);

  /// Sample-K access ("ps.sample"): derives k keys from `seed` on both
  /// sides of the wire, so the request is constant-size regardless of k.
  /// Serves negative sampling — rows come back in derivation order with
  /// init values for rows never pushed.
  Result<SampledRows> SampleRows(const MatrixMeta& meta, uint32_t k,
                                 uint64_t seed);

 private:
  /// Observability sinks of the owning context's cluster (globals when
  /// the context was built without one, which only happens in tests).
  Metrics& metrics() const {
    return ctx_->cluster() != nullptr ? ctx_->cluster()->metrics()
                                      : Metrics::Global();
  }
  Tracer& tracer() const {
    return ctx_->cluster() != nullptr ? ctx_->cluster()->tracer()
                                      : Tracer::Global();
  }
  /// Executor-clock reading bracketing an end-to-end agent operation:
  /// CallParallel advances the caller clock to the slowest call's
  /// completion, so Now - t0 is the simulated round-trip latency.
  int64_t NowTicks() const {
    return ctx_->cluster() != nullptr
               ? ctx_->cluster()->clock().NowTicks(node_)
               : 0;
  }

  Result<std::vector<uint8_t>> Call(int32_t server,
                                    const std::string& method,
                                    const ByteBuffer& req);
  Status Push(const MatrixMeta& meta, const std::vector<uint64_t>& keys,
              const std::vector<float>& values, bool add);
  /// The pre-replication row pull: every key crosses the wire.
  Result<std::vector<float>> PullRowsRemote(
      const MatrixMeta& meta, const std::vector<uint64_t>& keys);
  /// The pre-replication push: every row crosses the wire.
  Status PushRemote(const MatrixMeta& meta,
                    const std::vector<uint64_t>& keys,
                    const std::vector<float>& values, bool add);
  /// Groups keys by owning server: returns per-server (key index, key)
  /// lists so responses can be scattered back.
  std::vector<std::vector<uint32_t>> GroupKeysByServer(
      const MatrixMeta& meta, const std::vector<uint64_t>& keys) const;

  PsContext* ctx_;
  sim::NodeId node_;
  ReplicaCache* replicas_ = nullptr;  ///< not owned; see set_replica_cache
};

}  // namespace psgraph::ps

#endif  // PSGRAPH_PS_AGENT_H_
