// RPC handler glue: decodes "ps.*" wire messages into PsServer calls.

#include "ps/server.h"

namespace psgraph::ps {

namespace {

Result<ByteBuffer> Empty() { return ByteBuffer(); }

}  // namespace

void PsServer::RegisterHandlers(net::RpcEndpoint* endpoint) {
  endpoint->Register(
      "ps.init", [this](const std::vector<uint8_t>& req) -> Result<ByteBuffer> {
        ByteReader reader(req.data(), req.size());
        MatrixMeta meta;
        PSG_RETURN_NOT_OK(DeserializeMeta(reader, &meta));
        PSG_RETURN_NOT_OK(InitMatrix(meta));
        return Empty();
      });

  endpoint->Register(
      "ps.drop", [this](const std::vector<uint8_t>& req) -> Result<ByteBuffer> {
        ByteReader reader(req.data(), req.size());
        MatrixId id = -1;
        PSG_RETURN_NOT_OK(reader.Read(&id));
        PSG_RETURN_NOT_OK(DropMatrix(id));
        return Empty();
      });

  endpoint->Register(
      "ps.pull", [this](const std::vector<uint8_t>& req) -> Result<ByteBuffer> {
        ByteReader reader(req.data(), req.size());
        MatrixId id = -1;
        std::vector<uint64_t> keys;
        PSG_RETURN_NOT_OK(reader.Read(&id));
        PSG_RETURN_NOT_OK(reader.ReadVector(&keys));
        std::vector<float> values;
        PSG_RETURN_NOT_OK(PullRows(id, keys, &values));
        ByteBuffer resp;
        resp.WriteVector(values);
        return resp;
      });

  auto push_handler = [this](const std::vector<uint8_t>& req,
                             bool add) -> Result<ByteBuffer> {
    ByteReader reader(req.data(), req.size());
    MatrixId id = -1;
    std::vector<uint64_t> keys;
    std::vector<float> values;
    PSG_RETURN_NOT_OK(reader.Read(&id));
    PSG_RETURN_NOT_OK(reader.ReadVector(&keys));
    PSG_RETURN_NOT_OK(reader.ReadVector(&values));
    if (add) {
      PSG_RETURN_NOT_OK(PushAdd(id, keys, values));
    } else {
      PSG_RETURN_NOT_OK(PushAssign(id, keys, values));
    }
    return Empty();
  };
  endpoint->Register("ps.push_add",
                     [push_handler](const std::vector<uint8_t>& req) {
                       return push_handler(req, true);
                     });
  endpoint->Register("ps.push_assign",
                     [push_handler](const std::vector<uint8_t>& req) {
                       return push_handler(req, false);
                     });

  endpoint->Register(
      "ps.push_nbrs",
      [this](const std::vector<uint8_t>& req) -> Result<ByteBuffer> {
        ByteReader reader(req.data(), req.size());
        MatrixId id = -1;
        std::vector<uint64_t> keys;
        PSG_RETURN_NOT_OK(reader.Read(&id));
        PSG_RETURN_NOT_OK(reader.ReadVector(&keys));
        std::vector<NeighborEntry> entries(keys.size());
        for (auto& entry : entries) {
          PSG_RETURN_NOT_OK(reader.ReadVector(&entry.neighbors));
          PSG_RETURN_NOT_OK(reader.ReadVector(&entry.weights));
        }
        PSG_RETURN_NOT_OK(PushNeighbors(id, keys, entries));
        return Empty();
      });

  endpoint->Register(
      "ps.freeze_nbrs",
      [this](const std::vector<uint8_t>& req) -> Result<ByteBuffer> {
        ByteReader reader(req.data(), req.size());
        MatrixId id = -1;
        PSG_RETURN_NOT_OK(reader.Read(&id));
        PSG_RETURN_NOT_OK(FreezeNeighbors(id));
        return Empty();
      });

  endpoint->Register(
      "ps.pull_nbrs",
      [this](const std::vector<uint8_t>& req) -> Result<ByteBuffer> {
        ByteReader reader(req.data(), req.size());
        MatrixId id = -1;
        std::vector<uint64_t> keys;
        PSG_RETURN_NOT_OK(reader.Read(&id));
        PSG_RETURN_NOT_OK(reader.ReadVector(&keys));
        std::vector<NeighborEntry> entries;
        PSG_RETURN_NOT_OK(PullNeighbors(id, keys, &entries));
        ByteBuffer resp;
        for (const NeighborEntry& entry : entries) {
          resp.WriteVector(entry.neighbors);
          resp.WriteVector(entry.weights);
        }
        return resp;
      });

  endpoint->Register(
      "ps.func", [this](const std::vector<uint8_t>& req) -> Result<ByteBuffer> {
        ByteReader reader(req.data(), req.size());
        std::string name;
        PSG_RETURN_NOT_OK(reader.ReadString(&name));
        std::vector<uint8_t> args(req.begin() + reader.position(),
                                  req.end());
        return CallFunc(name, args);
      });

  endpoint->Register(
      "ps.checkpoint",
      [this](const std::vector<uint8_t>& req) -> Result<ByteBuffer> {
        ByteReader reader(req.data(), req.size());
        std::string prefix;
        PSG_RETURN_NOT_OK(reader.ReadString(&prefix));
        PSG_RETURN_NOT_OK(Checkpoint(prefix));
        return Empty();
      });

  endpoint->Register(
      "ps.export",
      [this](const std::vector<uint8_t>& req) -> Result<ByteBuffer> {
        ByteReader reader(req.data(), req.size());
        MatrixId id = -1;
        PSG_RETURN_NOT_OK(reader.Read(&id));
        ByteBuffer resp;
        PSG_RETURN_NOT_OK(ExportMatrix(id, &resp));
        return resp;
      });

  endpoint->Register(
      "ps.restore",
      [this](const std::vector<uint8_t>& req) -> Result<ByteBuffer> {
        ByteReader reader(req.data(), req.size());
        std::string prefix;
        PSG_RETURN_NOT_OK(reader.ReadString(&prefix));
        PSG_RETURN_NOT_OK(Restore(prefix));
        return Empty();
      });
}

}  // namespace psgraph::ps
