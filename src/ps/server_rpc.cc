// RPC handler glue: decodes "ps.*" wire messages into PsServer calls.
//
// Hot-path framing (wire format v2): key batches are delta-encoded
// varint lists (common/varint.h) and value blocks are varint-counted
// raw fp32 (common/wire.h) — the agent encodes the matching side in
// ps/agent.cc. Decode scratch lives in the server's per-request arena,
// reset at the top of each handler; handlers run under the endpoint's
// serial mutex, so the arena never sees two requests at once.

#include "ps/server.h"

#include "common/varint.h"
#include "common/wire.h"
#include "net/ps_wire.h"

namespace psgraph::ps {

namespace {

Result<ByteBuffer> Empty() { return ByteBuffer(); }

}  // namespace

void PsServer::RegisterHandlers(net::RpcEndpoint* endpoint) {
  endpoint->Register(
      "ps.init", [this](const std::vector<uint8_t>& req) -> Result<ByteBuffer> {
        ByteReader reader(req.data(), req.size());
        MatrixMeta meta;
        PSG_RETURN_NOT_OK(DeserializeMeta(reader, &meta));
        PSG_RETURN_NOT_OK(InitMatrix(meta));
        return Empty();
      });

  endpoint->Register(
      "ps.drop", [this](const std::vector<uint8_t>& req) -> Result<ByteBuffer> {
        ByteReader reader(req.data(), req.size());
        MatrixId id = -1;
        PSG_RETURN_NOT_OK(reader.Read(&id));
        PSG_RETURN_NOT_OK(DropMatrix(id));
        return Empty();
      });

  endpoint->Register(
      "ps.pull", [this](const std::vector<uint8_t>& req) -> Result<ByteBuffer> {
        request_arena_.Reset();
        ByteReader reader(req.data(), req.size());
        MatrixId id = -1;
        auto keys = MakeArenaVector<uint64_t>(&request_arena_);
        PSG_RETURN_NOT_OK(reader.Read(&id));
        PSG_RETURN_NOT_OK(GetDeltaList(&reader, &keys));
        pull_scratch_.clear();
        PSG_RETURN_NOT_OK(
            PullRows(id, {keys.data(), keys.size()}, &pull_scratch_));
        ByteBuffer resp;
        resp.Reserve(pull_scratch_.size() * sizeof(float) +
                     kMaxVarint64Bytes);
        WriteFloatBlock(&resp, pull_scratch_);
        return resp;
      });

  auto push_handler = [this](const std::vector<uint8_t>& req,
                             bool add) -> Result<ByteBuffer> {
    request_arena_.Reset();
    ByteReader reader(req.data(), req.size());
    MatrixId id = -1;
    auto keys = MakeArenaVector<uint64_t>(&request_arena_);
    auto values = MakeArenaVector<float>(&request_arena_);
    PSG_RETURN_NOT_OK(reader.Read(&id));
    PSG_RETURN_NOT_OK(GetDeltaList(&reader, &keys));
    PSG_RETURN_NOT_OK(ReadFloatBlock(&reader, &values));
    std::span<const uint64_t> key_span{keys.data(), keys.size()};
    std::span<const float> value_span{values.data(), values.size()};
    if (add) {
      PSG_RETURN_NOT_OK(PushAdd(id, key_span, value_span));
    } else {
      PSG_RETURN_NOT_OK(PushAssign(id, key_span, value_span));
    }
    return Empty();
  };
  endpoint->Register("ps.push_add",
                     [push_handler](const std::vector<uint8_t>& req) {
                       return push_handler(req, true);
                     });
  endpoint->Register("ps.push_assign",
                     [push_handler](const std::vector<uint8_t>& req) {
                       return push_handler(req, false);
                     });

  endpoint->Register(
      "ps.merge",
      [this](const std::vector<uint8_t>& req) -> Result<ByteBuffer> {
        request_arena_.Reset();
        ByteReader reader(req.data(), req.size());
        MatrixId id = -1;
        auto keys = MakeArenaVector<uint64_t>(&request_arena_);
        auto deltas = MakeArenaVector<float>(&request_arena_);
        PSG_RETURN_NOT_OK(
            net::DecodeMergeRequest(&reader, &id, &keys, &deltas));
        PSG_RETURN_NOT_OK(MergeRows(id, {keys.data(), keys.size()},
                                    {deltas.data(), deltas.size()}));
        return Empty();
      });

  endpoint->Register(
      "ps.sample",
      [this](const std::vector<uint8_t>& req) -> Result<ByteBuffer> {
        ByteReader reader(req.data(), req.size());
        net::SampleRequest sample;
        PSG_RETURN_NOT_OK(net::DecodeSampleRequest(&reader, &sample));
        pull_scratch_.clear();
        PSG_RETURN_NOT_OK(SampleRows(sample.matrix, sample.k, sample.seed,
                                     &pull_scratch_));
        ByteBuffer resp;
        resp.Reserve(pull_scratch_.size() * sizeof(float) +
                     kMaxVarint64Bytes);
        net::EncodeSampleResponse(pull_scratch_, &resp);
        return resp;
      });

  endpoint->Register(
      "ps.push_nbrs",
      [this](const std::vector<uint8_t>& req) -> Result<ByteBuffer> {
        request_arena_.Reset();
        ByteReader reader(req.data(), req.size());
        MatrixId id = -1;
        auto keys = MakeArenaVector<uint64_t>(&request_arena_);
        PSG_RETURN_NOT_OK(reader.Read(&id));
        PSG_RETURN_NOT_OK(GetDeltaList(&reader, &keys));
        std::vector<NeighborEntry> entries(keys.size());
        for (auto& entry : entries) {
          PSG_RETURN_NOT_OK(GetDeltaList(&reader, &entry.neighbors));
          PSG_RETURN_NOT_OK(ReadFloatBlock(&reader, &entry.weights));
        }
        PSG_RETURN_NOT_OK(
            PushNeighbors(id, {keys.data(), keys.size()}, entries));
        return Empty();
      });

  endpoint->Register(
      "ps.mutate",
      [this](const std::vector<uint8_t>& req) -> Result<ByteBuffer> {
        request_arena_.Reset();
        ByteReader reader(req.data(), req.size());
        MatrixId id = -1;
        auto ins_src = MakeArenaVector<uint64_t>(&request_arena_);
        auto ins_dst = MakeArenaVector<uint64_t>(&request_arena_);
        auto ins_w = MakeArenaVector<float>(&request_arena_);
        auto del_src = MakeArenaVector<uint64_t>(&request_arena_);
        auto del_dst = MakeArenaVector<uint64_t>(&request_arena_);
        PSG_RETURN_NOT_OK(net::DecodeMutateRequest(
            &reader, &id, &ins_src, &ins_dst, &ins_w, &del_src, &del_dst));
        PSG_RETURN_NOT_OK(MutateNeighbors(
            id, {ins_src.data(), ins_src.size()},
            {ins_dst.data(), ins_dst.size()}, {ins_w.data(), ins_w.size()},
            {del_src.data(), del_src.size()},
            {del_dst.data(), del_dst.size()}));
        return Empty();
      });

  endpoint->Register(
      "ps.freeze_nbrs",
      [this](const std::vector<uint8_t>& req) -> Result<ByteBuffer> {
        ByteReader reader(req.data(), req.size());
        MatrixId id = -1;
        PSG_RETURN_NOT_OK(reader.Read(&id));
        PSG_RETURN_NOT_OK(FreezeNeighbors(id));
        return Empty();
      });

  endpoint->Register(
      "ps.pull_nbrs",
      [this](const std::vector<uint8_t>& req) -> Result<ByteBuffer> {
        request_arena_.Reset();
        ByteReader reader(req.data(), req.size());
        MatrixId id = -1;
        auto keys = MakeArenaVector<uint64_t>(&request_arena_);
        PSG_RETURN_NOT_OK(reader.Read(&id));
        PSG_RETURN_NOT_OK(GetDeltaList(&reader, &keys));
        std::vector<NeighborEntry> entries;
        PSG_RETURN_NOT_OK(
            PullNeighbors(id, {keys.data(), keys.size()}, &entries));
        ByteBuffer resp;
        for (const NeighborEntry& entry : entries) {
          PutDeltaList(&resp, entry.neighbors);
          WriteFloatBlock(&resp, entry.weights);
        }
        return resp;
      });

  endpoint->Register(
      "ps.func", [this](const std::vector<uint8_t>& req) -> Result<ByteBuffer> {
        ByteReader reader(req.data(), req.size());
        std::string name;
        PSG_RETURN_NOT_OK(reader.ReadString(&name));
        std::vector<uint8_t> args(req.begin() + reader.position(),
                                  req.end());
        return CallFunc(name, args);
      });

  endpoint->Register(
      "ps.checkpoint",
      [this](const std::vector<uint8_t>& req) -> Result<ByteBuffer> {
        ByteReader reader(req.data(), req.size());
        std::string prefix;
        PSG_RETURN_NOT_OK(reader.ReadString(&prefix));
        PSG_RETURN_NOT_OK(Checkpoint(prefix));
        return Empty();
      });

  endpoint->Register(
      "ps.export",
      [this](const std::vector<uint8_t>& req) -> Result<ByteBuffer> {
        ByteReader reader(req.data(), req.size());
        MatrixId id = -1;
        PSG_RETURN_NOT_OK(reader.Read(&id));
        ByteBuffer resp;
        PSG_RETURN_NOT_OK(ExportMatrix(id, &resp));
        return resp;
      });

  endpoint->Register(
      "ps.restore",
      [this](const std::vector<uint8_t>& req) -> Result<ByteBuffer> {
        ByteReader reader(req.data(), req.size());
        std::string prefix;
        PSG_RETURN_NOT_OK(reader.ReadString(&prefix));
        PSG_RETURN_NOT_OK(Restore(prefix));
        return Empty();
      });
}

}  // namespace psgraph::ps
