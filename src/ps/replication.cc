#include "ps/replication.h"

#include <algorithm>
#include <cstring>

#include "common/metrics.h"
#include "ps/agent.h"
#include "ps/context.h"
#include "ps/partitioner.h"

namespace psgraph::ps {

// --- ReplicaCache ---

bool ReplicaCache::Serving(MatrixId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tracked_.find(id);
  return it != tracked_.end() && it->second.serving;
}

void ReplicaCache::RecordAccess(MatrixId id,
                                std::span<const uint64_t> keys) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tracked_.find(id);
  if (it == tracked_.end() || !it->second.serving) return;
  for (uint64_t key : keys) ++it->second.counts[key];
}

bool ReplicaCache::ServePull(MatrixId id, uint64_t key, float* dst) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tracked_.find(id);
  if (it == tracked_.end() || !it->second.serving) return false;
  auto row = it->second.values.find(key);
  if (row == it->second.values.end()) return false;
  const uint32_t cols = it->second.meta.num_cols;
  std::memcpy(dst, row->second.data(), size_t{cols} * sizeof(float));
  auto delta = it->second.deltas.find(key);
  if (delta != it->second.deltas.end()) {
    const float* d = delta->second.data();
    for (uint32_t c = 0; c < cols; ++c) dst[c] += d[c];
  }
  ++local_rows_;
  return true;
}

bool ReplicaCache::AbsorbAdd(MatrixId id, uint64_t key, const float* src) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tracked_.find(id);
  if (it == tracked_.end() || !it->second.serving) return false;
  if (!it->second.values.contains(key)) return false;
  const uint32_t cols = it->second.meta.num_cols;
  auto [delta, inserted] = it->second.deltas.try_emplace(key);
  if (inserted) delta->second.assign(cols, 0.0f);
  float* d = delta->second.data();
  for (uint32_t c = 0; c < cols; ++c) d[c] += src[c];
  ++local_rows_;
  return true;
}

void ReplicaCache::ApplyAssign(MatrixId id, uint64_t key,
                               const float* src) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tracked_.find(id);
  if (it == tracked_.end()) return;
  auto row = it->second.values.find(key);
  if (row == it->second.values.end()) return;
  const uint32_t cols = it->second.meta.num_cols;
  row->second.assign(src, src + cols);
  it->second.deltas.erase(key);
}

uint64_t ReplicaCache::local_rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return local_rows_;
}

// --- ReplicationManager ---

Metrics& ReplicationManager::metrics() const {
  sim::SimCluster* cl = ps_->cluster();
  return cl != nullptr ? cl->metrics() : Metrics::Global();
}

ReplicationManager::ReplicationManager(PsContext* ps,
                                       std::vector<PsAgent*> agents,
                                       ReplicationOptions options)
    : ps_(ps), agents_(std::move(agents)), options_(options) {
  caches_.reserve(agents_.size());
  for (PsAgent* agent : agents_) {
    caches_.push_back(std::make_unique<ReplicaCache>());
    agent->set_replica_cache(caches_.back().get());
  }
}

Status ReplicationManager::Track(const MatrixMeta& meta) {
  if (meta.kind != StorageKind::kRows ||
      meta.layout != Layout::kRowPartitioned) {
    return Status::InvalidArgument(
        "replication: only row-partitioned row matrices have a single "
        "home shard per key (matrix '" + meta.name + "')");
  }
  if (tracked_.count(meta.id) > 0) {
    return Status::InvalidArgument("replication: matrix '" + meta.name +
                                   "' already tracked");
  }
  tracked_[meta.id] = meta;
  hot_[meta.id] = {};
  for (auto& cache : caches_) {
    std::lock_guard<std::mutex> lock(cache->mu_);
    ReplicaCache::Tracked& t = cache->tracked_[meta.id];
    t.meta = meta;
    t.serving = true;  // empty hot set: everything still goes remote
  }
  return Status::OK();
}

Status ReplicationManager::Untrack(MatrixId id) {
  auto it = tracked_.find(id);
  if (it == tracked_.end()) {
    return Status::NotFound("replication: matrix not tracked");
  }
  for (size_t e = 0; e < caches_.size(); ++e) {
    PSG_RETURN_NOT_OK(FlushDeltas(it->second, static_cast<int32_t>(e)));
  }
  for (auto& cache : caches_) {
    std::lock_guard<std::mutex> lock(cache->mu_);
    cache->tracked_.erase(id);
  }
  tracked_.erase(it);
  hot_.erase(id);
  return Status::OK();
}

Status ReplicationManager::SeedHotKeys(MatrixId id,
                                       std::vector<uint64_t> keys) {
  auto it = tracked_.find(id);
  if (it == tracked_.end()) {
    return Status::NotFound("replication: matrix not tracked");
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  if (keys.size() > options_.max_hot_keys) {
    keys.resize(options_.max_hot_keys);
  }
  PSG_RETURN_NOT_OK(Broadcast(it->second, keys));
  hot_[id] = std::move(keys);
  return Status::OK();
}

Status ReplicationManager::SeedFromProfiler(
    const sim::SkewProfiler::Snapshot& snapshot, MatrixId id) {
  // Estimated counts summed across shard sketches; the space-saving
  // estimate is an upper bound, which only risks promoting a warm key —
  // never missing one the sketch retained.
  std::map<uint64_t, uint64_t> counts;
  for (const auto& shard : snapshot.shards) {
    for (const auto& entry : shard.hot_keys) {
      counts[entry.key] += entry.count;
    }
  }
  std::vector<std::pair<uint64_t, uint64_t>> ranked;  // (key, count)
  for (const auto& [key, count] : counts) {
    if (count >= options_.hot_min_count) ranked.push_back({key, count});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (ranked.size() > options_.max_hot_keys) {
    ranked.resize(options_.max_hot_keys);
  }
  std::vector<uint64_t> keys;
  keys.reserve(ranked.size());
  for (const auto& [key, count] : ranked) keys.push_back(key);
  return SeedHotKeys(id, std::move(keys));
}

Status ReplicationManager::Refresh() {
  for (auto& [id, meta] : tracked_) {
    // 1. Flush every executor's pending deltas home — a key about to be
    // demoted must not lose its accumulated updates.
    for (size_t e = 0; e < caches_.size(); ++e) {
      PSG_RETURN_NOT_OK(FlushDeltas(meta, static_cast<int32_t>(e)));
    }
    // 2. Aggregate this window's access counts. Per-executor counts are
    // exact and the sum is commutative, so the aggregate (and the hot
    // set below) is identical at any thread-pool parallelism.
    std::map<uint64_t, uint64_t> counts;
    for (auto& cache : caches_) {
      std::lock_guard<std::mutex> lock(cache->mu_);
      auto it = cache->tracked_.find(id);
      if (it == cache->tracked_.end()) continue;
      for (const auto& [key, n] : it->second.counts) counts[key] += n;
      it->second.counts.clear();
    }
    // 3. Classify: count >= hot_min_count, ranked by (count desc, key
    // asc), capped. std::map iteration gives ascending keys, and
    // stable_sort preserves that order among equal counts.
    std::vector<std::pair<uint64_t, uint64_t>> ranked;
    for (const auto& [key, n] : counts) {
      if (n >= options_.hot_min_count) ranked.push_back({key, n});
    }
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto& a, const auto& b) {
                       return a.second > b.second;
                     });
    if (ranked.size() > options_.max_hot_keys) {
      ranked.resize(options_.max_hot_keys);
    }
    std::vector<uint64_t> keys;
    keys.reserve(ranked.size());
    for (const auto& [key, n] : ranked) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    // 4. Install and broadcast.
    PSG_RETURN_NOT_OK(Broadcast(meta, keys));
    hot_[id] = std::move(keys);
  }
  ++refreshes_;
  return Status::OK();
}

Status ReplicationManager::Merge() {
  for (auto& [id, meta] : tracked_) {
    for (size_t e = 0; e < caches_.size(); ++e) {
      PSG_RETURN_NOT_OK(FlushDeltas(meta, static_cast<int32_t>(e)));
    }
    PSG_RETURN_NOT_OK(Broadcast(meta, hot_[id]));
  }
  ++merges_;
  metrics().Add("replication.merges", 1);
  // Merge runs at superstep barriers (a serial orchestration point), so
  // scraping up to the cluster makespan here is deterministic.
  if (sim::SimCluster* cl = ps_->cluster(); cl != nullptr) {
    cl->sampler().Poll(cl->clock().MakespanTicks());
  }
  return Status::OK();
}

std::vector<uint64_t> ReplicationManager::HotKeys(MatrixId id) const {
  auto it = hot_.find(id);
  return it == hot_.end() ? std::vector<uint64_t>{} : it->second;
}

Status ReplicationManager::FlushDeltas(const MatrixMeta& meta,
                                       int32_t executor) {
  ReplicaCache* cache = caches_[executor].get();
  // Snapshot the pending deltas in ascending key order (FlatHashMap
  // iterates in slot order — not deterministic across capacities).
  std::vector<uint64_t> keys;
  std::vector<float> values;
  {
    std::lock_guard<std::mutex> lock(cache->mu_);
    auto it = cache->tracked_.find(meta.id);
    if (it == cache->tracked_.end() || it->second.deltas.empty()) {
      return Status::OK();
    }
    keys.reserve(it->second.deltas.size());
    for (const auto& [key, row] : it->second.deltas) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    values.reserve(keys.size() * meta.num_cols);
    for (uint64_t key : keys) {
      const std::vector<float>& row = it->second.deltas.at(key);
      values.insert(values.end(), row.begin(), row.end());
    }
  }
  // Group by home server; send per server in ascending order so a
  // mid-merge server failure leaves exactly the unsent servers' deltas
  // pending for the retry after recovery.
  const int32_t num_servers = ps_->num_servers();
  Partitioner part(meta.scheme, meta.num_rows, num_servers);
  const uint32_t cols = meta.num_cols;
  for (int32_t s = 0; s < num_servers; ++s) {
    std::vector<uint64_t> server_keys;
    std::vector<float> server_values;
    for (size_t i = 0; i < keys.size(); ++i) {
      if (part.PartitionOf(keys[i]) != s) continue;
      server_keys.push_back(keys[i]);
      server_values.insert(server_values.end(),
                           values.begin() + i * cols,
                           values.begin() + (i + 1) * cols);
    }
    if (server_keys.empty()) continue;
    metrics().Add("replication.merge_bytes",
                  server_keys.size() * sizeof(uint64_t) +
                      server_values.size() * sizeof(float));
    PSG_RETURN_NOT_OK(
        agents_[executor]->MergeRows(meta, s, server_keys, server_values));
    std::lock_guard<std::mutex> lock(cache->mu_);
    auto it = cache->tracked_.find(meta.id);
    if (it != cache->tracked_.end()) {
      for (uint64_t key : server_keys) it->second.deltas.erase(key);
    }
  }
  return Status::OK();
}

Status ReplicationManager::Broadcast(const MatrixMeta& meta,
                                     const std::vector<uint64_t>& hot) {
  for (size_t e = 0; e < caches_.size(); ++e) {
    ReplicaCache* cache = caches_[e].get();
    {
      std::lock_guard<std::mutex> lock(cache->mu_);
      auto it = cache->tracked_.find(meta.id);
      if (it == cache->tracked_.end()) continue;
      // Suspend serving: the refresh pull below must take the remote
      // path (that round trip IS the replication broadcast cost, charged
      // to this executor), and must not feed the access counts.
      it->second.serving = false;
      it->second.values.clear();
      it->second.deltas.clear();
    }
    Status st = Status::OK();
    std::vector<float> rows;
    if (!hot.empty()) {
      auto pulled = agents_[e]->PullRows(meta, hot);
      st = pulled.status();
      if (st.ok()) rows = std::move(*pulled);
    }
    {
      std::lock_guard<std::mutex> lock(cache->mu_);
      auto it = cache->tracked_.find(meta.id);
      if (it != cache->tracked_.end()) {
        if (st.ok()) {
          const uint32_t cols = meta.num_cols;
          for (size_t i = 0; i < hot.size(); ++i) {
            auto [row, inserted] = it->second.values.try_emplace(hot[i]);
            row->second.assign(rows.begin() + i * cols,
                               rows.begin() + (i + 1) * cols);
          }
        }
        it->second.serving = true;  // cold-path serving resumes either way
      }
    }
    PSG_RETURN_NOT_OK(st);
  }
  return Status::OK();
}

}  // namespace psgraph::ps
