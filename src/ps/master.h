// PsMaster (paper §III-B): monitors server health, restarts failed
// servers through the resource manager, and restores their state from the
// periodic HDFS checkpoints. Two recovery modes mirror the paper:
//
//  * kPartial — algorithms that tolerate inconsistency between model
//    partitions (GE, GNN): only the failed server reloads its checkpoint
//    and training continues.
//  * kConsistent — algorithms that need a consistent model (PageRank):
//    every server rolls back to the latest common checkpoint.

#ifndef PSGRAPH_PS_MASTER_H_
#define PSGRAPH_PS_MASTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "ps/context.h"

namespace psgraph::ps {

enum class RecoveryMode {
  kPartial,
  kConsistent,
};

class PsMaster {
 public:
  explicit PsMaster(PsContext* ctx, std::string checkpoint_prefix)
      : ctx_(ctx), checkpoint_prefix_(std::move(checkpoint_prefix)) {}

  const std::string& checkpoint_prefix() const { return checkpoint_prefix_; }

  /// Asks every server to checkpoint its partitions to HDFS. Called
  /// periodically by the training loop (paper: "each parameter server
  /// periodically stores the local data partition to HDFS").
  Status CheckpointAll();

  /// Health check: returns the indices of dead servers.
  std::vector<int32_t> FindDeadServers() const;

  /// Detects failures and repairs them: restarts dead server containers,
  /// reloads their checkpoints, and — in kConsistent mode — rolls every
  /// server back to the checkpoint. No-op when all servers are healthy.
  /// Returns the number of servers restarted.
  Result<int32_t> CheckAndRecover(RecoveryMode mode);

  /// True if a checkpoint exists for server `s`.
  bool HasCheckpoint(int32_t s) const;

 private:
  Status RestartAndRestore(int32_t s);

  PsContext* ctx_;
  std::string checkpoint_prefix_;
};

}  // namespace psgraph::ps

#endif  // PSGRAPH_PS_MASTER_H_
