// Key -> partition -> server placement (paper §III-A "Data partitioning").
//
// Vectors and matrices are partitioned by row (or column, for LINE's
// embedding layout) index; vertex data and neighbor tables by vertex
// index. Three schemes are implemented, as in the paper: hash, range and
// hash-range (contiguous chunks scattered by hash — the hybrid-range
// strategy of Ghandeharizadeh & DeWitt).

#ifndef PSGRAPH_PS_PARTITIONER_H_
#define PSGRAPH_PS_PARTITIONER_H_

#include <cstdint>

#include "common/hash.h"

namespace psgraph::ps {

enum class PartitionScheme : uint8_t {
  kHash = 0,
  kRange = 1,
  kHashRange = 2,
};

/// Stateless mapping from a 64-bit key to one of `num_partitions`
/// partitions; partition i is served by server (i % num_servers).
class Partitioner {
 public:
  Partitioner() = default;
  Partitioner(PartitionScheme scheme, uint64_t key_space,
              int32_t num_partitions, uint64_t range_chunk = 4096)
      : scheme_(scheme),
        key_space_(key_space == 0 ? 1 : key_space),
        num_partitions_(num_partitions <= 0 ? 1 : num_partitions),
        range_chunk_(range_chunk == 0 ? 1 : range_chunk) {}

  int32_t num_partitions() const { return num_partitions_; }
  PartitionScheme scheme() const { return scheme_; }
  uint64_t key_space() const { return key_space_; }

  int32_t PartitionOf(uint64_t key) const {
    switch (scheme_) {
      case PartitionScheme::kHash:
        return static_cast<int32_t>(Hash64(key) % num_partitions_);
      case PartitionScheme::kRange: {
        uint64_t width = (key_space_ + num_partitions_ - 1) /
                         num_partitions_;
        uint64_t p = key / width;
        return static_cast<int32_t>(
            p >= static_cast<uint64_t>(num_partitions_)
                ? num_partitions_ - 1
                : p);
      }
      case PartitionScheme::kHashRange:
        return static_cast<int32_t>(Hash64(key / range_chunk_) %
                                    num_partitions_);
    }
    return 0;
  }

  int32_t ServerOf(uint64_t key, int32_t num_servers) const {
    return PartitionOf(key) % num_servers;
  }

 private:
  PartitionScheme scheme_ = PartitionScheme::kHash;
  uint64_t key_space_ = 1;
  int32_t num_partitions_ = 1;
  uint64_t range_chunk_ = 4096;
};

}  // namespace psgraph::ps

#endif  // PSGRAPH_PS_PARTITIONER_H_
