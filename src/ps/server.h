// PsServer: one parameter-server shard (paper §III-A).
//
// Stores row partitions of matrices/vectors and neighbor-table partitions,
// exposes pull/push/add operators plus user-defined server-side functions
// (psFunc), periodically checkpoints its partitions to HDFS, and restores
// them after a restart. One PsServer maps to one simulated cluster node;
// its allocations are charged against that node's memory budget.

#ifndef PSGRAPH_PS_SERVER_H_
#define PSGRAPH_PS_SERVER_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/byte_buffer.h"
#include "common/flat_hash.h"
#include "common/result.h"
#include "common/status.h"
#include "net/rpc.h"
#include "ps/matrix_meta.h"
#include "sim/cluster.h"
#include "storage/hdfs.h"

namespace psgraph::ps {

/// Adjacency entry of a neighbor-table matrix.
struct NeighborEntry {
  std::vector<uint64_t> neighbors;
  std::vector<float> weights;  ///< empty when unweighted
};

/// Read-only CSR image of a neighbor shard (paper §III-A lists CSR among
/// the PS data structures): after the load phase a shard can be frozen,
/// dropping the per-entry hash-map overhead.
struct CsrStore {
  std::vector<uint64_t> keys;      ///< sorted vertex ids
  std::vector<uint64_t> offsets;   ///< size keys.size() + 1
  std::vector<uint64_t> neighbors;
  std::vector<float> weights;      ///< empty when unweighted

  uint64_t ByteSize() const {
    return keys.size() * 8 + offsets.size() * 8 + neighbors.size() * 8 +
           weights.size() * 4;
  }
};

/// Server-local state of one matrix.
struct MatrixShard {
  MatrixMeta meta;
  /// Width of rows actually stored here: full row for row-partitioned
  /// matrices, the column slice for column-partitioned ones.
  uint32_t slice_cols = 0;
  uint32_t col_begin = 0;  ///< first column of the slice
  /// Open-addressing stores (common/flat_hash.h): one flat probe per key
  /// on the pull/push hot path instead of a node pointer chase. Entries
  /// relocate on rehash — never hold a row pointer across a mutation of
  /// the same shard.
  FlatHashMap<std::vector<float>> rows;
  FlatHashMap<NeighborEntry> neighbors;
  /// Present after FreezeNeighbors(); served in preference to the map.
  std::optional<CsrStore> csr;
  uint64_t charged_bytes = 0;  ///< what this shard holds per the accountant

  /// Returns the stored row, or nullptr if never pushed.
  const std::vector<float>* FindRow(uint64_t key) const {
    auto it = rows.find(key);
    return it == rows.end() ? nullptr : &it->second;
  }
};

class PsServer;

/// A user-defined server-side function. Receives the server (so it can
/// touch several matrices, e.g. "add deltas into ranks then reset") and
/// the argument payload; returns a response payload that the agent merges
/// across servers.
using PsFunc =
    std::function<Result<ByteBuffer>(PsServer&, ByteReader&)>;

/// Process-wide psFunc registry. Register in static initializers or setup
/// code; lookups are by name.
class PsFuncRegistry {
 public:
  static PsFuncRegistry& Global();
  void Register(const std::string& name, PsFunc fn);
  Result<PsFunc> Find(const std::string& name) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, PsFunc> funcs_;
};

/// Registers the built-in psFuncs (pagerank advance, partial dot, Adam,
/// AdaGrad, norms, reset). Idempotent; called by PsContext.
void RegisterBuiltinPsFuncs();

class PsServer {
 public:
  /// `cluster`/`hdfs` may be null in unit tests.
  PsServer(int32_t server_index, int32_t num_servers,
           sim::SimCluster* cluster, storage::Hdfs* hdfs);

  int32_t server_index() const { return server_index_; }
  int32_t num_servers() const { return num_servers_; }
  sim::NodeId node() const { return node_; }

  /// Binds all "ps.*" RPC handlers for this server on `endpoint`.
  void RegisterHandlers(net::RpcEndpoint* endpoint);

  // --- direct (in-process) API; the RPC handlers decode into these ---

  Status InitMatrix(const MatrixMeta& meta);
  Status DropMatrix(MatrixId id);
  bool HasMatrix(MatrixId id) const { return shards_.count(id) > 0; }

  /// Pulls `keys` rows; appends slice_cols floats per key to `out`
  /// (init_value-filled for rows never pushed).
  Status PullRows(MatrixId id, std::span<const uint64_t> keys,
                  std::vector<float>* out);

  /// values holds keys.size() * slice_cols floats.
  Status PushAdd(MatrixId id, std::span<const uint64_t> keys,
                 std::span<const float> values);
  Status PushAssign(MatrixId id, std::span<const uint64_t> keys,
                    std::span<const float> values);

  /// Applies one executor's accumulated replica deltas ("ps.merge",
  /// ps/replication.h). Same add semantics as PushAdd — kept as its own
  /// method so merge traffic is separately traced/metered and does not
  /// feed the skew profiler (merges are management traffic, not
  /// workload access).
  Status MergeRows(MatrixId id, std::span<const uint64_t> keys,
                   std::span<const float> deltas);

  /// Serves the sample-K access ("ps.sample"): derives the k keys from
  /// `seed` exactly like the caller (net/ps_wire.h), keeps the positions
  /// this server owns, and appends their rows to `out` in derivation
  /// order. Row-partitioned shards serve owned positions; column-
  /// partitioned shards serve their slice of every position.
  Status SampleRows(MatrixId id, uint32_t k, uint64_t seed,
                    std::vector<float>* out);

  Status PushNeighbors(MatrixId id, std::span<const uint64_t> keys,
                       std::span<const NeighborEntry> entries);

  /// Applies one epoch's edge deltas to a neighbor shard: INSERT appends
  /// `insert_dst[i]` to `insert_src[i]`'s adjacency (weight appended iff
  /// `insert_weights` is non-empty — it must then match insert_src's
  /// size); DELETE removes `delete_dst[i]` from `delete_src[i]`'s list.
  /// Fails loudly — naming the edge — on a duplicate INSERT, a DELETE of
  /// an edge or source vertex that does not exist, or a frozen (CSR)
  /// shard; the batch is applied in order and an error aborts mid-batch,
  /// so callers treat any failure as fatal to the epoch.
  Status MutateNeighbors(MatrixId id,
                         std::span<const uint64_t> insert_src,
                         std::span<const uint64_t> insert_dst,
                         std::span<const float> insert_weights,
                         std::span<const uint64_t> delete_src,
                         std::span<const uint64_t> delete_dst);

  /// Converts a neighbor shard's hash map into a compact read-only CSR
  /// image and releases the map (further pushes are rejected). Reduces
  /// resident memory by the per-entry overhead; pulls are unchanged.
  Status FreezeNeighbors(MatrixId id);
  /// Appends entries for `keys` to `out` (empty entry if unknown vertex).
  Status PullNeighbors(MatrixId id, std::span<const uint64_t> keys,
                       std::vector<NeighborEntry>* out);

  Result<ByteBuffer> CallFunc(const std::string& name,
                              const std::vector<uint8_t>& args);

  /// Writes every shard to `<prefix>/server_<index>` on HDFS.
  Status Checkpoint(const std::string& prefix);
  /// Replaces all state from a checkpoint written by Checkpoint().
  Status Restore(const std::string& prefix);

  /// Serializes this server's partition of matrix `id` for snapshot
  /// export (serving/snapshot.h): column-slice bounds, rows sorted by
  /// key, then adjacency entries sorted by key (read from the frozen CSR
  /// when present). Sorting makes the bytes a function of shard *state*,
  /// not hash-map iteration order. Charged as a full scan of the shard.
  Status ExportMatrix(MatrixId id, ByteBuffer* out);

  /// Accessor for psFuncs.
  Result<MatrixShard*> GetShard(MatrixId id);

  /// Total bytes this server accounts for (diagnostics).
  uint64_t charged_bytes() const;

 private:
  Status ChargeMemory(uint64_t bytes, const char* what);
  void ReleaseMemory(uint64_t bytes);
  void ChargeCompute(uint64_t ops);
  /// The shared add-apply loop of PushAdd and MergeRows: one try_emplace
  /// probe per key, memory charged on insert, accumulate over the
  /// contiguous value slab.
  Status ApplyAddRows(MatrixShard* shard, std::span<const uint64_t> keys,
                      std::span<const float> values);
  static uint64_t EntryBytes(const NeighborEntry& e);

  /// Observability sinks: the cluster's per-context registries, or the
  /// process-wide ones when this server runs without a cluster (tests).
  Metrics& metrics() const {
    return cluster_ != nullptr ? cluster_->metrics() : Metrics::Global();
  }
  Tracer& tracer() const {
    return cluster_ != nullptr ? cluster_->tracer() : Tracer::Global();
  }
  /// Key-access profile of this shard (flight recorder). Totals are two
  /// relaxed atomic adds per request; the hot-key sketch only runs when
  /// key profiling is enabled (PSGRAPH_PROFILE_KEYS=1).
  sim::SkewProfiler& skew() const {
    return cluster_ != nullptr ? cluster_->skew()
                               : sim::SkewProfiler::Global();
  }
  /// Shard-clock reading for span stamps and service-time brackets; 0
  /// when there is no cluster (histograms then record 0-tick service,
  /// which still counts requests).
  int64_t NowTicks() const {
    return cluster_ != nullptr ? cluster_->clock().NowTicks(node_) : 0;
  }

  int32_t server_index_;
  int32_t num_servers_;
  sim::SimCluster* cluster_;
  sim::NodeId node_ = -1;
  storage::Hdfs* hdfs_;
  std::map<MatrixId, MatrixShard> shards_;
  uint64_t total_charged_ = 0;
  /// Per-request decode scratch for the RPC handlers (server_rpc.cc):
  /// reset at the top of every request, valid under the endpoint's
  /// serial mutex.
  Arena request_arena_;
  /// Reusable pull response staging (capacity persists across requests).
  std::vector<float> pull_scratch_;
  /// Per-server counter names (`ps.server<k>.rows_pulled/pushed`), built
  /// once in the ctor so the request hot paths never allocate for them.
  std::string pulled_counter_name_;
  std::string pushed_counter_name_;
};

/// Computes the column slice [begin, end) server `s` of `n` owns for a
/// column-partitioned matrix with `cols` columns (contiguous range split).
std::pair<uint32_t, uint32_t> ColumnSliceOf(uint32_t cols, int32_t s,
                                            int32_t n);

/// Serialization of MatrixMeta (wire + checkpoint format).
void SerializeMeta(ByteBuffer& buf, const MatrixMeta& meta);
Status DeserializeMeta(ByteReader& reader, MatrixMeta* meta);

}  // namespace psgraph::ps

#endif  // PSGRAPH_PS_SERVER_H_
