// Built-in psFuncs (paper §III-A "Data Operators" / §IV).
//
// A psFunc runs *on the server*, next to the data, so only scalars cross
// the network. The paper uses this for (a) the PageRank advance step
// ("PS adds deltas to ranks and resets deltas"), (b) LINE's partial dot
// products over column-partitioned embeddings, and (c) AdaGrad/Adam
// optimizers applied server-side to GNN weights.
//
// Wire formats are documented per function below. All matrix pairs that a
// function touches must share partitioning (created with the same shape
// and scheme), so co-partitioned keys resolve on the same server.

#include <cmath>
#include <cstring>

#include "common/hash.h"
#include "common/random.h"
#include "common/varint.h"
#include "ps/partitioner.h"
#include "ps/server.h"

namespace psgraph::ps {

namespace {

// "pagerank.advance": args = [delta_id:i32][ranks_id:i32]
// ranks += delta for every materialized delta row; deltas reset to zero.
// Response: [l1:double] — L1 norm of the applied deltas (convergence).
Result<ByteBuffer> PageRankAdvance(PsServer& server, ByteReader& args) {
  MatrixId delta_id = -1, ranks_id = -1;
  PSG_RETURN_NOT_OK(args.Read(&delta_id));
  PSG_RETURN_NOT_OK(args.Read(&ranks_id));
  PSG_ASSIGN_OR_RETURN(MatrixShard * delta, server.GetShard(delta_id));
  PSG_ASSIGN_OR_RETURN(MatrixShard * ranks, server.GetShard(ranks_id));

  double l1 = 0.0;
  std::vector<uint64_t> keys(1);
  std::vector<float> value(1);
  for (auto& [key, row] : delta->rows) {
    float d = row[0];
    if (d == 0.0f) continue;
    l1 += std::fabs(d);
    keys[0] = key;
    value[0] = d;
    PSG_RETURN_NOT_OK(server.PushAdd(ranks_id, keys, value));
    row[0] = 0.0f;
  }
  (void)ranks;
  ByteBuffer resp;
  resp.Write<double>(l1);
  return resp;
}

// "reset": args = [id:i32] — zeroes all materialized rows.
Result<ByteBuffer> ResetRows(PsServer& server, ByteReader& args) {
  MatrixId id = -1;
  PSG_RETURN_NOT_OK(args.Read(&id));
  PSG_ASSIGN_OR_RETURN(MatrixShard * shard, server.GetShard(id));
  for (auto& [_, row] : shard->rows) {
    std::fill(row.begin(), row.end(), 0.0f);
  }
  return ByteBuffer();
}

// "l1_norm": args = [id:i32] — response [sum:double] over this shard.
Result<ByteBuffer> L1Norm(PsServer& server, ByteReader& args) {
  MatrixId id = -1;
  PSG_RETURN_NOT_OK(args.Read(&id));
  PSG_ASSIGN_OR_RETURN(MatrixShard * shard, server.GetShard(id));
  double sum = 0.0;
  for (const auto& [_, row] : shard->rows) {
    for (float v : row) sum += std::fabs(v);
  }
  ByteBuffer resp;
  resp.Write<double>(sum);
  return resp;
}

// "rows.count": args = [id:i32] — response [count:u64].
Result<ByteBuffer> RowsCount(PsServer& server, ByteReader& args) {
  MatrixId id = -1;
  PSG_RETURN_NOT_OK(args.Read(&id));
  PSG_ASSIGN_OR_RETURN(MatrixShard * shard, server.GetShard(id));
  ByteBuffer resp;
  resp.Write<uint64_t>(shard->rows.size());
  return resp;
}

// "sumsq": args = [id:i32] — response [sum of squares:double] over this
// shard's rows (used for the modularity Sigma_tot^2 term).
Result<ByteBuffer> SumSq(PsServer& server, ByteReader& args) {
  MatrixId id = -1;
  PSG_RETURN_NOT_OK(args.Read(&id));
  PSG_ASSIGN_OR_RETURN(MatrixShard * shard, server.GetShard(id));
  double sum = 0.0;
  for (const auto& [_, row] : shard->rows) {
    for (float v : row) sum += static_cast<double>(v) * v;
  }
  ByteBuffer resp;
  resp.Write<double>(sum);
  return resp;
}

// "init.randn": args = [id:i32][scale:f32][seed:u64]
// Materializes EVERY row this server owns with deterministic Gaussian
// noise (value depends only on (seed, key, column), not on the layout).
// Used to random-initialize embedding matrices server-side instead of
// shipping |V| x dim floats over the network.
Result<ByteBuffer> InitRandn(PsServer& server, ByteReader& args) {
  MatrixId id = -1;
  float scale = 0.0f;
  uint64_t seed = 0;
  PSG_RETURN_NOT_OK(args.Read(&id));
  PSG_RETURN_NOT_OK(args.Read(&scale));
  PSG_RETURN_NOT_OK(args.Read(&seed));
  PSG_ASSIGN_OR_RETURN(MatrixShard * shard, server.GetShard(id));
  const MatrixMeta& meta = shard->meta;

  Partitioner part(meta.scheme, meta.num_rows, server.num_servers());
  std::vector<uint64_t> one_key(1);
  std::vector<float> row(shard->slice_cols);
  for (uint64_t key = 0; key < meta.num_rows; ++key) {
    if (meta.layout == Layout::kRowPartitioned &&
        part.PartitionOf(key) != server.server_index()) {
      continue;
    }
    Rng rng(seed ^ Hash64(key));
    // Skip columns before this server's slice so values are
    // layout-independent.
    for (uint32_t c = 0; c < shard->col_begin; ++c) rng.NextGaussian();
    for (uint32_t c = 0; c < shard->slice_cols; ++c) {
      row[c] = static_cast<float>(rng.NextGaussian()) * scale;
    }
    auto it = shard->rows.find(key);
    if (it != shard->rows.end()) {
      it->second = row;
    } else {
      one_key[0] = key;
      PSG_RETURN_NOT_OK(server.PushAssign(id, one_key, row));
    }
  }
  return ByteBuffer();
}

// "init.fill": args = [id:i32][value:f32]
// Materializes every row this server owns with a constant. PageRank uses
// it to seed the delta vector with the reset mass for the whole id space
// ("the size of both vectors is equal to the maximal index of vertex",
// paper §IV-A).
Result<ByteBuffer> InitFill(PsServer& server, ByteReader& args) {
  MatrixId id = -1;
  float value = 0.0f;
  PSG_RETURN_NOT_OK(args.Read(&id));
  PSG_RETURN_NOT_OK(args.Read(&value));
  PSG_ASSIGN_OR_RETURN(MatrixShard * shard, server.GetShard(id));
  const MatrixMeta& meta = shard->meta;
  Partitioner part(meta.scheme, meta.num_rows, server.num_servers());
  std::vector<uint64_t> one_key(1);
  std::vector<float> row(shard->slice_cols, value);
  for (uint64_t key = 0; key < meta.num_rows; ++key) {
    if (meta.layout == Layout::kRowPartitioned &&
        part.PartitionOf(key) != server.server_index()) {
      continue;
    }
    auto it = shard->rows.find(key);
    if (it != shard->rows.end()) {
      std::fill(it->second.begin(), it->second.end(), value);
    } else {
      one_key[0] = key;
      PSG_RETURN_NOT_OK(server.PushAssign(id, one_key, row));
    }
  }
  return ByteBuffer();
}

// "dot.partial": args = [a_id:i32][b_id:i32][pairs: delta list, flattened
// (i,j)...] — computes, for each pair, the dot product of a.row(i) and
// b.row(j) restricted to this server's column slice. Both matrices must
// be column-partitioned identically (paper §IV-D: "the same dimensions of
// u and c are co-located on the same server"). Response: vec<double>.
Result<ByteBuffer> DotPartial(PsServer& server, ByteReader& args) {
  MatrixId a_id = -1, b_id = -1;
  std::vector<uint64_t> flat;
  PSG_RETURN_NOT_OK(args.Read(&a_id));
  PSG_RETURN_NOT_OK(args.Read(&b_id));
  PSG_RETURN_NOT_OK(GetDeltaList(&args, &flat));
  if (flat.size() % 2 != 0) {
    return Status::InvalidArgument("dot.partial: odd pair vector");
  }
  PSG_ASSIGN_OR_RETURN(MatrixShard * a, server.GetShard(a_id));
  PSG_ASSIGN_OR_RETURN(MatrixShard * b, server.GetShard(b_id));
  if (a->slice_cols != b->slice_cols || a->col_begin != b->col_begin) {
    return Status::FailedPrecondition(
        "dot.partial: matrices are not co-partitioned");
  }
  std::vector<double> dots(flat.size() / 2, 0.0);
  for (size_t p = 0; p < dots.size(); ++p) {
    const std::vector<float>* ra = a->FindRow(flat[2 * p]);
    const std::vector<float>* rb = b->FindRow(flat[2 * p + 1]);
    if (ra == nullptr || rb == nullptr) continue;  // init rows: dot with 0
    double s = 0.0;
    for (uint32_t c = 0; c < a->slice_cols; ++c) {
      s += static_cast<double>((*ra)[c]) * static_cast<double>((*rb)[c]);
    }
    dots[p] = s;
  }
  ByteBuffer resp;
  resp.WriteVector(dots);
  return resp;
}

// "line.adjust": args = [emb_id:i32][ctx_id:i32][lr:f32]
//   [tuples: delta list, flattened (i, j)][coeffs: vec<f32>]
// For each (i, j, g): emb.row(i) += lr*g*ctx.row(j); ctx.row(j) +=
// lr*g*emb.row(i) — rank-1 SGD applied on the server's column slice so
// only scalars crossed the network. Uses the pre-update values of both
// rows, like a simultaneous SGD step.
Result<ByteBuffer> LineAdjust(PsServer& server, ByteReader& args) {
  MatrixId emb_id = -1, ctx_id = -1;
  float lr = 0.0f;
  std::vector<uint64_t> flat;
  std::vector<float> coeffs;
  PSG_RETURN_NOT_OK(args.Read(&emb_id));
  PSG_RETURN_NOT_OK(args.Read(&ctx_id));
  PSG_RETURN_NOT_OK(args.Read(&lr));
  PSG_RETURN_NOT_OK(GetDeltaList(&args, &flat));
  PSG_RETURN_NOT_OK(args.ReadVector(&coeffs));
  if (flat.size() != coeffs.size() * 2) {
    return Status::InvalidArgument("line.adjust: tuple/coeff mismatch");
  }
  PSG_ASSIGN_OR_RETURN(MatrixShard * emb, server.GetShard(emb_id));
  PSG_ASSIGN_OR_RETURN(MatrixShard * ctx, server.GetShard(ctx_id));
  if (emb->slice_cols != ctx->slice_cols) {
    return Status::FailedPrecondition(
        "line.adjust: matrices are not co-partitioned");
  }
  const uint32_t w = emb->slice_cols;
  std::vector<uint64_t> one_key(1);
  std::vector<float> zero_row(w, 0.0f);
  auto ensure_row = [&](MatrixShard* shard, MatrixId id,
                        uint64_t key) -> Status {
    if (shard->rows.find(key) == shard->rows.end()) {
      // Materialize via PushAdd of zeros so memory gets charged once.
      one_key[0] = key;
      PSG_RETURN_NOT_OK(server.PushAdd(id, one_key, zero_row));
    }
    return Status::OK();
  };
  std::vector<float> tmp(w);
  for (size_t p = 0; p < coeffs.size(); ++p) {
    const uint64_t ui = flat[2 * p];
    const uint64_t cj = flat[2 * p + 1];
    // Materialize both rows before taking either reference: inserting
    // into the open-addressing store can rehash, and emb/ctx may alias
    // the same shard.
    PSG_RETURN_NOT_OK(ensure_row(emb, emb_id, ui));
    PSG_RETURN_NOT_OK(ensure_row(ctx, ctx_id, cj));
    std::vector<float>& u = emb->rows.find(ui)->second;
    std::vector<float>& c = ctx->rows.find(cj)->second;
    const float g = lr * coeffs[p];
    std::memcpy(tmp.data(), u.data(), w * sizeof(float));
    for (uint32_t k = 0; k < w; ++k) u[k] += g * c[k];
    for (uint32_t k = 0; k < w; ++k) c[k] += g * tmp[k];
  }
  return ByteBuffer();
}

// "adam.apply": args = [w_id:i32][m_id:i32][v_id:i32][lr:f32][beta1:f32]
//   [beta2:f32][eps:f32][t:i32][keys:vec<u64>][grads:vec<f32>]
// Applies one Adam step to the given rows; m/v are companion matrices
// with the same shape and partitioning as w.
Result<ByteBuffer> AdamApply(PsServer& server, ByteReader& args) {
  MatrixId w_id = -1, m_id = -1, v_id = -1;
  float lr, beta1, beta2, eps;
  int32_t t = 1;
  std::vector<uint64_t> keys;
  std::vector<float> grads;
  PSG_RETURN_NOT_OK(args.Read(&w_id));
  PSG_RETURN_NOT_OK(args.Read(&m_id));
  PSG_RETURN_NOT_OK(args.Read(&v_id));
  PSG_RETURN_NOT_OK(args.Read(&lr));
  PSG_RETURN_NOT_OK(args.Read(&beta1));
  PSG_RETURN_NOT_OK(args.Read(&beta2));
  PSG_RETURN_NOT_OK(args.Read(&eps));
  PSG_RETURN_NOT_OK(args.Read(&t));
  PSG_RETURN_NOT_OK(args.ReadVector(&keys));
  PSG_RETURN_NOT_OK(args.ReadVector(&grads));

  PSG_ASSIGN_OR_RETURN(MatrixShard * w, server.GetShard(w_id));
  const uint32_t cols = w->slice_cols;
  if (grads.size() != keys.size() * cols) {
    return Status::InvalidArgument("adam.apply: grads size mismatch");
  }
  // Materialize rows by pushing zeros (charges memory through one path).
  std::vector<float> zeros(cols, 0.0f);
  const double bc1 = 1.0 - std::pow(beta1, t);
  const double bc2 = 1.0 - std::pow(beta2, t);
  for (size_t i = 0; i < keys.size(); ++i) {
    std::vector<uint64_t> one_key{keys[i]};
    PSG_RETURN_NOT_OK(server.PushAdd(w_id, one_key, zeros));
    PSG_RETURN_NOT_OK(server.PushAdd(m_id, one_key, zeros));
    PSG_RETURN_NOT_OK(server.PushAdd(v_id, one_key, zeros));
    PSG_ASSIGN_OR_RETURN(MatrixShard * m, server.GetShard(m_id));
    PSG_ASSIGN_OR_RETURN(MatrixShard * v, server.GetShard(v_id));
    std::vector<float>& wr = w->rows.find(keys[i])->second;
    std::vector<float>& mr = m->rows.find(keys[i])->second;
    std::vector<float>& vr = v->rows.find(keys[i])->second;
    const float* g = grads.data() + i * cols;
    for (uint32_t c = 0; c < cols; ++c) {
      mr[c] = beta1 * mr[c] + (1.0f - beta1) * g[c];
      vr[c] = beta2 * vr[c] + (1.0f - beta2) * g[c] * g[c];
      double mhat = mr[c] / bc1;
      double vhat = vr[c] / bc2;
      wr[c] -= static_cast<float>(lr * mhat / (std::sqrt(vhat) + eps));
    }
  }
  return ByteBuffer();
}

// "adagrad.apply": args = [w_id:i32][g2_id:i32][lr:f32][eps:f32]
//   [keys:vec<u64>][grads:vec<f32>]
Result<ByteBuffer> AdagradApply(PsServer& server, ByteReader& args) {
  MatrixId w_id = -1, g2_id = -1;
  float lr, eps;
  std::vector<uint64_t> keys;
  std::vector<float> grads;
  PSG_RETURN_NOT_OK(args.Read(&w_id));
  PSG_RETURN_NOT_OK(args.Read(&g2_id));
  PSG_RETURN_NOT_OK(args.Read(&lr));
  PSG_RETURN_NOT_OK(args.Read(&eps));
  PSG_RETURN_NOT_OK(args.ReadVector(&keys));
  PSG_RETURN_NOT_OK(args.ReadVector(&grads));

  PSG_ASSIGN_OR_RETURN(MatrixShard * w, server.GetShard(w_id));
  const uint32_t cols = w->slice_cols;
  if (grads.size() != keys.size() * cols) {
    return Status::InvalidArgument("adagrad.apply: grads size mismatch");
  }
  std::vector<float> zeros(cols, 0.0f);
  for (size_t i = 0; i < keys.size(); ++i) {
    std::vector<uint64_t> one_key{keys[i]};
    PSG_RETURN_NOT_OK(server.PushAdd(w_id, one_key, zeros));
    PSG_RETURN_NOT_OK(server.PushAdd(g2_id, one_key, zeros));
    PSG_ASSIGN_OR_RETURN(MatrixShard * g2, server.GetShard(g2_id));
    std::vector<float>& wr = w->rows.find(keys[i])->second;
    std::vector<float>& sr = g2->rows.find(keys[i])->second;
    const float* g = grads.data() + i * cols;
    for (uint32_t c = 0; c < cols; ++c) {
      sr[c] += g[c] * g[c];
      wr[c] -= lr * g[c] / (std::sqrt(sr[c]) + eps);
    }
  }
  return ByteBuffer();
}

}  // namespace

void RegisterBuiltinPsFuncs() {
  static bool registered = [] {
    auto& reg = PsFuncRegistry::Global();
    reg.Register("pagerank.advance", PageRankAdvance);
    reg.Register("reset", ResetRows);
    reg.Register("l1_norm", L1Norm);
    reg.Register("sumsq", SumSq);
    reg.Register("init.randn", InitRandn);
    reg.Register("init.fill", InitFill);
    reg.Register("rows.count", RowsCount);
    reg.Register("dot.partial", DotPartial);
    reg.Register("line.adjust", LineAdjust);
    reg.Register("adam.apply", AdamApply);
    reg.Register("adagrad.apply", AdagradApply);
    return true;
  }();
  (void)registered;
}

}  // namespace psgraph::ps
