// Synchronization controller (paper §III-A): BSP inserts a barrier across
// all executors at every iteration boundary; ASP lets executors run
// free; SSP (stale synchronous parallel — the classic middle ground the
// Angel PS family also offers) barriers only every `staleness`
// iterations, bounding how far executors may drift apart.

#ifndef PSGRAPH_PS_SYNC_H_
#define PSGRAPH_PS_SYNC_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/cluster.h"

namespace psgraph::ps {

enum class SyncProtocol : uint8_t {
  kBsp = 0,
  kAsp = 1,
  kSsp = 2,
};

class SyncController {
 public:
  SyncController(sim::SimCluster* cluster, SyncProtocol protocol,
                 int staleness = 3)
      : cluster_(cluster),
        protocol_(protocol),
        staleness_(staleness < 1 ? 1 : staleness) {}

  SyncProtocol protocol() const { return protocol_; }
  int staleness() const { return staleness_; }

  /// In BSP mode, advances every executor's simulated clock to the
  /// slowest one (the barrier); in ASP mode this is a no-op and stragglers
  /// simply lag. Returns the barrier time (BSP) or 0 (ASP).
  double IterationBarrier() {
    ++calls_;
    if (protocol_ == SyncProtocol::kAsp || cluster_ == nullptr) return 0.0;
    if (protocol_ == SyncProtocol::kSsp && calls_ % staleness_ != 0) {
      return 0.0;  // within the staleness bound: run ahead
    }
    std::vector<int32_t> executors;
    executors.reserve(cluster_->config().num_executors);
    for (int32_t e = 0; e < cluster_->config().num_executors; ++e) {
      executors.push_back(cluster_->config().executor(e));
    }
    // Account the idle time every executor spends waiting for the
    // straggler — the cost ASP avoids.
    int64_t barrier_ticks = 0;
    for (int32_t n : executors) {
      barrier_ticks =
          std::max(barrier_ticks, cluster_->clock().NowTicks(n));
    }
    int64_t wait_ticks = 0;
    for (int32_t n : executors) {
      wait_ticks += barrier_ticks - cluster_->clock().NowTicks(n);
    }
    total_wait_ += sim::SimClock::SecondsOf(wait_ticks);
    // Journal the barrier: when the superstep fence fell and what it
    // cost in aggregate executor idle time.
    cluster_->events().Record(sim::JournalEventType::kBarrierEntry,
                              /*node=*/-1, barrier_ticks, wait_ticks);
    const double barrier = cluster_->clock().Barrier(executors);
    // Scrape the continuous-telemetry series at the superstep fence —
    // the canonical serial poll point for training runs.
    cluster_->sampler().Poll(barrier_ticks);
    return barrier;
  }

  /// Cumulative executor idle time spent at BSP barriers.
  double total_wait() const { return total_wait_; }

 private:
  sim::SimCluster* cluster_;
  SyncProtocol protocol_;
  int staleness_;
  int64_t calls_ = 0;
  double total_wait_ = 0.0;
};

}  // namespace psgraph::ps

#endif  // PSGRAPH_PS_SYNC_H_
