#include "ps/master.h"

#include "common/logging.h"
#include "sim/cluster.h"
#include "sim/event_journal.h"

namespace psgraph::ps {

Status PsMaster::CheckpointAll() {
  for (int32_t s = 0; s < ctx_->num_servers(); ++s) {
    if (!ctx_->cluster()->IsAlive(ctx_->ServerNode(s))) continue;
    PSG_RETURN_NOT_OK(ctx_->server(s)->Checkpoint(checkpoint_prefix_));
  }
  return Status::OK();
}

std::vector<int32_t> PsMaster::FindDeadServers() const {
  std::vector<int32_t> dead;
  for (int32_t s = 0; s < ctx_->num_servers(); ++s) {
    if (!ctx_->cluster()->IsAlive(ctx_->ServerNode(s))) dead.push_back(s);
  }
  return dead;
}

bool PsMaster::HasCheckpoint(int32_t s) const {
  return ctx_->hdfs() != nullptr &&
         ctx_->hdfs()->Exists(checkpoint_prefix_ + "/server_" +
                              std::to_string(s));
}

Status PsMaster::RestartAndRestore(int32_t s) {
  ctx_->cluster()->ReviveNode(ctx_->ServerNode(s));
  PsServer* server = ctx_->ReplaceServer(s);
  if (HasCheckpoint(s)) {
    PSG_RETURN_NOT_OK(server->Restore(checkpoint_prefix_));
    PSG_LOG(Info) << "ps master: server " << s
                  << " restarted and restored from checkpoint";
  } else {
    PSG_LOG(Warn) << "ps master: server " << s
                  << " restarted with empty state (no checkpoint)";
  }
  return Status::OK();
}

Result<int32_t> PsMaster::CheckAndRecover(RecoveryMode mode) {
  std::vector<int32_t> dead = FindDeadServers();
  // Journal the health-check verdict (paper §III-B: the master monitors
  // server liveness); value = number of dead servers found.
  sim::SimCluster& cluster = *ctx_->cluster();
  cluster.events().Record(sim::JournalEventType::kHealthCheck, /*node=*/-1,
                          cluster.clock().MakespanTicks(),
                          static_cast<int64_t>(dead.size()));
  if (dead.empty()) return 0;
  for (int32_t s : dead) {
    PSG_RETURN_NOT_OK(RestartAndRestore(s));
  }
  if (mode == RecoveryMode::kConsistent) {
    // Roll every healthy server back so all partitions reflect the same
    // checkpointed model version.
    for (int32_t s = 0; s < ctx_->num_servers(); ++s) {
      if (!HasCheckpoint(s)) continue;
      bool was_dead = false;
      for (int32_t d : dead) was_dead |= (d == s);
      if (was_dead) continue;  // already restored
      PSG_RETURN_NOT_OK(ctx_->server(s)->Restore(checkpoint_prefix_));
    }
    PSG_LOG(Info) << "ps master: consistent rollback of all servers";
  }
  return static_cast<int32_t>(dead.size());
}

}  // namespace psgraph::ps
