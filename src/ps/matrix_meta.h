// Metadata describing a PS-resident model ("matrix" in Angel parlance;
// vectors are matrices with one column, neighbor tables are a separate
// storage kind keyed the same way).

#ifndef PSGRAPH_PS_MATRIX_META_H_
#define PSGRAPH_PS_MATRIX_META_H_

#include <cstdint>
#include <string>

#include "ps/partitioner.h"

namespace psgraph::ps {

using MatrixId = int32_t;

enum class StorageKind : uint8_t {
  kRows = 0,       ///< float rows (vectors, matrices, embeddings)
  kNeighbors = 1,  ///< adjacency lists (paper's neighbor table)
};

/// How a matrix is spread over servers: by row key (default), or by
/// column blocks (LINE stores embedding dimensions column-partitioned so
/// partial dot products can run on each server, §IV-D).
enum class Layout : uint8_t {
  kRowPartitioned = 0,
  kColumnPartitioned = 1,
};

struct MatrixMeta {
  MatrixId id = -1;
  std::string name;
  uint64_t num_rows = 0;  ///< row key space (e.g. max vertex id + 1)
  uint32_t num_cols = 1;  ///< row width in floats
  StorageKind kind = StorageKind::kRows;
  Layout layout = Layout::kRowPartitioned;
  PartitionScheme scheme = PartitionScheme::kRange;
  float init_value = 0.0f;  ///< value of never-pushed entries

  /// Bytes of one full row (used for transfer/memory estimates).
  uint64_t RowBytes() const { return uint64_t{num_cols} * sizeof(float); }
};

}  // namespace psgraph::ps

#endif  // PSGRAPH_PS_MATRIX_META_H_
