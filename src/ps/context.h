// PsContext: driver-side handle to the parameter-server deployment
// (paper §III-C "Context"). Stores the PS configuration — where servers
// live and how matrices are laid out — and creates/locates matrices.

#ifndef PSGRAPH_PS_CONTEXT_H_
#define PSGRAPH_PS_CONTEXT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "net/rpc.h"
#include "ps/matrix_meta.h"
#include "ps/partitioner.h"
#include "ps/server.h"
#include "sim/cluster.h"
#include "storage/hdfs.h"

namespace psgraph::ps {

class PsContext {
 public:
  PsContext(sim::SimCluster* cluster, net::RpcFabric* fabric,
            storage::Hdfs* hdfs);

  /// Launches one PsServer per configured server node and binds its RPC
  /// endpoint. Registers built-in psFuncs.
  Status Start();

  int32_t num_servers() const { return num_servers_; }
  sim::SimCluster* cluster() { return cluster_; }
  net::RpcFabric* fabric() { return fabric_; }
  storage::Hdfs* hdfs() { return hdfs_; }

  /// Creates a matrix on every server. Name must be unique.
  Result<MatrixMeta> CreateMatrix(
      const std::string& name, uint64_t num_rows, uint32_t num_cols,
      StorageKind kind = StorageKind::kRows,
      Layout layout = Layout::kRowPartitioned,
      PartitionScheme scheme = PartitionScheme::kRange,
      float init_value = 0.0f);

  Result<MatrixMeta> GetMatrix(const std::string& name) const;
  Status DropMatrix(const std::string& name);

  /// The server index owning `key`'s row for a row-partitioned matrix.
  int32_t ServerOfKey(const MatrixMeta& meta, uint64_t key) const {
    Partitioner part(meta.scheme, meta.num_rows, num_servers_);
    return part.PartitionOf(key);
  }

  /// Sim node of server `s`.
  sim::NodeId ServerNode(int32_t s) const {
    return cluster_->config().server(s);
  }

  /// Direct access for the master (restart/recovery) and tests.
  PsServer* server(int32_t s) { return servers_[s].get(); }
  /// Replaces server `s` with a fresh instance bound to a new endpoint
  /// (container restart). Used by PsMaster.
  PsServer* ReplaceServer(int32_t s);

 private:
  sim::SimCluster* cluster_;
  net::RpcFabric* fabric_;
  storage::Hdfs* hdfs_;
  int32_t num_servers_;
  std::vector<std::unique_ptr<PsServer>> servers_;
  std::map<std::string, MatrixMeta> matrices_;
  MatrixId next_id_ = 0;
};

}  // namespace psgraph::ps

#endif  // PSGRAPH_PS_CONTEXT_H_
