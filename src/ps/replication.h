// Skew-aware parameter management (NuPS-style, see PAPERS.md).
//
// Pure hash/range placement makes the hottest shard the whole system's
// throughput ceiling on Zipfian access. This module splits keys into two
// management classes per tracked matrix:
//
//  * HOT keys — replicated to every executor. Pulls are served from the
//    executor-local replica (replica value + that executor's own pending
//    deltas, so an executor reads its own writes); PushAdd accumulates
//    into a local delta row instead of crossing the wire. At sim-clock
//    barriers the driver merges: every executor's deltas flush to the
//    key's home shard over "ps.merge" (executor order, keys ascending —
//    float accumulation is a function of state, not schedule), then the
//    refreshed home values broadcast back into every replica.
//  * COLD keys (the long tail) — single-home, untouched semantics.
//
// Classification: every tracked-matrix access an executor makes is
// counted in that executor's own table (single-writer, so counts are
// exact and their cross-executor aggregate is an order-independent sum —
// deterministic at any PSGRAPH_THREADS). Refresh() aggregates in
// executor order, classifies keys with count >= hot_min_count (ties
// broken by ascending key), caps the set at max_hot_keys, and installs
// the new hot set everywhere. SeedFromProfiler() bootstraps the first
// hot set from the PR 3 space-saving sketch snapshot instead.
//
// Consistency: between merges an executor sees home-state-at-last-merge
// plus its own deltas — the bounded-staleness window BSP training
// already tolerates (updates land before the next barrier). PushAssign
// on a hot key writes through to the home shard AND the local replica
// (pending delta discarded: assign overwrites).

#ifndef PSGRAPH_PS_REPLICATION_H_
#define PSGRAPH_PS_REPLICATION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/flat_hash.h"
#include "common/metrics.h"
#include "common/status.h"
#include "ps/matrix_meta.h"
#include "sim/skew.h"

namespace psgraph::ps {

class PsAgent;
class PsContext;

struct ReplicationOptions {
  /// Minimum aggregated access count (across executors, since the last
  /// Refresh) for a key to classify as hot.
  uint64_t hot_min_count = 32;
  /// Hard cap on the replicated set per matrix; the top keys by
  /// (count desc, key asc) win.
  size_t max_hot_keys = 64;
};

/// Per-executor replica state. Installed into that executor's PsAgent;
/// the agent consults it on every pull/push of a tracked matrix. All
/// methods take an internal mutex: one executor node can run several
/// partition tasks concurrently, and replica rows/deltas/counts are all
/// order-independent under that interleaving (copies and commutative
/// adds), so serving stays deterministic where the remote path is.
class ReplicaCache {
 public:
  /// True when `id` is tracked AND serving is enabled (the manager
  /// suspends serving while it rebuilds replica values, so its own
  /// refresh pulls take the normal remote path).
  bool Serving(MatrixId id) const;

  /// Counts one access per key toward the next classification refresh.
  /// No-op while serving is suspended (management traffic must not
  /// classify itself).
  void RecordAccess(MatrixId id, std::span<const uint64_t> keys);

  /// If `key` is hot, writes replica value + pending local delta into
  /// `dst` (cols floats) and returns true.
  bool ServePull(MatrixId id, uint64_t key, float* dst);

  /// If `key` is hot, accumulates `src` into the pending local delta and
  /// returns true (nothing crosses the wire until the next merge).
  bool AbsorbAdd(MatrixId id, uint64_t key, const float* src);

  /// Write-through hook for PushAssign: if `key` is hot, overwrite the
  /// replica value and drop the pending delta (the home shard was
  /// assigned the same row by the agent).
  void ApplyAssign(MatrixId id, uint64_t key, const float* src);

  /// Rows served / absorbed locally (diagnostics; the agent also meters
  /// ps.replica.* counters).
  uint64_t local_rows() const;

 private:
  friend class ReplicationManager;

  struct Tracked {
    MatrixMeta meta;
    bool serving = false;
    FlatHashMap<std::vector<float>> values;  ///< hot key -> replica row
    FlatHashMap<std::vector<float>> deltas;  ///< hot key -> pending adds
    FlatHashMap<uint64_t> counts;            ///< access counts this window
  };

  mutable std::mutex mu_;
  std::map<MatrixId, Tracked> tracked_;
  uint64_t local_rows_ = 0;
};

/// Driver-side coordinator: owns one ReplicaCache per executor, decides
/// the hot set, and schedules merges/broadcasts at sim-clock barriers
/// (call Merge()/Refresh() only from the driver with no executor tasks
/// in flight — the same contract as IterationBarrier).
class ReplicationManager {
 public:
  /// Installs a cache into every agent. `agents[e]` must be executor
  /// e's agent and outlive the manager.
  ReplicationManager(PsContext* ps, std::vector<PsAgent*> agents,
                     ReplicationOptions options = {});

  const ReplicationOptions& options() const { return options_; }

  /// Starts skew-aware management of a row-partitioned row matrix. The
  /// hot set starts empty (everything cold) until Refresh() or a seed.
  Status Track(const MatrixMeta& meta);
  /// Flushes pending deltas home, then stops managing the matrix.
  Status Untrack(MatrixId id);

  /// Installs `keys` (deduplicated, capped at max_hot_keys) as the hot
  /// set and broadcasts their current home values to every executor.
  Status SeedHotKeys(MatrixId id, std::vector<uint64_t> keys);

  /// Bootstraps the hot set from a PR 3 skew-profiler snapshot: shard
  /// sketches are aggregated (estimated counts summed per key), keys
  /// with count >= hot_min_count win by (count desc, key asc). Note the
  /// sketch itself is accumulation-order-dependent at parallelism > 1
  /// (see DESIGN.md); the online Refresh() path is the deterministic
  /// classifier.
  Status SeedFromProfiler(const sim::SkewProfiler::Snapshot& snapshot,
                          MatrixId id);

  /// Classification refresh at a barrier: flush every executor's pending
  /// deltas home (so a demoted key loses nothing), aggregate the access
  /// counts in executor order, classify, reset the counting window, and
  /// broadcast the new hot set's values.
  Status Refresh();

  /// Merge at a barrier: flush pending deltas home and re-broadcast the
  /// (unchanged) hot set's refreshed values.
  Status Merge();

  /// Current hot set of `id`, ascending (empty when untracked).
  std::vector<uint64_t> HotKeys(MatrixId id) const;

  ReplicaCache* cache(int32_t executor) { return caches_[executor].get(); }

  uint64_t merges() const { return merges_; }
  uint64_t refreshes() const { return refreshes_; }

 private:
  /// Sends executor e's pending deltas of `meta` home over "ps.merge",
  /// one call per home server in ascending server order. Per-server
  /// all-or-nothing: a server's keys are cleared from the pending map
  /// only once its call succeeds, so a retry after a failed server
  /// recovers re-sends exactly the unmerged deltas.
  Status FlushDeltas(const MatrixMeta& meta, int32_t executor);

  /// Re-pulls `hot` from the home shards once per executor (serving
  /// suspended, so the pull is remote and its broadcast cost is charged
  /// to each executor) and installs the rows as the new replica values.
  Status Broadcast(const MatrixMeta& meta,
                   const std::vector<uint64_t>& hot);

  Metrics& metrics() const;

  PsContext* ps_;
  std::vector<PsAgent*> agents_;
  ReplicationOptions options_;
  std::vector<std::unique_ptr<ReplicaCache>> caches_;
  std::map<MatrixId, MatrixMeta> tracked_;
  std::map<MatrixId, std::vector<uint64_t>> hot_;  ///< ascending
  uint64_t merges_ = 0;
  uint64_t refreshes_ = 0;
};

}  // namespace psgraph::ps

#endif  // PSGRAPH_PS_REPLICATION_H_
