#include "euler/euler.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <unordered_map>

#include "common/hash.h"
#include "common/logging.h"
#include "common/random.h"
#include "core/sage_model.h"
#include "minitorch/nn.h"
#include "net/rpc.h"
#include "ps/agent.h"
#include "ps/context.h"
#include "storage/hdfs.h"

namespace psgraph::euler {

namespace {

using core::SageBatch;
using core::SageParams;

// Per-record cost of Euler's Hadoop-style text-transformation jobs,
// calibrated to Table I's measured throughput: 4 h for index-mapping 100M
// edges and ~4 h for JSON-converting 30M vertices + 200M adjacency
// records imply ~85 us/record. At cpu_ops_per_sec = 5e7 that is ~4200
// record-ops. This is a property of the *baseline system being
// simulated* (job scheduling, object churn, text codecs), measured by
// the paper itself.
constexpr uint64_t kTextJobOpsPerRecord = 4200;

/// Formats one vertex as a JSON line (Euler's ingestion format).
void AppendVertexJson(std::string& out, uint64_t id,
                      const std::vector<uint64_t>& nbrs, const float* feat,
                      int dim, int32_t label) {
  char buf[64];
  out += "{\"id\":";
  out += std::to_string(id);
  out += ",\"label\":";
  out += std::to_string(label);
  out += ",\"nbrs\":[";
  for (size_t i = 0; i < nbrs.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(nbrs[i]);
  }
  out += "],\"feat\":[";
  for (int i = 0; i < dim; ++i) {
    if (i > 0) out += ',';
    int n = std::snprintf(buf, sizeof(buf), "%.6g", (double)feat[i]);
    out.append(buf, n);
  }
  out += "]}\n";
}

struct VertexRecord {
  uint64_t id = 0;
  int32_t label = 0;
  std::vector<uint64_t> nbrs;
  std::vector<float> feat;
};

/// Parses the JSON produced by AppendVertexJson (fields in fixed order).
Status ParseVertexJson(const char* p, const char* end, VertexRecord* out) {
  auto expect = [&](const char* token) -> Status {
    size_t len = std::strlen(token);
    if (static_cast<size_t>(end - p) < len ||
        std::memcmp(p, token, len) != 0) {
      return Status::InvalidArgument("euler: bad JSON record");
    }
    p += len;
    return Status::OK();
  };
  auto parse_u64 = [&](uint64_t* v) -> Status {
    auto [next, ec] = std::from_chars(p, end, *v);
    if (ec != std::errc()) return Status::InvalidArgument("euler: bad int");
    p = next;
    return Status::OK();
  };
  PSG_RETURN_NOT_OK(expect("{\"id\":"));
  PSG_RETURN_NOT_OK(parse_u64(&out->id));
  PSG_RETURN_NOT_OK(expect(",\"label\":"));
  uint64_t label = 0;
  PSG_RETURN_NOT_OK(parse_u64(&label));
  out->label = static_cast<int32_t>(label);
  PSG_RETURN_NOT_OK(expect(",\"nbrs\":["));
  while (p < end && *p != ']') {
    uint64_t v = 0;
    PSG_RETURN_NOT_OK(parse_u64(&v));
    out->nbrs.push_back(v);
    if (p < end && *p == ',') ++p;
  }
  PSG_RETURN_NOT_OK(expect("]"));
  PSG_RETURN_NOT_OK(expect(",\"feat\":["));
  while (p < end && *p != ']') {
    double v = 0.0;
    auto [next, ec] = std::from_chars(p, end, v);
    if (ec != std::errc()) {
      return Status::InvalidArgument("euler: bad float");
    }
    p = next;
    out->feat.push_back(static_cast<float>(v));
    if (p < end && *p == ',') ++p;
  }
  return Status::OK();
}

}  // namespace

Result<EulerResult> RunEulerGraphSage(const graph::LabeledGraph& g,
                                      const EulerOptions& opts) {
  EulerResult result;
  sim::SimCluster cluster(opts.cluster);
  storage::Hdfs hdfs(&cluster);
  net::RpcFabric fabric(&cluster);
  ps::PsContext psctx(&cluster, &fabric, &hdfs);
  PSG_RETURN_NOT_OK(psctx.Start());
  const sim::NodeId driver = cluster.config().driver();
  const int32_t W = cluster.config().num_executors;
  const int d = g.feature_dim;

  // ---- Raw input on HDFS (the dataset itself; not timed) ----
  {
    std::string text;
    text.reserve(g.edges.size() * 16);
    for (const graph::Edge& e : g.edges) {
      text += std::to_string(e.src);
      text += ' ';
      text += std::to_string(e.dst);
      text += '\n';
    }
    PSG_RETURN_NOT_OK(hdfs.WriteString("euler/raw_edges.txt", text, -1));
  }

  // ---- Pass 1: index mapping (sequential read -> transform -> write) --
  double t0 = cluster.clock().Makespan();
  {
    PSG_ASSIGN_OR_RETURN(std::string text,
                         hdfs.ReadString("euler/raw_edges.txt", driver));
    std::unordered_map<uint64_t, uint64_t> idmap;
    std::string out;
    out.reserve(text.size());
    const char* p = text.data();
    const char* end = p + text.size();
    uint64_t records = 0;
    while (p < end) {
      uint64_t src = 0, dst = 0;
      auto r1 = std::from_chars(p, end, src);
      p = r1.ptr + 1;
      auto r2 = std::from_chars(p, end, dst);
      p = r2.ptr;
      while (p < end && *p != '\n') ++p;
      if (p < end) ++p;
      auto id_of = [&](uint64_t v) {
        auto [it, inserted] = idmap.emplace(v, idmap.size());
        return it->second;
      };
      out += std::to_string(id_of(src));
      out += ' ';
      out += std::to_string(id_of(dst));
      out += '\n';
      ++records;
    }
    cluster.clock().Advance(
        driver,
        cluster.cost().ComputeTime(records * kTextJobOpsPerRecord));
    PSG_RETURN_NOT_OK(
        hdfs.WriteString("euler/mapped_edges.txt", out, driver));
    // Persist the mapping itself too (Euler needs it to join features).
    std::string map_text;
    for (const auto& [old_id, new_id] : idmap) {
      map_text += std::to_string(old_id);
      map_text += ' ';
      map_text += std::to_string(new_id);
      map_text += '\n';
    }
    PSG_RETURN_NOT_OK(hdfs.WriteString("euler/id_map.txt", map_text,
                                       driver));
  }
  result.index_mapping_sim_seconds = cluster.clock().Makespan() - t0;

  // NOTE: the id map is a bijection we immediately invert below when
  // building JSON, so vertex ids seen by training match the input graph
  // (keeps accuracy comparable with PSGraph).

  // ---- Pass 2: data-to-JSON transformation (sequential) ----
  double t1 = cluster.clock().Makespan();
  {
    PSG_ASSIGN_OR_RETURN(std::string text,
                         hdfs.ReadString("euler/mapped_edges.txt", driver));
    PSG_ASSIGN_OR_RETURN(std::string map_text,
                         hdfs.ReadString("euler/id_map.txt", driver));
    // Invert the mapping.
    std::unordered_map<uint64_t, uint64_t> new2old;
    {
      const char* p = map_text.data();
      const char* end = p + map_text.size();
      while (p < end) {
        uint64_t o = 0, n = 0;
        auto r1 = std::from_chars(p, end, o);
        p = r1.ptr + 1;
        auto r2 = std::from_chars(p, end, n);
        p = r2.ptr;
        if (p < end) ++p;
        new2old[n] = o;
      }
    }
    // Adjacency (undirected) in mapped-id space.
    std::unordered_map<uint64_t, std::vector<uint64_t>> adj;
    {
      const char* p = text.data();
      const char* end = p + text.size();
      while (p < end) {
        uint64_t src = 0, dst = 0;
        auto r1 = std::from_chars(p, end, src);
        p = r1.ptr + 1;
        auto r2 = std::from_chars(p, end, dst);
        p = r2.ptr;
        if (p < end) ++p;
        adj[src].push_back(dst);
        adj[dst].push_back(src);
      }
    }
    std::string json;
    json.reserve(text.size() * 4);
    uint64_t bytes_generated = 0;
    for (auto& [nid, nbrs] : adj) {
      uint64_t old_id = new2old[nid];
      AppendVertexJson(json, nid, nbrs,
                       g.features.data() +
                           static_cast<size_t>(old_id) * d,
                       d, g.labels[old_id]);
    }
    bytes_generated = json.size();
    // One record per vertex plus one per directed adjacency entry.
    uint64_t records = adj.size();
    for (const auto& [nid, nbrs] : adj) records += nbrs.size();
    cluster.clock().Advance(
        driver,
        cluster.cost().ComputeTime(records * kTextJobOpsPerRecord +
                                   bytes_generated / 4));
    PSG_RETURN_NOT_OK(hdfs.WriteString("euler/graph.json", json, driver));
  }
  result.json_convert_sim_seconds = cluster.clock().Makespan() - t1;

  // ---- Pass 3: JSON partitioning (sequential) ----
  double t2 = cluster.clock().Makespan();
  {
    PSG_ASSIGN_OR_RETURN(std::string json,
                         hdfs.ReadString("euler/graph.json", driver));
    std::vector<std::string> parts(W);
    const char* p = json.data();
    const char* end = p + json.size();
    while (p < end) {
      const char* eol = p;
      while (eol < end && *eol != '\n') ++eol;
      // Route by the vertex id right after {"id": .
      uint64_t id = 0;
      std::from_chars(p + 6, eol, id);
      parts[Hash64(id) % W].append(p, eol - p + 1);
      p = eol + 1;
    }
    cluster.clock().Advance(driver,
                            cluster.cost().ComputeTime(json.size() / 16));
    for (int32_t w = 0; w < W; ++w) {
      PSG_RETURN_NOT_OK(hdfs.WriteString(
          "euler/part_" + std::to_string(w) + ".json", parts[w], driver));
    }
  }
  result.partition_sim_seconds = cluster.clock().Makespan() - t2;
  result.preprocess_sim_seconds = cluster.clock().Makespan() - t0;
  // Causality: training starts only after preprocessing finished, so
  // every node's clock advances to the preprocessing frontier.
  cluster.clock().BarrierAll();

  // ---- Load the graph service shards from the partitioned JSON ----
  graph::VertexId n = g.num_vertices;
  PSG_ASSIGN_OR_RETURN(
      ps::MatrixMeta adj_mat,
      psctx.CreateMatrix("euler.adj", n, 0, ps::StorageKind::kNeighbors,
                         ps::Layout::kRowPartitioned,
                         ps::PartitionScheme::kHash));
  PSG_ASSIGN_OR_RETURN(ps::MatrixMeta feat_mat,
                       psctx.CreateMatrix("euler.x", n, d));
  const int h = opts.hidden_dim;
  const int classes = g.num_classes;
  PSG_ASSIGN_OR_RETURN(ps::MatrixMeta w1m,
                       psctx.CreateMatrix("euler.w1", 2 * d, h));
  PSG_ASSIGN_OR_RETURN(ps::MatrixMeta w2m,
                       psctx.CreateMatrix("euler.w2", 2 * h, classes));

  std::vector<std::unique_ptr<ps::PsAgent>> agents;
  for (int32_t w = 0; w < W; ++w) {
    agents.push_back(std::make_unique<ps::PsAgent>(
        &psctx, cluster.config().executor(w)));
  }

  std::vector<std::vector<std::pair<uint64_t, int32_t>>> local_train(W),
      local_test(W);
  for (int32_t w = 0; w < W; ++w) {
    sim::NodeId node = cluster.config().executor(w);
    PSG_ASSIGN_OR_RETURN(
        std::string json,
        hdfs.ReadString("euler/part_" + std::to_string(w) + ".json",
                        node));
    const char* p = json.data();
    const char* end = p + json.size();
    std::vector<graph::NeighborList> lists;
    std::vector<uint64_t> keys;
    std::vector<float> xrows;
    uint64_t records = 0;
    while (p < end) {
      const char* eol = p;
      while (eol < end && *eol != '\n') ++eol;
      VertexRecord rec;
      PSG_RETURN_NOT_OK(ParseVertexJson(p, eol, &rec));
      graph::NeighborList nl;
      nl.vertex = rec.id;
      nl.neighbors = std::move(rec.nbrs);
      lists.push_back(std::move(nl));
      keys.push_back(rec.id);
      xrows.insert(xrows.end(), rec.feat.begin(), rec.feat.end());
      bool train = (Hash64(rec.id ^ opts.seed) % 1000) <
                   static_cast<uint64_t>(opts.train_fraction * 1000);
      (train ? local_train[w] : local_test[w])
          .push_back({rec.id, rec.label});
      ++records;
      p = eol + 1;
    }
    cluster.clock().Advance(node,
                            cluster.cost().ComputeTime(json.size() / 8));
    PSG_RETURN_NOT_OK(agents[w]->PushNeighbors(adj_mat, lists));
    PSG_RETURN_NOT_OK(agents[w]->PushAssign(feat_mat, keys, xrows));
  }

  ps::PsAgent driver_agent(&psctx, driver);
  {
    Rng rng(opts.seed);
    minitorch::Tensor w1 = minitorch::Tensor::Randn(2 * d, h, rng);
    minitorch::Tensor w2 = minitorch::Tensor::Randn(2 * h, classes, rng);
    std::vector<uint64_t> k1(2 * d), k2(2 * h);
    for (size_t i = 0; i < k1.size(); ++i) k1[i] = i;
    for (size_t i = 0; i < k2.size(); ++i) k2[i] = i;
    PSG_RETURN_NOT_OK(driver_agent.PushAssign(w1m, k1, w1.data()));
    PSG_RETURN_NOT_OK(driver_agent.PushAssign(w2m, k2, w2.data()));
  }
  cluster.clock().BarrierAll();

  // ---- Training (same math as PSGraph; per-vertex graph fetches) ----
  minitorch::Adam* adam = nullptr;  // weights live on PS; SGD via deltas
  (void)adam;
  const int fetch = std::max(1, opts.fetch_granularity);

  auto pull_neighbors = [&](int32_t w, const std::vector<uint64_t>& keys)
      -> Result<std::vector<ps::NeighborEntry>> {
    std::vector<ps::NeighborEntry> out;
    out.reserve(keys.size());
    for (size_t i = 0; i < keys.size();
         i += static_cast<size_t>(fetch)) {
      std::vector<uint64_t> chunk(
          keys.begin() + i,
          keys.begin() + std::min(keys.size(), i + fetch));
      PSG_ASSIGN_OR_RETURN(auto part,
                           agents[w]->PullNeighbors(adj_mat, chunk));
      for (auto& entry : part) out.push_back(std::move(entry));
    }
    return out;
  };
  auto pull_features = [&](int32_t w, const std::vector<uint64_t>& keys)
      -> Result<std::vector<float>> {
    std::vector<float> out;
    out.reserve(keys.size() * d);
    for (size_t i = 0; i < keys.size();
         i += static_cast<size_t>(fetch)) {
      std::vector<uint64_t> chunk(
          keys.begin() + i,
          keys.begin() + std::min(keys.size(), i + fetch));
      PSG_ASSIGN_OR_RETURN(auto part,
                           agents[w]->PullRows(feat_mat, chunk));
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  };

  auto build_batch =
      [&](int32_t w,
          const std::vector<std::pair<uint64_t, int32_t>>& batch_v,
          Rng& rng) -> Result<SageBatch> {
    SageBatch b;
    b.batch_size = static_cast<int64_t>(batch_v.size());
    std::vector<uint64_t> bkeys;
    for (const auto& [v, label] : batch_v) {
      bkeys.push_back(v);
      b.labels.push_back(label);
    }
    PSG_ASSIGN_OR_RETURN(auto badj, pull_neighbors(w, bkeys));
    std::unordered_map<uint64_t, int64_t> nodes1_index;
    std::vector<uint64_t> nodes1_ids;
    for (uint64_t v : bkeys) {
      if (nodes1_index.emplace(v, (int64_t)nodes1_ids.size()).second) {
        nodes1_ids.push_back(v);
      }
    }
    std::vector<std::vector<uint64_t>> samples1(bkeys.size());
    for (size_t i = 0; i < bkeys.size(); ++i) {
      const auto& nbrs = badj[i].neighbors;
      if (nbrs.empty()) continue;
      for (int k = 0; k < opts.fanout1; ++k) {
        uint64_t u = nbrs[rng.NextBounded(nbrs.size())];
        samples1[i].push_back(u);
        if (nodes1_index.emplace(u, (int64_t)nodes1_ids.size()).second) {
          nodes1_ids.push_back(u);
        }
      }
    }
    std::vector<uint64_t> extra(nodes1_ids.begin() + bkeys.size(),
                                nodes1_ids.end());
    PSG_ASSIGN_OR_RETURN(auto eadj, pull_neighbors(w, extra));
    std::unordered_map<uint64_t, int64_t> involved_index;
    std::vector<uint64_t> involved_ids;
    for (uint64_t v : nodes1_ids) {
      involved_index.emplace(v, (int64_t)involved_ids.size());
      involved_ids.push_back(v);
    }
    b.seg1.resize(nodes1_ids.size());
    auto sample2 = [&](size_t pos, const std::vector<uint64_t>& nbrs) {
      if (nbrs.empty()) return;
      for (int k = 0; k < opts.fanout2; ++k) {
        uint64_t u = nbrs[rng.NextBounded(nbrs.size())];
        auto [it, inserted] =
            involved_index.emplace(u, (int64_t)involved_ids.size());
        if (inserted) involved_ids.push_back(u);
        b.seg1[pos].push_back(it->second);
      }
    };
    for (size_t i = 0; i < bkeys.size(); ++i) {
      sample2(i, badj[i].neighbors);
    }
    for (size_t i = 0; i < extra.size(); ++i) {
      sample2(bkeys.size() + i, eadj[i].neighbors);
    }
    b.seg2.resize(bkeys.size());
    for (size_t i = 0; i < bkeys.size(); ++i) {
      for (uint64_t u : samples1[i]) {
        b.seg2[i].push_back(nodes1_index[u]);
      }
    }
    b.nodes1.resize(nodes1_ids.size());
    for (size_t i = 0; i < nodes1_ids.size(); ++i) {
      b.nodes1[i] = static_cast<int64_t>(i);
    }
    PSG_ASSIGN_OR_RETURN(std::vector<float> xrows,
                         pull_features(w, involved_ids));
    b.features = minitorch::Tensor::FromData(
        static_cast<int64_t>(involved_ids.size()), d, std::move(xrows));
    return b;
  };

  SageParams params;
  auto run_batch = [&](int32_t w, const SageBatch& batch,
                       bool train) -> Result<std::pair<double, double>> {
    std::vector<uint64_t> k1(2 * d), k2(2 * h);
    for (size_t i = 0; i < k1.size(); ++i) k1[i] = i;
    for (size_t i = 0; i < k2.size(); ++i) k2[i] = i;
    PSG_ASSIGN_OR_RETURN(std::vector<float> w1d,
                         agents[w]->PullRows(w1m, k1));
    PSG_ASSIGN_OR_RETURN(std::vector<float> w2d,
                         agents[w]->PullRows(w2m, k2));
    params.w1 = minitorch::Tensor::FromData(2 * d, h, std::move(w1d), true);
    params.w2 =
        minitorch::Tensor::FromData(2 * h, classes, std::move(w2d), true);
    minitorch::Tensor logits = core::SageForward(params, batch);
    minitorch::Tensor loss =
        minitorch::SoftmaxCrossEntropy(logits, batch.labels);
    double acc = minitorch::Accuracy(logits, batch.labels);
    uint64_t flops = core::SageForwardOps(params, batch);
    if (train) {
      loss.Backward();
      flops *= 3;
      auto push_sgd = [&](const ps::MatrixMeta& meta,
                          const minitorch::Tensor& t,
                          const std::vector<uint64_t>& keys) -> Status {
        if (t.grad().empty()) return Status::OK();
        std::vector<float> delta(t.grad().size());
        for (size_t i = 0; i < delta.size(); ++i) {
          delta[i] = -opts.learning_rate * t.grad()[i];
        }
        return agents[w]->PushAdd(meta, keys, delta);
      };
      PSG_RETURN_NOT_OK(push_sgd(w1m, params.w1, k1));
      PSG_RETURN_NOT_OK(push_sgd(w2m, params.w2, k2));
    }
    cluster.clock().Advance(cluster.config().executor(w),
                            cluster.cost().FlopsTime(flops));
    return std::pair<double, double>(loss.data()[0], acc);
  };

  auto barrier = [&] {
    std::vector<int32_t> nodes;
    for (int32_t w = 0; w < W; ++w) {
      nodes.push_back(cluster.config().executor(w));
    }
    cluster.clock().Barrier(nodes);
  };

  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    double epoch_start = cluster.clock().Makespan();
    double loss_sum = 0.0;
    uint64_t batches = 0;
    for (int32_t w = 0; w < W; ++w) {
      auto& mine = local_train[w];
      Rng rng(opts.seed ^ Hash64(epoch * 104729 + w));
      for (size_t i = mine.size(); i > 1; --i) {
        std::swap(mine[i - 1], mine[rng.NextBounded(i)]);
      }
      for (size_t begin = 0; begin < mine.size();
           begin += opts.batch_size) {
        size_t end = std::min(mine.size(), begin + opts.batch_size);
        std::vector<std::pair<uint64_t, int32_t>> bv(mine.begin() + begin,
                                                     mine.begin() + end);
        PSG_ASSIGN_OR_RETURN(SageBatch batch, build_batch(w, bv, rng));
        PSG_ASSIGN_OR_RETURN(auto la, run_batch(w, batch, true));
        loss_sum += la.first;
        ++batches;
      }
    }
    barrier();
    result.epochs = epoch + 1;
    result.final_train_loss =
        batches == 0 ? 0.0 : loss_sum / static_cast<double>(batches);
    result.epoch_sim_seconds.push_back(cluster.clock().Makespan() -
                                       epoch_start);
  }

  double correct = 0.0, total = 0.0;
  for (int32_t w = 0; w < W; ++w) {
    Rng rng(opts.seed ^ 0x3a7full ^ w);
    auto& mine = local_test[w];
    for (size_t begin = 0; begin < mine.size();
         begin += opts.batch_size) {
      size_t end = std::min(mine.size(), begin + opts.batch_size);
      std::vector<std::pair<uint64_t, int32_t>> bv(mine.begin() + begin,
                                                   mine.begin() + end);
      PSG_ASSIGN_OR_RETURN(SageBatch batch, build_batch(w, bv, rng));
      PSG_ASSIGN_OR_RETURN(auto la, run_batch(w, batch, false));
      correct += la.second * static_cast<double>(bv.size());
      total += static_cast<double>(bv.size());
    }
  }
  result.test_accuracy = total == 0.0 ? 0.0 : correct / total;
  return result;
}

}  // namespace psgraph::euler
