// Euler baseline (Alibaba's GNN system), reproduced for Table I.
//
// Two properties of Euler drive the paper's numbers, and both are
// modeled structurally rather than by fiat:
//
//  1. Heavyweight preprocessing: the original graph must be transformed
//     into Euler's format by three *sequential* jobs, each reading its
//     whole input from HDFS and writing its whole output back — index
//     mapping, data-to-JSON conversion, and JSON partitioning (paper:
//     4 h + 4 h + minutes on DS3). We execute the same three passes over
//     the simulated HDFS, producing real JSON, on a single driver.
//
//  2. Per-vertex graph access: training fetches neighbors and features
//     through the graph service one vertex per RPC (`fetch_granularity`),
//     so every step pays per-call latency that PSGraph's batched PS pulls
//     amortize — the source of the 200 s vs 7 s per-epoch gap.
//
// The model math is shared with PSGraph (core::SageForward), so Table I
// compares systems, not model variants.

#ifndef PSGRAPH_EULER_EULER_H_
#define PSGRAPH_EULER_EULER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/generators.h"
#include "sim/cluster.h"

namespace psgraph::euler {

struct EulerOptions {
  // Model hyper-parameters (keep equal to the PSGraph run for Table I).
  int hidden_dim = 64;
  int fanout1 = 10;
  int fanout2 = 5;
  int epochs = 5;
  int batch_size = 64;
  float learning_rate = 0.01f;
  double train_fraction = 0.7;
  uint64_t seed = 7;

  /// Cluster geometry (paper: 90 workers with 16 cores / 50 GB each).
  sim::ClusterConfig cluster;

  /// Vertices fetched per graph-service RPC. Euler's sampling API walks
  /// the graph vertex by vertex (PSGraph pulls a whole batch's vertices
  /// in one request per server).
  int fetch_granularity = 1;
};

struct EulerResult {
  double preprocess_sim_seconds = 0.0;
  /// Breakdown of the three sequential passes.
  double index_mapping_sim_seconds = 0.0;
  double json_convert_sim_seconds = 0.0;
  double partition_sim_seconds = 0.0;
  std::vector<double> epoch_sim_seconds;
  double final_train_loss = 0.0;
  double test_accuracy = 0.0;
  int epochs = 0;

  double AvgEpochSimSeconds() const {
    if (epoch_sim_seconds.empty()) return 0.0;
    double s = 0.0;
    for (double v : epoch_sim_seconds) s += v;
    return s / static_cast<double>(epoch_sim_seconds.size());
  }
};

/// Runs the full Euler pipeline (preprocessing + GraphSage training) on
/// its own simulated cluster.
Result<EulerResult> RunEulerGraphSage(const graph::LabeledGraph& g,
                                      const EulerOptions& opts);

}  // namespace psgraph::euler

#endif  // PSGRAPH_EULER_EULER_H_
