// Versioned model snapshots: the bridge from training to serving.
//
// The paper checkpoints PS partitions to HDFS (§III-B); serving needs a
// stronger artifact — an immutable, self-contained image of the trained
// matrices laid out by *serving* shard, not by PS server. A publisher
// run: (1) pulls every PS server's partition of the requested matrices
// over "ps.export" RPCs, (2) re-partitions rows and adjacency across the
// configured number of serving shards (hash placement, same
// ps::Partitioner the router uses), (3) writes one checksummed blob per
// shard plus a JSON manifest under <root>/v<N>/, and (4) commits the
// version by renaming a CURRENT pointer file — readers either see the
// old complete version or the new complete version, never a torn one.
//
// Feature rows referenced by a shard's adjacency but owned by another
// shard ("halo" rows, the ghost vertices of distributed GNN systems) are
// copied into the shard blob so a GraphSage forward pass never leaves
// the shard. Matrices marked replicated (small dense weights) go into
// every blob in full.

#ifndef PSGRAPH_SERVING_SNAPSHOT_H_
#define PSGRAPH_SERVING_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/flat_hash.h"
#include "common/quant.h"
#include "common/result.h"
#include "common/status.h"
#include "ps/context.h"
#include "storage/hdfs.h"

namespace psgraph::serving {

/// One matrix as recorded in a snapshot manifest.
struct SnapshotMatrixInfo {
  std::string name;
  ps::StorageKind kind = ps::StorageKind::kRows;
  uint64_t num_rows = 0;
  uint32_t num_cols = 1;
  float init_value = 0.0f;
  bool replicated = false;
  /// Max-abs round-trip error introduced by blob quantization across
  /// every emitted copy of this matrix's rows (0 when stored as fp32).
  double quant_max_abs_error = 0.0;

  uint64_t RowBytes() const { return uint64_t{num_cols} * sizeof(float); }
};

/// One shard blob as recorded in a snapshot manifest.
struct SnapshotShardInfo {
  std::string path;
  uint64_t bytes = 0;
  uint64_t checksum = 0;  ///< FNV-1a over the blob bytes
};

struct SnapshotManifest {
  int64_t version = 0;
  int32_t num_shards = 0;
  uint64_t key_space = 0;  ///< router/placement key space
  int64_t created_ticks = 0;
  /// Row codec of the sharded (non-replicated) matrices' blobs.
  QuantMode quant = QuantMode::kNone;
  /// What the same payload would have cost in the uncompressed v1 layout
  /// (8-byte keys, fp32 rows, 8-byte neighbor ids) — the denominator of
  /// the published compression ratio.
  uint64_t raw_bytes = 0;
  std::vector<SnapshotMatrixInfo> matrices;
  std::vector<SnapshotShardInfo> shards;
};

/// Path layout helpers (shared by publisher, loader and tests).
std::string SnapshotVersionDir(const std::string& root, int64_t version);
std::string SnapshotManifestPath(const std::string& root, int64_t version);
std::string SnapshotBlobPath(const std::string& root, int64_t version,
                             int32_t shard);
std::string SnapshotCurrentPath(const std::string& root);

/// What to export.
struct SnapshotMatrixSpec {
  std::string name;
  /// Replicated matrices are copied whole into every shard blob (dense
  /// layer weights); sharded ones are split by row key.
  bool replicated = false;
};

struct SnapshotOptions {
  std::string root;        ///< HDFS prefix, e.g. "serving/line"
  int32_t num_shards = 1;  ///< serving shards (not PS servers)
  /// Key space for shard placement; 0 derives max num_rows over the
  /// sharded matrices.
  uint64_t key_space = 0;
  /// Keep the newest N versions on retention sweeps; 0 keeps everything.
  /// The CURRENT version is never deleted.
  int32_t keep_versions = 0;
  /// Row codec for sharded matrices: "none" | "fp16" | "int8". Empty
  /// falls back to the PSGRAPH_SNAPSHOT_QUANT env knob (default none).
  /// Replicated matrices always stay fp32. Unknown values fail Publish.
  std::string quant;
  /// Hot lookup keys (e.g. ReplicationManager::HotKeys at publish time):
  /// their rows are copied into EVERY shard blob, like halo rows, so the
  /// router can serve them from any shard. The manifest format does not
  /// change; pass the same list to RouterOptions::hot_keys.
  std::vector<uint64_t> hot_keys;
  std::vector<SnapshotMatrixSpec> matrices;
};

class SnapshotPublisher {
 public:
  /// Runs on the driver node of `ps`'s cluster.
  SnapshotPublisher(ps::PsContext* ps, SnapshotOptions options);

  /// Exports, writes and commits the next version (CURRENT + 1, or 1),
  /// then applies retention. Returns the committed manifest.
  Result<SnapshotManifest> Publish();

  /// Version the CURRENT pointer names; NotFound before first publish.
  Result<int64_t> CurrentVersion() const;

  /// Deletes versions beyond the newest keep_versions (never CURRENT's).
  /// Manifest goes first so a half-deleted version is never loadable.
  Status ApplyRetention();

 private:
  ps::PsContext* ps_;
  SnapshotOptions options_;
};

// --- loader side ---

/// In-memory image of one matrix inside one shard blob. Rows and
/// adjacency live in open-addressing tables (common/flat_hash.h): lookup
/// is the serving hot path and these maps are read-only once loaded.
struct LoadedMatrix {
  SnapshotMatrixInfo info;
  FlatHashMap<std::vector<float>> rows;
  FlatHashMap<std::vector<uint64_t>> adjacency;
};

/// In-memory image of one shard blob.
struct LoadedShard {
  int64_t version = 0;
  int32_t shard_index = 0;
  uint64_t blob_bytes = 0;
  std::map<std::string, LoadedMatrix> matrices;

  const LoadedMatrix* Find(const std::string& name) const {
    auto it = matrices.find(name);
    return it == matrices.end() ? nullptr : &it->second;
  }
};

/// Reads <root>/CURRENT; NotFound before first publish.
Result<int64_t> ReadCurrentVersion(storage::Hdfs* hdfs,
                                   const std::string& root,
                                   sim::NodeId node);

/// Reads and parses <root>/v<version>/MANIFEST.json.
Result<SnapshotManifest> ReadManifest(storage::Hdfs* hdfs,
                                      const std::string& root,
                                      int64_t version, sim::NodeId node);

/// Reads shard `shard`'s blob, verifies its checksum against the
/// manifest (failure names the shard and path), and decodes it.
Result<LoadedShard> LoadShardBlob(storage::Hdfs* hdfs,
                                  const std::string& root,
                                  const SnapshotManifest& manifest,
                                  int32_t shard, sim::NodeId node);

}  // namespace psgraph::serving

#endif  // PSGRAPH_SERVING_SNAPSHOT_H_
