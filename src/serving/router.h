// Serving front-end: hash-routes requests across shards, micro-batches
// them per (shard, request type), and drives hot snapshot swaps.
//
// Batching policy (open-loop): a request's keys are split by the shard
// partitioner and appended to per-(shard, type) pending batches. A batch
// flushes when it reaches `max_batch` sub-requests, or when a later
// arrival finds its deadline (first-enqueue + max_delay) expired — the
// router then advances its own clock to the flush trigger and fans the
// due batches out in one RpcFabric::CallParallel per request type (one
// call per shard per round keeps the per-shard request order, and
// therefore the shard caches, deterministic at any parallelism).
// Request latency = completion of its slowest sub-batch − arrival, so
// both queueing-for-batch and shard service time are included.
//
// Hot swap: SwapTo(v) preloads v on every shard while the active
// version keeps serving, drains the pending batches, then activates v
// everywhere. Responses carry the serving version; a request whose
// sub-responses disagree is counted as torn (the swap test asserts the
// counter stays zero).

#ifndef PSGRAPH_SERVING_ROUTER_H_
#define PSGRAPH_SERVING_ROUTER_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/status.h"
#include "net/rpc.h"
#include "ps/partitioner.h"
#include "sim/cluster.h"

namespace psgraph::serving {

enum class RequestType : uint8_t { kLookup = 0, kInfer = 1 };

struct ServingRequest {
  RequestType type = RequestType::kLookup;
  std::vector<uint64_t> keys;
  int64_t arrival_ticks = 0;  ///< open-loop arrival stamp (sim ticks)
};

struct RequestRecord {
  int64_t arrival_ticks = 0;
  int64_t completion_ticks = -1;
  int64_t version = -1;  ///< version the response was served from
  bool failed = false;
  bool torn = false;  ///< sub-responses disagreed on the version
  bool done = false;
};

struct RouterOptions {
  int32_t num_shards = 1;
  uint64_t key_space = 1;    ///< must match the published snapshot's
  uint64_t max_batch = 16;   ///< sub-requests per (shard, type) batch
  double max_delay_sec = 2e-3;  ///< flush deadline from first enqueue
  /// Keys whose rows the snapshot publisher copied into every shard
  /// blob (SnapshotOptions::hot_keys): instead of hash placement they
  /// route round-robin over all shards, spreading the hottest keys'
  /// load. Must be sorted ascending.
  std::vector<uint64_t> hot_keys;
};

class ServingRouter {
 public:
  ServingRouter(sim::SimCluster* cluster, net::RpcFabric* fabric,
                sim::NodeId node, std::vector<sim::NodeId> shard_nodes,
                RouterOptions options);

  /// Enqueues one arrival-stamped request; flushes whatever batches the
  /// arrival time makes due first. Single-threaded by design (the
  /// front-end is one event loop; shard fan-out is where the
  /// parallelism lives).
  Status Submit(const ServingRequest& request);

  /// Drains every pending batch at the router's current clock.
  Status Flush();

  /// Hot swap: preload `version` on all shards (traffic keeps flowing
  /// conceptually; in this single-threaded loop, queued batches stay
  /// queued), drain, then activate everywhere.
  Status SwapTo(int64_t version);

  const std::vector<RequestRecord>& records() const { return records_; }
  uint64_t failed_requests() const;
  uint64_t torn_requests() const;

 private:
  struct SubItem {
    size_t request_index = 0;
    std::vector<uint64_t> keys;
  };
  struct Batch {
    std::vector<SubItem> items;
    int64_t deadline_ticks = 0;
  };

  /// Flushes the given (shard, type) batches at `trigger_ticks`; one
  /// CallParallel per request type.
  Status FlushBatches(
      const std::vector<std::pair<int32_t, RequestType>>& due,
      int64_t trigger_ticks);
  Status FlushDue(int64_t now_ticks);
  /// Refreshes the router queue gauges (queued sub-requests, open
  /// batches) and polls the continuous-telemetry sampler — the router
  /// loop is the serial scrape driver while a load is being served.
  void PollTelemetry(int64_t now_ticks);
  void CompleteSub(size_t request_index, int64_t version,
                   int64_t completion_ticks);
  void FailSub(size_t request_index, int64_t completion_ticks);

  Metrics& metrics() const { return cluster_->metrics(); }
  int64_t NowTicks() const { return cluster_->clock().NowTicks(node_); }

  /// Shard choice: hot keys round-robin (deterministic counter — the
  /// router is one event loop), everything else hash placement.
  int32_t ShardOf(uint64_t key);

  sim::SimCluster* cluster_;
  net::RpcFabric* fabric_;
  sim::NodeId node_;
  std::vector<sim::NodeId> shard_nodes_;
  RouterOptions options_;
  ps::Partitioner partitioner_;
  int64_t max_delay_ticks_ = 0;
  uint64_t hot_round_robin_ = 0;

  std::vector<RequestRecord> records_;
  std::vector<int32_t> pending_subs_;  ///< open sub-requests per record
  std::vector<std::array<Batch, 2>> pending_;  ///< [shard][type]
  /// Scratch for concatenating batch keys during a flush round; reset
  /// per FlushBatches call (the router is a single event loop).
  Arena flush_arena_;
};

}  // namespace psgraph::serving

#endif  // PSGRAPH_SERVING_ROUTER_H_
