#include "serving/router.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/metrics.h"
#include "common/trace.h"
#include "common/varint.h"
#include "sim/sim_clock.h"

namespace psgraph::serving {

namespace {

const char* MethodOf(RequestType type) {
  return type == RequestType::kLookup ? "serve.lookup" : "serve.infer";
}

}  // namespace

ServingRouter::ServingRouter(sim::SimCluster* cluster,
                             net::RpcFabric* fabric, sim::NodeId node,
                             std::vector<sim::NodeId> shard_nodes,
                             RouterOptions options)
    : cluster_(cluster),
      fabric_(fabric),
      node_(node),
      shard_nodes_(std::move(shard_nodes)),
      options_(options),
      partitioner_(ps::PartitionScheme::kHash, options.key_space,
                   options.num_shards),
      max_delay_ticks_(sim::SimClock::TicksOf(options.max_delay_sec)),
      pending_(static_cast<size_t>(options.num_shards)) {}

int32_t ServingRouter::ShardOf(uint64_t key) {
  if (!options_.hot_keys.empty() &&
      std::binary_search(options_.hot_keys.begin(),
                         options_.hot_keys.end(), key)) {
    return static_cast<int32_t>(
        hot_round_robin_++ %
        static_cast<uint64_t>(options_.num_shards));
  }
  return partitioner_.PartitionOf(key);
}

Status ServingRouter::Submit(const ServingRequest& request) {
  PSG_RETURN_NOT_OK(FlushDue(request.arrival_ticks));

  const size_t request_index = records_.size();
  RequestRecord record;
  record.arrival_ticks = request.arrival_ticks;
  records_.push_back(record);
  pending_subs_.push_back(0);
  metrics().Add("serving.requests", 1);

  // Split keys by serving shard, preserving key order within a shard
  // (hot keys round-robin — every shard's blob holds their rows).
  std::map<int32_t, std::vector<uint64_t>> by_shard;
  for (uint64_t key : request.keys) {
    by_shard[ShardOf(key)].push_back(key);
  }
  if (by_shard.empty()) {
    // Empty request: completes instantly at its arrival time.
    records_[request_index].done = true;
    records_[request_index].completion_ticks = request.arrival_ticks;
    return Status::OK();
  }
  pending_subs_[request_index] = static_cast<int32_t>(by_shard.size());

  const size_t type_idx = static_cast<size_t>(request.type);
  std::vector<std::pair<int32_t, RequestType>> full;
  for (auto& [shard, keys] : by_shard) {
    Batch& batch = pending_[static_cast<size_t>(shard)][type_idx];
    if (batch.items.empty()) {
      batch.deadline_ticks = request.arrival_ticks + max_delay_ticks_;
    }
    batch.items.push_back(SubItem{request_index, std::move(keys)});
    if (batch.items.size() >= options_.max_batch) {
      full.emplace_back(shard, request.type);
    }
  }
  if (!full.empty()) {
    const int64_t trigger = std::max(NowTicks(), request.arrival_ticks);
    PSG_RETURN_NOT_OK(FlushBatches(full, trigger));
  }
  // The router is the serial event loop of the serving tier: refresh
  // the queue gauges and scrape the telemetry series once per arrival.
  // The open-loop "now" is the arrival stamp (the router clock itself
  // only advances on flush triggers).
  PollTelemetry(std::max(NowTicks(), request.arrival_ticks));
  return Status::OK();
}

void ServingRouter::PollTelemetry(int64_t now_ticks) {
  uint64_t queued_subs = 0;
  uint64_t open_batches = 0;
  for (const auto& per_shard : pending_) {
    for (const Batch& batch : per_shard) {
      queued_subs += batch.items.size();
      open_batches += batch.items.empty() ? 0 : 1;
    }
  }
  metrics().SetGauge("serving.router.queue_depth",
                     static_cast<double>(queued_subs));
  metrics().SetGauge("serving.router.open_batches",
                     static_cast<double>(open_batches));
  cluster_->sampler().Poll(now_ticks);
}

Status ServingRouter::FlushDue(int64_t now_ticks) {
  std::vector<std::pair<int32_t, RequestType>> due;
  int64_t min_deadline = 0;
  for (size_t shard = 0; shard < pending_.size(); ++shard) {
    for (size_t t = 0; t < 2; ++t) {
      const Batch& batch = pending_[shard][t];
      if (batch.items.empty() || batch.deadline_ticks > now_ticks) {
        continue;
      }
      if (due.empty() || batch.deadline_ticks < min_deadline) {
        min_deadline = batch.deadline_ticks;
      }
      due.emplace_back(static_cast<int32_t>(shard),
                       static_cast<RequestType>(t));
    }
  }
  if (due.empty()) return Status::OK();
  // The earliest expired deadline triggers the flush; co-due batches
  // ride along in the same fan-out round.
  return FlushBatches(due, std::max(NowTicks(), min_deadline));
}

Status ServingRouter::Flush() {
  std::vector<std::pair<int32_t, RequestType>> due;
  // The router clock only advances on flush triggers, so it can sit
  // behind the newest arrivals still queued; a drain must not complete
  // a request before it arrived.
  int64_t latest_arrival = 0;
  for (size_t shard = 0; shard < pending_.size(); ++shard) {
    for (size_t t = 0; t < 2; ++t) {
      const Batch& batch = pending_[shard][t];
      if (batch.items.empty()) continue;
      for (const SubItem& item : batch.items) {
        latest_arrival = std::max(
            latest_arrival, records_[item.request_index].arrival_ticks);
      }
      due.emplace_back(static_cast<int32_t>(shard),
                       static_cast<RequestType>(t));
    }
  }
  if (due.empty()) return Status::OK();
  PSG_RETURN_NOT_OK(FlushBatches(due, std::max(NowTicks(), latest_arrival)));
  PollTelemetry(NowTicks());
  return Status::OK();
}

Status ServingRouter::FlushBatches(
    const std::vector<std::pair<int32_t, RequestType>>& due,
    int64_t trigger_ticks) {
  // Waiting for a batch to fill (or its deadline) is queue delay, not
  // router compute — attribute the idle jump to serving.queue.
  cluster_->cost_ledger().Record(
      node_, sim::CostCategory::kServingQueue,
      cluster_->clock().AdvanceToTicksJump(node_, trigger_ticks));
  flush_arena_.Reset();

  Status result = Status::OK();
  // One CallParallel per request type: at most one in-flight call per
  // shard endpoint per round, so each shard sees a deterministic
  // request sequence (and therefore deterministic cache state).
  for (const RequestType type :
       {RequestType::kLookup, RequestType::kInfer}) {
    std::vector<int32_t> shards;
    std::vector<std::vector<SubItem>> taken;
    std::vector<net::RpcFabric::ParallelCall> calls;
    for (const auto& [shard, batch_type] : due) {
      if (batch_type != type) continue;
      Batch& batch = pending_[static_cast<size_t>(shard)]
                             [static_cast<size_t>(type)];
      if (batch.items.empty()) continue;
      metrics().Observe("serving.batch.occupancy", batch.items.size());
      metrics().Add("serving.batches", 1);
      auto keys = MakeArenaVector<uint64_t>(&flush_arena_);
      for (const SubItem& item : batch.items) {
        keys.insert(keys.end(), item.keys.begin(), item.keys.end());
      }
      ByteBuffer req;
      PutDeltaList(&req, keys.data(), keys.size());
      calls.push_back({shard_nodes_[static_cast<size_t>(shard)],
                       MethodOf(type), std::move(req)});
      shards.push_back(shard);
      taken.push_back(std::move(batch.items));
      batch.items.clear();
      batch.deadline_ticks = 0;
    }
    if (calls.empty()) continue;

    const int64_t t0 = NowTicks();
    ScopedSpan span(&cluster_->tracer(), "router.flush", node_, t0,
                    [this] { return NowTicks(); });
    Result<std::vector<std::vector<uint8_t>>> responses =
        fabric_->CallParallel(node_, std::move(calls));
    const int64_t completion = NowTicks();
    if (!responses.ok()) {
      for (const std::vector<SubItem>& items : taken) {
        for (const SubItem& item : items) {
          FailSub(item.request_index, completion);
        }
      }
      metrics().Add("serving.errors", 1);
      if (result.ok()) result = responses.status();
      continue;
    }
    for (size_t i = 0; i < responses.value().size(); ++i) {
      const std::vector<uint8_t>& resp = responses.value()[i];
      ByteReader reader(resp.data(), resp.size());
      int64_t version = -1;
      Status st = reader.Read(&version);
      if (!st.ok()) {
        for (const SubItem& item : taken[i]) {
          FailSub(item.request_index, completion);
        }
        metrics().Add("serving.errors", 1);
        if (result.ok()) result = st;
        continue;
      }
      for (const SubItem& item : taken[i]) {
        CompleteSub(item.request_index, version, completion);
      }
    }
  }
  return result;
}

void ServingRouter::CompleteSub(size_t request_index, int64_t version,
                                int64_t completion_ticks) {
  RequestRecord& record = records_[request_index];
  if (record.version == -1) {
    record.version = version;
  } else if (record.version != version) {
    record.torn = true;
    metrics().Add("serving.torn_reads", 1);
  }
  record.completion_ticks =
      std::max(record.completion_ticks, completion_ticks);
  if (--pending_subs_[request_index] == 0 && !record.done) {
    record.done = true;
    metrics().Add("serving.requests_completed", 1);
    metrics().Observe(
        "serving.request.latency_ticks",
        static_cast<uint64_t>(
            std::max<int64_t>(0, record.completion_ticks -
                                     record.arrival_ticks)));
  }
}

void ServingRouter::FailSub(size_t request_index,
                            int64_t completion_ticks) {
  RequestRecord& record = records_[request_index];
  record.failed = true;
  record.completion_ticks =
      std::max(record.completion_ticks, completion_ticks);
  if (--pending_subs_[request_index] == 0 && !record.done) {
    record.done = true;
    metrics().Add("serving.requests_failed", 1);
  }
}

Status ServingRouter::SwapTo(int64_t version) {
  const int64_t t0 = NowTicks();
  ScopedSpan span(&cluster_->tracer(), "router.swap", node_, t0,
                  [this] { return NowTicks(); });
  // Preload everywhere while the active version keeps serving.
  {
    std::vector<net::RpcFabric::ParallelCall> calls;
    calls.reserve(shard_nodes_.size());
    for (sim::NodeId shard_node : shard_nodes_) {
      ByteBuffer req;
      req.Write<int64_t>(version);
      calls.push_back({shard_node, "serve.load", std::move(req)});
    }
    PSG_RETURN_NOT_OK(fabric_->CallParallel(node_, std::move(calls))
                          .status());
  }
  // Drain: no request may straddle the flip.
  PSG_RETURN_NOT_OK(Flush());
  {
    std::vector<net::RpcFabric::ParallelCall> calls;
    calls.reserve(shard_nodes_.size());
    for (sim::NodeId shard_node : shard_nodes_) {
      ByteBuffer req;
      req.Write<int64_t>(version);
      calls.push_back({shard_node, "serve.activate", std::move(req)});
    }
    PSG_RETURN_NOT_OK(fabric_->CallParallel(node_, std::move(calls))
                          .status());
  }
  metrics().Add("serving.swaps", 1);
  PollTelemetry(NowTicks());
  return Status::OK();
}

uint64_t ServingRouter::failed_requests() const {
  uint64_t n = 0;
  for (const RequestRecord& r : records_) n += r.failed ? 1 : 0;
  return n;
}

uint64_t ServingRouter::torn_requests() const {
  uint64_t n = 0;
  for (const RequestRecord& r : records_) n += r.torn ? 1 : 0;
  return n;
}

}  // namespace psgraph::serving
