#include "serving/load_gen.h"

#include <cmath>

#include "common/hash.h"
#include "sim/sim_clock.h"

namespace psgraph::serving {

namespace {

double ZetaStatic(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n == 0 ? 1 : n), theta_(theta) {
  zetan_ = ZetaStatic(n_, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - ZetaStatic(2, theta_) / zetan_);
}

uint64_t ZipfianGenerator::Next(Rng& rng) const {
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t rank = static_cast<uint64_t>(
      static_cast<double>(n_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

std::vector<ServingRequest> GenerateLoad(const LoadGenOptions& options) {
  Rng arrivals_rng(Hash64(options.seed) ^ 0x61727269);  // arrival stream
  Rng keys_rng(Hash64(options.seed) ^ 0x6b657973);      // key stream
  ZipfianGenerator zipf(options.key_space, options.zipf_theta);

  std::vector<ServingRequest> requests;
  requests.reserve(options.num_requests);
  double t = options.start_sec;
  const uint64_t keys_per_request =
      options.keys_per_request == 0 ? 1 : options.keys_per_request;
  for (uint64_t i = 0; i < options.num_requests; ++i) {
    // Poisson inter-arrival: exponential with mean 1/rate.
    const double u = arrivals_rng.NextDouble();
    t += -std::log(1.0 - u) / options.rate_per_sec;

    ServingRequest request;
    request.arrival_ticks = sim::SimClock::TicksOf(t);
    request.type = keys_rng.NextDouble() < options.infer_fraction
                       ? RequestType::kInfer
                       : RequestType::kLookup;
    request.keys.reserve(keys_per_request);
    for (uint64_t k = 0; k < keys_per_request; ++k) {
      uint64_t key;
      if (options.zipfian) {
        // Scramble the rank so popular keys spread across shards.
        key = Hash64(zipf.Next(keys_rng)) % options.key_space;
      } else {
        key = keys_rng.NextBounded(options.key_space);
      }
      request.keys.push_back(key);
    }
    requests.push_back(std::move(request));
  }
  return requests;
}

}  // namespace psgraph::serving
