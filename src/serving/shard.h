// One serving shard: a sim-node process that answers embedding lookups
// and GraphSage forward passes from a loaded snapshot version.
//
// Versioning: a shard holds an *active* version (serving traffic) and
// an optional *standby* version (preloaded by "serve.load" while the
// active one keeps serving). "serve.activate" flips standby to active
// under the shard's event loop — in-flight requests either ran entirely
// before or entirely after the flip, so no response mixes versions.
// Every response is stamped with the version it was served from; the
// router uses the stamp to prove the swap was not torn.
//
// Row cache: the loaded snapshot image lives on the shard's local disk
// (in the cost model's eyes); an LRU row cache of `cache_rows` rows
// decides which reads are memory hits (cheap compute charge) versus
// disk reads (seek + transfer charge). Cache state only changes under
// the endpoint's serial mutex, so hit sequences are deterministic at
// any thread-pool parallelism.

#ifndef PSGRAPH_SERVING_SHARD_H_
#define PSGRAPH_SERVING_SHARD_H_

#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/flat_hash.h"
#include "common/result.h"
#include "common/status.h"
#include "minitorch/tensor.h"
#include "net/rpc.h"
#include "serving/snapshot.h"
#include "sim/cluster.h"
#include "storage/hdfs.h"

namespace psgraph::serving {

struct ShardOptions {
  std::string root;             ///< snapshot root on HDFS
  std::string lookup_matrix;    ///< embeddings served by Lookup
  std::string feature_matrix;   ///< Infer input rows; empty = lookup_matrix
  std::string adjacency_matrix; ///< neighbor table; empty disables Infer
  std::string weight_matrix;    ///< replicated dense layer [2d x out]
  uint64_t cache_rows = 4096;   ///< LRU capacity in rows
};

class ServingShard {
 public:
  ServingShard(int32_t shard_index, sim::SimCluster* cluster,
               storage::Hdfs* hdfs, sim::NodeId node, ShardOptions options);
  ~ServingShard();

  /// Creates this shard's endpoint, registers the "serve.*" handlers and
  /// binds it on `fabric` (replacing whatever training-side endpoint the
  /// node had — the serving tier takes the node over after training).
  Status Start(net::RpcFabric* fabric);

  int32_t shard_index() const { return shard_index_; }
  sim::NodeId node() const { return node_; }
  int64_t active_version() const {
    return active_ == nullptr ? -1 : active_->image.version;
  }

  // --- direct API; the RPC handlers decode into these ---

  /// Reads the version's manifest and this shard's blob into standby.
  /// The active version keeps serving throughout.
  Status Preload(int64_t version);
  /// Flips the preloaded standby to active; the retiring version's
  /// memory is released and the row cache reset (its rows belonged to
  /// the old version). Fails if `version` was not preloaded.
  Status Activate(int64_t version);

  /// Appends `keys.size() * cols` floats to `out` (init rows for keys
  /// the snapshot never saw) and stamps the serving version.
  Status Lookup(std::span<const uint64_t> keys, int64_t* version,
                std::vector<float>* out);

  /// GraphSage mean-aggregate forward over the snapshotted neighbor
  /// table: h = L2Norm(Relu([x | mean(x_nbrs)] W1)). Appends one output
  /// row per node.
  Status Infer(std::span<const uint64_t> nodes, int64_t* version,
               std::vector<float>* out);

  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t cache_misses() const { return cache_misses_; }

 private:
  struct VersionState {
    SnapshotManifest manifest;
    LoadedShard image;
    minitorch::Tensor w1;  ///< materialized replicated weights (Infer)
  };

  /// Touches (matrix, key) through the LRU cache, charging a memory hit
  /// or a local-disk read, and returns the stored row (nullptr when the
  /// snapshot has no row for the key — callers emit init values).
  const std::vector<float>* CachedRow(const VersionState& state,
                                      const std::string& matrix,
                                      uint32_t matrix_ordinal,
                                      uint64_t key, uint64_t row_bytes);
  void ResetCache();
  /// Publishes the cumulative hit rate as a per-shard gauge
  /// (`serving.shard<i>.cache_hit_rate`) — one SetGauge per served
  /// batch, name cached in the ctor to keep the hot path allocation-free.
  void UpdateHitRateGauge();

  Metrics& metrics() const {
    return cluster_ != nullptr ? cluster_->metrics() : Metrics::Global();
  }
  int64_t NowTicks() const {
    return cluster_ != nullptr ? cluster_->clock().NowTicks(node_) : 0;
  }
  void Charge(double seconds) {
    if (cluster_ != nullptr) cluster_->clock().Advance(node_, seconds);
  }

  int32_t shard_index_;
  sim::SimCluster* cluster_;
  storage::Hdfs* hdfs_;
  sim::NodeId node_;
  ShardOptions options_;
  std::shared_ptr<net::RpcEndpoint> endpoint_;

  std::shared_ptr<VersionState> active_;
  std::shared_ptr<VersionState> standby_;

  /// LRU over (matrix ordinal << 56 | row key); the recency list holds
  /// the composite key, the index maps it to its list position. The
  /// index is a flat table — it sits on every row touch.
  std::list<uint64_t> lru_;
  FlatHashMap<std::list<uint64_t>::iterator> resident_;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
  const std::string hit_rate_gauge_name_;
  /// Per-request decode scratch for the RPC handlers; reset at the top
  /// of each request under the endpoint's serial mutex.
  Arena request_arena_;
};

}  // namespace psgraph::serving

#endif  // PSGRAPH_SERVING_SHARD_H_
