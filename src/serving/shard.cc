#include "serving/shard.h"

#include <algorithm>
#include <utility>

#include "common/metrics.h"
#include "common/trace.h"
#include "common/varint.h"
#include "common/wire.h"
#include "minitorch/ops.h"

namespace psgraph::serving {

namespace {

/// Composite LRU key: matrices per snapshot are few, row keys are
/// vertex ids well below 2^56.
uint64_t CacheKey(uint32_t matrix_ordinal, uint64_t key) {
  return (uint64_t{matrix_ordinal} << 56) | (key & ((uint64_t{1} << 56) - 1));
}

}  // namespace

ServingShard::ServingShard(int32_t shard_index, sim::SimCluster* cluster,
                           storage::Hdfs* hdfs, sim::NodeId node,
                           ShardOptions options)
    : shard_index_(shard_index),
      cluster_(cluster),
      hdfs_(hdfs),
      node_(node),
      options_(std::move(options)),
      hit_rate_gauge_name_("serving.shard" + std::to_string(shard_index) +
                           ".cache_hit_rate") {
  if (options_.feature_matrix.empty()) {
    options_.feature_matrix = options_.lookup_matrix;
  }
  if (options_.cache_rows == 0) options_.cache_rows = 1;
}

ServingShard::~ServingShard() {
  if (cluster_ != nullptr) {
    if (active_ != nullptr) {
      cluster_->memory().Release(node_, active_->image.blob_bytes);
    }
    if (standby_ != nullptr) {
      cluster_->memory().Release(node_, standby_->image.blob_bytes);
    }
  }
}

Status ServingShard::Start(net::RpcFabric* fabric) {
  endpoint_ = std::make_shared<net::RpcEndpoint>();
  endpoint_->Register(
      "serve.load",
      [this](const std::vector<uint8_t>& req) -> Result<ByteBuffer> {
        ByteReader reader(req.data(), req.size());
        int64_t version = 0;
        PSG_RETURN_NOT_OK(reader.Read(&version));
        PSG_RETURN_NOT_OK(Preload(version));
        return ByteBuffer();
      });
  endpoint_->Register(
      "serve.activate",
      [this](const std::vector<uint8_t>& req) -> Result<ByteBuffer> {
        ByteReader reader(req.data(), req.size());
        int64_t version = 0;
        PSG_RETURN_NOT_OK(reader.Read(&version));
        PSG_RETURN_NOT_OK(Activate(version));
        return ByteBuffer();
      });
  endpoint_->Register(
      "serve.lookup",
      [this](const std::vector<uint8_t>& req) -> Result<ByteBuffer> {
        request_arena_.Reset();
        ByteReader reader(req.data(), req.size());
        auto keys = MakeArenaVector<uint64_t>(&request_arena_);
        PSG_RETURN_NOT_OK(GetDeltaList(&reader, &keys));
        int64_t version = -1;
        std::vector<float> values;
        PSG_RETURN_NOT_OK(
            Lookup({keys.data(), keys.size()}, &version, &values));
        ByteBuffer resp;
        resp.Write<int64_t>(version);
        WriteFloatBlock(&resp, values);
        return resp;
      });
  endpoint_->Register(
      "serve.infer",
      [this](const std::vector<uint8_t>& req) -> Result<ByteBuffer> {
        request_arena_.Reset();
        ByteReader reader(req.data(), req.size());
        auto nodes = MakeArenaVector<uint64_t>(&request_arena_);
        PSG_RETURN_NOT_OK(GetDeltaList(&reader, &nodes));
        int64_t version = -1;
        std::vector<float> values;
        PSG_RETURN_NOT_OK(
            Infer({nodes.data(), nodes.size()}, &version, &values));
        ByteBuffer resp;
        resp.Write<int64_t>(version);
        WriteFloatBlock(&resp, values);
        return resp;
      });
  endpoint_->Register(
      "serve.version",
      [this](const std::vector<uint8_t>&) -> Result<ByteBuffer> {
        ByteBuffer resp;
        resp.Write<int64_t>(active_version());
        return resp;
      });
  fabric->Bind(node_, endpoint_);
  return Status::OK();
}

Status ServingShard::Preload(int64_t version) {
  auto state = std::make_shared<VersionState>();
  PSG_ASSIGN_OR_RETURN(state->manifest,
                       ReadManifest(hdfs_, options_.root, version, node_));
  PSG_ASSIGN_OR_RETURN(
      state->image, LoadShardBlob(hdfs_, options_.root, state->manifest,
                                  shard_index_, node_));
  if (!options_.weight_matrix.empty()) {
    const LoadedMatrix* w = state->image.Find(options_.weight_matrix);
    if (w == nullptr) {
      return Status::NotFound("serving: snapshot v" +
                              std::to_string(version) +
                              " has no weight matrix '" +
                              options_.weight_matrix + "'");
    }
    const int64_t rows = static_cast<int64_t>(w->info.num_rows);
    const int64_t cols = static_cast<int64_t>(w->info.num_cols);
    std::vector<float> data(static_cast<size_t>(rows * cols),
                            w->info.init_value);
    for (const auto& [key, row] : w->rows) {
      if (key >= w->info.num_rows) continue;
      std::copy(row.begin(), row.end(),
                data.begin() + static_cast<int64_t>(key) * cols);
    }
    state->w1 = minitorch::Tensor::FromData(rows, cols, std::move(data));
  }
  if (cluster_ != nullptr) {
    if (standby_ != nullptr) {
      cluster_->memory().Release(node_, standby_->image.blob_bytes);
    }
    PSG_RETURN_NOT_OK(cluster_->memory().Allocate(
        node_, state->image.blob_bytes, "serving snapshot"));
  }
  standby_ = std::move(state);
  metrics().Add("serving.preloads", 1);
  return Status::OK();
}

Status ServingShard::Activate(int64_t version) {
  std::shared_ptr<VersionState> incoming;
  if (standby_ != nullptr && standby_->image.version == version) {
    incoming = std::move(standby_);
    standby_ = nullptr;
  } else if (active_ != nullptr && active_->image.version == version) {
    return Status::OK();  // already serving it
  } else {
    return Status::FailedPrecondition(
        "serving: shard " + std::to_string(shard_index_) +
        " asked to activate v" + std::to_string(version) +
        " which was never preloaded");
  }
  if (cluster_ != nullptr && active_ != nullptr) {
    cluster_->memory().Release(node_, active_->image.blob_bytes);
  }
  active_ = std::move(incoming);
  // The cache indexed rows of the retired version.
  ResetCache();
  metrics().Add("serving.activations", 1);
  return Status::OK();
}

const std::vector<float>* ServingShard::CachedRow(
    const VersionState& state, const std::string& matrix,
    uint32_t matrix_ordinal, uint64_t key, uint64_t row_bytes) {
  const LoadedMatrix* m = state.image.Find(matrix);
  const std::vector<float>* row = nullptr;
  if (m != nullptr) {
    auto it = m->rows.find(key);
    if (it != m->rows.end()) row = &it->second;
  }
  // Every touch is a probe; the watchdog's burn-rate rule divides the
  // windowed miss delta by this windowed total.
  metrics().Add("serving.cache_probes", 1);
  const uint64_t ck = CacheKey(matrix_ordinal, key);
  auto res = resident_.find(ck);
  if (res != resident_.end()) {
    // Memory hit: one hash probe's worth of work.
    lru_.splice(lru_.begin(), lru_, res->second);
    ++cache_hits_;
    metrics().Add("serving.cache_hits", 1);
    if (cluster_ != nullptr) {
      Charge(cluster_->cost().ComputeTime(1));
    }
    return row;
  }
  ++cache_misses_;
  metrics().Add("serving.cache_misses", 1);
  if (cluster_ != nullptr) {
    // Cold row: fetched from the shard's local snapshot copy.
    Charge(cluster_->cost().DiskReadTime(row == nullptr ? 0 : row_bytes));
  }
  if (row != nullptr) {
    lru_.push_front(ck);
    resident_.emplace(ck, lru_.begin());
    if (lru_.size() > options_.cache_rows) {
      resident_.erase(lru_.back());
      lru_.pop_back();
    }
  }
  return row;
}

void ServingShard::ResetCache() {
  lru_.clear();
  resident_.clear();
}

Status ServingShard::Lookup(std::span<const uint64_t> keys,
                            int64_t* version, std::vector<float>* out) {
  if (active_ == nullptr) {
    return Status::FailedPrecondition(
        "serving: shard " + std::to_string(shard_index_) +
        " has no active snapshot");
  }
  const VersionState& state = *active_;
  const LoadedMatrix* m = state.image.Find(options_.lookup_matrix);
  if (m == nullptr) {
    return Status::NotFound("serving: snapshot has no matrix '" +
                            options_.lookup_matrix + "'");
  }
  *version = state.image.version;
  const uint32_t cols = m->info.num_cols;
  out->reserve(out->size() + keys.size() * cols);
  for (uint64_t key : keys) {
    const std::vector<float>* row = CachedRow(
        state, options_.lookup_matrix, 0, key, m->info.RowBytes());
    if (row != nullptr) {
      out->insert(out->end(), row->begin(), row->end());
    } else {
      out->insert(out->end(), cols, m->info.init_value);
    }
  }
  metrics().Add("serving.lookup_keys", keys.size());
  UpdateHitRateGauge();
  return Status::OK();
}

Status ServingShard::Infer(std::span<const uint64_t> nodes,
                           int64_t* version, std::vector<float>* out) {
  if (active_ == nullptr) {
    return Status::FailedPrecondition(
        "serving: shard " + std::to_string(shard_index_) +
        " has no active snapshot");
  }
  if (options_.adjacency_matrix.empty() ||
      options_.weight_matrix.empty()) {
    return Status::FailedPrecondition(
        "serving: shard not configured for inference (adjacency/weight "
        "matrix unset)");
  }
  const VersionState& state = *active_;
  const LoadedMatrix* feats = state.image.Find(options_.feature_matrix);
  const LoadedMatrix* adj = state.image.Find(options_.adjacency_matrix);
  if (feats == nullptr || adj == nullptr) {
    return Status::NotFound("serving: snapshot missing feature or "
                            "adjacency matrix");
  }
  *version = state.image.version;
  const int64_t d = feats->info.num_cols;
  const uint64_t row_bytes = feats->info.RowBytes();

  // Gather node features and their neighbor lists; neighbor features are
  // deduplicated into one tensor indexed by segments.
  const int64_t n = static_cast<int64_t>(nodes.size());
  std::vector<float> x_data;
  x_data.reserve(static_cast<size_t>(n * d));
  std::vector<std::vector<int64_t>> segments(nodes.size());
  std::vector<uint64_t> nbr_ids;
  FlatHashMap<int64_t> nbr_index;
  for (size_t i = 0; i < nodes.size(); ++i) {
    const uint64_t key = nodes[i];
    const std::vector<float>* row =
        CachedRow(state, options_.feature_matrix, 1, key, row_bytes);
    if (row != nullptr) {
      x_data.insert(x_data.end(), row->begin(), row->end());
    } else {
      x_data.insert(x_data.end(), static_cast<size_t>(d),
                    feats->info.init_value);
    }
    auto adj_it = adj->adjacency.find(key);
    if (adj_it == adj->adjacency.end()) continue;
    for (uint64_t nb : adj_it->second) {
      auto [it, inserted] =
          nbr_index.emplace(nb, static_cast<int64_t>(nbr_ids.size()));
      if (inserted) nbr_ids.push_back(nb);
      segments[i].push_back(it->second);
    }
  }
  std::vector<float> nbr_data;
  nbr_data.reserve(nbr_ids.size() * static_cast<size_t>(d));
  for (uint64_t nb : nbr_ids) {
    const std::vector<float>* row =
        CachedRow(state, options_.feature_matrix, 1, nb, row_bytes);
    if (row != nullptr) {
      nbr_data.insert(nbr_data.end(), row->begin(), row->end());
    } else {
      nbr_data.insert(nbr_data.end(), static_cast<size_t>(d),
                      feats->info.init_value);
    }
  }

  using minitorch::Tensor;
  Tensor x = Tensor::FromData(n, d, std::move(x_data));
  Tensor nbrs =
      nbr_ids.empty()
          ? Tensor::Zeros(1, d)  // SegmentMean needs a non-empty source
          : Tensor::FromData(static_cast<int64_t>(nbr_ids.size()), d,
                             std::move(nbr_data));
  Tensor agg = minitorch::SegmentMean(nbrs, segments);
  Tensor h = minitorch::Relu(
      minitorch::Matmul(minitorch::ConcatCols(x, agg), state.w1));
  Tensor result = minitorch::RowL2Normalize(h);
  if (cluster_ != nullptr) {
    // Dense cost: the matmul dominates — [n x 2d] * [2d x out].
    const uint64_t flops = 2ull * static_cast<uint64_t>(n) *
                           static_cast<uint64_t>(2 * d) *
                           static_cast<uint64_t>(state.w1.cols());
    Charge(cluster_->cost().FlopsTime(flops));
  }
  out->insert(out->end(), result.data().begin(), result.data().end());
  metrics().Add("serving.infer_nodes", nodes.size());
  UpdateHitRateGauge();
  return Status::OK();
}

void ServingShard::UpdateHitRateGauge() {
  const uint64_t probes = cache_hits_ + cache_misses_;
  if (probes == 0) return;
  metrics().SetGauge(hit_rate_gauge_name_,
                     static_cast<double>(cache_hits_) /
                         static_cast<double>(probes));
}

}  // namespace psgraph::serving
