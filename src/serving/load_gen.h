// Deterministic open-loop request generator for the serving bench.
//
// Arrivals are a Poisson process at `rate_per_sec` on the simulated
// clock (the generator never looks at wall time, so runs are
// reproducible bit-for-bit from the seed). Key popularity is either
// uniform or Zipfian; the Zipfian generator is the Gray et al. rejection
// form used by YCSB, with the rank scrambled through Hash64 so the hot
// keys spread across shards instead of clustering on one.

#ifndef PSGRAPH_SERVING_LOAD_GEN_H_
#define PSGRAPH_SERVING_LOAD_GEN_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "serving/router.h"

namespace psgraph::serving {

/// Zipfian ranks in [0, n) with parameter theta in (0, 1); rank 0 is the
/// most popular. Precomputes the harmonic normalizer once (O(n)).
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta);

  uint64_t Next(Rng& rng) const;

 private:
  uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
};

struct LoadGenOptions {
  uint64_t num_requests = 10000;
  double rate_per_sec = 5000.0;  ///< open-loop arrival rate
  bool zipfian = true;
  double zipf_theta = 0.99;
  uint64_t key_space = 1;
  uint64_t keys_per_request = 1;
  double infer_fraction = 0.0;  ///< share of requests that are Infer
  uint64_t seed = 1;
  double start_sec = 0.0;  ///< arrival time of the first request window
};

/// The full arrival-stamped request schedule, sorted by arrival time.
std::vector<ServingRequest> GenerateLoad(const LoadGenOptions& options);

}  // namespace psgraph::serving

#endif  // PSGRAPH_SERVING_LOAD_GEN_H_
