#include "serving/snapshot.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "common/env.h"
#include "common/hash.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "common/varint.h"
#include "common/wire.h"
#include "net/rpc.h"
#include "ps/partitioner.h"

namespace psgraph::serving {

namespace {

constexpr uint32_t kBlobMagic = 0x5053534E;  // "PSSN"
/// Bumped to 2 with the delta-key / quantized-row layout. The publisher
/// and loader ship together, so the loader only accepts its own version.
constexpr uint8_t kBlobFormatVersion = 2;

/// Checksums render through the shared hex helpers in common/hash.h so
/// every text format spells a 64-bit hash the same way.
Result<uint64_t> ChecksumFromHex(const std::string& hex) {
  uint64_t value = 0;
  if (!HashFromHex(hex, &value)) {
    return Status::IoError("snapshot manifest: bad checksum '" + hex + "'");
  }
  return value;
}

const char* KindName(ps::StorageKind kind) {
  return kind == ps::StorageKind::kNeighbors ? "neighbors" : "rows";
}

Result<const JsonValue*> Field(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) {
    return Status::IoError(std::string("snapshot manifest: missing '") +
                           key + "'");
  }
  return v;
}

/// Driver-side merge image of one matrix across PS servers. std::map so
/// blob emission is key-ordered without a separate sort.
struct MergedMatrix {
  SnapshotMatrixInfo info;
  std::map<uint64_t, std::vector<float>> rows;
  std::map<uint64_t, std::vector<uint64_t>> adjacency;
};

}  // namespace

std::string SnapshotVersionDir(const std::string& root, int64_t version) {
  return root + "/v" + std::to_string(version);
}

std::string SnapshotManifestPath(const std::string& root, int64_t version) {
  return SnapshotVersionDir(root, version) + "/MANIFEST.json";
}

std::string SnapshotBlobPath(const std::string& root, int64_t version,
                             int32_t shard) {
  return SnapshotVersionDir(root, version) + "/shard_" +
         std::to_string(shard) + ".blob";
}

std::string SnapshotCurrentPath(const std::string& root) {
  return root + "/CURRENT";
}

SnapshotPublisher::SnapshotPublisher(ps::PsContext* ps,
                                     SnapshotOptions options)
    : ps_(ps), options_(std::move(options)) {}

Result<int64_t> SnapshotPublisher::CurrentVersion() const {
  return ReadCurrentVersion(ps_->hdfs(), options_.root,
                            ps_->cluster()->config().driver());
}

Result<SnapshotManifest> SnapshotPublisher::Publish() {
  sim::SimCluster* cluster = ps_->cluster();
  const sim::NodeId driver = cluster->config().driver();
  const int64_t t0 = cluster->clock().NowTicks(driver);
  ScopedSpan span(&cluster->tracer(), "snapshot.publish", driver, t0,
                  [cluster, driver] {
                    return cluster->clock().NowTicks(driver);
                  });

  int64_t version = 1;
  {
    Result<int64_t> current = CurrentVersion();
    if (current.ok()) {
      version = current.value() + 1;
    } else if (!current.status().IsNotFound()) {
      return current.status();
    }
  }

  // Resolve the row codec before any RPC work so a bad knob fails fast.
  const std::string quant_name =
      !options_.quant.empty() ? options_.quant
                              : EnvString("PSGRAPH_SNAPSHOT_QUANT", "none");
  PSG_ASSIGN_OR_RETURN(const QuantMode quant, ParseQuantMode(quant_name));

  // 1. Pull every PS server's partition of each requested matrix.
  std::vector<MergedMatrix> merged;
  merged.reserve(options_.matrices.size());
  for (const SnapshotMatrixSpec& spec : options_.matrices) {
    PSG_ASSIGN_OR_RETURN(ps::MatrixMeta meta, ps_->GetMatrix(spec.name));
    MergedMatrix m;
    m.info.name = meta.name;
    m.info.kind = meta.kind;
    m.info.num_rows = meta.num_rows;
    m.info.num_cols = meta.num_cols;
    m.info.init_value = meta.init_value;
    m.info.replicated = spec.replicated;

    std::vector<net::RpcFabric::ParallelCall> calls;
    calls.reserve(ps_->num_servers());
    for (int32_t s = 0; s < ps_->num_servers(); ++s) {
      ByteBuffer req;
      req.Write<ps::MatrixId>(meta.id);
      calls.push_back({ps_->ServerNode(s), "ps.export", std::move(req)});
    }
    PSG_ASSIGN_OR_RETURN(
        std::vector<std::vector<uint8_t>> responses,
        ps_->fabric()->CallParallel(driver, std::move(calls)));

    uint64_t merged_bytes = 0;
    for (const std::vector<uint8_t>& resp : responses) {
      merged_bytes += resp.size();
      ByteReader reader(resp.data(), resp.size());
      uint32_t col_begin = 0;
      uint32_t slice_cols = 0;
      PSG_RETURN_NOT_OK(reader.Read(&col_begin));
      PSG_RETURN_NOT_OK(reader.Read(&slice_cols));
      std::vector<uint64_t> row_keys;
      PSG_RETURN_NOT_OK(GetDeltaList(&reader, &row_keys));
      std::vector<float> slice(slice_cols);
      for (uint64_t key : row_keys) {
        PSG_RETURN_NOT_OK(reader.ReadRaw(
            slice.data(), size_t{slice_cols} * sizeof(float)));
        std::vector<float>& row = m.rows[key];
        if (row.empty()) {
          row.assign(meta.num_cols, meta.init_value);
        }
        for (uint32_t c = 0; c < slice_cols; ++c) {
          if (col_begin + c < row.size()) row[col_begin + c] = slice[c];
        }
      }
      std::vector<uint64_t> adj_keys;
      PSG_RETURN_NOT_OK(GetDeltaList(&reader, &adj_keys));
      for (uint64_t key : adj_keys) {
        std::vector<uint64_t> neighbors;
        std::vector<float> weights;
        PSG_RETURN_NOT_OK(GetDeltaList(&reader, &neighbors));
        PSG_RETURN_NOT_OK(ReadFloatBlock(&reader, &weights));
        m.adjacency[key] = std::move(neighbors);
      }
    }
    cluster->clock().Advance(
        driver, cluster->cost().ComputeTime(merged_bytes / sizeof(float)));
    merged.push_back(std::move(m));
  }

  // 2. Shard placement. Key space defaults to the widest sharded matrix.
  uint64_t key_space = options_.key_space;
  if (key_space == 0) {
    for (const MergedMatrix& m : merged) {
      if (!m.info.replicated) {
        key_space = std::max(key_space, m.info.num_rows);
      }
    }
    if (key_space == 0) key_space = 1;
  }
  const int32_t num_shards = std::max(options_.num_shards, 1);
  ps::Partitioner part(ps::PartitionScheme::kHash, key_space, num_shards);

  // Hot keys (skew-aware serving, ps/replication.h): copied into every
  // blob so any shard can answer a lookup for them.
  const std::set<uint64_t> hot(options_.hot_keys.begin(),
                               options_.hot_keys.end());

  // Halo keys per shard: feature rows referenced by shard-local
  // adjacency but placed on another shard.
  std::vector<std::set<uint64_t>> halo(num_shards);
  for (const MergedMatrix& m : merged) {
    if (m.info.replicated) continue;
    for (const auto& [key, neighbors] : m.adjacency) {
      const int32_t owner = part.PartitionOf(key);
      for (uint64_t nb : neighbors) {
        if (part.PartitionOf(nb) != owner) halo[owner].insert(nb);
      }
    }
  }

  // 3. One blob per serving shard.
  SnapshotManifest manifest;
  manifest.version = version;
  manifest.num_shards = num_shards;
  manifest.key_space = key_space;
  manifest.created_ticks = cluster->clock().NowTicks(driver);
  manifest.quant = quant;
  for (const MergedMatrix& m : merged) manifest.matrices.push_back(m.info);

  storage::Hdfs* hdfs = ps_->hdfs();
  for (int32_t shard = 0; shard < num_shards; ++shard) {
    ByteBuffer blob;
    blob.Write<uint32_t>(kBlobMagic);
    blob.Write<uint8_t>(kBlobFormatVersion);
    blob.Write<uint8_t>(static_cast<uint8_t>(quant));
    blob.Write<int64_t>(version);
    blob.Write<uint32_t>(static_cast<uint32_t>(shard));
    blob.Write<uint64_t>(merged.size());
    for (size_t mi = 0; mi < merged.size(); ++mi) {
      const MergedMatrix& m = merged[mi];
      // Replicated matrices (small dense weights) always stay fp32;
      // quantization targets the big sharded embedding tables.
      const QuantMode row_quant =
          m.info.replicated ? QuantMode::kNone : quant;
      blob.WriteString(m.info.name);
      blob.Write<uint8_t>(static_cast<uint8_t>(m.info.kind));
      blob.Write<uint8_t>(m.info.replicated ? 1 : 0);
      blob.Write<uint64_t>(m.info.num_rows);
      blob.Write<uint32_t>(m.info.num_cols);
      blob.Write<float>(m.info.init_value);
      blob.Write<uint8_t>(static_cast<uint8_t>(row_quant));

      // m.rows is a std::map, so this sweep yields key-sorted entries —
      // exactly what the delta list wants.
      std::vector<uint64_t> row_keys;
      std::vector<const std::vector<float>*> rows;
      for (const auto& [key, row] : m.rows) {
        const bool owned =
            m.info.replicated || part.PartitionOf(key) == shard;
        if (owned || halo[shard].count(key) > 0 || hot.count(key) > 0) {
          row_keys.push_back(key);
          rows.push_back(&row);
        }
      }
      PutDeltaList(&blob, row_keys);
      for (const std::vector<float>* row : rows) {
        manifest.raw_bytes += 8 + row->size() * sizeof(float);
        manifest.matrices[mi].quant_max_abs_error =
            std::max(manifest.matrices[mi].quant_max_abs_error,
                     QuantizeRowAppend(row_quant, row->data(), row->size(),
                                       &blob));
      }

      std::vector<uint64_t> adj_keys;
      for (const auto& [key, neighbors] : m.adjacency) {
        (void)neighbors;
        if (m.info.replicated || part.PartitionOf(key) == shard) {
          adj_keys.push_back(key);
        }
      }
      PutDeltaList(&blob, adj_keys);
      for (uint64_t key : adj_keys) {
        const std::vector<uint64_t>& neighbors = m.adjacency.at(key);
        manifest.raw_bytes += 8 + neighbors.size() * 8;
        PutDeltaList(&blob, neighbors);
      }
    }

    SnapshotShardInfo info;
    info.path = SnapshotBlobPath(options_.root, version, shard);
    info.bytes = blob.size();
    info.checksum = HashBytes(blob.data().data(), blob.size());
    PSG_RETURN_NOT_OK(hdfs->Write(info.path, blob, driver));
    cluster->metrics().Add("serving.snapshot_bytes", info.bytes);
    manifest.shards.push_back(std::move(info));
  }

  // 4. Commit: manifest then CURRENT, both via write-temp + rename so a
  // reader never sees a half-written pointer.
  JsonValue doc = JsonValue::Object();
  doc.Set("format", "psgraph.snapshot");
  doc.Set("version", manifest.version);
  doc.Set("num_shards", static_cast<int64_t>(manifest.num_shards));
  doc.Set("key_space", manifest.key_space);
  doc.Set("created_ticks", manifest.created_ticks);
  doc.Set("quant", QuantModeName(manifest.quant));
  doc.Set("raw_bytes", manifest.raw_bytes);
  JsonValue matrices = JsonValue::Array();
  for (const SnapshotMatrixInfo& info : manifest.matrices) {
    JsonValue m = JsonValue::Object();
    m.Set("name", info.name);
    m.Set("kind", KindName(info.kind));
    m.Set("num_rows", info.num_rows);
    m.Set("num_cols", static_cast<int64_t>(info.num_cols));
    m.Set("init_value", static_cast<double>(info.init_value));
    m.Set("replicated", info.replicated);
    m.Set("quant_max_abs_error", info.quant_max_abs_error);
    matrices.Append(std::move(m));
  }
  doc.Set("matrices", std::move(matrices));
  JsonValue shards = JsonValue::Array();
  for (const SnapshotShardInfo& info : manifest.shards) {
    JsonValue s = JsonValue::Object();
    s.Set("path", info.path);
    s.Set("bytes", info.bytes);
    s.Set("checksum", HashToHex(info.checksum));
    shards.Append(std::move(s));
  }
  doc.Set("shards", std::move(shards));

  const std::string manifest_path =
      SnapshotManifestPath(options_.root, version);
  PSG_RETURN_NOT_OK(
      hdfs->WriteString(manifest_path + ".tmp", doc.Dump(2), driver));
  PSG_RETURN_NOT_OK(hdfs->Rename(manifest_path + ".tmp", manifest_path));
  const std::string current = SnapshotCurrentPath(options_.root);
  PSG_RETURN_NOT_OK(hdfs->WriteString(current + ".tmp",
                                      std::to_string(version), driver));
  PSG_RETURN_NOT_OK(hdfs->Rename(current + ".tmp", current));
  cluster->metrics().Add("serving.snapshots_published", 1);
  PSG_LOG(Info) << "snapshot: published " << options_.root << " v"
                << version << " (" << num_shards << " shards)";

  PSG_RETURN_NOT_OK(ApplyRetention());
  return manifest;
}

Status SnapshotPublisher::ApplyRetention() {
  if (options_.keep_versions <= 0) return Status::OK();
  storage::Hdfs* hdfs = ps_->hdfs();
  const sim::NodeId driver = ps_->cluster()->config().driver();

  int64_t current = -1;
  {
    Result<int64_t> cur = CurrentVersion();
    if (cur.ok()) current = cur.value();
  }

  // Parse "<root>/v<N>/..." paths into the set of on-store versions.
  const std::string prefix = options_.root + "/v";
  std::set<int64_t> versions;
  for (const std::string& path : hdfs->List(prefix, driver)) {
    size_t pos = prefix.size();
    int64_t v = 0;
    bool any = false;
    while (pos < path.size() && path[pos] >= '0' && path[pos] <= '9') {
      v = v * 10 + (path[pos] - '0');
      ++pos;
      any = true;
    }
    if (any && pos < path.size() && path[pos] == '/') versions.insert(v);
  }

  std::vector<int64_t> ordered(versions.rbegin(), versions.rend());
  for (size_t i = 0; i < ordered.size(); ++i) {
    const int64_t v = ordered[i];
    if (i < static_cast<size_t>(options_.keep_versions)) continue;
    if (v == current) continue;
    // Manifest first: once it is gone the version cannot be loaded, so
    // a sweep interrupted mid-version never leaves a loadable torso.
    const std::string manifest_path =
        SnapshotManifestPath(options_.root, v);
    if (hdfs->Exists(manifest_path)) {
      PSG_RETURN_NOT_OK(hdfs->Delete(manifest_path, driver));
    }
    for (const std::string& path :
         hdfs->List(SnapshotVersionDir(options_.root, v) + "/", driver)) {
      PSG_RETURN_NOT_OK(hdfs->Delete(path, driver));
    }
    ps_->cluster()->metrics().Add("serving.snapshots_retired", 1);
    PSG_LOG(Info) << "snapshot: retired " << options_.root << " v" << v;
  }
  return Status::OK();
}

Result<int64_t> ReadCurrentVersion(storage::Hdfs* hdfs,
                                   const std::string& root,
                                   sim::NodeId node) {
  PSG_ASSIGN_OR_RETURN(std::string text,
                       hdfs->ReadString(SnapshotCurrentPath(root), node));
  int64_t version = 0;
  bool any = false;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::IoError("snapshot: corrupt CURRENT pointer '" + text +
                             "' under " + root);
    }
    version = version * 10 + (c - '0');
    any = true;
  }
  if (!any) {
    return Status::IoError("snapshot: empty CURRENT pointer under " + root);
  }
  return version;
}

Result<SnapshotManifest> ReadManifest(storage::Hdfs* hdfs,
                                      const std::string& root,
                                      int64_t version, sim::NodeId node) {
  PSG_ASSIGN_OR_RETURN(
      std::string text,
      hdfs->ReadString(SnapshotManifestPath(root, version), node));
  PSG_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(text));
  const JsonValue* format = doc.Find("format");
  if (format == nullptr || !format->is_string() ||
      format->as_string() != "psgraph.snapshot") {
    return Status::IoError("snapshot: bad manifest format under " + root);
  }
  SnapshotManifest manifest;
  PSG_ASSIGN_OR_RETURN(const JsonValue* version_v, Field(doc, "version"));
  manifest.version = version_v->as_int();
  PSG_ASSIGN_OR_RETURN(const JsonValue* num_shards_v,
                       Field(doc, "num_shards"));
  manifest.num_shards = static_cast<int32_t>(num_shards_v->as_int());
  PSG_ASSIGN_OR_RETURN(const JsonValue* key_space_v,
                       Field(doc, "key_space"));
  manifest.key_space = static_cast<uint64_t>(key_space_v->as_int());
  PSG_ASSIGN_OR_RETURN(const JsonValue* created_v,
                       Field(doc, "created_ticks"));
  manifest.created_ticks = created_v->as_int();
  PSG_ASSIGN_OR_RETURN(const JsonValue* quant_v, Field(doc, "quant"));
  PSG_ASSIGN_OR_RETURN(manifest.quant,
                       ParseQuantMode(quant_v->as_string()));
  PSG_ASSIGN_OR_RETURN(const JsonValue* raw_v, Field(doc, "raw_bytes"));
  manifest.raw_bytes = static_cast<uint64_t>(raw_v->as_int());
  PSG_ASSIGN_OR_RETURN(const JsonValue* matrices, Field(doc, "matrices"));
  if (!matrices->is_array()) {
    return Status::IoError("snapshot: manifest missing matrices");
  }
  for (size_t i = 0; i < matrices->size(); ++i) {
    const JsonValue& m = matrices->at(i);
    SnapshotMatrixInfo info;
    PSG_ASSIGN_OR_RETURN(const JsonValue* name_v, Field(m, "name"));
    info.name = name_v->as_string();
    PSG_ASSIGN_OR_RETURN(const JsonValue* kind_v, Field(m, "kind"));
    info.kind = kind_v->as_string() == "neighbors"
                    ? ps::StorageKind::kNeighbors
                    : ps::StorageKind::kRows;
    PSG_ASSIGN_OR_RETURN(const JsonValue* rows_v, Field(m, "num_rows"));
    info.num_rows = static_cast<uint64_t>(rows_v->as_int());
    PSG_ASSIGN_OR_RETURN(const JsonValue* cols_v, Field(m, "num_cols"));
    info.num_cols = static_cast<uint32_t>(cols_v->as_int());
    PSG_ASSIGN_OR_RETURN(const JsonValue* init_v, Field(m, "init_value"));
    info.init_value = static_cast<float>(init_v->as_double());
    PSG_ASSIGN_OR_RETURN(const JsonValue* repl_v, Field(m, "replicated"));
    info.replicated = repl_v->as_bool();
    PSG_ASSIGN_OR_RETURN(const JsonValue* err_v,
                         Field(m, "quant_max_abs_error"));
    info.quant_max_abs_error = err_v->as_double();
    manifest.matrices.push_back(std::move(info));
  }
  PSG_ASSIGN_OR_RETURN(const JsonValue* shards, Field(doc, "shards"));
  if (!shards->is_array()) {
    return Status::IoError("snapshot: manifest missing shards");
  }
  for (size_t i = 0; i < shards->size(); ++i) {
    const JsonValue& s = shards->at(i);
    SnapshotShardInfo info;
    PSG_ASSIGN_OR_RETURN(const JsonValue* path_v, Field(s, "path"));
    info.path = path_v->as_string();
    PSG_ASSIGN_OR_RETURN(const JsonValue* bytes_v, Field(s, "bytes"));
    info.bytes = static_cast<uint64_t>(bytes_v->as_int());
    PSG_ASSIGN_OR_RETURN(const JsonValue* sum_v, Field(s, "checksum"));
    PSG_ASSIGN_OR_RETURN(info.checksum,
                         ChecksumFromHex(sum_v->as_string()));
    manifest.shards.push_back(std::move(info));
  }
  if (manifest.shards.size() !=
      static_cast<size_t>(manifest.num_shards)) {
    return Status::IoError("snapshot: manifest shard count mismatch");
  }
  return manifest;
}

Result<LoadedShard> LoadShardBlob(storage::Hdfs* hdfs,
                                  const std::string& root,
                                  const SnapshotManifest& manifest,
                                  int32_t shard, sim::NodeId node) {
  (void)root;
  if (shard < 0 || shard >= manifest.num_shards) {
    return Status::InvalidArgument("snapshot: no shard " +
                                   std::to_string(shard));
  }
  const SnapshotShardInfo& info =
      manifest.shards[static_cast<size_t>(shard)];
  PSG_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                       hdfs->Read(info.path, node));
  const uint64_t checksum = HashBytes(bytes.data(), bytes.size());
  if (bytes.size() != info.bytes || checksum != info.checksum) {
    return Status::IoError(
        "snapshot checksum mismatch for shard_" + std::to_string(shard) +
        " (" + info.path + "): expected " + HashToHex(info.checksum) +
        "/" + std::to_string(info.bytes) + "B, got " +
        HashToHex(checksum) + "/" + std::to_string(bytes.size()) + "B");
  }

  ByteReader reader(bytes);
  uint32_t magic = 0;
  PSG_RETURN_NOT_OK(reader.Read(&magic));
  if (magic != kBlobMagic) {
    return Status::IoError("snapshot: bad blob magic in " + info.path);
  }
  uint8_t format = 0;
  uint8_t blob_quant = 0;
  PSG_RETURN_NOT_OK(reader.Read(&format));
  PSG_RETURN_NOT_OK(reader.Read(&blob_quant));
  if (format != kBlobFormatVersion) {
    return Status::IoError("snapshot: blob format v" +
                           std::to_string(format) + " in " + info.path +
                           " (loader speaks v" +
                           std::to_string(kBlobFormatVersion) + ")");
  }
  LoadedShard loaded;
  loaded.blob_bytes = bytes.size();
  PSG_RETURN_NOT_OK(reader.Read(&loaded.version));
  uint32_t shard_index = 0;
  PSG_RETURN_NOT_OK(reader.Read(&shard_index));
  loaded.shard_index = static_cast<int32_t>(shard_index);
  if (loaded.version != manifest.version ||
      loaded.shard_index != shard ||
      static_cast<QuantMode>(blob_quant) != manifest.quant) {
    return Status::IoError("snapshot: blob/manifest mismatch in " +
                           info.path);
  }
  uint64_t num_matrices = 0;
  PSG_RETURN_NOT_OK(reader.Read(&num_matrices));
  for (uint64_t i = 0; i < num_matrices; ++i) {
    LoadedMatrix m;
    PSG_RETURN_NOT_OK(reader.ReadString(&m.info.name));
    uint8_t kind = 0;
    uint8_t replicated = 0;
    uint8_t row_quant = 0;
    PSG_RETURN_NOT_OK(reader.Read(&kind));
    PSG_RETURN_NOT_OK(reader.Read(&replicated));
    PSG_RETURN_NOT_OK(reader.Read(&m.info.num_rows));
    PSG_RETURN_NOT_OK(reader.Read(&m.info.num_cols));
    PSG_RETURN_NOT_OK(reader.Read(&m.info.init_value));
    PSG_RETURN_NOT_OK(reader.Read(&row_quant));
    m.info.kind = static_cast<ps::StorageKind>(kind);
    m.info.replicated = replicated != 0;
    const QuantMode mode = static_cast<QuantMode>(row_quant);
    const size_t cols = m.info.num_cols;

    std::vector<uint64_t> row_keys;
    PSG_RETURN_NOT_OK(GetDeltaList(&reader, &row_keys));
    m.rows.reserve(row_keys.size());
    for (uint64_t key : row_keys) {
      std::vector<float> row;
      row.reserve(cols);
      PSG_RETURN_NOT_OK(DequantizeRowAppend(mode, &reader, cols, &row));
      m.rows.emplace(key, std::move(row));
    }

    std::vector<uint64_t> adj_keys;
    PSG_RETURN_NOT_OK(GetDeltaList(&reader, &adj_keys));
    m.adjacency.reserve(adj_keys.size());
    for (uint64_t key : adj_keys) {
      std::vector<uint64_t> neighbors;
      PSG_RETURN_NOT_OK(GetDeltaList(&reader, &neighbors));
      m.adjacency.emplace(key, std::move(neighbors));
    }
    std::string name = m.info.name;
    loaded.matrices.emplace(std::move(name), std::move(m));
  }
  return loaded;
}

}  // namespace psgraph::serving
