#include "sim/watchdog.h"

#include <algorithm>
#include <utility>

namespace psgraph::sim {

const char* WatchdogRuleFormName(WatchdogRuleForm form) {
  switch (form) {
    case WatchdogRuleForm::kThreshold: return "threshold";
    case WatchdogRuleForm::kDelta: return "delta";
    case WatchdogRuleForm::kBurnRate: return "burn_rate";
  }
  return "unknown";
}

size_t Watchdog::AddRule(WatchdogRule rule) {
  rules_.push_back(std::move(rule));
  open_.push_back(-1);
  return rules_.size() - 1;
}

bool Watchdog::IsActive(size_t rule_index) const {
  return rule_index < open_.size() && open_[rule_index] >= 0;
}

uint64_t Watchdog::FireCount(const std::string& rule_name) const {
  uint64_t n = 0;
  for (const AlertFiring& f : firings_) {
    if (rules_[f.rule].name == rule_name) ++n;
  }
  return n;
}

uint64_t Watchdog::ClearCount(const std::string& rule_name) const {
  uint64_t n = 0;
  for (const AlertFiring& f : firings_) {
    if (rules_[f.rule].name == rule_name && f.clear_ticks >= 0) ++n;
  }
  return n;
}

namespace {

/// Windowed delta of one series: latest minus the value `window` points
/// back (clamped to the first point). False when under 2 points.
bool WindowedDelta(const TimeSeriesStore& store, const std::string& name,
                   uint64_t window, double* delta) {
  const std::vector<double>* s = store.Series(name);
  if (s == nullptr || s->size() < 2) return false;
  const size_t n = s->size();
  const size_t base =
      n - 1 >= window ? n - 1 - static_cast<size_t>(window) : 0;
  *delta = (*s)[n - 1] - (*s)[base];
  return true;
}

}  // namespace

bool Watchdog::Condition(const WatchdogRule& rule, double* value) const {
  switch (rule.form) {
    case WatchdogRuleForm::kThreshold: {
      *value = store_->Latest(rule.series);
      return rule.fire_above ? *value > rule.threshold
                             : *value < rule.threshold;
    }
    case WatchdogRuleForm::kDelta: {
      double delta = 0.0;
      if (!WindowedDelta(*store_, rule.series, rule.window, &delta)) {
        return false;
      }
      *value = delta;
      return rule.fire_above ? delta > rule.threshold
                             : delta < rule.threshold;
    }
    case WatchdogRuleForm::kBurnRate: {
      double bad = 0.0;
      double total = 0.0;
      if (!WindowedDelta(*store_, rule.bad_series, rule.window, &bad) ||
          !WindowedDelta(*store_, rule.total_series, rule.window,
                         &total) ||
          total <= 0.0) {
        return false;  // no traffic in the window: nothing to burn
      }
      const double rate = bad / total;
      *value = rule.error_budget > 0.0 ? rate / rule.error_budget
                                       : (rate > 0.0 ? 1e300 : 0.0);
      return *value >= rule.burn_threshold;
    }
  }
  return false;
}

void Watchdog::Evaluate(int64_t ticks) {
  if (store_ == nullptr) return;
  for (size_t i = 0; i < rules_.size(); ++i) {
    double value = 0.0;
    const bool firing = Condition(rules_[i], &value);
    if (firing && open_[i] < 0) {
      open_[i] = static_cast<int64_t>(firings_.size());
      AlertFiring f;
      f.rule = i;
      f.fire_ticks = ticks;
      f.value = value;
      firings_.push_back(f);
      if (journal_ != nullptr) {
        journal_->Record(JournalEventType::kAlertFire, /*node=*/-1, ticks,
                         static_cast<int64_t>(i));
      }
    } else if (!firing && open_[i] >= 0) {
      firings_[static_cast<size_t>(open_[i])].clear_ticks = ticks;
      open_[i] = -1;
      if (journal_ != nullptr) {
        journal_->Record(JournalEventType::kAlertClear, /*node=*/-1,
                         ticks, static_cast<int64_t>(i));
      }
    }
  }
}

void Watchdog::Reset() {
  firings_.clear();
  std::fill(open_.begin(), open_.end(), -1);
}

Watchdog& Watchdog::Global() {
  static Watchdog* instance = new Watchdog();
  return *instance;
}

}  // namespace psgraph::sim
