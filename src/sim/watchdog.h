// Deterministic SLO watchdog: declarative rules evaluated against the
// continuous-telemetry series at every scrape boundary.
//
// Rules come in three forms, mirroring the alerting shapes production
// monitoring stacks use:
//   threshold  — fire while series > threshold (or < with
//                fire_above = false). "Executor memory above 90% of
//                budget."
//   delta      — fire while series[n] - series[n - window] > threshold.
//                "Any node restarted within the last 4 scrape points."
//   burn_rate  — fire while (d bad / d total) / error_budget >=
//                burn_threshold over the window. "Windowed cache miss
//                rate at 10x the 5% miss budget (i.e. >= 50%)."
// Windows are measured in scrape *points*, not ticks, so the same rule
// is meaningful across benches whose makespans span 20 ms to 4 s of
// simulated time (after a store compaction a window simply covers twice
// the sim time — the rule degrades with the resolution, deliberately).
//
// The watchdog runs inside the sampler's scrape callback, which is
// driven from single-threaded orchestration points on the simulated
// clock — so evaluation order, fire ticks and clear ticks are
// bit-identical at any thread parallelism. Fire/clear transitions are
// appended to the control-plane EventJournal (kAlertFire/kAlertClear,
// value = rule index) and therefore show up on the same Perfetto
// timeline as node kills and recoveries; bench_util names the markers
// "alert_fire:<rule>" using rules() at export time.

#ifndef PSGRAPH_SIM_WATCHDOG_H_
#define PSGRAPH_SIM_WATCHDOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/timeseries.h"
#include "sim/event_journal.h"

namespace psgraph::sim {

enum class WatchdogRuleForm : uint8_t {
  kThreshold = 0,
  kDelta,
  kBurnRate,
};

/// Stable wire name of a rule form ("threshold", "delta", "burn_rate").
const char* WatchdogRuleFormName(WatchdogRuleForm form);

struct WatchdogRule {
  std::string name;
  WatchdogRuleForm form = WatchdogRuleForm::kThreshold;

  /// Series watched by the threshold and delta forms.
  std::string series;
  /// threshold form: fire while value > threshold (fire_above) or
  /// < threshold; delta form: fire while the windowed delta > threshold
  /// (fire_above) or < threshold.
  double threshold = 0.0;
  bool fire_above = true;

  /// Lookback in scrape points for the delta and burn_rate forms
  /// (clamped to the points available; both need at least 2 points to
  /// evaluate at all).
  uint64_t window = 4;

  /// burn_rate form: rate = d(bad_series) / d(total_series) over the
  /// window; fires while rate / error_budget >= burn_threshold.
  std::string bad_series;
  std::string total_series;
  double error_budget = 1.0;
  double burn_threshold = 1.0;
};

/// One alert episode: fired at fire_ticks, cleared at clear_ticks (-1
/// while still active). `value` is the rule's measured quantity at fire
/// time (threshold: the series value; delta: the delta; burn_rate: the
/// burn multiple).
struct AlertFiring {
  uint64_t rule = 0;  ///< index into rules()
  int64_t fire_ticks = 0;
  int64_t clear_ticks = -1;
  double value = 0.0;
};

class Watchdog {
 public:
  /// Default-constructed watchdogs are disabled (Evaluate is a no-op).
  Watchdog() = default;
  Watchdog(const TimeSeriesStore* store, EventJournal* journal)
      : store_(store), journal_(journal) {}

  /// Registers a rule; returns its index (the journal event payload).
  size_t AddRule(WatchdogRule rule);

  const std::vector<WatchdogRule>& rules() const { return rules_; }
  const std::vector<AlertFiring>& firings() const { return firings_; }

  /// True while the rule's latest evaluation fired without clearing.
  bool IsActive(size_t rule_index) const;
  /// Fire / completed-clear episode counts for the named rule (0 for
  /// unknown names — benches assert on these).
  uint64_t FireCount(const std::string& rule_name) const;
  uint64_t ClearCount(const std::string& rule_name) const;

  /// Evaluates every rule against the store at scrape boundary `ticks`,
  /// recording fire/clear transitions in the journal. Invoked by the
  /// sampler's scrape callback.
  void Evaluate(int64_t ticks);

  void Reset();

  /// Process-wide fallback: a permanently disabled watchdog.
  static Watchdog& Global();

 private:
  bool Condition(const WatchdogRule& rule, double* value) const;

  const TimeSeriesStore* store_ = nullptr;
  EventJournal* journal_ = nullptr;
  std::vector<WatchdogRule> rules_;
  /// Index into firings_ of each rule's open episode, -1 when inactive.
  std::vector<int64_t> open_;
  std::vector<AlertFiring> firings_;
};

}  // namespace psgraph::sim

#endif  // PSGRAPH_SIM_WATCHDOG_H_
