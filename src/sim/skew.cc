#include "sim/skew.h"

#include <algorithm>
#include <cstdlib>

#include "common/env.h"

namespace psgraph::sim {

void SpaceSavingCounter::Offer(uint64_t key, uint64_t weight) {
  total_ += weight;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.count += weight;
    return;
  }
  if (entries_.size() < capacity_) {
    entries_[key] = {key, weight, 0};
    return;
  }
  // Evict the minimum-count entry; the newcomer inherits its count as
  // the classic space-saving overestimate (error bound = evicted count).
  auto min_it = entries_.begin();
  for (auto e = entries_.begin(); e != entries_.end(); ++e) {
    if (e->second.count < min_it->second.count) min_it = e;
  }
  Entry replacement{key, min_it->second.count + weight,
                    min_it->second.count};
  entries_.erase(min_it);
  entries_[key] = replacement;
}

std::vector<SpaceSavingCounter::Entry> SpaceSavingCounter::TopK(
    size_t k) const {
  std::vector<Entry> out;
  out.reserve(entries_.size());
  for (const auto& [key, e] : entries_) out.push_back(e);
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key < b.key;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

void SpaceSavingCounter::Reset() {
  entries_.clear();
  total_ = 0;
}

SkewProfiler::SkewProfiler(int32_t num_servers) {
  key_profiling_.store(KeyProfilingByEnv(), std::memory_order_relaxed);
  sample_period_ = SamplePeriodFromEnv();
  shards_.reserve(static_cast<size_t>(std::max<int32_t>(num_servers, 0)));
  for (int32_t s = 0; s < num_servers; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

bool SkewProfiler::KeyProfilingByEnv() {
  return EnvFlag("PSGRAPH_PROFILE_KEYS", false);
}

uint64_t SkewProfiler::SamplePeriodFromEnv() {
  return EnvU64("PSGRAPH_PROFILE_KEYS_SAMPLE", 1, /*min_value=*/1);
}

SkewProfiler::Shard& SkewProfiler::shard(int32_t server) {
  if (server < 0) server = 0;
  std::lock_guard<std::mutex> lock(mu_);
  while (shards_.size() <= static_cast<size_t>(server)) {
    shards_.push_back(std::make_unique<Shard>());
  }
  return *shards_[server];
}

void SkewProfiler::RecordKeyAccess(int32_t server, bool is_pull,
                                   std::span<const uint64_t> keys) {
  Shard& s = shard(server);
  auto& counter = is_pull ? s.pull_keys : s.push_keys;
  counter.fetch_add(keys.size(), std::memory_order_relaxed);
  if (!key_profiling_enabled()) return;
  std::lock_guard<std::mutex> lock(s.sketch_mu);
  if (sample_period_ <= 1) {
    for (uint64_t key : keys) s.sketch.Offer(key);
    return;
  }
  // Deterministic per-shard stride across batch boundaries.
  for (uint64_t key : keys) {
    if (s.sample_cursor++ % sample_period_ == 0) s.sketch.Offer(key);
  }
}

void SkewProfiler::RecordPartitionTicks(int32_t partition, int64_t ticks) {
  if (ticks <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  partition_ticks_[partition] += ticks;
}

SkewProfiler::Snapshot SkewProfiler::Snap() const {
  Snapshot snap;
  snap.key_profiling = key_profiling_enabled();
  snap.sample_period = sample_period_;
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total_accesses = 0;
  for (const auto& s : shards_) {
    total_accesses += s->pull_keys.load(std::memory_order_relaxed) +
                      s->push_keys.load(std::memory_order_relaxed);
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = *shards_[i];
    ShardSnapshot shard;
    shard.server = static_cast<int32_t>(i);
    shard.pull_keys = s.pull_keys.load(std::memory_order_relaxed);
    shard.push_keys = s.push_keys.load(std::memory_order_relaxed);
    shard.load_share =
        total_accesses == 0
            ? 0.0
            : static_cast<double>(shard.pull_keys + shard.push_keys) /
                  static_cast<double>(total_accesses);
    {
      std::lock_guard<std::mutex> sketch_lock(s.sketch_mu);
      shard.hot_keys = s.sketch.TopK(kTopK);
      uint64_t covered = 0;
      for (const auto& e : shard.hot_keys) covered += e.count;
      shard.topk_share =
          s.sketch.total() == 0
              ? 0.0
              : std::min(1.0, static_cast<double>(covered) /
                                  static_cast<double>(s.sketch.total()));
    }
    snap.shards.push_back(std::move(shard));
  }
  int64_t max_ticks = 0, sum_ticks = 0;
  for (const auto& [partition, ticks] : partition_ticks_) {
    snap.partitions.push_back({partition, ticks});
    max_ticks = std::max(max_ticks, ticks);
    sum_ticks += ticks;
  }
  if (!snap.partitions.empty() && sum_ticks > 0) {
    const double mean = static_cast<double>(sum_ticks) /
                        static_cast<double>(snap.partitions.size());
    snap.partition_imbalance = static_cast<double>(max_ticks) / mean;
  }
  return snap;
}

void SkewProfiler::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& s : shards_) {
    s->pull_keys.store(0, std::memory_order_relaxed);
    s->push_keys.store(0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> sketch_lock(s->sketch_mu);
    s->sketch.Reset();
    s->sample_cursor = 0;
  }
  partition_ticks_.clear();
}

SkewProfiler& SkewProfiler::Global() {
  static SkewProfiler* instance = new SkewProfiler();
  return *instance;
}

}  // namespace psgraph::sim
