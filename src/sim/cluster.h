// Simulated cluster model.
//
// The paper's experiments run on >1000 machines connected by 10 GbE; here a
// cluster is a set of *logical nodes* (executors, parameter servers, one
// driver) multiplexed over a thread pool. Each node has its own memory
// budget and its own simulated clock; all cross-node traffic is charged to
// a cost model so the bench harness can report the makespan the same
// workload would have at the paper's cluster geometry.

#ifndef PSGRAPH_SIM_CLUSTER_H_
#define PSGRAPH_SIM_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/rpc_telemetry.h"
#include "common/status.h"
#include "common/timeseries.h"
#include "common/trace.h"
#include "sim/convergence.h"
#include "sim/cost_ledger.h"
#include "sim/cost_model.h"
#include "sim/event_journal.h"
#include "sim/memory_accountant.h"
#include "sim/sim_clock.h"
#include "sim/skew.h"
#include "sim/watchdog.h"

namespace psgraph::sim {

/// Logical node identifier. Layout: [0, num_executors) are executors,
/// [num_executors, num_executors + num_servers) are parameter servers, and
/// the last id is the driver.
using NodeId = int32_t;

/// Geometry and per-container resources of a simulated cluster, mirroring
/// the paper's resource allocations (e.g. Fig. 6: 100 executors x 20 GB +
/// 20 servers x 15 GB for PSGraph on DS1).
struct ClusterConfig {
  int32_t num_executors = 4;
  int32_t num_servers = 2;
  uint64_t executor_mem_bytes = 512ull << 20;
  uint64_t server_mem_bytes = 512ull << 20;
  CostModelConfig cost;

  /// Ratio between the paper's dataset and the scaled-down one actually
  /// executed; benches multiply the simulated makespan by this to report
  /// cluster-scale time. 1.0 = no extrapolation.
  double workload_scale = 1.0;

  int32_t num_nodes() const { return num_executors + num_servers + 1; }
  NodeId executor(int32_t i) const { return i; }
  NodeId server(int32_t i) const { return num_executors + i; }
  NodeId driver() const { return num_executors + num_servers; }
  bool is_executor(NodeId n) const { return n >= 0 && n < num_executors; }
  bool is_server(NodeId n) const {
    return n >= num_executors && n < num_executors + num_servers;
  }
};

/// Bundles everything that defines the simulated environment: geometry,
/// per-node clocks, memory budgets, cost model and liveness flags.
///
/// Thread-safe: clocks and memory have their own synchronization; liveness
/// uses an internal mutex.
class SimCluster {
 public:
  explicit SimCluster(ClusterConfig config);

  const ClusterConfig& config() const { return config_; }
  SimClock& clock() { return clock_; }
  MemoryAccountant& memory() { return memory_; }
  const CostModel& cost() const { return cost_; }

  /// Makespan-attribution ledger (sim/cost_ledger.h). Owned directly,
  /// like the clock — NOT a swappable sink: conservation of the
  /// critical-path report only holds when the ledger's lifetime exactly
  /// matches the clock whose charges it attributes.
  CostLedger& cost_ledger() { return cost_ledger_; }

  /// Observability sinks every component holding a SimCluster* reports
  /// into (PS servers, the RPC fabric, the dataflow context). They
  /// default to the process-wide registries; PsGraphContext installs
  /// its own instances so concurrent contexts cannot cross-contaminate
  /// each other's counters (or a bench's run report). Callers keep the
  /// pointed-to objects alive for the cluster's lifetime.
  Metrics& metrics() { return *metrics_; }
  Tracer& tracer() { return *tracer_; }
  void set_metrics(Metrics* metrics) {
    metrics_ = metrics != nullptr ? metrics : &Metrics::Global();
  }
  void set_tracer(Tracer* tracer) {
    tracer_ = tracer != nullptr ? tracer : &Tracer::Global();
  }
  /// Flight-recorder sinks (same ownership contract as metrics/tracer):
  /// PS shards report key accesses and the dataflow engine reports
  /// per-partition busy ticks into skew(); algorithms record
  /// per-iteration telemetry into convergence().
  SkewProfiler& skew() { return *skew_; }
  ConvergenceLog& convergence() { return *convergence_; }
  void set_skew(SkewProfiler* skew) {
    skew_ = skew != nullptr ? skew : &SkewProfiler::Global();
  }
  void set_convergence(ConvergenceLog* log) {
    convergence_ = log != nullptr ? log : &ConvergenceLog::Global();
  }
  /// Wire-level RPC telemetry (per-(method, callee) counters recorded by
  /// the fabric) and the control-plane event journal (kill/restart,
  /// health checks, checkpoints, barriers, recovery episodes). Same
  /// ownership contract as the other sinks.
  RpcTelemetry& rpc_telemetry() { return *rpc_telemetry_; }
  EventJournal& events() { return *events_; }
  void set_rpc_telemetry(RpcTelemetry* telemetry) {
    rpc_telemetry_ =
        telemetry != nullptr ? telemetry : &RpcTelemetry::Global();
  }
  void set_events(EventJournal* journal) {
    events_ = journal != nullptr ? journal : &EventJournal::Global();
  }
  /// Continuous-telemetry sampler and SLO watchdog (same ownership
  /// contract as the other sinks). The global fallbacks are permanently
  /// disabled, so poll sites on clusters without an installed
  /// per-context sampler are near-free no-ops.
  MetricsSampler& sampler() { return *sampler_; }
  Watchdog& watchdog() { return *watchdog_; }
  void set_sampler(MetricsSampler* sampler) {
    sampler_ = sampler != nullptr ? sampler : &MetricsSampler::Global();
  }
  void set_watchdog(Watchdog* watchdog) {
    watchdog_ = watchdog != nullptr ? watchdog : &Watchdog::Global();
  }

  /// Marks a node as failed. Subsequent RPCs to it return Unavailable and
  /// its memory ledger is wiped (the container is gone).
  void KillNode(NodeId node);

  /// Brings a failed node back (a fresh container: empty memory ledger,
  /// clock advanced by the configured restart delay).
  void ReviveNode(NodeId node);

  bool IsAlive(NodeId node) const;

  /// Simulated seconds it takes the resource manager to restart a
  /// container (paper: Yarn/Kubernetes relaunch).
  double restart_delay_sec() const { return restart_delay_sec_; }
  void set_restart_delay_sec(double s) { restart_delay_sec_ = s; }

 private:
  ClusterConfig config_;
  CostModel cost_;
  SimClock clock_;
  CostLedger cost_ledger_;
  MemoryAccountant memory_;
  Metrics* metrics_ = &Metrics::Global();
  Tracer* tracer_ = &Tracer::Global();
  SkewProfiler* skew_ = &SkewProfiler::Global();
  ConvergenceLog* convergence_ = &ConvergenceLog::Global();
  RpcTelemetry* rpc_telemetry_ = &RpcTelemetry::Global();
  EventJournal* events_ = &EventJournal::Global();
  MetricsSampler* sampler_ = &MetricsSampler::Global();
  Watchdog* watchdog_ = &Watchdog::Global();
  mutable std::mutex mu_;
  std::vector<bool> alive_;
  double restart_delay_sec_ = 30.0;
};

}  // namespace psgraph::sim

#endif  // PSGRAPH_SIM_CLUSTER_H_
