#include "sim/convergence.h"

namespace psgraph::sim {

bool ConvergenceLog::Record(const std::string& series, int64_t iteration,
                            double value) {
  std::lock_guard<std::mutex> lock(mu_);
  Series& s = series_[series];
  if (!s.empty() && iteration <= s.back().iteration) {
    ++rejected_;
    return false;
  }
  s.push_back({iteration, value});
  return true;
}

void ConvergenceLog::Rewind(const std::string& series, int64_t iteration) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(series);
  if (it == series_.end()) return;
  Series& s = it->second;
  while (!s.empty() && s.back().iteration >= iteration) s.pop_back();
}

std::map<std::string, ConvergenceLog::Series> ConvergenceLog::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_;
}

uint64_t ConvergenceLog::rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

void ConvergenceLog::Merge(const ConvergenceLog& other,
                           const std::string& prefix) {
  auto theirs = other.Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, points] : theirs) {
    Series& s = series_[prefix + name];
    for (const Point& p : points) {
      if (s.empty() || p.iteration > s.back().iteration) s.push_back(p);
    }
  }
}

void ConvergenceLog::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  series_.clear();
  rejected_ = 0;
}

ConvergenceLog& ConvergenceLog::Global() {
  static ConvergenceLog* instance = new ConvergenceLog();
  return *instance;
}

}  // namespace psgraph::sim
