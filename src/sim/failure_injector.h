// Deterministic failure injection for the Table II experiment: kill one
// executor or one parameter server at a chosen iteration and let the
// recovery machinery (Spark lineage reload / PS checkpoint restore) bring
// the job back.

#ifndef PSGRAPH_SIM_FAILURE_INJECTOR_H_
#define PSGRAPH_SIM_FAILURE_INJECTOR_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "sim/cluster.h"

namespace psgraph::sim {

/// A single scheduled failure: node `node` dies when the workload reaches
/// iteration `iteration` (0-based, checked at iteration start).
struct ScheduledFailure {
  NodeId node = -1;
  int64_t iteration = -1;
  bool fired = false;
};

class FailureInjector {
 public:
  /// Schedules `node` to die at the start of `iteration`.
  void ScheduleKill(NodeId node, int64_t iteration) {
    std::lock_guard<std::mutex> lock(mu_);
    failures_.push_back({node, iteration, false});
  }

  /// Called by the orchestration loop at the start of each iteration;
  /// fires any due failures against `cluster`. Returns the nodes killed
  /// this call.
  std::vector<NodeId> Tick(SimCluster& cluster, int64_t iteration) {
    // Stamp the journal's iteration context so the node_killed events
    // recorded by KillNode (and everything after them this iteration)
    // carry the iteration the failure fired at.
    cluster.events().set_iteration(iteration);
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<NodeId> killed;
    for (auto& f : failures_) {
      if (!f.fired && f.iteration == iteration) {
        f.fired = true;
        cluster.KillNode(f.node);
        killed.push_back(f.node);
      }
    }
    return killed;
  }

  bool AnyPending() const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& f : failures_) {
      if (!f.fired) return true;
    }
    return false;
  }

 private:
  mutable std::mutex mu_;
  std::vector<ScheduledFailure> failures_;
};

}  // namespace psgraph::sim

#endif  // PSGRAPH_SIM_FAILURE_INJECTOR_H_
