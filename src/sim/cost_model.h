// Cost model translating observed work (bytes moved, records processed)
// into simulated seconds. Defaults approximate the paper's testbed:
// 10 GbE network, spinning-disk shuffle spill, commodity CPU cores.

#ifndef PSGRAPH_SIM_COST_MODEL_H_
#define PSGRAPH_SIM_COST_MODEL_H_

#include <cstdint>

namespace psgraph::sim {

struct CostModelConfig {
  /// 10 GbE ~ 1.25 GB/s per NIC.
  double network_bandwidth_bytes_per_sec = 1.25e9;
  /// Per-message network latency (switch + kernel), seconds.
  double network_latency_sec = 1e-4;
  /// Sequential disk bandwidth for shuffle spill / HDFS, bytes per second.
  double disk_read_bytes_per_sec = 4.0e8;
  double disk_write_bytes_per_sec = 2.5e8;
  /// Per-file/fetch overhead (buffered sequential IO on consolidated
  /// shuffle files; not a cold HDD seek).
  double disk_seek_sec = 1e-4;
  /// Simple scalar CPU throughput: "record operations" per second per
  /// core (hash probes, per-tuple work in dataflow operators).
  double cpu_ops_per_sec = 5.0e7;
  /// Dense numeric throughput (tensor math in the GNN runtime).
  double cpu_flops_per_sec = 5.0e9;
};

/// Pure functions over CostModelConfig; stateless and thread-safe.
class CostModel {
 public:
  explicit CostModel(CostModelConfig cfg = {}) : cfg_(cfg) {}

  const CostModelConfig& config() const { return cfg_; }

  /// Time for one message of `bytes` across the network.
  double NetworkTime(uint64_t bytes) const {
    return cfg_.network_latency_sec +
           static_cast<double>(bytes) / cfg_.network_bandwidth_bytes_per_sec;
  }

  /// Time to write `bytes` to local disk as one file.
  double DiskWriteTime(uint64_t bytes) const {
    return cfg_.disk_seek_sec +
           static_cast<double>(bytes) / cfg_.disk_write_bytes_per_sec;
  }

  /// Time to read `bytes` from local disk as one file.
  double DiskReadTime(uint64_t bytes) const {
    return cfg_.disk_seek_sec +
           static_cast<double>(bytes) / cfg_.disk_read_bytes_per_sec;
  }

  /// Time to perform `ops` record-operations on one core.
  double ComputeTime(uint64_t ops) const {
    return static_cast<double>(ops) / cfg_.cpu_ops_per_sec;
  }

  /// Time to perform `flops` dense floating-point operations.
  double FlopsTime(uint64_t flops) const {
    return static_cast<double>(flops) / cfg_.cpu_flops_per_sec;
  }

 private:
  CostModelConfig cfg_;
};

}  // namespace psgraph::sim

#endif  // PSGRAPH_SIM_COST_MODEL_H_
