// Per-node makespan attribution ledger.
//
// Every simulated-time charge that is NOT a node doing its own local
// work falls into one of a fixed set of categories (RPC serialization,
// RPC wait, barrier skew, recovery, replica merge, serving queue). The
// subsystems that advance the SimClock record those charges here as
// they happen; the critical-path analyzer (sim/critical_path.h) then
// attributes the run's makespan as "ledger categories + residual
// compute" with an exact conservation invariant — the categories of the
// critical node sum to the makespan by construction, and a negative
// residual means a subsystem double-charged and the report validator
// rejects the run.
//
// The ledger is owned by SimCluster (one per cluster, like the clock),
// so multi-cell benches that tear down one cluster per cell get a fresh
// ledger per cell and conservation holds cell-locally.
//
// Determinism: all recording sites are either serial orchestration
// points (driver code, the serving router event loop, barrier entry) or
// derive the recorded value from scheduling-independent quantities (an
// RPC fan-out's caller jump `t_end - t0` is a pure function of the call
// list; callee busy brackets are serialized per endpoint). Totals are
// therefore bit-identical at PSGRAPH_THREADS=1 vs 8.

#ifndef PSGRAPH_SIM_COST_LEDGER_H_
#define PSGRAPH_SIM_COST_LEDGER_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace psgraph::sim {

/// Fixed category taxonomy for makespan attribution. The JSON names in
/// kCostCategoryNames are part of the run-report schema (v7) — adding a
/// category is a schema bump.
enum class CostCategory : uint8_t {
  kCompute = 0,           ///< residual: local handler/partition work, disk
  kRpcSerialize = 1,      ///< NIC/wire time on either side of an RPC
  kRpcWait = 2,           ///< caller stalled on a remote handler
  kBarrierSkew = 3,       ///< waiting at a barrier for slower nodes
  kRecovery = 4,          ///< restart delay, checkpoint save/restore
  kReplicationMerge = 5,  ///< hot-key replica delta merge (ps.merge)
  kServingQueue = 6,      ///< serving batch queue delay (router flush)
  kStreamApply = 7,       ///< mutation-batch apply to neighbor tables (ps.mutate)
  kStreamRetrain = 8,     ///< incremental-recompute stalls inside a stream epoch
};

inline constexpr int kNumCostCategories = 9;

/// Canonical JSON keys, indexed by CostCategory. Order is the schema's
/// emission order.
inline constexpr const char* kCostCategoryNames[kNumCostCategories] = {
    "compute",  "rpc.serialize",     "rpc.wait",      "barrier.skew",
    "recovery", "replication.merge", "serving.queue", "stream.apply",
    "stream.retrain",
};

inline const char* CostCategoryName(CostCategory c) {
  return kCostCategoryNames[static_cast<int>(c)];
}

/// Category charged to a caller stalled on a fan-out whose slowest call
/// used `method`: replica merges, serving lookups and mutation applies
/// are first-class categories, everything else is generic RPC wait.
inline CostCategory WaitCategoryForMethod(const std::string& method) {
  if (method == "ps.merge") return CostCategory::kReplicationMerge;
  if (method == "ps.mutate") return CostCategory::kStreamApply;
  if (method.rfind("serve.", 0) == 0) return CostCategory::kServingQueue;
  return CostCategory::kRpcWait;
}

class CostLedger {
 public:
  explicit CostLedger(int32_t num_nodes)
      : ticks_(static_cast<size_t>(num_nodes)) {}

  /// Adds `ticks` of category `c` to `node`'s ledger. Non-positive
  /// charges and out-of-range nodes are ignored (an already-past
  /// AdvanceToTicks jump is a legitimate zero). While a wait alias is
  /// installed (SetWaitAlias), generic kRpcWait charges are re-labelled
  /// to the alias category; first-class wait categories (merge, serving
  /// queue, stream apply) keep their identity.
  void Record(int32_t node, CostCategory c, int64_t ticks) {
    if (ticks <= 0) return;
    if (node < 0 || static_cast<size_t>(node) >= ticks_.size()) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (c == CostCategory::kRpcWait && wait_alias_ >= 0) {
      c = static_cast<CostCategory>(wait_alias_);
    }
    ticks_[static_cast<size_t>(node)][static_cast<size_t>(c)] += ticks;
  }

  /// Installs a phase-scoped re-label for generic RPC waits. Call only
  /// from serial orchestration points (the driver loop) with all worker
  /// fan-outs joined on both sides, so the set of records falling inside
  /// the aliased window is scheduling-independent — that keeps ledger
  /// totals bit-identical at any PSGRAPH_THREADS. Conservation is
  /// unaffected: aliasing moves ticks between categories, never creates
  /// or destroys them.
  void SetWaitAlias(CostCategory c) {
    std::lock_guard<std::mutex> lock(mu_);
    wait_alias_ = static_cast<int>(c);
  }

  void ClearWaitAlias() {
    std::lock_guard<std::mutex> lock(mu_);
    wait_alias_ = -1;
  }

  int64_t Ticks(int32_t node, CostCategory c) const {
    if (node < 0 || static_cast<size_t>(node) >= ticks_.size()) return 0;
    std::lock_guard<std::mutex> lock(mu_);
    return ticks_[static_cast<size_t>(node)][static_cast<size_t>(c)];
  }

  /// All categories of one node in kCostCategoryNames order.
  std::array<int64_t, kNumCostCategories> NodeTicks(int32_t node) const {
    if (node < 0 || static_cast<size_t>(node) >= ticks_.size()) return {};
    std::lock_guard<std::mutex> lock(mu_);
    return ticks_[static_cast<size_t>(node)];
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& row : ticks_) row.fill(0);
  }

 private:
  mutable std::mutex mu_;
  int wait_alias_ = -1;  ///< active alias for kRpcWait, -1 = none
  std::vector<std::array<int64_t, kNumCostCategories>> ticks_;
};

/// RAII wait-alias scope for a retrain (or similar) phase:
///   { ScopedWaitAlias alias(ledger, CostCategory::kStreamRetrain);
///     ... incremental recompute ... }
class ScopedWaitAlias {
 public:
  ScopedWaitAlias(CostLedger& ledger, CostCategory c) : ledger_(ledger) {
    ledger_.SetWaitAlias(c);
  }
  ~ScopedWaitAlias() { ledger_.ClearWaitAlias(); }
  ScopedWaitAlias(const ScopedWaitAlias&) = delete;
  ScopedWaitAlias& operator=(const ScopedWaitAlias&) = delete;

 private:
  CostLedger& ledger_;
};

}  // namespace psgraph::sim

#endif  // PSGRAPH_SIM_COST_LEDGER_H_
