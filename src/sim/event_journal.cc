#include "sim/event_journal.h"

#include <algorithm>

namespace psgraph::sim {

const char* JournalEventTypeName(JournalEventType type) {
  switch (type) {
    case JournalEventType::kNodeKilled: return "node_killed";
    case JournalEventType::kNodeRestarted: return "node_restarted";
    case JournalEventType::kHealthCheck: return "health_check";
    case JournalEventType::kCheckpointSave: return "checkpoint_save";
    case JournalEventType::kCheckpointRestore: return "checkpoint_restore";
    case JournalEventType::kBarrierEntry: return "barrier_entry";
    case JournalEventType::kRecoveryBegin: return "recovery_begin";
    case JournalEventType::kRecoveryEnd: return "recovery_end";
    case JournalEventType::kRollback: return "rollback";
    case JournalEventType::kAlertFire: return "alert_fire";
    case JournalEventType::kAlertClear: return "alert_clear";
    case JournalEventType::kEpochIngest: return "epoch_ingest";
    case JournalEventType::kEpochPublish: return "epoch_publish";
  }
  return "unknown";
}

void EventJournal::Record(JournalEventType type, int32_t node,
                          int64_t ticks, int64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= kMaxEvents) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  JournalEvent e;
  e.type = type;
  e.node = node;
  e.iteration = iteration();
  e.ticks = ticks;
  e.value = value;
  events_.push_back(e);
}

std::vector<JournalEvent> EventJournal::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::map<std::string, uint64_t> EventJournal::Counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, uint64_t> counts;
  for (const JournalEvent& e : events_) {
    counts[JournalEventTypeName(e.type)]++;
  }
  return counts;
}

void EventJournal::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
  iteration_.store(-1, std::memory_order_relaxed);
}

EventJournal::RecoverySummary EventJournal::SummarizeRecovery(
    const std::vector<JournalEvent>& events) {
  RecoverySummary summary;
  int64_t begin_ticks = 0;
  bool open = false;
  for (const JournalEvent& e : events) {
    if (e.type == JournalEventType::kRecoveryBegin) {
      begin_ticks = e.ticks;
      open = true;
    } else if (e.type == JournalEventType::kRecoveryEnd && open) {
      const int64_t dur = std::max<int64_t>(0, e.ticks - begin_ticks);
      summary.episodes++;
      summary.total_ticks += dur;
      summary.max_ticks = std::max(summary.max_ticks, dur);
      open = false;
    }
  }
  return summary;
}

bool EventJournal::IsFailureEvent(const JournalEvent& e) {
  switch (e.type) {
    case JournalEventType::kNodeKilled:
    case JournalEventType::kNodeRestarted:
    case JournalEventType::kCheckpointRestore:
    case JournalEventType::kRecoveryBegin:
    case JournalEventType::kRecoveryEnd:
    case JournalEventType::kRollback:
      return true;
    case JournalEventType::kHealthCheck:
      return e.value > 0;  // a verdict that actually found dead servers
    case JournalEventType::kCheckpointSave:
    case JournalEventType::kBarrierEntry:
    // Watchdog alerts are observability, not failure handling — a rule
    // can fire on a perfectly healthy run (cache cold start).
    case JournalEventType::kAlertFire:
    case JournalEventType::kAlertClear:
    // Epoch markers chart the steady-state freshness pipeline.
    case JournalEventType::kEpochIngest:
    case JournalEventType::kEpochPublish:
      return false;
  }
  return false;
}

EventJournal& EventJournal::Global() {
  static EventJournal* instance = new EventJournal();
  return *instance;
}

}  // namespace psgraph::sim
