#include "sim/memory_accountant.h"

#include <algorithm>

namespace psgraph::sim {

Status MemoryAccountant::Allocate(int32_t node, uint64_t bytes,
                                  const char* what) {
  std::lock_guard<std::mutex> lock(mu_);
  if (usage_[node] + bytes > budgets_[node]) {
    return Status::MemoryLimitExceeded(
        "node " + std::to_string(node) + ": " + what + " needs " +
        std::to_string(bytes) + " B, used " + std::to_string(usage_[node]) +
        " of " + std::to_string(budgets_[node]) + " B");
  }
  usage_[node] += bytes;
  peak_[node] = std::max(peak_[node], usage_[node]);
  return Status::OK();
}

void MemoryAccountant::Release(int32_t node, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  usage_[node] -= std::min(usage_[node], bytes);
}

void MemoryAccountant::ReleaseAll(int32_t node) {
  std::lock_guard<std::mutex> lock(mu_);
  usage_[node] = 0;
}

uint64_t MemoryAccountant::Usage(int32_t node) const {
  std::lock_guard<std::mutex> lock(mu_);
  return usage_[node];
}

uint64_t MemoryAccountant::Peak(int32_t node) const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_[node];
}

uint64_t MemoryAccountant::Budget(int32_t node) const {
  std::lock_guard<std::mutex> lock(mu_);
  return budgets_[node];
}

uint64_t MemoryAccountant::MaxPeak() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t m = 0;
  for (uint64_t p : peak_) m = std::max(m, p);
  return m;
}

}  // namespace psgraph::sim
