// Per-node memory budgets.
//
// Every sizeable allocation a logical node makes (RDD partitions, join hash
// tables, PS partitions, shuffle buffers) is charged here. Exceeding the
// node's budget yields Status::MemoryLimitExceeded — the simulated
// equivalent of the executor OOM the paper reports for GraphX on DS2,
// K-core and triangle count (Fig. 6).

#ifndef PSGRAPH_SIM_MEMORY_ACCOUNTANT_H_
#define PSGRAPH_SIM_MEMORY_ACCOUNTANT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace psgraph::sim {

class MemoryAccountant {
 public:
  /// One budget per node, in bytes.
  explicit MemoryAccountant(std::vector<uint64_t> budgets)
      : budgets_(std::move(budgets)),
        usage_(budgets_.size(), 0),
        peak_(budgets_.size(), 0) {}

  int32_t num_nodes() const { return static_cast<int32_t>(budgets_.size()); }

  /// Charges `bytes` to `node`. Fails with MemoryLimitExceeded (and leaves
  /// usage unchanged) if the budget would be exceeded.
  Status Allocate(int32_t node, uint64_t bytes, const char* what = "alloc");

  /// Releases `bytes` previously charged to `node`. Over-release clamps to
  /// zero (callers may free conservatively on error paths).
  void Release(int32_t node, uint64_t bytes);

  /// Drops everything the node holds (container death).
  void ReleaseAll(int32_t node);

  uint64_t Usage(int32_t node) const;
  uint64_t Peak(int32_t node) const;
  uint64_t Budget(int32_t node) const;

  /// Max over nodes of peak usage (bench reporting).
  uint64_t MaxPeak() const;

 private:
  mutable std::mutex mu_;
  std::vector<uint64_t> budgets_;
  std::vector<uint64_t> usage_;
  std::vector<uint64_t> peak_;
};

}  // namespace psgraph::sim

#endif  // PSGRAPH_SIM_MEMORY_ACCOUNTANT_H_
