// Per-node simulated clocks.
//
// Each logical node accumulates the simulated seconds it has spent
// computing, reading disk and talking to the network. A synchronization
// barrier advances every participant to the slowest one — exactly how BSP
// supersteps compose. The makespan over all nodes is the number a bench
// reports as "cluster time".
//
// Storage is fixed-point (integer picoseconds), not floating point. This
// is what makes the real-threads execution engine deterministic: integer
// addition is associative and commutative, so a clock whose charges are
// pure Advance() calls ends at the same tick count no matter how
// concurrent charging threads interleave. With doubles, reordered += would
// drift in the last ulp and 1-thread vs N-thread runs would not be
// bit-identical.

#ifndef PSGRAPH_SIM_SIM_CLOCK_H_
#define PSGRAPH_SIM_SIM_CLOCK_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

namespace psgraph::sim {

class SimClock {
 public:
  /// Clock resolution: 1 tick = 1 picosecond. int64 overflows after ~107
  /// days of simulated time, far beyond any bench horizon.
  static constexpr double kTicksPerSec = 1e12;

  explicit SimClock(int32_t num_nodes) : ticks_(num_nodes, 0) {}

  int32_t num_nodes() const { return static_cast<int32_t>(ticks_.size()); }

  static int64_t TicksOf(double seconds) {
    return static_cast<int64_t>(std::llround(seconds * kTicksPerSec));
  }
  static double SecondsOf(int64_t ticks) {
    return static_cast<double>(ticks) / kTicksPerSec;
  }

  /// Adds `seconds` of simulated work to `node`'s clock.
  void Advance(int32_t node, double seconds) {
    std::lock_guard<std::mutex> lock(mu_);
    ticks_[node] += TicksOf(seconds);
  }

  /// Ensures `node`'s clock is at least `t` (e.g. a message cannot be
  /// received before it was sent).
  void AdvanceTo(int32_t node, double t) {
    std::lock_guard<std::mutex> lock(mu_);
    ticks_[node] = std::max(ticks_[node], TicksOf(t));
  }

  double Now(int32_t node) const {
    std::lock_guard<std::mutex> lock(mu_);
    return SecondsOf(ticks_[node]);
  }

  /// Exact tick readings for code that must difference two clock states
  /// without floating-point rounding (the RPC busy-time bracket).
  int64_t NowTicks(int32_t node) const {
    std::lock_guard<std::mutex> lock(mu_);
    return ticks_[node];
  }
  void AdvanceTicks(int32_t node, int64_t ticks) {
    std::lock_guard<std::mutex> lock(mu_);
    ticks_[node] += ticks;
  }
  void AdvanceToTicks(int32_t node, int64_t ticks) {
    std::lock_guard<std::mutex> lock(mu_);
    ticks_[node] = std::max(ticks_[node], ticks);
  }

  /// BSP barrier: every node in `nodes` advances to the max among them.
  /// Returns the barrier time.
  double Barrier(std::span<const int32_t> nodes) {
    std::lock_guard<std::mutex> lock(mu_);
    int64_t t = 0;
    for (int32_t n : nodes) t = std::max(t, ticks_[n]);
    for (int32_t n : nodes) ticks_[n] = t;
    return SecondsOf(t);
  }

  /// Barrier over every node.
  double BarrierAll() {
    std::lock_guard<std::mutex> lock(mu_);
    int64_t t = 0;
    for (int64_t v : ticks_) t = std::max(t, v);
    for (int64_t& v : ticks_) v = t;
    return SecondsOf(t);
  }

  /// Max simulated time over all nodes.
  double Makespan() const { return SecondsOf(MakespanTicks()); }

  /// Tick-exact makespan, for stamps that must difference without
  /// floating-point rounding (the event journal's recovery episodes).
  int64_t MakespanTicks() const {
    std::lock_guard<std::mutex> lock(mu_);
    int64_t t = 0;
    for (int64_t v : ticks_) t = std::max(t, v);
    return t;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    std::fill(ticks_.begin(), ticks_.end(), int64_t{0});
  }

 private:
  mutable std::mutex mu_;
  std::vector<int64_t> ticks_;
};

}  // namespace psgraph::sim

#endif  // PSGRAPH_SIM_SIM_CLOCK_H_
