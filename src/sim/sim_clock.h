// Per-node simulated clocks.
//
// Each logical node accumulates the simulated seconds it has spent
// computing, reading disk and talking to the network. A synchronization
// barrier advances every participant to the slowest one — exactly how BSP
// supersteps compose. The makespan over all nodes is the number a bench
// reports as "cluster time".
//
// Storage is fixed-point (integer picoseconds), not floating point. This
// is what makes the real-threads execution engine deterministic: integer
// addition is associative and commutative, so a clock whose charges are
// pure Advance() calls ends at the same tick count no matter how
// concurrent charging threads interleave. With doubles, reordered += would
// drift in the last ulp and 1-thread vs N-thread runs would not be
// bit-identical.

#ifndef PSGRAPH_SIM_SIM_CLOCK_H_
#define PSGRAPH_SIM_SIM_CLOCK_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

namespace psgraph::sim {

/// One barrier crossing: the fence tick every participant advanced to
/// and the node that gated it (argmax pre-barrier clock, ties to the
/// lowest node id). Barriers happen at serial orchestration points, so
/// the fence log order and contents are scheduling-independent — the
/// critical-path analyzer tiles [0, makespan] with the intervals
/// between consecutive fences, each owned by its gating node.
struct ClockFence {
  int64_t ticks = 0;
  int32_t gating_node = -1;
};

class SimClock {
 public:
  /// Clock resolution: 1 tick = 1 picosecond. int64 overflows after ~107
  /// days of simulated time, far beyond any bench horizon.
  static constexpr double kTicksPerSec = 1e12;

  /// Fence-log cap: a backstop against a pathological barrier loop, far
  /// above any bench (which run hundreds of barriers, not a million).
  /// Past the cap the analyzer falls back to a single path segment.
  static constexpr size_t kMaxFences = size_t{1} << 20;

  explicit SimClock(int32_t num_nodes)
      : ticks_(num_nodes, 0), barrier_wait_(num_nodes, 0) {}

  int32_t num_nodes() const { return static_cast<int32_t>(ticks_.size()); }

  static int64_t TicksOf(double seconds) {
    return static_cast<int64_t>(std::llround(seconds * kTicksPerSec));
  }
  static double SecondsOf(int64_t ticks) {
    return static_cast<double>(ticks) / kTicksPerSec;
  }

  /// Adds `seconds` of simulated work to `node`'s clock.
  void Advance(int32_t node, double seconds) {
    std::lock_guard<std::mutex> lock(mu_);
    ticks_[node] += TicksOf(seconds);
  }

  /// Ensures `node`'s clock is at least `t` (e.g. a message cannot be
  /// received before it was sent).
  void AdvanceTo(int32_t node, double t) {
    std::lock_guard<std::mutex> lock(mu_);
    ticks_[node] = std::max(ticks_[node], TicksOf(t));
  }

  double Now(int32_t node) const {
    std::lock_guard<std::mutex> lock(mu_);
    return SecondsOf(ticks_[node]);
  }

  /// Exact tick readings for code that must difference two clock states
  /// without floating-point rounding (the RPC busy-time bracket).
  int64_t NowTicks(int32_t node) const {
    std::lock_guard<std::mutex> lock(mu_);
    return ticks_[node];
  }
  void AdvanceTicks(int32_t node, int64_t ticks) {
    std::lock_guard<std::mutex> lock(mu_);
    ticks_[node] += ticks;
  }
  void AdvanceToTicks(int32_t node, int64_t ticks) {
    std::lock_guard<std::mutex> lock(mu_);
    ticks_[node] = std::max(ticks_[node], ticks);
  }

  /// AdvanceToTicks that returns the jump actually applied (0 when the
  /// node was already past `ticks`) — the amount a makespan-attribution
  /// ledger should charge for the stall.
  int64_t AdvanceToTicksJump(int32_t node, int64_t ticks) {
    std::lock_guard<std::mutex> lock(mu_);
    const int64_t jump = std::max(int64_t{0}, ticks - ticks_[node]);
    ticks_[node] += jump;
    return jump;
  }

  /// BSP barrier: every node in `nodes` advances to the max among them.
  /// Returns the barrier time.
  double Barrier(std::span<const int32_t> nodes) {
    std::lock_guard<std::mutex> lock(mu_);
    int64_t t = 0;
    int32_t gate = -1;
    for (int32_t n : nodes) {
      if (gate < 0 || ticks_[n] > t) {
        t = ticks_[n];
        gate = n;
      } else if (ticks_[n] == t && n < gate) {
        gate = n;
      }
    }
    for (int32_t n : nodes) {
      barrier_wait_[n] += t - ticks_[n];
      ticks_[n] = t;
    }
    if (nodes.size() > 1) RecordFenceLocked(t, gate);
    return SecondsOf(t);
  }

  /// Barrier over every node.
  double BarrierAll() {
    std::lock_guard<std::mutex> lock(mu_);
    int64_t t = 0;
    int32_t gate = -1;
    for (size_t n = 0; n < ticks_.size(); ++n) {
      if (ticks_[n] > t || gate < 0) {
        t = ticks_[n];
        gate = static_cast<int32_t>(n);
      }
    }
    for (size_t n = 0; n < ticks_.size(); ++n) {
      barrier_wait_[n] += t - ticks_[n];
      ticks_[n] = t;
    }
    if (ticks_.size() > 1) RecordFenceLocked(t, gate);
    return SecondsOf(t);
  }

  /// Total ticks `node` has spent stalled at barriers waiting for
  /// slower participants.
  int64_t BarrierWaitTicks(int32_t node) const {
    std::lock_guard<std::mutex> lock(mu_);
    return barrier_wait_[node];
  }

  /// The barrier fence log, in crossing order.
  std::vector<ClockFence> Fences() const {
    std::lock_guard<std::mutex> lock(mu_);
    return fences_;
  }

  uint64_t fences_dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return fences_dropped_;
  }

  /// Max simulated time over all nodes.
  double Makespan() const { return SecondsOf(MakespanTicks()); }

  /// Tick-exact makespan, for stamps that must difference without
  /// floating-point rounding (the event journal's recovery episodes).
  int64_t MakespanTicks() const {
    std::lock_guard<std::mutex> lock(mu_);
    int64_t t = 0;
    for (int64_t v : ticks_) t = std::max(t, v);
    return t;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    std::fill(ticks_.begin(), ticks_.end(), int64_t{0});
    std::fill(barrier_wait_.begin(), barrier_wait_.end(), int64_t{0});
    fences_.clear();
    fences_dropped_ = 0;
  }

 private:
  void RecordFenceLocked(int64_t t, int32_t gate) {
    if (fences_.size() >= kMaxFences) {
      ++fences_dropped_;
      return;
    }
    fences_.push_back({t, gate});
  }

  mutable std::mutex mu_;
  std::vector<int64_t> ticks_;
  std::vector<int64_t> barrier_wait_;
  std::vector<ClockFence> fences_;
  uint64_t fences_dropped_ = 0;
};

}  // namespace psgraph::sim

#endif  // PSGRAPH_SIM_SIM_CLOCK_H_
