// Per-node simulated clocks.
//
// Each logical node accumulates the simulated seconds it has spent
// computing, reading disk and talking to the network. A synchronization
// barrier advances every participant to the slowest one — exactly how BSP
// supersteps compose. The makespan over all nodes is the number a bench
// reports as "cluster time".

#ifndef PSGRAPH_SIM_SIM_CLOCK_H_
#define PSGRAPH_SIM_SIM_CLOCK_H_

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

namespace psgraph::sim {

class SimClock {
 public:
  explicit SimClock(int32_t num_nodes) : times_(num_nodes, 0.0) {}

  int32_t num_nodes() const { return static_cast<int32_t>(times_.size()); }

  /// Adds `seconds` of simulated work to `node`'s clock.
  void Advance(int32_t node, double seconds) {
    std::lock_guard<std::mutex> lock(mu_);
    times_[node] += seconds;
  }

  /// Ensures `node`'s clock is at least `t` (e.g. a message cannot be
  /// received before it was sent).
  void AdvanceTo(int32_t node, double t) {
    std::lock_guard<std::mutex> lock(mu_);
    times_[node] = std::max(times_[node], t);
  }

  double Now(int32_t node) const {
    std::lock_guard<std::mutex> lock(mu_);
    return times_[node];
  }

  /// BSP barrier: every node in `nodes` advances to the max among them.
  /// Returns the barrier time.
  double Barrier(std::span<const int32_t> nodes) {
    std::lock_guard<std::mutex> lock(mu_);
    double t = 0.0;
    for (int32_t n : nodes) t = std::max(t, times_[n]);
    for (int32_t n : nodes) times_[n] = t;
    return t;
  }

  /// Barrier over every node.
  double BarrierAll() {
    std::lock_guard<std::mutex> lock(mu_);
    double t = 0.0;
    for (double v : times_) t = std::max(t, v);
    for (double& v : times_) v = t;
    return t;
  }

  /// Max simulated time over all nodes.
  double Makespan() const {
    std::lock_guard<std::mutex> lock(mu_);
    double t = 0.0;
    for (double v : times_) t = std::max(t, v);
    return t;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    std::fill(times_.begin(), times_.end(), 0.0);
  }

 private:
  mutable std::mutex mu_;
  std::vector<double> times_;
};

}  // namespace psgraph::sim

#endif  // PSGRAPH_SIM_SIM_CLOCK_H_
