// Control-plane event journal: a deterministic, sim-clock-stamped record
// of everything the failure-recovery machinery does (paper §III-B /
// Table II) — node kills and restarts, master health-check verdicts,
// checkpoint saves and restores, barrier entries, recovery episodes and
// consistent-model rollbacks.
//
// Events are appended by the orchestration path (failure injector,
// SimCluster kill/revive, PsMaster, PsServer checkpoint/restore, the
// sync controller), which runs single-threaded per context, so the
// journal order is the program order of the run and identical at any
// parallelism level. Each event carries the iteration the orchestration
// loop was in (set_iteration(), stamped by PsGraphContext/FailureInjector
// at iteration start) and a simulated-clock tick stamp, so tooling can
// render a recovery timeline next to the trace spans.

#ifndef PSGRAPH_SIM_EVENT_JOURNAL_H_
#define PSGRAPH_SIM_EVENT_JOURNAL_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace psgraph::sim {

enum class JournalEventType : uint8_t {
  kNodeKilled = 0,        ///< container died (failure injection / test)
  kNodeRestarted,         ///< resource manager relaunched the container
  kHealthCheck,           ///< master verdict; value = dead servers found
  kCheckpointSave,        ///< one server checkpointed; value = bytes
  kCheckpointRestore,     ///< one server restored; value = bytes
  kBarrierEntry,          ///< BSP/SSP barrier taken; value = wait ticks
  kRecoveryBegin,         ///< repairs started; value = dead nodes
  kRecoveryEnd,           ///< repairs done; value = nodes restarted
  kRollback,              ///< consistent rollback; value = target iteration
  kAlertFire,             ///< SLO watchdog rule fired; value = rule index
  kAlertClear,            ///< SLO watchdog rule cleared; value = rule index
  kEpochIngest,           ///< mutation epoch applied; value = mutation count
  kEpochPublish,          ///< epoch served after republish; value = version
};

/// Stable wire name of an event type ("node_killed", ...).
const char* JournalEventTypeName(JournalEventType type);

struct JournalEvent {
  JournalEventType type = JournalEventType::kHealthCheck;
  int32_t node = -1;       ///< affected node, -1 for cluster-wide events
  int64_t iteration = -1;  ///< orchestration iteration, -1 if unknown
  int64_t ticks = 0;       ///< simulated-clock stamp (1 tick = 1 ps)
  int64_t value = 0;       ///< type-specific payload (see enum comments)
};

class EventJournal {
 public:
  /// Cap on retained events; appends past it are counted in dropped().
  static constexpr size_t kMaxEvents = 1 << 16;

  /// Appends one event, stamped with the current iteration context.
  void Record(JournalEventType type, int32_t node, int64_t ticks,
              int64_t value = 0);

  /// Iteration context stamped onto subsequent events. Set by the
  /// orchestration loop at the start of each iteration.
  void set_iteration(int64_t iteration) {
    iteration_.store(iteration, std::memory_order_relaxed);
  }
  int64_t iteration() const {
    return iteration_.load(std::memory_order_relaxed);
  }

  std::vector<JournalEvent> Snapshot() const;
  /// Event count per type name (only types that occurred).
  std::map<std::string, uint64_t> Counts() const;
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  void Reset();

  /// Derived recovery metrics from paired recovery_begin/recovery_end
  /// events: episode count and total/max time-to-recovery ticks.
  struct RecoverySummary {
    uint64_t episodes = 0;
    int64_t total_ticks = 0;  ///< sum over episodes of (end - begin)
    int64_t max_ticks = 0;
  };
  static RecoverySummary SummarizeRecovery(
      const std::vector<JournalEvent>& events);

  /// True for event types that only occur on failure paths (the
  /// "events.failures" report section). Health checks qualify only with
  /// a non-zero verdict, which the caller checks via `value`.
  static bool IsFailureEvent(const JournalEvent& e);

  /// Process-wide fallback journal, used by clusters without an
  /// installed per-context sink (unit tests).
  static EventJournal& Global();

 private:
  std::atomic<int64_t> iteration_{-1};
  std::atomic<uint64_t> dropped_{0};
  mutable std::mutex mu_;
  std::vector<JournalEvent> events_;
};

}  // namespace psgraph::sim

#endif  // PSGRAPH_SIM_EVENT_JOURNAL_H_
