// Per-iteration algorithm telemetry (the "convergence" section of a run
// report).
//
// A ConvergenceLog holds named time series of (iteration, value) points:
// PageRank's delta L1 and active-vertex count, K-core's peeling frontier
// size, Louvain's modularity, LINE/GraphSage loss. Algorithms record
// through the cluster sink (SimCluster::convergence()); benches snapshot
// the log into the run report where CI schema-validates it.
//
// Iterations within one series must be strictly increasing — a point at
// an iteration <= the last recorded one is rejected (and counted), so a
// series can always be plotted without sorting and a rollback bug in an
// algorithm's iteration counter shows up as rejected points instead of a
// silently mangled curve. Recovery rollbacks that legitimately re-run
// iterations call Rewind() first to truncate the series.

#ifndef PSGRAPH_SIM_CONVERGENCE_H_
#define PSGRAPH_SIM_CONVERGENCE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace psgraph::sim {

class ConvergenceLog {
 public:
  struct Point {
    int64_t iteration = 0;
    double value = 0.0;
  };
  using Series = std::vector<Point>;

  /// Appends one point to `series`. Returns false (and counts the point
  /// in rejected()) when `iteration` is not strictly greater than the
  /// series' last iteration.
  bool Record(const std::string& series, int64_t iteration, double value);

  /// Drops every point of `series` with iteration >= `iteration`, so a
  /// consistent-recovery rollback can re-record the redone iterations.
  void Rewind(const std::string& series, int64_t iteration);

  /// All series, sorted by name; points in recording (= iteration)
  /// order.
  std::map<std::string, Series> Snapshot() const;

  /// Points rejected for violating the monotonic-iteration invariant.
  uint64_t rejected() const;

  /// Copies every series of `other` into this log under
  /// `prefix + name`. Existing points of a colliding series are kept and
  /// the merged points appended only where they extend it monotonically.
  void Merge(const ConvergenceLog& other, const std::string& prefix);

  void Reset();

  /// Process-wide fallback sink, mirroring Metrics::Global(): used by
  /// components running without a cluster.
  static ConvergenceLog& Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, Series> series_;
  uint64_t rejected_ = 0;
};

}  // namespace psgraph::sim

#endif  // PSGRAPH_SIM_CONVERGENCE_H_
