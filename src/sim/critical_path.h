// Deterministic critical-path analysis of a simulated run.
//
// The makespan of a SimCluster run is the final clock of its
// last-finishing node. This module answers *why* that node's clock
// reads what it reads:
//
//   1. Category attribution. The critical node's makespan is split over
//      the fixed CostCategory taxonomy (sim/cost_ledger.h): ledger
//      charges (rpc.serialize, rpc.wait, recovery, replication.merge,
//      serving.queue) + the clock's own barrier-wait accumulator
//      (barrier.skew) + residual compute. By construction the seven
//      categories sum EXACTLY to the makespan — the conservation
//      invariant the report validator enforces. A negative residual
//      means a subsystem double-charged the ledger and the report is
//      rejected rather than silently clamped.
//
//   2. Path segments. The clock's barrier fence log tiles [0, makespan]
//      into intervals between consecutive fences; each interval is
//      owned by the node that gated its closing fence (the slowest
//      participant — the node the whole cluster was waiting on), and
//      the final interval by the critical node. This is the superstep
//      view of "who was the straggler when".
//
//   3. What-if projection. For the top critical-node span names,
//      "shrink every span named X by factor f" is projected as
//      max_n(clock[n] - (1-f) * span_ticks[X][n]) — the longest-path
//      recomputation under the BSP DAG where each node's chain
//      contracts by its own share of X. Monotone in f and bounded by
//      the makespan by construction.
//
// Everything here derives from scheduling-independent aggregates
// (final clocks, ledger sums, fence log, per-(name,node) span totals),
// so the emitted JSON is byte-identical at PSGRAPH_THREADS=1 vs 8.
// Raw span *intervals* are deliberately not used: at parallelism > 1 a
// server handler's begin tick depends on dispatch order even though
// every aggregate total does not (see dataflow/dataset.h on lineage
// absorption).

#ifndef PSGRAPH_SIM_CRITICAL_PATH_H_
#define PSGRAPH_SIM_CRITICAL_PATH_H_

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/trace.h"
#include "sim/cost_ledger.h"

namespace psgraph::sim {

class SimCluster;

/// What-if shrink factors evaluated per top span name: "halve it" and
/// "make it free" bracket the plausible optimization range.
inline constexpr double kWhatIfFactors[] = {0.5, 0.0};

struct CriticalPathReport {
  /// False when the run had no cluster (report collected from bare
  /// registries) — emitted as JSON null.
  bool valid = false;

  int32_t critical_node = -1;
  std::string critical_role;
  int64_t makespan_ticks = 0;

  /// Ticks per CostCategory (kCostCategoryNames order) on the critical
  /// node. Sums exactly to makespan_ticks; compute is the residual.
  std::array<int64_t, kNumCostCategories> categories{};

  /// One straggler interval of the fence tiling. Contiguous: the first
  /// begins at 0, each begins where the previous ended, the last ends
  /// at makespan_ticks.
  struct Segment {
    int32_t node = -1;
    std::string role;
    int64_t begin_ticks = 0;
    int64_t end_ticks = 0;
    /// What closed the segment: "barrier" (a fence this node gated) or
    /// "makespan" (the final stretch of the critical node).
    std::string gate;
  };
  std::vector<Segment> path;

  /// Top span names by critical-node ticks (desc, name asc on ties).
  struct SpanAttr {
    std::string name;
    int64_t critical_node_ticks = 0;
    int64_t total_ticks = 0;  ///< across all nodes
    uint64_t count = 0;       ///< across all nodes
  };
  std::vector<SpanAttr> top_spans;

  /// Predicted-speedup table over top_spans x kWhatIfFactors. Empty
  /// when tracing was disabled (categories and path never depend on
  /// the tracer).
  struct WhatIf {
    std::string name;
    double factor = 1.0;
    int64_t projected_makespan_ticks = 0;
    double speedup = 1.0;  ///< makespan / projected
  };
  std::vector<WhatIf> what_if;
};

/// Builds the full report for `cluster` (null -> valid=false). Reads
/// the clock, ledger, fence log and tracer node summaries; mutates
/// nothing.
CriticalPathReport AnalyzeCriticalPath(SimCluster* cluster);

/// What-if primitive, exposed for tests: projected makespan after
/// shrinking every span named `name` to `factor` of its duration, per
/// node. Monotone non-decreasing in `factor`; equals the current
/// makespan at factor 1.
int64_t ProjectedMakespanTicks(SimCluster* cluster, const std::string& name,
                               double factor);

/// Span names whose per-(name, node) totals are scheduling-dependent
/// (shared-lineage work lands on whichever task materializes it first)
/// and must therefore stay out of the deterministic report sections.
bool SpanTicksDeterministicPerNode(const std::string& name);

/// Longest weighted root-to-leaf path through an explicit span DAG:
/// edges are parent -> child links plus `extra_edges` (from-id, to-id;
/// e.g. cross-node RPC flow arrows), weights are span durations, and
/// the path must end at the last-finishing span (max end_ticks, ties
/// to the lowest id). Returns span ids in path order. Edges that run
/// backwards in begin_ticks are ignored. Exposed for the hand-built
/// DAG tests; AnalyzeCriticalPath itself uses the aggregate tiling
/// above for determinism under real scheduling.
std::vector<uint64_t> LongestSpanPath(
    const std::vector<TraceSpan>& spans,
    const std::vector<std::pair<uint64_t, uint64_t>>& extra_edges = {});

}  // namespace psgraph::sim

#endif  // PSGRAPH_SIM_CRITICAL_PATH_H_
