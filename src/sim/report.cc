#include "sim/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace psgraph::sim {

namespace {

RoleStats CollectRole(const SimCluster& cluster, NodeId begin,
                      NodeId end) {
  RoleStats stats;
  if (begin >= end) return stats;
  stats.min_time = 1e300;
  // Clock/memory accessors are const-safe; the cluster reference is
  // conceptually read-only here.
  auto& mutable_cluster = const_cast<SimCluster&>(cluster);
  double total = 0.0;
  for (NodeId n = begin; n < end; ++n) {
    double t = mutable_cluster.clock().Now(n);
    stats.min_time = std::min(stats.min_time, t);
    stats.max_time = std::max(stats.max_time, t);
    total += t;
    stats.max_peak_mem =
        std::max(stats.max_peak_mem, mutable_cluster.memory().Peak(n));
    stats.budget = mutable_cluster.memory().Budget(n);
  }
  stats.avg_time = total / static_cast<double>(end - begin);
  return stats;
}

}  // namespace

ClusterReport CollectReport(const SimCluster& cluster) {
  ClusterReport report;
  const ClusterConfig& cfg = cluster.config();
  report.executors = CollectRole(cluster, 0, cfg.num_executors);
  report.servers =
      CollectRole(cluster, cfg.num_executors,
                  cfg.num_executors + cfg.num_servers);
  report.makespan = const_cast<SimCluster&>(cluster).clock().Makespan();
  return report;
}

std::string FormatReport(const ClusterReport& report) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "cluster report: makespan %.3fs\n"
      "  executors: busy avg %.3fs max %.3fs | peak mem %.1f%% of budget\n"
      "  servers:   busy avg %.3fs max %.3fs | peak mem %.1f%% of budget",
      report.makespan, report.executors.avg_time,
      report.executors.max_time,
      report.executors.budget
          ? 100.0 * report.executors.max_peak_mem / report.executors.budget
          : 0.0,
      report.servers.avg_time, report.servers.max_time,
      report.servers.budget
          ? 100.0 * report.servers.max_peak_mem / report.servers.budget
          : 0.0);
  return buf;
}

namespace {

uint64_t CounterOr0(const std::map<std::string, uint64_t>& counters,
                    const char* name) {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

/// The "serving" section is a pure rollup of the serving.* metrics, so
/// every collection path (with or without a cluster) reports it.
void FillServingStats(RunReport* report) {
  RunReport::ServingStats& s = report->serving;
  s.requests_completed =
      CounterOr0(report->counters, "serving.requests_completed");
  s.requests_failed = CounterOr0(report->counters, "serving.requests_failed");
  s.torn_reads = CounterOr0(report->counters, "serving.torn_reads");
  s.lookup_keys = CounterOr0(report->counters, "serving.lookup_keys");
  s.infer_nodes = CounterOr0(report->counters, "serving.infer_nodes");
  s.cache_hits = CounterOr0(report->counters, "serving.cache_hits");
  s.cache_misses = CounterOr0(report->counters, "serving.cache_misses");
  const uint64_t probes = s.cache_hits + s.cache_misses;
  s.cache_hit_rate =
      probes == 0 ? 0.0
                  : static_cast<double>(s.cache_hits) /
                        static_cast<double>(probes);
  s.batches = CounterOr0(report->counters, "serving.batches");
  s.swaps = CounterOr0(report->counters, "serving.swaps");
  s.snapshots_published =
      CounterOr0(report->counters, "serving.snapshots_published");
  auto occupancy = report->histograms.find("serving.batch.occupancy");
  if (occupancy != report->histograms.end()) {
    s.mean_batch_occupancy = occupancy->second.mean();
  }
  auto latency = report->histograms.find("serving.request.latency_ticks");
  if (latency != report->histograms.end()) {
    s.latency = latency->second;
  }
}

}  // namespace

RunReport CollectRunReport(const std::string& name, Metrics& metrics,
                           Tracer& tracer) {
  RunReport report;
  report.name = name;
  report.counters = metrics.CounterSnapshot();
  report.gauges = metrics.GaugeSnapshot();
  report.histograms = metrics.HistogramSnapshots();
  report.spans = tracer.Summary();
  report.spans_dropped = tracer.dropped();
  FillServingStats(&report);
  return report;
}

RunReport CollectRunReport(const std::string& name, SimCluster* cluster) {
  if (cluster == nullptr) {
    return CollectRunReport(name, Metrics::Global(), Tracer::Global());
  }
  RunReport report =
      CollectRunReport(name, cluster->metrics(), cluster->tracer());
  report.skew = cluster->skew().Snap();
  report.convergence = cluster->convergence().Snapshot();
  report.convergence_rejected = cluster->convergence().rejected();
  report.rpc = cluster->rpc_telemetry().Snapshot();
  report.timeseries = cluster->sampler().store().Snapshot();
  report.alert_rules = cluster->watchdog().rules();
  report.alert_firings = cluster->watchdog().firings();
  const std::vector<JournalEvent> events = cluster->events().Snapshot();
  report.event_counts = cluster->events().Counts();
  for (const JournalEvent& e : events) {
    if (EventJournal::IsFailureEvent(e)) report.failure_events.push_back(e);
  }
  report.recovery = EventJournal::SummarizeRecovery(events);
  report.events_dropped = cluster->events().dropped();
  const ClusterConfig& cfg = cluster->config();
  report.has_cluster = true;
  report.num_executors = cfg.num_executors;
  report.num_servers = cfg.num_servers;
  for (NodeId n = 0; n < cfg.num_nodes(); ++n) {
    RunReport::NodeStat stat;
    stat.node = n;
    stat.role = cfg.is_executor(n)   ? "executor"
                : cfg.is_server(n)   ? "server"
                                     : "driver";
    stat.busy_ticks = cluster->clock().NowTicks(n);
    stat.busy_seconds = SimClock::SecondsOf(stat.busy_ticks);
    stat.mem_usage_bytes = cluster->memory().Usage(n);
    stat.mem_peak_bytes = cluster->memory().Peak(n);
    stat.mem_budget_bytes = cluster->memory().Budget(n);
    report.nodes.push_back(std::move(stat));
    report.makespan_ticks =
        std::max(report.makespan_ticks, report.nodes.back().busy_ticks);
  }
  report.makespan_seconds = SimClock::SecondsOf(report.makespan_ticks);
  report.critical_path = AnalyzeCriticalPath(cluster);
  return report;
}

namespace {

JsonValue HistogramToJson(const HistogramSnapshot& h) {
  JsonValue obj = JsonValue::Object();
  obj.Set("count", h.count);
  obj.Set("sum", h.sum);
  obj.Set("min", h.min);
  obj.Set("max", h.max);
  obj.Set("mean", h.mean());
  const HistogramPercentiles q = h.Percentiles();
  obj.Set("p50", q.p50);
  obj.Set("p95", q.p95);
  obj.Set("p99", q.p99);
  obj.Set("p999", q.p999);
  // Sparse [bucket_index, count] pairs: enough to rebuild the full
  // distribution, without 400 zeros per histogram.
  JsonValue buckets = JsonValue::Array();
  for (size_t i = 0; i < h.buckets.size(); ++i) {
    if (h.buckets[i] == 0) continue;
    JsonValue pair = JsonValue::Array();
    pair.Append(static_cast<uint64_t>(i));
    pair.Append(h.buckets[i]);
    buckets.Append(std::move(pair));
  }
  obj.Set("buckets", std::move(buckets));
  return obj;
}

}  // namespace

JsonValue RunReportToJson(const RunReport& report) {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", kRunReportSchema);
  doc.Set("schema_version", kRunReportSchemaVersion);
  doc.Set("name", report.name);

  JsonValue counters = JsonValue::Object();
  for (const auto& [k, v] : report.counters) counters.Set(k, v);
  doc.Set("counters", std::move(counters));

  JsonValue gauges = JsonValue::Object();
  for (const auto& [k, v] : report.gauges) gauges.Set(k, v);
  doc.Set("gauges", std::move(gauges));

  JsonValue hists = JsonValue::Object();
  for (const auto& [k, v] : report.histograms) {
    hists.Set(k, HistogramToJson(v));
  }
  doc.Set("histograms", std::move(hists));

  JsonValue spans = JsonValue::Object();
  for (const auto& [k, v] : report.spans) {
    JsonValue s = JsonValue::Object();
    s.Set("count", v.count);
    s.Set("total_ticks", v.total_ticks);
    s.Set("max_ticks", v.max_ticks);
    spans.Set(k, std::move(s));
  }
  doc.Set("spans", std::move(spans));
  doc.Set("spans_dropped", report.spans_dropped);

  if (report.has_cluster) {
    JsonValue cluster = JsonValue::Object();
    cluster.Set("num_executors", static_cast<int64_t>(report.num_executors));
    cluster.Set("num_servers", static_cast<int64_t>(report.num_servers));
    cluster.Set("makespan_ticks", report.makespan_ticks);
    cluster.Set("makespan_seconds", report.makespan_seconds);
    JsonValue nodes = JsonValue::Array();
    for (const auto& n : report.nodes) {
      JsonValue node = JsonValue::Object();
      node.Set("node", static_cast<int64_t>(n.node));
      node.Set("role", n.role);
      node.Set("busy_ticks", n.busy_ticks);
      node.Set("busy_seconds", n.busy_seconds);
      node.Set("mem_usage_bytes", n.mem_usage_bytes);
      node.Set("mem_peak_bytes", n.mem_peak_bytes);
      node.Set("mem_budget_bytes", n.mem_budget_bytes);
      nodes.Append(std::move(node));
    }
    cluster.Set("nodes", std::move(nodes));
    doc.Set("cluster", std::move(cluster));
  } else {
    doc.Set("cluster", JsonValue());
  }

  if (report.critical_path.valid) {
    const CriticalPathReport& cp = report.critical_path;
    JsonValue section = JsonValue::Object();
    section.Set("critical_node", static_cast<int64_t>(cp.critical_node));
    section.Set("critical_role", cp.critical_role);
    section.Set("makespan_ticks", cp.makespan_ticks);
    JsonValue categories = JsonValue::Object();
    for (int c = 0; c < kNumCostCategories; ++c) {
      categories.Set(kCostCategoryNames[c],
                     cp.categories[static_cast<size_t>(c)]);
    }
    section.Set("categories", std::move(categories));
    JsonValue path = JsonValue::Array();
    for (const auto& seg : cp.path) {
      JsonValue s = JsonValue::Object();
      s.Set("node", static_cast<int64_t>(seg.node));
      s.Set("role", seg.role);
      s.Set("begin_ticks", seg.begin_ticks);
      s.Set("end_ticks", seg.end_ticks);
      s.Set("ticks", seg.end_ticks - seg.begin_ticks);
      s.Set("gate", seg.gate);
      path.Append(std::move(s));
    }
    section.Set("path", std::move(path));
    JsonValue top_spans = JsonValue::Array();
    for (const auto& span : cp.top_spans) {
      JsonValue s = JsonValue::Object();
      s.Set("name", span.name);
      s.Set("critical_node_ticks", span.critical_node_ticks);
      s.Set("total_ticks", span.total_ticks);
      s.Set("count", span.count);
      top_spans.Append(std::move(s));
    }
    section.Set("top_spans", std::move(top_spans));
    JsonValue what_if = JsonValue::Array();
    for (const auto& w : cp.what_if) {
      JsonValue entry = JsonValue::Object();
      entry.Set("name", w.name);
      entry.Set("factor", w.factor);
      entry.Set("projected_makespan_ticks", w.projected_makespan_ticks);
      entry.Set("speedup", w.speedup);
      what_if.Append(std::move(entry));
    }
    section.Set("what_if", std::move(what_if));
    doc.Set("critical_path", std::move(section));
  } else {
    doc.Set("critical_path", JsonValue());
  }

  JsonValue skew = JsonValue::Object();
  skew.Set("key_profiling", report.skew.key_profiling);
  skew.Set("sample_period", report.skew.sample_period);
  JsonValue shards = JsonValue::Array();
  for (const auto& s : report.skew.shards) {
    JsonValue shard = JsonValue::Object();
    shard.Set("server", static_cast<int64_t>(s.server));
    shard.Set("pull_keys", s.pull_keys);
    shard.Set("push_keys", s.push_keys);
    shard.Set("load_share", s.load_share);
    shard.Set("topk_share", s.topk_share);
    JsonValue hot = JsonValue::Array();
    for (const auto& e : s.hot_keys) {
      JsonValue entry = JsonValue::Array();
      entry.Append(e.key);
      entry.Append(e.count);
      entry.Append(e.error);
      hot.Append(std::move(entry));
    }
    shard.Set("hot_keys", std::move(hot));
    shards.Append(std::move(shard));
  }
  skew.Set("shards", std::move(shards));
  JsonValue partitions = JsonValue::Array();
  for (const auto& p : report.skew.partitions) {
    JsonValue part = JsonValue::Object();
    part.Set("partition", static_cast<int64_t>(p.partition));
    part.Set("busy_ticks", p.busy_ticks);
    partitions.Append(std::move(part));
  }
  skew.Set("partitions", std::move(partitions));
  skew.Set("partition_imbalance", report.skew.partition_imbalance);
  doc.Set("skew", std::move(skew));

  JsonValue convergence = JsonValue::Object();
  JsonValue series = JsonValue::Object();
  for (const auto& [name, points] : report.convergence) {
    JsonValue list = JsonValue::Array();
    for (const auto& p : points) {
      JsonValue point = JsonValue::Array();
      point.Append(p.iteration);
      point.Append(p.value);
      list.Append(std::move(point));
    }
    series.Set(name, std::move(list));
  }
  convergence.Set("series", std::move(series));
  convergence.Set("rejected_points", report.convergence_rejected);
  doc.Set("convergence", std::move(convergence));

  JsonValue rpc = JsonValue::Object();
  JsonValue methods = JsonValue::Array();
  for (const auto& m : report.rpc) {
    JsonValue entry = JsonValue::Object();
    entry.Set("method", m.method);
    entry.Set("node", static_cast<int64_t>(m.node));
    entry.Set("calls", m.calls);
    entry.Set("request_bytes", m.request_bytes);
    entry.Set("response_bytes", m.response_bytes);
    entry.Set("callee_busy_ticks", m.callee_busy_ticks);
    entry.Set("caller_wait_ticks", m.caller_wait_ticks);
    entry.Set("errors_unavailable", m.errors_unavailable);
    entry.Set("errors_handler", m.errors_handler);
    methods.Append(std::move(entry));
  }
  rpc.Set("methods", std::move(methods));
  doc.Set("rpc", std::move(rpc));

  JsonValue events = JsonValue::Object();
  JsonValue counts = JsonValue::Object();
  for (const auto& [type, count] : report.event_counts) {
    counts.Set(type, count);
  }
  events.Set("counts", std::move(counts));
  JsonValue failures = JsonValue::Array();
  for (const JournalEvent& e : report.failure_events) {
    JsonValue ev = JsonValue::Object();
    ev.Set("type", JournalEventTypeName(e.type));
    ev.Set("node", static_cast<int64_t>(e.node));
    ev.Set("iteration", e.iteration);
    ev.Set("ticks", e.ticks);
    ev.Set("value", e.value);
    failures.Append(std::move(ev));
  }
  events.Set("failures", std::move(failures));
  JsonValue recovery = JsonValue::Object();
  recovery.Set("episodes", report.recovery.episodes);
  recovery.Set("total_ticks", report.recovery.total_ticks);
  recovery.Set("max_ticks", report.recovery.max_ticks);
  events.Set("recovery", std::move(recovery));
  events.Set("dropped", report.events_dropped);
  doc.Set("events", std::move(events));

  JsonValue serving = JsonValue::Object();
  serving.Set("requests_completed", report.serving.requests_completed);
  serving.Set("requests_failed", report.serving.requests_failed);
  serving.Set("torn_reads", report.serving.torn_reads);
  serving.Set("lookup_keys", report.serving.lookup_keys);
  serving.Set("infer_nodes", report.serving.infer_nodes);
  serving.Set("cache_hits", report.serving.cache_hits);
  serving.Set("cache_misses", report.serving.cache_misses);
  serving.Set("cache_hit_rate", report.serving.cache_hit_rate);
  serving.Set("batches", report.serving.batches);
  serving.Set("mean_batch_occupancy", report.serving.mean_batch_occupancy);
  serving.Set("swaps", report.serving.swaps);
  serving.Set("snapshots_published", report.serving.snapshots_published);
  serving.Set("latency_ticks", HistogramToJson(report.serving.latency));
  doc.Set("serving", std::move(serving));

  JsonValue timeseries = JsonValue::Object();
  timeseries.Set("base_interval_ticks",
                 report.timeseries.base_interval_ticks);
  timeseries.Set("interval_ticks", report.timeseries.interval_ticks);
  timeseries.Set("compactions",
                 static_cast<uint64_t>(report.timeseries.compactions));
  timeseries.Set("points", static_cast<uint64_t>(report.timeseries.points));
  JsonValue ts_series = JsonValue::Object();
  for (const auto& [sname, values] : report.timeseries.series) {
    // All-zero series carry no information (most counters never move in
    // a given bench) — dropping them keeps 100+ series reports small.
    const bool all_zero =
        std::all_of(values.begin(), values.end(),
                    [](double v) { return v == 0.0; });
    if (all_zero) continue;
    JsonValue list = JsonValue::Array();
    for (double v : values) {
      // Counters and tick quantiles are integral: emit them as integers
      // so the arrays don't balloon with %.17g float renderings.
      const auto as_int = static_cast<int64_t>(v);
      if (static_cast<double>(as_int) == v && std::abs(v) <= 9.0e15) {
        list.Append(as_int);
      } else {
        list.Append(v);
      }
    }
    ts_series.Set(sname, std::move(list));
  }
  timeseries.Set("series", std::move(ts_series));
  doc.Set("timeseries", std::move(timeseries));

  JsonValue alerts = JsonValue::Object();
  JsonValue rules = JsonValue::Array();
  for (const WatchdogRule& r : report.alert_rules) {
    JsonValue rule = JsonValue::Object();
    rule.Set("name", r.name);
    rule.Set("form", WatchdogRuleFormName(r.form));
    rule.Set("series", r.series);
    rule.Set("threshold", r.threshold);
    rule.Set("fire_above", r.fire_above);
    rule.Set("window", r.window);
    rule.Set("bad_series", r.bad_series);
    rule.Set("total_series", r.total_series);
    rule.Set("error_budget", r.error_budget);
    rule.Set("burn_threshold", r.burn_threshold);
    rules.Append(std::move(rule));
  }
  alerts.Set("rules", std::move(rules));
  JsonValue firings = JsonValue::Array();
  for (const AlertFiring& f : report.alert_firings) {
    JsonValue firing = JsonValue::Object();
    firing.Set("rule", f.rule);
    firing.Set("rule_name", f.rule < report.alert_rules.size()
                                ? report.alert_rules[f.rule].name
                                : std::string("?"));
    firing.Set("fire_ticks", f.fire_ticks);
    firing.Set("clear_ticks", f.clear_ticks);
    firing.Set("value", f.value);
    firings.Append(std::move(firing));
  }
  alerts.Set("firings", std::move(firings));
  doc.Set("alerts", std::move(alerts));

  doc.Set("bench", report.bench);
  return doc;
}

namespace {

Status Expect(bool ok, const std::string& what) {
  if (ok) return Status::OK();
  return Status::InvalidArgument("run report schema: " + what);
}

}  // namespace

Status ValidateRunReportJson(const JsonValue& doc) {
  PSG_RETURN_NOT_OK(Expect(doc.is_object(), "document must be an object"));
  const JsonValue* schema = doc.Find("schema");
  PSG_RETURN_NOT_OK(Expect(
      schema != nullptr && schema->is_string() &&
          schema->as_string() == kRunReportSchema,
      std::string("'schema' must be \"") + kRunReportSchema + "\""));
  const JsonValue* version = doc.Find("schema_version");
  PSG_RETURN_NOT_OK(Expect(
      version != nullptr && version->is_number() &&
          version->as_int() == kRunReportSchemaVersion,
      "'schema_version' must be " +
          std::to_string(kRunReportSchemaVersion)));
  const JsonValue* name = doc.Find("name");
  PSG_RETURN_NOT_OK(Expect(name != nullptr && name->is_string() &&
                               !name->as_string().empty(),
                           "'name' must be a non-empty string"));
  for (const char* section : {"counters", "gauges", "histograms", "spans"}) {
    const JsonValue* v = doc.Find(section);
    PSG_RETURN_NOT_OK(Expect(v != nullptr && v->is_object(),
                             std::string("'") + section +
                                 "' must be an object"));
  }
  const JsonValue* hists = doc.Find("histograms");
  for (const auto& [hname, h] : hists->members()) {
    PSG_RETURN_NOT_OK(
        Expect(h.is_object(), "histogram '" + hname + "' must be object"));
    for (const char* field : {"count", "sum", "min", "max", "mean", "p50",
                              "p95", "p99", "p999"}) {
      const JsonValue* f = h.Find(field);
      PSG_RETURN_NOT_OK(Expect(f != nullptr && f->is_number(),
                               "histogram '" + hname + "' needs numeric '" +
                                   field + "'"));
    }
    const JsonValue* buckets = h.Find("buckets");
    PSG_RETURN_NOT_OK(Expect(buckets != nullptr && buckets->is_array(),
                             "histogram '" + hname + "' needs 'buckets'"));
  }
  const JsonValue* cluster = doc.Find("cluster");
  PSG_RETURN_NOT_OK(
      Expect(cluster != nullptr, "'cluster' must be present (may be null)"));
  if (!cluster->is_null()) {
    PSG_RETURN_NOT_OK(
        Expect(cluster->is_object(), "'cluster' must be object or null"));
    for (const char* field :
         {"num_executors", "num_servers", "makespan_ticks",
          "makespan_seconds"}) {
      const JsonValue* f = cluster->Find(field);
      PSG_RETURN_NOT_OK(Expect(f != nullptr && f->is_number(),
                               std::string("'cluster.") + field +
                                   "' must be numeric"));
    }
    const JsonValue* nodes = cluster->Find("nodes");
    PSG_RETURN_NOT_OK(Expect(nodes != nullptr && nodes->is_array() &&
                                 nodes->size() > 0,
                             "'cluster.nodes' must be a non-empty array"));
    for (const JsonValue& node : nodes->elements()) {
      const JsonValue* role = node.Find("role");
      const JsonValue* busy = node.Find("busy_ticks");
      PSG_RETURN_NOT_OK(Expect(
          node.is_object() && role != nullptr && role->is_string() &&
              busy != nullptr && busy->is_number(),
          "every cluster node needs 'role' and 'busy_ticks'"));
      for (const char* field :
           {"mem_usage_bytes", "mem_peak_bytes", "mem_budget_bytes"}) {
        const JsonValue* f = node.Find(field);
        PSG_RETURN_NOT_OK(Expect(f != nullptr && f->is_number(),
                                 std::string("every cluster node needs "
                                             "numeric '") +
                                     field + "'"));
      }
    }
  }
  const JsonValue* critical = doc.Find("critical_path");
  PSG_RETURN_NOT_OK(Expect(critical != nullptr,
                           "'critical_path' must be present (may be null)"));
  if (cluster->is_null()) {
    PSG_RETURN_NOT_OK(Expect(critical->is_null(),
                             "'critical_path' must be null when 'cluster' "
                             "is null"));
  } else {
    PSG_RETURN_NOT_OK(Expect(critical->is_object(),
                             "'critical_path' must be an object when the "
                             "run had a cluster"));
    for (const char* field : {"critical_node", "makespan_ticks"}) {
      const JsonValue* f = critical->Find(field);
      PSG_RETURN_NOT_OK(Expect(f != nullptr && f->is_number(),
                               std::string("'critical_path.") + field +
                                   "' must be numeric"));
    }
    const JsonValue* role = critical->Find("critical_role");
    PSG_RETURN_NOT_OK(Expect(role != nullptr && role->is_string() &&
                                 !role->as_string().empty(),
                             "'critical_path.critical_role' must be a "
                             "non-empty string"));
    const int64_t makespan = critical->Find("makespan_ticks")->as_int();
    PSG_RETURN_NOT_OK(Expect(
        makespan == cluster->Find("makespan_ticks")->as_int(),
        "'critical_path.makespan_ticks' must equal "
        "'cluster.makespan_ticks'"));
    // The conservation invariant: exactly the seven schema categories,
    // each non-negative, summing EXACTLY to the makespan. A negative
    // category means a ledger double-charge; a sum mismatch means a
    // clock advance escaped attribution. Either way the report lies
    // about where the time went, so it is rejected.
    const JsonValue* categories = critical->Find("categories");
    PSG_RETURN_NOT_OK(Expect(
        categories != nullptr && categories->is_object() &&
            categories->size() ==
                static_cast<size_t>(kNumCostCategories),
        "'critical_path.categories' must be an object with exactly " +
            std::to_string(kNumCostCategories) + " categories"));
    int64_t category_sum = 0;
    for (int c = 0; c < kNumCostCategories; ++c) {
      const JsonValue* f = categories->Find(kCostCategoryNames[c]);
      PSG_RETURN_NOT_OK(
          Expect(f != nullptr && f->is_number(),
                 std::string("'critical_path.categories.") +
                     kCostCategoryNames[c] + "' must be numeric"));
      PSG_RETURN_NOT_OK(
          Expect(f->as_int() >= 0,
                 std::string("'critical_path.categories.") +
                     kCostCategoryNames[c] +
                     "' is negative — attribution over-counted"));
      category_sum += f->as_int();
    }
    PSG_RETURN_NOT_OK(Expect(
        category_sum == makespan,
        "critical-path conservation violated: categories sum to " +
            std::to_string(category_sum) + " but makespan_ticks is " +
            std::to_string(makespan)));
    // Path segments must tile [0, makespan] contiguously in time order.
    const JsonValue* path = critical->Find("path");
    PSG_RETURN_NOT_OK(Expect(path != nullptr && path->is_array(),
                             "'critical_path.path' must be an array"));
    PSG_RETURN_NOT_OK(Expect(makespan == 0 || path->size() > 0,
                             "'critical_path.path' must be non-empty for a "
                             "non-zero makespan"));
    int64_t prev_end = 0;
    for (const JsonValue& seg : path->elements()) {
      PSG_RETURN_NOT_OK(
          Expect(seg.is_object(), "path segment must be an object"));
      for (const char* field :
           {"node", "begin_ticks", "end_ticks", "ticks"}) {
        const JsonValue* f = seg.Find(field);
        PSG_RETURN_NOT_OK(Expect(f != nullptr && f->is_number(),
                                 std::string("path segment needs numeric "
                                             "'") +
                                     field + "'"));
      }
      for (const char* field : {"role", "gate"}) {
        const JsonValue* f = seg.Find(field);
        PSG_RETURN_NOT_OK(Expect(f != nullptr && f->is_string() &&
                                     !f->as_string().empty(),
                                 std::string("path segment needs a "
                                             "non-empty '") +
                                     field + "' string"));
      }
      const int64_t begin = seg.Find("begin_ticks")->as_int();
      const int64_t end = seg.Find("end_ticks")->as_int();
      PSG_RETURN_NOT_OK(Expect(begin == prev_end,
                               "path segments must be contiguous from 0"));
      PSG_RETURN_NOT_OK(
          Expect(end > begin, "path segments must be time-ordered"));
      PSG_RETURN_NOT_OK(Expect(seg.Find("ticks")->as_int() == end - begin,
                               "path segment 'ticks' must equal "
                               "end_ticks - begin_ticks"));
      prev_end = end;
    }
    PSG_RETURN_NOT_OK(Expect(path->size() == 0 || prev_end == makespan,
                             "path segments must end at makespan_ticks"));
    const JsonValue* top_spans = critical->Find("top_spans");
    PSG_RETURN_NOT_OK(Expect(top_spans != nullptr && top_spans->is_array(),
                             "'critical_path.top_spans' must be an array"));
    for (const JsonValue& span : top_spans->elements()) {
      const JsonValue* sname = span.Find("name");
      PSG_RETURN_NOT_OK(Expect(span.is_object() && sname != nullptr &&
                                   sname->is_string() &&
                                   !sname->as_string().empty(),
                               "top_spans entry needs a non-empty 'name'"));
      for (const char* field :
           {"critical_node_ticks", "total_ticks", "count"}) {
        const JsonValue* f = span.Find(field);
        PSG_RETURN_NOT_OK(Expect(f != nullptr && f->is_number(),
                                 std::string("top_spans entry needs "
                                             "numeric '") +
                                     field + "'"));
      }
    }
    const JsonValue* what_if = critical->Find("what_if");
    PSG_RETURN_NOT_OK(Expect(what_if != nullptr && what_if->is_array(),
                             "'critical_path.what_if' must be an array"));
    for (const JsonValue& w : what_if->elements()) {
      const JsonValue* wname = w.Find("name");
      PSG_RETURN_NOT_OK(Expect(w.is_object() && wname != nullptr &&
                                   wname->is_string(),
                               "what_if entry needs a 'name'"));
      for (const char* field :
           {"factor", "projected_makespan_ticks", "speedup"}) {
        const JsonValue* f = w.Find(field);
        PSG_RETURN_NOT_OK(Expect(f != nullptr && f->is_number(),
                                 std::string("what_if entry needs numeric "
                                             "'") +
                                     field + "'"));
      }
      PSG_RETURN_NOT_OK(
          Expect(w.Find("projected_makespan_ticks")->as_int() <= makespan,
                 "what_if projection cannot exceed the makespan"));
    }
  }
  const JsonValue* skew = doc.Find("skew");
  PSG_RETURN_NOT_OK(
      Expect(skew != nullptr && skew->is_object(),
             "'skew' must be an object"));
  {
    const JsonValue* shards = skew->Find("shards");
    PSG_RETURN_NOT_OK(Expect(shards != nullptr && shards->is_array(),
                             "'skew.shards' must be an array"));
    for (const JsonValue& shard : shards->elements()) {
      PSG_RETURN_NOT_OK(
          Expect(shard.is_object(), "skew shard must be an object"));
      for (const char* field :
           {"server", "pull_keys", "push_keys", "load_share",
            "topk_share"}) {
        const JsonValue* f = shard.Find(field);
        PSG_RETURN_NOT_OK(Expect(f != nullptr && f->is_number(),
                                 std::string("skew shard needs numeric '") +
                                     field + "'"));
      }
      const JsonValue* hot = shard.Find("hot_keys");
      PSG_RETURN_NOT_OK(Expect(hot != nullptr && hot->is_array(),
                               "skew shard needs 'hot_keys' array"));
    }
    const JsonValue* partitions = skew->Find("partitions");
    PSG_RETURN_NOT_OK(
        Expect(partitions != nullptr && partitions->is_array(),
               "'skew.partitions' must be an array"));
    const JsonValue* imbalance = skew->Find("partition_imbalance");
    PSG_RETURN_NOT_OK(
        Expect(imbalance != nullptr && imbalance->is_number(),
               "'skew.partition_imbalance' must be numeric"));
  }
  const JsonValue* convergence = doc.Find("convergence");
  PSG_RETURN_NOT_OK(Expect(convergence != nullptr &&
                               convergence->is_object(),
                           "'convergence' must be an object"));
  {
    const JsonValue* series = convergence->Find("series");
    PSG_RETURN_NOT_OK(Expect(series != nullptr && series->is_object(),
                             "'convergence.series' must be an object"));
    for (const auto& [sname, points] : series->members()) {
      PSG_RETURN_NOT_OK(Expect(points.is_array(),
                               "convergence series '" + sname +
                                   "' must be an array"));
      int64_t last_iter = INT64_MIN;
      for (const JsonValue& p : points.elements()) {
        PSG_RETURN_NOT_OK(Expect(
            p.is_array() && p.size() == 2 && p.at(0).is_number() &&
                p.at(1).is_number(),
            "convergence series '" + sname +
                "' points must be [iteration, value] pairs"));
        PSG_RETURN_NOT_OK(Expect(p.at(0).as_int() > last_iter,
                                 "convergence series '" + sname +
                                     "' iterations must increase"));
        last_iter = p.at(0).as_int();
      }
    }
  }
  const JsonValue* rpc = doc.Find("rpc");
  PSG_RETURN_NOT_OK(Expect(rpc != nullptr && rpc->is_object(),
                           "'rpc' must be an object"));
  {
    const JsonValue* methods = rpc->Find("methods");
    PSG_RETURN_NOT_OK(Expect(methods != nullptr && methods->is_array(),
                             "'rpc.methods' must be an array"));
    for (const JsonValue& m : methods->elements()) {
      PSG_RETURN_NOT_OK(
          Expect(m.is_object(), "rpc method entry must be an object"));
      const JsonValue* method = m.Find("method");
      PSG_RETURN_NOT_OK(Expect(method != nullptr && method->is_string() &&
                                   !method->as_string().empty(),
                               "rpc entry needs a non-empty 'method'"));
      for (const char* field :
           {"node", "calls", "request_bytes", "response_bytes",
            "callee_busy_ticks", "caller_wait_ticks", "errors_unavailable",
            "errors_handler"}) {
        const JsonValue* f = m.Find(field);
        PSG_RETURN_NOT_OK(Expect(f != nullptr && f->is_number(),
                                 std::string("rpc entry needs numeric '") +
                                     field + "'"));
      }
    }
  }
  const JsonValue* events = doc.Find("events");
  PSG_RETURN_NOT_OK(Expect(events != nullptr && events->is_object(),
                           "'events' must be an object"));
  {
    const JsonValue* counts = events->Find("counts");
    PSG_RETURN_NOT_OK(Expect(counts != nullptr && counts->is_object(),
                             "'events.counts' must be an object"));
    for (const auto& [type, count] : counts->members()) {
      PSG_RETURN_NOT_OK(Expect(count.is_number(),
                               "events count '" + type +
                                   "' must be numeric"));
    }
    const JsonValue* failures = events->Find("failures");
    PSG_RETURN_NOT_OK(Expect(failures != nullptr && failures->is_array(),
                             "'events.failures' must be an array"));
    for (const JsonValue& ev : failures->elements()) {
      PSG_RETURN_NOT_OK(
          Expect(ev.is_object(), "failure event must be an object"));
      const JsonValue* type = ev.Find("type");
      PSG_RETURN_NOT_OK(Expect(type != nullptr && type->is_string() &&
                                   !type->as_string().empty(),
                               "failure event needs a 'type' string"));
      for (const char* field : {"node", "iteration", "ticks", "value"}) {
        const JsonValue* f = ev.Find(field);
        PSG_RETURN_NOT_OK(
            Expect(f != nullptr && f->is_number(),
                   std::string("failure event needs numeric '") + field +
                       "'"));
      }
    }
    const JsonValue* recovery = events->Find("recovery");
    PSG_RETURN_NOT_OK(Expect(recovery != nullptr && recovery->is_object(),
                             "'events.recovery' must be an object"));
    for (const char* field : {"episodes", "total_ticks", "max_ticks"}) {
      const JsonValue* f = recovery->Find(field);
      PSG_RETURN_NOT_OK(Expect(f != nullptr && f->is_number(),
                               std::string("'events.recovery.") + field +
                                   "' must be numeric"));
    }
    const JsonValue* dropped = events->Find("dropped");
    PSG_RETURN_NOT_OK(Expect(dropped != nullptr && dropped->is_number(),
                             "'events.dropped' must be numeric"));
  }
  const JsonValue* serving = doc.Find("serving");
  PSG_RETURN_NOT_OK(Expect(serving != nullptr && serving->is_object(),
                           "'serving' must be an object"));
  {
    for (const char* field :
         {"requests_completed", "requests_failed", "torn_reads",
          "lookup_keys", "infer_nodes", "cache_hits", "cache_misses",
          "cache_hit_rate", "batches", "mean_batch_occupancy", "swaps",
          "snapshots_published"}) {
      const JsonValue* f = serving->Find(field);
      PSG_RETURN_NOT_OK(Expect(f != nullptr && f->is_number(),
                               std::string("'serving.") + field +
                                   "' must be numeric"));
    }
    const JsonValue* latency = serving->Find("latency_ticks");
    PSG_RETURN_NOT_OK(Expect(latency != nullptr && latency->is_object(),
                             "'serving.latency_ticks' must be an object"));
    for (const char* field : {"count", "p50", "p99", "p999"}) {
      const JsonValue* f = latency->Find(field);
      PSG_RETURN_NOT_OK(Expect(f != nullptr && f->is_number(),
                               std::string("'serving.latency_ticks.") +
                                   field + "' must be numeric"));
    }
  }
  const JsonValue* timeseries = doc.Find("timeseries");
  PSG_RETURN_NOT_OK(Expect(timeseries != nullptr && timeseries->is_object(),
                           "'timeseries' must be an object"));
  {
    for (const char* field : {"base_interval_ticks", "interval_ticks",
                              "compactions", "points"}) {
      const JsonValue* f = timeseries->Find(field);
      PSG_RETURN_NOT_OK(Expect(f != nullptr && f->is_number(),
                               std::string("'timeseries.") + field +
                                   "' must be numeric"));
    }
    const JsonValue* series = timeseries->Find("series");
    PSG_RETURN_NOT_OK(Expect(series != nullptr && series->is_object(),
                             "'timeseries.series' must be an object"));
    const int64_t points = timeseries->Find("points")->as_int();
    for (const auto& [sname, values] : series->members()) {
      PSG_RETURN_NOT_OK(Expect(
          values.is_array() &&
              values.size() == static_cast<size_t>(points),
          "timeseries series '" + sname + "' must be an array of " +
              std::to_string(points) + " points"));
      for (const JsonValue& v : values.elements()) {
        PSG_RETURN_NOT_OK(Expect(v.is_number(),
                                 "timeseries series '" + sname +
                                     "' values must be numeric"));
      }
    }
  }
  const JsonValue* alerts = doc.Find("alerts");
  PSG_RETURN_NOT_OK(Expect(alerts != nullptr && alerts->is_object(),
                           "'alerts' must be an object"));
  {
    const JsonValue* rules = alerts->Find("rules");
    PSG_RETURN_NOT_OK(Expect(rules != nullptr && rules->is_array(),
                             "'alerts.rules' must be an array"));
    for (const JsonValue& rule : rules->elements()) {
      PSG_RETURN_NOT_OK(
          Expect(rule.is_object(), "alert rule must be an object"));
      for (const char* field : {"name", "form"}) {
        const JsonValue* f = rule.Find(field);
        PSG_RETURN_NOT_OK(Expect(f != nullptr && f->is_string() &&
                                     !f->as_string().empty(),
                                 std::string("alert rule needs a non-empty "
                                             "'") +
                                     field + "' string"));
      }
      for (const char* field : {"threshold", "window", "error_budget",
                                "burn_threshold"}) {
        const JsonValue* f = rule.Find(field);
        PSG_RETURN_NOT_OK(Expect(f != nullptr && f->is_number(),
                                 std::string("alert rule needs numeric '") +
                                     field + "'"));
      }
    }
    const JsonValue* firings = alerts->Find("firings");
    PSG_RETURN_NOT_OK(Expect(firings != nullptr && firings->is_array(),
                             "'alerts.firings' must be an array"));
    for (const JsonValue& firing : firings->elements()) {
      PSG_RETURN_NOT_OK(
          Expect(firing.is_object(), "alert firing must be an object"));
      for (const char* field :
           {"rule", "fire_ticks", "clear_ticks", "value"}) {
        const JsonValue* f = firing.Find(field);
        PSG_RETURN_NOT_OK(Expect(f != nullptr && f->is_number(),
                                 std::string("alert firing needs numeric "
                                             "'") +
                                     field + "'"));
      }
      const JsonValue* rule_name = firing.Find("rule_name");
      PSG_RETURN_NOT_OK(Expect(rule_name != nullptr &&
                                   rule_name->is_string(),
                               "alert firing needs a 'rule_name' string"));
      const int64_t rule_index = firing.Find("rule")->as_int();
      PSG_RETURN_NOT_OK(Expect(
          rule_index >= 0 &&
              static_cast<size_t>(rule_index) < rules->size(),
          "alert firing 'rule' must index into 'alerts.rules'"));
    }
  }
  const JsonValue* bench = doc.Find("bench");
  PSG_RETURN_NOT_OK(Expect(bench != nullptr,
                           "'bench' must be present (bench payload)"));
  return Status::OK();
}

Status WriteRunReport(const RunReport& report, const std::string& path) {
  JsonValue doc = RunReportToJson(report);
  // Hard gate, not a warning: a report whose critical-path attribution
  // fails conservation (or any other schema invariant) is rejected
  // instead of written — CI must never diff against a lying profile.
  PSG_RETURN_NOT_OK(ValidateRunReportJson(doc));
  const std::string text = doc.Dump(/*indent=*/2);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool closed_ok = std::fclose(f) == 0;
  if (written != text.size() || !closed_ok) {
    return Status::IoError("short write to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace psgraph::sim
