#include "sim/report.h"

#include <algorithm>

namespace psgraph::sim {

namespace {

RoleStats CollectRole(const SimCluster& cluster, NodeId begin,
                      NodeId end) {
  RoleStats stats;
  if (begin >= end) return stats;
  stats.min_time = 1e300;
  // Clock/memory accessors are const-safe; the cluster reference is
  // conceptually read-only here.
  auto& mutable_cluster = const_cast<SimCluster&>(cluster);
  double total = 0.0;
  for (NodeId n = begin; n < end; ++n) {
    double t = mutable_cluster.clock().Now(n);
    stats.min_time = std::min(stats.min_time, t);
    stats.max_time = std::max(stats.max_time, t);
    total += t;
    stats.max_peak_mem =
        std::max(stats.max_peak_mem, mutable_cluster.memory().Peak(n));
    stats.budget = mutable_cluster.memory().Budget(n);
  }
  stats.avg_time = total / static_cast<double>(end - begin);
  return stats;
}

}  // namespace

ClusterReport CollectReport(const SimCluster& cluster) {
  ClusterReport report;
  const ClusterConfig& cfg = cluster.config();
  report.executors = CollectRole(cluster, 0, cfg.num_executors);
  report.servers =
      CollectRole(cluster, cfg.num_executors,
                  cfg.num_executors + cfg.num_servers);
  report.makespan = const_cast<SimCluster&>(cluster).clock().Makespan();
  return report;
}

std::string FormatReport(const ClusterReport& report) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "cluster report: makespan %.3fs\n"
      "  executors: busy avg %.3fs max %.3fs | peak mem %.1f%% of budget\n"
      "  servers:   busy avg %.3fs max %.3fs | peak mem %.1f%% of budget",
      report.makespan, report.executors.avg_time,
      report.executors.max_time,
      report.executors.budget
          ? 100.0 * report.executors.max_peak_mem / report.executors.budget
          : 0.0,
      report.servers.avg_time, report.servers.max_time,
      report.servers.budget
          ? 100.0 * report.servers.max_peak_mem / report.servers.budget
          : 0.0);
  return buf;
}

}  // namespace psgraph::sim
