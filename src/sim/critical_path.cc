#include "sim/critical_path.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "sim/cluster.h"

namespace psgraph::sim {

namespace {

std::string RoleName(const ClusterConfig& cfg, int32_t node) {
  return cfg.is_executor(node) ? "executor"
         : cfg.is_server(node) ? "server"
                               : "driver";
}

/// Ticks of a span name that survive shrinking to `factor`. llround of
/// an int64-in-double product is exact for every tick count a bench
/// reaches (< 2^53) and monotone in both arguments.
int64_t KeptTicks(int64_t ticks, double factor) {
  return std::llround(static_cast<double>(ticks) * factor);
}

/// Per-name attribution of span ticks to nodes, restricted to names
/// whose per-node totals are scheduling-independent.
struct NameAttr {
  std::map<int32_t, int64_t> node_ticks;
  int64_t total_ticks = 0;
  uint64_t count = 0;
};

std::map<std::string, NameAttr> CollectSpanAttr(SimCluster* cluster) {
  std::map<std::string, NameAttr> attr;
  for (const auto& [key, stats] : cluster->tracer().NodeSummary()) {
    const auto& [name, node] = key;
    if (!SpanTicksDeterministicPerNode(name)) continue;
    NameAttr& a = attr[name];
    a.node_ticks[node] += stats.total_ticks;
    a.total_ticks += stats.total_ticks;
    a.count += stats.count;
  }
  return attr;
}

/// max_n(clock[n] - (1-factor) * attr[n]), clamped at 0. Nested spans
/// can overlap, so a node's attribution may exceed its clock — the
/// clamp keeps the projection a (still monotone) lower bound.
int64_t Project(const std::vector<int64_t>& clocks, const NameAttr& attr,
                double factor) {
  int64_t best = 0;
  for (size_t n = 0; n < clocks.size(); ++n) {
    int64_t projected = clocks[n];
    auto it = attr.node_ticks.find(static_cast<int32_t>(n));
    if (it != attr.node_ticks.end()) {
      projected -= it->second - KeptTicks(it->second, factor);
    }
    best = std::max(best, projected);
  }
  return best;
}

void AppendSegment(CriticalPathReport* r, const ClusterConfig& cfg,
                   int32_t node, int64_t begin, int64_t end,
                   const char* gate) {
  if (end <= begin) return;
  if (!r->path.empty() && r->path.back().node == node) {
    r->path.back().end_ticks = end;
    r->path.back().gate = gate;
    return;
  }
  CriticalPathReport::Segment seg;
  seg.node = node;
  seg.role = RoleName(cfg, node);
  seg.begin_ticks = begin;
  seg.end_ticks = end;
  seg.gate = gate;
  r->path.push_back(std::move(seg));
}

}  // namespace

bool SpanTicksDeterministicPerNode(const std::string& name) {
  // Partition spans absorb shared-lineage work into whichever task
  // materializes the lineage first — WHICH node pays is a scheduling
  // accident even though the cluster-wide total is not (the same
  // reason dataflow.partition_ticks is denylisted from the sampler).
  return name != "dataflow.partition";
}

int64_t ProjectedMakespanTicks(SimCluster* cluster, const std::string& name,
                               double factor) {
  if (cluster == nullptr) return 0;
  const int32_t num_nodes = cluster->config().num_nodes();
  std::vector<int64_t> clocks(num_nodes);
  for (int32_t n = 0; n < num_nodes; ++n) {
    clocks[n] = cluster->clock().NowTicks(n);
  }
  const auto attr = CollectSpanAttr(cluster);
  auto it = attr.find(name);
  if (it == attr.end()) return Project(clocks, NameAttr{}, factor);
  return Project(clocks, it->second, factor);
}

CriticalPathReport AnalyzeCriticalPath(SimCluster* cluster) {
  CriticalPathReport r;
  if (cluster == nullptr) return r;
  r.valid = true;
  const ClusterConfig& cfg = cluster->config();
  SimClock& clock = cluster->clock();
  const int32_t num_nodes = cfg.num_nodes();

  std::vector<int64_t> clocks(num_nodes);
  for (int32_t n = 0; n < num_nodes; ++n) clocks[n] = clock.NowTicks(n);
  r.makespan_ticks = *std::max_element(clocks.begin(), clocks.end());

  // Critical node: last finisher; among ties the one that waited least
  // at barriers (it was doing work, not being dragged along), then the
  // lowest id.
  int64_t best_wait = -1;
  for (int32_t n = 0; n < num_nodes; ++n) {
    if (clocks[n] != r.makespan_ticks) continue;
    const int64_t wait = clock.BarrierWaitTicks(n);
    if (best_wait < 0 || wait < best_wait) {
      r.critical_node = n;
      best_wait = wait;
    }
  }
  r.critical_role = RoleName(cfg, r.critical_node);

  // Category attribution with exact conservation: ledger + barrier
  // waits, compute as the residual. The residual is emitted as-is —
  // if a subsystem ever over-records, compute goes negative and the
  // validator rejects the report instead of hiding the bug.
  const auto ledger = cluster->cost_ledger().NodeTicks(r.critical_node);
  int64_t attributed = 0;
  for (int c = 1; c < kNumCostCategories; ++c) {
    const int64_t ticks =
        c == static_cast<int>(CostCategory::kBarrierSkew)
            ? clock.BarrierWaitTicks(r.critical_node)
            : ledger[static_cast<size_t>(c)];
    r.categories[static_cast<size_t>(c)] = ticks;
    attributed += ticks;
  }
  r.categories[static_cast<size_t>(CostCategory::kCompute)] =
      r.makespan_ticks - attributed;

  // Path segments: tile [0, makespan] with the intervals between
  // consecutive barrier fences, each owned by its gating node, the
  // tail by the critical node. Consecutive same-owner intervals merge.
  if (r.makespan_ticks > 0) {
    int64_t prev = 0;
    if (clock.fences_dropped() == 0) {
      for (const ClockFence& f : clock.Fences()) {
        const int64_t t = std::min(f.ticks, r.makespan_ticks);
        if (t <= prev) continue;
        AppendSegment(&r, cfg, f.gating_node, prev, t, "barrier");
        prev = t;
      }
    }
    AppendSegment(&r, cfg, r.critical_node, prev, r.makespan_ticks,
                  "makespan");
  }

  // Top span names by ticks on the critical node, plus the what-if
  // table over them. Empty when tracing was off — the sections above
  // never depend on the tracer.
  const auto attr = CollectSpanAttr(cluster);
  std::vector<std::pair<std::string, int64_t>> ranked;
  for (const auto& [name, a] : attr) {
    auto it = a.node_ticks.find(r.critical_node);
    if (it == a.node_ticks.end() || it->second <= 0) continue;
    ranked.emplace_back(name, it->second);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (ranked.size() > 5) ranked.resize(5);
  for (const auto& [name, crit_ticks] : ranked) {
    const NameAttr& a = attr.at(name);
    r.top_spans.push_back({name, crit_ticks, a.total_ticks, a.count});
    for (const double factor : kWhatIfFactors) {
      CriticalPathReport::WhatIf w;
      w.name = name;
      w.factor = factor;
      w.projected_makespan_ticks = Project(clocks, a, factor);
      w.speedup = w.projected_makespan_ticks > 0
                      ? static_cast<double>(r.makespan_ticks) /
                            static_cast<double>(w.projected_makespan_ticks)
                      : 1.0;
      r.what_if.push_back(std::move(w));
    }
  }
  return r;
}

std::vector<uint64_t> LongestSpanPath(
    const std::vector<TraceSpan>& spans,
    const std::vector<std::pair<uint64_t, uint64_t>>& extra_edges) {
  const size_t n = spans.size();
  if (n == 0) return {};
  std::map<uint64_t, size_t> index;
  for (size_t i = 0; i < n; ++i) index[spans[i].id] = i;

  std::vector<std::vector<size_t>> preds(n);
  auto add_edge = [&](uint64_t from, uint64_t to) {
    auto a = index.find(from);
    auto b = index.find(to);
    if (a == index.end() || b == index.end()) return;
    // A dependency cannot start after its dependent does.
    if (spans[a->second].begin_ticks > spans[b->second].begin_ticks) return;
    preds[b->second].push_back(a->second);
  };
  for (const TraceSpan& s : spans) {
    if (s.parent != 0) add_edge(s.parent, s.id);
  }
  for (const auto& [from, to] : extra_edges) add_edge(from, to);

  // DP in (begin_ticks, id) order; every valid edge points forward in
  // that order except begin-tick ties with a larger-id predecessor,
  // which the processed[] guard simply ignores.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (spans[a].begin_ticks != spans[b].begin_ticks) {
      return spans[a].begin_ticks < spans[b].begin_ticks;
    }
    return spans[a].id < spans[b].id;
  });
  std::vector<int64_t> best(n, 0);
  std::vector<size_t> choice(n, n);  // n = no predecessor
  std::vector<bool> processed(n, false);
  for (const size_t i : order) {
    const int64_t dur =
        std::max<int64_t>(0, spans[i].end_ticks - spans[i].begin_ticks);
    best[i] = dur;
    for (const size_t p : preds[i]) {
      if (!processed[p]) continue;
      const int64_t cand = best[p] + dur;
      if (cand > best[i] ||
          (cand == best[i] && choice[i] != n &&
           spans[p].id < spans[choice[i]].id)) {
        best[i] = cand;
        choice[i] = p;
      }
    }
    processed[i] = true;
  }

  // The path ends at the run's last-finishing span (ties: lowest id).
  size_t endpoint = 0;
  for (size_t i = 1; i < n; ++i) {
    if (spans[i].end_ticks > spans[endpoint].end_ticks ||
        (spans[i].end_ticks == spans[endpoint].end_ticks &&
         spans[i].id < spans[endpoint].id)) {
      endpoint = i;
    }
  }
  std::vector<uint64_t> path;
  for (size_t i = endpoint; i != n; i = choice[i]) {
    path.push_back(spans[i].id);
    if (choice[i] == n) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace psgraph::sim
