// PS hot-key / skew profiling (the "skew" section of a run report).
//
// Parameter access in real graph workloads is heavily non-uniform (NuPS,
// 2PS): a handful of high-degree vertices absorb most pulls/pushes and a
// PS must see its own key-access distribution to manage it. Two sinks
// live here, both attached to the SimCluster like Metrics/Tracer:
//
//  * Per-shard key-access profiles. Each PsServer reports the keys of
//    every pull/push batch; per shard the profiler keeps exact pull/push
//    access totals (two relaxed atomic adds per request — always on) and
//    an approximate top-K hot-key table via the space-saving algorithm
//    (Metwally et al.), which is only fed when key profiling is enabled
//    (PSGRAPH_PROFILE_KEYS=1 or set_key_profiling) and can additionally
//    be sampled (PSGRAPH_PROFILE_KEYS_SAMPLE=N offers every Nth key) to
//    bound hot-loop overhead.
//
//  * Per-partition busy ticks from the dataflow engine: every compute /
//    disk / shuffle charge is also attributed to the partition that
//    caused it, so a run report can show the partition imbalance behind
//    an executor-level makespan.

#ifndef PSGRAPH_SIM_SKEW_H_
#define PSGRAPH_SIM_SKEW_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace psgraph::sim {

/// Space-saving heavy-hitter sketch: tracks at most `capacity` keys; when
/// a new key arrives at capacity, it evicts the current minimum and
/// inherits its count (recorded as the entry's error bound). Guarantees
/// that any key with true frequency > total/capacity is present.
class SpaceSavingCounter {
 public:
  explicit SpaceSavingCounter(size_t capacity) : capacity_(capacity) {}

  void Offer(uint64_t key, uint64_t weight = 1);

  struct Entry {
    uint64_t key = 0;
    uint64_t count = 0;  ///< estimated frequency (upper bound)
    uint64_t error = 0;  ///< overestimate bound inherited at eviction
  };

  /// Up to `k` entries, highest estimated count first; ties broken by
  /// ascending key so the output is deterministic.
  std::vector<Entry> TopK(size_t k) const;

  uint64_t total() const { return total_; }
  size_t capacity() const { return capacity_; }
  void Reset();

 private:
  size_t capacity_;
  uint64_t total_ = 0;
  std::map<uint64_t, Entry> entries_;  // key -> entry
};

/// One profiler per cluster (see file comment). Thread-safe: totals are
/// relaxed atomics, the sketches and partition map take a mutex.
class SkewProfiler {
 public:
  /// Hot keys kept per shard sketch; TopK reports at most kTopK of them.
  static constexpr size_t kSketchCapacity = 256;
  static constexpr size_t kTopK = 16;

  /// `num_servers`/`num_partitions_hint` presize the slots; both grow on
  /// demand (the Global() fallback starts empty).
  explicit SkewProfiler(int32_t num_servers = 0);

  bool key_profiling_enabled() const {
    return key_profiling_.load(std::memory_order_relaxed);
  }
  void set_key_profiling(bool on) {
    key_profiling_.store(on, std::memory_order_relaxed);
  }
  /// True when PSGRAPH_PROFILE_KEYS is set non-empty and not "0".
  static bool KeyProfilingByEnv();
  /// PSGRAPH_PROFILE_KEYS_SAMPLE (default 1 = every key).
  static uint64_t SamplePeriodFromEnv();

  /// Called by PsServer on every pull/push batch. The access totals are
  /// always counted; keys feed the shard's hot-key sketch only when key
  /// profiling is on (every sample_period-th key, deterministic
  /// per-shard stride).
  void RecordKeyAccess(int32_t server, bool is_pull,
                       std::span<const uint64_t> keys);

  /// Called by the dataflow engine for every charge it attributes to a
  /// partition.
  void RecordPartitionTicks(int32_t partition, int64_t ticks);

  struct ShardSnapshot {
    int32_t server = 0;
    uint64_t pull_keys = 0;
    uint64_t push_keys = 0;
    /// This shard's share of all key accesses across shards, in [0,1].
    double load_share = 0.0;
    /// Fraction of this shard's sketched accesses covered by the top-K
    /// entries below (1.0 when every access hit a top-K key).
    double topk_share = 0.0;
    std::vector<SpaceSavingCounter::Entry> hot_keys;
  };
  struct PartitionSnapshot {
    int32_t partition = 0;
    int64_t busy_ticks = 0;
  };
  struct Snapshot {
    bool key_profiling = false;
    uint64_t sample_period = 1;
    std::vector<ShardSnapshot> shards;        // ascending server index
    std::vector<PartitionSnapshot> partitions;  // ascending partition
    /// max/mean of per-partition busy ticks (1.0 = perfectly balanced,
    /// 0.0 = no partition charges recorded).
    double partition_imbalance = 0.0;
  };
  Snapshot Snap() const;

  void Reset();

  /// Process-wide fallback sink, mirroring Metrics::Global().
  static SkewProfiler& Global();

 private:
  struct Shard {
    std::atomic<uint64_t> pull_keys{0};
    std::atomic<uint64_t> push_keys{0};
    std::mutex sketch_mu;
    SpaceSavingCounter sketch{kSketchCapacity};
    uint64_t sample_cursor = 0;  // guarded by sketch_mu
  };

  Shard& shard(int32_t server);

  std::atomic<bool> key_profiling_{false};
  uint64_t sample_period_ = 1;
  mutable std::mutex mu_;  // guards shards_ growth and partitions_
  std::vector<std::unique_ptr<Shard>> shards_;
  std::map<int32_t, int64_t> partition_ticks_;
};

}  // namespace psgraph::sim

#endif  // PSGRAPH_SIM_SKEW_H_
