#include "sim/cluster.h"

#include "common/env.h"

namespace psgraph::sim {

namespace {
/// PSGRAPH_NET_BANDWIDTH (bytes/sec) overrides the modeled NIC for
/// what-if experiments — e.g. halve it and let bench_diff.py attribute
/// the slowdown to rpc.serialize/rpc.wait. Unset/0 keeps the default.
ClusterConfig WithEnvCostOverrides(ClusterConfig cfg) {
  const uint64_t bw = EnvU64("PSGRAPH_NET_BANDWIDTH", 0);
  if (bw > 0) {
    cfg.cost.network_bandwidth_bytes_per_sec = static_cast<double>(bw);
  }
  return cfg;
}

std::vector<uint64_t> MakeBudgets(const ClusterConfig& cfg) {
  std::vector<uint64_t> budgets;
  budgets.reserve(cfg.num_nodes());
  for (int32_t i = 0; i < cfg.num_executors; ++i) {
    budgets.push_back(cfg.executor_mem_bytes);
  }
  for (int32_t i = 0; i < cfg.num_servers; ++i) {
    budgets.push_back(cfg.server_mem_bytes);
  }
  budgets.push_back(cfg.executor_mem_bytes);  // driver
  return budgets;
}
}  // namespace

SimCluster::SimCluster(ClusterConfig config)
    : config_(WithEnvCostOverrides(config)),
      cost_(config_.cost),
      clock_(config.num_nodes()),
      cost_ledger_(config.num_nodes()),
      memory_(MakeBudgets(config)),
      alive_(config.num_nodes(), true) {
  // Container restart is a constant cost (Yarn relaunch ~30 s); when the
  // workload is a scaled-down stand-in whose simulated times get
  // multiplied back up by `workload_scale`, pre-divide so the restart
  // still reports as ~30 s at paper scale.
  if (config_.workload_scale > 1.0) {
    restart_delay_sec_ = 30.0 / config_.workload_scale;
  }
}

void SimCluster::KillNode(NodeId node) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    alive_[node] = false;
  }
  memory_.ReleaseAll(node);
  // Stamped with the cluster frontier: the failure is observed at the
  // point the slowest node has reached.
  events_->Record(JournalEventType::kNodeKilled, node,
                  clock_.MakespanTicks());
}

void SimCluster::ReviveNode(NodeId node) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    alive_[node] = true;
  }
  const int64_t before = clock_.NowTicks(node);
  clock_.Advance(node, restart_delay_sec_);
  // A restarted container starts at least at the cluster's current frontier:
  // it was relaunched after the failure was observed.
  clock_.AdvanceTo(node, clock_.Makespan());
  cost_ledger_.Record(node, CostCategory::kRecovery,
                      clock_.NowTicks(node) - before);
  events_->Record(JournalEventType::kNodeRestarted, node,
                  clock_.NowTicks(node));
}

bool SimCluster::IsAlive(NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  return alive_[node];
}

}  // namespace psgraph::sim
