// Cluster utilization report: per-role simulated busy time and memory
// peaks. Benches print it to show where a workload's time and memory
// went (executor compute vs server busy vs memory headroom).

#ifndef PSGRAPH_SIM_REPORT_H_
#define PSGRAPH_SIM_REPORT_H_

#include <cstdio>
#include <string>

#include "sim/cluster.h"

namespace psgraph::sim {

struct RoleStats {
  double min_time = 0.0;
  double max_time = 0.0;
  double avg_time = 0.0;
  uint64_t max_peak_mem = 0;
  uint64_t budget = 0;
};

struct ClusterReport {
  RoleStats executors;
  RoleStats servers;
  double makespan = 0.0;
};

/// Collects the current clocks and memory peaks of `cluster`.
ClusterReport CollectReport(const SimCluster& cluster);

/// Renders the report as a short human-readable block.
std::string FormatReport(const ClusterReport& report);

}  // namespace psgraph::sim

#endif  // PSGRAPH_SIM_REPORT_H_
