// Run reports: what a bench (or test) records about one run.
//
// Two layers:
//  * ClusterReport — the original per-role busy-time / memory summary,
//    still printed as a human-readable block.
//  * RunReport — the machine-readable superset behind every
//    BENCH_<name>.json: a versioned schema carrying counters, gauges,
//    latency histograms (p50/p95/p99/max), span summaries and per-node
//    simulated clock makespans. scripts/check_bench_regression.py
//    validates the schema and diffs the simulated quantities against
//    committed baselines in CI; only sim-derived fields gate (wall
//    clock varies by host, simulated ticks must not).

#ifndef PSGRAPH_SIM_REPORT_H_
#define PSGRAPH_SIM_REPORT_H_

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/metrics.h"
#include "common/rpc_telemetry.h"
#include "common/timeseries.h"
#include "common/trace.h"
#include "sim/cluster.h"
#include "sim/convergence.h"
#include "sim/critical_path.h"
#include "sim/event_journal.h"
#include "sim/skew.h"
#include "sim/watchdog.h"

namespace psgraph::sim {

struct RoleStats {
  double min_time = 0.0;
  double max_time = 0.0;
  double avg_time = 0.0;
  uint64_t max_peak_mem = 0;
  uint64_t budget = 0;
};

struct ClusterReport {
  RoleStats executors;
  RoleStats servers;
  double makespan = 0.0;
};

/// Collects the current clocks and memory peaks of `cluster`.
ClusterReport CollectReport(const SimCluster& cluster);

/// Renders the report as a short human-readable block.
std::string FormatReport(const ClusterReport& report);

/// The versioned JSON run-report schema. Version history:
///   1 — initial: counters/gauges/histograms/spans/cluster/bench.
///   2 — flight recorder: "skew" (per-shard key-access profile +
///       per-partition busy-tick imbalance) and "convergence"
///       (per-iteration algorithm telemetry) sections.
///   3 — wire-level telemetry: "rpc" (per-(method, callee) call/byte/
///       busy/wait/error counters) and "events" (control-plane journal:
///       per-type counts, failure timeline, recovery summary) sections;
///       per-node mem_usage_bytes/mem_peak_bytes/mem_budget_bytes in
///       cluster.nodes.
///   4 — online serving: "serving" section (request/cache/batch/swap
///       counters with hit rate and mean batch occupancy, plus the
///       request-latency histogram) and a p999 quantile on every
///       histogram (tail latency is the serving SLO, p99 is too coarse
///       for it).
///   5 — continuous telemetry: "timeseries" (the sampler's ring-buffer
///       series over simulated time — interval, compaction count, and
///       one value array per series; all-zero series omitted) and
///       "alerts" (the watchdog's declared rules plus its fire/clear
///       episode timeline) sections.
///   6 — critical path: "critical_path" section (deterministic makespan
///       attribution over the fixed cost-category taxonomy, straggler
///       path segments from the clock's barrier fence log, top
///       critical-node spans and their what-if speedup table); the
///       conservation invariant — categories sum exactly to
///       cluster.makespan_ticks — is enforced by the validator, and
///       WriteRunReport refuses to emit a report that violates it.
///       spans_dropped now also counts spans that still folded into
///       the summaries after their detail was capped.
///   7 — dynamic graphs: two new cost categories in the fixed taxonomy
///       ("stream.apply" for ps.mutate neighbor-table applies,
///       "stream.retrain" for RPC waits inside an incremental-recompute
///       phase) — category arrays grow from 7 to 9 entries — and an
///       optional "freshness" bench-payload section (per-mutation-rate
///       staleness quantiles from bench_freshness).
inline constexpr const char* kRunReportSchema = "psgraph.run_report";
inline constexpr int kRunReportSchemaVersion = 7;

struct RunReport {
  std::string name;  ///< bench/run identifier ("micro", "parallel", ...)

  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  std::map<std::string, Tracer::SpanStats> spans;
  uint64_t spans_dropped = 0;

  /// Per-node simulated busy time; empty when the run had no cluster
  /// (the JSON then carries "cluster": null).
  struct NodeStat {
    int32_t node = 0;
    std::string role;  // "executor" | "server" | "driver"
    int64_t busy_ticks = 0;
    double busy_seconds = 0.0;
    /// Per-node memory ledger at capture time (schema v3): memory skew
    /// is visible alongside key skew, not just the cluster-wide peak.
    uint64_t mem_usage_bytes = 0;
    uint64_t mem_peak_bytes = 0;
    uint64_t mem_budget_bytes = 0;
  };
  bool has_cluster = false;
  int32_t num_executors = 0;
  int32_t num_servers = 0;
  std::vector<NodeStat> nodes;
  int64_t makespan_ticks = 0;
  double makespan_seconds = 0.0;

  /// PS hot-key / partition-imbalance profile (the "skew" section).
  SkewProfiler::Snapshot skew;
  /// Per-iteration algorithm telemetry (the "convergence" section).
  std::map<std::string, ConvergenceLog::Series> convergence;
  uint64_t convergence_rejected = 0;

  /// Wire-level RPC telemetry (the "rpc" section, schema v3): one entry
  /// per (method, callee node), in deterministic order.
  std::vector<RpcTelemetry::MethodStat> rpc;
  /// Control-plane journal (the "events" section, schema v3): per-type
  /// counts, the failure-path events only (empty for clean runs), and
  /// the derived recovery summary.
  std::map<std::string, uint64_t> event_counts;
  std::vector<JournalEvent> failure_events;
  EventJournal::RecoverySummary recovery;
  uint64_t events_dropped = 0;

  /// Online-serving rollup (the "serving" section, schema v4), derived
  /// from the "serving.*" metrics so any run that touched the serving
  /// tier reports it; all-zero for runs that never served a request.
  struct ServingStats {
    uint64_t requests_completed = 0;
    uint64_t requests_failed = 0;
    uint64_t torn_reads = 0;
    uint64_t lookup_keys = 0;
    uint64_t infer_nodes = 0;
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    double cache_hit_rate = 0.0;  ///< hits / (hits + misses), 0 if idle
    uint64_t batches = 0;
    double mean_batch_occupancy = 0.0;  ///< requests per flushed batch
    uint64_t swaps = 0;
    uint64_t snapshots_published = 0;
    /// serving.request.latency_ticks (simulated arrival→completion).
    HistogramSnapshot latency;
  };
  ServingStats serving;

  /// Makespan attribution (the "critical_path" section, schema v6):
  /// category breakdown with exact conservation, straggler path
  /// segments, top spans and what-if projections. valid=false (JSON
  /// null) when the run had no cluster.
  CriticalPathReport critical_path;

  /// Continuous-telemetry series (the "timeseries" section, schema v5):
  /// whatever the context's sampler recorded over the run — empty
  /// (0 points) when sampling was disabled or the run had no cluster.
  TimeSeriesSnapshot timeseries;
  /// SLO watchdog state (the "alerts" section, schema v5): declared
  /// rules and the fire/clear episode timeline.
  std::vector<WatchdogRule> alert_rules;
  std::vector<AlertFiring> alert_firings;

  /// Free-form bench-specific payload, emitted under "bench".
  JsonValue bench = JsonValue::Object();
};

/// Snapshots metrics + tracer (+ per-node clocks when `cluster` is
/// non-null; metrics/tracer are then taken from the cluster's sinks).
RunReport CollectRunReport(const std::string& name, SimCluster* cluster);
RunReport CollectRunReport(const std::string& name, Metrics& metrics,
                           Tracer& tracer);

/// Schema serialization: Parse(RunReportToJson(r).Dump()) validates.
JsonValue RunReportToJson(const RunReport& report);

/// Checks that a parsed document is a structurally valid run report
/// (schema marker + version, and the required sections with the right
/// shapes). Used by tests and mirrored by the CI regression checker.
Status ValidateRunReportJson(const JsonValue& doc);

/// Serializes and writes `report` to `path` (pretty-printed).
Status WriteRunReport(const RunReport& report, const std::string& path);

}  // namespace psgraph::sim

#endif  // PSGRAPH_SIM_REPORT_H_
