// Graph partitioning strategies (paper §II-D, Fig. 2).
//
// Vertex partitioning (edge cut): each worker owns a vertex subset plus
// the adjacent edges, i.e. whole neighbor tables. Edge partitioning
// (vertex cut): each worker owns an arbitrary edge subset; a vertex's
// edges may span many workers.

#ifndef PSGRAPH_GRAPH_PARTITION_H_
#define PSGRAPH_GRAPH_PARTITION_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace psgraph::graph {

enum class PartitionStrategy {
  kVertexPartition,  ///< edge cut: edges grouped by hash(src)
  kEdgePartition,    ///< vertex cut: edges dealt round-robin/hashed whole
};

/// Splits `edges` into `num_parts` partitions under the given strategy.
std::vector<EdgeList> PartitionEdges(const EdgeList& edges,
                                     int32_t num_parts,
                                     PartitionStrategy strategy);

/// Groups a partition's edges into neighbor tables — the paper's groupBy
/// step turning (src, dst) pairs into (src, Array[dst]). Neighbor order
/// follows edge order; output sorted by vertex id for determinism.
std::vector<NeighborList> GroupBysrc(const EdgeList& edges);

/// Statistics used by the partitioning ablation bench.
struct PartitionStats {
  /// Sum over vertices of (#partitions the vertex appears in as src) — the
  /// replication factor that determines pull traffic under vertex cut.
  double avg_src_replication = 0.0;
  uint64_t max_partition_edges = 0;
  uint64_t min_partition_edges = 0;
};
PartitionStats ComputePartitionStats(const std::vector<EdgeList>& parts);

}  // namespace psgraph::graph

#endif  // PSGRAPH_GRAPH_PARTITION_H_
