#include "graph/datasets.h"

#include <algorithm>
#include <cmath>

namespace psgraph::graph {

namespace {
// Smallest power-of-two exponent covering n vertices (RMAT id space).
int ScaleFor(VertexId n) {
  int s = 1;
  while ((VertexId{1} << s) < n) ++s;
  return s;
}
}  // namespace

DatasetInfo Ds1MiniInfo(uint64_t scale_denom) {
  DatasetInfo info;
  info.name = "ds1-mini";
  info.paper_vertices = 800'000'000ULL;
  info.paper_edges = 11'000'000'000ULL;
  info.mini_vertices = std::max<VertexId>(1024, info.paper_vertices / scale_denom);
  info.mini_edges = std::max<uint64_t>(4096, info.paper_edges / scale_denom);
  info.max_degree = 512;
  return info;
}

EdgeList MakeDs1Mini(const DatasetInfo& info, uint64_t seed) {
  RmatParams params;
  params.scale = ScaleFor(info.mini_vertices);
  params.num_edges = info.mini_edges;
  params.seed = seed;
  return CapDegrees(GenerateRmat(params), info.max_degree, seed + 1);
}

DatasetInfo Ds2MiniInfo(uint64_t scale_denom) {
  DatasetInfo info;
  info.name = "ds2-mini";
  info.paper_vertices = 2'000'000'000ULL;
  info.paper_edges = 140'000'000'000ULL;
  info.mini_vertices = std::max<VertexId>(1024, info.paper_vertices / scale_denom);
  // The full 1/scale_denom edge count (14 M at the default) is kept: DS2's
  // density relative to DS1 is what drives GraphX past its memory budget.
  info.mini_edges = std::max<uint64_t>(4096, info.paper_edges / scale_denom);
  info.max_degree = 1024;
  return info;
}

EdgeList MakeDs2Mini(const DatasetInfo& info, uint64_t seed) {
  RmatParams params;
  params.scale = ScaleFor(info.mini_vertices);
  params.num_edges = info.mini_edges;
  // Slightly more skew than DS1: the larger social graph has heavier hubs.
  params.a = 0.6;
  params.seed = seed;
  return CapDegrees(GenerateRmat(params), info.max_degree, seed + 1);
}

DatasetInfo Ds3MiniInfo(uint64_t scale_denom) {
  DatasetInfo info;
  info.name = "ds3-mini";
  info.paper_vertices = 30'000'000ULL;
  info.paper_edges = 100'000'000ULL;
  info.mini_vertices = std::max<VertexId>(512, info.paper_vertices / scale_denom);
  info.mini_edges = std::max<uint64_t>(2048, info.paper_edges / scale_denom);
  return info;
}

LabeledGraph MakeDs3Mini(const DatasetInfo& info, uint64_t seed) {
  SbmParams params;
  params.num_vertices = info.mini_vertices;
  params.num_edges = info.mini_edges;
  params.num_communities = 8;
  params.feature_dim = 32;
  // Difficulty calibrated so a 2-layer GraphSage lands at the paper's
  // reported accuracy (~91.5%) rather than saturating the synthetic task.
  params.feature_noise = 3.5;
  params.centroid_scale = 1.0;
  params.in_community_fraction = 0.8;
  params.seed = seed;
  return GenerateSbm(params);
}

}  // namespace psgraph::graph
