#include "graph/edge_io.h"

#include <charconv>
#include <cstdio>

#include "common/byte_buffer.h"

namespace psgraph::graph {

namespace {
constexpr uint32_t kBinaryMagic = 0x50534745;  // "PSGE"
}

Status WriteEdgesText(storage::Hdfs& hdfs, const std::string& path,
                      const EdgeList& edges, sim::NodeId node) {
  std::string text;
  text.reserve(edges.size() * 16);
  char line[96];
  for (const Edge& e : edges) {
    int n;
    if (e.weight == 1.0f) {
      n = std::snprintf(line, sizeof(line), "%llu %llu\n",
                        (unsigned long long)e.src,
                        (unsigned long long)e.dst);
    } else {
      n = std::snprintf(line, sizeof(line), "%llu %llu %g\n",
                        (unsigned long long)e.src,
                        (unsigned long long)e.dst, (double)e.weight);
    }
    text.append(line, n);
  }
  return hdfs.WriteString(path, text, node);
}

Result<EdgeList> ReadEdgesText(storage::Hdfs& hdfs, const std::string& path,
                               sim::NodeId node) {
  PSG_ASSIGN_OR_RETURN(std::string text, hdfs.ReadString(path, node));
  EdgeList edges;
  const char* p = text.data();
  const char* end = p + text.size();
  size_t line_no = 0;
  while (p < end) {
    ++line_no;
    const char* eol = p;
    while (eol < end && *eol != '\n') ++eol;
    // Trim and skip comments/blanks.
    const char* q = p;
    while (q < eol && (*q == ' ' || *q == '\t')) ++q;
    if (q == eol || *q == '#') {
      p = eol + 1;
      continue;
    }
    Edge e;
    auto parse_u64 = [&](VertexId* out) -> bool {
      while (q < eol && (*q == ' ' || *q == '\t')) ++q;
      auto [next, ec] = std::from_chars(q, eol, *out);
      if (ec != std::errc() || next == q) return false;
      q = next;
      return true;
    };
    if (!parse_u64(&e.src) || !parse_u64(&e.dst)) {
      return Status::InvalidArgument("edge file " + path + " line " +
                                     std::to_string(line_no) +
                                     ": expected 'src dst [weight]'");
    }
    while (q < eol && (*q == ' ' || *q == '\t')) ++q;
    if (q < eol) {
      double w;
      auto [next, ec] = std::from_chars(q, eol, w);
      if (ec != std::errc()) {
        return Status::InvalidArgument("edge file " + path + " line " +
                                       std::to_string(line_no) +
                                       ": bad weight");
      }
      q = next;
      e.weight = static_cast<float>(w);
    }
    edges.push_back(e);
    p = eol + 1;
  }
  return edges;
}

Status WriteEdgesBinary(storage::Hdfs& hdfs, const std::string& path,
                        const EdgeList& edges, sim::NodeId node) {
  ByteBuffer buf;
  buf.Reserve(edges.size() * sizeof(Edge) + 16);
  buf.Write<uint32_t>(kBinaryMagic);
  buf.WriteVector(edges);
  return hdfs.Write(path, buf, node);
}

Result<EdgeList> ReadEdgesBinary(storage::Hdfs& hdfs,
                                 const std::string& path,
                                 sim::NodeId node) {
  PSG_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, hdfs.Read(path, node));
  ByteReader reader(bytes);
  uint32_t magic = 0;
  PSG_RETURN_NOT_OK(reader.Read(&magic));
  if (magic != kBinaryMagic) {
    return Status::InvalidArgument("not a binary edge file: " + path);
  }
  EdgeList edges;
  PSG_RETURN_NOT_OK(reader.ReadVector(&edges));
  return edges;
}

}  // namespace psgraph::graph
