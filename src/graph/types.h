// Core graph value types shared by every layer.

#ifndef PSGRAPH_GRAPH_TYPES_H_
#define PSGRAPH_GRAPH_TYPES_H_

#include <cstdint>
#include <vector>

namespace psgraph::graph {

/// Vertex indices are encoded as long integers in the paper (§IV); we use
/// unsigned 64-bit.
using VertexId = uint64_t;

/// A directed, optionally weighted edge. Trivially copyable so edge
/// batches serialize with memcpy.
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
  float weight = 1.0f;

  bool operator==(const Edge& other) const {
    return src == other.src && dst == other.dst && weight == other.weight;
  }
};

using EdgeList = std::vector<Edge>;

/// One vertex plus its adjacency — the paper's "neighbor table" item
/// (src, Array[dst]) produced by the groupBy transformation.
struct NeighborList {
  VertexId vertex = 0;
  std::vector<VertexId> neighbors;
  std::vector<float> weights;  ///< empty for unweighted graphs

  bool weighted() const { return !weights.empty(); }
};

/// Returns max(vertex id) + 1 over the edge list, i.e. the size of dense
/// per-vertex arrays ("the size of both vectors is equal to the maximal
/// index of vertex", §IV-A). Zero for an empty list.
inline VertexId NumVerticesOf(const EdgeList& edges) {
  VertexId n = 0;
  for (const Edge& e : edges) {
    if (e.src + 1 > n) n = e.src + 1;
    if (e.dst + 1 > n) n = e.dst + 1;
  }
  return n;
}

}  // namespace psgraph::graph

#endif  // PSGRAPH_GRAPH_TYPES_H_
