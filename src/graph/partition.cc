#include "graph/partition.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.h"

namespace psgraph::graph {

std::vector<EdgeList> PartitionEdges(const EdgeList& edges,
                                     int32_t num_parts,
                                     PartitionStrategy strategy) {
  std::vector<EdgeList> parts(num_parts);
  switch (strategy) {
    case PartitionStrategy::kVertexPartition:
      for (const Edge& e : edges) {
        parts[Hash64(e.src) % num_parts].push_back(e);
      }
      break;
    case PartitionStrategy::kEdgePartition:
      for (size_t i = 0; i < edges.size(); ++i) {
        parts[i % num_parts].push_back(edges[i]);
      }
      break;
  }
  return parts;
}

std::vector<NeighborList> GroupBysrc(const EdgeList& edges) {
  std::unordered_map<VertexId, NeighborList> groups;
  groups.reserve(edges.size() / 4 + 1);
  bool weighted = false;
  for (const Edge& e : edges) {
    if (e.weight != 1.0f) weighted = true;
  }
  for (const Edge& e : edges) {
    NeighborList& nl = groups[e.src];
    nl.vertex = e.src;
    nl.neighbors.push_back(e.dst);
    if (weighted) nl.weights.push_back(e.weight);
  }
  std::vector<NeighborList> out;
  out.reserve(groups.size());
  for (auto& [_, nl] : groups) out.push_back(std::move(nl));
  std::sort(out.begin(), out.end(),
            [](const NeighborList& a, const NeighborList& b) {
              return a.vertex < b.vertex;
            });
  return out;
}

PartitionStats ComputePartitionStats(const std::vector<EdgeList>& parts) {
  PartitionStats stats;
  stats.min_partition_edges = UINT64_MAX;
  std::unordered_map<VertexId, uint32_t> appearances;
  for (const EdgeList& part : parts) {
    stats.max_partition_edges =
        std::max(stats.max_partition_edges, (uint64_t)part.size());
    stats.min_partition_edges =
        std::min(stats.min_partition_edges, (uint64_t)part.size());
    std::unordered_set<VertexId> local_srcs;
    for (const Edge& e : part) local_srcs.insert(e.src);
    for (VertexId v : local_srcs) appearances[v]++;
  }
  if (parts.empty() || appearances.empty()) {
    stats.min_partition_edges = 0;
    return stats;
  }
  uint64_t total = 0;
  for (const auto& [_, cnt] : appearances) total += cnt;
  stats.avg_src_replication =
      static_cast<double>(total) / appearances.size();
  return stats;
}

}  // namespace psgraph::graph
