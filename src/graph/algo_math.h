// Shared per-vertex decision math used by BOTH the GraphX baseline and
// the PSGraph implementations, so Fig. 6's runtime comparison compares
// execution engines, not algorithm variants.

#ifndef PSGRAPH_GRAPH_ALGO_MATH_H_
#define PSGRAPH_GRAPH_ALGO_MATH_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

namespace psgraph::graph {

/// H-index of `vals` capped at `cap`: the largest h <= cap such that at
/// least h entries are >= h. Iterating v.core <- H(neighbor cores)
/// converges to the exact core numbers (Lü et al. 2016). Sorts `vals`.
inline uint32_t HIndexCapped(std::vector<uint32_t>& vals, uint32_t cap) {
  std::sort(vals.begin(), vals.end(), std::greater<uint32_t>());
  uint32_t h = 0;
  for (size_t i = 0; i < vals.size(); ++i) {
    if (vals[i] >= i + 1) {
      h = static_cast<uint32_t>(i + 1);
    } else {
      break;
    }
  }
  return std::min(h, cap);
}

/// Louvain candidate move: community -> (weight from the vertex into it,
/// the community's Sigma_tot).
using LouvainCandidate = std::pair<uint64_t, std::pair<float, float>>;

/// Standard Louvain gain comparison (Blondel et al. 2008): returns the
/// community with the best modularity gain for a vertex with weighted
/// degree `k_v` currently in `own` (whose Sigma_tot is `tot_own`), given
/// candidate neighboring communities. Ties break toward the smaller
/// community id; the vertex stays unless a strict improvement exists.
inline uint64_t LouvainChooseCommunity(
    uint64_t own, float k_v, float tot_own, double m,
    const std::vector<LouvainCandidate>& candidates) {
  double w_own = 0.0;
  for (const LouvainCandidate& c : candidates) {
    if (c.first == own) w_own += c.second.first;
  }
  double best_gain =
      w_own - (static_cast<double>(tot_own) - k_v) * k_v / (2.0 * m);
  uint64_t best = own;
  for (const LouvainCandidate& c : candidates) {
    if (c.first == own) continue;
    double gain = static_cast<double>(c.second.first) -
                  static_cast<double>(c.second.second) * k_v / (2.0 * m);
    if (gain > best_gain + 1e-12 ||
        (std::fabs(gain - best_gain) <= 1e-12 && c.first < best)) {
      best = c.first;
      best_gain = gain;
    }
  }
  return best;
}

/// PageRank residual update used by both engines:
/// rank_new = reset + (1 - reset) * sum(contributions).
inline double PageRankValue(double reset_prob, double contrib_sum) {
  return reset_prob + (1.0 - reset_prob) * contrib_sum;
}

}  // namespace psgraph::graph

#endif  // PSGRAPH_GRAPH_ALGO_MATH_H_
