#include "graph/degree.h"

#include <algorithm>

namespace psgraph::graph {

std::vector<uint64_t> OutDegrees(const EdgeList& edges,
                                 VertexId num_vertices) {
  if (num_vertices == 0) num_vertices = NumVerticesOf(edges);
  std::vector<uint64_t> deg(num_vertices, 0);
  for (const Edge& e : edges) deg[e.src]++;
  return deg;
}

std::vector<uint64_t> InDegrees(const EdgeList& edges,
                                VertexId num_vertices) {
  if (num_vertices == 0) num_vertices = NumVerticesOf(edges);
  std::vector<uint64_t> deg(num_vertices, 0);
  for (const Edge& e : edges) deg[e.dst]++;
  return deg;
}

DegreeStats ComputeDegreeStats(const EdgeList& edges) {
  DegreeStats stats;
  if (edges.empty()) return stats;
  std::vector<uint64_t> deg = OutDegrees(edges);
  std::sort(deg.begin(), deg.end(), std::greater<uint64_t>());
  stats.max_degree = deg.front();
  stats.mean_degree =
      static_cast<double>(edges.size()) / static_cast<double>(deg.size());
  size_t top = std::max<size_t>(1, deg.size() / 100);
  uint64_t top_edges = 0;
  for (size_t i = 0; i < top; ++i) top_edges += deg[i];
  stats.top1pct_edge_fraction =
      static_cast<double>(top_edges) / static_cast<double>(edges.size());
  return stats;
}

}  // namespace psgraph::graph
