// Compressed sparse row adjacency — one of the PS-supported data
// structures (§III-A) and the in-memory format single-node baselines use.

#ifndef PSGRAPH_GRAPH_CSR_H_
#define PSGRAPH_GRAPH_CSR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"

namespace psgraph::graph {

/// Immutable CSR representation of a directed graph.
class Csr {
 public:
  Csr() = default;

  /// Builds from an edge list. `num_vertices` == 0 infers it from the max
  /// id. Edge order within a row follows input order.
  static Csr FromEdges(const EdgeList& edges, VertexId num_vertices = 0);

  VertexId num_vertices() const { return num_vertices_; }
  uint64_t num_edges() const { return neighbors_.size(); }

  uint64_t OutDegree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  std::span<const VertexId> Neighbors(VertexId v) const {
    return {neighbors_.data() + offsets_[v], OutDegree(v)};
  }

  std::span<const float> Weights(VertexId v) const {
    if (weights_.empty()) return {};
    return {weights_.data() + offsets_[v], OutDegree(v)};
  }

  bool weighted() const { return !weights_.empty(); }

  /// Approximate heap footprint in bytes (for memory accounting).
  uint64_t ByteSize() const {
    return offsets_.size() * sizeof(uint64_t) +
           neighbors_.size() * sizeof(VertexId) +
           weights_.size() * sizeof(float);
  }

 private:
  VertexId num_vertices_ = 0;
  std::vector<uint64_t> offsets_;  // size num_vertices_ + 1
  std::vector<VertexId> neighbors_;
  std::vector<float> weights_;
};

}  // namespace psgraph::graph

#endif  // PSGRAPH_GRAPH_CSR_H_
