// Edge-list persistence on the simulated HDFS.
//
// The paper assumes "the original dataset is stored on HDFS, and each data
// item is a pair (src, dst)" (§IV). Text format is one `src dst [weight]`
// line per edge; binary format is a memcpy'd Edge vector with a header.

#ifndef PSGRAPH_GRAPH_EDGE_IO_H_
#define PSGRAPH_GRAPH_EDGE_IO_H_

#include <string>

#include "common/result.h"
#include "graph/types.h"
#include "storage/hdfs.h"

namespace psgraph::graph {

/// Writes edges as text lines ("src dst weight\n"; weight omitted when 1).
Status WriteEdgesText(storage::Hdfs& hdfs, const std::string& path,
                      const EdgeList& edges, sim::NodeId node = -1);

/// Parses a text edge file. Lines starting with '#' and blank lines are
/// skipped; malformed lines yield InvalidArgument.
Result<EdgeList> ReadEdgesText(storage::Hdfs& hdfs, const std::string& path,
                               sim::NodeId node = -1);

/// Binary round trip (much faster; used by benches for large inputs).
Status WriteEdgesBinary(storage::Hdfs& hdfs, const std::string& path,
                        const EdgeList& edges, sim::NodeId node = -1);
Result<EdgeList> ReadEdgesBinary(storage::Hdfs& hdfs,
                                 const std::string& path,
                                 sim::NodeId node = -1);

}  // namespace psgraph::graph

#endif  // PSGRAPH_GRAPH_EDGE_IO_H_
