#include "graph/csr.h"

#include <algorithm>

namespace psgraph::graph {

Csr Csr::FromEdges(const EdgeList& edges, VertexId num_vertices) {
  Csr csr;
  if (num_vertices == 0) num_vertices = NumVerticesOf(edges);
  csr.num_vertices_ = num_vertices;
  csr.offsets_.assign(num_vertices + 1, 0);

  bool weighted = false;
  for (const Edge& e : edges) {
    csr.offsets_[e.src + 1]++;
    if (e.weight != 1.0f) weighted = true;
  }
  for (VertexId v = 0; v < num_vertices; ++v) {
    csr.offsets_[v + 1] += csr.offsets_[v];
  }

  csr.neighbors_.resize(edges.size());
  if (weighted) csr.weights_.resize(edges.size());
  std::vector<uint64_t> cursor(csr.offsets_.begin(),
                               csr.offsets_.end() - 1);
  for (const Edge& e : edges) {
    uint64_t pos = cursor[e.src]++;
    csr.neighbors_[pos] = e.dst;
    if (weighted) csr.weights_[pos] = e.weight;
  }
  return csr;
}

}  // namespace psgraph::graph
