// Catalog of the experiment datasets.
//
// Paper datasets (Tencent production graphs, §V-A):
//   DS1: 0.8 B vertices, 11 B edges
//   DS2: 2 B vertices, 140 B edges
//   DS3: 30 M vertices, 100 M edges (WeChat Pay, with features/labels)
//
// The catalog generates `*-mini` versions scaled down by `scale_denom`
// (default 10000 for DS1/DS2, 1000 for DS3), preserving the vertex:edge
// ratio and power-law skew. `paper_scale()` returns the factor the cost
// model multiplies simulated makespans by to report cluster-scale numbers.

#ifndef PSGRAPH_GRAPH_DATASETS_H_
#define PSGRAPH_GRAPH_DATASETS_H_

#include <cstdint>
#include <string>

#include "graph/generators.h"
#include "graph/types.h"

namespace psgraph::graph {

struct DatasetInfo {
  std::string name;
  VertexId paper_vertices = 0;
  uint64_t paper_edges = 0;
  VertexId mini_vertices = 0;
  uint64_t mini_edges = 0;
  /// Degree cap applied after generation (0 = none); keeps the relative
  /// hubness of the mini graph comparable to the paper's graphs instead
  /// of the far heavier concentration R-MAT produces at small scales.
  uint64_t max_degree = 0;

  /// Ratio between paper edge count and generated edge count.
  double paper_scale() const {
    return static_cast<double>(paper_edges) /
           static_cast<double>(mini_edges);
  }
};

/// DS1-mini: RMAT, ~0.8 M/`scale_denom` * 10^9-scale ... concretely with
/// the default denominator: 2^17 = 131072 vertex id space, 1.1 M edges.
DatasetInfo Ds1MiniInfo(uint64_t scale_denom = 25000);
EdgeList MakeDs1Mini(const DatasetInfo& info, uint64_t seed = 11);

/// DS2-mini: RMAT, denser and larger (the paper's 2 B x 140 B graph).
DatasetInfo Ds2MiniInfo(uint64_t scale_denom = 100000);
EdgeList MakeDs2Mini(const DatasetInfo& info, uint64_t seed = 12);

/// DS3-mini: SBM with features and labels for GraphSage (Table I).
DatasetInfo Ds3MiniInfo(uint64_t scale_denom = 1000);
LabeledGraph MakeDs3Mini(const DatasetInfo& info, uint64_t seed = 13);

}  // namespace psgraph::graph

#endif  // PSGRAPH_GRAPH_DATASETS_H_
