// Synthetic graph generators standing in for Tencent's proprietary graphs.
//
// The experiments' datasets (DS1/DS2: billion-scale social graphs, DS3: a
// WeChat Pay graph with vertex features and labels) are not available;
// these generators produce scaled-down graphs with the same vertex:edge
// ratios and the power-law degree skew that drives the systems' behaviour
// (hot vertices stress vertex-cut partitioning and PS hot keys).

#ifndef PSGRAPH_GRAPH_GENERATORS_H_
#define PSGRAPH_GRAPH_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "graph/types.h"

namespace psgraph::graph {

/// R-MAT recursive-matrix generator (Chakrabarti et al.). Produces a
/// power-law directed multigraph with 2^scale vertices.
struct RmatParams {
  int scale = 16;            ///< num_vertices = 2^scale
  uint64_t num_edges = 1 << 20;
  double a = 0.57, b = 0.19, c = 0.19;  ///< d = 1 - a - b - c
  bool remove_self_loops = true;
  uint64_t seed = 1;
};
EdgeList GenerateRmat(const RmatParams& params);

/// Erdős–Rényi G(n, m): m uniformly random directed edges. For tests.
EdgeList GenerateErdosRenyi(VertexId num_vertices, uint64_t num_edges,
                            uint64_t seed);

/// Planted-partition (stochastic block model) graph plus per-vertex
/// features and labels: vertices in the same community connect with
/// probability proportional to `p_in` vs `p_out`, features are the
/// community centroid plus Gaussian noise. This is the DS3 stand-in for
/// the GraphSage node-classification task (Table I).
struct SbmParams {
  VertexId num_vertices = 30000;
  uint64_t num_edges = 100000;
  int num_communities = 8;
  double in_community_fraction = 0.85;  ///< fraction of edges inside blocks
  int feature_dim = 32;
  double feature_noise = 1.0;
  double centroid_scale = 3.0;
  uint64_t seed = 7;
};

struct LabeledGraph {
  EdgeList edges;
  std::vector<int32_t> labels;         ///< size num_vertices
  std::vector<float> features;         ///< row-major [num_vertices x dim]
  int feature_dim = 0;
  int num_classes = 0;
  VertexId num_vertices = 0;
};

LabeledGraph GenerateSbm(const SbmParams& params);

/// Undirected view: appends the reverse of every edge (dedup not applied;
/// multigraph semantics match the RDD pipelines).
EdgeList Symmetrize(const EdgeList& edges);

/// Drops exact duplicate (src, dst) pairs and self loops; keeps first
/// weight. Used by algorithms that require simple graphs (triangle count).
EdgeList Simplify(const EdgeList& edges);

/// Rewires edges so no vertex exceeds `max_degree` (out + in combined):
/// offending endpoints are resampled uniformly. Keeps |E| and the
/// power-law shape below the cap. Scaled-down graphs need this because
/// R-MAT at small scales concentrates relatively far heavier hubs than
/// the original billion-vertex graphs had.
EdgeList CapDegrees(EdgeList edges, uint64_t max_degree, uint64_t seed);

}  // namespace psgraph::graph

#endif  // PSGRAPH_GRAPH_GENERATORS_H_
