// Degree utilities shared by PageRank (out-degree normalization), K-core
// (degree peeling) and the generators' skew diagnostics.

#ifndef PSGRAPH_GRAPH_DEGREE_H_
#define PSGRAPH_GRAPH_DEGREE_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace psgraph::graph {

/// Out-degree per vertex (dense, indexed by vertex id).
std::vector<uint64_t> OutDegrees(const EdgeList& edges,
                                 VertexId num_vertices = 0);

/// In-degree per vertex.
std::vector<uint64_t> InDegrees(const EdgeList& edges,
                                VertexId num_vertices = 0);

/// Degree distribution summary for skew diagnostics.
struct DegreeStats {
  uint64_t max_degree = 0;
  double mean_degree = 0.0;
  /// Fraction of all edges incident (as src) to the top 1% vertices —
  /// close to 1 means heavy power-law skew.
  double top1pct_edge_fraction = 0.0;
};
DegreeStats ComputeDegreeStats(const EdgeList& edges);

}  // namespace psgraph::graph

#endif  // PSGRAPH_GRAPH_DEGREE_H_
