#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "common/hash.h"

namespace psgraph::graph {

EdgeList GenerateRmat(const RmatParams& params) {
  Rng rng(params.seed);
  const VertexId n = VertexId{1} << params.scale;
  const double ab = params.a + params.b;
  const double abc = ab + params.c;

  EdgeList edges;
  edges.reserve(params.num_edges);
  while (edges.size() < params.num_edges) {
    VertexId src = 0, dst = 0;
    VertexId step = n >> 1;
    while (step > 0) {
      double r = rng.NextDouble();
      if (r < params.a) {
        // top-left quadrant: no move
      } else if (r < ab) {
        dst += step;
      } else if (r < abc) {
        src += step;
      } else {
        src += step;
        dst += step;
      }
      step >>= 1;
    }
    if (params.remove_self_loops && src == dst) continue;
    edges.push_back({src, dst, 1.0f});
  }
  return edges;
}

EdgeList GenerateErdosRenyi(VertexId num_vertices, uint64_t num_edges,
                            uint64_t seed) {
  Rng rng(seed);
  EdgeList edges;
  edges.reserve(num_edges);
  while (edges.size() < num_edges) {
    VertexId src = rng.NextBounded(num_vertices);
    VertexId dst = rng.NextBounded(num_vertices);
    if (src == dst) continue;
    edges.push_back({src, dst, 1.0f});
  }
  return edges;
}

LabeledGraph GenerateSbm(const SbmParams& params) {
  Rng rng(params.seed);
  LabeledGraph g;
  g.num_vertices = params.num_vertices;
  g.num_classes = params.num_communities;
  g.feature_dim = params.feature_dim;

  // Assign communities round-robin with a shuffle so ids are uncorrelated
  // with the label.
  g.labels.resize(params.num_vertices);
  for (VertexId v = 0; v < params.num_vertices; ++v) {
    g.labels[v] = static_cast<int32_t>(v % params.num_communities);
  }
  for (VertexId v = params.num_vertices; v > 1; --v) {
    VertexId u = rng.NextBounded(v);
    std::swap(g.labels[v - 1], g.labels[u]);
  }

  // Bucket vertices per community for fast intra-community sampling.
  std::vector<std::vector<VertexId>> members(params.num_communities);
  for (VertexId v = 0; v < params.num_vertices; ++v) {
    members[g.labels[v]].push_back(v);
  }

  g.edges.reserve(params.num_edges);
  while (g.edges.size() < params.num_edges) {
    VertexId src = rng.NextBounded(params.num_vertices);
    VertexId dst;
    if (rng.NextBool(params.in_community_fraction)) {
      const auto& bucket = members[g.labels[src]];
      dst = bucket[rng.NextBounded(bucket.size())];
    } else {
      dst = rng.NextBounded(params.num_vertices);
    }
    if (src == dst) continue;
    g.edges.push_back({src, dst, 1.0f});
  }

  // Community centroids: random Gaussian directions scaled up so classes
  // are separable but individual features stay noisy.
  std::vector<float> centroids(
      static_cast<size_t>(params.num_communities) * params.feature_dim);
  for (auto& c : centroids) {
    c = static_cast<float>(rng.NextGaussian() * params.centroid_scale);
  }
  g.features.resize(static_cast<size_t>(params.num_vertices) *
                    params.feature_dim);
  for (VertexId v = 0; v < params.num_vertices; ++v) {
    const float* centroid =
        centroids.data() +
        static_cast<size_t>(g.labels[v]) * params.feature_dim;
    float* row = g.features.data() + static_cast<size_t>(v) *
                 params.feature_dim;
    for (int d = 0; d < params.feature_dim; ++d) {
      row[d] = centroid[d] +
               static_cast<float>(rng.NextGaussian() * params.feature_noise);
    }
  }
  return g;
}

EdgeList CapDegrees(EdgeList edges, uint64_t max_degree, uint64_t seed) {
  if (max_degree == 0) return edges;
  VertexId n = NumVerticesOf(edges);
  std::vector<uint32_t> degree(n, 0);
  Rng rng(seed);
  for (Edge& e : edges) {
    int guard = 0;
    while ((degree[e.src] >= max_degree || degree[e.dst] >= max_degree) &&
           guard++ < 64) {
      e.src = rng.NextBounded(n);
      e.dst = rng.NextBounded(n);
      if (e.src == e.dst) degree[e.src] = max_degree;  // force resample
    }
    degree[e.src]++;
    degree[e.dst]++;
  }
  return edges;
}

EdgeList Symmetrize(const EdgeList& edges) {
  EdgeList out;
  out.reserve(edges.size() * 2);
  for (const Edge& e : edges) {
    out.push_back(e);
    out.push_back({e.dst, e.src, e.weight});
  }
  return out;
}

EdgeList Simplify(const EdgeList& edges) {
  struct PairHash {
    size_t operator()(const std::pair<VertexId, VertexId>& p) const {
      return HashCombine(Hash64(p.first), p.second);
    }
  };
  std::unordered_set<std::pair<VertexId, VertexId>, PairHash> seen;
  seen.reserve(edges.size() * 2);
  EdgeList out;
  out.reserve(edges.size());
  for (const Edge& e : edges) {
    if (e.src == e.dst) continue;
    if (seen.insert({e.src, e.dst}).second) out.push_back(e);
  }
  return out;
}

}  // namespace psgraph::graph
