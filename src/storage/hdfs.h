// Simulated HDFS: a durable key -> bytes store living *outside* the
// simulated nodes (it survives container failures, like the real HDFS the
// paper checkpoints to). Reads and writes are charged to the calling
// node's simulated clock via the cluster cost model, and counted in
// Metrics ("hdfs.bytes_read"/"hdfs.bytes_written").

#ifndef PSGRAPH_STORAGE_HDFS_H_
#define PSGRAPH_STORAGE_HDFS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/byte_buffer.h"
#include "common/result.h"
#include "common/status.h"
#include "sim/cluster.h"

namespace psgraph::storage {

class Hdfs {
 public:
  /// `cluster` may be null for unit tests (no time accounting).
  explicit Hdfs(sim::SimCluster* cluster = nullptr) : cluster_(cluster) {}

  /// Creates or overwrites `path` with `bytes`. The write is charged as a
  /// sequential disk write plus one network transfer on `node`'s clock.
  Status Write(const std::string& path, std::vector<uint8_t> bytes,
               sim::NodeId node = -1);
  Status Write(const std::string& path, const ByteBuffer& buf,
               sim::NodeId node = -1) {
    return Write(path, std::vector<uint8_t>(buf.data()), node);
  }
  Status WriteString(const std::string& path, const std::string& text,
                     sim::NodeId node = -1) {
    return Write(path,
                 std::vector<uint8_t>(text.begin(), text.end()), node);
  }

  Result<std::vector<uint8_t>> Read(const std::string& path,
                                    sim::NodeId node = -1);
  Result<std::string> ReadString(const std::string& path,
                                 sim::NodeId node = -1);

  bool Exists(const std::string& path) const;
  Result<uint64_t> FileSize(const std::string& path) const;
  /// Removes `path`. Charged as one metadata round-trip (disk seek +
  /// network latency) on `node`'s clock; counted in
  /// "hdfs.files_deleted".
  Status Delete(const std::string& path, sim::NodeId node = -1);
  /// Atomic rename; fails with NotFound if `from` does not exist.
  Status Rename(const std::string& from, const std::string& to);
  /// All paths with the given prefix, sorted. Charged as one metadata
  /// round-trip plus the transfer of the returned path names; counted in
  /// "hdfs.lists" / "hdfs.files_listed".
  std::vector<std::string> List(const std::string& prefix,
                                sim::NodeId node = -1) const;
  /// Total stored bytes (capacity checks in tests).
  uint64_t TotalBytes() const;

 private:
  void ChargeIo(sim::NodeId node, uint64_t bytes, bool write) const;
  /// Namenode metadata operation: one disk seek plus a small network
  /// round-trip carrying `bytes` of path/listing payload.
  void ChargeMetadataOp(sim::NodeId node, uint64_t bytes) const;
  /// Counter sink: the owning cluster's metrics, or the process-wide
  /// registry for clusterless test instances.
  Metrics& metrics() const {
    return cluster_ != nullptr ? cluster_->metrics() : Metrics::Global();
  }

  sim::SimCluster* cluster_;
  mutable std::mutex mu_;
  std::map<std::string, std::vector<uint8_t>> files_;
};

}  // namespace psgraph::storage

#endif  // PSGRAPH_STORAGE_HDFS_H_
