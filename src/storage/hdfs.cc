#include "storage/hdfs.h"

#include "common/metrics.h"

namespace psgraph::storage {

Status Hdfs::Write(const std::string& path, std::vector<uint8_t> bytes,
                   sim::NodeId node) {
  ChargeIo(node, bytes.size(), /*write=*/true);
  metrics().Add("hdfs.bytes_written", bytes.size());
  std::lock_guard<std::mutex> lock(mu_);
  files_[path] = std::move(bytes);
  return Status::OK();
}

Result<std::vector<uint8_t>> Hdfs::Read(const std::string& path,
                                        sim::NodeId node) {
  std::vector<uint8_t> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(path);
    if (it == files_.end()) {
      return Status::NotFound("hdfs: no such file: " + path);
    }
    out = it->second;
  }
  ChargeIo(node, out.size(), /*write=*/false);
  metrics().Add("hdfs.bytes_read", out.size());
  return out;
}

Result<std::string> Hdfs::ReadString(const std::string& path,
                                     sim::NodeId node) {
  PSG_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, Read(path, node));
  return std::string(bytes.begin(), bytes.end());
}

bool Hdfs::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0;
}

Result<uint64_t> Hdfs::FileSize(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("hdfs: no such file: " + path);
  }
  return static_cast<uint64_t>(it->second.size());
}

Status Hdfs::Delete(const std::string& path, sim::NodeId node) {
  ChargeMetadataOp(node, path.size());
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.erase(path) == 0) {
    return Status::NotFound("hdfs: no such file: " + path);
  }
  metrics().Add("hdfs.files_deleted", 1);
  return Status::OK();
}

Status Hdfs::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(from);
  if (it == files_.end()) {
    return Status::NotFound("hdfs: no such file: " + from);
  }
  files_[to] = std::move(it->second);
  files_.erase(it);
  return Status::OK();
}

std::vector<std::string> Hdfs::List(const std::string& prefix,
                                    sim::NodeId node) const {
  std::vector<std::string> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
      if (it->first.compare(0, prefix.size(), prefix) != 0) break;
      out.push_back(it->first);
    }
  }
  uint64_t listing_bytes = prefix.size();
  for (const std::string& p : out) listing_bytes += p.size();
  ChargeMetadataOp(node, listing_bytes);
  metrics().Add("hdfs.lists", 1);
  metrics().Add("hdfs.files_listed", out.size());
  return out;
}

uint64_t Hdfs::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [_, bytes] : files_) total += bytes.size();
  return total;
}

void Hdfs::ChargeIo(sim::NodeId node, uint64_t bytes, bool write) const {
  if (cluster_ == nullptr || node < 0) return;
  const auto& cost = cluster_->cost();
  double t = write ? cost.DiskWriteTime(bytes) : cost.DiskReadTime(bytes);
  // HDFS is remote storage: the transfer also crosses the network.
  t += cost.NetworkTime(bytes);
  cluster_->clock().Advance(node, t);
}

void Hdfs::ChargeMetadataOp(sim::NodeId node, uint64_t bytes) const {
  if (cluster_ == nullptr || node < 0) return;
  const auto& cost = cluster_->cost();
  // One namenode seek plus a round-trip carrying the path/listing text.
  cluster_->clock().Advance(node, cost.DiskReadTime(0) +
                                      cost.NetworkTime(bytes));
}

}  // namespace psgraph::storage
