#include "minitorch/nn.h"

#include <cmath>

namespace psgraph::minitorch {

void Adam::Step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, t_);
  const double bc2 = 1.0 - std::pow(beta2_, t_);
  for (size_t pi = 0; pi < params_.size(); ++pi) {
    Tensor& p = params_[pi];
    if (p.grad().empty()) continue;
    auto& data = p.mutable_data();
    const auto& grad = p.grad();
    auto& m = m_[pi];
    auto& v = v_[pi];
    for (size_t i = 0; i < data.size(); ++i) {
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * grad[i];
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * grad[i] * grad[i];
      double mhat = m[i] / bc1;
      double vhat = v[i] / bc2;
      data[i] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

}  // namespace psgraph::minitorch
