#include "minitorch/ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace psgraph::minitorch {

namespace {

using detail::OpNode;
using detail::TensorImpl;

/// Creates the output tensor and wires the tape node if any input needs
/// gradients.
template <typename NodeT, typename... Extra>
Tensor MakeOutput(int64_t rows, int64_t cols,
                  std::vector<Tensor> inputs, const char* name,
                  Extra&&... extra) {
  Tensor out = Tensor::Zeros(rows, cols);
  bool needs = false;
  for (const Tensor& t : inputs) needs |= t.requires_grad();
  if (needs) {
    auto node = std::make_shared<NodeT>(std::forward<Extra>(extra)...);
    node->inputs = std::move(inputs);
    node->name = name;
    out.impl()->grad_fn = node;
    out.impl()->requires_grad = true;
  }
  return out;
}

void AccumulateGrad(const Tensor& t, const std::vector<float>& delta) {
  if (!t.requires_grad() && !t.impl()->grad_fn) return;
  TensorImpl* impl = t.impl();
  impl->EnsureGrad();
  for (size_t i = 0; i < delta.size(); ++i) impl->grad[i] += delta[i];
}

struct MatmulNode : OpNode {
  void Backward(const TensorImpl& out) override {
    const Tensor& a = inputs[0];
    const Tensor& b = inputs[1];
    const int64_t n = a.rows(), k = a.cols(), m = b.cols();
    // dA = dC * B^T
    std::vector<float> da(n * k, 0.0f);
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < m; ++j) {
        float g = out.grad[i * m + j];
        if (g == 0.0f) continue;
        const float* brow = b.data().data() + j;  // column j of B
        for (int64_t x = 0; x < k; ++x) {
          da[i * k + x] += g * b.data()[x * m + j];
        }
        (void)brow;
      }
    }
    AccumulateGrad(a, da);
    // dB = A^T * dC
    std::vector<float> db(k * m, 0.0f);
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t x = 0; x < k; ++x) {
        float av = a.data()[i * k + x];
        if (av == 0.0f) continue;
        for (int64_t j = 0; j < m; ++j) {
          db[x * m + j] += av * out.grad[i * m + j];
        }
      }
    }
    AccumulateGrad(b, db);
  }
};

struct AddNode : OpNode {
  void Backward(const TensorImpl& out) override {
    AccumulateGrad(inputs[0], out.grad);
    AccumulateGrad(inputs[1], out.grad);
  }
};

struct AddBiasNode : OpNode {
  void Backward(const TensorImpl& out) override {
    AccumulateGrad(inputs[0], out.grad);
    const int64_t m = inputs[1].cols();
    std::vector<float> db(m, 0.0f);
    for (int64_t i = 0; i < out.rows; ++i) {
      for (int64_t j = 0; j < m; ++j) db[j] += out.grad[i * m + j];
    }
    AccumulateGrad(inputs[1], db);
  }
};

struct ReluNode : OpNode {
  void Backward(const TensorImpl& out) override {
    std::vector<float> da(out.data.size());
    for (size_t i = 0; i < da.size(); ++i) {
      da[i] = out.data[i] > 0.0f ? out.grad[i] : 0.0f;
    }
    AccumulateGrad(inputs[0], da);
  }
};

struct SigmoidNode : OpNode {
  void Backward(const TensorImpl& out) override {
    std::vector<float> da(out.data.size());
    for (size_t i = 0; i < da.size(); ++i) {
      da[i] = out.grad[i] * out.data[i] * (1.0f - out.data[i]);
    }
    AccumulateGrad(inputs[0], da);
  }
};

struct ConcatColsNode : OpNode {
  void Backward(const TensorImpl& out) override {
    const Tensor& a = inputs[0];
    const Tensor& b = inputs[1];
    const int64_t ca = a.cols(), cb = b.cols(), c = ca + cb;
    std::vector<float> da(a.size()), db(b.size());
    for (int64_t i = 0; i < out.rows; ++i) {
      for (int64_t j = 0; j < ca; ++j) da[i * ca + j] = out.grad[i * c + j];
      for (int64_t j = 0; j < cb; ++j) {
        db[i * cb + j] = out.grad[i * c + ca + j];
      }
    }
    AccumulateGrad(a, da);
    AccumulateGrad(b, db);
  }
};

struct GatherRowsNode : OpNode {
  std::vector<int64_t> indices;
  explicit GatherRowsNode(std::vector<int64_t> idx)
      : indices(std::move(idx)) {}
  void Backward(const TensorImpl& out) override {
    const Tensor& a = inputs[0];
    const int64_t m = a.cols();
    std::vector<float> da(a.size(), 0.0f);
    for (size_t i = 0; i < indices.size(); ++i) {
      for (int64_t j = 0; j < m; ++j) {
        da[indices[i] * m + j] += out.grad[i * m + j];
      }
    }
    AccumulateGrad(a, da);
  }
};

struct SegmentMeanNode : OpNode {
  std::vector<std::vector<int64_t>> segments;
  explicit SegmentMeanNode(std::vector<std::vector<int64_t>> segs)
      : segments(std::move(segs)) {}
  void Backward(const TensorImpl& out) override {
    const Tensor& a = inputs[0];
    const int64_t m = a.cols();
    std::vector<float> da(a.size(), 0.0f);
    for (size_t i = 0; i < segments.size(); ++i) {
      if (segments[i].empty()) continue;
      float inv = 1.0f / static_cast<float>(segments[i].size());
      for (int64_t j : segments[i]) {
        for (int64_t c = 0; c < m; ++c) {
          da[j * m + c] += out.grad[i * m + c] * inv;
        }
      }
    }
    AccumulateGrad(a, da);
  }
};

struct SegmentMaxNode : OpNode {
  std::vector<int64_t> argmax;  ///< per (segment, col): winning input row
  int64_t cols = 0;
  SegmentMaxNode(std::vector<int64_t> am, int64_t c)
      : argmax(std::move(am)), cols(c) {}
  void Backward(const TensorImpl& out) override {
    const Tensor& a = inputs[0];
    std::vector<float> da(a.size(), 0.0f);
    for (int64_t i = 0; i < out.rows; ++i) {
      for (int64_t c = 0; c < cols; ++c) {
        int64_t j = argmax[i * cols + c];
        if (j >= 0) da[j * cols + c] += out.grad[i * cols + c];
      }
    }
    AccumulateGrad(a, da);
  }
};

struct RowL2NormalizeNode : OpNode {
  std::vector<float> norms;  ///< forward-pass row norms
  explicit RowL2NormalizeNode(std::vector<float> n)
      : norms(std::move(n)) {}
  void Backward(const TensorImpl& out) override {
    const Tensor& a = inputs[0];
    const int64_t m = a.cols();
    std::vector<float> da(a.size(), 0.0f);
    for (int64_t i = 0; i < out.rows; ++i) {
      float n = norms[i];
      if (n == 0.0f) {
        for (int64_t j = 0; j < m; ++j) da[i * m + j] = out.grad[i * m + j];
        continue;
      }
      // d(x/||x||)/dx = (I - y y^T) / ||x||, with y = x/||x||.
      float dot = 0.0f;
      for (int64_t j = 0; j < m; ++j) {
        dot += out.grad[i * m + j] * out.data[i * m + j];
      }
      for (int64_t j = 0; j < m; ++j) {
        da[i * m + j] =
            (out.grad[i * m + j] - dot * out.data[i * m + j]) / n;
      }
    }
    AccumulateGrad(a, da);
  }
};

struct SoftmaxCrossEntropyNode : OpNode {
  std::vector<float> probs;  ///< forward softmax, n x classes
  std::vector<int32_t> labels;
  int64_t classes = 0;
  SoftmaxCrossEntropyNode(std::vector<float> p, std::vector<int32_t> l,
                          int64_t c)
      : probs(std::move(p)), labels(std::move(l)), classes(c) {}
  void Backward(const TensorImpl& out) override {
    const float g = out.grad[0] / static_cast<float>(labels.size());
    std::vector<float> da(probs.size());
    for (size_t i = 0; i < labels.size(); ++i) {
      for (int64_t j = 0; j < classes; ++j) {
        float p = probs[i * classes + j];
        da[i * classes + j] =
            g * (p - (j == labels[i] ? 1.0f : 0.0f));
      }
    }
    AccumulateGrad(inputs[0], da);
  }
};

}  // namespace

Tensor Matmul(const Tensor& a, const Tensor& b) {
  assert(a.cols() == b.rows());
  const int64_t n = a.rows(), k = a.cols(), m = b.cols();
  Tensor out = MakeOutput<MatmulNode>(n, m, {a, b}, "matmul");
  float* c = out.mutable_data().data();
  const float* ad = a.data().data();
  const float* bd = b.data().data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t x = 0; x < k; ++x) {
      float av = ad[i * k + x];
      if (av == 0.0f) continue;
      const float* brow = bd + x * m;
      float* crow = c + i * m;
      for (int64_t j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
  return out;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  Tensor out = MakeOutput<AddNode>(a.rows(), a.cols(), {a, b}, "add");
  for (int64_t i = 0; i < a.size(); ++i) {
    out.mutable_data()[i] = a.data()[i] + b.data()[i];
  }
  return out;
}

Tensor AddBias(const Tensor& a, const Tensor& bias) {
  assert(bias.rows() == 1 && bias.cols() == a.cols());
  Tensor out =
      MakeOutput<AddBiasNode>(a.rows(), a.cols(), {a, bias}, "add_bias");
  const int64_t m = a.cols();
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < m; ++j) {
      out.mutable_data()[i * m + j] = a.data()[i * m + j] + bias.data()[j];
    }
  }
  return out;
}

Tensor Relu(const Tensor& a) {
  Tensor out = MakeOutput<ReluNode>(a.rows(), a.cols(), {a}, "relu");
  for (int64_t i = 0; i < a.size(); ++i) {
    out.mutable_data()[i] = std::max(0.0f, a.data()[i]);
  }
  return out;
}

Tensor Sigmoid(const Tensor& a) {
  Tensor out = MakeOutput<SigmoidNode>(a.rows(), a.cols(), {a}, "sigmoid");
  for (int64_t i = 0; i < a.size(); ++i) {
    out.mutable_data()[i] = 1.0f / (1.0f + std::exp(-a.data()[i]));
  }
  return out;
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  assert(a.rows() == b.rows());
  const int64_t ca = a.cols(), cb = b.cols(), c = ca + cb;
  Tensor out =
      MakeOutput<ConcatColsNode>(a.rows(), c, {a, b}, "concat_cols");
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < ca; ++j) {
      out.mutable_data()[i * c + j] = a.data()[i * ca + j];
    }
    for (int64_t j = 0; j < cb; ++j) {
      out.mutable_data()[i * c + ca + j] = b.data()[i * cb + j];
    }
  }
  return out;
}

Tensor GatherRows(const Tensor& a, const std::vector<int64_t>& indices) {
  const int64_t m = a.cols();
  Tensor out = MakeOutput<GatherRowsNode>(
      static_cast<int64_t>(indices.size()), m, {a}, "gather_rows",
      indices);
  for (size_t i = 0; i < indices.size(); ++i) {
    assert(indices[i] >= 0 && indices[i] < a.rows());
    std::copy(a.data().begin() + indices[i] * m,
              a.data().begin() + (indices[i] + 1) * m,
              out.mutable_data().begin() + i * m);
  }
  return out;
}

Tensor SegmentMean(const Tensor& a,
                   const std::vector<std::vector<int64_t>>& segments) {
  const int64_t m = a.cols();
  Tensor out = MakeOutput<SegmentMeanNode>(
      static_cast<int64_t>(segments.size()), m, {a}, "segment_mean",
      segments);
  for (size_t i = 0; i < segments.size(); ++i) {
    if (segments[i].empty()) continue;
    float inv = 1.0f / static_cast<float>(segments[i].size());
    for (int64_t j : segments[i]) {
      assert(j >= 0 && j < a.rows());
      for (int64_t c = 0; c < m; ++c) {
        out.mutable_data()[i * m + c] += a.data()[j * m + c] * inv;
      }
    }
  }
  return out;
}

Tensor SegmentMax(const Tensor& a,
                  const std::vector<std::vector<int64_t>>& segments) {
  const int64_t m = a.cols();
  std::vector<int64_t> argmax(segments.size() * m, -1);
  Tensor out = MakeOutput<SegmentMaxNode>(
      static_cast<int64_t>(segments.size()), m, {a}, "segment_max",
      argmax, m);
  auto* node = dynamic_cast<SegmentMaxNode*>(out.impl()->grad_fn.get());
  for (size_t i = 0; i < segments.size(); ++i) {
    bool first = true;
    for (int64_t j : segments[i]) {
      assert(j >= 0 && j < a.rows());
      for (int64_t c = 0; c < m; ++c) {
        float v = a.data()[j * m + c];
        float& cur = out.mutable_data()[i * m + c];
        if (first || v > cur) {
          cur = v;
          if (node != nullptr) node->argmax[i * m + c] = j;
        }
      }
      first = false;
    }
  }
  return out;
}

Tensor RowL2Normalize(const Tensor& a) {
  const int64_t m = a.cols();
  std::vector<float> norms(a.rows(), 0.0f);
  for (int64_t i = 0; i < a.rows(); ++i) {
    float s = 0.0f;
    for (int64_t j = 0; j < m; ++j) {
      s += a.data()[i * m + j] * a.data()[i * m + j];
    }
    norms[i] = std::sqrt(s);
  }
  Tensor out = MakeOutput<RowL2NormalizeNode>(a.rows(), m, {a},
                                              "row_l2_normalize", norms);
  for (int64_t i = 0; i < a.rows(); ++i) {
    float inv = norms[i] == 0.0f ? 1.0f : 1.0f / norms[i];
    for (int64_t j = 0; j < m; ++j) {
      out.mutable_data()[i * m + j] = a.data()[i * m + j] * inv;
    }
  }
  return out;
}

Tensor SoftmaxCrossEntropy(const Tensor& logits,
                           const std::vector<int32_t>& labels) {
  assert(static_cast<int64_t>(labels.size()) == logits.rows());
  const int64_t n = logits.rows(), c = logits.cols();
  std::vector<float> probs(n * c);
  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    float maxv = logits.data()[i * c];
    for (int64_t j = 1; j < c; ++j) {
      maxv = std::max(maxv, logits.data()[i * c + j]);
    }
    double z = 0.0;
    for (int64_t j = 0; j < c; ++j) {
      probs[i * c + j] = std::exp(logits.data()[i * c + j] - maxv);
      z += probs[i * c + j];
    }
    for (int64_t j = 0; j < c; ++j) {
      probs[i * c + j] = static_cast<float>(probs[i * c + j] / z);
    }
    loss -= std::log(std::max(1e-12f, probs[i * c + labels[i]]));
  }
  Tensor out = MakeOutput<SoftmaxCrossEntropyNode>(
      1, 1, {logits}, "softmax_ce", probs, labels, c);
  out.mutable_data()[0] = static_cast<float>(loss / n);
  return out;
}

std::vector<int32_t> ArgmaxRows(const Tensor& logits) {
  std::vector<int32_t> preds(logits.rows());
  const int64_t c = logits.cols();
  for (int64_t i = 0; i < logits.rows(); ++i) {
    int32_t best = 0;
    for (int64_t j = 1; j < c; ++j) {
      if (logits.data()[i * c + j] > logits.data()[i * c + best]) {
        best = static_cast<int32_t>(j);
      }
    }
    preds[i] = best;
  }
  return preds;
}

double Accuracy(const Tensor& logits, const std::vector<int32_t>& labels) {
  auto preds = ArgmaxRows(logits);
  size_t hits = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (preds[i] == labels[i]) ++hits;
  }
  return labels.empty() ? 0.0
                        : static_cast<double>(hits) / labels.size();
}

}  // namespace psgraph::minitorch
