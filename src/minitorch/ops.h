// Differentiable operations. Each builds the output tensor eagerly and
// records an OpNode so Tensor::Backward() can run the tape in reverse.

#ifndef PSGRAPH_MINITORCH_OPS_H_
#define PSGRAPH_MINITORCH_OPS_H_

#include <cstdint>
#include <vector>

#include "minitorch/tensor.h"

namespace psgraph::minitorch {

/// C = A (n x k) * B (k x m).
Tensor Matmul(const Tensor& a, const Tensor& b);

/// Elementwise sum; shapes must match.
Tensor Add(const Tensor& a, const Tensor& b);

/// Adds a 1 x m bias row to every row of a (n x m).
Tensor AddBias(const Tensor& a, const Tensor& bias);

/// Elementwise max(0, x).
Tensor Relu(const Tensor& a);

/// Elementwise logistic sigmoid.
Tensor Sigmoid(const Tensor& a);

/// Column-wise concatenation: [A | B].
Tensor ConcatCols(const Tensor& a, const Tensor& b);

/// Picks rows: out.row(i) = a.row(indices[i]).
Tensor GatherRows(const Tensor& a, const std::vector<int64_t>& indices);

/// Neighbor aggregation: out.row(i) = mean over a.row(j), j in
/// segments[i]; zero row for an empty segment. This is GraphSage's mean
/// aggregator.
Tensor SegmentMean(const Tensor& a,
                   const std::vector<std::vector<int64_t>>& segments);

/// Element-wise max over each segment's rows (GraphSage's pooling
/// aggregator); zero row for an empty segment. Gradients flow to the
/// argmax element of each (segment, column).
Tensor SegmentMax(const Tensor& a,
                  const std::vector<std::vector<int64_t>>& segments);

/// L2-normalizes every row (GraphSage's embedding normalization). Rows
/// with zero norm pass through.
Tensor RowL2Normalize(const Tensor& a);

/// Mean softmax cross-entropy over rows of `logits` (n x classes) against
/// integer `labels` (size n). Returns a 1x1 loss tensor.
Tensor SoftmaxCrossEntropy(const Tensor& logits,
                           const std::vector<int32_t>& labels);

/// Row-wise argmax (predictions). Not differentiable.
std::vector<int32_t> ArgmaxRows(const Tensor& logits);

/// Fraction of rows where argmax == label.
double Accuracy(const Tensor& logits, const std::vector<int32_t>& labels);

}  // namespace psgraph::minitorch

#endif  // PSGRAPH_MINITORCH_OPS_H_
