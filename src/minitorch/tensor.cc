#include "minitorch/tensor.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

namespace psgraph::minitorch {

Tensor Tensor::Zeros(int64_t rows, int64_t cols, bool requires_grad) {
  return Full(rows, cols, 0.0f, requires_grad);
}

Tensor Tensor::Full(int64_t rows, int64_t cols, float value,
                    bool requires_grad) {
  Tensor t;
  t.impl_->rows = rows;
  t.impl_->cols = cols;
  t.impl_->data.assign(rows * cols, value);
  t.impl_->requires_grad = requires_grad;
  return t;
}

Tensor Tensor::Randn(int64_t rows, int64_t cols, Rng& rng,
                     bool requires_grad) {
  Tensor t = Zeros(rows, cols, requires_grad);
  const float scale =
      std::sqrt(2.0f / static_cast<float>(rows + cols));
  for (auto& v : t.impl_->data) {
    v = static_cast<float>(rng.NextGaussian()) * scale;
  }
  return t;
}

Tensor Tensor::FromData(int64_t rows, int64_t cols,
                        std::vector<float> data, bool requires_grad) {
  assert(static_cast<int64_t>(data.size()) == rows * cols);
  Tensor t;
  t.impl_->rows = rows;
  t.impl_->cols = cols;
  t.impl_->data = std::move(data);
  t.impl_->requires_grad = requires_grad;
  return t;
}

std::string Tensor::ShapeString() const {
  return "[" + std::to_string(rows()) + "x" + std::to_string(cols()) + "]";
}

namespace {

/// Post-order DFS over the tape (children before parents in `order`).
void Topo(detail::TensorImpl* node,
          std::unordered_set<detail::TensorImpl*>& visited,
          std::vector<detail::TensorImpl*>& order) {
  if (visited.count(node) > 0) return;
  visited.insert(node);
  if (node->grad_fn) {
    for (const Tensor& in : node->grad_fn->inputs) {
      Topo(in.impl(), visited, order);
    }
  }
  order.push_back(node);
}

}  // namespace

void Tensor::Backward() {
  assert(size() == 1 && "Backward() requires a scalar loss");
  std::unordered_set<detail::TensorImpl*> visited;
  std::vector<detail::TensorImpl*> order;
  Topo(impl_.get(), visited, order);

  impl_->EnsureGrad();
  impl_->grad[0] = 1.0f;
  // Reverse topological order: each node pushes its gradient to inputs.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    detail::TensorImpl* node = *it;
    if (node->grad_fn && !node->grad.empty()) {
      node->grad_fn->Backward(*node);
    }
  }
}

}  // namespace psgraph::minitorch
