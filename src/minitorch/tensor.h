// minitorch: a small dense 2-D tensor library with reverse-mode autograd.
//
// Plays the role PyTorch's C++ runtime plays in the paper (§III-C "C++
// runtime"): GraphSage's forward/backward runs here while the dataflow
// layer moves graph data and the PS holds the model. Only the ops
// GraphSage needs are implemented: matmul, bias add, relu, sigmoid,
// row-gather, segment-mean (neighbor aggregation), column concat, and
// softmax cross-entropy.

#ifndef PSGRAPH_MINITORCH_TENSOR_H_
#define PSGRAPH_MINITORCH_TENSOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"

namespace psgraph::minitorch {

class Tensor;

namespace detail {

/// A node of the autograd tape: remembers the op's inputs and how to
/// push the output gradient back to them.
struct OpNode {
  virtual ~OpNode() = default;
  virtual void Backward(const struct TensorImpl& out) = 0;
  std::vector<Tensor> inputs;
  const char* name = "op";
};

struct TensorImpl {
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<float> data;
  std::vector<float> grad;  ///< allocated on demand
  bool requires_grad = false;
  std::shared_ptr<OpNode> grad_fn;

  int64_t size() const { return rows * cols; }
  void EnsureGrad() {
    if (grad.empty()) grad.assign(data.size(), 0.0f);
  }
};

}  // namespace detail

/// Value-semantics handle to a shared tensor (copying shares storage,
/// like torch::Tensor).
class Tensor {
 public:
  Tensor() : impl_(std::make_shared<detail::TensorImpl>()) {}

  static Tensor Zeros(int64_t rows, int64_t cols,
                      bool requires_grad = false);
  static Tensor Full(int64_t rows, int64_t cols, float value,
                     bool requires_grad = false);
  /// Xavier/Glorot-scaled Gaussian init.
  static Tensor Randn(int64_t rows, int64_t cols, Rng& rng,
                      bool requires_grad = false);
  static Tensor FromData(int64_t rows, int64_t cols,
                         std::vector<float> data,
                         bool requires_grad = false);

  int64_t rows() const { return impl_->rows; }
  int64_t cols() const { return impl_->cols; }
  int64_t size() const { return impl_->size(); }
  bool requires_grad() const { return impl_->requires_grad; }

  float At(int64_t r, int64_t c) const {
    return impl_->data[r * impl_->cols + c];
  }
  float& MutableAt(int64_t r, int64_t c) {
    return impl_->data[r * impl_->cols + c];
  }
  const std::vector<float>& data() const { return impl_->data; }
  std::vector<float>& mutable_data() { return impl_->data; }
  const std::vector<float>& grad() const { return impl_->grad; }
  std::vector<float>& mutable_grad() {
    impl_->EnsureGrad();
    return impl_->grad;
  }
  void ZeroGrad() {
    std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
  }

  /// Runs reverse-mode autodiff from this tensor (must be 1x1). Gradients
  /// accumulate into every reachable tensor with requires_grad.
  void Backward();

  detail::TensorImpl* impl() const { return impl_.get(); }
  std::shared_ptr<detail::TensorImpl> shared_impl() const { return impl_; }

  std::string ShapeString() const;

 private:
  std::shared_ptr<detail::TensorImpl> impl_;
};

}  // namespace psgraph::minitorch

#endif  // PSGRAPH_MINITORCH_TENSOR_H_
