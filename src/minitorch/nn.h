// Minimal neural-net layers and optimizers over minitorch tensors.

#ifndef PSGRAPH_MINITORCH_NN_H_
#define PSGRAPH_MINITORCH_NN_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "minitorch/ops.h"
#include "minitorch/tensor.h"

namespace psgraph::minitorch {

/// Fully connected layer y = x W + b.
class Linear {
 public:
  Linear() = default;
  Linear(int64_t in, int64_t out, Rng& rng, bool bias = true)
      : weight_(Tensor::Randn(in, out, rng, /*requires_grad=*/true)),
        has_bias_(bias) {
    if (bias) bias_ = Tensor::Zeros(1, out, /*requires_grad=*/true);
  }

  Tensor Forward(const Tensor& x) const {
    Tensor y = Matmul(x, weight_);
    return has_bias_ ? AddBias(y, bias_) : y;
  }

  Tensor& weight() { return weight_; }
  Tensor& bias() { return bias_; }
  const Tensor& weight() const { return weight_; }
  bool has_bias() const { return has_bias_; }

  std::vector<Tensor> Parameters() {
    std::vector<Tensor> ps{weight_};
    if (has_bias_) ps.push_back(bias_);
    return ps;
  }

 private:
  Tensor weight_;
  Tensor bias_;
  bool has_bias_ = false;
};

/// Plain SGD over a parameter list.
class Sgd {
 public:
  Sgd(std::vector<Tensor> params, float lr)
      : params_(std::move(params)), lr_(lr) {}

  void Step() {
    for (Tensor& p : params_) {
      if (p.grad().empty()) continue;
      auto& data = p.mutable_data();
      const auto& grad = p.grad();
      for (size_t i = 0; i < data.size(); ++i) data[i] -= lr_ * grad[i];
    }
  }

  void ZeroGrad() {
    for (Tensor& p : params_) p.ZeroGrad();
  }

 private:
  std::vector<Tensor> params_;
  float lr_;
};

/// Adam (Kingma & Ba). Used by the Euler baseline; the PSGraph path runs
/// the same update server-side via the "adam.apply" psFunc.
class Adam {
 public:
  Adam(std::vector<Tensor> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f)
      : params_(std::move(params)),
        lr_(lr),
        beta1_(beta1),
        beta2_(beta2),
        eps_(eps) {
    for (const Tensor& p : params_) {
      m_.emplace_back(p.size(), 0.0f);
      v_.emplace_back(p.size(), 0.0f);
    }
  }

  void Step();

  void ZeroGrad() {
    for (Tensor& p : params_) p.ZeroGrad();
  }

 private:
  std::vector<Tensor> params_;
  std::vector<std::vector<float>> m_, v_;
  float lr_, beta1_, beta2_, eps_;
  int32_t t_ = 0;
};

}  // namespace psgraph::minitorch

#endif  // PSGRAPH_MINITORCH_NN_H_
