// Coreness decomposition (K-core) on the GraphX baseline.
//
// Uses the h-operator iteration (Lü et al.): every vertex repeatedly
// replaces its estimate (initialized to its degree) with the H-index of
// its neighbors' estimates; the fixpoint is exactly the core number. In
// join form each round ships every neighbor estimate as a raw message and
// groups them per vertex (groupByKey — no combiner is possible for an
// H-index), which is why this baseline is far more memory-hungry than
// PageRank's combinable messages.

#include <algorithm>

#include "graph/algo_math.h"
#include "graphx/algorithms.h"
#include "graphx/graph.h"

namespace psgraph::graphx {

Result<KCoreResult> KCore(const dataflow::Dataset<Edge>& edges,
                          const KCoreOptions& opts) {
  auto cached_edges = edges.Cache();
  PSG_RETURN_NOT_OK(cached_edges.Evaluate());

  // Initial estimate: undirected degree.
  auto degrees =
      cached_edges
          .FlatMap([](const Edge& e) {
            return std::vector<std::pair<VertexId, uint32_t>>{{e.src, 1},
                                                              {e.dst, 1}};
          })
          .ReduceByKey(
              [](const uint32_t& a, const uint32_t& b) { return a + b; });
  auto verts = degrees.Cache();
  PSG_RETURN_NOT_OK(verts.Evaluate());

  KCoreResult result;
  uint64_t prev_sum = UINT64_MAX;
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    // Ship src estimate to edges, then dst estimate; emit both-direction
    // messages carrying the *other* endpoint's current estimate.
    auto by_src = cached_edges.Map([](const Edge& e) {
      return std::pair<VertexId, VertexId>(e.src, e.dst);
    });
    auto with_src = by_src.Join<uint32_t>(verts);
    auto by_dst = with_src.Map(
        [](std::pair<VertexId, std::pair<VertexId, uint32_t>>& kv) {
          // (src, (dst, est_src)) -> (dst, (src, est_src))
          return std::pair<VertexId, std::pair<VertexId, uint32_t>>(
              kv.second.first, {kv.first, kv.second.second});
        });
    auto with_both = by_dst.Join<uint32_t>(verts);
    auto msgs =
        with_both
            .FlatMap([](std::pair<VertexId,
                                  std::pair<std::pair<VertexId, uint32_t>,
                                            uint32_t>>& kv) {
              // (dst, ((src, est_src), est_dst))
              VertexId dst = kv.first;
              VertexId src = kv.second.first.first;
              uint32_t est_src = kv.second.first.second;
              uint32_t est_dst = kv.second.second;
              return std::vector<std::pair<VertexId, uint32_t>>{
                  {dst, est_src}, {src, est_dst}};
            })
            .GroupByKey();
    auto next = LeftJoinWith(
                    verts, msgs,
                    [](const VertexId&, uint32_t& est,
                       const std::vector<std::vector<uint32_t>>& groups) {
                      if (groups.empty()) return est;
                      std::vector<uint32_t> vals = groups[0];
                      return graph::HIndexCapped(vals, est);
                    })
                    .Cache();
    PSG_RETURN_NOT_OK(next.Evaluate());
    verts.Unpersist();
    verts = next;
    result.iterations = iter + 1;

    // Fixpoint detection: estimates are non-increasing integers, so an
    // unchanged sum means convergence.
    PSG_ASSIGN_OR_RETURN(auto rows, verts.Collect());
    uint64_t sum = 0;
    for (auto& [v, est] : rows) sum += est;
    if (sum == prev_sum) break;
    prev_sum = sum;
  }

  PSG_ASSIGN_OR_RETURN(result.coreness, verts.Collect());
  for (auto& [v, c] : result.coreness) {
    result.max_coreness = std::max(result.max_coreness, c);
  }
  verts.Unpersist();
  cached_edges.Unpersist();
  return result;
}


Result<KCoreSubgraphResult> KCoreSubgraph(
    const dataflow::Dataset<Edge>& input_edges, uint32_t k,
    int max_rounds) {
  // Undirected view, cached (generation 0).
  auto edges = input_edges
                   .FlatMap([](const Edge& e) {
                     return std::vector<Edge>{e, {e.dst, e.src, 1.0f}};
                   })
                   .Cache();
  PSG_RETURN_NOT_OK(edges.Evaluate());

  KCoreSubgraphResult result;
  PSG_ASSIGN_OR_RETURN(uint64_t prev_count, edges.Count());
  for (int round = 0; round < max_rounds; ++round) {
    // Degrees of the current generation (one reduce shuffle).
    auto degs = edges.Map([](const Edge& e) {
                      return std::pair<VertexId, uint32_t>(e.src, 1);
                    })
                    .ReduceByKey([](const uint32_t& a, const uint32_t& b) {
                      return a + b;
                    });
    auto keep = degs.Filter(
        [k](const std::pair<VertexId, uint32_t>& kv) {
          return kv.second >= k;
        });
    // Restrict edges to surviving endpoints (two joins) and cache the
    // new generation. NOTE: earlier generations are deliberately NOT
    // unpersisted — each generation's lineage roots in the previous one,
    // and unpersisting would trigger cascading recomputation (the
    // standard iterative-subgraph trap that exhausts executor memory).
    auto by_src = edges.Map([](const Edge& e) {
      return std::pair<VertexId, Edge>(e.src, e);
    });
    auto with_src = by_src.Join<uint32_t>(keep);
    auto by_dst = with_src.Map(
        [](std::pair<VertexId, std::pair<Edge, uint32_t>>& kv) {
          return std::pair<VertexId, Edge>(kv.second.first.dst,
                                           kv.second.first);
        });
    auto with_both = by_dst.Join<uint32_t>(keep);
    auto next = with_both
                    .Map([](std::pair<VertexId,
                                      std::pair<Edge, uint32_t>>& kv) {
                      return kv.second.first;
                    })
                    .Cache();
    PSG_RETURN_NOT_OK(next.Evaluate());
    PSG_ASSIGN_OR_RETURN(uint64_t count, next.Count());
    edges = next;
    result.rounds = round + 1;
    if (count == prev_count) break;
    prev_count = count;
  }

  result.core_edges = prev_count / 2;
  PSG_ASSIGN_OR_RETURN(
      auto verts,
      edges
          .Map([](const Edge& e) {
            return std::pair<VertexId, uint8_t>(e.src, 1);
          })
          .ReduceByKey([](const uint8_t& a, const uint8_t&) { return a; })
          .Count());
  result.core_vertices = verts;
  return result;
}

}  // namespace psgraph::graphx
