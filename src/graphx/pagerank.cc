#include <algorithm>
#include <cstdint>

#include "graphx/algorithms.h"
#include "graphx/graph.h"

namespace psgraph::graphx {

namespace {
// Vertex attribute: (rank, out-degree).
using RankDeg = std::pair<double, uint64_t>;
}  // namespace

Result<std::vector<std::pair<VertexId, double>>> PageRank(
    const dataflow::Dataset<Edge>& edges, const PageRankOptions& opts) {
  auto cached_edges = edges.Cache();
  PSG_RETURN_NOT_OK(cached_edges.Evaluate());

  // Vertex table: rank 1.0 and out-degree (one reduce shuffle + join).
  auto degrees =
      cached_edges
          .Map([](const Edge& e) {
            return std::pair<VertexId, uint64_t>(e.src, 1);
          })
          .ReduceByKey(
              [](const uint64_t& a, const uint64_t& b) { return a + b; });
  auto base = Graph<uint8_t>::FromEdges(cached_edges, 0);
  auto verts0 = LeftJoinWith(
      base.vertices(), degrees,
      [](const VertexId&, uint8_t&, const std::vector<uint64_t>& degs) {
        return RankDeg(1.0, degs.empty() ? 0 : degs[0]);
      });

  auto verts = verts0.Cache();
  PSG_RETURN_NOT_OK(verts.Evaluate());

  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    Graph<RankDeg> g(verts, cached_edges);
    auto contribs = g.AggregateMessages<double>(
        [](const EdgeTriplet<RankDeg>& t,
           std::vector<std::pair<VertexId, double>>* out) {
          if (t.src_attr.second > 0) {
            out->push_back(
                {t.dst,
                 t.src_attr.first /
                     static_cast<double>(t.src_attr.second)});
          }
        },
        [](const double& a, const double& b) { return a + b; });
    auto next = LeftJoinWith(
                    verts, contribs,
                    [opts](const VertexId&, RankDeg& rd,
                           const std::vector<double>& msgs) {
                      double sum = msgs.empty() ? 0.0 : msgs[0];
                      return RankDeg(
                          opts.reset_prob + (1.0 - opts.reset_prob) * sum,
                          rd.second);
                    })
                    .Cache();
    PSG_RETURN_NOT_OK(next.Evaluate());
    verts.Unpersist();  // GraphX unpersists the previous generation
    verts = next;
  }

  PSG_ASSIGN_OR_RETURN(auto rows, verts.Collect());
  std::vector<std::pair<VertexId, double>> ranks;
  ranks.reserve(rows.size());
  for (auto& [v, rd] : rows) ranks.push_back({v, rd.first});
  verts.Unpersist();
  cached_edges.Unpersist();
  return ranks;
}

Result<uint64_t> ConnectedComponents(const dataflow::Dataset<Edge>& edges,
                                     int max_iterations) {
  auto cached_edges = edges.Cache();
  PSG_RETURN_NOT_OK(cached_edges.Evaluate());
  auto g0 = Graph<VertexId>::FromEdges(cached_edges, 0);
  // Initialize every vertex's label to its own id.
  auto verts = g0.vertices()
                   .Map([](std::pair<VertexId, VertexId>& kv) {
                     return std::pair<VertexId, VertexId>(kv.first,
                                                          kv.first);
                   })
                   .Cache();
  PSG_RETURN_NOT_OK(verts.Evaluate());

  for (int iter = 0; iter < max_iterations; ++iter) {
    Graph<VertexId> g(verts, cached_edges);
    auto msgs = g.AggregateMessages<VertexId>(
        [](const EdgeTriplet<VertexId>& t,
           std::vector<std::pair<VertexId, VertexId>>* out) {
          if (t.src_attr < t.dst_attr) out->push_back({t.dst, t.src_attr});
          if (t.dst_attr < t.src_attr) out->push_back({t.src, t.dst_attr});
        },
        [](const VertexId& a, const VertexId& b) {
          return a < b ? a : b;
        });
    PSG_ASSIGN_OR_RETURN(uint64_t changed, msgs.Count());
    if (changed == 0) break;
    auto next = LeftJoinWith(
                    verts, msgs,
                    [](const VertexId&, VertexId& label,
                       const std::vector<VertexId>& ms) {
                      VertexId best = label;
                      for (VertexId m : ms) best = m < best ? m : best;
                      return best;
                    })
                    .Cache();
    PSG_RETURN_NOT_OK(next.Evaluate());
    verts.Unpersist();
    verts = next;
  }

  PSG_ASSIGN_OR_RETURN(auto labels, verts.Collect());
  verts.Unpersist();
  cached_edges.Unpersist();
  std::vector<VertexId> roots;
  roots.reserve(labels.size());
  for (auto& [v, label] : labels) roots.push_back(label);
  std::sort(roots.begin(), roots.end());
  roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
  return static_cast<uint64_t>(roots.size());
}

}  // namespace psgraph::graphx
