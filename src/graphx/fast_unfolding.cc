// Fast unfolding (Louvain, Blondel et al. 2008) on the GraphX baseline.
//
// Each pass runs several modularity-optimization rounds (every vertex may
// move to the neighboring community with the best modularity gain), then
// contracts communities into super-vertices and repeats. In join form a
// single optimization round costs ~6 shuffles: neighbor-community weights,
// community totals, and three joins to assemble the per-vertex decision
// inputs. Both this baseline and the PSGraph implementation compute the
// same math, so Fig. 6's runtime comparison is apples-to-apples.
//
// Input must be a symmetrized weighted edge list (both directions
// present). Contracted self-loop records carry the doubled internal
// weight, keeping weighted degrees and modularity consistent across
// passes.

#include <algorithm>
#include <cmath>

#include "graph/algo_math.h"
#include "graphx/algorithms.h"
#include "graphx/graph.h"

namespace psgraph::graphx {

namespace {

using Com = uint64_t;
using Candidate = graph::LouvainCandidate;
/// Decision input attr: (community, (weighted degree, own Sigma_tot)).
using BaseAttr = std::pair<Com, std::pair<float, float>>;

}  // namespace

Result<FastUnfoldingResult> FastUnfolding(
    const dataflow::Dataset<Edge>& input_edges,
    const FastUnfoldingOptions& opts) {
  FastUnfoldingResult result;
  auto edges = input_edges.Cache();
  PSG_RETURN_NOT_OK(edges.Evaluate());

  double prev_q = -1.0;
  for (int pass = 0; pass < opts.max_passes; ++pass) {
    // Total directed weight; m = half of it.
    PSG_ASSIGN_OR_RETURN(
        auto wsums,
        edges.Map([](const Edge& e) {
                 return std::pair<uint8_t, double>(0, e.weight);
               })
            .ReduceByKey([](const double& a, const double& b) {
              return a + b;
            })
            .Collect());
    double m = wsums.empty() ? 0.0 : wsums[0].second / 2.0;
    if (m <= 0.0) break;

    // Weighted degree per vertex (self-loop records already carry the
    // doubled internal weight).
    auto kmap = edges
                    .Map([](const Edge& e) {
                      return std::pair<VertexId, float>(e.src, e.weight);
                    })
                    .ReduceByKey([](const float& a, const float& b) {
                      return a + b;
                    })
                    .Cache();
    PSG_RETURN_NOT_OK(kmap.Evaluate());

    // Community assignment: every vertex in its own community.
    auto verts = kmap.Map([](std::pair<VertexId, float>& kv) {
                       return std::pair<VertexId, Com>(kv.first, kv.first);
                     })
                     .Cache();
    PSG_RETURN_NOT_OK(verts.Evaluate());

    for (int round = 0; round < opts.opt_iterations; ++round) {
      // Sigma_tot per community.
      auto com_tot = LeftJoinWith(verts, kmap,
                                  [](const VertexId&, Com& com,
                                     const std::vector<float>& ks) {
                                    return std::pair<Com, float>(
                                        com, ks.empty() ? 0.0f : ks[0]);
                                  })
                         .Map([](std::pair<VertexId,
                                           std::pair<Com, float>>& kv) {
                           return kv.second;
                         })
                         .ReduceByKey([](const float& a, const float& b) {
                           return a + b;
                         })
                         .Cache();
      PSG_RETURN_NOT_OK(com_tot.Evaluate());

      // w_vC: weight from each vertex into each neighboring community.
      auto w_vc =
          edges
              .Map([](const Edge& e) {
                return std::pair<VertexId, std::pair<VertexId, float>>(
                    e.dst, {e.src, e.weight});
              })
              .template Join<Com>(verts)
              .Map([](std::pair<VertexId,
                                std::pair<std::pair<VertexId, float>,
                                          Com>>& kv) {
                // (dst, ((src, w), com_dst)) -> ((src, com_dst), w)
                return std::pair<std::pair<VertexId, Com>, float>(
                    {kv.second.first.first, kv.second.second},
                    kv.second.first.second);
              })
              .ReduceByKey(
                  [](const float& a, const float& b) { return a + b; });

      // Attach Sigma_tot to each candidate, group per vertex.
      auto candidates =
          w_vc.Map([](std::pair<std::pair<VertexId, Com>, float>& kv) {
                return std::pair<Com, std::pair<VertexId, float>>(
                    kv.first.second, {kv.first.first, kv.second});
              })
              .template Join<float>(com_tot)
              .Map([](std::pair<Com,
                                std::pair<std::pair<VertexId, float>,
                                          float>>& kv) {
                // (C, ((v, w_vC), tot_C)) -> (v, (C, (w_vC, tot_C)))
                return std::pair<VertexId, Candidate>(
                    kv.second.first.first,
                    {kv.first,
                     {kv.second.first.second, kv.second.second}});
              })
              .GroupByKey();

      // Decision base: (v, (com, (k_v, tot_own))).
      auto with_k = LeftJoinWith(
          verts, kmap,
          [](const VertexId&, Com& com, const std::vector<float>& ks) {
            return std::pair<Com, float>(com, ks.empty() ? 0.0f : ks[0]);
          });
      auto own_tot =
          verts.Map([](std::pair<VertexId, Com>& kv) {
                 return std::pair<Com, VertexId>(kv.second, kv.first);
               })
              .template Join<float>(com_tot)
              .Map([](std::pair<Com, std::pair<VertexId, float>>& kv) {
                return std::pair<VertexId, float>(kv.second.first,
                                                  kv.second.second);
              });
      auto base = LeftJoinWith(
          with_k, own_tot,
          [](const VertexId&, std::pair<Com, float>& ck,
             const std::vector<float>& tots) {
            return BaseAttr(ck.first,
                            {ck.second, tots.empty() ? 0.0f : tots[0]});
          });

      auto next =
          LeftJoinWith(base, candidates,
                       [m](const VertexId&, BaseAttr& attr,
                           const std::vector<std::vector<Candidate>>&
                               groups) {
                         if (groups.empty()) return attr.first;
                         return graph::LouvainChooseCommunity(attr.first,
                                                attr.second.first,
                                                attr.second.second, m,
                                                groups[0]);
                       })
              .Cache();
      PSG_RETURN_NOT_OK(next.Evaluate());

      // Count moves (stop early when converged).
      PSG_ASSIGN_OR_RETURN(
          auto diff,
          verts.template Join<Com>(next)
              .Filter([](const std::pair<VertexId,
                                         std::pair<Com, Com>>& kv) {
                return kv.second.first != kv.second.second;
              })
              .Count());
      com_tot.Unpersist();
      verts.Unpersist();
      verts = next;
      if (diff == 0) break;
    }

    // Modularity of the current assignment.
    auto com_tot = LeftJoinWith(verts, kmap,
                                [](const VertexId&, Com& com,
                                   const std::vector<float>& ks) {
                                  return std::pair<Com, float>(
                                      com, ks.empty() ? 0.0f : ks[0]);
                                })
                       .Map([](std::pair<VertexId,
                                         std::pair<Com, float>>& kv) {
                         return kv.second;
                       })
                       .ReduceByKey([](const float& a, const float& b) {
                         return a + b;
                       });
    auto contracted =
        edges
            .Map([](const Edge& e) {
              return std::pair<VertexId, std::pair<VertexId, float>>(
                  e.src, {e.dst, e.weight});
            })
            .template Join<Com>(verts)
            .Map([](std::pair<VertexId,
                              std::pair<std::pair<VertexId, float>, Com>>&
                        kv) {
              // (src, ((dst, w), com_src)) -> (dst, (com_src, w))
              return std::pair<VertexId, std::pair<Com, float>>(
                  kv.second.first.first,
                  {kv.second.second, kv.second.first.second});
            })
            .template Join<Com>(verts)
            .Map([](std::pair<VertexId,
                              std::pair<std::pair<Com, float>, Com>>& kv) {
              // (dst, ((com_src, w), com_dst))
              return std::pair<std::pair<Com, Com>, float>(
                  {kv.second.first.first, kv.second.second},
                  kv.second.first.second);
            })
            .ReduceByKey([](const float& a, const float& b) {
              return a + b;
            })
            .Cache();
    PSG_RETURN_NOT_OK(contracted.Evaluate());

    PSG_ASSIGN_OR_RETURN(auto contracted_rows, contracted.Collect());
    double inside = 0.0;
    for (auto& [cc, w] : contracted_rows) {
      if (cc.first == cc.second) inside += w;
    }
    PSG_ASSIGN_OR_RETURN(auto tot_rows, com_tot.Collect());
    double q = inside / (2.0 * m);
    for (auto& [c, tot] : tot_rows) {
      double frac = tot / (2.0 * m);
      q -= frac * frac;
    }
    result.modularity = q;
    result.num_communities = tot_rows.size();
    result.passes = pass + 1;

    kmap.Unpersist();
    verts.Unpersist();
    bool converged = (q - prev_q) < opts.min_gain && pass > 0;
    prev_q = q;
    if (converged) {
      contracted.Unpersist();
      break;
    }

    // Community aggregation: the contracted multigraph becomes next
    // pass's input (self-loop records keep doubled internal weight).
    auto new_edges =
        contracted
            .Map([](std::pair<std::pair<Com, Com>, float>& kv) {
              return Edge{kv.first.first, kv.first.second, kv.second};
            })
            .Cache();
    PSG_RETURN_NOT_OK(new_edges.Evaluate());
    contracted.Unpersist();
    edges.Unpersist();
    edges = new_edges;
  }

  edges.Unpersist();
  return result;
}

}  // namespace psgraph::graphx
