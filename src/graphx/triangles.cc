// Triangle counting and common-neighbor scoring on the GraphX baseline.
//
// Both algorithms ship entire neighbor sets through the join pipeline:
// each edge receives a copy of both endpoints' adjacency vectors. For a
// power-law graph the replicated hub adjacency dominates — this is the
// memory explosion that makes the baseline OOM on these workloads in the
// paper (Fig. 6: triangle count and K-core fail on DS1, everything fails
// on DS2).

#include <algorithm>

#include "common/hash.h"
#include "graphx/algorithms.h"
#include "graphx/graph.h"

namespace psgraph::graphx {

namespace {

/// Sorted-vector intersection size.
uint64_t IntersectionSize(const std::vector<VertexId>& a,
                          const std::vector<VertexId>& b) {
  uint64_t n = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++n;
      ++i;
      ++j;
    }
  }
  return n;
}

/// Deterministic pair-sampling predicate shared with the PSGraph
/// implementation so both engines score identical candidate sets.
bool PairSelected(VertexId src, VertexId dst, double fraction) {
  if (fraction >= 1.0) return true;
  return (HashCombine(Hash64(src), dst) % 10000) <
         static_cast<uint64_t>(fraction * 10000);
}

/// Per-pair common-neighbor counts: joins each candidate (src, dst) pair
/// with both endpoints' sorted adjacency and intersects. Shared by
/// TriangleCount (undirected_sets = true: full adjacency over all edges)
/// and CommonNeighbor (out-neighbor sets over sampled pairs).
Result<std::vector<uint64_t>> PerEdgeCommonCounts(
    const dataflow::Dataset<Edge>& edges, bool undirected_sets,
    double pair_fraction = 1.0) {
  // Neighbor sets per vertex, sorted and deduplicated. One groupBy
  // shuffle; cached like GraphX would.
  auto nbrs =
      edges
          .FlatMap([undirected_sets](const Edge& e) {
            std::vector<std::pair<VertexId, VertexId>> out{
                {e.src, e.dst}};
            if (undirected_sets) out.push_back({e.dst, e.src});
            return out;
          })
          .GroupByKey()
          .Map([](std::pair<VertexId, std::vector<VertexId>>& kv) {
            std::sort(kv.second.begin(), kv.second.end());
            kv.second.erase(
                std::unique(kv.second.begin(), kv.second.end()),
                kv.second.end());
            return kv;
          })
          .Cache();
  PSG_RETURN_NOT_OK(nbrs.Evaluate());

  // Ship N(src) to each candidate pair, re-key by dst, ship N(dst),
  // intersect. Left joins: a vertex without out-neighbors contributes an
  // empty set, not a dropped pair.
  auto pairs = edges
                   .Filter([pair_fraction](const Edge& e) {
                     return PairSelected(e.src, e.dst, pair_fraction);
                   })
                   .Map([](const Edge& e) {
                     return std::pair<VertexId, VertexId>(e.src, e.dst);
                   });
  auto with_src = LeftJoinWith(
      pairs, nbrs,
      [](const VertexId&, VertexId& dst,
         const std::vector<std::vector<VertexId>>& ns) {
        return std::pair<VertexId, std::vector<VertexId>>(
            dst, ns.empty() ? std::vector<VertexId>() : ns[0]);
      });
  auto by_dst =
      with_src.Map([](std::pair<VertexId,
                                std::pair<VertexId,
                                          std::vector<VertexId>>>& kv) {
        // (src, (dst, N(src))) -> (dst, N(src))
        return std::pair<VertexId, std::vector<VertexId>>(
            kv.second.first, std::move(kv.second.second));
      });
  auto counts = LeftJoinWith(
                    by_dst, nbrs,
                    [](const VertexId&, std::vector<VertexId>& n_src,
                       const std::vector<std::vector<VertexId>>& ns) {
                      return ns.empty()
                                 ? uint64_t{0}
                                 : IntersectionSize(n_src, ns[0]);
                    })
                    .Map([](std::pair<VertexId, uint64_t>& kv) {
                      return kv.second;
                    });
  auto result = counts.Collect();
  nbrs.Unpersist();
  return result;
}

}  // namespace

Result<uint64_t> TriangleCount(const dataflow::Dataset<Edge>& edges) {
  // Canonicalize: undirected simple graph, one record per edge u < v.
  auto canon = edges
                   .Filter([](const Edge& e) { return e.src != e.dst; })
                   .Map([](const Edge& e) {
                     Edge c = e;
                     if (c.src > c.dst) std::swap(c.src, c.dst);
                     return c;
                   })
                   .Map([](const Edge& e) {
                     return std::pair<std::pair<VertexId, VertexId>,
                                      uint8_t>({e.src, e.dst}, 1);
                   })
                   .ReduceByKey([](const uint8_t& a, const uint8_t&) {
                     return a;
                   })
                   .Map([](std::pair<std::pair<VertexId, VertexId>,
                                     uint8_t>& kv) {
                     return Edge{kv.first.first, kv.first.second, 1.0f};
                   });
  PSG_ASSIGN_OR_RETURN(
      std::vector<uint64_t> counts,
      PerEdgeCommonCounts(canon, /*undirected_sets=*/true));
  uint64_t sum = 0;
  for (uint64_t c : counts) sum += c;
  // Each triangle contributes one common neighbor at each of its three
  // edges.
  return sum / 3;
}

Result<CommonNeighborStats> CommonNeighbor(
    const dataflow::Dataset<Edge>& edges,
    const CommonNeighborOptions& opts) {
  PSG_ASSIGN_OR_RETURN(
      std::vector<uint64_t> counts,
      PerEdgeCommonCounts(edges, /*undirected_sets=*/false,
                          opts.pair_fraction));
  CommonNeighborStats stats;
  stats.pairs = counts.size();
  for (uint64_t c : counts) {
    stats.total_common += c;
    stats.max_common = std::max(stats.max_common, c);
  }
  return stats;
}

}  // namespace psgraph::graphx
