// GraphX-style property graph on the mini-Spark dataflow engine.
//
// This is the *baseline* the paper compares against: graphs are a vertex
// table plus an edge table, and message passing is implemented with table
// joins (CoGroupedRDD-style shuffles). Each AggregateMessages round runs
// two joins (ship vertex attributes to edges by src, then by dst) and one
// reduce shuffle for the messages — the shuffle volume and join hash
// tables are exactly the costs the paper blames for GraphX's slowdown and
// OOM on billion-scale graphs.

#ifndef PSGRAPH_GRAPHX_GRAPH_H_
#define PSGRAPH_GRAPHX_GRAPH_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "dataflow/dataset.h"
#include "graph/types.h"

namespace psgraph::graphx {

using graph::Edge;
using graph::VertexId;

/// One edge with both endpoint attributes attached (GraphX's EdgeTriplet).
template <typename VD>
struct EdgeTriplet {
  VertexId src = 0;
  VertexId dst = 0;
  float weight = 1.0f;
  VD src_attr{};
  VD dst_attr{};
};

/// Left outer join expressed on datasets: for every (k, v) in `left`,
/// emits fn(k, v, ws) where ws are all right-side values for k (possibly
/// empty). One coGroup shuffle.
template <typename K, typename V, typename W, typename F,
          typename Out = std::invoke_result_t<F, const K&, V&,
                                              const std::vector<W>&>>
dataflow::Dataset<std::pair<K, Out>> LeftJoinWith(
    const dataflow::Dataset<std::pair<K, V>>& left,
    const dataflow::Dataset<std::pair<K, W>>& right, F fn) {
  using Grouped = std::pair<K, std::pair<std::vector<V>, std::vector<W>>>;
  return left.template CoGroup<W>(right).FlatMap([fn](Grouped& g) {
    std::vector<std::pair<K, Out>> out;
    out.reserve(g.second.first.size());
    for (V& v : g.second.first) {
      out.push_back({g.first, fn(g.first, v, g.second.second)});
    }
    return out;
  });
}

/// A property graph: vertex table + edge table, both lazily partitioned
/// datasets. VD must be a dataflow-serializable type.
template <typename VD>
class Graph {
 public:
  using Vertices = dataflow::Dataset<std::pair<VertexId, VD>>;
  using Edges = dataflow::Dataset<Edge>;

  Graph(Vertices vertices, Edges edges)
      : vertices_(std::move(vertices)), edges_(std::move(edges)) {}

  const Vertices& vertices() const { return vertices_; }
  const Edges& edges() const { return edges_; }
  dataflow::DataflowContext* context() const {
    return vertices_.context();
  }

  /// Builds a graph from an edge dataset, initializing every distinct
  /// endpoint's attribute to `init`. Costs one reduce shuffle (vertex-id
  /// dedup), like GraphX's Graph.fromEdges.
  static Graph FromEdges(const Edges& edges, VD init) {
    auto vertices =
        edges
            .FlatMap([init](const Edge& e) {
              return std::vector<std::pair<VertexId, VD>>{
                  {e.src, init}, {e.dst, init}};
            })
            .ReduceByKey([](const VD& a, const VD&) { return a; });
    return Graph(vertices, edges);
  }

  /// GraphX's aggregateMessages: `send` inspects one triplet and emits
  /// (target vertex, message) pairs; `merge` combines messages per
  /// vertex. Executes 2 joins + 1 reduce shuffle.
  template <typename M, typename SendFn, typename MergeFn>
  dataflow::Dataset<std::pair<VertexId, M>> AggregateMessages(
      SendFn send, MergeFn merge) const {
    using WithSrc = std::pair<VertexId, std::pair<Edge, VD>>;
    // Ship src attributes to edges.
    auto edges_by_src =
        edges_.Map([](const Edge& e) {
          return std::pair<VertexId, Edge>(e.src, e);
        });
    auto with_src = edges_by_src.template Join<VD>(vertices_);
    // Re-key by dst, ship dst attributes.
    auto by_dst = with_src.Map([](std::pair<VertexId,
                                            std::pair<Edge, VD>>& kv) {
      return std::pair<VertexId, std::pair<Edge, VD>>(kv.second.first.dst,
                                                      kv.second);
    });
    auto with_both = by_dst.template Join<VD>(vertices_);
    // Assemble triplets and send messages.
    auto messages = with_both.FlatMap(
        [send](std::pair<VertexId,
                         std::pair<std::pair<Edge, VD>, VD>>& kv) {
          EdgeTriplet<VD> t;
          t.src = kv.second.first.first.src;
          t.dst = kv.second.first.first.dst;
          t.weight = kv.second.first.first.weight;
          t.src_attr = kv.second.first.second;
          t.dst_attr = kv.second.second;
          std::vector<std::pair<VertexId, M>> out;
          send(t, &out);
          return out;
        });
    (void)sizeof(WithSrc);
    return messages.ReduceByKey(merge);
  }

  /// Out-degrees as a dataset (one reduce shuffle).
  dataflow::Dataset<std::pair<VertexId, uint64_t>> OutDegrees() const {
    return edges_
        .Map([](const Edge& e) {
          return std::pair<VertexId, uint64_t>(e.src, 1);
        })
        .ReduceByKey([](const uint64_t& a, const uint64_t& b) {
          return a + b;
        });
  }

  /// Degrees counting both directions.
  dataflow::Dataset<std::pair<VertexId, uint64_t>> Degrees() const {
    return edges_
        .FlatMap([](const Edge& e) {
          return std::vector<std::pair<VertexId, uint64_t>>{{e.src, 1},
                                                            {e.dst, 1}};
        })
        .ReduceByKey([](const uint64_t& a, const uint64_t& b) {
          return a + b;
        });
  }

  /// Replaces vertex attributes by joining with `other` (left join;
  /// vertices without a match keep their attribute via `fn(k, v, {})`).
  template <typename W, typename F>
  Graph JoinVertices(
      const dataflow::Dataset<std::pair<VertexId, W>>& other, F fn) const {
    auto joined = LeftJoinWith(vertices_, other, fn);
    return Graph(joined, edges_);
  }

  /// Restricts the graph to edges whose endpoints satisfy `keep`
  /// (GraphX subgraph). Ships the predicate attribute through the same
  /// two-join pattern, then filters; the surviving edge set is cached —
  /// iterative peeling algorithms accumulate these cached generations,
  /// which is what drives K-core out of memory in the baseline.
  template <typename KeepFn>
  Graph SubgraphByVertices(KeepFn keep) const {
    auto keep_set = vertices_.Filter([keep](const std::pair<VertexId, VD>&
                                                kv) { return keep(kv); });
    auto surviving = AggregateEdgesWithBothAttrs(keep_set);
    return Graph(keep_set, surviving);
  }

 private:
  /// Edges whose endpoints both appear in `verts` (two joins).
  dataflow::Dataset<Edge> AggregateEdgesWithBothAttrs(
      const Vertices& verts) const {
    auto by_src = edges_.Map([](const Edge& e) {
      return std::pair<VertexId, Edge>(e.src, e);
    });
    auto with_src = by_src.template Join<VD>(verts);
    auto by_dst = with_src.Map(
        [](std::pair<VertexId, std::pair<Edge, VD>>& kv) {
          return std::pair<VertexId, Edge>(kv.second.first.dst,
                                           kv.second.first);
        });
    auto with_both = by_dst.template Join<VD>(verts);
    return with_both.Map(
        [](std::pair<VertexId, std::pair<Edge, VD>>& kv) {
          return kv.second.first;
        });
  }

  Vertices vertices_;
  Edges edges_;
};

}  // namespace psgraph::graphx

#endif  // PSGRAPH_GRAPHX_GRAPH_H_
