// Traditional graph algorithms on the GraphX baseline (join/shuffle
// implementations). These are the "GraphX" bars/cells of Fig. 6.
//
// Every function takes the edge dataset (plus options) and returns either
// the algorithm output or a Status — in particular
// Status::MemoryLimitExceeded when a join hash table or cached RDD
// generation exceeds an executor budget, which the benches report as the
// paper's OOM cells.

#ifndef PSGRAPH_GRAPHX_ALGORITHMS_H_
#define PSGRAPH_GRAPHX_ALGORITHMS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"
#include "dataflow/dataset.h"
#include "graph/types.h"

namespace psgraph::graphx {

using graph::Edge;
using graph::VertexId;

struct PageRankOptions {
  int max_iterations = 20;
  double reset_prob = 0.15;
};

/// Static PageRank (GraphX's staticPageRank): per iteration one
/// aggregateMessages (2 joins + 1 reduce shuffle) and one vertex join.
Result<std::vector<std::pair<VertexId, double>>> PageRank(
    const dataflow::Dataset<Edge>& edges, const PageRankOptions& opts = {});

/// Total number of triangles (input is canonicalized internally to an
/// undirected simple graph). Ships whole neighbor sets through two joins
/// — the memory-explosion path of the baseline.
Result<uint64_t> TriangleCount(const dataflow::Dataset<Edge>& edges);

struct CommonNeighborOptions {
  /// Fraction of edges scored as candidate pairs (the paper's workload
  /// processes "a batch of edges"; link prediction scores candidates,
  /// not the whole edge set). Selection is by a deterministic hash so
  /// both engines score the same pairs.
  double pair_fraction = 1.0;
};

struct CommonNeighborStats {
  uint64_t pairs = 0;          ///< scored vertex pairs
  uint64_t total_common = 0;   ///< sum of common-neighbor counts
  uint64_t max_common = 0;
};

/// Computes |N_out(u) ∩ N_out(v)| for the sampled candidate pairs.
Result<CommonNeighborStats> CommonNeighbor(
    const dataflow::Dataset<Edge>& edges,
    const CommonNeighborOptions& opts = {});

struct KCoreOptions {
  int max_iterations = 30;
};

struct KCoreResult {
  std::vector<std::pair<VertexId, uint32_t>> coreness;
  uint32_t max_coreness = 0;
  int iterations = 0;
};

/// Coreness decomposition by iterated h-index refinement (converges to
/// the exact core numbers). Each round sends *vectors* of neighbor
/// estimates through the join pipeline and caches a new vertex
/// generation — the baseline's memory-hungry path.
Result<KCoreResult> KCore(const dataflow::Dataset<Edge>& edges,
                          const KCoreOptions& opts = {});

struct KCoreSubgraphResult {
  uint64_t core_vertices = 0;  ///< vertices in the k-core
  uint64_t core_edges = 0;     ///< undirected edges in the k-core
  int rounds = 0;
};

/// The k-core subgraph by iterative peeling (remove vertices of degree
/// < k until a fixpoint). Each round materializes and caches a new edge
/// generation via two joins; earlier generations cannot be unpersisted
/// without triggering cascading lineage recomputation, so resident
/// memory grows with the number of peel rounds — the well-known failure
/// mode that drives GraphX out of memory on this workload (Fig. 6).
Result<KCoreSubgraphResult> KCoreSubgraph(
    const dataflow::Dataset<Edge>& edges, uint32_t k,
    int max_rounds = 50);

struct FastUnfoldingOptions {
  int max_passes = 3;          ///< modularity-optimization + aggregation
  int opt_iterations = 5;      ///< vertex-move rounds per pass
  double min_gain = 1e-4;      ///< stop when a pass gains less than this
};

struct FastUnfoldingResult {
  double modularity = 0.0;
  uint64_t num_communities = 0;
  int passes = 0;
};

/// Louvain community detection (paper §IV-C) in join form. Input must be
/// an undirected (symmetrized) weighted edge list.
Result<FastUnfoldingResult> FastUnfolding(
    const dataflow::Dataset<Edge>& edges,
    const FastUnfoldingOptions& opts = {});

/// Connected components by iterative min-label propagation; returns the
/// number of components. (Not part of the paper's evaluation; used by
/// tests to validate the message-passing layer.)
Result<uint64_t> ConnectedComponents(const dataflow::Dataset<Edge>& edges,
                                     int max_iterations = 50);

}  // namespace psgraph::graphx

#endif  // PSGRAPH_GRAPHX_ALGORITHMS_H_
