#include "common/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <unordered_map>

namespace psgraph {

namespace {

std::string DefaultProcessName(int32_t node) {
  if (node < 0) return "(unbound)";
  return "node " + std::to_string(node);
}

/// The topmost ancestor of `span` that still lives on the same node —
/// the anchor whose track the whole same-node chain inherits. Chains can
/// cross nodes (a PS handler nested under an executor-side RPC span);
/// the cross-node link starts a fresh anchor in the callee's process.
size_t AnchorOf(size_t i, const std::vector<TraceSpan>& spans,
                const std::unordered_map<uint64_t, size_t>& by_id) {
  size_t current = i;
  for (;;) {
    const TraceSpan& s = spans[current];
    if (s.parent == 0) return current;
    auto it = by_id.find(s.parent);
    if (it == by_id.end()) return current;  // parent span was dropped
    if (spans[it->second].node != s.node) return current;
    current = it->second;
  }
}

}  // namespace

JsonValue TraceToChromeJson(const std::vector<TraceSpan>& spans,
                            const TraceExportOptions& options) {
  std::unordered_map<uint64_t, size_t> by_id;
  by_id.reserve(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) by_id[spans[i].id] = i;

  // Track assignment: greedy interval packing of the per-node anchor
  // spans in deterministic order (begin asc, longer first, id asc), then
  // every span inherits its anchor's track.
  std::vector<size_t> anchor(spans.size());
  std::map<int32_t, std::vector<size_t>> anchors_by_node;
  for (size_t i = 0; i < spans.size(); ++i) {
    anchor[i] = AnchorOf(i, spans, by_id);
    if (anchor[i] == i) anchors_by_node[spans[i].node].push_back(i);
  }
  std::vector<int64_t> track_of(spans.size(), 0);
  for (auto& [node, list] : anchors_by_node) {
    std::sort(list.begin(), list.end(), [&](size_t a, size_t b) {
      const TraceSpan& sa = spans[a];
      const TraceSpan& sb = spans[b];
      if (sa.begin_ticks != sb.begin_ticks) {
        return sa.begin_ticks < sb.begin_ticks;
      }
      if (sa.end_ticks != sb.end_ticks) return sa.end_ticks > sb.end_ticks;
      return sa.id < sb.id;
    });
    std::vector<int64_t> track_end;  // exclusive end tick per track
    for (size_t idx : list) {
      size_t track = track_end.size();
      for (size_t t = 0; t < track_end.size(); ++t) {
        if (track_end[t] <= spans[idx].begin_ticks) {
          track = t;
          break;
        }
      }
      if (track == track_end.size()) track_end.push_back(0);
      track_end[track] =
          std::max(spans[idx].end_ticks, spans[idx].begin_ticks);
      track_of[idx] = static_cast<int64_t>(track);
    }
  }
  for (size_t i = 0; i < spans.size(); ++i) {
    track_of[i] = track_of[anchor[i]];
  }

  // Emission order: metadata first, then X events sorted by
  // (pid, tid, ts, longer-first, id) — fully determined by the span set.
  std::vector<size_t> order(spans.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const TraceSpan& sa = spans[a];
    const TraceSpan& sb = spans[b];
    if (sa.node != sb.node) return sa.node < sb.node;
    if (track_of[a] != track_of[b]) return track_of[a] < track_of[b];
    if (sa.begin_ticks != sb.begin_ticks) {
      return sa.begin_ticks < sb.begin_ticks;
    }
    if (sa.end_ticks != sb.end_ticks) return sa.end_ticks > sb.end_ticks;
    return sa.id < sb.id;
  });

  JsonValue events = JsonValue::Array();
  std::function<std::string(int32_t)> name_of = options.process_name;
  if (!name_of) name_of = DefaultProcessName;
  for (const auto& [node, list] : anchors_by_node) {
    (void)list;
    JsonValue meta = JsonValue::Object();
    meta.Set("name", "process_name");
    meta.Set("ph", "M");
    meta.Set("pid", static_cast<int64_t>(node) + 1);
    meta.Set("tid", static_cast<int64_t>(0));
    JsonValue args = JsonValue::Object();
    args.Set("name", name_of(node));
    meta.Set("args", std::move(args));
    events.Append(std::move(meta));
  }
  for (size_t i : order) {
    const TraceSpan& s = spans[i];
    JsonValue ev = JsonValue::Object();
    ev.Set("name", s.name);
    ev.Set("ph", "X");
    ev.Set("pid", static_cast<int64_t>(s.node) + 1);
    ev.Set("tid", track_of[i]);
    ev.Set("ts", s.begin_ticks);
    ev.Set("dur", std::max<int64_t>(0, s.end_ticks - s.begin_ticks));
    JsonValue args = JsonValue::Object();
    args.Set("span_id", s.id);
    args.Set("parent", s.parent);
    args.Set("node", static_cast<int64_t>(s.node));
    ev.Set("args", std::move(args));
    events.Append(std::move(ev));
  }

  JsonValue doc = JsonValue::Object();
  doc.Set("traceEvents", std::move(events));
  doc.Set("displayTimeUnit", "ms");
  JsonValue other = JsonValue::Object();
  other.Set("schema", "psgraph.trace");
  other.Set("tick_unit", "ps");
  other.Set("spans_dropped", options.spans_dropped);
  doc.Set("otherData", std::move(other));
  return doc;
}

Status WriteChromeTrace(const std::vector<TraceSpan>& spans,
                        const TraceExportOptions& options,
                        const std::string& path) {
  const std::string text = TraceToChromeJson(spans, options).Dump(2);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool closed_ok = std::fclose(f) == 0;
  if (written != text.size() || !closed_ok) {
    return Status::IoError("short write to '" + path + "'");
  }
  return Status::OK();
}

std::string TraceOutPathFromEnv() {
  const char* v = std::getenv("PSGRAPH_TRACE_OUT");
  return v == nullptr ? std::string() : std::string(v);
}

}  // namespace psgraph
