#include "common/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <unordered_map>

#include "common/env.h"

namespace psgraph {

namespace {

std::string DefaultProcessName(int32_t node) {
  if (node < 0) return "(unbound)";
  return "node " + std::to_string(node);
}

/// The topmost ancestor of `span` that still lives on the same node —
/// the anchor whose track the whole same-node chain inherits. Chains can
/// cross nodes (a PS handler nested under an executor-side RPC span);
/// the cross-node link starts a fresh anchor in the callee's process.
size_t AnchorOf(size_t i, const std::vector<TraceSpan>& spans,
                const std::unordered_map<uint64_t, size_t>& by_id) {
  size_t current = i;
  for (;;) {
    const TraceSpan& s = spans[current];
    if (s.parent == 0) return current;
    auto it = by_id.find(s.parent);
    if (it == by_id.end()) return current;  // parent span was dropped
    if (spans[it->second].node != s.node) return current;
    current = it->second;
  }
}

}  // namespace

JsonValue TraceToChromeJson(const std::vector<TraceSpan>& spans,
                            const TraceExportOptions& options) {
  std::unordered_map<uint64_t, size_t> by_id;
  by_id.reserve(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) by_id[spans[i].id] = i;

  // Track assignment: greedy interval packing of the per-node anchor
  // spans in deterministic order (begin asc, longer first, id asc), then
  // every span inherits its anchor's track.
  std::vector<size_t> anchor(spans.size());
  std::map<int32_t, std::vector<size_t>> anchors_by_node;
  for (size_t i = 0; i < spans.size(); ++i) {
    anchor[i] = AnchorOf(i, spans, by_id);
    if (anchor[i] == i) anchors_by_node[spans[i].node].push_back(i);
  }
  std::vector<int64_t> track_of(spans.size(), 0);
  for (auto& [node, list] : anchors_by_node) {
    std::sort(list.begin(), list.end(), [&](size_t a, size_t b) {
      const TraceSpan& sa = spans[a];
      const TraceSpan& sb = spans[b];
      if (sa.begin_ticks != sb.begin_ticks) {
        return sa.begin_ticks < sb.begin_ticks;
      }
      if (sa.end_ticks != sb.end_ticks) return sa.end_ticks > sb.end_ticks;
      return sa.id < sb.id;
    });
    std::vector<int64_t> track_end;  // exclusive end tick per track
    for (size_t idx : list) {
      size_t track = track_end.size();
      for (size_t t = 0; t < track_end.size(); ++t) {
        if (track_end[t] <= spans[idx].begin_ticks) {
          track = t;
          break;
        }
      }
      if (track == track_end.size()) track_end.push_back(0);
      track_end[track] =
          std::max(spans[idx].end_ticks, spans[idx].begin_ticks);
      track_of[idx] = static_cast<int64_t>(track);
    }
  }
  for (size_t i = 0; i < spans.size(); ++i) {
    track_of[i] = track_of[anchor[i]];
  }

  // Emission order: metadata first, then X events sorted by
  // (pid, tid, ts, longer-first, id) — fully determined by the span set.
  std::vector<size_t> order(spans.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const TraceSpan& sa = spans[a];
    const TraceSpan& sb = spans[b];
    if (sa.node != sb.node) return sa.node < sb.node;
    if (track_of[a] != track_of[b]) return track_of[a] < track_of[b];
    if (sa.begin_ticks != sb.begin_ticks) {
      return sa.begin_ticks < sb.begin_ticks;
    }
    if (sa.end_ticks != sb.end_ticks) return sa.end_ticks > sb.end_ticks;
    return sa.id < sb.id;
  });

  JsonValue events = JsonValue::Array();
  std::function<std::string(int32_t)> name_of = options.process_name;
  if (!name_of) name_of = DefaultProcessName;
  // One process_name record per pid that appears anywhere in the trace —
  // spans or instant markers (a killed node may carry only the latter).
  std::map<int32_t, bool> trace_nodes;
  for (const auto& [node, list] : anchors_by_node) {
    (void)list;
    trace_nodes[node] = true;
  }
  for (const TraceInstant& inst : options.instants) {
    trace_nodes[inst.node] = true;
  }
  for (const auto& [node, unused] : trace_nodes) {
    (void)unused;
    JsonValue meta = JsonValue::Object();
    meta.Set("name", "process_name");
    meta.Set("ph", "M");
    meta.Set("pid", static_cast<int64_t>(node) + 1);
    meta.Set("tid", static_cast<int64_t>(0));
    JsonValue args = JsonValue::Object();
    args.Set("name", name_of(node));
    meta.Set("args", std::move(args));
    events.Append(std::move(meta));
  }
  for (size_t i : order) {
    const TraceSpan& s = spans[i];
    JsonValue ev = JsonValue::Object();
    ev.Set("name", s.name);
    ev.Set("ph", "X");
    ev.Set("pid", static_cast<int64_t>(s.node) + 1);
    ev.Set("tid", track_of[i]);
    ev.Set("ts", s.begin_ticks);
    ev.Set("dur", std::max<int64_t>(0, s.end_ticks - s.begin_ticks));
    JsonValue args = JsonValue::Object();
    args.Set("span_id", s.id);
    args.Set("parent", s.parent);
    args.Set("node", static_cast<int64_t>(s.node));
    ev.Set("args", std::move(args));
    events.Append(std::move(ev));
  }

  // Flow arrows for cross-node parent links: an "s" (start) on the
  // parent span's track and an "f" (finish, bp:"e") on the child's,
  // matched by id = child span id. The start timestamp is clamped into
  // the parent's interval — Perfetto binds a flow point to the slice
  // enclosing it, and the child's begin can lie past the parent's end
  // (the agent span closes when the response lands, but clock skew from
  // other planned calls can push a callee's dispatch later).
  std::vector<size_t> flow_children;
  for (size_t i = 0; i < spans.size(); ++i) {
    const TraceSpan& s = spans[i];
    if (s.parent == 0) continue;
    auto it = by_id.find(s.parent);
    if (it == by_id.end()) continue;  // parent span was dropped
    if (spans[it->second].node == s.node) continue;
    flow_children.push_back(i);
  }
  std::sort(flow_children.begin(), flow_children.end(),
            [&](size_t a, size_t b) { return spans[a].id < spans[b].id; });
  for (size_t i : flow_children) {
    const TraceSpan& child = spans[i];
    const size_t pi = by_id.at(child.parent);
    const TraceSpan& parent = spans[pi];
    const int64_t start_ts = std::max(
        parent.begin_ticks, std::min(child.begin_ticks, parent.end_ticks));
    JsonValue args = JsonValue::Object();
    args.Set("span_id", child.id);
    args.Set("parent", child.parent);
    JsonValue start = JsonValue::Object();
    start.Set("name", child.name);
    start.Set("ph", "s");
    start.Set("id", child.id);
    start.Set("pid", static_cast<int64_t>(parent.node) + 1);
    start.Set("tid", track_of[pi]);
    start.Set("ts", start_ts);
    start.Set("args", args);
    events.Append(std::move(start));
    JsonValue finish = JsonValue::Object();
    finish.Set("name", child.name);
    finish.Set("ph", "f");
    finish.Set("bp", "e");
    finish.Set("id", child.id);
    finish.Set("pid", static_cast<int64_t>(child.node) + 1);
    finish.Set("tid", track_of[i]);
    finish.Set("ts", child.begin_ticks);
    finish.Set("args", std::move(args));
    events.Append(std::move(finish));
  }

  // Instant markers (control-plane journal entries), process-scoped so
  // they draw across every track of the affected node.
  std::vector<size_t> inst_order(options.instants.size());
  for (size_t i = 0; i < inst_order.size(); ++i) inst_order[i] = i;
  std::sort(inst_order.begin(), inst_order.end(), [&](size_t a, size_t b) {
    const TraceInstant& ia = options.instants[a];
    const TraceInstant& ib = options.instants[b];
    if (ia.node != ib.node) return ia.node < ib.node;
    if (ia.ticks != ib.ticks) return ia.ticks < ib.ticks;
    if (ia.name != ib.name) return ia.name < ib.name;
    return a < b;
  });
  for (size_t i : inst_order) {
    const TraceInstant& inst = options.instants[i];
    JsonValue ev = JsonValue::Object();
    ev.Set("name", inst.name);
    ev.Set("ph", "i");
    ev.Set("s", "p");
    ev.Set("pid", static_cast<int64_t>(inst.node) + 1);
    ev.Set("tid", static_cast<int64_t>(0));
    ev.Set("ts", inst.ticks);
    events.Append(std::move(ev));
  }

  JsonValue doc = JsonValue::Object();
  doc.Set("traceEvents", std::move(events));
  doc.Set("displayTimeUnit", "ms");
  JsonValue other = JsonValue::Object();
  other.Set("schema", "psgraph.trace");
  other.Set("tick_unit", "ps");
  other.Set("spans_dropped", options.spans_dropped);
  JsonValue alert_rules = JsonValue::Array();
  for (const std::string& rule : options.alert_rules) {
    alert_rules.Append(rule);
  }
  other.Set("alert_rules", std::move(alert_rules));
  doc.Set("otherData", std::move(other));
  return doc;
}

Status WriteChromeTrace(const std::vector<TraceSpan>& spans,
                        const TraceExportOptions& options,
                        const std::string& path) {
  const std::string text = TraceToChromeJson(spans, options).Dump(2);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool closed_ok = std::fclose(f) == 0;
  if (written != text.size() || !closed_ok) {
    return Status::IoError("short write to '" + path + "'");
  }
  return Status::OK();
}

std::string TraceOutPathFromEnv() {
  return EnvString("PSGRAPH_TRACE_OUT");
}

}  // namespace psgraph
