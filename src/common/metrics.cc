#include "common/metrics.h"

namespace psgraph {

void Metrics::Add(const std::string& name, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

uint64_t Metrics::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::map<std::string, uint64_t> Metrics::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void Metrics::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
}

Metrics& Metrics::Global() {
  static Metrics instance;
  return instance;
}

}  // namespace psgraph
