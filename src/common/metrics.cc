#include "common/metrics.h"

#include <algorithm>
#include <bit>

namespace psgraph {

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample (1-based, nearest-rank with interpolation
  // toward the bucket's value range).
  const double target = q * static_cast<double>(count);
  double seen = 0.0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const double in_bucket = static_cast<double>(buckets[i]);
    if (seen + in_bucket >= target) {
      const uint64_t lo = Histogram::BucketLowerBound(i);
      const uint64_t hi = Histogram::BucketUpperBound(i);
      const double frac =
          in_bucket == 0.0 ? 0.0 : (target - seen) / in_bucket;
      double v = static_cast<double>(lo) +
                 frac * (static_cast<double>(hi) - static_cast<double>(lo));
      // Exact bounds beat bucket interpolation at the extremes (single
      // sample, overflow bucket).
      v = std::max(v, static_cast<double>(min));
      v = std::min(v, static_cast<double>(max));
      return v;
    }
    seen += in_bucket;
  }
  return static_cast<double>(max);
}

HistogramPercentiles HistogramSnapshot::Percentiles() const {
  HistogramPercentiles out;
  if (count == 0) return out;
  // Ascending quantiles share one walk; each fill reproduces Quantile()
  // exactly (same target rank, same interpolation, same clamping).
  const double qs[] = {0.50, 0.95, 0.99, 0.999};
  double* slots[] = {&out.p50, &out.p95, &out.p99, &out.p999};
  size_t next = 0;
  double seen = 0.0;
  for (size_t i = 0; i < buckets.size() && next < 4; ++i) {
    if (buckets[i] == 0) continue;
    const double in_bucket = static_cast<double>(buckets[i]);
    while (next < 4 &&
           seen + in_bucket >= qs[next] * static_cast<double>(count)) {
      const double target = qs[next] * static_cast<double>(count);
      const uint64_t lo = Histogram::BucketLowerBound(i);
      const uint64_t hi = Histogram::BucketUpperBound(i);
      const double frac = (target - seen) / in_bucket;
      double v = static_cast<double>(lo) +
                 frac * (static_cast<double>(hi) - static_cast<double>(lo));
      v = std::max(v, static_cast<double>(min));
      v = std::min(v, static_cast<double>(max));
      *slots[next] = v;
      ++next;
    }
    seen += in_bucket;
  }
  for (; next < 4; ++next) *slots[next] = static_cast<double>(max);
  return out;
}

size_t Histogram::BucketOf(uint64_t v) {
  if (v < kSubBuckets) return static_cast<size_t>(v);
  // Octave = position of the most significant bit; sub-bucket = the
  // kSubBucketBits bits below it.
  const int msb = 63 - std::countl_zero(v);
  const uint64_t sub = (v >> (msb - kSubBucketBits)) & (kSubBuckets - 1);
  const size_t idx = static_cast<size_t>(msb - kSubBucketBits + 1) *
                         kSubBuckets +
                     static_cast<size_t>(sub);
  return std::min(idx, kNumBuckets - 1);
}

uint64_t Histogram::BucketLowerBound(size_t i) {
  if (i < kSubBuckets) return i;
  const uint64_t group = i >> kSubBucketBits;
  const uint64_t sub = i & (kSubBuckets - 1);
  return (kSubBuckets + sub) << (group - 1);
}

uint64_t Histogram::BucketUpperBound(size_t i) {
  if (i + 1 >= kNumBuckets) return UINT64_MAX;
  return BucketLowerBound(i + 1);
}

void Histogram::Record(uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value,
                                     std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  const uint64_t mn = min_.load(std::memory_order_relaxed);
  snap.min = mn == UINT64_MAX ? 0 : mn;
  snap.max = max_.load(std::memory_order_relaxed);
  size_t last = 0;
  snap.buckets.resize(kNumBuckets, 0);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    if (snap.buckets[i] != 0) last = i + 1;
  }
  snap.buckets.resize(last);
  return snap;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

void Metrics::Add(const std::string& name, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

uint64_t Metrics::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::map<std::string, uint64_t> Metrics::CounterSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void Metrics::SetGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

double Metrics::GetGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

std::map<std::string, double> Metrics::GaugeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_;
}

Histogram& Metrics::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void Metrics::Observe(const std::string& name, uint64_t value) {
  GetHistogram(name).Record(value);
}

std::map<std::string, HistogramSnapshot> Metrics::HistogramSnapshots()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, hist] : histograms_) {
    if (hist->count() > 0) out.emplace(name, hist->Snapshot());
  }
  return out;
}

void Metrics::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  for (auto& [_, hist] : histograms_) hist->Reset();
}

Metrics& Metrics::Global() {
  static Metrics instance;
  return instance;
}

}  // namespace psgraph
