// Unified parsing of PSGRAPH_* environment knobs.
//
// Every knob in the tree goes through these helpers so a typo'd value
// fails loudly at startup instead of strtoull-ing to 0 and silently
// changing behaviour. Unset (or empty) variables always mean "use the
// default"; anything else must parse cleanly and respect the declared
// minimum or the process aborts with a message naming the variable.

#ifndef PSGRAPH_COMMON_ENV_H_
#define PSGRAPH_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace psgraph {

/// Unsigned integer knob. Unset/empty -> `def`. Garbage (non-digits,
/// trailing junk, overflow) or a value below `min_value` aborts.
uint64_t EnvU64(const char* name, uint64_t def, uint64_t min_value = 0);

/// Boolean knob. Unset/empty -> `def`. Accepts 0/1/true/false/on/off/
/// yes/no (case-insensitive); anything else aborts.
bool EnvFlag(const char* name, bool def);

/// String knob. Unset -> `def` (empty values pass through as empty).
std::string EnvString(const char* name, const std::string& def = "");

}  // namespace psgraph

#endif  // PSGRAPH_COMMON_ENV_H_
