// Integer and byte-string hashing used for data partitioning.
//
// Partitioners must agree on these across the whole system, so they live in
// one place.

#ifndef PSGRAPH_COMMON_HASH_H_
#define PSGRAPH_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace psgraph {

/// Stateless 64-bit mix of an integer key (SplitMix64 finalizer).
inline uint64_t Hash64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Combines two hashes (boost-style).
inline uint64_t HashCombine(uint64_t h, uint64_t v) {
  return h ^ (Hash64(v) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

/// FNV-1a over bytes, for string keys (matrix names etc.).
inline uint64_t HashBytes(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace psgraph

#endif  // PSGRAPH_COMMON_HASH_H_
