// Integer and byte-string hashing used for data partitioning.
//
// Partitioners must agree on these across the whole system, so they live in
// one place.

#ifndef PSGRAPH_COMMON_HASH_H_
#define PSGRAPH_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace psgraph {

/// Stateless 64-bit mix of an integer key (SplitMix64 finalizer).
inline uint64_t Hash64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Combines two hashes (boost-style).
inline uint64_t HashCombine(uint64_t h, uint64_t v) {
  return h ^ (Hash64(v) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

/// FNV-1a over bytes, for string keys (matrix names etc.).
inline uint64_t HashBytes(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// FNV-1a over a raw byte span (blob checksums etc.).
inline uint64_t HashBytes(const uint8_t* data, size_t n) {
  return HashBytes(
      std::string_view(reinterpret_cast<const char*>(data), n));
}

/// Fixed-width lowercase hex of a 64-bit hash, for manifests and other
/// text formats that embed checksums.
inline std::string HashToHex(uint64_t h) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[h & 0xf];
    h >>= 4;
  }
  return out;
}

/// Inverse of HashToHex. Returns false on any non-hex character or
/// wrong length.
inline bool HashFromHex(std::string_view hex, uint64_t* out) {
  if (hex.size() != 16) return false;
  uint64_t h = 0;
  for (char c : hex) {
    uint64_t nibble;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<uint64_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      nibble = static_cast<uint64_t>(c - 'A') + 10;
    } else {
      return false;
    }
    h = (h << 4) | nibble;
  }
  *out = h;
  return true;
}

}  // namespace psgraph

#endif  // PSGRAPH_COMMON_HASH_H_
