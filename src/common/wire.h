// Compact wire blocks shared by the PS RPC format and snapshot blobs.
//
// A "float block" is [varint count][count * fp32 raw bytes]: the varint
// length costs 1-2 bytes instead of the fixed 8-byte vector prefix, and
// the payload stays a straight memcpy. Decoding goes through memcpy
// rather than pointer reinterpretation because wire offsets are not
// float-aligned after varint framing (UBSan-clean by construction).
//
// Key lists use the delta framing in common/varint.h (PutDeltaList).

#ifndef PSGRAPH_COMMON_WIRE_H_
#define PSGRAPH_COMMON_WIRE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/byte_buffer.h"
#include "common/status.h"
#include "common/varint.h"

namespace psgraph {

inline void WriteFloatBlock(ByteBuffer* buf, const float* data, size_t n) {
  PutVarint64(buf, n);
  buf->WriteRaw(data, n * sizeof(float));
}

template <typename Alloc>
void WriteFloatBlock(ByteBuffer* buf, const std::vector<float, Alloc>& v) {
  WriteFloatBlock(buf, v.data(), v.size());
}

/// Reads a WriteFloatBlock payload, appending the floats to `out` (any
/// vector-like float container).
template <typename Container>
Status ReadFloatBlock(ByteReader* reader, Container* out) {
  const size_t start = reader->position();
  uint64_t n = 0;
  PSG_RETURN_NOT_OK(GetVarint64(reader, &n));
  if (n > reader->remaining() / sizeof(float)) {
    return Status::OutOfRange(
        "float block: count " + std::to_string(n) + " at offset " +
        std::to_string(start) + " exceeds remaining " +
        std::to_string(reader->remaining()) + " bytes");
  }
  const size_t base = out->size();
  out->resize(base + static_cast<size_t>(n));
  return reader->ReadRaw(out->data() + base,
                         static_cast<size_t>(n) * sizeof(float));
}

}  // namespace psgraph

#endif  // PSGRAPH_COMMON_WIRE_H_
