#include "common/trace.h"

#include <algorithm>
#include <cstdlib>

#include "common/env.h"

namespace psgraph {

namespace {

struct OpenSpan {
  const Tracer* tracer;
  uint64_t id;
};

// Innermost-open-span stack per thread. Entries carry the tracer they
// belong to so independent tracers (one per PsGraphContext) nesting on
// the same thread do not see each other's spans as parents.
thread_local std::vector<OpenSpan> t_open_spans;

uint64_t CurrentParent(const Tracer* tracer) {
  for (auto it = t_open_spans.rbegin(); it != t_open_spans.rend(); ++it) {
    if (it->tracer == tracer) return it->id;
  }
  return 0;
}

}  // namespace

uint64_t Tracer::Begin(const std::string& name, int32_t node,
                       int64_t begin_ticks) {
  return Begin(name, node, begin_ticks, /*parent=*/0);
}

uint64_t Tracer::CurrentSpanId() const { return CurrentParent(this); }

uint64_t Tracer::Begin(const std::string& name, int32_t node,
                       int64_t begin_ticks, uint64_t parent) {
  if (!enabled()) return 0;
  std::unique_lock<std::mutex> lock(mu_);
  if (spans_.size() >= max_spans_) {
    // Detail is dropped at the cap, but the span must still count:
    // hand out a synthetic id so End() can fold it into the summaries.
    // Over-cap spans are deliberately NOT pushed onto the open-span
    // stack — parent attribution of kept spans matches the pre-cap
    // export exactly.
    const uint64_t id = kOverflowIdBit | ++next_overflow_id_;
    overflow_open_.emplace(id, OverflowSpan{name, node, begin_ticks});
    lock.unlock();
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return id;
  }
  TraceSpan span;
  span.id = spans_.size() + 1;
  span.parent = parent != 0 ? parent : CurrentParent(this);
  span.name = name;
  span.node = node;
  span.begin_ticks = begin_ticks;
  span.end_ticks = begin_ticks;
  spans_.push_back(span);
  lock.unlock();
  t_open_spans.push_back({this, span.id});
  return span.id;
}

void Tracer::End(uint64_t id, int64_t end_ticks) {
  if (id == 0) return;
  if ((id & kOverflowIdBit) != 0) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = overflow_open_.find(id);
    if (it == overflow_open_.end()) return;
    FoldLocked(it->second.name, it->second.node,
               end_ticks - it->second.begin_ticks);
    overflow_open_.erase(it);
    return;
  }
  // Pop this tracer's innermost matching entry (spans close LIFO per
  // thread; an out-of-order close only affects parent attribution of
  // later spans, never correctness of the record itself).
  for (auto it = t_open_spans.rbegin(); it != t_open_spans.rend(); ++it) {
    if (it->tracer == this && it->id == id) {
      t_open_spans.erase(std::next(it).base());
      break;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (id > spans_.size()) return;
  TraceSpan& span = spans_[id - 1];
  span.end_ticks = end_ticks;
  FoldLocked(span.name, span.node, end_ticks - span.begin_ticks);
}

void Tracer::FoldLocked(const std::string& name, int32_t node,
                        int64_t dur) {
  dur = std::max<int64_t>(0, dur);
  SpanStats& stats = summary_[name];
  stats.count++;
  stats.total_ticks += dur;
  stats.max_ticks = std::max(stats.max_ticks, dur);
  SpanStats& node_stats = node_summary_[{name, node}];
  node_stats.count++;
  node_stats.total_ticks += dur;
  node_stats.max_ticks = std::max(node_stats.max_ticks, dur);
}

std::vector<TraceSpan> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::map<std::string, Tracer::SpanStats> Tracer::Summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  return summary_;
}

std::map<std::pair<std::string, int32_t>, Tracer::SpanStats>
Tracer::NodeSummary() const {
  std::lock_guard<std::mutex> lock(mu_);
  return node_summary_;
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  summary_.clear();
  node_summary_.clear();
  overflow_open_.clear();
  next_overflow_id_ = 0;
  dropped_.store(0, std::memory_order_relaxed);
}

size_t Tracer::MaxSpansFromEnv() {
  // 0 (or unset) keeps the built-in cap.
  const uint64_t n = EnvU64("PSGRAPH_TRACE_MAX_SPANS", 0);
  return n == 0 ? kMaxSpans : static_cast<size_t>(n);
}

bool Tracer::EnabledByEnv() { return EnvFlag("PSGRAPH_TRACE", false); }

Tracer& Tracer::Global() {
  static Tracer* instance = [] {
    auto* t = new Tracer();
    t->set_enabled(EnabledByEnv());
    return t;
  }();
  return *instance;
}

}  // namespace psgraph
