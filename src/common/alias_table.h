// Walker's alias method: O(1) sampling from a discrete distribution.
// Used by LINE's negative sampler (noise distribution ~ degree^0.75).

#ifndef PSGRAPH_COMMON_ALIAS_TABLE_H_
#define PSGRAPH_COMMON_ALIAS_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace psgraph {

class AliasTable {
 public:
  AliasTable() = default;

  /// Builds from unnormalized non-negative weights. An all-zero or empty
  /// input yields an empty table (Sample returns 0).
  explicit AliasTable(const std::vector<double>& weights) {
    const size_t n = weights.size();
    double total = 0.0;
    for (double w : weights) total += w;
    if (n == 0 || total <= 0.0) return;
    prob_.resize(n);
    alias_.resize(n);
    std::vector<double> scaled(n);
    std::vector<uint32_t> small, large;
    for (size_t i = 0; i < n; ++i) {
      scaled[i] = weights[i] * n / total;
      (scaled[i] < 1.0 ? small : large).push_back(
          static_cast<uint32_t>(i));
    }
    while (!small.empty() && !large.empty()) {
      uint32_t s = small.back();
      uint32_t l = large.back();
      small.pop_back();
      large.pop_back();
      prob_[s] = scaled[s];
      alias_[s] = l;
      scaled[l] = scaled[l] + scaled[s] - 1.0;
      (scaled[l] < 1.0 ? small : large).push_back(l);
    }
    for (uint32_t i : large) prob_[i] = 1.0;
    for (uint32_t i : small) prob_[i] = 1.0;  // numerical leftovers
  }

  bool empty() const { return prob_.empty(); }
  size_t size() const { return prob_.size(); }

  /// Draws an index in [0, size()).
  uint64_t Sample(Rng& rng) const {
    if (prob_.empty()) return 0;
    uint64_t i = rng.NextBounded(prob_.size());
    return rng.NextDouble() < prob_[i] ? i : alias_[i];
  }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace psgraph

#endif  // PSGRAPH_COMMON_ALIAS_TABLE_H_
