// Fixed-size thread pool. Logical cluster nodes (executors, PS shards) are
// multiplexed over this pool; node identity is passed explicitly, never via
// thread-locals.
//
// The process-wide pool (GlobalThreadPool) backs the real parallel
// execution engine: Dataset actions fan partitions out per executor,
// RpcFabric::CallParallel overlaps handler dispatch, and benches sweep the
// effective parallelism. The *logical* parallelism is a separate knob
// (Get/SetGlobalParallelism, env PSGRAPH_THREADS): at parallelism 1 every
// engine takes its strictly sequential path, which reproduces the
// single-threaded execution order exactly — CI uses that to prove the
// simulated-clock math is identical with and without real threads.

#ifndef PSGRAPH_COMMON_THREAD_POOL_H_
#define PSGRAPH_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace psgraph {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns a future for its completion. An exception
  /// thrown by `fn` is captured and rethrown from future::get().
  std::future<void> Submit(std::function<void()> fn);

  /// Runs fn(i) for i in [0, n) across the pool and waits for all of them
  /// to finish. The calling thread participates in the work, so this is
  /// safe to call from inside a pool task (no thread-starvation deadlock)
  /// and degenerates to an inline loop on a saturated or single-thread
  /// pool. If any invocation throws, the first captured exception is
  /// rethrown after every invocation has completed.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Like ParallelFor but caps the number of pool helpers at
  /// `max_helpers` (the caller still participates); used to emulate a
  /// smaller pool for parallelism sweeps.
  void ParallelForBounded(size_t n, size_t max_helpers,
                          const std::function<void(size_t)>& fn);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  std::vector<std::thread> threads_;
  bool shutdown_ = false;
};

/// The process-wide pool, created on first use with
/// max(hardware_concurrency, 2) workers (so concurrency paths are
/// exercised even on single-core hosts). Never touched when the global
/// parallelism is 1.
ThreadPool& GlobalThreadPool();

/// Effective engine parallelism. Initialized from the PSGRAPH_THREADS
/// environment variable when set (clamped to >= 1), otherwise from
/// std::thread::hardware_concurrency(). 1 means strictly sequential
/// execution on the calling thread.
size_t GlobalParallelism();

/// Overrides the effective parallelism at runtime (benches sweep 1/2/4/8
/// in one process). `n == 0` restores the PSGRAPH_THREADS/hardware
/// default.
void SetGlobalParallelism(size_t n);

}  // namespace psgraph

#endif  // PSGRAPH_COMMON_THREAD_POOL_H_
