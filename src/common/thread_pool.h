// Fixed-size thread pool. Logical cluster nodes (executors, PS shards) are
// multiplexed over this pool; node identity is passed explicitly, never via
// thread-locals.

#ifndef PSGRAPH_COMMON_THREAD_POOL_H_
#define PSGRAPH_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace psgraph {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns a future for its completion.
  std::future<void> Submit(std::function<void()> fn);

  /// Runs fn(i) for i in [0, n) across the pool and waits for all.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  std::vector<std::thread> threads_;
  bool shutdown_ = false;
};

}  // namespace psgraph

#endif  // PSGRAPH_COMMON_THREAD_POOL_H_
