#include "common/timeseries.h"

#include <algorithm>
#include <utility>

#include "common/env.h"

namespace psgraph {

TimeSeriesStore::TimeSeriesStore(int64_t base_interval_ticks,
                                 size_t capacity)
    : base_interval_ticks_(std::max<int64_t>(1, base_interval_ticks)),
      interval_ticks_(base_interval_ticks_),
      capacity_(std::max<size_t>(4, capacity + (capacity & 1))) {}

void TimeSeriesStore::Append(const std::map<std::string, double>& values) {
  ++points_;
  // Existing series get the scraped value, or zero when the scrape no
  // longer carries them (registry reset): every series always has
  // exactly points_ values.
  for (auto& [name, vec] : series_) {
    auto it = values.find(name);
    vec.push_back(it == values.end() ? 0.0 : it->second);
  }
  // New series are zero-backfilled: a counter/gauge that did not exist
  // at earlier boundaries held its default value there.
  for (const auto& [name, value] : values) {
    auto [it, inserted] = series_.try_emplace(name);
    if (!inserted) continue;
    it->second.assign(points_ - 1, 0.0);
    it->second.push_back(value);
  }
  if (points_ < capacity_) return;
  // Compaction: keeping the second point of each pair leaves exactly
  // the points that sit on the doubled grid — the series a sampler with
  // interval 2x would have recorded.
  for (auto& [name, vec] : series_) {
    for (size_t i = 1; i < vec.size(); i += 2) vec[i / 2] = vec[i];
    vec.resize(vec.size() / 2);
  }
  points_ /= 2;
  interval_ticks_ *= 2;
  ++compactions_;
}

const std::vector<double>* TimeSeriesStore::Series(
    const std::string& name) const {
  auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

double TimeSeriesStore::Latest(const std::string& name) const {
  const std::vector<double>* s = Series(name);
  return s == nullptr || s->empty() ? 0.0 : s->back();
}

TimeSeriesSnapshot TimeSeriesStore::Snapshot() const {
  TimeSeriesSnapshot snap;
  snap.base_interval_ticks = base_interval_ticks_;
  snap.interval_ticks = interval_ticks_;
  snap.compactions = compactions_;
  snap.points = points_;
  snap.series = series_;
  return snap;
}

void TimeSeriesStore::Reset() {
  points_ = 0;
  compactions_ = 0;
  interval_ticks_ = base_interval_ticks_;
  series_.clear();
}

void MetricsSampler::Configure(Options options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  store_ = TimeSeriesStore(options.interval_ticks, options.capacity);
}

void MetricsSampler::AddSource(std::string name,
                               std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  sources_[std::move(name)] = std::move(fn);
}

void MetricsSampler::DenylistHistogram(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  hist_denylist_.insert(std::move(name));
}

void MetricsSampler::ScrapeInto(std::map<std::string, double>* out) const {
  if (options_.metrics != nullptr) {
    for (const auto& [name, value] : options_.metrics->CounterSnapshot()) {
      (*out)["counter." + name] = static_cast<double>(value);
    }
    for (const auto& [name, value] : options_.metrics->GaugeSnapshot()) {
      (*out)["gauge." + name] = value;
    }
    for (const auto& [name, hist] :
         options_.metrics->HistogramSnapshots()) {
      if (hist_denylist_.count(name) != 0) continue;
      const HistogramPercentiles p = hist.Percentiles();
      (*out)["hist." + name + ".p50"] = p.p50;
      (*out)["hist." + name + ".p99"] = p.p99;
      (*out)["hist." + name + ".p999"] = p.p999;
    }
  }
  if (options_.rpc != nullptr) {
    double calls = 0.0;
    double req_bytes = 0.0;
    double resp_bytes = 0.0;
    std::map<std::string, double> per_method;
    for (const RpcTelemetry::MethodStat& m : options_.rpc->Snapshot()) {
      calls += static_cast<double>(m.calls);
      req_bytes += static_cast<double>(m.request_bytes);
      resp_bytes += static_cast<double>(m.response_bytes);
      per_method["rpc." + m.method + ".bytes"] +=
          static_cast<double>(m.request_bytes + m.response_bytes);
    }
    (*out)["rpc.total.calls"] = calls;
    (*out)["rpc.total.request_bytes"] = req_bytes;
    (*out)["rpc.total.response_bytes"] = resp_bytes;
    for (auto& [name, value] : per_method) (*out)[name] = value;
  }
  for (const auto& [name, fn] : sources_) (*out)[name] = fn();
}

void MetricsSampler::AppendLocked(
    const std::map<std::string, double>& values) {
  const int64_t boundary = store_.NextBoundaryTicks();
  store_.Append(values);
  if (scrape_callback_) scrape_callback_(boundary);
}

void MetricsSampler::Poll(int64_t now_ticks) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (store_.NextBoundaryTicks() > now_ticks) return;
  // One scrape serves every boundary this poll crosses: the values
  // cannot have changed between boundaries that all lie in the past of
  // this single program point.
  std::map<std::string, double> values;
  ScrapeInto(&values);
  while (store_.NextBoundaryTicks() <= now_ticks) AppendLocked(values);
}

void MetricsSampler::ForceSample(int64_t now_ticks) {
  if (!enabled()) return;
  Poll(now_ticks);
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> values;
  ScrapeInto(&values);
  AppendLocked(values);
}

int64_t MetricsSampler::IntervalTicksFromEnv() {
  // PSGRAPH_TS_INTERVAL is simulated *microseconds*; 1 tick = 1 ps.
  const uint64_t us = EnvU64("PSGRAPH_TS_INTERVAL", 1000);
  return static_cast<int64_t>(us) * 1000000;
}

size_t MetricsSampler::CapacityFromEnv() {
  return static_cast<size_t>(EnvU64("PSGRAPH_TS_CAPACITY", 256, 4));
}

MetricsSampler& MetricsSampler::Global() {
  static MetricsSampler* instance = new MetricsSampler();
  return *instance;
}

}  // namespace psgraph
