// Arena: reset-per-request bump allocator for hot-path scratch.
//
// PS batch handlers and serving shards decode every request into
// short-lived vectors (key lists, value blocks, gather segments); with
// the general-purpose heap each request pays malloc/free per vector.
// An Arena hands out pointer-bump allocations from one block and
// releases everything at once in Reset() — after warm-up a request does
// zero heap calls. Reset keeps the largest block, so steady-state
// capacity is retained across requests.
//
// ArenaVector<T> is std::vector with an arena-backed allocator; it keeps
// vector semantics (growth, iteration, span conversion) while discarded
// growth generations simply stay in the arena until Reset.
//
// Not thread-safe by design: each consumer owns its arena and resets it
// under whatever serialization it already has (e.g. the RPC endpoint's
// serial mutex).

#ifndef PSGRAPH_COMMON_ARENA_H_
#define PSGRAPH_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace psgraph {

class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = 64 * 1024;

  explicit Arena(size_t min_block_bytes = kDefaultBlockBytes)
      : min_block_bytes_(min_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    if (bytes == 0) bytes = 1;
    size_t aligned = (offset_ + (align - 1)) & ~(align - 1);
    if (blocks_.empty() || aligned + bytes > blocks_.back().size) {
      NewBlock(bytes + align);
      aligned = (offset_ + (align - 1)) & ~(align - 1);
    }
    offset_ = aligned + bytes;
    allocated_ += bytes;
    return blocks_.back().data.get() + aligned;
  }

  /// Releases every allocation. Keeps only the largest block so the
  /// steady state is one block and zero heap traffic per request.
  void Reset() {
    if (blocks_.size() > 1) {
      size_t largest = 0;
      for (size_t i = 1; i < blocks_.size(); ++i) {
        if (blocks_[i].size > blocks_[largest].size) largest = i;
      }
      Block keep = std::move(blocks_[largest]);
      blocks_.clear();
      blocks_.push_back(std::move(keep));
    }
    offset_ = 0;
    allocated_ = 0;
  }

  /// Total bytes handed out since the last Reset.
  size_t bytes_allocated() const { return allocated_; }
  /// Total block capacity currently held.
  size_t bytes_capacity() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<uint8_t[]> data;
    size_t size = 0;
  };

  void NewBlock(size_t at_least) {
    size_t size = min_block_bytes_;
    if (!blocks_.empty()) size = blocks_.back().size * 2;
    if (size < at_least) size = at_least;
    Block b;
    b.data = std::make_unique<uint8_t[]>(size);
    b.size = size;
    blocks_.push_back(std::move(b));
    offset_ = 0;
  }

  size_t min_block_bytes_;
  std::vector<Block> blocks_;
  size_t offset_ = 0;     ///< bump cursor within blocks_.back()
  size_t allocated_ = 0;  ///< bytes handed out since Reset
};

/// std-compatible allocator over an Arena. Deallocate is a no-op; memory
/// comes back at Arena::Reset. The arena must outlive every container
/// using it.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t n) {
    return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, size_t) {}  // reclaimed wholesale at Reset()

  Arena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ != b.arena_;
  }

 private:
  Arena* arena_;
};

template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

/// Convenience: an empty ArenaVector bound to `arena`.
template <typename T>
ArenaVector<T> MakeArenaVector(Arena* arena) {
  return ArenaVector<T>(ArenaAllocator<T>(arena));
}

}  // namespace psgraph

#endif  // PSGRAPH_COMMON_ARENA_H_
