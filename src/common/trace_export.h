// Chrome-trace / Perfetto export of Tracer spans (the flight recorder's
// timeline format).
//
// Any traced run can be opened in chrome://tracing or ui.perfetto.dev:
// the exporter emits the Trace Event Format's JSON object form — a
// "traceEvents" array of complete ("X") duration events plus metadata
// ("M") events naming each process. Simulated nodes map to trace
// *processes* (pid = node id + 1, so the not-node-bound pid 0 stays
// distinct) and concurrent span chains on one node map to *tracks*
// (tid): root spans are packed greedily onto the lowest free track and
// descendants inherit their root's track, so overlapping work from
// different worker threads or shards renders on separate rows while
// nested spans stack naturally.
//
// Timestamps are raw simulated ticks (1 tick = 1 ps, see SimClock)
// written as exact integers into "ts"/"dur" — the export round-trips
// tick-exactly and is byte-identical across runs whenever the span set
// is (events are sorted deterministically, never emitted in map or
// thread-completion order). The viewer displays ticks as microseconds;
// "otherData.tick_unit" records the real unit.
//
// Cross-node causality renders as Perfetto *flow* events: a span whose
// parent lives on a different node (the server-side RPC dispatch span
// parented under the caller's agent span) gets an "s"/"f" arrow pair so
// the viewer draws the request crossing the node boundary. Control-plane
// journal entries (node kills, checkpoint restores, ...) can be passed
// in as TraceInstant records and render as "i" instant markers on the
// affected node's process.

#ifndef PSGRAPH_COMMON_TRACE_EXPORT_H_
#define PSGRAPH_COMMON_TRACE_EXPORT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "common/trace.h"

namespace psgraph {

/// A point-in-time marker on a node's timeline (rendered as a Perfetto
/// "i" instant event). Benches convert control-plane journal entries
/// into these; common/ stays free of sim/ dependencies.
struct TraceInstant {
  std::string name;
  int32_t node = -1;  ///< -1 renders on the not-node-bound pid 0
  int64_t ticks = 0;
};

struct TraceExportOptions {
  /// Names the trace process of a node (e.g. "executor 3", "server 1").
  /// Defaults to "node <id>" ("(unbound)" for node -1).
  std::function<std::string(int32_t node)> process_name;
  /// Carried into otherData.spans_dropped so tooling can warn that the
  /// timeline is truncated (Tracer hit its span cap).
  uint64_t spans_dropped = 0;
  /// Instant markers to interleave with the span timeline.
  std::vector<TraceInstant> instants;
  /// Declared SLO watchdog rule names, carried into
  /// otherData.alert_rules so tooling (scripts/trace_summary.py
  /// --alerts) can check every "alert_fire:<rule>" marker references a
  /// declared rule.
  std::vector<std::string> alert_rules;
};

/// Builds the Chrome-trace JSON document for `spans`.
JsonValue TraceToChromeJson(const std::vector<TraceSpan>& spans,
                            const TraceExportOptions& options = {});

/// Serializes TraceToChromeJson(spans) to `path` (pretty-printed).
Status WriteChromeTrace(const std::vector<TraceSpan>& spans,
                        const TraceExportOptions& options,
                        const std::string& path);

/// The PSGRAPH_TRACE_OUT environment knob: the export path, or "" when
/// unset (no export requested).
std::string TraceOutPathFromEnv();

}  // namespace psgraph

#endif  // PSGRAPH_COMMON_TRACE_EXPORT_H_
