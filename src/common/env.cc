#include "common/env.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace psgraph {

namespace {

[[noreturn]] void Die(const char* name, const char* value,
                      const std::string& why) {
  std::fprintf(stderr, "psgraph: invalid %s='%s': %s\n", name, value,
               why.c_str());
  std::abort();
}

std::string Lower(const char* v) {
  std::string out;
  for (const char* p = v; *p != '\0'; ++p) {
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  return out;
}

}  // namespace

uint64_t EnvU64(const char* name, uint64_t def, uint64_t min_value) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  if (!std::isdigit(static_cast<unsigned char>(*v))) {
    Die(name, v, "expected a non-negative integer");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(v, &end, 10);
  if (errno == ERANGE) Die(name, v, "out of range for uint64");
  if (end == v || *end != '\0') {
    Die(name, v, "expected a non-negative integer");
  }
  if (n < min_value) {
    Die(name, v,
        "must be >= " + std::to_string(min_value));
  }
  return static_cast<uint64_t>(n);
}

bool EnvFlag(const char* name, bool def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  const std::string s = Lower(v);
  if (s == "1" || s == "true" || s == "on" || s == "yes") return true;
  if (s == "0" || s == "false" || s == "off" || s == "no") return false;
  Die(name, v, "expected a boolean (0/1/true/false/on/off/yes/no)");
}

std::string EnvString(const char* name, const std::string& def) {
  const char* v = std::getenv(name);
  return v == nullptr ? def : std::string(v);
}

}  // namespace psgraph
