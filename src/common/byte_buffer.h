// ByteBuffer: the wire format for everything that crosses a simulated node
// boundary (RPC payloads, shuffle blocks, checkpoints).
//
// Fixed-width little-endian primitives plus length-prefixed strings and
// PODvectors. Reads are bounds-checked and return Status on truncation so a
// corrupted checkpoint never crashes the process.

#ifndef PSGRAPH_COMMON_BYTE_BUFFER_H_
#define PSGRAPH_COMMON_BYTE_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace psgraph {

/// Append-only serialization buffer.
class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(std::vector<uint8_t> bytes) : data_(std::move(bytes)) {}

  const std::vector<uint8_t>& data() const { return data_; }
  std::vector<uint8_t>&& TakeData() { return std::move(data_); }
  size_t size() const { return data_.size(); }
  void Reserve(size_t n) { data_.reserve(n); }
  void Clear() { data_.clear(); }

  template <typename T>
  void Write(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    size_t off = data_.size();
    data_.resize(off + sizeof(T));
    std::memcpy(data_.data() + off, &v, sizeof(T));
  }

  void WriteString(const std::string& s) {
    Write<uint64_t>(s.size());
    size_t off = data_.size();
    data_.resize(off + s.size());
    std::memcpy(data_.data() + off, s.data(), s.size());
  }

  /// Writes a length-prefixed vector of trivially copyable elements.
  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Write<uint64_t>(v.size());
    size_t bytes = v.size() * sizeof(T);
    size_t off = data_.size();
    data_.resize(off + bytes);
    if (bytes > 0) std::memcpy(data_.data() + off, v.data(), bytes);
  }

  void WriteRaw(const void* src, size_t n) {
    size_t off = data_.size();
    data_.resize(off + n);
    if (n > 0) std::memcpy(data_.data() + off, src, n);
  }

 private:
  std::vector<uint8_t> data_;
};

/// Bounds-checked reader over a byte span produced by ByteBuffer.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}
  explicit ByteReader(const ByteBuffer& buf) : ByteReader(buf.data()) {}

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }

  template <typename T>
  Status Read(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (remaining() < sizeof(T)) {
      return Status::OutOfRange("ByteReader: truncated primitive");
    }
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::OK();
  }

  Status ReadString(std::string* out) {
    uint64_t n = 0;
    PSG_RETURN_NOT_OK(Read(&n));
    if (remaining() < n) {
      return Status::OutOfRange("ByteReader: truncated string");
    }
    out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return Status::OK();
  }

  template <typename T>
  Status ReadVector(std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = 0;
    PSG_RETURN_NOT_OK(Read(&n));
    if (remaining() < n * sizeof(T)) {
      return Status::OutOfRange("ByteReader: truncated vector");
    }
    out->resize(n);
    if (n > 0) std::memcpy(out->data(), data_ + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return Status::OK();
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace psgraph

#endif  // PSGRAPH_COMMON_BYTE_BUFFER_H_
