// ByteBuffer: the wire format for everything that crosses a simulated node
// boundary (RPC payloads, shuffle blocks, checkpoints).
//
// Fixed-width little-endian primitives plus length-prefixed strings and
// POD vectors. Reads are bounds-checked and fail loudly: a truncated or
// corrupt buffer returns a Status naming the byte offset where decoding
// stopped (aligning with the common/env.h fail-loud convention), never
// garbage and never a crash.

#ifndef PSGRAPH_COMMON_BYTE_BUFFER_H_
#define PSGRAPH_COMMON_BYTE_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace psgraph {

/// Append-only serialization buffer.
class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(std::vector<uint8_t> bytes) : data_(std::move(bytes)) {}

  const std::vector<uint8_t>& data() const { return data_; }
  std::vector<uint8_t>&& TakeData() { return std::move(data_); }
  size_t size() const { return data_.size(); }
  void Reserve(size_t n) { data_.reserve(n); }
  void Clear() { data_.clear(); }

  template <typename T>
  void Write(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    size_t off = data_.size();
    data_.resize(off + sizeof(T));
    std::memcpy(data_.data() + off, &v, sizeof(T));
  }

  void WriteString(const std::string& s) {
    Write<uint64_t>(s.size());
    size_t off = data_.size();
    data_.resize(off + s.size());
    std::memcpy(data_.data() + off, s.data(), s.size());
  }

  /// Writes a length-prefixed vector of trivially copyable elements
  /// (any allocator — arena-backed scratch vectors serialize the same).
  template <typename T, typename Alloc>
  void WriteVector(const std::vector<T, Alloc>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Write<uint64_t>(v.size());
    size_t bytes = v.size() * sizeof(T);
    size_t off = data_.size();
    data_.resize(off + bytes);
    if (bytes > 0) std::memcpy(data_.data() + off, v.data(), bytes);
  }

  void WriteRaw(const void* src, size_t n) {
    size_t off = data_.size();
    data_.resize(off + n);
    if (n > 0) std::memcpy(data_.data() + off, src, n);
  }

 private:
  std::vector<uint8_t> data_;
};

/// Bounds-checked reader over a byte span produced by ByteBuffer.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}
  explicit ByteReader(const ByteBuffer& buf) : ByteReader(buf.data()) {}

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }

  template <typename T>
  Status Read(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (remaining() < sizeof(T)) {
      return Truncated("primitive", sizeof(T));
    }
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::OK();
  }

  Status ReadString(std::string* out) {
    const size_t start = pos_;
    uint64_t n = 0;
    PSG_RETURN_NOT_OK(Read(&n));
    if (remaining() < n) {
      pos_ = start;
      return Truncated("string body", n);
    }
    out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return Status::OK();
  }

  /// Copies `n` raw bytes into `dst`.
  Status ReadRaw(void* dst, size_t n) {
    if (remaining() < n) {
      return Truncated("raw bytes", n);
    }
    if (n > 0) std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  template <typename T, typename Alloc>
  Status ReadVector(std::vector<T, Alloc>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t start = pos_;
    uint64_t n = 0;
    PSG_RETURN_NOT_OK(Read(&n));
    // Divide instead of multiplying: `n * sizeof(T)` could wrap for a
    // corrupt length and sail past the bounds check.
    if (n > remaining() / sizeof(T)) {
      pos_ = start;
      return Status::OutOfRange(
          "ByteReader: vector of " + std::to_string(n) + " x " +
          std::to_string(sizeof(T)) + "B at offset " + std::to_string(start) +
          " exceeds remaining " + std::to_string(size_ - pos_) + " bytes");
    }
    out->resize(n);
    if (n > 0) std::memcpy(out->data(), data_ + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return Status::OK();
  }

 private:
  Status Truncated(const char* what, uint64_t need) const {
    return Status::OutOfRange(
        "ByteReader: truncated " + std::string(what) + " at offset " +
        std::to_string(pos_) + ": need " + std::to_string(need) +
        " bytes, have " + std::to_string(remaining()));
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace psgraph

#endif  // PSGRAPH_COMMON_BYTE_BUFFER_H_
