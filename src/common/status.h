// Status: value-type error propagation for all fallible library paths.
//
// The library does not throw exceptions (RocksDB/Arrow idiom); every
// operation that can fail returns a Status or a Result<T> (see result.h).

#ifndef PSGRAPH_COMMON_STATUS_H_
#define PSGRAPH_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>

namespace psgraph {

/// Error category carried by a non-ok Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kIoError = 4,
  kMemoryLimitExceeded = 5,  ///< a simulated container ran out of memory (OOM)
  kFailedPrecondition = 6,
  kOutOfRange = 7,
  kNotImplemented = 8,
  kAborted = 9,
  kUnavailable = 10,  ///< a node is down / not reachable
  kInternal = 11,
};

/// Human-readable name of a StatusCode ("MemoryLimitExceeded", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of an operation: either OK or a (code, message) pair.
///
/// Statuses are cheap to copy in the OK case (no allocation) and carry a
/// heap-allocated message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status MemoryLimitExceeded(std::string msg) {
    return Status(StatusCode::kMemoryLimitExceeded, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsMemoryLimitExceeded() const {
    return code_ == StatusCode::kMemoryLimitExceeded;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string msg_;
};

}  // namespace psgraph

/// Propagates a non-OK Status to the caller.
#define PSG_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::psgraph::Status _st = (expr);             \
    if (!_st.ok()) return _st;                  \
  } while (false)

/// Aborts the process if `expr` is not OK. For examples/benches/tests only.
#define PSG_CHECK_OK(expr)                                             \
  do {                                                                 \
    ::psgraph::Status _st = (expr);                                    \
    if (!_st.ok()) {                                                   \
      std::fprintf(stderr, "PSG_CHECK_OK failed at %s:%d: %s\n",       \
                   __FILE__, __LINE__, _st.ToString().c_str());        \
      std::abort();                                                    \
    }                                                                  \
  } while (false)

#endif  // PSGRAPH_COMMON_STATUS_H_
