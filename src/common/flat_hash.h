// FlatHashMap: open-addressing hash map for the PS hot path.
//
// The PS spends most of a pull/push batch looking up uint64 keys; the
// node-based std::unordered_map pays a pointer chase plus an allocation
// per entry. This table follows the ehash idiom (see SNIPPETS.md): one
// flat power-of-two directory, metadata packed separately from the
// entries so a probe scans a cache line of 64 one-byte tags before
// touching any entry, robin-hood probing, and tombstone-free deletion
// by backward shift — lookups never degrade after heavy erase traffic.
//
// Layout per slot: a one-byte probe distance (0 = empty, d+1 = occupied
// at distance d from its home bucket) in `dist_`, and the
// {key, value} pair in `slots_`. Robin-hood keeps every probe chain
// sorted by distance, so a miss is detected as soon as a slot's
// recorded distance falls below the query's — probes stay short even at
// high load.
//
// Scope: keys are uint64_t (every PS/serving key already is), the API
// is the std::unordered_map subset the tree uses (find / try_emplace /
// emplace / erase / clear / range-for / at / operator[] / reserve /
// count), and iteration is in slot order — deterministic for a
// deterministic operation sequence, which the sim's byte-identical
// report contract relies on.

#ifndef PSGRAPH_COMMON_FLAT_HASH_H_
#define PSGRAPH_COMMON_FLAT_HASH_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <stdexcept>
#include <utility>

#include "common/hash.h"

namespace psgraph {

template <typename Value>
class FlatHashMap {
 public:
  using key_type = uint64_t;
  using mapped_type = Value;
  /// Non-const key: entries relocate on rehash/backward-shift anyway, so
  /// no caller may rely on address or key stability through mutation.
  using value_type = std::pair<uint64_t, Value>;

  template <bool Const>
  class Iter {
   public:
    using Map = std::conditional_t<Const, const FlatHashMap, FlatHashMap>;
    using reference =
        std::conditional_t<Const, const value_type&, value_type&>;
    using pointer = std::conditional_t<Const, const value_type*, value_type*>;

    Iter() = default;
    Iter(Map* map, size_t slot) : map_(map), slot_(slot) { SkipEmpty(); }
    /// const_iterator from iterator.
    template <bool C = Const, typename = std::enable_if_t<C>>
    Iter(const Iter<false>& other) : map_(other.map_), slot_(other.slot_) {}

    reference operator*() const { return map_->slots_[slot_]; }
    pointer operator->() const { return &map_->slots_[slot_]; }
    Iter& operator++() {
      ++slot_;
      SkipEmpty();
      return *this;
    }
    Iter operator++(int) {
      Iter tmp = *this;
      ++*this;
      return tmp;
    }
    friend bool operator==(const Iter& a, const Iter& b) {
      return a.slot_ == b.slot_;
    }
    friend bool operator!=(const Iter& a, const Iter& b) {
      return a.slot_ != b.slot_;
    }

   private:
    friend class FlatHashMap;
    template <bool C2>
    friend class Iter;
    void SkipEmpty() {
      while (map_ != nullptr && slot_ < map_->capacity_ &&
             map_->dist_[slot_] == 0) {
        ++slot_;
      }
    }
    Map* map_ = nullptr;
    size_t slot_ = 0;
  };
  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  FlatHashMap() = default;
  ~FlatHashMap() { Deallocate(); }

  FlatHashMap(const FlatHashMap& other) { CopyFrom(other); }
  FlatHashMap& operator=(const FlatHashMap& other) {
    if (this != &other) {
      Deallocate();
      CopyFrom(other);
    }
    return *this;
  }
  FlatHashMap(FlatHashMap&& other) noexcept { MoveFrom(other); }
  FlatHashMap& operator=(FlatHashMap&& other) noexcept {
    if (this != &other) {
      Deallocate();
      MoveFrom(other);
    }
    return *this;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, capacity_); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, capacity_); }

  iterator find(uint64_t key) {
    size_t slot = FindSlot(key);
    return slot == kNoSlot ? end() : iterator(this, slot);
  }
  const_iterator find(uint64_t key) const {
    size_t slot = FindSlot(key);
    return slot == kNoSlot ? end() : const_iterator(this, slot);
  }
  size_t count(uint64_t key) const {
    return FindSlot(key) == kNoSlot ? 0 : 1;
  }
  bool contains(uint64_t key) const { return FindSlot(key) != kNoSlot; }

  Value& at(uint64_t key) {
    size_t slot = FindSlot(key);
    if (slot == kNoSlot) throw std::out_of_range("FlatHashMap::at");
    return slots_[slot].second;
  }
  const Value& at(uint64_t key) const {
    size_t slot = FindSlot(key);
    if (slot == kNoSlot) throw std::out_of_range("FlatHashMap::at");
    return slots_[slot].second;
  }

  Value& operator[](uint64_t key) { return try_emplace(key).first->second; }

  /// Inserts {key, Value(args...)} if absent; the mapped value is only
  /// constructed on actual insertion (unordered_map::try_emplace
  /// semantics).
  template <typename... Args>
  std::pair<iterator, bool> try_emplace(uint64_t key, Args&&... args) {
    ReserveForInsert();
    size_t slot = FindSlot(key);
    if (slot != kNoSlot) return {iterator(this, slot), false};
    slot = InsertNew(key, Value(std::forward<Args>(args)...));
    return {iterator(this, slot), true};
  }

  std::pair<iterator, bool> emplace(uint64_t key, Value value) {
    ReserveForInsert();
    size_t slot = FindSlot(key);
    if (slot != kNoSlot) return {iterator(this, slot), false};
    slot = InsertNew(key, std::move(value));
    return {iterator(this, slot), true};
  }

  std::pair<iterator, bool> insert(value_type kv) {
    return emplace(kv.first, std::move(kv.second));
  }

  /// Backward-shift deletion: the probe chain after the hole moves one
  /// slot left, so no tombstone is ever left behind. Invalidates
  /// iterators.
  size_t erase(uint64_t key) {
    size_t slot = FindSlot(key);
    if (slot == kNoSlot) return 0;
    EraseSlot(slot);
    return 1;
  }
  void erase(const_iterator it) { EraseSlot(it.slot_); }
  void erase(iterator it) { EraseSlot(it.slot_); }

  void clear() {
    for (size_t i = 0; i < capacity_; ++i) {
      if (dist_[i] != 0) slots_[i].~value_type();
      dist_[i] = 0;
    }
    size_ = 0;
  }

  void reserve(size_t n) {
    size_t needed = kMinCapacity;
    // Grow until n fits under the 7/8 load ceiling.
    while (needed - needed / 8 < n) needed <<= 1;
    if (needed > capacity_) Rehash(needed);
  }

 private:
  static constexpr size_t kNoSlot = static_cast<size_t>(-1);
  static constexpr size_t kMinCapacity = 16;
  /// dist_ stores distance+1 in a byte; growing keeps chains far below
  /// this, but a pathological chain still forces a rehash, not an
  /// overflow.
  static constexpr uint8_t kMaxDistance = 254;

  size_t Home(uint64_t key) const { return Hash64(key) & mask_; }

  size_t FindSlot(uint64_t key) const {
    if (capacity_ == 0) return kNoSlot;
    size_t i = Home(key);
    for (uint8_t d = 1;; ++d, i = (i + 1) & mask_) {
      uint8_t have = dist_[i];
      // Empty, or an entry closer to home than we are: robin-hood order
      // guarantees `key` cannot be further down this chain.
      if (have < d) return kNoSlot;
      if (have == d && slots_[i].first == key) return i;
      if (d == kMaxDistance) return kNoSlot;
    }
  }

  void ReserveForInsert() {
    if (capacity_ == 0 || size_ + 1 > capacity_ - capacity_ / 8) {
      Rehash(capacity_ == 0 ? kMinCapacity : capacity_ * 2);
    }
  }

  /// Robin-hood insert of a key known to be absent. Returns the slot the
  /// key finally landed in.
  size_t InsertNew(uint64_t key, Value&& value) {
    size_t result = kNoSlot;
    uint64_t cur_key = key;
    Value cur_val = std::move(value);
    size_t i = Home(cur_key);
    for (uint8_t d = 1;; ++d, i = (i + 1) & mask_) {
      if (d >= kMaxDistance) {
        // Chain hit the metadata ceiling: grow, re-insert the in-flight
        // entry, and look the original key up again (its slot moved).
        uint64_t pending_key = cur_key;
        Value pending_val = std::move(cur_val);
        Rehash(capacity_ * 2);
        InsertNew(pending_key, std::move(pending_val));
        return FindSlot(key);
      }
      if (dist_[i] == 0) {
        new (&slots_[i]) value_type(cur_key, std::move(cur_val));
        dist_[i] = d;
        ++size_;
        if (result == kNoSlot) result = i;
        return result;
      }
      if (dist_[i] < d) {
        // Rich entry: swap it out and keep probing for its new home.
        std::swap(cur_key, slots_[i].first);
        std::swap(cur_val, slots_[i].second);
        std::swap(d, dist_[i]);
        if (result == kNoSlot && slots_[i].first == key) result = i;
      }
    }
  }

  void EraseSlot(size_t slot) {
    assert(dist_[slot] != 0);
    size_t i = slot;
    for (;;) {
      size_t next = (i + 1) & mask_;
      if (dist_[next] <= 1) break;  // empty or already at its home slot
      slots_[i].first = std::move(slots_[next].first);
      slots_[i].second = std::move(slots_[next].second);
      dist_[i] = dist_[next] - 1;
      i = next;
    }
    slots_[i].~value_type();
    dist_[i] = 0;
    --size_;
  }

  void Rehash(size_t new_capacity) {
    FlatHashMap old;
    old.MoveFrom(*this);
    Allocate(new_capacity);
    for (size_t i = 0; i < old.capacity_; ++i) {
      if (old.dist_[i] != 0) {
        InsertNew(old.slots_[i].first, std::move(old.slots_[i].second));
      }
    }
  }

  void Allocate(size_t capacity) {
    capacity_ = capacity;
    mask_ = capacity - 1;
    size_ = 0;
    dist_ = std::make_unique<uint8_t[]>(capacity);
    std::memset(dist_.get(), 0, capacity);
    slots_ = static_cast<value_type*>(::operator new(
        capacity * sizeof(value_type), std::align_val_t(alignof(value_type))));
  }

  void Deallocate() {
    if (slots_ != nullptr) {
      for (size_t i = 0; i < capacity_; ++i) {
        if (dist_[i] != 0) slots_[i].~value_type();
      }
      ::operator delete(slots_, std::align_val_t(alignof(value_type)));
      slots_ = nullptr;
    }
    dist_.reset();
    capacity_ = mask_ = size_ = 0;
  }

  void CopyFrom(const FlatHashMap& other) {
    if (other.capacity_ == 0) return;
    Allocate(other.capacity_);
    for (size_t i = 0; i < other.capacity_; ++i) {
      if (other.dist_[i] != 0) {
        new (&slots_[i]) value_type(other.slots_[i]);
        dist_[i] = other.dist_[i];
      }
    }
    size_ = other.size_;
  }

  void MoveFrom(FlatHashMap& other) noexcept {
    dist_ = std::move(other.dist_);
    slots_ = other.slots_;
    capacity_ = other.capacity_;
    mask_ = other.mask_;
    size_ = other.size_;
    other.slots_ = nullptr;
    other.capacity_ = other.mask_ = other.size_ = 0;
  }

  std::unique_ptr<uint8_t[]> dist_;
  value_type* slots_ = nullptr;
  size_t capacity_ = 0;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace psgraph

#endif  // PSGRAPH_COMMON_FLAT_HASH_H_
