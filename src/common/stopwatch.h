// Wall-clock stopwatch for benches and coarse timing.

#ifndef PSGRAPH_COMMON_STOPWATCH_H_
#define PSGRAPH_COMMON_STOPWATCH_H_

#include <chrono>

namespace psgraph {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace psgraph

#endif  // PSGRAPH_COMMON_STOPWATCH_H_
