// Lightweight structured tracing over the simulated clocks.
//
// A TraceSpan is one named interval on one logical node, stamped with
// sim-clock ticks (common/ cannot depend on sim/, so callers pass the
// tick readings). Spans nest: Begin() links the new span to the
// innermost span previously begun by the same thread on the same
// tracer, so a PS pull handled inside an RPC dispatch inside a
// partition task forms a parent chain.
//
// Tracing is off by default (Begin() is one relaxed atomic load). The
// global tracer enables itself when the PSGRAPH_TRACE environment
// variable is set to a non-empty, non-"0" value; PsGraphContext-owned
// tracers inherit that default. Span *summaries* (count/total/max per
// name) feed the JSON run report; full span detail is capped at
// kMaxSpans to bound memory, with a dropped-span counter kept honest.

#ifndef PSGRAPH_COMMON_TRACE_H_
#define PSGRAPH_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace psgraph {

struct TraceSpan {
  uint64_t id = 0;      ///< 1-based; 0 means "no span"
  uint64_t parent = 0;  ///< id of the enclosing span, 0 at the root
  std::string name;
  int32_t node = -1;  ///< sim node the span ran on, -1 if not node-bound
  int64_t begin_ticks = 0;
  int64_t end_ticks = 0;
};

class Tracer {
 public:
  /// Default cap on full span detail kept in memory; spans past the cap
  /// drop their detail (counted in dropped(), absent from Snapshot())
  /// but still fold into the per-name summaries, so report stats stay
  /// honest on long runs. Every Tracer initializes its cap from
  /// PSGRAPH_TRACE_MAX_SPANS when that is set (long multi-iteration
  /// runs overflow 64k spans and would otherwise silently truncate
  /// their exported timeline).
  static constexpr size_t kMaxSpans = 1 << 16;

  /// High bit marks ids of over-cap spans: they are tracked only in a
  /// (name, node, begin) side table until End() folds them into the
  /// summaries — never exported and never parents of kept spans.
  static constexpr uint64_t kOverflowIdBit = uint64_t{1} << 63;

  Tracer() : max_spans_(MaxSpansFromEnv()) {}

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  size_t max_spans() const { return max_spans_; }
  void set_max_spans(size_t cap) { max_spans_ = cap; }
  /// PSGRAPH_TRACE_MAX_SPANS, or kMaxSpans when unset/zero/garbage.
  static size_t MaxSpansFromEnv();

  /// Opens a span; returns its id (0 when disabled or at capacity —
  /// End() ignores id 0). The parent is the calling thread's innermost
  /// open span on this tracer.
  uint64_t Begin(const std::string& name, int32_t node,
                 int64_t begin_ticks);
  /// Begin() with an explicit parent span id — causal propagation across
  /// threads: the RPC fabric captures the caller's open span and passes
  /// it here so a handler span dispatched on a pool thread still links
  /// to the agent-side span (and across the node boundary in the
  /// exported trace). `parent` 0 falls back to the thread-local chain,
  /// which keeps the strictly sequential path byte-identical.
  uint64_t Begin(const std::string& name, int32_t node,
                 int64_t begin_ticks, uint64_t parent);

  /// The calling thread's innermost open span on this tracer (0 when
  /// none) — what a subsequent Begin() on this thread would use as its
  /// parent. Capture it before handing work to another thread.
  uint64_t CurrentSpanId() const;
  /// Closes the span and folds it into the per-name summary.
  void End(uint64_t id, int64_t end_ticks);

  struct SpanStats {
    uint64_t count = 0;
    int64_t total_ticks = 0;
    int64_t max_ticks = 0;
  };

  std::vector<TraceSpan> Snapshot() const;
  /// Per-name aggregate over all *closed* spans, including spans whose
  /// detail was dropped at the cap.
  std::map<std::string, SpanStats> Summary() const;
  /// Per-(name, node) aggregate over all closed spans — the
  /// critical-path analyzer's what-if input. count and total_ticks are
  /// scheduling-independent; max_ticks is not (see sim/critical_path).
  std::map<std::pair<std::string, int32_t>, SpanStats> NodeSummary() const;
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  void Reset();

  /// Process-wide tracer; enabled iff PSGRAPH_TRACE is set (see above).
  static Tracer& Global();

  /// True when the PSGRAPH_TRACE environment variable asks for tracing.
  static bool EnabledByEnv();

 private:
  struct OverflowSpan {
    std::string name;
    int32_t node = -1;
    int64_t begin_ticks = 0;
  };

  void FoldLocked(const std::string& name, int32_t node, int64_t dur);

  std::atomic<bool> enabled_{false};
  size_t max_spans_;
  std::atomic<uint64_t> dropped_{0};
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
  std::map<std::string, SpanStats> summary_;
  std::map<std::pair<std::string, int32_t>, SpanStats> node_summary_;
  std::map<uint64_t, OverflowSpan> overflow_open_;
  uint64_t next_overflow_id_ = 0;
};

/// RAII span: opens on construction, closes with the tick value read
/// from `end_fn` at destruction. `tracer` may be null (no-op).
template <typename EndFn>
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const std::string& name, int32_t node,
             int64_t begin_ticks, EndFn end_fn)
      : tracer_(tracer), end_fn_(std::move(end_fn)) {
    if (tracer_ != nullptr && tracer_->enabled()) {
      id_ = tracer_->Begin(name, node, begin_ticks);
    }
  }
  /// Variant with an explicit parent span id (see Tracer::Begin).
  ScopedSpan(Tracer* tracer, const std::string& name, int32_t node,
             int64_t begin_ticks, uint64_t parent, EndFn end_fn)
      : tracer_(tracer), end_fn_(std::move(end_fn)) {
    if (tracer_ != nullptr && tracer_->enabled()) {
      id_ = tracer_->Begin(name, node, begin_ticks, parent);
    }
  }
  ~ScopedSpan() {
    if (id_ != 0) tracer_->End(id_, end_fn_());
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_;
  EndFn end_fn_;
  uint64_t id_ = 0;
};

}  // namespace psgraph

#endif  // PSGRAPH_COMMON_TRACE_H_
