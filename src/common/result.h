// Result<T>: a Status plus a value on success (Arrow's Result idiom).

#ifndef PSGRAPH_COMMON_RESULT_H_
#define PSGRAPH_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace psgraph {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value could not be produced.
template <typename T>
class Result {
 public:
  using value_type = T;

  /// Implicit from value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a non-OK status (failure). Constructing from an OK
  /// status is a programming error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Value accessors; valid only when ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value or `fallback` when this holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace psgraph

/// Assigns the value of a Result expression to `lhs`, or returns its error.
#define PSG_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#define PSG_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define PSG_ASSIGN_OR_RETURN_NAME(x, y) PSG_ASSIGN_OR_RETURN_CONCAT(x, y)

#define PSG_ASSIGN_OR_RETURN(lhs, expr) \
  PSG_ASSIGN_OR_RETURN_IMPL(            \
      PSG_ASSIGN_OR_RETURN_NAME(_psg_result_, __LINE__), lhs, expr)

#endif  // PSGRAPH_COMMON_RESULT_H_
