// Named monotonically-increasing counters (bytes shuffled, RPCs issued,
// records processed). Benches read them to report communication volume.

#ifndef PSGRAPH_COMMON_METRICS_H_
#define PSGRAPH_COMMON_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace psgraph {

/// A registry of named counters. Thread-safe.
class Metrics {
 public:
  void Add(const std::string& name, uint64_t delta);
  uint64_t Get(const std::string& name) const;
  /// Snapshot of all counters, sorted by name.
  std::map<std::string, uint64_t> Snapshot() const;
  void Reset();

  /// Process-wide default registry.
  static Metrics& Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, uint64_t> counters_;
};

}  // namespace psgraph

#endif  // PSGRAPH_COMMON_METRICS_H_
