// Observability primitives: named monotonic counters (bytes shuffled,
// RPCs issued, records processed), gauges (last-set values such as the
// engine parallelism), and log-scale latency histograms with quantile
// estimation. Benches snapshot a Metrics registry into the JSON run
// report (sim/report.h); CI diffs those reports against committed
// baselines.

#ifndef PSGRAPH_COMMON_METRICS_H_
#define PSGRAPH_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace psgraph {

/// The quantiles every consumer of a histogram wants (report
/// serialization, the time-series sampler, the SLO watchdog), computed
/// in one bucket walk by HistogramSnapshot::Percentiles().
struct HistogramPercentiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

/// Point-in-time copy of one histogram, with quantile estimation.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  ///< exact; 0 when empty
  uint64_t max = 0;  ///< exact; 0 when empty
  /// Per-bucket counts (see Histogram for the bucket layout). Sized
  /// Histogram::kNumBuckets; trailing zeros may be trimmed.
  std::vector<uint64_t> buckets;

  double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }
  /// Value below which a fraction `q` in [0,1] of samples fall,
  /// linearly interpolated inside the containing bucket. Clamped to
  /// [min, max] so single-sample and overflow-bucket estimates stay
  /// sane. 0 when empty.
  double Quantile(double q) const;
  /// p50/p95/p99/p999 in a single pass over the buckets; each value is
  /// exactly what the corresponding Quantile() call would return.
  HistogramPercentiles Percentiles() const;
};

/// Thread-safe (lock-free) latency/size histogram over uint64 values.
///
/// Bucket layout is log-linear like HdrHistogram: values below
/// kSubBuckets are exact, above that each power-of-two octave is split
/// into kSubBuckets linear sub-buckets, giving a fixed relative error
/// of at most 1/kSubBuckets across the full uint64 range (the last
/// bucket is the overflow bucket for values >= 2^63). Recording is a
/// few relaxed atomic adds, so hot paths (PS pull/push, RPC dispatch)
/// can record unconditionally.
class Histogram {
 public:
  static constexpr uint64_t kSubBucketBits = 3;  // 8 sub-buckets/octave
  static constexpr uint64_t kSubBuckets = 1ull << kSubBucketBits;
  static constexpr size_t kNumBuckets =
      (64 - kSubBucketBits + 1) * kSubBuckets;

  /// Index of the bucket containing `v`.
  static size_t BucketOf(uint64_t v);
  /// Smallest value mapping to bucket `i` (inclusive lower bound).
  static uint64_t BucketLowerBound(size_t i);
  /// Exclusive upper bound of bucket `i` (UINT64_MAX for the last).
  static uint64_t BucketUpperBound(size_t i);

  void Record(uint64_t value);

  HistogramSnapshot Snapshot() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Zeroes all state. Not atomic with respect to concurrent Record()
  /// calls; callers quiesce recording first (benches reset between
  /// cells, tests between cases).
  void Reset();

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

/// A registry of named counters, gauges and histograms. Thread-safe.
///
/// Every PsGraphContext owns a private Metrics (installed into its
/// SimCluster), so concurrent contexts in one process cannot
/// cross-contaminate; Global() remains the fallback for components
/// running without a cluster (unit tests, direct PsServer use).
class Metrics {
 public:
  // -- Counters (monotonic) --
  void Add(const std::string& name, uint64_t delta);
  uint64_t Get(const std::string& name) const;
  /// Bulk read of all counters. The returned map iterates in stable
  /// sorted-by-name order — consumers that serialize or scrape it (run
  /// report, time-series sampler) can rely on that ordering being
  /// identical across runs and parallelism levels.
  std::map<std::string, uint64_t> CounterSnapshot() const;
  /// Deprecated alias of CounterSnapshot() (pre-v5 name).
  std::map<std::string, uint64_t> Snapshot() const {
    return CounterSnapshot();
  }

  // -- Gauges (last-set value) --
  void SetGauge(const std::string& name, double value);
  /// 0.0 when the gauge was never set.
  double GetGauge(const std::string& name) const;
  /// Bulk read of all gauges, in the same stable sorted-by-name order
  /// as CounterSnapshot().
  std::map<std::string, double> GaugeSnapshot() const;

  // -- Histograms --
  /// Returns the named histogram, creating it on first use. The
  /// reference stays valid for the lifetime of the registry (Reset()
  /// zeroes histograms in place, it never destroys them).
  Histogram& GetHistogram(const std::string& name);
  /// Convenience: GetHistogram(name).Record(value).
  void Observe(const std::string& name, uint64_t value);
  /// Snapshot of every histogram with at least one sample.
  std::map<std::string, HistogramSnapshot> HistogramSnapshots() const;

  /// Clears counters and gauges, zeroes histograms in place.
  void Reset();

  /// Process-wide default registry.
  static Metrics& Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> gauges_;
  // unique_ptr so GetHistogram references survive map rebalancing.
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace psgraph

#endif  // PSGRAPH_COMMON_METRICS_H_
