#include "common/thread_pool.h"

#include <atomic>

namespace psgraph {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> fut = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || threads_.size() == 1) {
    // Run inline: avoids deadlock when called from a pool thread on a
    // single-threaded pool and skips scheduling overhead.
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futs;
  futs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    futs.push_back(Submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futs) f.get();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace psgraph
