#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>

#include "common/env.h"

namespace psgraph {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> fut = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

namespace {

/// Shared state of one ParallelFor region. Heap-owned (shared_ptr) so a
/// helper task that wakes up after the region already finished can still
/// touch it safely.
struct ParallelRegion {
  explicit ParallelRegion(size_t n, std::function<void(size_t)> f)
      : total(n), fn(std::move(f)) {}

  const size_t total;
  std::function<void(size_t)> fn;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;  // guarded by mu

  /// Claims indices until the range is drained. Returns true when this
  /// call completed the final index.
  bool Drain() {
    for (;;) {
      size_t i = next.fetch_add(1);
      if (i >= total) return false;
      bool failed;
      {
        std::lock_guard<std::mutex> lock(mu);
        failed = error != nullptr;
      }
      if (!failed) {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mu);
          if (error == nullptr) error = std::current_exception();
        }
      }
      if (done.fetch_add(1) + 1 == total) {
        // Lock before notifying so a waiter cannot check the predicate,
        // miss the increment, and block after the notification fired.
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
        return true;
      }
    }
  }
};

}  // namespace

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  ParallelForBounded(n, threads_.size(), fn);
}

void ThreadPool::ParallelForBounded(size_t n, size_t max_helpers,
                                    const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  size_t helpers = std::min(n - 1, std::min(max_helpers, threads_.size()));
  if (helpers == 0) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto region = std::make_shared<ParallelRegion>(n, fn);
  for (size_t h = 0; h < helpers; ++h) {
    // Fire-and-forget: the region outlives the futures via shared_ptr.
    Submit([region] { region->Drain(); });
  }
  region->Drain();  // caller participates — guarantees forward progress
  {
    std::unique_lock<std::mutex> lock(region->mu);
    region->cv.wait(lock, [&] {
      return region->done.load() == region->total;
    });
    if (region->error) std::rethrow_exception(region->error);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

size_t DefaultParallelism() {
  // 0 (or unset) means "auto": use the machine's hardware concurrency.
  const uint64_t v = EnvU64("PSGRAPH_THREADS", 0);
  if (v >= 1) return static_cast<size_t>(v);
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::atomic<size_t> g_parallelism{0};  // 0 = not yet resolved

}  // namespace

ThreadPool& GlobalThreadPool() {
  static ThreadPool pool(
      std::max<size_t>(2, std::thread::hardware_concurrency()));
  return pool;
}

size_t GlobalParallelism() {
  size_t p = g_parallelism.load(std::memory_order_relaxed);
  if (p == 0) {
    p = DefaultParallelism();
    g_parallelism.store(p, std::memory_order_relaxed);
  }
  return p;
}

void SetGlobalParallelism(size_t n) {
  g_parallelism.store(n == 0 ? DefaultParallelism() : n,
                      std::memory_order_relaxed);
}

}  // namespace psgraph
