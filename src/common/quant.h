// Embedding-row quantization for serving snapshot blobs.
//
// Snapshot blobs ship full fp32 embedding tables to every serving
// shard; at PSGraph scale the blob bytes — not the lookup compute — set
// the publish and preload cost. Two lossy codecs shrink them behind the
// PSGRAPH_SNAPSHOT_QUANT knob:
//
//   fp16  IEEE 754 half precision, round-to-nearest-even. 2x smaller,
//         ~1e-3 relative error on unit-scale embeddings.
//   int8  per-row max-abs scaling: q = round(v * 127 / max|row|),
//         decoded as q * scale. 4x smaller (plus one fp32 scale per
//         row), error bounded by scale/2.
//
// Quantization is accounted, never silent: encoders report the exact
// max-abs round-trip error so the snapshot manifest can carry it per
// matrix, and decoding a mode the blob was not written with fails the
// checksum/format checks upstream.

#ifndef PSGRAPH_COMMON_QUANT_H_
#define PSGRAPH_COMMON_QUANT_H_

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/byte_buffer.h"
#include "common/result.h"
#include "common/status.h"

namespace psgraph {

enum class QuantMode : uint8_t {
  kNone = 0,  ///< raw fp32 rows
  kFp16 = 1,
  kInt8 = 2,
};

inline const char* QuantModeName(QuantMode mode) {
  switch (mode) {
    case QuantMode::kNone: return "none";
    case QuantMode::kFp16: return "fp16";
    case QuantMode::kInt8: return "int8";
  }
  return "unknown";
}

/// Parses a knob/manifest value ("none"/"fp16"/"int8"); anything else is
/// an InvalidArgument naming the value, per the fail-loud env convention.
inline Result<QuantMode> ParseQuantMode(const std::string& s) {
  if (s.empty() || s == "none") return QuantMode::kNone;
  if (s == "fp16") return QuantMode::kFp16;
  if (s == "int8") return QuantMode::kInt8;
  return Status::InvalidArgument("unknown quantization mode '" + s +
                                 "' (want none|fp16|int8)");
}

/// fp32 -> IEEE half, round-to-nearest-even; overflow saturates to inf.
inline uint16_t Fp16FromFloat(float f) {
  uint32_t x;
  std::memcpy(&x, &f, sizeof(x));
  const uint32_t sign = (x >> 16) & 0x8000u;
  const uint32_t mant = x & 0x007fffffu;
  const int32_t exp8 = static_cast<int32_t>((x >> 23) & 0xffu);
  if (exp8 == 0xff) {  // inf / nan
    return static_cast<uint16_t>(sign | 0x7c00u | (mant != 0 ? 0x200u : 0u));
  }
  const int32_t exp5 = exp8 - 127 + 15;
  if (exp5 >= 0x1f) return static_cast<uint16_t>(sign | 0x7c00u);  // -> inf
  if (exp5 <= 0) {
    if (exp5 < -10) return static_cast<uint16_t>(sign);  // -> +/-0
    // Subnormal half: shift the (implicit-1) mantissa into place.
    const uint32_t full = mant | 0x00800000u;
    const uint32_t shift = static_cast<uint32_t>(14 - exp5);
    uint32_t half = full >> shift;
    const uint32_t rem = full & ((1u << shift) - 1);
    const uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half & 1))) ++half;
    return static_cast<uint16_t>(sign | half);
  }
  uint32_t half = (static_cast<uint32_t>(exp5) << 10) | (mant >> 13);
  const uint32_t rem = mant & 0x1fffu;
  // Round to nearest even; a carry here correctly bumps the exponent.
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1))) ++half;
  return static_cast<uint16_t>(sign | half);
}

inline float Fp16ToFloat(uint16_t h) {
  const uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  const uint32_t exp5 = (h >> 10) & 0x1fu;
  uint32_t mant = h & 0x3ffu;
  uint32_t x;
  if (exp5 == 0) {
    if (mant == 0) {
      x = sign;
    } else {
      int shift = 0;
      do {
        mant <<= 1;
        ++shift;
      } while ((mant & 0x400u) == 0);
      mant &= 0x3ffu;
      x = sign | (static_cast<uint32_t>(127 - 15 - shift + 1) << 23) |
          (mant << 13);
    }
  } else if (exp5 == 0x1f) {
    x = sign | 0x7f800000u | (mant << 13);
  } else {
    x = sign | ((exp5 - 15 + 127) << 23) | (mant << 13);
  }
  float f;
  std::memcpy(&f, &x, sizeof(f));
  return f;
}

/// Appends one embedding row in `mode`'s wire encoding:
///   none: cols * fp32 (raw little-endian)
///   fp16: cols * uint16
///   int8: fp32 scale + cols * int8
/// Returns the row's max-abs round-trip error (0.0 for kNone).
inline double QuantizeRowAppend(QuantMode mode, const float* row, size_t cols,
                                ByteBuffer* out) {
  switch (mode) {
    case QuantMode::kNone:
      out->WriteRaw(row, cols * sizeof(float));
      return 0.0;
    case QuantMode::kFp16: {
      double max_err = 0.0;
      for (size_t i = 0; i < cols; ++i) {
        uint16_t h = Fp16FromFloat(row[i]);
        out->Write<uint16_t>(h);
        max_err = std::max(
            max_err, std::fabs(static_cast<double>(Fp16ToFloat(h)) - row[i]));
      }
      return max_err;
    }
    case QuantMode::kInt8: {
      float max_abs = 0.0f;
      for (size_t i = 0; i < cols; ++i) {
        max_abs = std::max(max_abs, std::fabs(row[i]));
      }
      const float scale = max_abs > 0.0f ? max_abs / 127.0f : 0.0f;
      out->Write<float>(scale);
      double max_err = 0.0;
      for (size_t i = 0; i < cols; ++i) {
        int32_t q = scale > 0.0f
                        ? static_cast<int32_t>(std::lrintf(row[i] / scale))
                        : 0;
        q = std::min(127, std::max(-127, q));
        out->Write<int8_t>(static_cast<int8_t>(q));
        max_err = std::max(max_err,
                           std::fabs(static_cast<double>(q) * scale - row[i]));
      }
      return max_err;
    }
  }
  return 0.0;
}

/// Bytes QuantizeRowAppend writes for one row of `cols` floats.
inline size_t QuantizedRowBytes(QuantMode mode, size_t cols) {
  switch (mode) {
    case QuantMode::kNone: return cols * sizeof(float);
    case QuantMode::kFp16: return cols * sizeof(uint16_t);
    case QuantMode::kInt8: return sizeof(float) + cols;
  }
  return 0;
}

/// Reads one QuantizeRowAppend row back, appending `cols` floats to `out`.
inline Status DequantizeRowAppend(QuantMode mode, ByteReader* reader,
                                  size_t cols, std::vector<float>* out) {
  switch (mode) {
    case QuantMode::kNone: {
      size_t off = out->size();
      out->resize(off + cols);
      return reader->ReadRaw(out->data() + off, cols * sizeof(float));
    }
    case QuantMode::kFp16: {
      for (size_t i = 0; i < cols; ++i) {
        uint16_t h = 0;
        PSG_RETURN_NOT_OK(reader->Read(&h));
        out->push_back(Fp16ToFloat(h));
      }
      return Status::OK();
    }
    case QuantMode::kInt8: {
      float scale = 0.0f;
      PSG_RETURN_NOT_OK(reader->Read(&scale));
      for (size_t i = 0; i < cols; ++i) {
        int8_t q = 0;
        PSG_RETURN_NOT_OK(reader->Read(&q));
        out->push_back(static_cast<float>(q) * scale);
      }
      return Status::OK();
    }
  }
  return Status::InvalidArgument("DequantizeRowAppend: bad mode");
}

}  // namespace psgraph

#endif  // PSGRAPH_COMMON_QUANT_H_
