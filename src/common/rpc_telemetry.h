// Wire-level RPC telemetry: per-(method, callee-node) counters.
//
// The paper's argument against GraphX is communication cost — pull/push
// over the PS instead of join/shuffle — so the fabric meters every call:
// how many requests each (method, callee) pair served, the bytes that
// crossed the wire in both directions, how long the callee was busy and
// how long the caller waited end-to-end, and error outcomes split into
// Unavailable (dead/unbound node — the failure-injection path) versus
// handler errors.
//
// Lives in common/ (not net/) because sim/report.cc serializes the
// snapshot into run reports and psg_net already depends on psg_sim; like
// Metrics, the registry has no dependencies beyond the standard library.
// All recorded tick quantities derive from the simulated clocks under
// the fabric's per-endpoint serialization, so the aggregates are
// identical at any parallelism level (accumulation is order-independent
// sums; Snapshot() returns deterministic (method, node) order).

#ifndef PSGRAPH_COMMON_RPC_TELEMETRY_H_
#define PSGRAPH_COMMON_RPC_TELEMETRY_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace psgraph {

class RpcTelemetry {
 public:
  /// Aggregate for one (method, callee-node) pair.
  struct Stat {
    uint64_t calls = 0;           ///< requests planned (sent on the wire)
    uint64_t request_bytes = 0;   ///< payload bytes caller -> callee
    uint64_t response_bytes = 0;  ///< payload bytes callee -> caller
    /// Callee busy time across this pair's requests: request
    /// deserialization + handler compute + response serialization,
    /// bracketed under the endpoint's serial lock (deterministic).
    int64_t callee_busy_ticks = 0;
    /// Caller-perceived time from fan-out start to this call's response
    /// (send serialization + latency + service + latency); queueing is
    /// excluded, so the sum is deterministic at any parallelism.
    int64_t caller_wait_ticks = 0;
    uint64_t errors_unavailable = 0;  ///< dead or unbound callee
    uint64_t errors_handler = 0;      ///< handler returned an error
  };

  /// Stat plus its key, as returned by Snapshot().
  struct MethodStat : Stat {
    std::string method;
    int32_t node = -1;
  };

  /// A request to (method, node) was planned and its payload sent.
  void RecordCall(const std::string& method, int32_t node,
                  uint64_t request_bytes);
  /// A response came back: response payload size, the callee's busy time
  /// for this request and the caller's end-to-end wait.
  void RecordResponse(const std::string& method, int32_t node,
                      uint64_t response_bytes, int64_t busy_ticks,
                      int64_t wait_ticks);
  /// The call failed. `unavailable` distinguishes dead/unbound callees
  /// from handler errors; `busy_ticks` charges any callee busy time
  /// accrued before the handler failed.
  void RecordError(const std::string& method, int32_t node,
                   bool unavailable, int64_t busy_ticks = 0);

  /// All pairs in (method, node) order — deterministic for reports.
  std::vector<MethodStat> Snapshot() const;

  void Reset();

  /// Process-wide fallback registry, used when an RpcFabric runs without
  /// a cluster (unit tests) or a cluster without an installed sink.
  static RpcTelemetry& Global();

 private:
  using Key = std::pair<std::string, int32_t>;
  mutable std::mutex mu_;
  std::map<Key, Stat> stats_;
};

}  // namespace psgraph

#endif  // PSGRAPH_COMMON_RPC_TELEMETRY_H_
