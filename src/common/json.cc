#include "common/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace psgraph {

JsonValue::JsonValue(uint64_t v) {
  if (v <= static_cast<uint64_t>(INT64_MAX)) {
    kind_ = Kind::kInt;
    int_ = static_cast<int64_t>(v);
  } else {
    kind_ = Kind::kDouble;
    double_ = static_cast<double>(v);
  }
}

JsonValue& JsonValue::Set(const std::string& key, JsonValue value) {
  kind_ = Kind::kObject;
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue& JsonValue::Append(JsonValue value) {
  kind_ = Kind::kArray;
  elements_.push_back(std::move(value));
  return *this;
}

namespace {

void EscapeString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(double v, std::string* out) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan
    *out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
  // Keep a float marker so a parse round-trip stays a double.
  if (std::strpbrk(buf, ".eE") == nullptr) *out += ".0";
}

void Newline(std::string* out, int indent, int depth) {
  if (indent <= 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull: *out += "null"; break;
    case Kind::kBool: *out += bool_ ? "true" : "false"; break;
    case Kind::kInt: *out += std::to_string(int_); break;
    case Kind::kDouble: AppendNumber(double_, out); break;
    case Kind::kString: EscapeString(string_, out); break;
    case Kind::kArray: {
      if (elements_.empty()) {
        *out += "[]";
        break;
      }
      out->push_back('[');
      for (size_t i = 0; i < elements_.size(); ++i) {
        if (i > 0) out->push_back(',');
        Newline(out, indent, depth + 1);
        elements_[i].DumpTo(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      out->push_back(']');
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        *out += "{}";
        break;
      }
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        Newline(out, indent, depth + 1);
        EscapeString(members_[i].first, out);
        *out += indent > 0 ? ": " : ":";
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  if (indent > 0) out.push_back('\n');
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Result<JsonValue> ParseDocument() {
    PSG_ASSIGN_OR_RETURN(JsonValue v, ParseValue(0));
    SkipWs();
    if (pos_ != s_.size()) return Err("trailing characters");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Err(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Err("nesting too deep");
    SkipWs();
    if (pos_ >= s_.size()) return Err("unexpected end of input");
    switch (s_[pos_]) {
      case '{': return ParseObject(depth);
      case '[': return ParseArray(depth);
      case '"': {
        PSG_ASSIGN_OR_RETURN(std::string str, ParseString());
        return JsonValue(std::move(str));
      }
      case 't':
        if (s_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          return JsonValue(true);
        }
        return Err("bad literal");
      case 'f':
        if (s_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          return JsonValue(false);
        }
        return Err("bad literal");
      case 'n':
        if (s_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          return JsonValue();
        }
        return Err("bad literal");
      default: return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonValue obj = JsonValue::Object();
    SkipWs();
    if (Consume('}')) return obj;
    while (true) {
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != '"') {
        return Err("expected object key");
      }
      PSG_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      PSG_ASSIGN_OR_RETURN(JsonValue v, ParseValue(depth + 1));
      obj.Set(key, std::move(v));
      SkipWs();
      if (Consume('}')) return obj;
      if (!Consume(',')) return Err("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    JsonValue arr = JsonValue::Array();
    SkipWs();
    if (Consume(']')) return arr;
    while (true) {
      PSG_ASSIGN_OR_RETURN(JsonValue v, ParseValue(depth + 1));
      arr.Append(std::move(v));
      SkipWs();
      if (Consume(']')) return arr;
      if (!Consume(',')) return Err("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        if (pos_ + 1 >= s_.size()) return Err("bad escape");
        char e = s_[pos_ + 1];
        pos_ += 2;
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return Err("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = s_[pos_ + i];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= h - '0';
              else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
              else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
              else return Err("bad \\u escape");
            }
            pos_ += 4;
            // BMP-only UTF-8 encode (all this repo ever writes).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: return Err("bad escape");
        }
        continue;
      }
      out.push_back(c);
      ++pos_;
    }
    return Err("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    bool is_double = false;
    if (Consume('.')) {
      is_double = true;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ == start) return Err("expected value");
    const char* begin = s_.data() + start;
    const char* end = s_.data() + pos_;
    if (!is_double) {
      int64_t iv = 0;
      auto [p, ec] = std::from_chars(begin, end, iv);
      if (ec == std::errc() && p == end) return JsonValue(iv);
      // Integer overflow: fall through to double.
    }
    double dv = 0.0;
    auto [p, ec] = std::from_chars(begin, end, dv);
    if (ec != std::errc() || p != end) return Err("bad number");
    return JsonValue(dv);
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  return Parser(text).ParseDocument();
}

}  // namespace psgraph
