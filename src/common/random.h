// Deterministic, seedable RNG used by every randomized component.
//
// SplitMix64 for seeding, xoshiro256** for the stream. All samplers take an
// explicit Rng so experiments are reproducible bit-for-bit.

#ifndef PSGRAPH_COMMON_RANDOM_H_
#define PSGRAPH_COMMON_RANDOM_H_

#include <cstdint>

namespace psgraph {

/// One mixing step of SplitMix64; also usable as an integer hash finalizer.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Not cryptographic; fast and high quality for
/// simulation workloads.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eedULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& s : s_) s = SplitMix64(sm);
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's nearly-divisionless method.
    __uint128_t m = static_cast<__uint128_t>(NextU64()) * bound;
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float NextFloat() {
    return static_cast<float>(NextU64() >> 40) * 0x1.0p-24f;
  }

  /// Uniform double in [lo, hi).
  double NextRange(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  bool NextBool(double p_true) { return NextDouble() < p_true; }

  /// Standard normal via Box-Muller (one value per call; simple, fine for
  /// embedding init).
  double NextGaussian();

  /// Forks an independent stream; children of distinct indices do not
  /// overlap in practice.
  Rng Fork(uint64_t index) const {
    uint64_t sm = s_[0] ^ (s_[3] + 0x9e3779b97f4a7c15ULL * (index + 1));
    return Rng(SplitMix64(sm));
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

}  // namespace psgraph

#endif  // PSGRAPH_COMMON_RANDOM_H_
