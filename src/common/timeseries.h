// Continuous telemetry: fixed-interval time-series scraped from the
// metrics registry on the *simulated* clock.
//
// Every terminal snapshot in the run report answers "how much, in
// total"; the sampler answers "when". A MetricsSampler is polled from
// the single-threaded orchestration points of a run (BSP/stage
// barriers, the serving router's event loop, replication merges,
// failure handling) and appends one point per crossed scrape boundary
// to a TimeSeriesStore. Boundaries live at k * interval for k = 1.. on
// the simulated clock, so the series grid — and therefore every curve —
// is bit-identical at any thread parallelism (the same reason the
// makespans are: integer tick math at deterministic program points).
//
// The store is fixed-capacity: when it fills, it compacts by keeping
// the second point of every adjacent pair and doubling the interval,
// which is *exactly* the series that scraping at the doubled interval
// would have produced (each kept point sits on the coarser grid). Long
// runs therefore degrade resolution, never memory.
//
// Scraped per point, all into one flat name -> value map:
//   counter.<name>        every Metrics counter
//   gauge.<name>          every Metrics gauge
//   hist.<name>.p50/.p99/.p999   percentile curves per histogram
//   rpc.total.*, rpc.<method>.bytes   RpcTelemetry byte/call totals
//   <source name>         registered callbacks (memory watermarks, ...)
// A series first seen at point k is zero-backfilled for points 1..k-1
// (counters and gauges default to zero before first touch); a series
// absent from a later scrape (registry reset) records zero. Histograms
// whose per-sample values are scheduling-dependent at parallelism > 1
// (rpc.queue_ticks: queueing behind the endpoint's event loop;
// dataflow.partition_ticks: brackets that can absorb work attributed
// to whichever concurrent partition task touches a shared lineage
// block first) are denylisted from scraping so the determinism
// contract holds — their totals still reach the terminal report.
//
// The scrape interval is the PSGRAPH_TS_INTERVAL knob in simulated
// microseconds (default 1000 = 1 ms of sim time; 0 disables sampling);
// capacity is PSGRAPH_TS_CAPACITY points (rounded up to even).

#ifndef PSGRAPH_COMMON_TIMESERIES_H_
#define PSGRAPH_COMMON_TIMESERIES_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/rpc_telemetry.h"

namespace psgraph {

/// Point-in-time copy of a TimeSeriesStore (the "timeseries" section of
/// the run report). All series have exactly `points` values; point i
/// (0-based) was scraped at simulated tick (i + 1) * interval_ticks.
struct TimeSeriesSnapshot {
  int64_t base_interval_ticks = 0;  ///< configured scrape interval
  int64_t interval_ticks = 0;       ///< current (base * 2^compactions)
  uint64_t compactions = 0;
  uint64_t points = 0;
  std::map<std::string, std::vector<double>> series;
};

/// Aligned, fixed-capacity ring of scrape points. Not thread-safe; the
/// owning MetricsSampler serializes access.
class TimeSeriesStore {
 public:
  TimeSeriesStore() : TimeSeriesStore(1, 4) {}
  /// `capacity` is rounded up to an even value >= 4 so compaction
  /// always halves cleanly.
  TimeSeriesStore(int64_t base_interval_ticks, size_t capacity);

  /// Simulated tick of the next scrape boundary: (points + 1) * interval.
  int64_t NextBoundaryTicks() const {
    return (static_cast<int64_t>(points_) + 1) * interval_ticks_;
  }

  /// Appends one point to every series (zero for names missing from
  /// `values`, zero-backfill for names never seen before), then
  /// compacts when the capacity is reached: keep the second point of
  /// each pair, halve the count, double the interval.
  void Append(const std::map<std::string, double>& values);

  uint64_t points() const { return points_; }
  int64_t interval_ticks() const { return interval_ticks_; }
  int64_t base_interval_ticks() const { return base_interval_ticks_; }
  uint64_t compactions() const { return compactions_; }
  size_t capacity() const { return capacity_; }

  /// The full value vector of one series (nullptr when never seen).
  const std::vector<double>* Series(const std::string& name) const;
  /// Last scraped value of `name`; 0.0 when missing or empty.
  double Latest(const std::string& name) const;

  TimeSeriesSnapshot Snapshot() const;

  void Reset();

 private:
  int64_t base_interval_ticks_;
  int64_t interval_ticks_;
  size_t capacity_;
  uint64_t points_ = 0;
  uint64_t compactions_ = 0;
  std::map<std::string, std::vector<double>> series_;
};

/// Scrapes a Metrics registry (plus RPC telemetry and registered
/// sources) into a TimeSeriesStore at a fixed simulated interval.
///
/// Thread-safe for robustness, but the determinism contract only holds
/// when Poll() is driven from points that are serial in program order
/// (they are: barriers, the router loop, merges, failure handling).
class MetricsSampler {
 public:
  struct Options {
    Metrics* metrics = nullptr;        ///< registry to scrape (required)
    RpcTelemetry* rpc = nullptr;       ///< optional byte-total source
    int64_t interval_ticks = 0;        ///< <= 0 disables the sampler
    size_t capacity = 256;
  };

  /// Default-constructed samplers are disabled (every call a no-op).
  MetricsSampler() = default;
  explicit MetricsSampler(Options options) { Configure(options); }

  /// (Re)arms the sampler; resets any stored points. Call before the
  /// first Poll().
  void Configure(Options options);

  bool enabled() const { return options_.interval_ticks > 0; }

  /// Registers an extra scrape source under `name` (evaluated every
  /// point, in sorted-name order). Used for quantities that live
  /// outside the Metrics registry, e.g. MemoryAccountant watermarks.
  void AddSource(std::string name, std::function<double()> fn);

  /// Excludes a histogram from scraping. Pre-seeded with
  /// rpc.queue_ticks and dataflow.partition_ticks, whose samples
  /// depend on thread scheduling (see the file comment).
  void DenylistHistogram(std::string name);

  /// Invoked after each appended point with the point's boundary tick —
  /// the SLO watchdog evaluates its rules here.
  void set_scrape_callback(std::function<void(int64_t)> callback) {
    scrape_callback_ = std::move(callback);
  }

  /// Appends one point per scrape boundary crossed up to `now_ticks`
  /// (all with the values read now — between boundaries of one poll no
  /// simulated work happened). No-op when disabled or no boundary due.
  void Poll(int64_t now_ticks);

  /// Poll(now_ticks), then unconditionally scrape one extra point at
  /// the next boundary (keeps the grid uniform). Benches call this at
  /// capture time so even sub-interval runs report a non-empty series.
  void ForceSample(int64_t now_ticks);

  const TimeSeriesStore& store() const { return store_; }

  /// PSGRAPH_TS_INTERVAL (simulated microseconds, default 1000, 0 =
  /// disabled) converted to ticks; PSGRAPH_TS_CAPACITY (default 256).
  static int64_t IntervalTicksFromEnv();
  static size_t CapacityFromEnv();

  /// Process-wide fallback: a permanently *disabled* sampler, so
  /// clusters without an installed per-context sampler pay (almost)
  /// nothing at the poll sites.
  static MetricsSampler& Global();

 private:
  void ScrapeInto(std::map<std::string, double>* out) const;
  void AppendLocked(const std::map<std::string, double>& values);

  Options options_;
  mutable std::mutex mu_;
  TimeSeriesStore store_;
  std::map<std::string, std::function<double()>> sources_;
  std::set<std::string> hist_denylist_{"rpc.queue_ticks",
                                       "dataflow.partition_ticks"};
  std::function<void(int64_t)> scrape_callback_;
};

}  // namespace psgraph

#endif  // PSGRAPH_COMMON_TIMESERIES_H_
