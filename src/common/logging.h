// Minimal leveled logging. Thread-safe, writes to stderr.
//
// Usage: PSG_LOG(INFO) << "loaded " << n << " edges";

#ifndef PSGRAPH_COMMON_LOGGING_H_
#define PSGRAPH_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace psgraph {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace psgraph

#define PSG_LOG(severity)                                      \
  ::psgraph::internal::LogMessage(                             \
      ::psgraph::LogLevel::k##severity, __FILE__, __LINE__)

#endif  // PSGRAPH_COMMON_LOGGING_H_
