#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace psgraph {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_emit_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    stream_ << "[" << LevelName(level_) << " " << Basename(file) << ":"
            << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal
}  // namespace psgraph
