#include "common/random.h"

#include <cmath>

namespace psgraph {

double Rng::NextGaussian() {
  // Box-Muller; discard the second value to stay stateless.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

}  // namespace psgraph
