#include "common/status.h"

namespace psgraph {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kMemoryLimitExceeded:
      return "MemoryLimitExceeded";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace psgraph
