// Minimal JSON value tree: build, serialize, parse.
//
// Exists so run reports (sim/report.h) are emitted through one
// structured path instead of ad-hoc fprintf, and so tests can parse a
// report back and validate its schema (round-trip). Integers are kept
// distinct from doubles end to end — simulated-clock tick counts exceed
// 2^53 on long runs and must survive a dump/parse cycle exactly.
//
// Not a general-purpose parser: UTF-8 is passed through opaquely and
// \uXXXX escapes are decoded only for the BMP, which covers everything
// this repo writes.

#ifndef PSGRAPH_COMMON_JSON_H_
#define PSGRAPH_COMMON_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace psgraph {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(int v) : kind_(Kind::kInt), int_(v) {}
  JsonValue(int64_t v) : kind_(Kind::kInt), int_(v) {}
  JsonValue(uint64_t v);  // widens to int64 or double (> INT64_MAX)
  JsonValue(double v) : kind_(Kind::kDouble), double_(v) {}
  JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}
  JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

  static JsonValue Object() { return JsonValue(Kind::kObject); }
  static JsonValue Array() { return JsonValue(Kind::kArray); }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }

  bool as_bool() const { return bool_; }
  int64_t as_int() const {
    return kind_ == Kind::kDouble ? static_cast<int64_t>(double_) : int_;
  }
  double as_double() const {
    return kind_ == Kind::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& as_string() const { return string_; }

  // -- Object interface (insertion-ordered keys) --
  JsonValue& Set(const std::string& key, JsonValue value);
  /// nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  // -- Array interface --
  JsonValue& Append(JsonValue value);
  size_t size() const {
    return kind_ == Kind::kObject ? members_.size() : elements_.size();
  }
  const std::vector<JsonValue>& elements() const { return elements_; }
  const JsonValue& at(size_t i) const { return elements_[i]; }

  /// Serializes; `indent` > 0 pretty-prints with that many spaces per
  /// level, 0 emits compact single-line JSON.
  std::string Dump(int indent = 0) const;

  /// Strict parse of a complete JSON document (trailing junk is an
  /// error).
  static Result<JsonValue> Parse(const std::string& text);

 private:
  explicit JsonValue(Kind kind) : kind_(kind) {}
  void DumpTo(std::string* out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<std::pair<std::string, JsonValue>> members_;  // object
  std::vector<JsonValue> elements_;                         // array
};

}  // namespace psgraph

#endif  // PSGRAPH_COMMON_JSON_H_
