#include "common/rpc_telemetry.h"

namespace psgraph {

void RpcTelemetry::RecordCall(const std::string& method, int32_t node,
                              uint64_t request_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  Stat& s = stats_[{method, node}];
  s.calls++;
  s.request_bytes += request_bytes;
}

void RpcTelemetry::RecordResponse(const std::string& method, int32_t node,
                                  uint64_t response_bytes,
                                  int64_t busy_ticks, int64_t wait_ticks) {
  std::lock_guard<std::mutex> lock(mu_);
  Stat& s = stats_[{method, node}];
  s.response_bytes += response_bytes;
  s.callee_busy_ticks += busy_ticks;
  s.caller_wait_ticks += wait_ticks;
}

void RpcTelemetry::RecordError(const std::string& method, int32_t node,
                               bool unavailable, int64_t busy_ticks) {
  std::lock_guard<std::mutex> lock(mu_);
  Stat& s = stats_[{method, node}];
  if (unavailable) {
    s.errors_unavailable++;
  } else {
    s.errors_handler++;
  }
  s.callee_busy_ticks += busy_ticks;
}

std::vector<RpcTelemetry::MethodStat> RpcTelemetry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MethodStat> out;
  out.reserve(stats_.size());
  for (const auto& [key, stat] : stats_) {  // std::map: (method, node) order
    MethodStat m;
    static_cast<Stat&>(m) = stat;
    m.method = key.first;
    m.node = key.second;
    out.push_back(std::move(m));
  }
  return out;
}

void RpcTelemetry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.clear();
}

RpcTelemetry& RpcTelemetry::Global() {
  static RpcTelemetry* instance = new RpcTelemetry();
  return *instance;
}

}  // namespace psgraph
