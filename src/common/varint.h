// LEB128 varints and delta-encoded integer lists: the compact framing
// used by the PS RPC wire format and serving snapshot blobs.
//
// Key batches and neighbor tables dominate payload bytes at PSGraph
// scale; both arrive (nearly) sorted, so "varint(first) + zigzag varint
// deltas" shrinks an 8-byte key to 1-2 bytes in the common case while
// still round-tripping arbitrary (unsorted, duplicate) lists losslessly.
// Decoding is bounds-checked and fail-loud: a truncated or overlong
// varint returns a Status naming the byte offset, never garbage.

#ifndef PSGRAPH_COMMON_VARINT_H_
#define PSGRAPH_COMMON_VARINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/byte_buffer.h"
#include "common/status.h"

namespace psgraph {

/// Longest LEB128 encoding of a uint64_t (10 * 7 bits >= 64 bits).
inline constexpr size_t kMaxVarint64Bytes = 10;

/// Appends `v` as a LEB128 varint (1..10 bytes, little-endian 7-bit
/// groups, high bit = continuation).
inline void PutVarint64(ByteBuffer* buf, uint64_t v) {
  uint8_t tmp[kMaxVarint64Bytes];
  size_t n = 0;
  while (v >= 0x80) {
    tmp[n++] = static_cast<uint8_t>(v) | 0x80;
    v >>= 7;
  }
  tmp[n++] = static_cast<uint8_t>(v);
  buf->WriteRaw(tmp, n);
}

/// Number of bytes PutVarint64 would write for `v`.
inline size_t Varint64Size(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    ++n;
    v >>= 7;
  }
  return n;
}

/// Reads one LEB128 varint. Errors name the offset of the varint's first
/// byte: truncation (buffer ends mid-varint) and overlong/overflowing
/// encodings (more than 10 bytes, or bit 64+ set) are both rejected.
inline Status GetVarint64(ByteReader* reader, uint64_t* out) {
  const size_t start = reader->position();
  uint64_t value = 0;
  for (size_t i = 0; i < kMaxVarint64Bytes; ++i) {
    uint8_t byte = 0;
    Status st = reader->Read(&byte);
    if (!st.ok()) {
      return Status::OutOfRange("varint: truncated at offset " +
                                std::to_string(start));
    }
    // The 10th byte may only contribute the final bit (64 = 9*7 + 1).
    if (i == kMaxVarint64Bytes - 1 && byte > 0x01) {
      return Status::InvalidArgument("varint: overflow at offset " +
                                     std::to_string(start));
    }
    value |= static_cast<uint64_t>(byte & 0x7f) << (7 * i);
    if ((byte & 0x80) == 0) {
      *out = value;
      return Status::OK();
    }
  }
  return Status::InvalidArgument("varint: overlong encoding at offset " +
                                 std::to_string(start));
}

/// Maps signed deltas onto small unsigned varints (0,-1,1,-2,... ->
/// 0,1,2,3,...).
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// Appends `values` as [varint count][varint first][zigzag varint deltas].
/// Deltas are signed, so unsorted or duplicate-bearing lists round-trip
/// exactly; sorted lists (the PS batch common case) compress best.
inline void PutDeltaList(ByteBuffer* buf, const uint64_t* values,
                         size_t count) {
  PutVarint64(buf, count);
  uint64_t prev = 0;
  for (size_t i = 0; i < count; ++i) {
    if (i == 0) {
      PutVarint64(buf, values[0]);
    } else {
      PutVarint64(buf, ZigZagEncode(static_cast<int64_t>(values[i] - prev)));
    }
    prev = values[i];
  }
}

inline void PutDeltaList(ByteBuffer* buf, const std::vector<uint64_t>& v) {
  PutDeltaList(buf, v.data(), v.size());
}

/// Encoded size of PutDeltaList(values) without writing it.
inline size_t DeltaListSize(const uint64_t* values, size_t count) {
  size_t bytes = Varint64Size(count);
  uint64_t prev = 0;
  for (size_t i = 0; i < count; ++i) {
    bytes += (i == 0)
                 ? Varint64Size(values[0])
                 : Varint64Size(
                       ZigZagEncode(static_cast<int64_t>(values[i] - prev)));
    prev = values[i];
  }
  return bytes;
}

/// Reads a PutDeltaList payload, appending the decoded values to `out`
/// (any vector-like container of uint64_t with push_back/reserve/size).
template <typename Container>
Status GetDeltaList(ByteReader* reader, Container* out) {
  const size_t start = reader->position();
  uint64_t count = 0;
  PSG_RETURN_NOT_OK(GetVarint64(reader, &count));
  // Each value takes at least one encoded byte: a count the buffer cannot
  // possibly hold is corruption, not a huge allocation request.
  if (count > reader->remaining()) {
    return Status::OutOfRange(
        "delta list: count " + std::to_string(count) + " at offset " +
        std::to_string(start) + " exceeds remaining " +
        std::to_string(reader->remaining()) + " bytes");
  }
  out->reserve(out->size() + static_cast<size_t>(count));
  uint64_t prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t raw = 0;
    PSG_RETURN_NOT_OK(GetVarint64(reader, &raw));
    uint64_t value =
        (i == 0) ? raw
                 : prev + static_cast<uint64_t>(ZigZagDecode(raw));
    out->push_back(value);
    prev = value;
  }
  return Status::OK();
}

}  // namespace psgraph

#endif  // PSGRAPH_COMMON_VARINT_H_
